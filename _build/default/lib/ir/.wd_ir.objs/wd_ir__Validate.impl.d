lib/ir/validate.ml: Ast Fmt Hashtbl List Loc Prims
