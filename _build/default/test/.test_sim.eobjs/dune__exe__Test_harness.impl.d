test/test_harness.ml: Alcotest Campaign Experiments List String Systems Tables Wd_analysis Wd_autowatchdog Wd_faults Wd_harness Wd_ir Wd_sim Wd_targets
