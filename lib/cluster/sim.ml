(* Cluster campaign cell: boot a fleet described by a [Topology.spec]
   inside a single deterministic scheduler world, inject one cluster-scoped
   scenario, and grade the fleet plane's verdicts against the scenario's
   expectation. A cell is a pure function of (seed, topology, scenario), so
   campaigns fan cells out over domains exactly like single-node ones.

   The topology fixes everything boot needs: node count, which target
   system each node runs (fleets may mix them), and the per-link latency /
   bandwidth overrides materialised into the fabric. Mis-sized configs —
   a scenario whose victim index falls outside the topology — fail in
   [run] before any scheduler exists.

   The plane is decentralized: every node carries a membership agent, an
   election agent and a (mostly idle) fleet engine; correlation runs only
   on whichever node currently leads. Grading therefore merges verdicts
   across every node's engine — under failover the record legitimately
   moves from the old leader to its successor. *)

type config = {
  seed : int;
  topology : Topology.spec;
  warmup : int64; (* let checkers learn latency baselines first *)
  observe : int64; (* post-injection observation window *)
  engine : Wd_ir.Interp.engine option;
      (* IR engine for every node's target + checkers; None follows the
         process default *)
}

let default_config =
  {
    seed = 42;
    topology = Topology.uniform ~nodes:5 Topology.Zkmini;
    warmup = Wd_sim.Time.sec 8;
    observe = Wd_sim.Time.sec 15;
    engine = None;
  }

(* A booted-but-uninjected fleet world; [run] drives one through a scenario
   and the bench harness reuses it for steady-state measurements. *)
type world = {
  w_sched : Wd_sim.Sched.t;
  w_fabric : Fabric.t;
  w_nodes : Node.t list;
  w_agents : Membership.t list; (* index-aligned with nodes *)
  w_elections : Election.t list; (* index-aligned with nodes *)
  w_membership_events : int ref;
  w_suspected_events : int ref;
}

let world_sched w = w.w_sched
let world_fabric w = w.w_fabric
let world_nodes w = w.w_nodes
let world_agents w = w.w_agents
let world_elections w = w.w_elections

let boot ?engine ~seed ~topology () =
  let sched = Wd_sim.Sched.create ~seed () in
  let n = Topology.nodes topology in
  let ids = List.init n Fabric.node_name in
  let links = Topology.link_profiles topology ~node_name:Fabric.node_name in
  let fabric = Fabric.create ~links ~sched ~nodes:ids () in
  let ns =
    List.init n (fun i ->
        Node.boot ?engine ~sched
          ~system:(Topology.system_at topology i)
          ~index:i ())
  in
  let agents =
    List.map
      (fun n ->
        Membership.create
          ~digest_source:(fun () -> Node.recent_digests n)
          ~sched ~fabric ~node:n ())
      ns
  in
  let elections =
    List.map2
      (fun n a ->
        let fleet = Fleet.create ~sched ~me:(Node.id n) ~node_ids:ids () in
        Election.create ~sched ~fabric ~node:n ~membership:a ~fleet ())
      ns agents
  in
  let membership_events = ref 0 and suspected_events = ref 0 in
  List.iter
    (fun a ->
      Membership.on_event a (fun e ->
          incr membership_events;
          match e with
          | Membership.Suspected _ -> incr suspected_events
          | Membership.Probe_failing _ | Membership.Probe_recovered _ -> ()))
    agents;
  List.iter Membership.start agents;
  List.iter Election.start elections;
  {
    w_sched = sched;
    w_fabric = fabric;
    w_nodes = ns;
    w_agents = agents;
    w_elections = elections;
    w_membership_events = membership_events;
    w_suspected_events = suspected_events;
  }

type result = {
  cr_csid : string;
  cr_system : string;
      (* [Topology.describe]: the bare system name for uniform fleets, the
         topology's own name otherwise *)
  cr_node_systems : string list; (* per node, index order *)
  cr_seed : int;
  cr_nodes : int;
  cr_inject_at : int64; (* absolute injection time, for relative metrics *)
  cr_events : (string * Fleet.event) list;
      (* (recording engine's node, event); chronological, one per distinct
         verdict across the whole fleet *)
  cr_first_latency : int64 option; (* first verdict - injection time *)
  cr_indicted_nodes : string list;
  cr_indicted_links : (string * string) list;
  cr_component : string option;
  cr_overloaded : bool;
  cr_as_expected : bool; (* verdicts match the scenario's expectation *)
  cr_component_ok : bool; (* named component is in the truth set *)
  cr_membership_events : int;
  cr_suspected_events : int; (* gossip-silence suspicions fleet-wide *)
  cr_checker_count : int; (* per fleet, all nodes *)
  cr_workload_ok : float; (* min per-node success ratio *)
  cr_leader_history : (string * (int64 * string) list) list;
      (* per node: its believed-leader adoptions, chronological *)
  cr_final_leaders : string list; (* distinct believed leaders at end *)
  cr_elections : int; (* elections started fleet-wide *)
  cr_converged_at : int64 option;
      (* when the last node adopted the (single) final leader *)
  cr_recoveries : (string * Wd_watchdog.Recovery.event) list;
      (* fleet-commanded microreboots, (node, event), node order *)
  cr_first_recovery_latency : int64 option; (* first microreboot - injection *)
  cr_evidence_wire : string option;
      (* wire bytes behind the first node indictment — the cross-node
         repro seed *)
}

(* Merge every engine's record into one fleet-level verdict list: sort by
   (time, owner, verdict key), keep the first record of each distinct
   verdict. With a healthy leader exactly one engine records; under
   failover the union is the plane's actual output. *)
let merged_events elections =
  let all =
    List.concat_map
      (fun e ->
        List.map
          (fun ev -> (Election.me e, ev))
          (Fleet.events (Election.fleet e)))
      elections
  in
  let all =
    List.sort
      (fun (o1, (e1 : Fleet.event)) (o2, (e2 : Fleet.event)) ->
        match compare e1.Fleet.ev_at e2.Fleet.ev_at with
        | 0 -> (
            match compare o1 o2 with
            | 0 ->
                compare
                  (Fleet.verdict_key e1.Fleet.ev_verdict)
                  (Fleet.verdict_key e2.Fleet.ev_verdict)
            | c -> c)
        | c -> c)
      all
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (_, (ev : Fleet.event)) ->
      let k = Fleet.verdict_key ev.Fleet.ev_verdict in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    all

let indicted_nodes events =
  List.filter_map
    (fun (_, (e : Fleet.event)) ->
      match e.Fleet.ev_verdict with
      | Fleet.Node_gray { node; _ } -> Some node
      | _ -> None)
    events
  |> List.sort_uniq compare

let indicted_links events =
  List.concat_map
    (fun (_, (e : Fleet.event)) ->
      match e.Fleet.ev_verdict with
      | Fleet.Link_fault { links } -> links
      | _ -> [])
    events
  |> List.sort_uniq compare

let first_component events =
  List.find_map
    (fun (_, (e : Fleet.event)) ->
      match e.Fleet.ev_verdict with
      | Fleet.Node_gray { component; _ } -> component
      | _ -> None)
    events

let first_evidence events =
  List.find_map
    (fun (_, (e : Fleet.event)) ->
      match e.Fleet.ev_verdict with
      | Fleet.Node_gray _ -> e.Fleet.ev_evidence
      | _ -> None)
    events

let overloaded events =
  List.exists
    (fun (_, (e : Fleet.event)) -> e.Fleet.ev_verdict = Fleet.Overload)
    events

(* Grade the fleet's verdicts against the scenario's expectation. A node
   indictment is correct only if it names exactly the victim; a link
   verdict is correct only if it covers the cut pair and indicts no node;
   overload, flaps and fault-free demand zero indictments of either kind.
   On a mixed fleet the component-truth set is the *victim's* system's, so
   node_systems rides in from the topology. *)
let grade (s : Wd_faults.Cluster_catalog.cscenario) ~node_systems ~events =
  let inodes = indicted_nodes events in
  let ilinks = indicted_links events in
  let component = first_component events in
  match s.Wd_faults.Cluster_catalog.cexpected with
  | Wd_faults.Cluster_catalog.Expect_node v ->
      let victim = Fabric.node_name v in
      let right_node = inodes = [ victim ] && ilinks = [] in
      let victim_system =
        match List.nth_opt node_systems v with Some sys -> sys | None -> ""
      in
      let truth =
        Wd_faults.Cluster_catalog.truth_components s ~system:victim_system
      in
      let component_ok =
        match component with
        | Some c -> truth = [] || List.mem c truth
        | None -> false
      in
      (right_node, right_node && component_ok)
  | Wd_faults.Cluster_catalog.Expect_links -> (
      match s.Wd_faults.Cluster_catalog.ckind with
      | Wd_faults.Cluster_catalog.Asym_partition { src; dst } ->
          let cut =
            let a = Fabric.node_name src and b = Fabric.node_name dst in
            if a <= b then (a, b) else (b, a)
          in
          (inodes = [] && List.mem cut ilinks, true)
      | _ -> (inodes = [] && ilinks <> [], true))
  | Wd_faults.Cluster_catalog.Expect_no_indictment ->
      (inodes = [] && ilinks = [], true)

let converged_at histories =
  let finals =
    List.filter_map
      (fun (_, h) ->
        match List.rev h with [] -> None | (at, l) :: _ -> Some (at, l))
      histories
  in
  match finals with
  | [] -> None
  | (_, l0) :: _ ->
      if List.for_all (fun (_, l) -> l = l0) finals then
        Some (List.fold_left (fun acc (at, _) -> max acc at) 0L finals)
      else None

(* does the scenario (possibly inside a [Correlated]) demand burst load? *)
let rec wants_burst = function
  | Wd_faults.Cluster_catalog.Fleet_overload -> true
  | Wd_faults.Cluster_catalog.Correlated ks -> List.exists wants_burst ks
  | _ -> false

let run ?(cfg = default_config) csid =
  let s = Wd_faults.Cluster_catalog.find csid in
  let topology = cfg.topology in
  let n = Topology.nodes topology in
  (* config-build-time check: the scenario must fit the topology *)
  let need = Wd_faults.Cluster_catalog.max_node_index s in
  if need >= n then
    invalid_arg
      (Fmt.str "Sim.run: scenario %s touches node %d but topology %s has %d \
                nodes"
         csid need (Topology.describe topology) n);
  let w = boot ?engine:cfg.engine ~seed:cfg.seed ~topology () in
  let sched = w.w_sched in
  ignore (Wd_sim.Sched.run ~until:cfg.warmup sched);
  let inject_at = Wd_sim.Sched.now sched in
  Wd_faults.Cluster_catalog.inject
    ~node_reg:(fun i -> Node.reg (List.nth w.w_nodes i))
    ~fabric_reg:(Fabric.reg w.w_fabric) ~node_name:Fabric.node_name
    ~at:inject_at s;
  if wants_burst s.Wd_faults.Cluster_catalog.ckind then
    List.iter Node.start_burst w.w_nodes;
  ignore (Wd_sim.Sched.run ~until:(Int64.add inject_at cfg.observe) sched);
  let events = merged_events w.w_elections in
  let first_latency =
    match events with
    | [] -> None
    | (_, e) :: _ -> Some (Int64.sub e.Fleet.ev_at inject_at)
  in
  let node_systems = Topology.node_systems topology in
  let as_expected, component_ok = grade s ~node_systems ~events in
  let leader_history =
    List.map (fun e -> (Election.me e, Election.leader_history e)) w.w_elections
  in
  let recoveries =
    List.concat_map
      (fun n ->
        List.map (fun ev -> (Node.id n, ev)) (Node.recovery_events n))
      w.w_nodes
  in
  let first_recovery_latency =
    List.fold_left
      (fun acc (_, (ev : Wd_watchdog.Recovery.event)) ->
        let lat = Int64.sub ev.Wd_watchdog.Recovery.ev_at inject_at in
        match acc with
        | None -> Some lat
        | Some best -> Some (min best lat))
      None recoveries
  in
  {
    cr_csid = csid;
    cr_system = Topology.describe topology;
    cr_node_systems = node_systems;
    cr_seed = cfg.seed;
    cr_nodes = n;
    cr_inject_at = inject_at;
    cr_events = events;
    cr_first_latency = first_latency;
    cr_indicted_nodes = indicted_nodes events;
    cr_indicted_links = indicted_links events;
    cr_component = first_component events;
    cr_overloaded = overloaded events;
    cr_as_expected = as_expected;
    cr_component_ok = component_ok;
    cr_membership_events = !(w.w_membership_events);
    cr_suspected_events = !(w.w_suspected_events);
    cr_checker_count =
      List.fold_left (fun acc n -> acc + Node.checker_count n) 0 w.w_nodes;
    cr_workload_ok =
      List.fold_left
        (fun acc n ->
          min acc (Wd_targets.Workload.success_ratio (Node.workload n)))
        1.0 w.w_nodes;
    cr_leader_history = leader_history;
    cr_final_leaders =
      List.sort_uniq compare (List.map Election.leader w.w_elections);
    cr_elections =
      List.fold_left
        (fun acc e -> acc + Election.elections_started e)
        0 w.w_elections;
    cr_converged_at = converged_at leader_history;
    cr_recoveries = recoveries;
    cr_first_recovery_latency = first_recovery_latency;
    cr_evidence_wire = first_evidence events;
  }
