(** Program logic reduction (§4.1): derive from program P a reduced W that
    retains just enough code to expose gray failures.

    For every function reachable from a long-running region: keep only
    vulnerable operations (loops flattened), remove similar operations
    within the function, globally reduce along call chains, preserve
    critical-section structure, and infer the execution context — every
    non-constant operand becomes a context parameter captured by a hook
    inserted immediately before the original operation. *)

open Wd_ir.Ast

type options = {
  dedup_similar : bool;     (** similar-operation removal; ablation switch *)
  global_reduction : bool;  (** call-chain-wide reduction; ablation switch *)
}

val default_options : options

type unit_ = {
  unit_id : string;
  region_id : string;
  source_func : string;
  anchor_loc : Wd_ir.Loc.t;
  ufunc : func;                    (** the reduced function, ready to run *)
  params : (string * expr) list;   (** param name -> original operand *)
  keys : string list;              (** retained ["kind:target:prefix"] keys *)
  hook_ids : int list;
}

type hook_insertion = {
  hi_hook_id : int;
  hi_anchor_uid : int;  (** captures + hook are inserted before this stmt *)
  hi_captures : (string * string * expr) list;
      (** (context param, temporary variable bound in main, operand) *)
  hi_unit : string;
}

type stats = {
  total_funcs : int;
  region_funcs : int;
  total_stmts : int;
  vulnerable_ops : int;
  retained_ops : int;
  unit_count : int;
  reduced_stmts : int;
}

type result = {
  original : program;
  instrumented : program;  (** original + capture [Let]s + [Hook]s; original
                               statement locations are preserved verbatim *)
  units : unit_ list;
  hooks : hook_insertion list;
  stats : stats;
}

val reduce :
  ?opts:options -> ?cfg:Vulnerable.config -> program -> result

val pp_stats : Format.formatter -> stats -> unit
