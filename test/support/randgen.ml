(* Random well-formed IR system programs, shared by the property tests
   (test_randprog) and the engine differential test (test_engine_diff).

   The generator emits programs built from safe operation templates (writes
   followed by reads of the same path, alloc/free pairs, guarded reads...) so
   that a fault-free run never raises — making "no false alarms" a testable
   property of the generated watchdog, and cross-engine runs deterministic
   to the last statement. *)

module B = Wd_ir.Builder
module Rng = Wd_sim.Rng

let gen_ident rng prefix = Fmt.str "%s%d" prefix (Rng.int rng 1000)

(* A safe statement template; [depth] bounds nesting, [k] is a unique id for
   fresh variable names. *)
let rec gen_template rng ~depth k =
  let fresh s = Fmt.str "%s_%d" s k in
  let choice = Rng.int rng (if depth > 0 then 10 else 8) in
  match choice with
  | 0 ->
      (* write then read back the same path *)
      let p = fresh "p" and d = fresh "d" in
      [
        B.let_ p (B.prim "concat" [ B.s (gen_ident rng "dir/"); B.s "/f" ]);
        B.let_ d (B.prim "bytes_of_str" [ B.s (gen_ident rng "content") ]);
        B.disk_write ~disk:"d0" ~path:(B.v p) ~data:(B.v d);
        B.disk_read ~bind:(fresh "back") ~disk:"d0" ~path:(B.v p) ();
      ]
  | 1 ->
      let d = fresh "d" in
      [
        B.let_ d (B.prim "bytes_of_str" [ B.s "entry;" ]);
        B.disk_append ~disk:"d0" ~path:(B.s (gen_ident rng "log/")) ~data:(B.v d);
      ]
  | 2 -> [ B.net_send ~net:"net0" ~dst:(B.s "peer") ~payload:(B.s "msg") ]
  | 3 ->
      let n = 64 + Rng.int rng 256 in
      [ B.mem_alloc ~pool:"m0" ~size:(B.i n); B.mem_free ~pool:"m0" ~size:(B.i n) ]
  | 4 ->
      let g = gen_ident rng "g" in
      let x = fresh "x" in
      [
        B.state_set ~global:g ~value:(B.i (Rng.int rng 100));
        B.state_get ~bind:x ~global:g;
      ]
  | 5 -> [ B.sleep_ms (1 + Rng.int rng 20) ]
  | 6 -> [ B.compute_us (1 + Rng.int rng 10) ]
  | 7 -> [ B.disk_sync ~disk:"d0" ]
  | 8 ->
      (* synchronized block around a nested template *)
      [ B.sync (gen_ident rng "lock") (gen_block rng ~depth:(depth - 1) (k * 31 + 1)) ]
  | _ ->
      [
        B.if_
          B.(i (Rng.int rng 10) <: i 5)
          (gen_block rng ~depth:(depth - 1) (k * 31 + 2))
          (gen_block rng ~depth:(depth - 1) (k * 31 + 3));
      ]

and gen_block rng ~depth k =
  let n = 1 + Rng.int rng 3 in
  List.concat (List.init n (fun i -> gen_template rng ~depth (k * 17 + i)))

let gen_program seed =
  let rng = Rng.create ~seed in
  (* helper functions, callable from the loop *)
  let n_helpers = 1 + Rng.int rng 3 in
  let helpers =
    List.init n_helpers (fun i ->
        B.func
          (Fmt.str "helper%d" i)
          ~params:[]
          (gen_block rng ~depth:2 (100 + i) @ [ B.return_unit ]))
  in
  let loop_body =
    gen_block rng ~depth:2 7
    @ List.concat
        (List.init n_helpers (fun i ->
             if Rng.bool rng then [ B.call (Fmt.str "helper%d" i) [] ] else []))
    @ [ B.sleep_ms (50 + Rng.int rng 100) ]
  in
  B.program
    (Fmt.str "rand%d" seed)
    ~funcs:(B.func "main_loop" ~params:[] [ B.while_true loop_body ] :: helpers)
    ~entries:[ B.entry "main" "main_loop" ]

(* The standard clean environment these programs run against: disk "d0",
   net "net0" with nodes "n1"/"peer", memory pool "m0". *)
let make_env ~reg ~seed =
  let rng = Rng.create ~seed:(seed + 1) in
  let res = Wd_ir.Runtime.create ~reg ~rng in
  Wd_ir.Runtime.add_disk res (Wd_env.Disk.create ~reg ~rng:(Rng.split rng) "d0");
  let net = Wd_env.Net.create ~reg ~rng:(Rng.split rng) "net0" in
  Wd_env.Net.register net "n1";
  Wd_env.Net.register net "peer";
  Wd_ir.Runtime.add_net res net;
  Wd_ir.Runtime.add_mem res (Wd_env.Memory.create ~reg ~capacity:(1 lsl 24) "m0");
  res
