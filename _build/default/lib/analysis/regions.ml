(* Long-running region identification (§4.1 step 1).

   A region is code that "may be executed continuously" in production:
   the body of a loop inside a function reachable from a program entry, or
   the whole body of a function annotated [Long_running]. Initialisation
   code — everything outside such loops — is excluded from checking, as the
   paper prescribes. *)

open Wd_ir.Ast

type t = {
  region_id : string;
  root_func : string;       (* function hosting the loop *)
  loop_loc : Wd_ir.Loc.t option;  (* None for annotated whole-function regions *)
  body : block;             (* the continuously-executing code *)
  reachable : string list;  (* functions callable from [body] *)
}

let rec loops_of_block block acc =
  List.fold_left
    (fun acc st ->
      match st.node with
      | While (_, body) -> loops_of_block body ((st.loc, body) :: acc)
      | Foreach (_, _, body) -> loops_of_block body acc
      | If (_, t, e) -> loops_of_block e (loops_of_block t acc)
      | Sync (_, b) -> loops_of_block b acc
      | Try (b, _, h) -> loops_of_block h (loops_of_block b acc)
      | Let _ | Assign _ | Op _ | Call _ | Return _ | Assert _ | Compute _
      | Hook _ ->
          acc)
    acc block

(* Functions directly called from a block (call sites only, not transitive). *)
let direct_callees block = List.map fst (Callgraph.callees_of_block block [])

let reachable_from cg block =
  let direct = direct_callees block in
  List.sort_uniq String.compare
    (List.concat_map (fun f -> Callgraph.reachable cg f) direct)

let find prog =
  let cg = Callgraph.build prog in
  let entry_roots =
    List.sort_uniq String.compare (List.map (fun e -> e.entry_func) prog.entries)
  in
  let reachable_funcs =
    List.sort_uniq String.compare
      (List.concat_map (fun root -> Callgraph.reachable cg root) entry_roots)
  in
  let regions = ref [] in
  let add r = regions := r :: !regions in
  List.iter
    (fun f ->
      if List.mem f.fname reachable_funcs || List.mem Long_running f.annots then begin
        (* Outermost loops in the function body are region roots. *)
        let loops = List.rev (loops_of_block f.body []) in
        List.iteri
          (fun i (loc, body) ->
            add
              {
                region_id = Fmt.str "%s#loop%d" f.fname i;
                root_func = f.fname;
                loop_loc = Some loc;
                body;
                reachable = reachable_from cg body;
              })
          loops;
        if loops = [] && List.mem Long_running f.annots then
          add
            {
              region_id = Fmt.str "%s#body" f.fname;
              root_func = f.fname;
              loop_loc = None;
              body = f.body;
              reachable = reachable_from cg f.body;
            }
      end)
    prog.funcs;
  List.rev !regions

let pp ppf r =
  Fmt.pf ppf "region %s (root %s, %d reachable funcs)" r.region_id r.root_func
    (List.length r.reachable)
