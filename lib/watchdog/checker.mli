(** The checker abstraction (§3.1, Table 2). Probe, signal and mimic
    checkers differ only in what {!field-run} does and what localisation they
    offer, so they share this one type and one driver. *)

type kind = Probe | Signal | Mimic

type outcome =
  | Pass
  | Skip of string  (** e.g. context not ready — counted, not a failure *)
  | Fail of Report.t

type t = {
  id : string;
  kind : kind;
  period : int64;
  timeout : int64;             (** the driver kills a run past this deadline *)
  slow_budget : int64 option;  (** absolute completed-but-slow threshold;
                                   [None] = the driver's adaptive baseline *)
  run : now:int64 -> outcome;
  locate :
    unit -> Wd_ir.Loc.t option * string * (string * Wd_ir.Ast.value) list;
      (** best-effort pinpoint after a timeout or crash:
          (location, op description, captured payload) *)
  slow_elapsed : unit -> int64 option;
      (** duration to assess for slowness after a Pass; [None] = wall time.
          Mimic checkers report operation time minus benign lock waits. *)
  ctx_version : (unit -> int) option;
      (** monotone version of the state the verdict depends on (the
          watchdog context's update counter for mimic checkers). An
          adaptive scheduler may skip a run whose version is unchanged
          since the last execution, within its latency bound. [None] =
          never dedupable — signal/probe checkers, and progress checkers
          whose point is noticing the version is {e not} advancing. *)
}

val kind_name : kind -> string

val make :
  ?kind:kind ->
  ?period:int64 ->
  ?timeout:int64 ->
  ?slow_budget:int64 ->
  ?locate:
    (unit -> Wd_ir.Loc.t option * string * (string * Wd_ir.Ast.value) list) ->
  ?slow_elapsed:(unit -> int64 option) ->
  ?ctx_version:(unit -> int) ->
  id:string ->
  (now:int64 -> outcome) ->
  t

val pp : Format.formatter -> t -> unit
