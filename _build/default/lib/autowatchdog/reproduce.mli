(** Failure reproduction (§5.2): replay a mimic checker and its captured
    payload in a fresh, sealed simulation — optionally with a fault
    re-injected — turning a production alarm into a deterministic repro.

    The replay environment is synthesised from the reduced unit itself;
    everything the checker needs travels in the report. *)

type outcome =
  | Reproduced of Wd_watchdog.Report.fkind
  | Not_reproduced       (** the unit passes in a clean environment *)
  | Unknown_checker
  | Context_incomplete

val run :
  ?fault:Wd_env.Faultreg.fault ->
  ?timeout:int64 ->
  Generate.generated ->
  report:Wd_watchdog.Report.t ->
  outcome

val pp_outcome : Format.formatter -> outcome -> unit
