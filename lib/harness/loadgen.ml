(* Heavy-traffic load plane: open- and closed-loop request generators over
   the virtual clock, with O(1) log-bucketed latency histograms sized for
   10^6+ requests per run.

   Everything is driven by virtual time, so a load run is a pure function
   of (seed, workload): latency percentiles, throughput and shed counts are
   bit-reproducible and any two configurations differing only in wall-clock
   speed (engine choice, host load) produce identical numbers. That is what
   makes the watchdog-overhead story measurable: overhead shows up as
   virtual-time inflation, not benchmark noise.

   Target systems keep the simulation alive through daemon tasks with
   pending timers, so [Sched.run ~until] never quiesces on its own; the
   driver advances the clock in bounded steps and stops on the generator's
   own completion accounting. *)

module Sched = Wd_sim.Sched

type reply = [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

(* --- log-bucketed latency histogram ---

   Log-linear buckets, 8 per octave: index = v for v < 8, else
   (msb - 2) * 8 + next-3-bits. Relative quantile error is bounded by 1/8;
   recording is O(1) and memory is one small int array regardless of the
   number of samples — a million-request run cannot blow up the way a
   latency list would. *)

let hist_size = 512

type hist = {
  mutable h_count : int;
  mutable h_sum : int64;
  mutable h_max : int64;
  buckets : int array;
}

let hist_create () =
  { h_count = 0; h_sum = 0L; h_max = 0L; buckets = Array.make hist_size 0 }

(* OCaml has no portable clz on int; derive the msb position by halving
   shifts — six branches, no loop. *)
let msb_pos v =
  let v = ref v and p = ref 0 in
  if !v >= 1 lsl 32 then begin
    v := !v lsr 32;
    p := !p + 32
  end;
  if !v >= 1 lsl 16 then begin
    v := !v lsr 16;
    p := !p + 16
  end;
  if !v >= 1 lsl 8 then begin
    v := !v lsr 8;
    p := !p + 8
  end;
  if !v >= 1 lsl 4 then begin
    v := !v lsr 4;
    p := !p + 4
  end;
  if !v >= 1 lsl 2 then begin
    v := !v lsr 2;
    p := !p + 2
  end;
  if !v >= 2 then p := !p + 1;
  !p

let bucket_index v =
  if v < 8 then if v < 0 then 0 else v
  else
    let k = msb_pos v in
    let idx = ((k - 2) * 8) + ((v lsr (k - 3)) land 7) in
    if idx >= hist_size then hist_size - 1 else idx

(* lower bound of a bucket — the deterministic representative value *)
let bucket_value idx =
  if idx < 8 then idx else (8 + (idx land 7)) lsl ((idx lsr 3) - 1)

let hist_add h (lat : int64) =
  h.h_count <- h.h_count + 1;
  h.h_sum <- Int64.add h.h_sum lat;
  if lat > h.h_max then h.h_max <- lat;
  let v = Int64.to_int lat in
  let idx = bucket_index v in
  h.buckets.(idx) <- h.buckets.(idx) + 1

let hist_max h = h.h_max

let hist_mean h =
  if h.h_count = 0 then 0L
  else Int64.div h.h_sum (Int64.of_int h.h_count)

let hist_quantile h q =
  if h.h_count = 0 then 0L
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if t < 1 then 1 else if t > h.h_count then h.h_count else t
    in
    let cum = ref 0 and idx = ref 0 and found = ref (hist_size - 1) in
    (try
       while !idx < hist_size do
         cum := !cum + h.buckets.(!idx);
         if !cum >= target then begin
           found := !idx;
           raise Exit
         end;
         incr idx
       done
     with Exit -> ());
    Int64.of_int (bucket_value !found)
  end

(* --- generators --- *)

type gen = {
  g_sched : Sched.t;
  g_label : string;
  g_target : int; (* arrivals to account for (completed + shed) *)
  g_hist : hist;
  g_started_at : int64;
  mutable g_next : int; (* next request index to issue (closed loop) *)
  mutable g_completed : int;
  mutable g_ok : int;
  mutable g_err : int;
  mutable g_timeout : int;
  mutable g_shed : int;
  mutable g_inflight : int;
  mutable g_done_at : int64;
}

let make_gen ~sched ~label ~target =
  {
    g_sched = sched;
    g_label = label;
    g_target = target;
    g_hist = hist_create ();
    g_started_at = Sched.now sched;
    g_next = 0;
    g_completed = 0;
    g_ok = 0;
    g_err = 0;
    g_timeout = 0;
    g_shed = 0;
    g_inflight = 0;
    g_done_at = 0L;
  }

let record g ~t0 (r : reply) =
  let now = Sched.now g.g_sched in
  hist_add g.g_hist (Int64.sub now t0);
  (match r with
  | `Ok _ -> g.g_ok <- g.g_ok + 1
  | `Err _ -> g.g_err <- g.g_err + 1
  | `Timeout -> g.g_timeout <- g.g_timeout + 1);
  g.g_completed <- g.g_completed + 1;
  if g.g_completed + g.g_shed >= g.g_target then g.g_done_at <- now

let accounted g = g.g_completed + g.g_shed >= g.g_target

(* Closed loop: [clients] persistent client fibers share one request
   counter; each issues the next request, waits for the reply, thinks, and
   repeats until the budget is drained. Daemons — they end with the world. *)
let spawn_closed ?(label = "closed") ~sched ~clients ~think ~requests ~op () =
  let g = make_gen ~sched ~label ~target:requests in
  for c = 0 to clients - 1 do
    ignore
      (Sched.spawn
         ~name:("load/" ^ label ^ "/" ^ string_of_int c)
         ~daemon:true sched
         (fun () ->
           let continue = ref true in
           while !continue do
             let idx = g.g_next in
             if idx >= g.g_target then continue := false
             else begin
               g.g_next <- idx + 1;
               let t0 = Sched.now sched in
               let r = op idx in
               record g ~t0 r;
               if think > 0L then Sched.sleep think
             end
           done))
  done;
  g

(* Open loop: arrivals at a fixed rate, independent of completions — the
   generator never slows down for the system (the defining property of
   open-loop load, and what makes queueing delay visible in latency).
   In-flight is bounded; an arrival past the bound is shed and counted,
   exactly like a full accept queue. *)
let spawn_open ?(label = "open") ~sched ~rate_rps ~max_inflight ~requests ~op
    () =
  if rate_rps <= 0 then invalid_arg "Loadgen.spawn_open: rate_rps must be > 0";
  let interval = Int64.div 1_000_000_000L (Int64.of_int rate_rps) in
  let interval = if interval < 1L then 1L else interval in
  let g = make_gen ~sched ~label ~target:requests in
  (* One shared fiber name for every request task: task ids stay unique,
     and three string allocations per request disappear from the open-loop
     hot path. *)
  let rname = "load/" ^ label ^ "/r" in
  ignore
    (Sched.spawn
       ~name:("load/" ^ label ^ "/arrivals")
       ~daemon:true sched
       (fun () ->
         for idx = 0 to requests - 1 do
           if g.g_inflight >= max_inflight then begin
             g.g_shed <- g.g_shed + 1;
             if accounted g then g.g_done_at <- Sched.now sched
           end
           else begin
             g.g_inflight <- g.g_inflight + 1;
             ignore
               (Sched.spawn ~name:rname ~daemon:true sched
                  (fun () ->
                    let t0 = Sched.now sched in
                    let r = op idx in
                    g.g_inflight <- g.g_inflight - 1;
                    record g ~t0 r))
           end;
           Sched.sleep interval
         done));
  g

(* --- results --- *)

type result = {
  lr_label : string;
  lr_requests : int; (* completed *)
  lr_ok : int;
  lr_err : int;
  lr_timeout : int;
  lr_shed : int;
  lr_sim_ns : int64; (* first issue -> last completion, virtual *)
  lr_wall_s : float;
  lr_p50 : int64;
  lr_p90 : int64;
  lr_p99 : int64;
  lr_mean : int64;
  lr_max : int64;
}

let throughput_rps r =
  float_of_int r.lr_requests /. Float.max 1e-9 (Int64.to_float r.lr_sim_ns /. 1e9)

let success_ratio r =
  float_of_int r.lr_ok /. float_of_int (max 1 r.lr_requests)

(* Drive the simulation until the generator has accounted for every
   arrival. [Sched.run ~until] returns [Quiescent] only once the timer heap
   empties, which daemon-held timers prevent — so the clock is advanced in
   bounded steps, checking completion between steps. [step] bounds detection
   slack, not precision: all measurements are event-timestamped. *)
let drive ?(step = Wd_sim.Time.ms 200) g =
  let wall0 = Unix.gettimeofday () in
  let sched = g.g_sched in
  let guard = ref 0 in
  while not (accounted g) do
    let prev_completed = g.g_completed + g.g_shed in
    (match Sched.run ~until:(Int64.add (Sched.now sched) step) sched with
    | Sched.Time_limit | Sched.Quiescent -> ()
    | Sched.Deadlock _ ->
        (* every non-daemon wedged: nothing will ever complete the budget *)
        g.g_done_at <- Sched.now sched;
        g.g_shed <- g.g_shed + (g.g_target - g.g_completed - g.g_shed));
    (* A wedged target (fault injection) can stall completions forever while
       timers keep firing; bail out after a long stretch of zero progress so
       detection-latency-under-load runs terminate. *)
    if g.g_completed + g.g_shed = prev_completed then begin
      incr guard;
      if !guard > 600 then begin
        g.g_shed <- g.g_shed + (g.g_target - g.g_completed - g.g_shed);
        g.g_done_at <- Sched.now sched
      end
    end
    else guard := 0
  done;
  let wall_s = Unix.gettimeofday () -. wall0 in
  let done_at = if g.g_done_at = 0L then Sched.now sched else g.g_done_at in
  {
    lr_label = g.g_label;
    lr_requests = g.g_completed;
    lr_ok = g.g_ok;
    lr_err = g.g_err;
    lr_timeout = g.g_timeout;
    lr_shed = g.g_shed;
    lr_sim_ns = Int64.sub done_at g.g_started_at;
    lr_wall_s = wall_s;
    lr_p50 = hist_quantile g.g_hist 0.50;
    lr_p90 = hist_quantile g.g_hist 0.90;
    lr_p99 = hist_quantile g.g_hist 0.99;
    lr_mean = hist_mean g.g_hist;
    lr_max = hist_max g.g_hist;
  }

let completed g = g.g_completed
let inflight g = g.g_inflight

(* --- fleet load ---

   Closed-loop clients against every node of a booted cluster world,
   driving each node's bounded end-to-end client operation (the same
   surface membership probing uses). One generator accounts for the whole
   fleet; per-node imbalance shows up in the latency tail. *)

let spawn_fleet ?(label = "fleet") ~world ~clients_per_node ~think ~requests ()
    =
  let sched = Wd_cluster.Sim.world_sched world in
  let nodes = Array.of_list (Wd_cluster.Sim.world_nodes world) in
  let nnodes = Array.length nodes in
  if nnodes = 0 then invalid_arg "Loadgen.spawn_fleet: empty world";
  let g = make_gen ~sched ~label ~target:requests in
  for c = 0 to (clients_per_node * nnodes) - 1 do
    let node = nodes.(c mod nnodes) in
    ignore
      (Sched.spawn
         ~name:("load/" ^ label ^ "/" ^ Wd_cluster.Node.id node ^ "/"
                ^ string_of_int (c / nnodes))
         ~daemon:true sched
         (fun () ->
           let continue = ref true in
           while !continue do
             let idx = g.g_next in
             if idx >= g.g_target then continue := false
             else begin
               g.g_next <- idx + 1;
               let t0 = Sched.now sched in
               let r =
                 if Wd_cluster.Node.local_probe node then `Ok Wd_ir.Ast.VUnit
                 else `Err "probe failed"
               in
               record g ~t0 r;
               if think > 0L then Sched.sleep think
             end
           done))
  done;
  g

let pp_result ppf r =
  Fmt.pf ppf
    "%s: %d req (%d ok, %d err, %d timeout, %d shed) in %a sim / %.1fs wall — \
     %.0f req/s, p50 %a p90 %a p99 %a max %a"
    r.lr_label r.lr_requests r.lr_ok r.lr_err r.lr_timeout r.lr_shed
    Wd_sim.Time.pp r.lr_sim_ns r.lr_wall_s (throughput_rps r) Wd_sim.Time.pp
    r.lr_p50 Wd_sim.Time.pp r.lr_p90 Wd_sim.Time.pp r.lr_p99 Wd_sim.Time.pp
    r.lr_max
