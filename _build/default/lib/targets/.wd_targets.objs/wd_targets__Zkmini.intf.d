lib/targets/zkmini.mli: Rpcq Wd_env Wd_ir Wd_sim
