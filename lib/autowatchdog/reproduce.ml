(* Failure reproduction (§5.2): a mimic checker's report carries both the
   faulty code region (the reduced unit) and the failure-inducing context
   (the captured payload). This module replays the two in a fresh, sealed
   simulation — optionally with a fault re-injected — turning a production
   alarm into a deterministic repro.

   The replay environment is synthesised from the unit itself: every
   resource the reduced code touches is created empty. No state from the
   original run leaks in; everything the checker needs travels in the
   report. *)

open Wd_ir.Ast
module Interp = Wd_ir.Interp
module Runtime = Wd_ir.Runtime
module Reduction = Wd_analysis.Reduction

type outcome =
  | Reproduced of Wd_watchdog.Report.fkind
  | Not_reproduced   (* the unit passes in a clean environment *)
  | Unknown_checker
  | Context_incomplete
  | Wire_error of string (* evidence bytes did not decode *)

(* Resource names referenced by the unit's body, grouped by resource class. *)
let resources_of_unit (u : Reduction.unit_) =
  let disks = ref [] and nets = ref [] and mems = ref [] in
  let add cell x = if not (List.mem x !cell) then cell := x :: !cell in
  let rec scan block =
    List.iter
      (fun st ->
        match st.node with
        | Op { kind; target; _ } -> (
            match kind with
            | Disk_write | Disk_append | Disk_read | Disk_sync | Disk_delete
            | Disk_exists | Disk_list ->
                add disks target
            | Net_send | Net_recv -> add nets target
            | Mem_alloc | Mem_free -> add mems target
            | Queue_put | Queue_get | State_get | State_set | Sleep_op | Log_op
              ->
                ())
        | Sync (_, body) -> scan body
        | If (_, t, e) ->
            scan t;
            scan e
        | While (_, b) | Foreach (_, _, b) -> scan b
        | Try (b, _, h) ->
            scan b;
            scan h
        | Let _ | Assign _ | Call _ | Return _ | Assert _ | Compute _ | Hook _
          ->
            ())
      block
  in
  scan u.Reduction.ufunc.body;
  (!disks, !nets, !mems)

let node = "repro"

let run ?fault ?(timeout = Wd_sim.Time.sec 10) (g : Generate.generated)
    ~(report : Wd_watchdog.Report.t) =
  match
    List.find_opt
      (fun (u : Reduction.unit_) ->
        u.Reduction.unit_id = report.Wd_watchdog.Report.checker_id)
      g.Generate.units
  with
  | None -> Unknown_checker
  | Some u ->
      let args =
        List.map
          (fun (param, _) ->
            List.assoc_opt param report.Wd_watchdog.Report.payload)
          u.Reduction.params
      in
      if List.exists Option.is_none args then Context_incomplete
      else begin
        let args = List.map Option.get args in
        let sched = Wd_sim.Sched.create ~seed:424242 () in
        let reg = Wd_env.Faultreg.create () in
        (match fault with Some f -> Wd_env.Faultreg.inject reg f | None -> ());
        let rng = Wd_sim.Rng.create ~seed:17 in
        let res = Runtime.create ~reg ~rng in
        let disks, nets, mems = resources_of_unit u in
        List.iter
          (fun d ->
            Runtime.add_disk res
              (Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) d))
          disks;
        List.iter
          (fun n ->
            let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) n in
            Wd_env.Net.register net node;
            Runtime.add_net res net)
          nets;
        List.iter
          (fun m ->
            Runtime.add_mem res
              (Wd_env.Memory.create ~reg ~capacity:(64 * 1024 * 1024) m))
          mems;
        let ci =
          match (Interp.default_engine (), g.Generate.watchdog_compiled) with
          | `Compiled, Some compiled ->
              Interp.create ~compiled ~mode:Interp.Checker ~node ~res
                g.Generate.watchdog_prog
          | _ ->
              Interp.create ~mode:Interp.Checker ~node ~res
                g.Generate.watchdog_prog
        in
        let outcome = ref Not_reproduced in
        ignore
          (Wd_sim.Sched.spawn ~name:"repro" sched (fun () ->
               match
                 Wd_sim.Sched.timeout_join sched ~timeout (fun () ->
                     Interp.call ci u.Reduction.ufunc.fname
                       (List.map copy_value args))
               with
               | Ok _ -> outcome := Not_reproduced
               | Error `Timeout -> outcome := Reproduced Wd_watchdog.Report.Hang
               | Error `Killed -> ()
               | Error (`Exn e) -> (
                   match e with
                   | Interp.Violation { vkind = "liveness"; _ } ->
                       outcome := Reproduced Wd_watchdog.Report.Hang
                   | Interp.Violation { msg; _ } ->
                       outcome := Reproduced (Wd_watchdog.Report.Assert_fail msg)
                   | Wd_env.Disk.Io_error m
                   | Wd_env.Net.Net_error m
                   | Wd_env.Memory.Out_of_memory m ->
                       outcome := Reproduced (Wd_watchdog.Report.Error_sig m)
                   | e ->
                       outcome :=
                         Reproduced
                           (Wd_watchdog.Report.Checker_crash (Printexc.to_string e)))));
        ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 60) sched);
        !outcome
      end

(* Cross-node entry point: the evidence a fleet leader ships in a [Recover]
   command is the report's wire bytes; decode them and replay. The wire
   codec makes the repro possible on a machine that never saw the failure —
   the captured mimic payload travels inside the bytes. *)
let run_wire ?fault ?timeout g ~wire =
  match Wd_watchdog.Report.of_wire wire with
  | Error e -> Wire_error e
  | Ok report -> run ?fault ?timeout g ~report

let pp_outcome ppf = function
  | Reproduced k ->
      Fmt.pf ppf "reproduced (%s)" (Wd_watchdog.Report.fkind_name k)
  | Not_reproduced -> Fmt.string ppf "not reproduced (clean environment passes)"
  | Unknown_checker -> Fmt.string ppf "unknown checker"
  | Context_incomplete -> Fmt.string ppf "context incomplete"
  | Wire_error e -> Fmt.pf ppf "wire error (%s)" e
