(** Cluster campaign cell: boot a fleet described by a [Topology.spec]
    inside a single deterministic scheduler world, inject one
    cluster-scoped scenario, and grade the fleet plane's verdicts against
    the scenario's expectation. A cell is a pure function of
    (seed, topology, scenario), so campaigns fan cells out over domains
    exactly like single-node ones. *)

type config = {
  seed : int;
  topology : Topology.spec;
      (** node count, per-node target system, link-fabric overrides *)
  warmup : int64;  (** let checkers learn latency baselines first *)
  observe : int64;  (** post-injection observation window *)
  engine : Wd_ir.Interp.engine option;
      (** IR engine for every node's target + checkers; [None] follows the
          process default *)
}

val default_config : config
(** Seed 42, a uniform 5-node zkmini fleet, 8 s warmup, 15 s observation. *)

type world
(** A booted-but-uninjected fleet; [run] drives one through a scenario and
    the bench harness reuses it for steady-state measurements. The plane's
    mutable internals stay behind the accessors below. *)

val world_sched : world -> Wd_sim.Sched.t
val world_fabric : world -> Fabric.t
val world_nodes : world -> Node.t list
val world_agents : world -> Membership.t list
(** Index-aligned with [world_nodes]. *)

val world_elections : world -> Election.t list
(** Index-aligned with [world_nodes]. *)

val boot :
  ?engine:Wd_ir.Interp.engine ->
  seed:int ->
  topology:Topology.spec ->
  unit ->
  world
(** Boot the fleet the topology describes — one scheduler world, one
    fabric carrying the topology's link profiles, one node (of the
    topology's per-slot system) plus membership/election agents and a
    fleet engine per slot — and start every agent. *)

type result = {
  cr_csid : string;
  cr_system : string;
      (** [Topology.describe]: the bare system name for uniform fleets,
          the topology's own name otherwise *)
  cr_node_systems : string list;  (** per node, index order *)
  cr_seed : int;
  cr_nodes : int;
  cr_inject_at : int64;
  cr_events : (string * Fleet.event) list;
      (** (recording engine's node, event); chronological, one per
          distinct verdict across the whole fleet *)
  cr_first_latency : int64 option;  (** first verdict - injection time *)
  cr_indicted_nodes : string list;
  cr_indicted_links : (string * string) list;
  cr_component : string option;
  cr_overloaded : bool;
  cr_as_expected : bool;
  cr_component_ok : bool;
  cr_membership_events : int;
  cr_suspected_events : int;
  cr_checker_count : int;
  cr_workload_ok : float;  (** min per-node success ratio *)
  cr_leader_history : (string * (int64 * string) list) list;
  cr_final_leaders : string list;
  cr_elections : int;
  cr_converged_at : int64 option;
  cr_recoveries : (string * Wd_watchdog.Recovery.event) list;
  cr_first_recovery_latency : int64 option;
  cr_evidence_wire : string option;
      (** wire bytes behind the first node indictment — the cross-node
          repro seed *)
}

val run : ?cfg:config -> string -> result
(** Run scenario [csid] against the config's topology. Raises
    [Invalid_argument] before booting anything if the scenario touches a
    node index the topology doesn't have, or the topology itself is
    malformed. Verdicts are merged across every node's engine — under
    failover the record legitimately moves from the old leader to its
    successor. *)
