(* Benchmark harness.

   Part 1 — bechamel micro-benchmarks of the infrastructure itself: one
   [Test.make] per table/figure-bearing component, measuring the host-time
   cost of the machinery that the experiments rely on (scheduler, IR
   interpreter, AutoWatchdog analysis, context synchronisation, checker
   execution).

   Part 2 — regeneration of every table and figure of the paper (E1-E10 as
   indexed in DESIGN.md), printed in full. Absolute numbers come from the
   deterministic simulator; the shapes are what reproduce the paper. *)

open Bechamel
open Toolkit

module Sched = Wd_sim.Sched
module Vtime = Wd_sim.Time
module B = Wd_ir.Builder
module Generate = Wd_autowatchdog.Generate

(* --- micro-benchmark subjects --- *)

let bench_sched_spawn_run =
  Test.make ~name:"sim/spawn+run 100 tasks"
    (Staged.stage (fun () ->
         let s = Sched.create ~seed:1 () in
         for i = 0 to 99 do
           ignore
             (Sched.spawn ~name:(string_of_int i) s (fun () ->
                  Sched.sleep (Vtime.us 10)))
         done;
         ignore (Sched.run s)))

let bench_sched_ping_pong =
  Test.make ~name:"sim/1000 context switches"
    (Staged.stage (fun () ->
         let s = Sched.create ~seed:1 () in
         ignore
           (Sched.spawn s (fun () ->
                for _ = 1 to 1000 do
                  Sched.yield ()
                done));
         ignore (Sched.run s)))

let interp_prog =
  B.program "bench"
    ~funcs:
      [
        B.func "sum_to" ~params:[ "n" ]
          [
            B.let_ "acc" (B.i 0);
            B.let_ "i" (B.i 1);
            B.while_
              B.(v "i" <=: v "n")
              [
                B.assign "acc" B.(v "acc" +: v "i");
                B.assign "i" B.(v "i" +: i 1);
              ];
            B.return (B.v "acc");
          ];
      ]
    ~entries:[]

let bench_interp_statements =
  Test.make ~name:"ir/interpret 3000-stmt loop"
    (Staged.stage (fun () ->
         let s = Sched.create ~seed:1 () in
         let reg = Wd_env.Faultreg.create () in
         let res = Wd_ir.Runtime.create ~reg ~rng:(Wd_sim.Rng.create ~seed:2) in
         let main = Wd_ir.Interp.create ~node:"n" ~res interp_prog in
         ignore
           (Sched.spawn s (fun () ->
                ignore (Wd_ir.Interp.call main "sum_to" [ Wd_ir.Ast.VInt 1000 ])));
         ignore (Sched.run s)))

let kvs_prog = Wd_targets.Kvs.program ()
let zk_prog = Wd_targets.Zkmini.program ()

let bench_generate_kvs =
  Test.make ~name:"autowatchdog/analyze kvs"
    (Staged.stage (fun () -> ignore (Generate.analyze kvs_prog)))

let bench_generate_zk =
  Test.make ~name:"autowatchdog/analyze zkmini"
    (Staged.stage (fun () -> ignore (Generate.analyze zk_prog)))

let bench_context_sync =
  Test.make ~name:"watchdog/hook capture + context sync"
    (Staged.stage
       (let w = Wd_watchdog.Wcontext.create () in
        Wd_watchdog.Wcontext.register_unit w ~unit_id:"u" ~params:[ "a"; "b" ];
        Wd_watchdog.Wcontext.bind_hook w ~hook_id:0 ~unit_id:"u"
          ~captures:[ ("a", "ta"); ("b", "tb") ];
        let payload = Wd_ir.Ast.VBytes (Bytes.create 256) in
        fun () ->
          Wd_watchdog.Wcontext.sink w ~now:1L 0
            [ ("ta", Wd_ir.Ast.copy_value payload); ("tb", Wd_ir.Ast.VInt 1) ];
          ignore (Wd_watchdog.Wcontext.args w "u")))

let bench_checker_execution =
  Test.make ~name:"watchdog/kvs+watchdog, 2 sim-seconds"
    (Staged.stage (fun () ->
         let g = Generate.analyze kvs_prog in
         let s = Sched.create ~seed:1 () in
         let reg = Wd_env.Faultreg.create () in
         let t =
           Wd_targets.Kvs.boot ~sched:s ~reg
             ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
         in
         let driver = Wd_watchdog.Driver.create s in
         ignore (Generate.attach g ~sched:s ~main:t.Wd_targets.Kvs.leader ~driver);
         ignore (Wd_targets.Kvs.start t);
         Wd_watchdog.Driver.start driver;
         ignore (Sched.run ~until:(Vtime.sec 2) s)))

let microbenches =
  [
    bench_sched_spawn_run;
    bench_sched_ping_pong;
    bench_interp_statements;
    bench_generate_kvs;
    bench_generate_zk;
    bench_context_sync;
    bench_checker_execution;
  ]

let run_microbenches () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  print_endline "== micro-benchmarks (host time per run) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name bench ->
          let est = Analyze.one ols Instance.monotonic_clock bench in
          match Analyze.OLS.estimates est with
          | Some (t :: _) -> Printf.printf "  %-45s %14.1f ns/run\n%!" name t
          | Some [] | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    microbenches;
  print_newline ()

let () =
  run_microbenches ();
  (* Part 2: every table and figure of the paper. *)
  List.iter
    (fun (name, f) ->
      Printf.printf "\n================ %s ================\n\n%!" name;
      print_string (f ()))
    (Wd_harness.Experiments.all_texts ())
