(** Runtime trace consumer: folds the scheduler's op-level trace events
    into per-key state that compiled inferred checkers query. Create it
    before booting the monitored system (it installs the trace); checkers
    call {!drain} before each evaluation. *)

type key_state = {
  mutable st_started : int;
  mutable st_completed : int;
  mutable st_failed : int;
  mutable st_first_err : string;
  mutable st_last_start : int64;
  mutable st_worst : int64;
  mutable st_worst_at : int64;
  mutable st_first_seen : int64;
  mutable st_inflight : (int * int64 * string) list;
}

type t

val create : ?capacity:int -> Wd_sim.Sched.t -> t
(** Installs a fresh trace ring on the scheduler via
    {!Wd_sim.Sched.set_trace}. *)

val drain : t -> unit
(** Fold all new trace events into the state. Cheap when nothing new
    happened; shared by every checker on the same monitor. On ring
    overflow the in-flight table resets (counters survive) so stale
    entries can never read as phantom hangs. *)

val view : t -> string -> key_state option
val seen : t -> string -> bool

val oldest_inflight : t -> string -> (int * int64 * string) option
(** Longest-running in-flight occurrence: [(task_id, started, func)]. *)

val overlapped_at : t -> string -> string -> int64 option
(** First instant the two keys were observed concurrently in flight on the
    same target, if ever. *)

val dropped : t -> int
val keys_tracked : t -> int
