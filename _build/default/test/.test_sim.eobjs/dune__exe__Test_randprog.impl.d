test/test_randprog.ml: Alcotest Fmt Hashtbl List QCheck QCheck_alcotest String Wd_analysis Wd_autowatchdog Wd_env Wd_ir Wd_sim Wd_watchdog
