(* Tests for the adaptive checker-scheduling layer (Wd_watchdog.Schedule):
   policy construction, campaign determinism across domain-pool widths,
   dedup/shared-snapshot accounting through the driver's checker stats, and
   the hard latency-bound guarantee under randomized load spikes. *)

open Wd_watchdog
module Sched = Wd_sim.Sched
module Time = Wd_sim.Time
module Campaign = Wd_harness.Campaign

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- policy construction --- *)

let test_policy_construction () =
  (match Schedule.fixed with
  | Schedule.Fixed c -> check "historical cadence" true (c = 1.0)
  | Schedule.Adaptive _ -> Alcotest.fail "Schedule.fixed must be Fixed");
  (match Schedule.adaptive () with
  | Schedule.Adaptive { target_overhead; latency_bound; sample_window } ->
      check "default target" true (target_overhead = 0.005);
      check "default bound" true (latency_bound = Time.sec 2);
      check "default window" true (sample_window = Time.ms 500)
  | Schedule.Fixed _ -> Alcotest.fail "Schedule.adaptive must be Adaptive");
  let rejects f = match f () with
    | exception Invalid_argument _ -> true
    | (_ : Schedule.policy) -> false
  in
  check "zero target rejected" true
    (rejects (fun () -> Schedule.adaptive ~target_overhead:0.0 ()));
  check "zero bound rejected" true
    (rejects (fun () -> Schedule.adaptive ~latency_bound:0L ()));
  check "zero window rejected" true
    (rejects (fun () -> Schedule.adaptive ~sample_window:0L ()))

(* --- dedup + shared-snapshot accounting ---

   A versioned checker whose context never changes must be deduplicated
   (within the latency bound) and the skips must land in both the driver's
   per-checker stats and the scheduler's aggregate; a version-less checker
   on the same driver must never be deduplicated. *)

let test_dedup_accounting () =
  let s = Sched.create ~seed:7 () in
  (* background traffic keeps the checkers' event share under the target so
     the throttle stays at 1x — in an idle world the share saturates the
     throttle and every cadence stretches to the bound, hiding dedup *)
  ignore
    (Sched.spawn ~name:"traffic" ~daemon:true s (fun () ->
         while true do
           Sched.sleep (Time.ms 1)
         done));
  let driver =
    Driver.create ~schedule:(Schedule.adaptive ~target_overhead:0.1 ()) s
  in
  let versioned_times = ref [] in
  Driver.add_checker driver
    (Checker.make ~id:"versioned" ~period:(Time.ms 100)
       ~ctx_version:(fun () -> 0)
       (fun ~now ->
         versioned_times := now :: !versioned_times;
         Checker.Pass));
  Driver.add_checker driver
    (Checker.make ~id:"plain" ~period:(Time.ms 100) (fun ~now:_ -> Checker.Pass));
  Driver.start driver;
  ignore (Sched.run ~until:(Time.sec 10) s);
  let st_of id =
    List.find (fun st -> st.Driver.cs_id = id) (Driver.stats driver)
  in
  let v = st_of "versioned" and p = st_of "plain" in
  check "versioned deduplicated" true (v.Driver.cs_dedups > 0);
  check_int "plain never deduplicated" 0 p.Driver.cs_dedups;
  check "plain runs every period" true (p.Driver.cs_executions >= 50);
  check "dedup sheds most versioned runs" true
    (v.Driver.cs_executions < p.Driver.cs_executions / 2);
  (* the latency bound still forces real executions of the parked checker *)
  check "versioned keeps executing at the bound" true
    (v.Driver.cs_executions >= 4);
  let sst = Schedule.stats (Driver.schedule driver) in
  check_int "scheduler aggregate matches checker stats" v.Driver.cs_dedups
    sst.Schedule.st_dedup_skips;
  check "co-scheduled runs shared a snapshot" true
    (sst.Schedule.st_shared_syncs > 0);
  check "windows closed" true (sst.Schedule.st_windows > 0);
  (* no versioned gap may exceed the default 2s bound (+ dispatch quantum) *)
  let limit = Int64.add (Time.sec 2) (Time.ms 200) in
  let rec gaps_ok = function
    | a :: (b :: _ as rest) -> Int64.sub a b <= limit && gaps_ok rest
    | _ -> true
  in
  check "bounded gaps" true (gaps_ok !versioned_times)

(* --- determinism across domain-pool widths ---

   An adaptive-schedule campaign batch is a pure function of the seed: the
   scheduler's inputs are all virtual-time or scheduler-local, so running
   the same cells at width 1 and width 3 must produce structurally
   identical runs (outcomes, latencies, events, reports). *)

let test_adaptive_determinism_across_widths () =
  let cfg =
    {
      Campaign.default_config with
      Campaign.schedule = Schedule.adaptive ~target_overhead:0.0001 ();
    }
  in
  let sids =
    Wd_faults.Catalog.all
    |> List.filter (fun s -> s.Wd_faults.Catalog.special <> Some "crash")
    |> List.filteri (fun i _ -> i < 4)
    |> List.map (fun s -> s.Wd_faults.Catalog.sid)
  in
  let cells = List.map (fun sid -> Campaign.cell ~cfg sid) sids in
  let w1 = Campaign.run_batch ~jobs:1 cells in
  let w3 = Campaign.run_batch ~jobs:3 cells in
  check "4 runs" true (List.length w1 = 4);
  check "identical across widths" true (w1 = w3);
  (* and the schedule is doing something: at least one scenario detected *)
  check "still detects" true
    (List.exists
       (fun r ->
         List.exists
           (fun (_, o) -> o.Campaign.o_detected)
           r.Campaign.r_outcomes)
       w1)

(* --- QCheck: the latency bound survives randomized load spikes ---

   Whatever the load pattern does to the throttle, the gap between two
   executions of a checker must never exceed
   max(period, latency_bound) + dispatch slack. The target overhead is set
   absurdly tight so the throttle saturates, making the bound the only
   thing keeping the checker alive. *)

let prop_latency_bound_under_spikes =
  QCheck.Test.make
    ~name:"latency bound never exceeded under randomized load spikes"
    ~count:25
    QCheck.(
      make
        Gen.(
          pair (int_bound 1000)
            (list_size (int_range 3 12) (int_bound 40))))
    (fun (seed, spikes) ->
      let s = Sched.create ~seed:(succ seed) () in
      let bound = Time.sec 1 in
      let driver =
        Driver.create
          ~schedule:
            (Schedule.adaptive ~target_overhead:1e-6 ~latency_bound:bound
               ~sample_window:(Time.ms 200) ())
          s
      in
      let times = ref [] in
      Driver.add_checker driver
        (Checker.make ~id:"bounded" ~period:(Time.ms 50)
           ~ctx_version:(fun () -> 0)
           (fun ~now ->
             times := now :: !times;
             Checker.Pass));
      let load = ref 0 in
      Schedule.set_load_probe (Driver.schedule driver) (fun () -> !load);
      ignore
        (Sched.spawn ~name:"spikes" ~daemon:true s (fun () ->
             List.iter
               (fun k ->
                 load := k;
                 for _ = 1 to k do
                   Sched.sleep (Time.ms 5)
                 done;
                 Sched.sleep (Time.ms 20))
               spikes;
             load := 0));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 12) s);
      let ts = List.rev !times in
      (* gap_bound = max(period, bound) = 1s; the central loop dispatches
         on a 50ms quantum, so allow two quanta of slack *)
      let limit = Int64.add bound (Time.ms 100) in
      let rec gaps_ok = function
        | a :: (b :: _ as rest) -> Int64.sub b a <= limit && gaps_ok rest
        | _ -> true
      in
      List.length ts >= 2 && gaps_ok ts)

let () =
  Alcotest.run "wd_schedule"
    [
      ( "policy",
        [ Alcotest.test_case "construction" `Quick test_policy_construction ] );
      ( "accounting",
        [ Alcotest.test_case "dedup + shared syncs" `Quick test_dedup_accounting ]
      );
      ( "determinism",
        [
          Alcotest.test_case "adaptive campaign identical across widths"
            `Quick test_adaptive_determinism_across_widths;
        ] );
      ( "latency bound",
        [ QCheck_alcotest.to_alcotest prop_latency_bound_under_spikes ] );
    ]
