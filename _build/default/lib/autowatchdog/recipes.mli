(** Checker recipes (§4.1 "enhance C with runtime checks"): per-op-kind
    safety checks appended to reduced units.

    - After a mimicked full write: read back and verify the checksum (on the
      checker's scratch copy — side-effect free, same device).
    - Around a mimicked read of a context-supplied path: tolerate legitimate
      staleness (the file may have been consumed since capture) by reading a
      live file from the same directory; only "no such file" is benign.

    Inserted statements reuse the anchor operation's location so failures
    pinpoint the original program statement. *)

val enhance_block : Wd_ir.Ast.block -> Wd_ir.Ast.block

val enhance_unit : Wd_analysis.Reduction.unit_ -> Wd_analysis.Reduction.unit_
