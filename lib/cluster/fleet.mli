(** The fleet correlation engine: turns N streams of local findings into
    one fleet-level verdict.

    Every node carries one of these engines, but only the elected
    leader's runs ([Election] drives [step] leader-only). Nothing here
    reaches across node boundaries: evidence arrives as messages —
    wire-encoded reports via [ingest_wire], piggybacked accusation lists
    and report digests via [note_gossip_evidence].

    Rule set, evaluated in priority order each tick:

    + {b Global overload} — signal evidence on a majority of nodes while
      every mimic checker is quiet: legitimate load, indict nobody.
    + {b Node-local gray failure} — a node's mimic checkers alarm AND a
      [quorum] of distinct peers independently accuse it. Indict the
      node, name the component, keep the localising report's wire bytes
      as evidence.
    + {b Fabric-level failure} — no mimic alarms anywhere, probes fail on
      specific pairs, and every involved node still has a healthy link to
      some peer. Indict the link pairs, never a node.

    A candidate verdict must survive [confirm] consecutive ticks before
    it is recorded, and each distinct verdict is recorded once. The
    per-node report inboxes, digest sets, accusation matrix and debounce
    streaks are all private — peers influence a verdict only through the
    two intake functions. *)

type verdict =
  | Node_gray of { node : string; component : string option }
  | Link_fault of { links : (string * string) list }
  | Overload

type event = {
  ev_at : int64;
  ev_verdict : verdict;
  ev_evidence : string option;
      (** wire bytes of the report that localised a [Node_gray] verdict *)
}

type t

val create :
  ?tick:int64 ->
  ?mimic_window:int64 ->
  ?signal_window:int64 ->
  ?accuse_window:int64 ->
  ?quorum:int ->
  ?confirm:int ->
  sched:Wd_sim.Sched.t ->
  me:string ->
  node_ids:string list ->
  unit ->
  t

val tick_period : t -> int64

(** {2 Evidence intake} *)

val ingest_wire : t -> from_:string -> wire:string -> unit
(** File a wire-encoded watchdog report into [from_]'s inbox. Duplicates
    (re-sends after a leader change) dedupe on the wire bytes; undecodable
    wires count as [rejected]. *)

val note_gossip_evidence :
  t ->
  from_:string ->
  accuse_probe:string list ->
  accuse_suspect:string list ->
  digests:Fabric.digest list ->
  unit
(** Record [from_]'s latest piggybacked gossip view. Accusations are kept
    per accuser and fade if the accuser's gossip stops; digests
    corroborate shipped reports. *)

val ingested : t -> int
val rejected : t -> int

val quorum_accused : t -> string -> now:int64 -> bool
(** Is this node accused by a quorum of peers right now?  The election
    agent consults this about {e itself}: a leader the fleet is about to
    indict must demote instead of stepping its own engine. *)

val step : t -> now:int64 -> event list
(** One debounced correlation step; returns the events recorded {e this}
    tick so the caller (the leader's election agent) can act on fresh
    verdicts. *)

(** {2 Results} *)

val events : t -> event list
(** Chronological. *)

val verdict_key : verdict -> string
val indicted_nodes : t -> string list
val indicted_links : t -> (string * string) list
val overloaded : t -> bool
val first_component : t -> string option

val first_evidence : t -> string option
(** Wire bytes attached to the first [Node_gray] event, if any. *)

val pp_verdict : Format.formatter -> verdict -> unit
