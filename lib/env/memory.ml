(* Simulated memory subsystem: an allocation accountant with a GC-pause
   model. When utilisation crosses [pause_threshold], allocations stall for
   a duration that grows with pressure — the "long GC pause" behaviour the
   paper's §3.3 signal-checker example detects by measuring sleep overshoot.
   Leaks are produced by components that alloc without freeing. *)

exception Out_of_memory of string

type t = {
  name : string;
  capacity : int;
  reg : Faultreg.t;
  alloc_site : string; (* interned "mem:<name>:alloc", built once *)
  mutable used : int;
  mutable peak : int;
  mutable allocs : int;
  mutable frees : int;
  mutable pauses : int;
  mutable total_pause_ns : int64;
  pause_threshold : float;      (* utilisation above which stalls begin *)
  max_pause : int64;            (* stall at 100% utilisation *)
}

let create ?(pause_threshold = 0.80) ?(max_pause = Wd_sim.Time.ms 400) ~reg
    ~capacity name =
  if capacity <= 0 then invalid_arg "Memory.create: capacity must be positive";
  {
    name;
    capacity;
    reg;
    alloc_site = Wd_sim.Site.str (Wd_sim.Site.intern ("mem:" ^ name ^ ":alloc"));
    used = 0;
    peak = 0;
    allocs = 0;
    frees = 0;
    pauses = 0;
    total_pause_ns = 0L;
    pause_threshold;
    max_pause;
  }

let name m = m.name
let used m = m.used
let capacity m = m.capacity
let utilisation m = float_of_int m.used /. float_of_int m.capacity

let stats m = (m.allocs, m.frees, m.peak, m.pauses, m.total_pause_ns)

(* Pause duration for the current utilisation: zero below the threshold,
   quadratic growth up to [max_pause] at full capacity. *)
let pause_for m =
  let u = utilisation m in
  if u <= m.pause_threshold then 0L
  else
    let x = (u -. m.pause_threshold) /. (1.0 -. m.pause_threshold) in
    Int64.of_float (Int64.to_float m.max_pause *. x *. x)

let alloc m size =
  if size < 0 then invalid_arg "Memory.alloc: negative size";
  let s = Wd_sim.Sched.get () in
  let now = Wd_sim.Sched.now s in
  let behaviours =
    if Faultreg.armed m.reg then
      Faultreg.consult m.reg ~site:m.alloc_site ~now
    else []
  in
  (match
     Faultreg.apply_common behaviours ~now ~stop_of:(Faultreg.stop_of m.reg)
   with
  | Result.Error msg -> raise (Out_of_memory msg)
  | Result.Ok _ -> ());
  if m.used + size > m.capacity then
    raise (Out_of_memory (Fmt.str "%s: %d + %d > %d" m.name m.used size m.capacity));
  let pause = pause_for m in
  if pause > 0L then begin
    m.pauses <- m.pauses + 1;
    m.total_pause_ns <- Int64.add m.total_pause_ns pause;
    Wd_sim.Sched.sleep pause
  end;
  m.used <- m.used + size;
  if m.used > m.peak then m.peak <- m.used;
  m.allocs <- m.allocs + 1

let free m size =
  if size < 0 then invalid_arg "Memory.free: negative size";
  m.used <- max 0 (m.used - size);
  m.frees <- m.frees + 1
