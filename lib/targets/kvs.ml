(* kvs — the paper's running example (Figure 1): a key-value store with a
   simple interface (GET, SET, APPEND, DEL) and complex internals — request
   listener, indexer, disk flusher, replication engine, compaction manager,
   snapshot writer, partition manager.

   The whole system is written in the IR so AutoWatchdog can analyse it.
   Two nodes run the same program: "kvs1" (leader: listener + background
   services) and "kvs2" (replica: apply loop). Clients talk to the leader
   through the "kvs.requests" queue and per-request reply queues, which is
   what probe checkers use as the public API. *)

open Wd_ir
module B = Builder

let ( +: ) = B.( +: )
let ( *: ) = B.( *: )
let ( =: ) = B.( =: )
let ( <>: ) = B.( <>: )
let ( >: ) = B.( >: )
let ( ^: ) = B.( ^: )

let request_queue = "kvs.requests"
let leader_node = "kvs1"
let replica_node = "kvs2"
let monitor_node = "monitor"
let disk_name = "kvs.disk"
let replica_disk_name = "kvs.disk2"
let net_name = "kvs.net"
let mem_name = "kvs.mem"

(* --- the IR program --- *)

let handle_get =
  B.func "handle_get" ~params:[ "key" ]
    [
      B.sync "kvs.index_lock"
        [ B.state_get ~bind:"idx" ~global:"kvs.index" ];
      B.state_get ~bind:"gets" ~global:"kvs.stats.gets";
      B.state_set ~global:"kvs.stats.gets" ~value:(B.v "gets" +: B.i 1);
      B.return (B.prim "map_get_opt" [ B.v "idx"; B.v "key"; B.s "" ]);
    ]

let replicate =
  B.func "replicate" ~params:[ "key"; "value" ]
    [
      B.let_ "payload"
        (B.prim "map_put"
           [
             B.prim "map_put" [ B.prim "map_empty" []; B.s "key"; B.v "key" ];
             B.s "value";
             B.v "value";
           ]);
      B.net_send ~net:net_name ~dst:(B.s replica_node) ~payload:(B.v "payload");
      B.return_unit;
    ]

let handle_set ~leak_bug ~deadlock_bug =
  B.func "handle_set" ~params:[ "key"; "value" ]
    ([
       B.compute_us 2 ~note:"validate request";
       B.sync "kvs.index_lock"
         ([
            B.state_get ~bind:"idx" ~global:"kvs.index";
            B.state_set ~global:"kvs.index"
              ~value:(B.prim "map_put" [ B.v "idx"; B.v "key"; B.v "value" ]);
          ]
         @
         if deadlock_bug then
           (* Bug variant: grabs the flush lock while holding the index
              lock — the reverse of the flusher's order (AB/BA cycle). *)
           [
             B.sleep_ms 1;
             B.sync "kvs.flush_lock"
               [ B.state_get ~bind:"__dirty_peek" ~global:"kvs.dirty" ];
           ]
         else []);
       B.mem_alloc ~pool:mem_name ~size:(B.len (B.v "value") +: B.i 64);
       B.state_get ~bind:"seq" ~global:"kvs.seq";
       B.state_set ~global:"kvs.seq" ~value:(B.v "seq" +: B.i 1);
       B.state_get ~bind:"inmem" ~global:"kvs.in_memory";
       B.if_ (B.not_ (B.v "inmem"))
         [
           B.let_ "entry"
             (B.prim "bytes_of_str"
                [ B.prim "concat" [ B.v "key"; B.s "="; B.v "value"; B.s ";" ] ]);
           B.disk_append ~disk:disk_name ~path:(B.s "wal/log") ~data:(B.v "entry");
         ]
         [];
       B.state_get ~bind:"dirty" ~global:"kvs.dirty";
       B.state_set ~global:"kvs.dirty"
         ~value:(B.prim "map_put" [ B.v "dirty"; B.v "key"; B.v "value" ]);
       B.call "replicate" [ B.v "key"; B.v "value" ];
       B.state_get ~bind:"sets" ~global:"kvs.stats.sets";
       B.state_set ~global:"kvs.stats.sets" ~value:(B.v "sets" +: B.i 1);
     ]
    @ (if leak_bug then
         (* Bug variant: the 64-byte request buffer is never released. *)
         []
       else [ B.mem_free ~pool:mem_name ~size:(B.i 64) ])
    @ [ B.return_unit ])

let handle_append =
  B.func "handle_append" ~params:[ "key"; "extra" ]
    [
      B.call ~bind:"old" "handle_get" [ B.v "key" ];
      B.call "handle_set" [ B.v "key"; B.v "old" ^: B.v "extra" ];
      B.return_unit;
    ]

let handle_del =
  B.func "handle_del" ~params:[ "key" ]
    [
      B.sync "kvs.index_lock"
        [
          B.state_get ~bind:"idx" ~global:"kvs.index";
          B.state_set ~global:"kvs.index"
            ~value:(B.prim "map_del" [ B.v "idx"; B.v "key" ]);
        ];
      B.mem_free ~pool:mem_name ~size:(B.i 64);
      B.return_unit;
    ]

let reply_msg data =
  B.prim "map_put"
    [
      B.prim "map_put" [ B.prim "map_empty" []; B.s "id"; B.v "reply" ];
      B.s "data";
      data;
    ]

let handle_request =
  B.func "handle_request" ~params:[ "req" ]
    [
      B.let_ "op" (B.prim "map_get_opt" [ B.v "req"; B.s "op"; B.s "" ]);
      B.let_ "key" (B.prim "map_get_opt" [ B.v "req"; B.s "key"; B.s "" ]);
      B.let_ "reply" (B.prim "map_get_opt" [ B.v "req"; B.s "reply"; B.s "" ]);
      B.if_ (B.v "op" =: B.s "set")
        [
          B.let_ "value" (B.prim "map_get_opt" [ B.v "req"; B.s "value"; B.s "" ]);
          B.call "handle_set" [ B.v "key"; B.v "value" ];
          B.if_ (B.v "reply" <>: B.s "")
            [ B.queue_put ~queue:"kvs.replies" ~data:(reply_msg (B.s "ok")) ]
            [];
        ]
        [
          B.if_ (B.v "op" =: B.s "get")
            [
              B.call ~bind:"res" "handle_get" [ B.v "key" ];
              B.if_ (B.v "reply" <>: B.s "")
                [
                  B.queue_put ~queue:"kvs.replies"
                    ~data:(reply_msg (B.s "val:" ^: B.v "res"));
                ]
                [];
            ]
            [
              B.if_ (B.v "op" =: B.s "append")
                [
                  B.let_ "value"
                    (B.prim "map_get_opt" [ B.v "req"; B.s "value"; B.s "" ]);
                  B.call "handle_append" [ B.v "key"; B.v "value" ];
                  B.if_ (B.v "reply" <>: B.s "")
                    [
                      B.queue_put ~queue:"kvs.replies"
                        ~data:(reply_msg (B.s "ok"));
                    ]
                    [];
                ]
                [
                  B.if_ (B.v "op" =: B.s "del")
                    [
                      B.call "handle_del" [ B.v "key" ];
                      B.if_ (B.v "reply" <>: B.s "")
                        [
                          B.queue_put ~queue:"kvs.replies"
                            ~data:(reply_msg (B.s "ok"));
                        ]
                        [];
                    ]
                    [ B.log (B.s "unknown op") ];
                ];
            ];
        ];
      B.return_unit;
    ]

let listener_loop =
  B.func "listener_loop" ~params:[]
    [
      B.log (B.s "kvs listener started");
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:request_queue ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "req" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.call "handle_request" [ B.v "req" ];
            ]
            [];
        ];
    ]

let flush_segment =
  B.func "flush_segment" ~params:[ "path"; "data" ]
    [
      B.disk_write ~disk:disk_name ~path:(B.v "path") ~data:(B.v "data");
      (* checksum sidecar: same device, same path family — the reduction's
         similar-operation dedup folds it into the segment-write checker *)
      B.let_ "ck"
        (B.prim "bytes_of_str"
           [ B.prim "str_of_int" [ B.prim "checksum" [ B.v "data" ] ] ]);
      B.disk_write ~disk:disk_name
        ~path:(B.prim "concat" [ B.v "path"; B.s ".ck" ])
        ~data:(B.v "ck");
      B.disk_sync ~disk:disk_name;
      B.return_unit;
    ]

let flush_once ~leak_bug ~deadlock_bug =
  B.func "flush_once" ~params:[]
    [
      B.state_get ~bind:"inmem" ~global:"kvs.in_memory";
      B.if_ (B.not_ (B.v "inmem"))
        [
          B.sync "kvs.flush_lock"
            ((if deadlock_bug then
                (* Bug variant: consults the index while holding the flush
                   lock — opposite order to [handle_set]'s. *)
                [
                  B.sleep_ms 1;
                  B.sync "kvs.index_lock"
                    [ B.state_get ~bind:"__idx_peek" ~global:"kvs.index" ];
                ]
              else [])
            @ [
               B.state_get ~bind:"dirty" ~global:"kvs.dirty";
               B.let_ "n" (B.prim "map_len" [ B.v "dirty" ]);
               B.if_ (B.v "n" >: B.i 0)
                 ([
                    B.state_get ~bind:"seq" ~global:"kvs.seq";
                    B.let_ "path"
                      (B.prim "concat" [ B.s "seg/"; B.prim "str_of_int" [ B.v "seq" ] ]);
                    B.let_ "data"
                      (B.prim "bytes_of_str" [ B.prim "serialize" [ B.v "dirty" ] ]);
                    B.compute_us 5 ~note:"encode segment";
                    B.call "flush_segment" [ B.v "path"; B.v "data" ];
                    (* defensive barrier, redundant with the callee's sync:
                       the global reduction elides it from the checkers *)
                    B.disk_sync ~disk:disk_name;
                    B.state_set ~global:"kvs.dirty" ~value:(B.prim "map_empty" []);
                    B.state_get ~bind:"parts" ~global:"kvs.parts";
                    B.state_set ~global:"kvs.parts"
                      ~value:(B.prim "list_append" [ B.v "parts"; B.prim "list_cons" [ B.v "path"; Ast.Const (Ast.VList []) ] ]);
                  ]
                 @
                 if leak_bug then []
                 else [ B.mem_free ~pool:mem_name ~size:(B.v "n" *: B.i 64) ])
                 [];
             ]);
        ]
        [];
      B.return_unit;
    ]

let flusher_loop =
  B.func "flusher_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 200; B.call "flush_once" [] ] ]

let compact_once =
  B.func "compact_once" ~params:[]
    [
      B.disk_list ~bind:"segs" ~disk:disk_name ~prefix:(B.s "seg/") ();
      B.if_
        (B.len (B.v "segs") >: B.i 4)
        [
          B.let_ "merged" (B.prim "bytes_of_str" [ B.s "" ]);
          B.foreach "seg" (B.v "segs")
            [
              B.disk_read ~bind:"chunk" ~disk:disk_name ~path:(B.v "seg") ();
              B.assign "merged" (B.prim "bytes_cat" [ B.v "merged"; B.v "chunk" ]);
              B.compute_us 3 ~note:"merge sort runs";
            ];
          B.state_get ~bind:"seq" ~global:"kvs.seq";
          B.let_ "cpath"
            (B.prim "concat" [ B.s "compact/"; B.prim "str_of_int" [ B.v "seq" ] ]);
          B.disk_write ~disk:disk_name ~path:(B.v "cpath") ~data:(B.v "merged");
          B.foreach "seg" (B.v "segs")
            [ B.disk_delete ~disk:disk_name ~path:(B.v "seg") ];
          B.state_set ~global:"kvs.parts" ~value:(Ast.Const (Ast.VList []));
          (* Logically-deterministic invariant: partitions stay sorted. The
             paper argues this belongs to unit testing, not watchdogs. *)
          B.state_get ~bind:"parts" ~global:"kvs.parts";
          B.assert_ (B.prim "is_sorted" [ B.v "parts" ]) "partitions out of order";
        ]
        [];
      B.return_unit;
    ]

let compaction_loop =
  B.func "compaction_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 1000; B.call "compact_once" [] ] ]

let serialize_snapshot =
  B.func "serialize_snapshot" ~params:[]
    [
      B.state_get ~bind:"inmem" ~global:"kvs.in_memory";
      B.if_ (B.not_ (B.v "inmem"))
        [
          B.state_get ~bind:"idx" ~global:"kvs.index";
          B.let_ "data" (B.prim "bytes_of_str" [ B.prim "serialize" [ B.v "idx" ] ]);
          B.sync "kvs.snap_lock"
            [
              B.disk_write ~disk:disk_name ~path:(B.s "snapshot/latest")
                ~data:(B.v "data");
            ];
        ]
        [];
      B.return_unit;
    ]

let snapshot_loop =
  B.func "snapshot_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 2000; B.call "serialize_snapshot" [] ] ]

let heartbeat_loop =
  B.func "heartbeat_loop" ~params:[]
    [
      B.while_true
        [
          B.sleep_ms 500;
          B.net_send ~net:net_name ~dst:(B.s monitor_node) ~payload:(B.s "hb:kvs1");
        ];
    ]

let replica_loop =
  B.func "replica_loop" ~params:[]
    [
      B.while_true
        [
          B.net_recv ~bind:"m" ~net:net_name ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "m"; B.s "ok"; B.bconst false ])
            [
              B.let_ "p" (B.prim "map_get" [ B.v "m"; B.s "payload" ]);
              B.let_ "key" (B.prim "map_get_opt" [ B.v "p"; B.s "key"; B.s "" ]);
              B.let_ "value" (B.prim "map_get_opt" [ B.v "p"; B.s "value"; B.s "" ]);
              B.state_get ~bind:"ridx" ~global:"kvs2.index";
              B.state_set ~global:"kvs2.index"
                ~value:(B.prim "map_put" [ B.v "ridx"; B.v "key"; B.v "value" ]);
              B.let_ "entry"
                (B.prim "bytes_of_str"
                   [ B.prim "concat" [ B.v "key"; B.s "="; B.v "value"; B.s ";" ] ]);
              B.disk_append ~disk:replica_disk_name ~path:(B.s "replica/wal")
                ~data:(B.v "entry");
            ]
            [];
        ];
    ]

(* Queue names are fixed strings in [Op] targets; the reply queue is chosen
   per request, so [handle_request] routes replies through a level of
   indirection implemented in the wrapper below (see [drain_replies]): the
   IR writes to the well-known "reply" queue tagged with the reply id. *)

let leader_entries = [ "listener"; "flusher"; "compactor"; "snapshotter"; "heartbeat" ]
let replica_entries = [ "replica" ]

let program ?(leak_bug = false) ?(deadlock_bug = false) () =
  B.program "kvs"
    ~funcs:
      [
        listener_loop;
        handle_request;
        handle_set ~leak_bug ~deadlock_bug;
        handle_get;
        handle_append;
        handle_del;
        replicate;
        flusher_loop;
        flush_once ~leak_bug ~deadlock_bug;
        flush_segment;
        compaction_loop;
        compact_once;
        snapshot_loop;
        serialize_snapshot;
        heartbeat_loop;
        replica_loop;
      ]
    ~entries:
      [
        B.entry "listener" "listener_loop";
        B.entry "flusher" "flusher_loop";
        B.entry "compactor" "compaction_loop";
        B.entry "snapshotter" "snapshot_loop";
        B.entry "heartbeat" "heartbeat_loop";
        B.entry "replica" "replica_loop";
      ]

(* --- booted instance + client API --- *)

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Runtime.resources;
  prog : Ast.program; (* the program actually running (maybe instrumented) *)
  leader : Interp.t;
  replica : Interp.t;
  disk : Wd_env.Disk.t;
  replica_disk : Wd_env.Disk.t;
  net : Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  mutable reply_seq : int;
}

let boot ?engine ?(in_memory = false) ?(mem_capacity = 64 * 1024 * 1024) ~sched
    ~reg ~prog () =
  (* environment randomness derives from the scheduler's seed, so a run is
     a pure function of that one seed *)
  let rng = Wd_sim.Rng.split (Wd_sim.Sched.rng sched) in
  let res = Runtime.create ~reg ~rng in
  let disk = Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) disk_name in
  let replica_disk =
    Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) replica_disk_name
  in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) net_name in
  let mem = Wd_env.Memory.create ~reg ~capacity:mem_capacity mem_name in
  Runtime.add_disk res disk;
  Runtime.add_disk res replica_disk;
  Runtime.add_net res net;
  Runtime.add_mem res mem;
  List.iter (Wd_env.Net.register net) [ leader_node; replica_node; monitor_node ];
  Runtime.set_global res "kvs.index" (Ast.VMap []);
  Runtime.set_global res "kvs2.index" (Ast.VMap []);
  Runtime.set_global res "kvs.dirty" (Ast.VMap []);
  Runtime.set_global res "kvs.parts" (Ast.VList []);
  Runtime.set_global res "kvs.seq" (Ast.VInt 0);
  Runtime.set_global res "kvs.stats.sets" (Ast.VInt 0);
  Runtime.set_global res "kvs.stats.gets" (Ast.VInt 0);
  Runtime.set_global res "kvs.in_memory" (Ast.VBool in_memory);
  let leader = Interp.create ?engine ~node:leader_node ~res prog in
  let replica = Interp.create ?engine ~node:replica_node ~res prog in
  {
    sched;
    reg;
    res;
    prog;
    leader;
    replica;
    disk;
    replica_disk;
    net;
    mem;
    reply_seq = 0;
  }

(* Route replies from the well-known "kvs.replies" queue to the per-request
   reply queue named in the message. *)
let spawn_reply_dispatcher t =
  Wd_sim.Sched.spawn ~name:"kvs/reply-dispatch" ~daemon:true t.sched (fun () ->
      let replies = Runtime.queue t.res "kvs.replies" in
      while true do
        let msg = Wd_sim.Channel.recv replies in
        match msg with
        | Ast.VMap kvs -> (
            match (List.assoc_opt "id" kvs, List.assoc_opt "data" kvs) with
            | Some (Ast.VStr id), Some data ->
                ignore (Wd_sim.Channel.try_send (Runtime.queue t.res id) data)
            | _, _ -> ())
        | _ -> ()
      done)

let start t =
  let leader_tasks = Interp.start ~entries:leader_entries t.leader t.sched in
  let replica_tasks = Interp.start ~entries:replica_entries t.replica t.sched in
  ignore (spawn_reply_dispatcher t);
  leader_tasks @ replica_tasks

(* Client request over the public interface; used by workloads and probe
   checkers. Blocks the calling task until a reply or the timeout. *)
let request ?(timeout = Wd_sim.Time.sec 2) t ~op ~key ~value =
  t.reply_seq <- t.reply_seq + 1;
  let reply_name = Fmt.str "reply/%d" t.reply_seq in
  let reply_q = Runtime.queue t.res reply_name in
  let req =
    Ast.VMap
      [
        ("op", Ast.VStr op);
        ("key", Ast.VStr key);
        ("value", Ast.VStr value);
        ("reply", Ast.VStr reply_name);
      ]
  in
  let inq = Runtime.queue t.res request_queue in
  if not (Wd_sim.Channel.try_send inq req) then `Err "request queue full"
  else
    match Wd_sim.Channel.recv_timeout reply_q ~timeout with
    | Some v -> `Ok v
    | None -> `Timeout

let set ?timeout t ~key ~value = request ?timeout t ~op:"set" ~key ~value
let get ?timeout t ~key = request ?timeout t ~op:"get" ~key ~value:""
let append ?timeout t ~key ~value = request ?timeout t ~op:"append" ~key ~value
let del ?timeout t ~key = request ?timeout t ~op:"del" ~key ~value:""

let stats_sets t =
  match Runtime.global t.res "kvs.stats.sets" with Ast.VInt n -> n | _ -> 0

let stats_gets t =
  match Runtime.global t.res "kvs.stats.gets" with Ast.VInt n -> n | _ -> 0
