(* Invariant synthesizer (stage 2): fit checkable invariants to mined
   observations. Five families:

   - Envelope: an operation observed often enough gets a deadline of
     p99 x safety-factor (floored, and never below the worst passing
     sample x a margin). In flight past the deadline = hang; completed
     past it = fail-slow.
   - Gap: an operation that recurred steadily in *every* passing run must
     keep recurring — silence beyond max-observed-gap x factor is a
     liveness violation (heartbeat-style absence).
   - Never_fail: an operation exercised heavily with zero failures across
     all runs must not raise; any Op_fail is an error-signature finding.
   - Precedes: key A's first occurrence preceded key B's in every run
     (transitively reduced); at runtime, B without A ever is a violation.
   - Never_concurrent: two well-exercised keys on the same target never
     overlapped in flight in any run AND share lockset evidence (a sync
     key held at every start of both); an observed overlap is a violation
     of the locking discipline.

   Support thresholds reject coincidental invariants: a key seen twice in
   one run constrains nothing. All outputs are canonically sorted and the
   model digests deterministically — same observations, same model. *)

type body =
  | Envelope of { p99 : int64; deadline : int64 }
  | Gap of { max_gap : int64; budget : int64 }
  | Never_fail
  | Precedes of { first : string } (* [first] must occur before ikey ever does *)
  | Never_concurrent of { other : string } (* same-target exclusion partner *)

type invariant = {
  ikey : string;
  ibody : body;
  isupport : int; (* completed samples backing the invariant *)
  iruns : int; (* distinct runs backing it *)
  iloc : Wd_ir.Loc.t option; (* static pinpoint, when the key resolves *)
}

type config = {
  min_samples : int;
  min_runs : int;
  safety_factor : int;
  min_deadline : int64;
  gap_factor : int;
  min_gap_budget : int64;
  max_gap_budget : int64;
  (* never-concurrent needs heavy support: a pair that merely happened to
     serialize in a handful of runs proves nothing *)
  concurrent_min_samples : int;
  max_concurrent_pairs : int;
}

let default_config =
  {
    min_samples = 30;
    min_runs = 3;
    safety_factor = 25;
    min_deadline = Wd_sim.Time.sec 2;
    gap_factor = 8;
    min_gap_budget = Wd_sim.Time.sec 5;
    max_gap_budget = Wd_sim.Time.sec 15;
    concurrent_min_samples = 100;
    max_concurrent_pairs = 16;
  }

type model = {
  m_system : string;
  m_runs : int;
  m_config : config;
  m_invariants : invariant list; (* canonically sorted *)
}

let family_name = function
  | Envelope _ -> "envelope"
  | Gap _ -> "gap"
  | Never_fail -> "never_fail"
  | Precedes _ -> "precedes"
  | Never_concurrent _ -> "never_concurrent"

let family_rank = function
  | Envelope _ -> 0
  | Gap _ -> 1
  | Never_fail -> 2
  | Precedes _ -> 3
  | Never_concurrent _ -> 4

let aux_key = function
  | Precedes { first } -> first
  | Never_concurrent { other } -> other
  | Envelope _ | Gap _ | Never_fail -> ""

let compare_invariant a b =
  compare
    (family_rank a.ibody, a.ikey, aux_key a.ibody)
    (family_rank b.ibody, b.ikey, aux_key b.ibody)

let percentile arr p =
  let n = Array.length arr in
  if n = 0 then 0L else arr.(min (n - 1) (int_of_float (p *. float_of_int n)))

let max_dur arr =
  let n = Array.length arr in
  if n = 0 then 0L else arr.(n - 1)

let i64_scale x k = Int64.mul x (Int64.of_int k)

(* Transitive reduction of the precedes DAG: drop (a, b) when some c has
   (a, c) and (c, b) — keeps the checker count linear in practice. *)
let hasse edges =
  let set = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace set e ()) edges;
  List.filter
    (fun (a, b) ->
      not
        (List.exists
           (fun (a', c) ->
             a' = a && c <> b && c <> a && Hashtbl.mem set (c, b))
           edges))
    edges

let synthesize ?(config = default_config) ?(locate = fun _ -> None) ~system
    (obs : Mine.observations) =
  let well_supported ks =
    ks.Mine.ks_count >= config.min_samples && ks.Mine.ks_runs >= config.min_runs
  in
  let inv key body ~support ~runs =
    { ikey = key; ibody = body; isupport = support; iruns = runs;
      iloc = locate key }
  in
  let envelopes =
    List.filter_map
      (fun ks ->
        if not (well_supported ks) then None
        else
          let p99 = percentile ks.Mine.ks_durs 0.99 in
          let deadline =
            max
              (max (i64_scale p99 config.safety_factor) config.min_deadline)
              (i64_scale (max_dur ks.Mine.ks_durs) 4)
          in
          Some
            (inv ks.Mine.ks_key
               (Envelope { p99; deadline })
               ~support:ks.Mine.ks_count ~runs:ks.Mine.ks_runs))
      obs.Mine.obs_keys
  in
  let gaps =
    List.filter_map
      (fun ks ->
        if not (well_supported ks && ks.Mine.ks_runs = obs.Mine.obs_runs) then
          None
        else
          let budget =
            max
              (i64_scale ks.Mine.ks_max_gap config.gap_factor)
              config.min_gap_budget
          in
          if budget > config.max_gap_budget then None
          else
            Some
              (inv ks.Mine.ks_key
                 (Gap { max_gap = ks.Mine.ks_max_gap; budget })
                 ~support:ks.Mine.ks_count ~runs:ks.Mine.ks_runs))
      obs.Mine.obs_keys
  in
  let never_fails =
    List.filter_map
      (fun ks ->
        if well_supported ks && ks.Mine.ks_fails = 0 then
          Some
            (inv ks.Mine.ks_key Never_fail ~support:ks.Mine.ks_count
               ~runs:ks.Mine.ks_runs)
        else None)
      obs.Mine.obs_keys
  in
  (* Ordering: consider only universally supported keys; keep pairs whose
     first occurrences are consistently ordered in every run, reduced. *)
  let universal =
    List.filter
      (fun ks -> well_supported ks && ks.Mine.ks_runs = obs.Mine.obs_runs)
      obs.Mine.obs_keys
    |> List.map (fun ks -> ks.Mine.ks_key)
  in
  let precedes =
    if obs.Mine.obs_runs < config.min_runs then []
    else
      let pos_per_run =
        List.map
          (fun order ->
            let h = Hashtbl.create 64 in
            List.iteri (fun i k -> Hashtbl.replace h k i) order;
            h)
          obs.Mine.obs_orders
      in
      let always_before a b =
        List.for_all
          (fun h ->
            match (Hashtbl.find_opt h a, Hashtbl.find_opt h b) with
            | Some ia, Some ib -> ia < ib
            | _ -> false)
          pos_per_run
      in
      let edges =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b -> if a <> b && always_before a b then Some (a, b) else None)
              universal)
          universal
      in
      List.map
        (fun (a, b) ->
          inv b (Precedes { first = a }) ~support:obs.Mine.obs_runs
            ~runs:obs.Mine.obs_runs)
        (hasse edges)
  in
  let never_concurrent =
    let hot =
      List.filter
        (fun ks ->
          ks.Mine.ks_count >= config.concurrent_min_samples
          && ks.Mine.ks_runs = obs.Mine.obs_runs)
        obs.Mine.obs_keys
    in
    let overlapped a b =
      let pair = if a < b then (a, b) else (b, a) in
      List.mem pair obs.Mine.obs_overlaps
    in
    (* Lockset gate: besides never having been observed overlapping, the
       pair must share a lock held at every start of both ops. Absence of
       overlap in finitely many passing runs is no proof for two ops that
       merely tend to serialize — such pairs eventually overlap in some
       legitimate interleaving and would false-alarm. A common lock makes
       the exclusion structural, so a runtime overlap means the locking
       discipline itself broke. *)
    let common_lock ks ks' =
      List.exists (fun l -> List.mem l ks'.Mine.ks_locks) ks.Mine.ks_locks
    in
    let rec pairs = function
      | [] -> []
      | ks :: rest ->
          List.filter_map
            (fun ks' ->
              if
                String.equal ks.Mine.ks_target ks'.Mine.ks_target
                && (not (overlapped ks.Mine.ks_key ks'.Mine.ks_key))
                && common_lock ks ks'
              then Some (ks.Mine.ks_key, ks'.Mine.ks_key, ks.Mine.ks_count)
              else None)
            rest
          @ pairs rest
    in
    let all = pairs hot in
    let kept =
      List.filteri (fun i _ -> i < config.max_concurrent_pairs)
        (List.sort compare all)
    in
    List.map
      (fun (a, b, support) ->
        inv a (Never_concurrent { other = b }) ~support
          ~runs:obs.Mine.obs_runs)
      kept
  in
  {
    m_system = system;
    m_runs = obs.Mine.obs_runs;
    m_config = config;
    m_invariants =
      List.sort compare_invariant
        (envelopes @ gaps @ never_fails @ precedes @ never_concurrent);
  }

(* --- canonical rendering & digest -------------------------------------- *)

let pp_invariant ppf i =
  let loc =
    match i.iloc with
    | Some l -> Wd_ir.Loc.func l ^ "#" ^ string_of_int (Wd_ir.Loc.uid l)
    | None -> "-"
  in
  (match i.ibody with
  | Envelope { p99; deadline } ->
      Fmt.pf ppf "envelope %s p99=%Ld deadline=%Ld" i.ikey p99 deadline
  | Gap { max_gap; budget } ->
      Fmt.pf ppf "gap %s max_gap=%Ld budget=%Ld" i.ikey max_gap budget
  | Never_fail -> Fmt.pf ppf "never_fail %s" i.ikey
  | Precedes { first } -> Fmt.pf ppf "precedes %s -> %s" first i.ikey
  | Never_concurrent { other } ->
      Fmt.pf ppf "never_concurrent %s || %s" i.ikey other);
  Fmt.pf ppf " [support=%d runs=%d loc=%s]" i.isupport i.iruns loc

let to_canonical m =
  Fmt.str "model %s runs=%d@.%a" m.m_system m.m_runs
    Fmt.(list ~sep:(any "@.") pp_invariant)
    m.m_invariants

let digest m = Digest.to_hex (Digest.string (to_canonical m))

let family_counts m =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun i ->
      let f = family_name i.ibody in
      Hashtbl.replace tally f (1 + Option.value ~default:0 (Hashtbl.find_opt tally f)))
    m.m_invariants;
  Hashtbl.fold (fun f n l -> (f, n) :: l) tally [] |> List.sort compare

let pp_model ppf m =
  Fmt.pf ppf "%s: %d invariants from %d runs (%a) digest %s" m.m_system
    (List.length m.m_invariants)
    m.m_runs
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any " ") string int))
    (family_counts m) (digest m)
