lib/autowatchdog/config.ml: Wd_analysis Wd_sim
