(* Adaptive checker scheduling.

   The paper's central tension is comprehensiveness vs. overhead: checkers
   must run continuously, but every run steals cycles from the workload.
   Historically the driver hard-coded one answer — a fixed per-checker
   cadence — as an implicit daemon loop. This module makes the answer a
   typed policy chosen at [Driver.create]:

   - [Fixed cadence]: the historical behaviour. Each checker gets its own
     daemon loop sleeping [cadence * period]; at the default cadence 1.0
     the schedule is bit-for-bit the old one.

   - [Adaptive _]: one central scheduling loop owns every checker. It
     samples load pressure each window — the sim scheduler's run-queue
     depth and virtual-time slack to the next timer, plus the loadgen
     arrival stream via an optional probe — and accounts the share of
     fired events the checkers themselves cost. When that share exceeds
     [target_overhead], or pressure is high, per-checker periods stretch
     (halving back when the system idles), but never beyond
     [latency_bound]: the gap between two executions of one checker is
     capped at [max period latency_bound] (plus one loop quantum and
     in-batch service time), which is the hard detection-latency bound the
     frontier experiment measures against.

     Co-scheduled checkers are dispatched as one batch: their context
     versions are sampled in a single pass, so checkers reading the same
     context unit observe one snapshot version — and the context's COW
     cache then hands them one shared copy. A checker whose context
     version has not changed since its last execution is deduplicated
     (skipped, counted) until the latency bound forces a real run.

   Every input is virtual-time or scheduler-local state — never wall
   clock — so adaptive decisions are a deterministic function of the seed,
   byte-identical at any domain-pool width. *)

type policy =
  | Fixed of float
  | Adaptive of {
      target_overhead : float;
      latency_bound : int64;
      sample_window : int64;
    }

let fixed = Fixed 1.0

let adaptive ?(target_overhead = 0.005) ?(latency_bound = Wd_sim.Time.sec 2)
    ?(sample_window = Wd_sim.Time.ms 500) () =
  if target_overhead <= 0. then
    invalid_arg "Schedule.adaptive: target_overhead must be positive";
  if latency_bound <= 0L then
    invalid_arg "Schedule.adaptive: latency_bound must be positive";
  if sample_window <= 0L then
    invalid_arg "Schedule.adaptive: sample_window must be positive";
  Adaptive { target_overhead; latency_bound; sample_window }

let policy_name = function Fixed _ -> "fixed" | Adaptive _ -> "adaptive"

let pp_policy ppf = function
  | Fixed c -> Fmt.pf ppf "fixed(x%.2f)" c
  | Adaptive { target_overhead; latency_bound; sample_window } ->
      Fmt.pf ppf "adaptive(target=%.2f%%, bound=%a, window=%a)"
        (100. *. target_overhead)
        Wd_sim.Time.pp latency_bound Wd_sim.Time.pp sample_window

type slot = {
  sl_period : int64;
  sl_version : (unit -> int) option;
  mutable sl_next_due : int64;
  mutable sl_last_run : int64; (* start of last real execution *)
  mutable sl_last_version : int; (* version then; -1 = never ran *)
  mutable sl_batch_version : int; (* sampled once per batch *)
}

type stats = {
  st_policy : string;
  st_batches : int;
  st_runs : int;
  st_dedup_skips : int;
  st_shared_syncs : int;
  st_windows : int;
  st_throttle_peak : float;
}

type t = {
  policy : policy;
  sched : Wd_sim.Sched.t;
  mutable slots : slot list;
  mutable load_probe : (unit -> int) option;
  mutable throttle : float;
  mutable window_start : int64;
  mutable window_events0 : int; (* sched events fired at window start *)
  mutable window_checker_events : int; (* events charged to checker runs *)
  mutable batches : int;
  mutable runs : int;
  mutable dedup_skips : int;
  mutable shared_syncs : int;
  mutable windows : int;
  mutable throttle_peak : float;
}

let create policy sched =
  {
    policy;
    sched;
    slots = [];
    load_probe = None;
    throttle = 1.0;
    window_start = Wd_sim.Sched.now sched;
    window_events0 = (let _, _, ev = Wd_sim.Sched.stats sched in ev);
    window_checker_events = 0;
    batches = 0;
    runs = 0;
    dedup_skips = 0;
    shared_syncs = 0;
    windows = 0;
    throttle_peak = 1.0;
  }

let policy t = t.policy
let set_load_probe t f = t.load_probe <- Some f

(* Fixed-mode effective period. Cadence 1.0 must reproduce the historical
   schedule exactly, so it bypasses the float round-trip. *)
let scaled_period t period =
  match t.policy with
  | Fixed c when c = 1.0 -> period
  | Fixed c -> Int64.of_float (Float.max 1. (c *. Int64.to_float period))
  | Adaptive _ -> period

let register t ~period ?version () =
  let now = Wd_sim.Sched.now t.sched in
  let sl =
    {
      sl_period = period;
      sl_version = version;
      sl_next_due = Int64.add now period;
      sl_last_run = -1L;
      sl_last_version = -1;
      sl_batch_version = -1;
    }
  in
  t.slots <- sl :: t.slots;
  sl

(* How long the central loop sleeps between scheduling decisions: the
   fastest registered period, floored at 1ms (a degenerate sub-ms checker
   period must not turn the loop into a busy spin) and capped at the
   sample window so pressure accounting stays live even with slow
   checkers. *)
let quantum t =
  let window =
    match t.policy with
    | Adaptive { sample_window; _ } -> sample_window
    | Fixed _ -> Wd_sim.Time.ms 500
  in
  let fastest =
    List.fold_left (fun acc sl -> Int64.min acc sl.sl_period) window t.slots
  in
  Int64.max (Wd_sim.Time.ms 1) (Int64.min window fastest)

(* Hard cap on the inter-execution gap for a slot: its own period when
   that is already slower than the bound, the bound otherwise. *)
let gap_bound latency_bound sl = Int64.max sl.sl_period latency_bound

(* Current effective period: base period stretched by the throttle, capped
   by the latency bound, never faster than the checker asked for. *)
let eff_period t sl =
  match t.policy with
  | Fixed _ -> scaled_period t sl.sl_period
  | Adaptive { latency_bound; _ } ->
      let stretched =
        Int64.of_float (t.throttle *. Int64.to_float sl.sl_period)
      in
      Int64.min (gap_bound latency_bound sl) (Int64.max sl.sl_period stretched)

let max_throttle = 64.

(* Close a sampling window if due: compare the events checkers cost against
   the events the whole simulation fired, sample the pressure probes, and
   move the throttle. Stretch on over-budget or high pressure; relax only
   when the share is comfortably inside budget AND the system is quiet, so
   a loaded-but-cheap window does not flap the cadence back up. *)
let tick t =
  match t.policy with
  | Fixed _ -> ()
  | Adaptive { target_overhead; sample_window; _ } ->
      let now = Wd_sim.Sched.now t.sched in
      if Int64.sub now t.window_start >= sample_window then begin
        let _, _, events = Wd_sim.Sched.stats t.sched in
        let total = events - t.window_events0 in
        let share =
          float_of_int t.window_checker_events /. float_of_int (max 1 total)
        in
        let runq = Wd_sim.Sched.runq_depth t.sched in
        let slack = Wd_sim.Sched.timer_slack t.sched in
        let inflight =
          match t.load_probe with Some f -> f () | None -> 0
        in
        (* pressured: other tasks are runnable right now, or the arrival
           stream holds queued work and the next event is imminent *)
        let pressured =
          runq >= 2 || (inflight >= 16 && slack < quantum t)
        in
        if share > target_overhead || (pressured && share > 0.5 *. target_overhead)
        then t.throttle <- Float.min max_throttle (t.throttle *. 2.)
        else if share < 0.5 *. target_overhead && not pressured then
          t.throttle <- Float.max 1.0 (t.throttle /. 2.);
        t.throttle_peak <- Float.max t.throttle_peak t.throttle;
        t.windows <- t.windows + 1;
        t.window_start <- now;
        t.window_events0 <- events;
        t.window_checker_events <- 0
      end

let due t sl = sl.sl_next_due <= Wd_sim.Sched.now t.sched

(* One version-sampling pass for every due slot: co-scheduled checkers see
   the context as of this single instant (one snapshot version per batch),
   and the slot-level COW cache shares the actual copies between them. *)
let begin_batch t slots =
  let n = List.length slots in
  if n > 0 then begin
    t.batches <- t.batches + 1;
    if n >= 2 then t.shared_syncs <- t.shared_syncs + (n - 1);
    List.iter
      (fun sl ->
        sl.sl_batch_version <-
          (match sl.sl_version with Some f -> f () | None -> -1))
      slots
  end

(* Decision for a due slot. Dedup: the checker ran before, its context
   version is unchanged, and the latency bound has not expired — skip, and
   park the slot so the next decision lands no later than the bound. *)
let decide t sl =
  match t.policy with
  | Fixed _ -> `Run
  | Adaptive { latency_bound; _ } -> (
      let now = Wd_sim.Sched.now t.sched in
      match sl.sl_version with
      | Some _
        when sl.sl_last_version >= 0
             && sl.sl_batch_version = sl.sl_last_version
             && Int64.sub now sl.sl_last_run < gap_bound latency_bound sl ->
          t.dedup_skips <- t.dedup_skips + 1;
          sl.sl_next_due <-
            Int64.min
              (Int64.add now (eff_period t sl))
              (Int64.add sl.sl_last_run (gap_bound latency_bound sl));
          `Skip_dedup
      | Some _ | None -> `Run)

(* Account a completed run: charge its event cost to the current window,
   remember when and at which context version it started, and reschedule
   one effective period after completion (mirroring the fixed loop, which
   sleeps the period after the run returns). *)
let note_run t sl ~started ~events_cost =
  t.runs <- t.runs + 1;
  t.window_checker_events <- t.window_checker_events + events_cost;
  sl.sl_last_run <- started;
  sl.sl_last_version <- sl.sl_batch_version;
  sl.sl_next_due <- Int64.add (Wd_sim.Sched.now t.sched) (eff_period t sl)

let throttle t = t.throttle

let stats t =
  {
    st_policy = policy_name t.policy;
    st_batches = t.batches;
    st_runs = t.runs;
    st_dedup_skips = t.dedup_skips;
    st_shared_syncs = t.shared_syncs;
    st_windows = t.windows;
    st_throttle_peak = t.throttle_peak;
  }
