lib/faults/catalog.ml: Fmt Int64 List Wd_env Wd_sim
