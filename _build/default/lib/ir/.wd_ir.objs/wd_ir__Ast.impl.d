lib/ir/ast.ml: Bytes Fmt List Loc String
