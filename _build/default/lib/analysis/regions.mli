(** Long-running region identification (§4.1 step 1).

    A region is code that may execute continuously in production: the body
    of a loop inside a function reachable from a program entry, or the whole
    body of a function annotated [Long_running]. Initialisation code —
    everything outside such loops — is excluded from checking. *)

type t = {
  region_id : string;
  root_func : string;
  loop_loc : Wd_ir.Loc.t option;  (** [None] for annotated whole-function regions *)
  body : Wd_ir.Ast.block;
  reachable : string list;        (** functions callable from [body] *)
}

val find : Wd_ir.Ast.program -> t list
val pp : Format.formatter -> t -> unit
