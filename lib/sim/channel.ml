(* Bounded FIFO channels connecting tasks. [send] blocks when full, [recv]
   when empty; [recv_timeout] is the shape most watchdog-relevant polling
   loops use. *)

type 'a t = {
  name : string;
  capacity : int;
  items : 'a Queue.t;
  not_empty : Cond.t;
  not_full : Cond.t;
  mutable closed : bool;
  mutable sent : int;
  mutable received : int;
}

exception Closed of string

let create ?(capacity = max_int) name =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  {
    name;
    capacity;
    items = Queue.create ();
    not_empty = Cond.create ("chan " ^ name ^ " not_empty");
    not_full = Cond.create ("chan " ^ name ^ " not_full");
    closed = false;
    sent = 0;
    received = 0;
  }

let name c = c.name
let length c = Queue.length c.items
let is_empty c = Queue.is_empty c.items
let is_closed c = c.closed
let stats c = (c.sent, c.received)

let close c =
  c.closed <- true;
  Cond.broadcast c.not_empty;
  Cond.broadcast c.not_full

let send c v =
  Cond.await c.not_full (fun () ->
      c.closed || Queue.length c.items < c.capacity);
  if c.closed then raise (Closed c.name);
  Queue.push v c.items;
  c.sent <- c.sent + 1;
  Cond.signal c.not_empty

let try_send c v =
  if c.closed then raise (Closed c.name)
  else if Queue.length c.items >= c.capacity then false
  else begin
    Queue.push v c.items;
    c.sent <- c.sent + 1;
    Cond.signal c.not_empty;
    true
  end

let recv c =
  Cond.await c.not_empty (fun () -> c.closed || not (Queue.is_empty c.items));
  if Queue.is_empty c.items then raise (Closed c.name)
  else begin
    let v = Queue.pop c.items in
    c.received <- c.received + 1;
    Cond.signal c.not_full;
    v
  end

let try_recv c =
  if Queue.is_empty c.items then None
  else begin
    let v = Queue.pop c.items in
    c.received <- c.received + 1;
    Cond.signal c.not_full;
    Some v
  end

let recv_timeout c ~timeout =
  let ok =
    Cond.await_timeout c.not_empty
      (fun () -> c.closed || not (Queue.is_empty c.items))
      ~timeout
  in
  if not ok then None
  else if Queue.is_empty c.items then raise (Closed c.name)
  else begin
    let v = Queue.pop c.items in
    c.received <- c.received + 1;
    Cond.signal c.not_full;
    Some v
  end
