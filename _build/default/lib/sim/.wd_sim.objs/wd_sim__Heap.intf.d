lib/sim/heap.mli:
