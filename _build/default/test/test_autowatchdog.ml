(* End-to-end tests for AutoWatchdog generation: analyze, recipes, attach,
   detection, localisation, and rendering. *)

module Generate = Wd_autowatchdog.Generate
module Config = Wd_autowatchdog.Config
module Reduction = Wd_analysis.Reduction
open Wd_ir
module B = Builder
module Sched = Wd_sim.Sched
module Time = Wd_sim.Time

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A tiny service: one daemon loop writing then reading a file. *)
let tiny =
  B.program "tiny"
    ~funcs:
      [
        B.func "loop" ~params:[]
          [
            B.while_true
              [
                B.sleep_ms 100;
                B.let_ "path" (B.s "data/f");
                B.let_ "payload" (B.prim "bytes_of_str" [ B.s "hello" ]);
                B.call "save" [ B.v "path"; B.v "payload" ];
              ];
          ];
        B.func "save" ~params:[ "p"; "d" ]
          [
            B.disk_write ~disk:"d0" ~path:(B.v "p") ~data:(B.v "d");
            B.return_unit;
          ];
      ]
    ~entries:[ B.entry "loop" "loop" ]

let boot_tiny ?(config = Config.default) () =
  let g = Generate.analyze ~config tiny in
  let sched = Sched.create ~seed:11 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:12 in
  let res = Runtime.create ~reg ~rng in
  Runtime.add_disk res (Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) "d0");
  let main =
    Interp.create ~node:"n1" ~res g.Generate.red.Reduction.instrumented
  in
  let driver = Wd_watchdog.Driver.create sched in
  let wctx = Generate.attach g ~sched ~main ~driver in
  ignore (Interp.start main sched);
  Wd_watchdog.Driver.start driver;
  (g, sched, reg, res, driver, wctx)

let test_analyze_counts () =
  let g = Generate.analyze tiny in
  check_int "one unit" 1 (List.length g.Generate.units);
  let u = List.hd g.Generate.units in
  Alcotest.(check string) "anchored in save" "save"
    u.Reduction.source_func;
  check_int "two context params (path, data)" 2 (List.length u.Reduction.params)

let test_recipes_add_read_back () =
  let g = Generate.analyze tiny in
  let u = List.hd g.Generate.units in
  let has_assert =
    List.exists
      (fun st -> match st.Ast.node with Ast.Assert _ -> true | _ -> false)
      u.Reduction.ufunc.Ast.body
  in
  let has_read =
    List.exists
      (fun st ->
        match st.Ast.node with
        | Ast.Op { kind = Ast.Disk_read; _ } -> true
        | _ -> false)
      u.Reduction.ufunc.Ast.body
  in
  check "read-back present" true has_read;
  check "checksum assertion present" true has_assert;
  (* and without enhancement they are absent *)
  let plain = Generate.analyze ~config:{ Config.default with Config.enhance = false } tiny in
  let u0 = List.hd plain.Generate.units in
  check_int "bare unit is the single op" 1 (List.length u0.Reduction.ufunc.Ast.body)

let test_context_becomes_ready () =
  let _g, sched, _reg, _res, _driver, wctx = boot_tiny () in
  let unit_id = "save__u0" in
  check "not ready at boot" false (Wd_watchdog.Wcontext.ready wctx unit_id);
  ignore (Sched.run ~until:(Time.ms 500) sched);
  check "ready after main passed the hook" true
    (Wd_watchdog.Wcontext.ready wctx unit_id);
  match Wd_watchdog.Wcontext.args wctx unit_id with
  | Some [ Ast.VStr "data/f"; Ast.VBytes b ] ->
      Alcotest.(check string) "captured payload" "hello" (Bytes.to_string b)
  | _ -> Alcotest.fail "captured args"

let test_fault_free_quiet () =
  let _g, sched, _reg, _res, driver, _wctx = boot_tiny () in
  ignore (Sched.run ~until:(Time.sec 30) sched);
  check_int "no false alarms" 0
    (List.length (Wd_watchdog.Driver.reports driver))

let test_detects_hang_with_pinpoint () =
  let _g, sched, reg, _res, driver, _wctx = boot_tiny () in
  ignore (Sched.run ~until:(Time.sec 5) sched);
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "hang";
      site_pattern = "disk:d0:write:*";
      behaviour = Wd_env.Faultreg.Hang;
      start_at = Time.sec 5;
      stop_at = Time.never;
      once = false;
    };
  ignore (Sched.run ~until:(Time.sec 20) sched);
  match Wd_watchdog.Driver.reports driver with
  | r :: _ ->
      check "hang" true (r.Wd_watchdog.Report.fkind = Wd_watchdog.Report.Hang);
      check "pinpointed save" true
        (match r.Wd_watchdog.Report.loc with
        | Some l -> Loc.func l = "save"
        | None -> false);
      check "payload captured" true (r.Wd_watchdog.Report.payload <> [])
  | [] -> Alcotest.fail "no detection"

let test_detects_corruption_via_read_back () =
  let _g, sched, reg, _res, driver, _wctx = boot_tiny () in
  ignore (Sched.run ~until:(Time.sec 5) sched);
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "corrupt";
      site_pattern = "disk:d0:write:*";
      behaviour = Wd_env.Faultreg.Corrupt;
      start_at = Time.sec 5;
      stop_at = Time.never;
      once = false;
    };
  ignore (Sched.run ~until:(Time.sec 20) sched);
  match Wd_watchdog.Driver.reports driver with
  | r :: _ -> (
      match r.Wd_watchdog.Report.fkind with
      | Wd_watchdog.Report.Assert_fail m ->
          check "checksum mismatch named" true
            (String.length m > 0)
      | k -> Alcotest.failf "expected assert, got %s" (Wd_watchdog.Report.fkind_name k))
  | [] -> Alcotest.fail "no detection"

let test_detects_error_signature () =
  let _g, sched, reg, _res, driver, _wctx = boot_tiny () in
  ignore (Sched.run ~until:(Time.sec 5) sched);
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "eio";
      site_pattern = "disk:d0:write:*";
      behaviour = Wd_env.Faultreg.Error "EIO";
      start_at = Time.sec 5;
      stop_at = Time.never;
      once = false;
    };
  ignore (Sched.run ~until:(Time.sec 10) sched);
  match Wd_watchdog.Driver.reports driver with
  | r :: _ -> (
      match r.Wd_watchdog.Report.fkind with
      | Wd_watchdog.Report.Error_sig _ -> ()
      | k -> Alcotest.failf "expected error, got %s" (Wd_watchdog.Report.fkind_name k))
  | [] -> Alcotest.fail "no detection"

let test_render_checker_source () =
  let g = Generate.analyze tiny in
  let src = Generate.render_checker_source (List.hd g.Generate.units) in
  let has sub =
    let n = String.length sub in
    let found = ref false in
    for i = 0 to String.length src - n do
      if String.sub src i n = sub then found := true
    done;
    !found
  in
  check "context factory" true (has "ContextFactory");
  check "readiness gate" true (has "READY");
  check "not-ready log line (Figure 3)" true (has "checker context not ready")

let test_watchdog_program_valid () =
  List.iter
    (fun prog ->
      let g = Generate.analyze prog in
      (* every generated unit function validates as a standalone program *)
      Validate.check_exn g.Generate.watchdog_prog)
    [
      Wd_targets.Kvs.program ();
      Wd_targets.Zkmini.program ();
      Wd_targets.Dfsmini.program ();
      Wd_targets.Cstore.program ();
    ]

let test_tens_of_checkers_per_target () =
  let count prog = List.length (Generate.analyze prog).Generate.units in
  check "kvs" true (count (Wd_targets.Kvs.program ()) >= 10);
  check "zkmini" true (count (Wd_targets.Zkmini.program ()) >= 5);
  check "dfsmini" true (count (Wd_targets.Dfsmini.program ()) >= 5);
  check "cstore" true (count (Wd_targets.Cstore.program ()) >= 5)

(* Progress checkers: once a unit's context armed, the main program must
   keep passing the hook; a stalled region (here: the entry task killed, a
   stand-in for an infinite loop doing no operations) is reported even
   though no mimicked operation ever fails. *)
let test_progress_checker_detects_stall () =
  let g = Generate.analyze tiny in
  let sched = Sched.create ~seed:12 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:13 in
  let res = Runtime.create ~reg ~rng in
  Runtime.add_disk res (Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) "d0");
  let main = Interp.create ~node:"n1" ~res g.Generate.red.Reduction.instrumented in
  let driver = Wd_watchdog.Driver.create sched in
  let _ =
    Generate.attach ~progress:(Time.sec 5) g ~sched ~main ~driver
  in
  let tasks = Interp.start main sched in
  Wd_watchdog.Driver.start driver;
  ignore (Sched.run ~until:(Time.sec 3) sched);
  (* the loop armed the context; now it silently stops *)
  List.iter (Sched.kill sched) tasks;
  ignore (Sched.run ~until:(Time.sec 20) sched);
  match Wd_watchdog.Driver.reports driver with
  | r :: _ ->
      Alcotest.(check bool) "progress checker fired" true
        (String.length r.Wd_watchdog.Report.checker_id >= 9
        && String.sub r.Wd_watchdog.Report.checker_id 0 9 = "progress:");
      Alcotest.(check bool) "liveness kind" true
        (r.Wd_watchdog.Report.fkind = Wd_watchdog.Report.Hang)
  | [] -> Alcotest.fail "stall not reported"

let test_progress_checker_quiet_when_live () =
  let g = Generate.analyze tiny in
  let sched = Sched.create ~seed:12 () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.create ~seed:13 in
  let res = Runtime.create ~reg ~rng in
  Runtime.add_disk res (Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) "d0");
  let main = Interp.create ~node:"n1" ~res g.Generate.red.Reduction.instrumented in
  let driver = Wd_watchdog.Driver.create sched in
  let _ = Generate.attach ~progress:(Time.sec 5) g ~sched ~main ~driver in
  ignore (Interp.start main sched);
  Wd_watchdog.Driver.start driver;
  ignore (Sched.run ~until:(Time.sec 30) sched);
  Alcotest.(check int) "no alarms while the loop runs" 0
    (List.length (Wd_watchdog.Driver.reports driver))

(* Per-node attachment: the replica runs its own watchdog over its own
   regions; a replica-side fault is caught by the replica's driver and
   invisible to the leader's. *)
let test_per_node_watchdogs () =
  let prog = Wd_targets.Kvs.program () in
  let g = Generate.analyze prog in
  let sched = Sched.create ~seed:33 () in
  let reg = Wd_env.Faultreg.create () in
  let t =
    Wd_targets.Kvs.boot ~sched ~reg
      ~prog:g.Generate.red.Reduction.instrumented ()
  in
  let leader_regions =
    Generate.regions_for_entry_funcs g
      ~entry_funcs:
        [ "listener_loop"; "flusher_loop"; "compaction_loop"; "snapshot_loop";
          "heartbeat_loop" ]
  in
  let replica_regions =
    Generate.regions_for_entry_funcs g ~entry_funcs:[ "replica_loop" ]
  in
  Alcotest.(check bool) "regions partition" true
    (List.for_all (fun r -> not (List.mem r leader_regions)) replica_regions);
  let leader_driver = Wd_watchdog.Driver.create sched in
  let replica_driver = Wd_watchdog.Driver.create sched in
  let _ =
    Generate.attach ~only_regions:leader_regions g ~sched
      ~main:t.Wd_targets.Kvs.leader ~driver:leader_driver
  in
  let _ =
    Generate.attach ~only_regions:replica_regions g ~sched
      ~main:t.Wd_targets.Kvs.replica ~driver:replica_driver
  in
  ignore (Wd_targets.Kvs.start t);
  Wd_watchdog.Driver.start leader_driver;
  Wd_watchdog.Driver.start replica_driver;
  (* replica workload comes from leader replication: drive some sets *)
  ignore
    (Sched.spawn ~name:"client" ~daemon:true sched (fun () ->
         let i = ref 0 in
         while true do
           Sched.sleep (Time.ms 50);
           incr i;
           ignore (Wd_targets.Kvs.set t ~key:(Fmt.str "k%d" (!i mod 20)) ~value:"v")
         done));
  ignore (Sched.run ~until:(Time.sec 6) sched);
  (* replica-side fault: its wal appends hang *)
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "replica-hang";
      site_pattern = "disk:kvs.disk2:append:replica/*";
      behaviour = Wd_env.Faultreg.Hang;
      start_at = Time.sec 6;
      stop_at = Time.never;
      once = false;
    };
  ignore (Sched.run ~until:(Time.sec 25) sched);
  Alcotest.(check bool) "replica watchdog detects" true
    (Wd_watchdog.Driver.reports replica_driver <> []);
  Alcotest.(check int) "leader watchdog quiet" 0
    (List.length (Wd_watchdog.Driver.reports leader_driver));
  match Wd_watchdog.Driver.reports replica_driver with
  | r :: _ ->
      Alcotest.(check bool) "pinpoints the replica loop" true
        (match r.Wd_watchdog.Report.loc with
        | Some l -> Loc.func l = "replica_loop"
        | None -> false)
  | [] -> ()

let () =
  Alcotest.run "wd_autowatchdog"
    [
      ( "generation",
        [
          Alcotest.test_case "analyze counts" `Quick test_analyze_counts;
          Alcotest.test_case "recipes add read-back" `Quick test_recipes_add_read_back;
          Alcotest.test_case "render Figure-3 source" `Quick test_render_checker_source;
          Alcotest.test_case "watchdog programs valid" `Quick test_watchdog_program_valid;
          Alcotest.test_case "tens of checkers per target" `Quick
            test_tens_of_checkers_per_target;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "context becomes ready" `Quick test_context_becomes_ready;
          Alcotest.test_case "fault-free is quiet" `Quick test_fault_free_quiet;
          Alcotest.test_case "hang detected with pinpoint" `Quick
            test_detects_hang_with_pinpoint;
          Alcotest.test_case "corruption via read-back" `Quick
            test_detects_corruption_via_read_back;
          Alcotest.test_case "error signature" `Quick test_detects_error_signature;
          Alcotest.test_case "per-node watchdogs" `Quick test_per_node_watchdogs;
          Alcotest.test_case "progress checker detects stall" `Quick
            test_progress_checker_detects_stall;
          Alcotest.test_case "progress checker quiet when live" `Quick
            test_progress_checker_quiet_when_live;
        ] );
    ]
