(* Alarm policy: how raw checker failures become reports.

   [confirmations] debounces one-off blips; [dedup_window] suppresses
   repeats of the same finding; [validate] is the paper's §5 false-alarm
   mitigation — when a mimic checker fails, invoke a probe checker to assess
   the impact before (optionally) suppressing the alarm.

   Construction goes through [make] and the [with_*] builders so adding a
   field never breaks a caller; the record itself stays transparent for
   readers (the driver pattern-matches fields directly). *)

type t = {
  confirmations : int;
  dedup_window : int64;
  validate : (Report.t -> bool) option;
  suppress_unvalidated : bool;
  (* Adaptive slowness: once a checker has [slow_min_samples] fault-free
     executions, a run taking longer than
     [max slow_floor (slow_mult * baseline)] is reported as Slow. This is
     how fail-slow and limplock faults are caught without absolute budgets. *)
  slow_floor : int64;
  slow_mult : float;
  slow_min_samples : int;
}

let make ?(confirmations = 1) ?(dedup_window = Wd_sim.Time.sec 30) ?validate
    ?(suppress_unvalidated = false) ?(slow_floor = Wd_sim.Time.ms 5)
    ?(slow_mult = 20.0) ?(slow_min_samples = 5) () =
  {
    confirmations;
    dedup_window;
    validate;
    suppress_unvalidated;
    slow_floor;
    slow_mult;
    slow_min_samples;
  }

let default = make ()

let with_confirmations confirmations p = { p with confirmations }
let with_dedup_window dedup_window p = { p with dedup_window }

let with_slowness ?floor ?mult ?min_samples p =
  {
    p with
    slow_floor = Option.value floor ~default:p.slow_floor;
    slow_mult = Option.value mult ~default:p.slow_mult;
    slow_min_samples = Option.value min_samples ~default:p.slow_min_samples;
  }

let with_validation ?(suppress = false) validate p =
  { p with validate = Some validate; suppress_unvalidated = suppress }
