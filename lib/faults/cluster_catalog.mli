(** Cluster-scoped failure scenarios for the fleet aggregation plane.

    Unlike {!Catalog} scenarios, which are injected into one process's
    environment, these name a victim inside a fleet: a node index whose
    local environment degrades, a directed fabric link to cut, or a
    fleet-wide condition with no victim at all. The expected verdict is
    what the fleet plane should conclude from correlating the nodes' local
    watchdog streams. *)

type ckind =
  | Node_limplock of { victim : int; factor : float }
      (** the victim's disks degrade by [factor] but never fail: its mimic
          checkers alarm, peers' probes of it stall, everyone else healthy *)
  | Asym_partition of { src : int; dst : int }
      (** drop fabric messages src->dst only; dst->src stays alive — the
          partial partition whose cut the probe matrix must localise *)
  | Fleet_overload
      (** every node flooded by legitimate open-loop bursts: signal
          checkers alarm fleet-wide, mimics stay quiet (§4.2 false-alarm
          case at fleet scope) *)
  | Fault_free
  | Link_flap of { src : int; dst : int; window : int64 }
      (** transient fabric fault: drop src->dst for a bounded window, then
          heal — short enough that a correct plane indicts nothing *)
  | Slow_fabric_link of { src : int; dst : int; factor : float }
      (** degrade one fabric direction by [factor] without dropping
          anything: probes over it limp, every payload still arrives *)
  | Correlated of ckind list
      (** several kinds at once: stresses the verdict rules' priority *)

(** What the fleet plane should conclude. *)
type expected_verdict =
  | Expect_node of int  (** indict exactly this node (by index) *)
  | Expect_links  (** indict links only; no node indicted *)
  | Expect_no_indictment  (** overload / fault-free: stay quiet *)

type cscenario = {
  csid : string;
  cdescription : string;
  ckind : ckind;
  cexpected : expected_verdict;
  ctruth : (string * string list) list;
      (** acceptable localisation per system: any generated-checker report
          whose function is in the list counts as "right component" *)
}

val all : cscenario list
(** The original four-cell grid; the long-standing 8/8-indict / 0/8-false
    oracle runs over exactly these. *)

val extras : cscenario list
(** Scenarios beyond the grid; campaigns and experiment grids opt in
    explicitly so the oracle over {!all} stays meaningful. *)

val find : string -> cscenario
(** Looks up {!all} then {!extras}; raises [Invalid_argument] on an
    unknown id. *)

val truth_components : cscenario -> system:string -> string list
(** Accepted localisations for [system], or [[]] when any/no component is
    acceptable (link and no-indictment scenarios). *)

val max_node_index : cscenario -> int
(** Highest node index the scenario touches (victims and link endpoints),
    or [-1] for fleet-wide kinds — lets a campaign config reject a
    topology too small for its scenario before any scheduler exists. *)

val inject :
  node_reg:(int -> Wd_env.Faultreg.t) ->
  fabric_reg:Wd_env.Faultreg.t ->
  node_name:(int -> string) ->
  at:int64 ->
  cscenario ->
  unit
(** Materialise the scenario into faults at [at]. [node_reg i] is node
    [i]'s private registry (a fault there degrades that node only);
    [fabric_reg] governs the shared inter-node fabric. Overload and
    fault-free inject nothing — the burst is workload, not a fault. *)

val pp_cscenario : Format.formatter -> cscenario -> unit
