lib/sim/sched.mli: Format Rng Trace
