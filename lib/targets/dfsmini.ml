(* dfsmini — an HDFS-DataNode-like block store.

   Components: block receiver (client writes), directory scanner (periodic
   block + checksum verification, with an in-place error handler that logs
   and counts corrupt blocks), heartbeats to the namenode. The generated
   mimic checker for the receiver's write path is the moral equivalent of
   the enhanced HDFS disk checker the paper cites (HADOOP-13738): it
   creates a file and does real I/O the same way the DataNode does. *)

open Wd_ir
module B = Builder

let ( =: ) = B.( =: )
let ( <>: ) = B.( <>: )
let ( +: ) = B.( +: )

let node = "dn1"
let namenode = "nn"
let disk_name = "dfs.disk"
let net_name = "dfs.net"
let mem_name = "dfs.mem"
let request_queue = "dfs.blocks"
let replies_queue = "dfs.replies"

let reply_msg data =
  B.prim "map_put"
    [
      B.prim "map_put" [ B.prim "map_empty" []; B.s "id"; B.v "reply" ];
      B.s "data";
      data;
    ]

(* Store a block plus its checksum metadata and ack the namenode. *)
let write_block =
  B.func "write_block" ~params:[ "blkid"; "data" ]
    [
      B.let_ "blkpath" (B.prim "concat" [ B.s "blk/"; B.v "blkid" ]);
      B.disk_write ~disk:disk_name ~path:(B.v "blkpath") ~data:(B.v "data");
      B.let_ "meta"
        (B.prim "bytes_of_str"
           [ B.prim "str_of_int" [ B.prim "checksum" [ B.v "data" ] ] ]);
      B.let_ "metapath" (B.prim "concat" [ B.s "meta/"; B.v "blkid" ]);
      B.disk_write ~disk:disk_name ~path:(B.v "metapath") ~data:(B.v "meta");
      B.disk_sync ~disk:disk_name;
      B.net_send ~net:net_name ~dst:(B.s namenode)
        ~payload:(B.prim "concat" [ B.s "blockReceived:"; B.v "blkid" ]);
      B.return_unit;
    ]

let read_block =
  B.func "read_block" ~params:[ "blkid" ]
    [
      B.let_ "blkpath" (B.prim "concat" [ B.s "blk/"; B.v "blkid" ]);
      B.disk_read ~bind:"data" ~disk:disk_name ~path:(B.v "blkpath") ();
      B.return (B.v "data");
    ]

let receiver_loop =
  B.func "receiver_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:request_queue ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "req" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.let_ "op" (B.prim "map_get_opt" [ B.v "req"; B.s "op"; B.s "" ]);
              B.let_ "blkid" (B.prim "map_get_opt" [ B.v "req"; B.s "blkid"; B.s "" ]);
              B.let_ "reply" (B.prim "map_get_opt" [ B.v "req"; B.s "reply"; B.s "" ]);
              B.if_ (B.v "op" =: B.s "put")
                [
                  B.let_ "payload"
                    (B.prim "map_get_opt" [ B.v "req"; B.s "data"; B.s "" ]);
                  B.let_ "data" (B.prim "bytes_of_str" [ B.v "payload" ]);
                  B.mem_alloc ~pool:mem_name ~size:(B.len (B.v "data") +: B.i 128);
                  B.call "write_block" [ B.v "blkid"; B.v "data" ];
                  B.mem_free ~pool:mem_name ~size:(B.len (B.v "data") +: B.i 128);
                  B.if_ (B.v "reply" <>: B.s "")
                    [ B.queue_put ~queue:replies_queue ~data:(reply_msg (B.s "ok")) ]
                    [];
                ]
                [
                  B.if_ (B.v "op" =: B.s "read")
                    [
                      B.try_
                        [
                          B.call ~bind:"data" "read_block" [ B.v "blkid" ];
                          B.if_ (B.v "reply" <>: B.s "")
                            [
                              B.queue_put ~queue:replies_queue
                                ~data:
                                  (reply_msg (B.prim "str_of_bytes" [ B.v "data" ]));
                            ]
                            [];
                        ]
                        ~exn:"e"
                        ~handler:
                          [
                            B.if_ (B.v "reply" <>: B.s "")
                              [
                                B.queue_put ~queue:replies_queue
                                  ~data:
                                    (reply_msg
                                       (B.prim "concat" [ B.s "err:"; B.v "e" ]));
                              ]
                              [];
                          ];
                    ]
                    [ B.log (B.s "unknown dfs op") ];
                ];
            ]
            [];
        ];
    ]

(* DirectoryScanner: verify every block against its stored checksum. The
   mismatch branch is an error handler in the paper's sense — it mitigates
   a known error (quarantine + count) so the scan continues. *)
let scan_once =
  B.func "scan_once" ~params:[]
    [
      B.disk_list ~bind:"blocks" ~disk:disk_name ~prefix:(B.s "blk/") ();
      B.foreach "blkpath" (B.v "blocks")
        [
          B.try_
            [
              B.disk_read ~bind:"data" ~disk:disk_name ~path:(B.v "blkpath") ();
              (* recover the block id from its path: strip "blk/" *)
              B.let_ "metapath"
                (B.prim "concat"
                   [ B.s "meta/"; B.prim "str_drop" [ B.v "blkpath"; B.i 4 ] ]);
              B.disk_exists ~bind:"has_meta" ~disk:disk_name ~path:(B.v "metapath") ();
              B.if_ (B.v "has_meta")
                [
                  B.disk_read ~bind:"meta" ~disk:disk_name ~path:(B.v "metapath") ();
                  B.let_ "want" (B.prim "int_of_str" [ B.prim "str_of_bytes" [ B.v "meta" ] ]);
                  B.let_ "got" (B.prim "checksum" [ B.v "data" ]);
                  B.if_ (B.prim "not" [ B.v "want" =: B.v "got" ])
                    [
                      B.state_get ~bind:"cc" ~global:"dfs.corrupt_found";
                      B.state_set ~global:"dfs.corrupt_found" ~value:(B.v "cc" +: B.i 1);
                      B.log (B.s "corrupt block quarantined");
                    ]
                    [];
                ]
                [];
            ]
            ~exn:"e"
            ~handler:
              [
                B.state_get ~bind:"se" ~global:"dfs.scan_errors";
                B.state_set ~global:"dfs.scan_errors" ~value:(B.v "se" +: B.i 1);
                B.log (B.prim "concat" [ B.s "scan error: "; B.v "e" ]);
              ];
        ];
      B.return_unit;
    ]

let scanner_loop =
  B.func "scanner_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 2000; B.call "scan_once" [] ] ]

let heartbeat_loop =
  B.func "heartbeat_loop" ~params:[]
    [
      B.while_true
        [
          B.sleep_ms 500;
          B.net_send ~net:net_name ~dst:(B.s namenode) ~payload:(B.s "hb:dn1");
        ];
    ]

(* Block-report: periodically tell the namenode what we store. *)
let report_loop =
  B.func "report_loop" ~params:[]
    [
      B.while_true
        [
          B.sleep_ms 3000;
          B.disk_list ~bind:"blocks" ~disk:disk_name ~prefix:(B.s "blk/") ();
          B.net_send ~net:net_name ~dst:(B.s namenode)
            ~payload:(B.prim "concat"
                        [ B.s "report:"; B.prim "str_of_int" [ B.len (B.v "blocks") ] ]);
        ];
    ]

let entries = [ "receiver"; "scanner"; "heartbeat"; "report" ]

let program () =
  B.program "dfsmini"
    ~funcs:
      [
        receiver_loop;
        write_block;
        read_block;
        scanner_loop;
        scan_once;
        heartbeat_loop;
        report_loop;
      ]
    ~entries:
      [
        B.entry "receiver" "receiver_loop";
        B.entry "scanner" "scanner_loop";
        B.entry "heartbeat" "heartbeat_loop";
        B.entry "report" "report_loop";
      ]

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Runtime.resources;
  prog : Ast.program;
  dn : Interp.t;
  disk : Wd_env.Disk.t;
  net : Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
}

let boot ?engine ?(mem_capacity = 128 * 1024 * 1024) ~sched ~reg ~prog () =
  (* environment randomness derives from the scheduler's seed, so a run is
     a pure function of that one seed *)
  let rng = Wd_sim.Rng.split (Wd_sim.Sched.rng sched) in
  let res = Runtime.create ~reg ~rng in
  let disk = Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) disk_name in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) net_name in
  let mem = Wd_env.Memory.create ~reg ~capacity:mem_capacity mem_name in
  Runtime.add_disk res disk;
  Runtime.add_net res net;
  Runtime.add_mem res mem;
  List.iter (Wd_env.Net.register net) [ node; namenode ];
  Runtime.set_global res "dfs.corrupt_found" (Ast.VInt 0);
  Runtime.set_global res "dfs.scan_errors" (Ast.VInt 0);
  let dn = Interp.create ?engine ~node ~res prog in
  let rpc = Rpcq.create ~sched ~res ~request_queue ~replies_queue in
  { sched; reg; res; prog; dn; disk; net; mem; rpc }

let start t =
  let tasks = Interp.start ~entries t.dn t.sched in
  ignore (Rpcq.spawn_dispatcher t.rpc);
  tasks

let put_block ?timeout t ~blkid ~data =
  Rpcq.request ?timeout t.rpc
    [ ("op", Ast.VStr "put"); ("blkid", Ast.VStr blkid); ("data", Ast.VStr data) ]

let read_block_req ?timeout t ~blkid =
  Rpcq.request ?timeout t.rpc [ ("op", Ast.VStr "read"); ("blkid", Ast.VStr blkid) ]

let corrupt_found t =
  match Runtime.global t.res "dfs.corrupt_found" with Ast.VInt n -> n | _ -> 0

let scan_errors t =
  match Runtime.global t.res "dfs.scan_errors" with Ast.VInt n -> n | _ -> 0
