lib/env/net.mli: Faultreg Wd_sim
