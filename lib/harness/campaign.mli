(** Campaign runner: execute one failure scenario against one system with a
    chosen watchdog mode and classify what each detector class saw.

    Timeline: boot → warmup (fault-free) → inject → observe. Detection
    latency is measured from the injection instant. *)

type pinpoint =
  | Exact            (** reported function = ground-truth function *)
  | Near of string   (** direct caller/callee of the ground truth *)
  | Wrong of string
  | No_loc

type outcome = {
  o_detected : bool;
  o_latency : int64 option;
  o_loc : Wd_ir.Loc.t option;
  o_pinpoint : pinpoint option;  (** [None] when no ground truth *)
  o_first_report : Wd_watchdog.Report.t option;
}

type run = {
  r_sid : string;
  r_system : string;
  r_outcomes : (string * outcome) list;
      (** keyed "mimic", "probe", "signal", "inferred", "heartbeat",
          "observer" *)
  r_pre_inject_reports : int;
  r_workload_ok_ratio : float;
  r_workload_issued : int;
  r_checker_count : int;
  r_sim_events : int;
}

val classify_checker : string -> [ `Mimic | `Probe | `Signal | `Inferred ]
(** By id prefix: ["probe:"], ["signal:"], ["inferred:"]; anything else is
    mimic. *)

type config = {
  seed : int;
  warmup : int64;
  observe : int64;
  mode : Systems.watchdog_mode;
  infer : Wd_infer.Synth.model option;
      (** when set, trace-inferred checkers compiled from this model are
          attached alongside whatever [mode] provides: the scheduler gets a
          trace, a {!Wd_infer.Monitor} consumes it, and the compiled
          checkers join the same driver as every other family *)
  schedule : Wd_watchdog.Schedule.policy;
      (** checker scheduling policy the booted driver is created with
          (default {!Wd_watchdog.Schedule.fixed}) *)
}

val default_config : config

val run_raw :
  config ->
  system:string ->
  scenario:Wd_faults.Catalog.scenario option ->
  unit ->
  Systems.booted * int64
(** Low-level: boot, warm up, inject (if a scenario is given), observe.
    Returns the booted system and the injection instant, for experiments
    that need raw access. *)

val run_scenario : ?cfg:config -> string -> run

type cell = { cell_sid : string; cell_cfg : config }
(** One campaign cell: a scenario under a configuration (watchdog mode,
    seed, warmup/observe windows). *)

val cell : ?cfg:config -> string -> cell

val run_batch : ?jobs:int -> cell list -> run list
(** Run a batch of cells across the persistent process-wide domain pool
    ([jobs] defaults to {!Wd_parallel.Pool.default_jobs}). Every cell is a
    self-contained deterministic simulation, and results are returned in
    input order, so the output is identical to [List.map] of
    {!run_scenario} — only faster on multicore hosts. *)

type fault_free = {
  ff_system : string;
  ff_mimic_fp : int;
  ff_probe_fp : int;
  ff_signal_fp : int;
  ff_inferred_fp : int;
  ff_heartbeat_fp : int;
  ff_observer_fp : int;
  ff_workload_ok_ratio : float;
  ff_sim_events : int;
      (** deterministic cost proxy: scheduler events fired; comparing
          configurations on the same world measures checker overhead *)
  ff_checker_count : int;
}

val run_fault_free : ?cfg:config -> ?special:string -> string -> fault_free
(** Accuracy run: no fault injected; every report is a false alarm.
    [special] selects a boot variant (e.g. "in_memory", "burst"). *)
