lib/ir/loc.ml: Fmt List String
