lib/watchdog/driver.mli: Checker Policy Report Wd_sim
