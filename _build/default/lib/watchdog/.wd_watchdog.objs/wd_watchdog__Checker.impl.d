lib/watchdog/checker.ml: Fmt Report Wd_ir Wd_sim
