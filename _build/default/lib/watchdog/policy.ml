(* Alarm policy: how raw checker failures become reports.

   [confirmations] debounces one-off blips; [dedup_window] suppresses
   repeats of the same finding; [validate] is the paper's §5 false-alarm
   mitigation — when a mimic checker fails, invoke a probe checker to assess
   the impact before (optionally) suppressing the alarm. *)

type t = {
  confirmations : int;
  dedup_window : int64;
  validate : (Report.t -> bool) option;
  suppress_unvalidated : bool;
  (* Adaptive slowness: once a checker has [slow_min_samples] fault-free
     executions, a run taking longer than
     [max slow_floor (slow_mult * baseline)] is reported as Slow. This is
     how fail-slow and limplock faults are caught without absolute budgets. *)
  slow_floor : int64;
  slow_mult : float;
  slow_min_samples : int;
}

let default =
  {
    confirmations = 1;
    dedup_window = Wd_sim.Time.sec 30;
    validate = None;
    suppress_unvalidated = false;
    slow_floor = Wd_sim.Time.ms 5;
    slow_mult = 20.0;
    slow_min_samples = 5;
  }

let with_validation ?(suppress = false) validate p =
  { p with validate = Some validate; suppress_unvalidated = suppress }
