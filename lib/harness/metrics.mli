(** Aggregate statistics over repeated campaign runs: detection rates and
    latency distributions across seeds. The simulator is deterministic per
    seed, so a multi-seed sweep measures sensitivity to event interleavings,
    not flakiness. *)

type latency_stats = {
  ls_count : int;   (** runs in which detection happened *)
  ls_total : int;   (** runs overall *)
  ls_min : int64;
  ls_median : int64;
  ls_p90 : int64;
  ls_max : int64;
}

val latency_stats_of : int64 list -> total:int -> latency_stats
val pp_latency_stats : Format.formatter -> latency_stats -> unit

val scenario_across_seeds :
  ?cfg:Campaign.config ->
  seeds:int list ->
  detector:string ->
  string ->
  latency_stats * int
(** Run the scenario once per seed; returns the detector's latency stats and
    how many runs pinpointed exactly. *)

type family_stats = {
  fam_family : string;  (** mimic | probe | signal | inferred *)
  fam_indictments : int;  (** evidence-backed verdicts on faulty cells *)
  fam_false_positives : int;  (** evidence-backed verdicts on quiet cells *)
}

type fleet_summary = {
  fs_faulty : int;  (** cells whose scenario expects an indictment *)
  fs_right : int;  (** ... that indicted exactly the right target *)
  fs_node_cells : int;  (** cells expecting a node indictment *)
  fs_component_right : int;  (** ... that also named a true component *)
  fs_quiet : int;  (** cells expecting no indictment *)
  fs_false_indict : int;  (** ... that indicted a node or link anyway *)
  fs_latency : latency_stats;  (** first-verdict latency over faulty cells *)
  fs_mttr : latency_stats;
      (** injection -> first fleet-commanded microreboot, over node cells *)
  fs_families : family_stats list;
      (** evidence-backed verdicts attributed to the checker family whose
          report the verdict shipped, in [checker_families] order *)
}

val checker_families : string list
(** The checker families evidence is attributed to:
    [mimic; probe; signal; inferred]. *)

val fleet_summary : Wd_cluster.Sim.result list -> fleet_summary
(** Grade a batch of cluster cells (E17): indictment accuracy over faulty
    scenarios, false-indictment rate over quiet ones, detection latency,
    and per-checker-family attribution of the evidence behind verdicts. *)

val pp_family_stats : Format.formatter -> family_stats list -> unit
(** Render the per-family breakout on one line:
    ["mimic 12 (+0 fp), probe 0 (+0 fp), ..."]. *)
