(* Trace miner (FlyCatcher-style, stage 1): collect operation-level events
   from passing runs and aggregate them into per-key statistics plus
   ordering/concurrency observations — the raw material the synthesizer
   fits invariants to.

   A [recorder] drains the scheduler's bounded trace ring into an unbounded
   accumulator from a daemon task, so arbitrarily long mining runs lose no
   events as long as the ring outlasts one drain interval. Aggregation is
   pure and deterministic: every table is sorted before it leaves. *)

module Trace = Wd_sim.Trace

type run_obs = {
  ro_id : string;
  ro_seed : int;
  ro_span : int64; (* virtual time covered: first event .. final drain *)
  ro_events : Trace.event list; (* op events only, in order *)
  ro_dropped : int;
}

type recorder = {
  rec_sched : Wd_sim.Sched.t;
  rec_trace : Trace.t;
  mutable rec_cursor : int;
  mutable rec_acc : Trace.event list; (* reversed *)
  mutable rec_dropped : int;
}

let is_op (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Op_start _ | Trace.Op_end _ | Trace.Op_fail _ -> true
  | Trace.Spawned | Trace.Blocked _ | Trace.Resumed | Trace.Finished _ ->
      false

let drain r =
  let events, dropped, cursor = Trace.since r.rec_trace r.rec_cursor in
  r.rec_cursor <- cursor;
  r.rec_dropped <- r.rec_dropped + dropped;
  List.iter (fun e -> if is_op e then r.rec_acc <- e :: r.rec_acc) events

let attach ?(capacity = 1 lsl 16) ?(drain_every = Wd_sim.Time.ms 250) sched =
  let trace = Trace.create ~capacity () in
  Wd_sim.Sched.set_trace sched trace;
  let r =
    {
      rec_sched = sched;
      rec_trace = trace;
      rec_cursor = 0;
      rec_acc = [];
      rec_dropped = 0;
    }
  in
  ignore
    (Wd_sim.Sched.spawn ~name:"infer:miner" ~daemon:true sched (fun () ->
         while true do
           Wd_sim.Sched.sleep drain_every;
           drain r
         done));
  r

let finish r ~id ~seed =
  drain r;
  let events = List.rev r.rec_acc in
  let span =
    match events with
    | [] -> 0L
    | first :: _ ->
        Int64.sub (Wd_sim.Sched.now r.rec_sched) first.Trace.at
  in
  {
    ro_id = id;
    ro_seed = seed;
    ro_span = span;
    ro_events = events;
    ro_dropped = r.rec_dropped;
  }

(* --- aggregation ------------------------------------------------------- *)

type key_stats = {
  ks_key : string;
  ks_target : string;
  ks_runs : int; (* runs in which the key completed at least once *)
  ks_count : int; (* completions across all runs *)
  ks_fails : int;
  ks_durs : int64 array; (* completed durations, sorted ascending *)
  ks_max_gap : int64;
      (* worst start-to-start silence across runs, including the tail to
         the end of each run — the liveness bound passing runs exhibited *)
  ks_func : string; (* enclosing function of the first observation *)
  ks_locks : string list;
      (* lockset evidence: sync keys in flight in the same task at EVERY
         observed start of this op, sorted. A common element between two
         keys proves their mutual exclusion rather than inferring it from
         an absence of observed overlap. *)
}

type observations = {
  obs_runs : int;
  obs_keys : key_stats list; (* sorted by key *)
  obs_orders : string list list;
      (* per run: keys in order of first start — ordering observations *)
  obs_overlaps : (string * string) list;
      (* sorted key pairs (a < b), same target, seen in flight concurrently *)
  obs_events : int;
  obs_dropped : int;
}

let target_of_key key =
  match String.split_on_char ':' key with _ :: t :: _ -> t | _ -> ""

(* Mutable per-key accumulator used only inside [aggregate]. *)
type acc = {
  mutable a_runs : int;
  mutable a_count : int;
  mutable a_fails : int;
  mutable a_durs : int64 list;
  mutable a_max_gap : int64;
  mutable a_func : string;
  mutable a_last_run : int; (* run index last counted toward a_runs *)
  mutable a_locks : string list option;
      (* intersection of held-lock sets across starts; None = no start yet *)
}

let is_sync_key key =
  String.length key >= 5 && String.sub key 0 5 = "sync:"

(* sorted-list intersection *)
let inter a b = List.filter (fun x -> List.mem x b) a

let aggregate runs =
  let keys : (string, acc) Hashtbl.t = Hashtbl.create 64 in
  let overlaps : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let acc_of key func =
    match Hashtbl.find_opt keys key with
    | Some a -> a
    | None ->
        let a =
          {
            a_runs = 0;
            a_count = 0;
            a_fails = 0;
            a_durs = [];
            a_max_gap = 0L;
            a_func = func;
            a_last_run = -1;
            a_locks = None;
          }
        in
        Hashtbl.add keys key a;
        a
  in
  let orders = ref [] in
  let events = ref 0 and dropped = ref 0 in
  List.iteri
    (fun run_idx ro ->
      events := !events + List.length ro.ro_events;
      dropped := !dropped + ro.ro_dropped;
      let first_order = ref [] in
      let seen_first : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      let last_start : (string, int64) Hashtbl.t = Hashtbl.create 64 in
      (* per-task stack of in-flight ops (innermost first): a sync key on
         the stack is a lock this task currently holds or is acquiring *)
      let inflight : (int, string list) Hashtbl.t = Hashtbl.create 8 in
      let stack_of task =
        Option.value ~default:[] (Hashtbl.find_opt inflight task)
      in
      let pop task op =
        let rec drop = function
          | [] -> []
          | x :: rest -> if String.equal x op then rest else x :: drop rest
        in
        Hashtbl.replace inflight task (drop (stack_of task))
      in
      let run_end =
        match List.rev ro.ro_events with
        | [] -> 0L
        | last :: _ -> last.Trace.at
      in
      let bump_gap key gap =
        let a = acc_of key "" in
        if gap > a.a_max_gap then a.a_max_gap <- gap
      in
      List.iter
        (fun (e : Trace.event) ->
          match e.Trace.kind with
          | Trace.Op_start { op; func; _ } ->
              let a = acc_of op func in
              if a.a_func = "" then a.a_func <- func;
              if not (Hashtbl.mem seen_first op) then begin
                Hashtbl.add seen_first op ();
                first_order := op :: !first_order
              end;
              (match Hashtbl.find_opt last_start op with
              | Some prev -> bump_gap op (Int64.sub e.Trace.at prev)
              | None -> ());
              Hashtbl.replace last_start op e.Trace.at;
              let stack = stack_of e.Trace.task_id in
              (* lockset: sync keys this task currently has in flight *)
              let held = List.sort compare (List.filter is_sync_key stack) in
              a.a_locks <-
                Some
                  (match a.a_locks with
                  | None -> held
                  | Some l -> inter l held);
              (* concurrency: any op of another task in flight on the same
                 target *)
              let tgt = target_of_key op in
              Hashtbl.iter
                (fun task others ->
                  if task <> e.Trace.task_id then
                    List.iter
                      (fun other ->
                        if
                          other <> op
                          && String.equal (target_of_key other) tgt
                        then
                          let pair =
                            if other < op then (other, op) else (op, other)
                          in
                          Hashtbl.replace overlaps pair ())
                      others)
                inflight;
              Hashtbl.replace inflight e.Trace.task_id (op :: stack)
          | Trace.Op_end { op; dur; _ } ->
              let a = acc_of op "" in
              a.a_count <- a.a_count + 1;
              a.a_durs <- dur :: a.a_durs;
              if a.a_last_run <> run_idx then begin
                a.a_last_run <- run_idx;
                a.a_runs <- a.a_runs + 1
              end;
              pop e.Trace.task_id op
          | Trace.Op_fail { op; _ } ->
              let a = acc_of op "" in
              a.a_fails <- a.a_fails + 1;
              pop e.Trace.task_id op
          | _ -> ())
        ro.ro_events;
      (* tail silence: from the last start of each key to the run's end *)
      Hashtbl.iter
        (fun key last -> bump_gap key (Int64.sub run_end last))
        last_start;
      orders := List.rev !first_order :: !orders)
    runs;
  let obs_keys =
    Hashtbl.fold
      (fun key a l ->
        {
          ks_key = key;
          ks_target = target_of_key key;
          ks_runs = a.a_runs;
          ks_count = a.a_count;
          ks_fails = a.a_fails;
          ks_durs =
            (let arr = Array.of_list a.a_durs in
             Array.sort Int64.compare arr;
             arr);
          ks_max_gap = a.a_max_gap;
          ks_func = a.a_func;
          ks_locks = Option.value ~default:[] a.a_locks;
        }
        :: l)
      keys []
    |> List.sort (fun a b -> compare a.ks_key b.ks_key)
  in
  let obs_overlaps =
    Hashtbl.fold (fun p () l -> p :: l) overlaps [] |> List.sort compare
  in
  {
    obs_runs = List.length runs;
    obs_keys;
    obs_orders = List.rev !orders;
    obs_overlaps;
    obs_events = !events;
    obs_dropped = !dropped;
  }

let pp_stats ppf ks =
  Fmt.pf ppf "%-44s runs %d  n %5d  fails %d  max-gap %a" ks.ks_key ks.ks_runs
    ks.ks_count ks.ks_fails Wd_sim.Time.pp ks.ks_max_gap
