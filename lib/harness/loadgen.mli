(** Heavy-traffic load plane over the virtual clock.

    Open-loop (fixed arrival rate) and closed-loop (N clients with think
    time) request generators, driving either a single booted system's
    {!Systems.booted.b_client} entry or every node of a cluster world.
    Latencies are recorded into O(1) log-bucketed histograms (8 sub-buckets
    per octave, ≤12.5% relative quantile error), so runs of 10^6+ requests
    cost one small array, not a latency list.

    All load, latency and throughput numbers are functions of virtual time
    only: two runs differing in wall-clock speed (engine choice, host load)
    produce bit-identical results, which is what makes watchdog overhead a
    measurable virtual-time inflation rather than benchmark noise. *)

type reply = [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]
(** What one client operation returns — the shape of
    {!Systems.booted.b_client}. *)

type gen
(** A live generator: its client fibers are daemons inside the target's
    scheduler, so they end with the simulation. *)

val spawn_closed :
  ?label:string ->
  sched:Wd_sim.Sched.t ->
  clients:int ->
  think:int64 ->
  requests:int ->
  op:(int -> reply) ->
  unit ->
  gen
(** Closed loop: [clients] persistent fibers share one request budget; each
    issues, waits for the reply, sleeps [think] virtual ns, repeats.
    Offered load adapts to the system — the classic saturation probe. *)

val spawn_open :
  ?label:string ->
  sched:Wd_sim.Sched.t ->
  rate_rps:int ->
  max_inflight:int ->
  requests:int ->
  op:(int -> reply) ->
  unit ->
  gen
(** Open loop: arrivals at a fixed rate in virtual time, independent of
    completions, so queueing delay is visible in the latency tail. Arrivals
    past [max_inflight] are shed (counted, not issued), like a full accept
    queue. *)

val spawn_fleet :
  ?label:string ->
  world:Wd_cluster.Sim.world ->
  clients_per_node:int ->
  think:int64 ->
  requests:int ->
  unit ->
  gen
(** Closed-loop clients spread across every node of a booted cluster world,
    driving each node's bounded end-to-end client operation
    ({!Wd_cluster.Node.local_probe}). One shared budget; per-node imbalance
    shows up in the tail. *)

type result = {
  lr_label : string;
  lr_requests : int;  (** completed (excludes shed) *)
  lr_ok : int;
  lr_err : int;
  lr_timeout : int;
  lr_shed : int;
  lr_sim_ns : int64;  (** generator start to last accounted arrival, virtual *)
  lr_wall_s : float;  (** host seconds spent driving the run *)
  lr_p50 : int64;
  lr_p90 : int64;
  lr_p99 : int64;
  lr_mean : int64;
  lr_max : int64;
}

val drive : ?step:int64 -> gen -> result
(** Advance the simulation in bounded steps (default 200ms virtual) until
    every arrival is accounted for. Needed because target systems hold
    daemon timers, so [Sched.run ~until] never reports quiescence on its
    own. If the target wedges (fault injection) and no request completes
    for a long stretch of steps, the remaining budget is shed and the run
    ends — detection-latency experiments terminate even when the system
    does not. [step] bounds completion-detection slack only; all
    measurements are event-timestamped. *)

val completed : gen -> int
val inflight : gen -> int

val throughput_rps : result -> float
(** Completed requests per virtual second. *)

val success_ratio : result -> float

val pp_result : Format.formatter -> result -> unit
