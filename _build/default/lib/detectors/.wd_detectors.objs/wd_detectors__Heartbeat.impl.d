lib/detectors/heartbeat.ml: Fmt Int64 String Wd_env Wd_ir Wd_sim
