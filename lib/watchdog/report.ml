(* Failure reports produced by watchdog checkers. A report carries what the
   paper says an intrinsic detector should provide: a verdict, the
   pinpointed code location, and the failure-inducing payload (context
   values) for diagnosis and reproduction. *)

type fkind =
  | Hang            (* liveness: checker (or op) did not complete in time *)
  | Slow            (* liveness: completed but beyond its latency budget *)
  | Error_sig of string   (* safety: operation raised an error *)
  | Assert_fail of string (* safety: an embedded check failed *)
  | Checker_crash of string (* the checker itself died: still a signal *)

type t = {
  at : int64;
  checker_id : string;
  fkind : fkind;
  loc : Wd_ir.Loc.t option;   (* pinpointed failing statement *)
  op_desc : string;           (* e.g. "disk_write(data)" *)
  payload : (string * Wd_ir.Ast.value) list;  (* captured context *)
  mutable validated : bool option;  (* probe-after-mimic confirmation *)
}

let make ~at ~checker_id ~fkind ?loc ?(op_desc = "") ?(payload = []) () =
  { at; checker_id; fkind; loc; op_desc; payload; validated = None }

let is_liveness r = match r.fkind with Hang | Slow -> true | _ -> false

let fkind_name = function
  | Hang -> "hang"
  | Slow -> "slow"
  | Error_sig _ -> "error"
  | Assert_fail _ -> "assert"
  | Checker_crash _ -> "checker-crash"

(* --- wire codec -------------------------------------------------------

   Canonical serialisation for shipping a report across a fabric: fleet
   evidence must travel as data, not closures, so every field — including
   the captured mimic payload values — has a byte-stable encoding. The
   format is a tagged, length-prefixed text form: deterministic (no
   hashing, no marshalling), so the same report encodes to the same bytes
   on every run, which the digest/corroboration layer relies on. *)

let wire_magic = "WDR1|"

exception Wire_error of string

let enc_str b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let enc_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let enc_i64 b n =
  Buffer.add_string b (Int64.to_string n);
  Buffer.add_char b ';'

let rec enc_value b (v : Wd_ir.Ast.value) =
  match v with
  | Wd_ir.Ast.VUnit -> Buffer.add_char b 'u'
  | Wd_ir.Ast.VBool true -> Buffer.add_char b 'T'
  | Wd_ir.Ast.VBool false -> Buffer.add_char b 'F'
  | Wd_ir.Ast.VInt n ->
      Buffer.add_char b 'i';
      enc_int b n
  | Wd_ir.Ast.VStr s ->
      Buffer.add_char b 's';
      enc_str b s
  | Wd_ir.Ast.VBytes by ->
      Buffer.add_char b 'y';
      enc_str b (Bytes.to_string by)
  | Wd_ir.Ast.VList vs ->
      Buffer.add_char b 'l';
      enc_int b (List.length vs);
      List.iter (enc_value b) vs
  | Wd_ir.Ast.VPair (x, y) ->
      Buffer.add_char b 'p';
      enc_value b x;
      enc_value b y
  | Wd_ir.Ast.VMap kvs ->
      Buffer.add_char b 'm';
      enc_int b (List.length kvs);
      List.iter
        (fun (k, v) ->
          enc_str b k;
          enc_value b v)
        kvs

let enc_fkind b = function
  | Hang -> Buffer.add_char b 'H'
  | Slow -> Buffer.add_char b 'S'
  | Error_sig m ->
      Buffer.add_char b 'E';
      enc_str b m
  | Assert_fail m ->
      Buffer.add_char b 'A';
      enc_str b m
  | Checker_crash m ->
      Buffer.add_char b 'C';
      enc_str b m

let to_wire r =
  let b = Buffer.create 128 in
  Buffer.add_string b wire_magic;
  enc_i64 b r.at;
  enc_str b r.checker_id;
  enc_fkind b r.fkind;
  (match r.loc with
  | None -> Buffer.add_char b 'N'
  | Some l ->
      Buffer.add_char b 'L';
      enc_str b (Wd_ir.Loc.func l);
      let path = Wd_ir.Loc.path l in
      enc_int b (List.length path);
      List.iter (enc_int b) path;
      enc_int b (Wd_ir.Loc.uid l));
  enc_str b r.op_desc;
  enc_int b (List.length r.payload);
  List.iter
    (fun (k, v) ->
      enc_str b k;
      enc_value b v)
    r.payload;
  (match r.validated with
  | None -> Buffer.add_char b 'N'
  | Some true -> Buffer.add_char b 'T'
  | Some false -> Buffer.add_char b 'F');
  Buffer.contents b

(* decoder: a cursor over the string; any shape violation raises
   [Wire_error], caught at the [of_wire] boundary *)

type cursor = { s : string; mutable pos : int }

let fail msg = raise (Wire_error msg)

let take c =
  if c.pos >= String.length c.s then fail "truncated";
  let ch = c.s.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let dec_num c ~stop ~of_string ~what =
  let start = c.pos in
  let len = String.length c.s in
  while c.pos < len && c.s.[c.pos] <> stop do
    c.pos <- c.pos + 1
  done;
  if c.pos >= len then fail ("truncated " ^ what);
  let digits = String.sub c.s start (c.pos - start) in
  c.pos <- c.pos + 1;
  match of_string digits with
  | Some n -> n
  | None -> fail ("bad " ^ what ^ " " ^ digits)

(* Canonical decimal only: [int_of_string_opt] also accepts hex/octal/
   binary prefixes, '_' separators and a leading '+', which would let two
   distinct byte strings decode to equal reports — breaking the
   injectivity the evidence digest layer relies on. Decoding then
   re-rendering pins the accepted form to exactly what the encoder
   emits. *)
let canonical_int s =
  match int_of_string_opt s with
  | Some n when String.equal (string_of_int n) s -> Some n
  | _ -> None

let canonical_i64 s =
  match Int64.of_string_opt s with
  | Some n when String.equal (Int64.to_string n) s -> Some n
  | _ -> None

let dec_int c = dec_num c ~stop:';' ~of_string:canonical_int ~what:"int"
let dec_i64 c = dec_num c ~stop:';' ~of_string:canonical_i64 ~what:"int64"

let dec_str c =
  let n = dec_num c ~stop:':' ~of_string:canonical_int ~what:"length" in
  if n < 0 || c.pos + n > String.length c.s then fail "bad string length";
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let rec dec_value c : Wd_ir.Ast.value =
  match take c with
  | 'u' -> Wd_ir.Ast.VUnit
  | 'T' -> Wd_ir.Ast.VBool true
  | 'F' -> Wd_ir.Ast.VBool false
  | 'i' -> Wd_ir.Ast.VInt (dec_int c)
  | 's' -> Wd_ir.Ast.VStr (dec_str c)
  | 'y' -> Wd_ir.Ast.VBytes (Bytes.of_string (dec_str c))
  | 'l' ->
      let n = dec_int c in
      if n < 0 then fail "bad list length";
      Wd_ir.Ast.VList (List.init n (fun _ -> dec_value c))
  | 'p' ->
      let x = dec_value c in
      let y = dec_value c in
      Wd_ir.Ast.VPair (x, y)
  | 'm' ->
      let n = dec_int c in
      if n < 0 then fail "bad map length";
      Wd_ir.Ast.VMap
        (List.init n (fun _ ->
             let k = dec_str c in
             let v = dec_value c in
             (k, v)))
  | ch -> fail (Fmt.str "unknown value tag %c" ch)

let dec_fkind c =
  match take c with
  | 'H' -> Hang
  | 'S' -> Slow
  | 'E' -> Error_sig (dec_str c)
  | 'A' -> Assert_fail (dec_str c)
  | 'C' -> Checker_crash (dec_str c)
  | ch -> fail (Fmt.str "unknown fkind tag %c" ch)

let of_wire s =
  try
    let magic_len = String.length wire_magic in
    if
      String.length s < magic_len
      || String.sub s 0 magic_len <> wire_magic
    then fail "bad magic";
    let c = { s; pos = magic_len } in
    let at = dec_i64 c in
    let checker_id = dec_str c in
    let fkind = dec_fkind c in
    let loc =
      match take c with
      | 'N' -> None
      | 'L' ->
          let func = dec_str c in
          let n = dec_int c in
          if n < 0 then fail "bad path length";
          let path = List.init n (fun _ -> dec_int c) in
          let uid = dec_int c in
          Some (Wd_ir.Loc.make ~func ~path ~uid)
      | ch -> fail (Fmt.str "unknown loc tag %c" ch)
    in
    let op_desc = dec_str c in
    let n = dec_int c in
    if n < 0 then fail "bad payload length";
    let payload =
      List.init n (fun _ ->
          let k = dec_str c in
          let v = dec_value c in
          (k, v))
    in
    let validated =
      match take c with
      | 'N' -> None
      | 'T' -> Some true
      | 'F' -> Some false
      | ch -> fail (Fmt.str "unknown validated tag %c" ch)
    in
    if c.pos <> String.length s then fail "trailing bytes";
    let r = make ~at ~checker_id ~fkind ?loc ~op_desc ~payload () in
    r.validated <- validated;
    Ok r
  with Wire_error msg -> Error msg

let pp ppf r =
  let detail =
    match r.fkind with
    | Hang -> ""
    | Slow -> ""
    | Error_sig m | Assert_fail m | Checker_crash m -> ": " ^ m
  in
  Fmt.pf ppf "[%a] %s %s%s %a%s%s" Wd_sim.Time.pp r.at r.checker_id
    (fkind_name r.fkind) detail
    Fmt.(option ~none:(any "<no loc>") Wd_ir.Loc.pp)
    r.loc
    (if r.op_desc = "" then "" else " at " ^ r.op_desc)
    (match r.validated with
    | None -> ""
    | Some true -> " (validated)"
    | Some false -> " (not confirmed)")
