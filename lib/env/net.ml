(* Simulated message network. Senders are asynchronous: a [send] pays a
   small CPU cost, then the message is scheduled for delivery after a
   modelled latency. Faults can delay delivery, drop messages, raise at the
   sender, mark payloads corrupted, or hang the sender (the blocked-socket /
   backpressure behaviour behind ZOOKEEPER-2201).

   Links are asymmetric when profiled: a per-(src,dst) [link_profile]
   overrides the fabric's base latency and optionally bounds bandwidth.
   Bandwidth is modelled store-and-forward — each profiled link keeps a
   [busy_until] horizon, a message of [size] bytes occupies the link for
   size/rate seconds starting no earlier than that horizon, and delivery
   happens at transmit-done + propagation latency. Everything is driven by
   the virtual clock and the fabric's own RNG, so a schedule is a pure
   function of the seed.

   Sites have the shape "net:<fabric>:send:<src>:<dst>", so a pattern like
   "net:main:send:leader:*" cuts every message the leader sends. *)

exception Net_error of string

type 'a envelope = {
  src : string;
  dst : string;
  payload : 'a;
  sent_at : int64;
  corrupted : bool;
}

type link_profile = {
  lp_latency : int64 option; (* propagation latency override for this link *)
  lp_bytes_per_sec : int option; (* None = unbounded bandwidth *)
}

type 'a t = {
  name : string;
  reg : Faultreg.t;
  rng : Wd_sim.Rng.t;
  base_latency : int64;
  endpoints : (string, 'a envelope Wd_sim.Channel.t) Hashtbl.t;
  (* per-(src,dst) link FIFO: a message never overtakes an earlier one on
     the same link (TCP-like), whatever the jitter says *)
  last_delivery : (string * string, int64) Hashtbl.t;
  links : (string * string, link_profile) Hashtbl.t;
  (* serialisation horizon of each bandwidth-bounded link *)
  busy_until : (string * string, int64) Hashtbl.t;
  (* (src, site dst) -> interned fault-site id; populated only while the
     registry is armed, so clean sends build no site string. *)
  site_ids : (string * string, Wd_sim.Site.id) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create ?(base_latency = Wd_sim.Time.us 500) ~reg ~rng name =
  {
    name;
    reg;
    rng;
    base_latency;
    endpoints = Hashtbl.create 16;
    last_delivery = Hashtbl.create 32;
    links = Hashtbl.create 16;
    busy_until = Hashtbl.create 16;
    site_ids = Hashtbl.create 32;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let set_link_profile n ~src ~dst profile =
  Hashtbl.replace n.links (src, dst) profile

let link_profile n ~src ~dst = Hashtbl.find_opt n.links (src, dst)

let name n = n.name
let stats n = (n.sent, n.delivered, n.dropped)

let register n endpoint =
  if Hashtbl.mem n.endpoints endpoint then
    invalid_arg (Fmt.str "Net.register: %s already registered" endpoint);
  Hashtbl.replace n.endpoints endpoint
    (Wd_sim.Channel.create (Fmt.str "net:%s:%s" n.name endpoint))

let exists n endpoint = Hashtbl.mem n.endpoints endpoint
let ensure_registered n endpoint = if not (exists n endpoint) then register n endpoint

let endpoints n =
  Hashtbl.fold (fun e _ acc -> e :: acc) n.endpoints [] |> List.sort compare

let inbox n endpoint =
  match Hashtbl.find_opt n.endpoints endpoint with
  | Some ch -> ch
  | None -> raise (Net_error (Fmt.str "no such endpoint %s" endpoint))

let inbox_length n endpoint = Wd_sim.Channel.length (inbox n endpoint)

let site_id n ~src ~sdst =
  match Hashtbl.find_opt n.site_ids (src, sdst) with
  | Some id -> id
  | None ->
      let id =
        Wd_sim.Site.intern ("net:" ^ n.name ^ ":send:" ^ src ^ ":" ^ sdst)
      in
      if Hashtbl.length n.site_ids < 8192 then
        Hashtbl.add n.site_ids (src, sdst) id;
      id

let send ?site_dst ?(size = 0) n ~src ~dst payload =
  let s = Wd_sim.Sched.get () in
  let now = Wd_sim.Sched.now s in
  let behaviours =
    if Faultreg.armed n.reg then
      let sdst = Option.value site_dst ~default:dst in
      Faultreg.consult n.reg ~site:(Wd_sim.Site.str (site_id n ~src ~sdst)) ~now
    else []
  in
  (* Sender-side consequences: hang and error block/fail the caller. *)
  List.iter
    (fun (id, b) ->
      match b with
      | Faultreg.Hang ->
          let stop = Faultreg.stop_of n.reg id in
          if stop = Wd_sim.Time.never then
            Wd_sim.Sched.suspend
              ~reason:(Fmt.str "net fault %s hang" id)
              ~register:(fun _waker -> ())
          else
            Wd_sim.Sched.suspend
              ~reason:(Fmt.str "net fault %s hang" id)
              ~register:(fun waker -> Wd_sim.Sched.at s stop waker)
      | Faultreg.Error m -> raise (Net_error m)
      | Faultreg.Delay _ | Faultreg.Slow_factor _ | Faultreg.Corrupt
      | Faultreg.Drop ->
          ())
    behaviours;
  let dropped =
    List.exists (fun (_, b) -> b = Faultreg.Drop) behaviours
  in
  let corrupted =
    List.exists (fun (_, b) -> b = Faultreg.Corrupt) behaviours
  in
  let extra =
    List.fold_left
      (fun acc (_, b) ->
        match b with Faultreg.Delay d -> Int64.add acc d | _ -> acc)
      0L behaviours
  in
  let factor = Faultreg.slow_factor behaviours in
  n.sent <- n.sent + 1;
  if dropped then n.dropped <- n.dropped + 1
  else begin
    let ch = inbox n dst in
    let profile = Hashtbl.find_opt n.links (src, dst) in
    let base =
      match profile with
      | Some { lp_latency = Some l; _ } -> l
      | Some { lp_latency = None; _ } | None -> n.base_latency
    in
    let jitter =
      Wd_sim.Rng.exponential n.rng ~mean:(Int64.to_float base /. 4.0)
    in
    let latency =
      Int64.add
        (Int64.of_float ((Int64.to_float base +. jitter) *. factor))
        extra
    in
    let now = Wd_sim.Sched.now s in
    (* bandwidth: serialise onto the link after any message still
       transmitting, then propagate — store-and-forward, deterministic *)
    let tx_done =
      match profile with
      | Some { lp_bytes_per_sec = Some rate; _ } when size > 0 && rate > 0 ->
          let busy =
            Option.value ~default:0L (Hashtbl.find_opt n.busy_until (src, dst))
          in
          let start = if busy > now then busy else now in
          let tx =
            Int64.of_float
              (Float.ceil (float_of_int size *. 1e9 /. float_of_int rate))
          in
          let done_ = Int64.add start tx in
          Hashtbl.replace n.busy_until (src, dst) done_;
          done_
      | Some _ | None -> now
    in
    let at =
      let natural = Int64.add tx_done latency in
      match Hashtbl.find_opt n.last_delivery (src, dst) with
      | Some prev when prev >= natural -> Int64.add prev 1L
      | Some _ | None -> natural
    in
    Hashtbl.replace n.last_delivery (src, dst) at;
    let env = { src; dst; payload; sent_at = now; corrupted } in
    Wd_sim.Sched.at s at (fun () ->
        if Wd_sim.Channel.try_send ch env then
          n.delivered <- n.delivered + 1
        else n.dropped <- n.dropped + 1)
  end

let recv n endpoint = Wd_sim.Channel.recv (inbox n endpoint)

let recv_timeout n endpoint ~timeout =
  Wd_sim.Channel.recv_timeout (inbox n endpoint) ~timeout

let try_recv n endpoint = Wd_sim.Channel.try_recv (inbox n endpoint)
