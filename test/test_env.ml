(* Tests for the simulated environment: fault registry, disk, network,
   memory. Env operations block, so each test body runs inside a task. *)

open Wd_env
module Sched = Wd_sim.Sched
module Time = Wd_sim.Time

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length sub in
  let found = ref false in
  if n = 0 then found := true
  else
    for i = 0 to String.length s - n do
      if String.sub s i n = sub then found := true
    done;
  !found

(* Run [f] as the sole task of a fresh simulation. *)
let in_sim ?(seed = 1) f =
  let s = Sched.create ~seed () in
  let reg = Faultreg.create () in
  let failed = ref None in
  ignore
    (Sched.spawn ~name:"test" s (fun () -> try f s reg with e -> failed := Some e));
  ignore (Sched.run s);
  match !failed with Some e -> raise e | None -> ()

let mkdisk ?seed:(s = 2) reg = Disk.create ~reg ~rng:(Wd_sim.Rng.create ~seed:s) "d"
let mknet reg = Net.create ~reg ~rng:(Wd_sim.Rng.create ~seed:3) "n"

(* --- fault registry --- *)

let test_site_matching () =
  check "exact" true
    (Faultreg.site_matches ~pattern:"disk:d:write:/a" ~site:"disk:d:write:/a");
  check "exact mismatch" false
    (Faultreg.site_matches ~pattern:"disk:d:write:/a" ~site:"disk:d:write:/b");
  check "wildcard" true
    (Faultreg.site_matches ~pattern:"disk:d:write:*" ~site:"disk:d:write:/a/b");
  check "wildcard prefix" true (Faultreg.site_matches ~pattern:"*" ~site:"anything");
  check "wildcard mismatch" false
    (Faultreg.site_matches ~pattern:"disk:d:read:*" ~site:"disk:d:write:/a")

let fault ?(id = "f1") ?(start_at = 0L) ?(stop_at = Time.never) ?(once = false)
    pattern behaviour =
  { Faultreg.id; site_pattern = pattern; behaviour; start_at; stop_at; once }

let test_fault_window () =
  let reg = Faultreg.create () in
  Faultreg.inject reg
    (fault ~start_at:(Time.sec 5) ~stop_at:(Time.sec 10) "x:*" (Faultreg.Error "e"));
  check_int "before window" 0
    (List.length (Faultreg.consult reg ~site:"x:y" ~now:(Time.sec 1)));
  check_int "inside window" 1
    (List.length (Faultreg.consult reg ~site:"x:y" ~now:(Time.sec 7)));
  check_int "after window" 0
    (List.length (Faultreg.consult reg ~site:"x:y" ~now:(Time.sec 12)))

let test_fault_once () =
  let reg = Faultreg.create () in
  Faultreg.inject reg (fault ~once:true "x:*" (Faultreg.Error "e"));
  check_int "first trigger" 1 (List.length (Faultreg.consult reg ~site:"x:1" ~now:1L));
  check_int "spent afterwards" 0
    (List.length (Faultreg.consult reg ~site:"x:2" ~now:2L))

let test_fault_triggers_logged () =
  let reg = Faultreg.create () in
  Faultreg.inject reg (fault "x:*" Faultreg.Corrupt);
  ignore (Faultreg.consult reg ~site:"x:a" ~now:5L);
  ignore (Faultreg.consult reg ~site:"x:b" ~now:9L);
  check_int "two triggers" 2 (List.length (Faultreg.triggers reg));
  check "first instant" true (Faultreg.first_trigger reg ~id:"f1" = Some 5L)

(* --- disk --- *)

let test_disk_roundtrip () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      Disk.write d ~path:"a/b" (Bytes.of_string "hello");
      let back = Disk.read d ~path:"a/b" in
      Alcotest.(check string) "roundtrip" "hello" (Bytes.to_string back);
      check "exists" true (Disk.exists d ~path:"a/b");
      check "not exists" false (Disk.exists d ~path:"a/c"))

let test_disk_append () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      Disk.append d ~path:"log" (Bytes.of_string "one,");
      Disk.append d ~path:"log" (Bytes.of_string "two");
      Alcotest.(check string) "appended" "one,two"
        (Bytes.to_string (Disk.read d ~path:"log")))

let test_disk_list_delete () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      List.iter
        (fun p -> Disk.write d ~path:p (Bytes.of_string "x"))
        [ "seg/2"; "seg/1"; "other/3" ];
      Alcotest.(check (list string)) "prefix list" [ "seg/1"; "seg/2" ]
        (Disk.list d ~prefix:"seg/");
      Disk.delete d ~path:"seg/1";
      Alcotest.(check (list string)) "after delete" [ "seg/2" ]
        (Disk.list d ~prefix:"seg/"))

let test_disk_read_missing () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      match Disk.read d ~path:"ghost" with
      | _ -> Alcotest.fail "expected Io_error"
      | exception Disk.Io_error m -> check "mentions file" true (String.length m > 0))

let test_disk_latency_model () =
  in_sim (fun s reg ->
      let d = mkdisk reg in
      let t0 = Sched.now s in
      Disk.write d ~path:"f" (Bytes.create 1000);
      let elapsed = Int64.sub (Sched.now s) t0 in
      (* seek 100us + 2ns/B * 1000 >= 102us, plus jitter *)
      check "charged at least the model" true (elapsed >= Time.us 102))

let test_disk_error_fault () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      Faultreg.inject reg (fault "disk:d:write:bad/*" (Faultreg.Error "EIO"));
      Disk.write d ~path:"good/1" (Bytes.of_string "x");
      match Disk.write d ~path:"bad/1" (Bytes.of_string "x") with
      | _ -> Alcotest.fail "expected Io_error"
      | exception Disk.Io_error m -> check "EIO mentioned" true (contains m "EIO"))

let test_disk_corrupt_fault_is_silent () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      Faultreg.inject reg (fault "disk:d:write:*" Faultreg.Corrupt);
      let data = Bytes.of_string "pristine-data" in
      Disk.write d ~path:"f" data;
      (* the write "succeeded", but the stored bytes differ *)
      let stored = Option.get (Disk.peek d ~path:"f") in
      check "silently damaged" false (Bytes.equal data stored);
      check "same length" true (Bytes.length data = Bytes.length stored))

let test_disk_slow_fault () =
  in_sim (fun s reg ->
      let d = mkdisk reg in
      let t0 = Sched.now s in
      Disk.write d ~path:"f" (Bytes.of_string "x");
      let normal = Int64.sub (Sched.now s) t0 in
      Faultreg.inject reg (fault "disk:d:*" (Faultreg.Slow_factor 100.));
      let t1 = Sched.now s in
      Disk.write d ~path:"f" (Bytes.of_string "x");
      let slow = Int64.sub (Sched.now s) t1 in
      check "much slower" true (slow > Int64.mul 20L normal))

let test_disk_hang_until_window_closes () =
  in_sim (fun s reg ->
      let d = mkdisk reg in
      Faultreg.inject reg (fault ~stop_at:(Time.sec 3) "disk:d:write:*" Faultreg.Hang);
      let t0 = Sched.now s in
      Disk.write d ~path:"f" (Bytes.of_string "x");
      check "blocked until the fault lifted" true
        (Int64.sub (Sched.now s) t0 >= Time.sec 2))

let test_disk_as_path_site_override () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      Faultreg.inject reg (fault "disk:d:write:real/*" (Faultreg.Error "EIO"));
      (* writing to a scratch location but matching the real site *)
      (match
         Disk.write ~as_path:"real/x" d ~path:"__wd/real/x" (Bytes.of_string "y")
       with
      | _ -> Alcotest.fail "expected fate-shared error"
      | exception Disk.Io_error _ -> ());
      (* and the converse: the scratch path alone does not match *)
      Disk.write d ~path:"__wd/real/x" (Bytes.of_string "y"))

let test_disk_checksum () =
  let a = Disk.checksum (Bytes.of_string "abc") in
  let b = Disk.checksum (Bytes.of_string "abc") in
  let c = Disk.checksum (Bytes.of_string "abd") in
  check "stable" true (a = b);
  check "discriminates" false (a = c)

let prop_disk_roundtrip =
  QCheck.Test.make ~name:"disk read returns the written bytes" ~count:50
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 64)) small_string)
    (fun (path, content) ->
      let path = "p/" ^ path in
      let ok = ref false in
      in_sim (fun _s reg ->
          let d = mkdisk reg in
          Disk.write d ~path (Bytes.of_string content);
          ok := Bytes.to_string (Disk.read d ~path) = content);
      !ok)

(* --- net --- *)

let test_net_delivery () =
  in_sim (fun s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Net.send n ~src:"a" ~dst:"b" 42;
      match Net.recv_timeout n "b" ~timeout:(Time.sec 1) with
      | Some env ->
          check_int "payload" 42 env.Net.payload;
          Alcotest.(check string) "src" "a" env.Net.src;
          check "not corrupted" false env.Net.corrupted;
          check "took latency" true (Sched.now s > 0L)
      | None -> Alcotest.fail "no delivery")

let test_net_drop_fault () =
  in_sim (fun _s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Faultreg.inject reg (fault "net:n:send:a:b" Faultreg.Drop);
      Net.send n ~src:"a" ~dst:"b" 1;
      check "dropped" true (Net.recv_timeout n "b" ~timeout:(Time.ms 50) = None);
      let sent, _, dropped = Net.stats n in
      check_int "sent" 1 sent;
      check_int "dropped" 1 dropped)

let test_net_delay_fault () =
  in_sim (fun s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Faultreg.inject reg (fault "net:n:send:a:b" (Faultreg.Delay (Time.sec 2)));
      let t0 = Sched.now s in
      Net.send n ~src:"a" ~dst:"b" 1;
      (* the send itself is asynchronous: the sender is not delayed *)
      check "sender not blocked" true (Int64.sub (Sched.now s) t0 < Time.ms 1);
      match Net.recv_timeout n "b" ~timeout:(Time.sec 5) with
      | Some _ ->
          check "delivery delayed" true (Int64.sub (Sched.now s) t0 >= Time.sec 2)
      | None -> Alcotest.fail "should deliver eventually")

let test_net_corrupt_flag () =
  in_sim (fun _s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Faultreg.inject reg (fault "net:n:send:a:b" Faultreg.Corrupt);
      Net.send n ~src:"a" ~dst:"b" 9;
      match Net.recv_timeout n "b" ~timeout:(Time.sec 1) with
      | Some env -> check "flagged corrupted" true env.Net.corrupted
      | None -> Alcotest.fail "no delivery")

let test_net_error_fault () =
  in_sim (fun _s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Faultreg.inject reg (fault "net:n:send:a:b" (Faultreg.Error "ECONNRESET"));
      match Net.send n ~src:"a" ~dst:"b" 1 with
      | _ -> Alcotest.fail "expected Net_error"
      | exception Net.Net_error _ -> ())

let test_net_hang_blocks_sender () =
  in_sim (fun s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Faultreg.inject reg (fault ~stop_at:(Time.sec 2) "net:n:send:a:b" Faultreg.Hang);
      let t0 = Sched.now s in
      Net.send n ~src:"a" ~dst:"b" 1;
      check "sender blocked for the window" true
        (Int64.sub (Sched.now s) t0 >= Time.sec 1))

let test_net_site_dst_override () =
  in_sim (fun _s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Net.register n "__wd:b";
      Faultreg.inject reg (fault "net:n:send:a:b" (Faultreg.Error "down"));
      (* shadow delivery with fate-shared site *)
      match Net.send ~site_dst:"b" n ~src:"a" ~dst:"__wd:b" 1 with
      | _ -> Alcotest.fail "expected fate-shared error"
      | exception Net.Net_error _ -> ())

(* An asymmetric cut — the fabric case wd_cluster leans on: dropping a->b
   must not disturb the reverse link's delivery or its FIFO order, and the
   counters must attribute every a->b send to the drop column. *)
let test_net_asymmetric_partition () =
  in_sim (fun _s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      Faultreg.inject reg (fault "net:n:send:a:b" Faultreg.Drop);
      for i = 1 to 4 do
        Net.send n ~src:"a" ~dst:"b" i
      done;
      for i = 10 to 13 do
        Net.send n ~src:"b" ~dst:"a" i
      done;
      check "a->b fully cut" true
        (Net.recv_timeout n "b" ~timeout:(Time.ms 200) = None);
      let got = ref [] in
      for _ = 1 to 4 do
        match Net.recv_timeout n "a" ~timeout:(Time.sec 1) with
        | Some env -> got := env.Net.payload :: !got
        | None -> Alcotest.fail "b->a delivery lost"
      done;
      Alcotest.(check (list int))
        "b->a alive, in order" [ 10; 11; 12; 13 ] (List.rev !got);
      let sent, delivered, dropped = Net.stats n in
      check_int "sent counts both directions" 8 sent;
      check_int "delivered only b->a" 4 delivered;
      check_int "dropped only a->b" 4 dropped)

(* Profiled links make the fabric asymmetric while staying deterministic:
   a->b crosses a slow 20 ms link, b->a keeps the 500 us base, and a->c
   squeezes through a 1 KiB/s pipe that serialises back-to-back sends
   store-and-forward. The whole delivery schedule must be a pure function
   of the seed — same seed, byte-identical schedule. *)
let test_net_asymmetric_link_profiles () =
  let run () =
    let log = Buffer.create 256 in
    let a_last = ref 0L and b_first = ref Int64.max_int
    and c_first = ref Int64.max_int in
    in_sim (fun s reg ->
        let n = mknet reg in
        Net.register n "a";
        Net.register n "b";
        Net.register n "c";
        Net.set_link_profile n ~src:"a" ~dst:"b"
          { Net.lp_latency = Some (Time.ms 20); lp_bytes_per_sec = None };
        Net.set_link_profile n ~src:"a" ~dst:"c"
          { Net.lp_latency = None; lp_bytes_per_sec = Some 1024 };
        for i = 1 to 3 do
          Net.send n ~size:256 ~src:"a" ~dst:"b" i;
          Net.send n ~src:"b" ~dst:"a" (10 + i);
          Net.send n ~size:512 ~src:"a" ~dst:"c" (20 + i)
        done;
        let drain ep first last =
          for _ = 1 to 3 do
            match Net.recv_timeout n ep ~timeout:(Time.sec 10) with
            | Some env ->
                let now = Wd_sim.Sched.now s in
                if !first = Int64.max_int then first := now;
                last := now;
                Buffer.add_string log
                  (Printf.sprintf "%s<-%s:%d@%Ld\n" ep env.Net.src
                     env.Net.payload now)
            | None -> Alcotest.fail (ep ^ " delivery lost")
          done
        in
        (* unprofiled b->a lands first; the profiled links follow *)
        drain "a" (ref Int64.max_int) a_last;
        drain "b" b_first (ref 0L);
        drain "c" c_first (ref 0L));
    (Buffer.contents log, !a_last, !b_first, !c_first)
  in
  let log1, a_last, b_first, c_first = run () in
  let log2, _, _, _ = run () in
  Alcotest.(check string) "same seed, byte-identical schedule" log1 log2;
  check "reverse link unaffected by the slow crossing" true
    (a_last < b_first);
  check "slow crossing respects its latency floor" true
    (b_first >= Time.ms 20);
  check "bandwidth bound dominates the bounded link" true
    (c_first >= Time.ms 500)

let test_net_inbox_length_and_try_recv () =
  in_sim (fun _s reg ->
      let n = mknet reg in
      Net.register n "a";
      Net.register n "b";
      check "empty try_recv" true (Net.try_recv n "b" = None);
      Net.send n ~src:"a" ~dst:"b" 1;
      Net.send n ~src:"a" ~dst:"b" 2;
      Wd_sim.Sched.sleep (Time.ms 50);
      check_int "two queued" 2 (Net.inbox_length n "b");
      (match Net.try_recv n "b" with
      | Some env -> check_int "fifo head" 1 env.Net.payload
      | None -> Alcotest.fail "expected message");
      check_int "one left" 1 (Net.inbox_length n "b"))

let test_fault_remove_and_clear () =
  let reg = Faultreg.create () in
  Faultreg.inject reg (fault ~id:"f1" "x:*" Faultreg.Corrupt);
  Faultreg.inject reg (fault ~id:"f2" "y:*" Faultreg.Corrupt);
  Faultreg.remove reg ~id:"f1";
  check_int "one left" 1 (List.length (Faultreg.faults reg));
  Faultreg.clear reg;
  check_int "cleared" 0 (List.length (Faultreg.faults reg))

let test_disk_stats () =
  in_sim (fun _s reg ->
      let d = mkdisk reg in
      Disk.write d ~path:"f" (Bytes.of_string "abcd");
      ignore (Disk.read d ~path:"f");
      Disk.sync d;
      let reads, writes, bytes_read, bytes_written, syncs = Disk.stats d in
      check_int "reads" 1 reads;
      check_int "writes" 1 writes;
      check_int "bytes read" 4 bytes_read;
      check_int "bytes written" 4 bytes_written;
      check_int "syncs" 1 syncs)

let prop_net_link_fifo =
  QCheck.Test.make ~name:"per-link delivery preserves send order" ~count:30
    QCheck.(pair small_int (int_bound 20))
    (fun (seed, n) ->
      let n = n + 1 in
      let ok = ref false in
      in_sim ~seed:(seed + 1) (fun _s reg ->
          let net = Net.create ~reg ~rng:(Wd_sim.Rng.create ~seed) "n" in
          Net.register net "a";
          Net.register net "b";
          for i = 1 to n do
            Net.send net ~src:"a" ~dst:"b" i
          done;
          let got = ref [] in
          for _ = 1 to n do
            match Net.recv_timeout net "b" ~timeout:(Time.sec 5) with
            | Some env -> got := env.Net.payload :: !got
            | None -> ()
          done;
          ok := List.rev !got = List.init n (fun i -> i + 1));
      !ok)

(* --- memory --- *)

let test_memory_accounting () =
  in_sim (fun _s reg ->
      let m = Memory.create ~reg ~capacity:1000 "m" in
      Memory.alloc m 300;
      Memory.alloc m 200;
      check_int "used" 500 (Memory.used m);
      Memory.free m 100;
      check_int "after free" 400 (Memory.used m);
      check "utilisation" true (abs_float (Memory.utilisation m -. 0.4) < 1e-9))

let test_memory_oom () =
  in_sim (fun _s reg ->
      let m = Memory.create ~reg ~capacity:100 "m" in
      Memory.alloc m 90;
      match Memory.alloc m 20 with
      | _ -> Alcotest.fail "expected OOM"
      | exception Memory.Out_of_memory _ -> ())

let test_memory_pause_under_pressure () =
  in_sim (fun s reg ->
      let m = Memory.create ~reg ~capacity:1000 ~pause_threshold:0.5 "m" in
      Memory.alloc m 400;
      let t0 = Sched.now s in
      Memory.alloc m 1; (* still below threshold: 401/1000 < 0.5 *)
      check "no pause below threshold" true (Int64.sub (Sched.now s) t0 = 0L);
      Memory.alloc m 400;
      let t1 = Sched.now s in
      Memory.alloc m 10; (* now well above the threshold *)
      check "pauses above threshold" true (Int64.sub (Sched.now s) t1 > 0L);
      let _, _, peak, pauses, _ = Memory.stats m in
      check "peak tracked" true (peak >= 811);
      check "pauses counted" true (pauses >= 1))

let () =
  Alcotest.run "wd_env"
    [
      ( "faultreg",
        [
          Alcotest.test_case "site matching" `Quick test_site_matching;
          Alcotest.test_case "activation window" `Quick test_fault_window;
          Alcotest.test_case "once faults" `Quick test_fault_once;
          Alcotest.test_case "trigger log" `Quick test_fault_triggers_logged;
          Alcotest.test_case "remove and clear" `Quick test_fault_remove_and_clear;
        ] );
      ( "disk",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "append" `Quick test_disk_append;
          Alcotest.test_case "list and delete" `Quick test_disk_list_delete;
          Alcotest.test_case "read missing" `Quick test_disk_read_missing;
          Alcotest.test_case "latency model" `Quick test_disk_latency_model;
          Alcotest.test_case "error fault" `Quick test_disk_error_fault;
          Alcotest.test_case "silent corruption" `Quick
            test_disk_corrupt_fault_is_silent;
          Alcotest.test_case "slow fault" `Quick test_disk_slow_fault;
          Alcotest.test_case "bounded hang" `Quick test_disk_hang_until_window_closes;
          Alcotest.test_case "as_path fate sharing" `Quick
            test_disk_as_path_site_override;
          Alcotest.test_case "checksum" `Quick test_disk_checksum;
          Alcotest.test_case "stats" `Quick test_disk_stats;
          QCheck_alcotest.to_alcotest prop_disk_roundtrip;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "drop fault" `Quick test_net_drop_fault;
          Alcotest.test_case "delay fault" `Quick test_net_delay_fault;
          Alcotest.test_case "corrupt flag" `Quick test_net_corrupt_flag;
          Alcotest.test_case "error fault" `Quick test_net_error_fault;
          Alcotest.test_case "hang blocks sender" `Quick test_net_hang_blocks_sender;
          Alcotest.test_case "site_dst fate sharing" `Quick test_net_site_dst_override;
          Alcotest.test_case "asymmetric partition" `Quick
            test_net_asymmetric_partition;
          Alcotest.test_case "asymmetric link profiles" `Quick
            test_net_asymmetric_link_profiles;
          Alcotest.test_case "inbox length / try_recv" `Quick
            test_net_inbox_length_and_try_recv;
          QCheck_alcotest.to_alcotest prop_net_link_fifo;
        ] );
      ( "memory",
        [
          Alcotest.test_case "accounting" `Quick test_memory_accounting;
          Alcotest.test_case "out of memory" `Quick test_memory_oom;
          Alcotest.test_case "pause under pressure" `Quick
            test_memory_pause_under_pressure;
        ] );
    ]
