(** Pretty-printer for IR programs, in a pseudo-Java style so reduction
    demos read like the paper's Figures 2 and 3. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_block : indent:int -> Format.formatter -> Ast.block -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string
