lib/env/memory.ml: Faultreg Fmt Int64 Result Wd_sim
