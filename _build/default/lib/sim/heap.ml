(* Binary min-heap keyed by (time, sequence). The sequence number breaks ties
   so that events scheduled for the same instant fire in insertion order,
   which is what makes whole-simulation runs deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
}

let create ~dummy_payload =
  let dummy = { time = 0L; seq = 0; payload = dummy_payload } in
  { data = Array.make 16 dummy; size = 0; next_seq = 0; dummy }

let size h = h.size
let is_empty h = h.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let data = Array.make (2 * Array.length h.data) h.dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time payload =
  if h.size = Array.length h.data then grow h;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.data.(h.size) <- { time; seq; payload };
  h.size <- h.size + 1;
  sift_up h (h.size - 1);
  seq

let peek_time h = if h.size = 0 then None else Some h.data.(0).time

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- h.dummy;
    if h.size > 0 then sift_down h 0;
    Some (top.time, top.payload)
  end

(* Drain every entry in key order; used by tests and by shutdown paths. *)
let drain h =
  let rec loop acc =
    match pop h with None -> List.rev acc | Some e -> loop (e :: acc)
  in
  loop []
