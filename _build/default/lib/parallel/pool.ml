(* Domain pool with a shared work queue.

   Workers block on a mutex/condvar-guarded queue of thunks; [map] submits
   one thunk per input element, each writing its slot of a results array,
   and waits on a per-batch condvar until the batch's remaining-counter
   reaches zero. Distinct array slots are written by at most one domain and
   read by the caller only after the counter (an [Atomic.t]) plus the batch
   mutex have established the necessary happens-before edges.

   Determinism: results are collected by input index, not completion order,
   and exceptions are re-raised for the lowest failing index — so a
   parallel batch is observationally identical to the sequential one. *)

type job = unit -> unit

type t = {
  width : int;
  queue : job Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let default_jobs () =
  match Sys.getenv_opt "WD_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec worker_loop pool =
  Mutex.lock pool.mu;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.mu
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mu (* closed: exit *)
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mu;
    job ();
    worker_loop pool
  end

let create ~jobs =
  let width = max 1 jobs in
  let pool =
    {
      width;
      queue = Queue.create ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  if width > 1 then
    pool.workers <-
      List.init width (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.width

let shutdown pool =
  let workers =
    Mutex.lock pool.mu;
    let ws = pool.workers in
    pool.closed <- true;
    pool.workers <- [];
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mu;
    ws
  in
  List.iter Domain.join workers

let submit pool jobs_ =
  Mutex.lock pool.mu;
  if pool.closed then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.map: pool is shut down"
  end;
  List.iter (fun j -> Queue.push j pool.queue) jobs_;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mu

let map pool f xs =
  if pool.width <= 1 then begin
    if pool.closed then invalid_arg "Pool.map: pool is shut down";
    List.map f xs
  end
  else
    match xs with
    | [] -> []
    | _ ->
        let inputs = Array.of_list xs in
        let n = Array.length inputs in
        let results = Array.make n None in
        let remaining = Atomic.make n in
        let batch_mu = Mutex.create () in
        let batch_done = Condition.create () in
        let job i () =
          let r =
            try Ok (f inputs.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock batch_mu;
            Condition.broadcast batch_done;
            Mutex.unlock batch_mu
          end
        in
        submit pool (List.init n (fun i -> job i));
        Mutex.lock batch_mu;
        while Atomic.get remaining > 0 do
          Condition.wait batch_done batch_mu
        done;
        Mutex.unlock batch_mu;
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) | None -> ())
          results;
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error _) | None -> assert false)
             results)

let map_reduce pool ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map pool f xs)

let with_pool ?jobs f =
  let pool = create ~jobs:(match jobs with Some n -> n | None -> default_jobs ()) in
  match f pool with
  | v ->
      shutdown pool;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown pool;
      Printexc.raise_with_backtrace e bt

let run_map ?jobs f xs = with_pool ?jobs (fun pool -> map pool f xs)
