(** Condition variables for the cooperative scheduler.

    Semantics mirror POSIX condition variables: waiters must re-check their
    predicate after waking (use {!await} to get that loop for free). *)

type t

val create : string -> t
val name : t -> string
val waiter_count : t -> int

val wait : t -> unit
(** Block until signalled. *)

val signal : t -> unit
(** Wake one waiter, if any. *)

val broadcast : t -> unit
(** Wake every current waiter. *)

val await : t -> (unit -> bool) -> unit
(** [await c pred] blocks until [pred ()] is true, re-checking on wake. *)

val await_timeout : t -> (unit -> bool) -> timeout:int64 -> bool
(** Like {!await} with a deadline; returns [false] on timeout. *)
