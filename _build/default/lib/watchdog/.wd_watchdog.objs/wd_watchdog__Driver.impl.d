lib/watchdog/driver.ml: Checker Fmt Int64 List Policy Printexc Report String Wd_env Wd_ir Wd_sim
