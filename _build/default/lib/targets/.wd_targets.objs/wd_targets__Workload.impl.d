lib/targets/workload.ml: Array Int64 Wd_sim
