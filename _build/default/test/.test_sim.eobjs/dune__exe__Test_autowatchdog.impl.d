test/test_autowatchdog.ml: Alcotest Ast Builder Bytes Fmt Interp List Loc Runtime String Validate Wd_analysis Wd_autowatchdog Wd_env Wd_ir Wd_sim Wd_targets Wd_watchdog
