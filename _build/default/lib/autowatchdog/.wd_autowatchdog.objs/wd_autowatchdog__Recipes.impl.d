lib/autowatchdog/recipes.ml: Fmt List Wd_analysis Wd_ir
