(* One fleet member: a [wd_targets] instance plus its AutoWatchdog-generated
   driver, booted into a shared scheduler world. Each node gets a *private*
   fault registry, so a fault injected at "disk:*" on node 2 degrades node 2
   only even though every node names its disk identically — the per-node
   scoping the cluster catalog relies on.

   Nodes carry their intrinsic evidence sources (generated mimic checkers,
   queue-depth signal checkers, a closed-loop client workload); cross-node
   probing and liveness gossip live in [Membership], and correlation lives
   in [Fleet] — deliberately off the node's hot path. *)

module Generate = Wd_autowatchdog.Generate
module Checker = Wd_watchdog.Checker
module Driver = Wd_watchdog.Driver

type target =
  | Zk of Wd_targets.Zkmini.t
  | Cs of Wd_targets.Cstore.t

type t = {
  index : int;
  id : string; (* fabric endpoint, "n<index>" *)
  system : string;
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t; (* private: faults here hit this node only *)
  driver : Driver.t;
  workload : Wd_targets.Workload.stats;
  target : target;
  res : Wd_ir.Runtime.resources;
  tasks : Wd_sim.Sched.task list;
  recovery : Wd_watchdog.Recovery.t;
      (* microreboot plane, driven by fleet [Recover] commands — the node
         never self-heals on local reports alone *)
  digests : Fabric.digest list ref;
      (* newest-first bounded buffer of local report digests, piggybacked
         on heartbeat gossip for leader-side corroboration *)
}

let digest_cap = 16

let digest_of (r : Wd_watchdog.Report.t) =
  {
    Fabric.d_checker = r.Wd_watchdog.Report.checker_id;
    d_fkind = Wd_watchdog.Report.fkind_name r.Wd_watchdog.Report.fkind;
    d_at = r.Wd_watchdog.Report.at;
  }

let take n l = List.filteri (fun i _ -> i < n) l

(* Same id-prefix convention as Campaign.classify_checker, local to avoid a
   wd_harness dependency (wd_harness depends on wd_cluster, not vice versa). *)
let kind_of_checker_id id : Checker.kind =
  let has_prefix p =
    String.length id >= String.length p && String.sub id 0 (String.length p) = p
  in
  if has_prefix "probe:" then Checker.Probe
  else if has_prefix "signal:" then Checker.Signal
  else Checker.Mimic

let boot ?engine ?schedule ~sched ~system ~index () =
  let id = Fabric.node_name index in
  let reg = Wd_env.Faultreg.create () in
  let driver = Driver.create ?schedule sched in
  let wstats = Wd_targets.Workload.create_stats () in
  let recovery = Wd_watchdog.Recovery.create sched in
  let digests = ref [] in
  Driver.on_report driver (fun r ->
      digests := take digest_cap (digest_of r :: !digests));
  match (system : Topology.system) with
  | Topology.Zkmini ->
      let prog = Wd_targets.Zkmini.program () in
      let g = Generate.analyze_cached prog in
      let t =
        Wd_targets.Zkmini.boot ?engine ~sched ~reg
          ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
      in
      ignore
        (Generate.attach ?engine ~progress:(Wd_sim.Time.sec 20) g ~sched
           ~main:t.Wd_targets.Zkmini.leader ~driver);
      Driver.add_checker driver
        (Wd_detectors.Signalmon.queue_depth ~id:"signal:reqq"
           ~res:t.Wd_targets.Zkmini.res ~queue:Wd_targets.Zkmini.request_queue
           ~max_depth:64);
      let wl =
        Wd_targets.Workload.spawn
          ~name:(id ^ "-client")
          ~sched ~period:(Wd_sim.Time.ms 60)
          ~op:(fun i ->
            let path = Fmt.str "/node%02d" (i mod 20) in
            if i mod 3 = 0 then Wd_targets.Zkmini.get t ~path
            else Wd_targets.Zkmini.create t ~path ~data:(Fmt.str "d%d" i))
          wstats
      in
      let tasks = Wd_targets.Zkmini.start t in
      (* leader entries come first in [start]'s task list *)
      Generate.register_components recovery ~sched
        ~main:t.Wd_targets.Zkmini.leader
        ~entries:Wd_targets.Zkmini.leader_entries
        ~tasks:(take (List.length Wd_targets.Zkmini.leader_entries) tasks);
      Driver.start driver;
      {
        index;
        id;
        system = Topology.system_name system;
        sched;
        reg;
        driver;
        workload = wstats;
        target = Zk t;
        res = t.Wd_targets.Zkmini.res;
        tasks = wl :: tasks;
        recovery;
        digests;
      }
  | Topology.Cstore ->
      let prog = Wd_targets.Cstore.program () in
      let g = Generate.analyze_cached prog in
      let t =
        Wd_targets.Cstore.boot ?engine ~sched ~reg
          ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
      in
      ignore
        (Generate.attach ?engine ~progress:(Wd_sim.Time.sec 20) g ~sched
           ~main:t.Wd_targets.Cstore.main ~driver);
      Driver.add_checker driver
        (Wd_detectors.Signalmon.queue_depth ~id:"signal:reqq"
           ~res:t.Wd_targets.Cstore.res ~queue:Wd_targets.Cstore.request_queue
           ~max_depth:64);
      let wl =
        Wd_targets.Workload.spawn
          ~name:(id ^ "-client")
          ~sched ~period:(Wd_sim.Time.ms 50)
          ~op:(fun i ->
            let key = Fmt.str "row%03d" (i mod 40) in
            if i mod 3 = 2 then Wd_targets.Cstore.read t ~key
            else Wd_targets.Cstore.write t ~key ~value:(Fmt.str "cell%d" i))
          wstats
      in
      let tasks = Wd_targets.Cstore.start t in
      Generate.register_components recovery ~sched
        ~main:t.Wd_targets.Cstore.main ~entries:Wd_targets.Cstore.entries
        ~tasks;
      Driver.start driver;
      {
        index;
        id;
        system = Topology.system_name system;
        sched;
        reg;
        driver;
        workload = wstats;
        target = Cs t;
        res = t.Wd_targets.Cstore.res;
        tasks = wl :: tasks;
        recovery;
        digests;
      }

(* Bounded end-to-end client operation, run by the membership responder
   before acking a peer's probe: a limping node answers gossip (pure
   network) but fails this (full request pipeline through its slow disk). *)
let local_probe ?(timeout = Wd_sim.Time.ms 800) t =
  match t.target with
  | Zk zk -> (
      match Wd_targets.Zkmini.create ~timeout zk ~path:"/__fleet" ~data:"p" with
      | `Ok _ -> true
      | `Timeout | `Err _ -> false)
  | Cs cs -> (
      match Wd_targets.Cstore.write ~timeout cs ~key:"__fleet" ~value:"p" with
      | `Ok _ -> true
      | `Timeout | `Err _ -> false)

(* Open-loop burst flooder for the fleet-overload scenario: legitimate
   traffic pushed straight into the request queue, no fault anywhere. The
   signal checkers alarm (queue over budget) while mimic checkers stay
   quiet — the paper's §4.2 false-alarm case at fleet scope. *)
let start_burst t =
  let queue, mk =
    match t.target with
    | Zk _ ->
        ( Wd_targets.Zkmini.request_queue,
          fun i ->
            Wd_ir.Ast.VMap
              [
                ("reply", Wd_ir.Ast.VStr "");
                ("op", Wd_ir.Ast.VStr "create");
                ("path", Wd_ir.Ast.VStr (Fmt.str "/burst%d" (i mod 8)));
                ("data", Wd_ir.Ast.VStr "x");
              ] )
    | Cs _ ->
        ( Wd_targets.Cstore.request_queue,
          fun i ->
            Wd_ir.Ast.VMap
              [
                ("reply", Wd_ir.Ast.VStr "");
                ("op", Wd_ir.Ast.VStr "write");
                ("key", Wd_ir.Ast.VStr (Fmt.str "burst%d" (i mod 8)));
                ("value", Wd_ir.Ast.VStr "x");
              ] )
  in
  ignore
    (Wd_sim.Sched.spawn ~name:(t.id ^ "-burst") ~daemon:true t.sched (fun () ->
         let inq = Wd_ir.Runtime.queue t.res queue in
         let i = ref 0 in
         while true do
           (* each burst takes the service ~1s to absorb, so the depth
              sampler is guaranteed to see the backlog at least once *)
           Wd_sim.Sched.sleep (Wd_sim.Time.sec 5);
           for _ = 1 to 2000 do
             incr i;
             ignore (Wd_sim.Channel.try_send inq (mk !i))
           done
         done))

let reports t = Driver.reports t.driver
let checker_count t = Driver.checker_count t.driver

(* --- accessors (the record is abstract outside this module) ------------ *)

let id t = t.id
let index t = t.index
let system t = t.system
let reg t = t.reg
let driver t = t.driver
let workload t = t.workload
let res t = t.res
let tasks t = t.tasks

(* --- fleet-driven recovery and gossip corroboration -------------------- *)

let recent_digests t = !(t.digests)

(* Command entry point for a fleet [Recover] message: microreboot the
   component owning [func]. The fleet plane localised the failure from this
   node's own shipped mimic report; the node just executes. *)
let recover t ~func ~reason =
  Wd_watchdog.Recovery.recover_function t.recovery ~func ~reason

let recovery_events t = Wd_watchdog.Recovery.events t.recovery
