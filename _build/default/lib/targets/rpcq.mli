(** Shared client-facing request/reply plumbing for IR targets.

    Clients enqueue request maps carrying a fresh reply id; the target's IR
    pushes replies (tagged with that id) onto a well-known replies queue; a
    dispatcher task routes each reply to the per-request queue the client
    blocks on. This is the API surface probe checkers exercise. *)

type t

val create :
  sched:Wd_sim.Sched.t ->
  res:Wd_ir.Runtime.resources ->
  request_queue:string ->
  replies_queue:string ->
  t

val spawn_dispatcher : t -> Wd_sim.Sched.task

val request :
  ?timeout:int64 ->
  t ->
  (string * Wd_ir.Ast.value) list ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]
(** Issue one request (a ["reply"] field is added) and wait for its reply.
    Must be called from inside a running task. *)
