lib/harness/campaign.mli: Systems Wd_faults Wd_ir Wd_watchdog
