lib/sim/rng.mli:
