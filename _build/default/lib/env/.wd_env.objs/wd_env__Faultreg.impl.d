lib/env/faultreg.ml: Fmt Hashtbl List Result String Wd_sim
