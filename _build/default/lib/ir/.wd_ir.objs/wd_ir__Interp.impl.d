lib/ir/interp.ml: Ast Bytes Fmt Hashtbl Int64 List Loc Prims Runtime String Wd_env Wd_sim
