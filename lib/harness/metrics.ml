(* Aggregate statistics over repeated campaign runs: detection rates and
   latency distributions across seeds. The simulator is deterministic per
   seed, so a multi-seed sweep measures sensitivity to event interleavings
   (workload phase, jitter draws), not flakiness. *)

type latency_stats = {
  ls_count : int;        (* runs in which detection happened *)
  ls_total : int;        (* runs overall *)
  ls_min : int64;
  ls_median : int64;
  ls_p90 : int64;
  ls_max : int64;
}

let latency_stats_of latencies ~total =
  match List.sort compare latencies with
  | [] ->
      { ls_count = 0; ls_total = total; ls_min = 0L; ls_median = 0L;
        ls_p90 = 0L; ls_max = 0L }
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let pick p = arr.(min (n - 1) (int_of_float (p *. float_of_int n))) in
      {
        ls_count = n;
        ls_total = total;
        ls_min = arr.(0);
        ls_median = pick 0.5;
        ls_p90 = pick 0.9;
        ls_max = arr.(n - 1);
      }

let pp_latency_stats ppf s =
  if s.ls_count = 0 then Fmt.pf ppf "0/%d detected" s.ls_total
  else
    Fmt.pf ppf "%d/%d detected; median %a (p90 %a, max %a)" s.ls_count
      s.ls_total Wd_sim.Time.pp s.ls_median Wd_sim.Time.pp s.ls_p90
      Wd_sim.Time.pp s.ls_max

(* Run one scenario across several seeds and aggregate one detector class. *)
let scenario_across_seeds ?(cfg = Campaign.default_config) ~seeds ~detector sid =
  let outcomes =
    List.map
      (fun seed ->
        let r = Campaign.run_scenario ~cfg:{ cfg with Campaign.seed } sid in
        List.assoc detector r.Campaign.r_outcomes)
      seeds
  in
  let latencies =
    List.filter_map (fun o -> o.Campaign.o_latency) outcomes
  in
  let exact =
    List.length
      (List.filter (fun o -> o.Campaign.o_pinpoint = Some Campaign.Exact) outcomes)
  in
  (latency_stats_of latencies ~total:(List.length seeds), exact)

(* --- fleet-level aggregation (E17) ------------------------------------ *)

type family_stats = {
  fam_family : string; (* mimic | probe | signal | inferred *)
  fam_indictments : int; (* evidence-backed verdicts on faulty cells *)
  fam_false_positives : int; (* evidence-backed verdicts on quiet cells *)
}

type fleet_summary = {
  fs_faulty : int; (* cells whose scenario expects an indictment *)
  fs_right : int; (* ... that indicted exactly the right target *)
  fs_node_cells : int; (* cells expecting a node indictment *)
  fs_component_right : int; (* ... that also named a true component *)
  fs_quiet : int; (* cells expecting no indictment *)
  fs_false_indict : int; (* ... that indicted a node or link anyway *)
  fs_latency : latency_stats; (* first-verdict latency over faulty cells *)
  fs_mttr : latency_stats;
      (* injection -> first fleet-commanded microreboot, over node cells:
         the decentralized plane's verdict-driven repair loop end to end *)
  fs_families : family_stats list;
      (* evidence-backed verdicts attributed to the checker family that
         produced the shipped report, in [checker_families] order *)
}

let checker_families = [ "mimic"; "probe"; "signal"; "inferred" ]

let family_name = function
  | `Mimic -> "mimic"
  | `Probe -> "probe"
  | `Signal -> "signal"
  | `Inferred -> "inferred"

(* Which checker family stands behind each evidence-backed fleet verdict:
   the verdict's evidence travels as report wire bytes, so decoding it
   recovers the checker id of whichever local detector fired. *)
let evidence_families (r : Wd_cluster.Sim.result) =
  List.filter_map
    (fun (_, (e : Wd_cluster.Fleet.event)) ->
      match e.Wd_cluster.Fleet.ev_evidence with
      | None -> None
      | Some wire -> (
          match Wd_watchdog.Report.of_wire wire with
          | Error _ -> None
          | Ok rep ->
              Some
                (family_name
                   (Campaign.classify_checker rep.Wd_watchdog.Report.checker_id))))
    r.Wd_cluster.Sim.cr_events

let fleet_summary (rs : Wd_cluster.Sim.result list) =
  let expects_indictment (r : Wd_cluster.Sim.result) =
    match
      (Wd_faults.Cluster_catalog.find r.Wd_cluster.Sim.cr_csid)
        .Wd_faults.Cluster_catalog.cexpected
    with
    | Wd_faults.Cluster_catalog.Expect_no_indictment -> false
    | Wd_faults.Cluster_catalog.Expect_node _
    | Wd_faults.Cluster_catalog.Expect_links ->
        true
  in
  let expects_node (r : Wd_cluster.Sim.result) =
    match
      (Wd_faults.Cluster_catalog.find r.Wd_cluster.Sim.cr_csid)
        .Wd_faults.Cluster_catalog.cexpected
    with
    | Wd_faults.Cluster_catalog.Expect_node _ -> true
    | _ -> false
  in
  let faulty = List.filter expects_indictment rs in
  let quiet = List.filter (fun r -> not (expects_indictment r)) rs in
  let node_cells = List.filter expects_node rs in
  {
    fs_faulty = List.length faulty;
    fs_right =
      List.length
        (List.filter (fun r -> r.Wd_cluster.Sim.cr_as_expected) faulty);
    fs_node_cells = List.length node_cells;
    fs_component_right =
      List.length
        (List.filter (fun r -> r.Wd_cluster.Sim.cr_component_ok) node_cells);
    fs_quiet = List.length quiet;
    fs_false_indict =
      List.length
        (List.filter
           (fun (r : Wd_cluster.Sim.result) ->
             r.Wd_cluster.Sim.cr_indicted_nodes <> []
             || r.Wd_cluster.Sim.cr_indicted_links <> [])
           quiet);
    fs_latency =
      latency_stats_of
        (List.filter_map (fun r -> r.Wd_cluster.Sim.cr_first_latency) faulty)
        ~total:(List.length faulty);
    fs_mttr =
      latency_stats_of
        (List.filter_map
           (fun r -> r.Wd_cluster.Sim.cr_first_recovery_latency)
           node_cells)
        ~total:(List.length node_cells);
    fs_families =
      (let count cells fam =
         List.fold_left
           (fun acc r ->
             acc
             + List.length
                 (List.filter (String.equal fam) (evidence_families r)))
           0 cells
       in
       List.map
         (fun fam ->
           {
             fam_family = fam;
             fam_indictments = count faulty fam;
             fam_false_positives = count quiet fam;
           })
         checker_families);
  }

let pp_family_stats ppf fams =
  Fmt.pf ppf "%a"
    Fmt.(
      list ~sep:(any ", ") (fun ppf f ->
          Fmt.pf ppf "%s %d (+%d fp)" f.fam_family f.fam_indictments
            f.fam_false_positives))
    fams
