lib/faults/catalog.mli: Format Wd_env
