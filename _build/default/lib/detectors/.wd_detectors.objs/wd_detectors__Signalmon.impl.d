lib/detectors/signalmon.ml: Fmt Int64 Wd_env Wd_ir Wd_sim Wd_watchdog
