lib/env/faultreg.mli: Format
