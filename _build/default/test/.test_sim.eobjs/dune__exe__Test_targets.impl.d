test/test_targets.ml: Alcotest Bytes Fmt Int64 List String Wd_env Wd_ir Wd_sim Wd_targets
