lib/parallel/pool.ml: Array Atomic Condition Domain List Mutex Printexc Queue String Sys
