(** Global string intern table for hot-path identifiers.

    [intern] is idempotent — the same string always yields the same id,
    from any domain — and [str] round-trips the id back to the canonical
    (physically shared) string. Ids are assigned in first-intern order, so
    they are *not* stable across runs: never let an id reach wire bytes or
    a digest; materialise with [str] first. *)

type id = int

val intern : string -> id
(** Intern a string. O(1) amortised; lock-free once this domain has seen
    the string. *)

val str : id -> string
(** The canonical string for an id; raises [Invalid_argument] on an id
    that was never handed out. Never allocates. *)

val count : unit -> int
(** Number of distinct strings interned so far (monotonic). *)
