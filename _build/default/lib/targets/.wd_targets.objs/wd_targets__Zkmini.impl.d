lib/targets/zkmini.ml: Ast Builder Interp List Rpcq Runtime Wd_env Wd_ir Wd_sim
