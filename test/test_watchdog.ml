(* Tests for the watchdog core: reports, context table, driver behaviour
   (scheduling, timeout confinement, failure-signature capture, debounce,
   adaptive slowness), and alarm policy. *)

open Wd_watchdog
module Sched = Wd_sim.Sched
module Time = Wd_sim.Time
open Wd_ir.Ast

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- report --- *)

let test_report_pp () =
  let r =
    Report.make ~at:(Time.sec 3) ~checker_id:"c1" ~fkind:Report.Hang
      ~loc:(Wd_ir.Loc.make ~func:"f" ~path:[ 1; 2 ] ~uid:9)
      ~op_desc:"disk_write(d)" ()
  in
  let s = Fmt.str "%a" Report.pp r in
  check "mentions checker" true (String.length s > 0);
  check "liveness kind" true (Report.is_liveness r);
  Alcotest.(check string) "kind name" "hang" (Report.fkind_name r.Report.fkind)

(* --- context table --- *)

let test_wcontext_readiness () =
  let w = Wcontext.create () in
  Wcontext.register_unit w ~unit_id:"u" ~params:[ "a"; "b" ];
  Wcontext.bind_hook w ~hook_id:0 ~unit_id:"u" ~captures:[ ("a", "t_a") ];
  Wcontext.bind_hook w ~hook_id:1 ~unit_id:"u" ~captures:[ ("b", "t_b") ];
  check "not ready" false (Wcontext.ready w "u");
  Wcontext.sink w ~now:1L 0 [ ("t_a", VInt 1) ];
  check "half ready" false (Wcontext.ready w "u");
  Wcontext.sink w ~now:2L 1 [ ("t_b", VInt 2) ];
  check "ready" true (Wcontext.ready w "u");
  match Wcontext.args w "u" with
  | Some [ VInt 1; VInt 2 ] -> ()
  | _ -> Alcotest.fail "ordered args"

let test_wcontext_empty_params_always_ready () =
  let w = Wcontext.create () in
  Wcontext.register_unit w ~unit_id:"u" ~params:[];
  check "ready" true (Wcontext.ready w "u");
  check "empty args" true (Wcontext.args w "u" = Some [])

let test_wcontext_replication () =
  let w = Wcontext.create () in
  Wcontext.register_unit w ~unit_id:"u" ~params:[ "a" ];
  Wcontext.bind_hook w ~hook_id:0 ~unit_id:"u" ~captures:[ ("a", "t") ];
  let stored = Bytes.of_string "XY" in
  Wcontext.sink w ~now:1L 0 [ ("t", VBytes stored) ];
  (match Wcontext.args w "u" with
  | Some [ VBytes b ] ->
      check "fetched buffer never aliases the stored one" false (b == stored);
      (* mutating the fetched copy must not damage the stored context *)
      Bytes.set b 0 '!';
      Alcotest.(check string) "stored context intact" "XY" (Bytes.to_string stored);
      (* a new capture invalidates the cached copy: the next fetch reflects
         the fresh capture, untouched by the earlier handout *)
      Wcontext.sink w ~now:2L 0 [ ("t", VBytes (Bytes.of_string "XY")) ];
      (match Wcontext.args w "u" with
      | Some [ VBytes b2 ] ->
          Alcotest.(check string) "fresh copy after rewrite" "XY"
            (Bytes.to_string b2)
      | _ -> Alcotest.fail "fetch")
  | _ -> Alcotest.fail "fetch");
  check_int "updates counted" 2 (Wcontext.updates w "u")

let test_wcontext_staleness () =
  let w = Wcontext.create () in
  Wcontext.register_unit w ~unit_id:"u" ~params:[ "a" ];
  Wcontext.bind_hook w ~hook_id:0 ~unit_id:"u" ~captures:[ ("a", "t") ];
  Wcontext.sink w ~now:(Time.sec 1) 0 [ ("t", VInt 1) ];
  check "age measured" true
    (Wcontext.staleness w ~now:(Time.sec 5) "u" = Some (Time.sec 4));
  Wcontext.sink w ~now:(Time.sec 6) 0 [ ("t", VInt 2) ];
  check "refreshed" true (Wcontext.staleness w ~now:(Time.sec 6) "u" = Some 0L)

let test_wcontext_unknown_hook_ignored () =
  let w = Wcontext.create () in
  Wcontext.sink w ~now:0L 99 [ ("x", VInt 0) ];
  check "no units" true (Wcontext.args w "nothing" = None)

(* COW-vs-eager differential: drive the real table and an eager-copy
   reference model in lockstep through a mutation-heavy random schedule of
   hook writes and reads. Every read must return values equal to the
   reference, and no VBytes buffer in a handout may alias the stored
   context. (Checkers never mutate fetched buffers in place — the IR has no
   primitive for it — so the cached-copy reuse is invisible here, exactly
   as it is in the tree.) *)

let gen_cow_value =
  QCheck.Gen.(
    let bytes_v =
      map (fun s -> VBytes (Bytes.of_string s)) (string_size (1 -- 12))
    in
    oneof
      [
        bytes_v;
        map (fun i -> VInt i) small_int;
        map (fun (s, b) -> VPair (VStr s, b)) (pair small_string bytes_v);
        map (fun bs -> VList bs) (list_size (1 -- 3) bytes_v);
        map
          (fun (k, b) -> VMap [ (k, b); ("n", VInt 1) ])
          (pair small_string bytes_v);
      ])

let gen_cow_ops =
  QCheck.Gen.(
    list_size (5 -- 60)
      (oneof
         [
           map (fun (i, v) -> `Sink (i mod 2, v)) (pair small_int gen_cow_value);
           return `Read;
         ]))

let rec bytes_of_value acc = function
  | VBytes b -> b :: acc
  | VUnit | VBool _ | VInt _ | VStr _ -> acc
  | VList vs -> List.fold_left bytes_of_value acc vs
  | VPair (a, b) -> bytes_of_value (bytes_of_value acc a) b
  | VMap kvs -> List.fold_left (fun acc (_, v) -> bytes_of_value acc v) acc kvs

let prop_wcontext_cow_matches_eager =
  QCheck.Test.make ~name:"COW context reads match an eager-copy reference"
    ~count:100
    (QCheck.make gen_cow_ops)
    (fun ops ->
      let w = Wcontext.create () in
      Wcontext.register_unit w ~unit_id:"u" ~params:[ "a"; "b" ];
      Wcontext.bind_hook w ~hook_id:0 ~unit_id:"u"
        ~captures:[ ("a", "ta"); ("b", "tb") ];
      let eager : (string, value) Hashtbl.t = Hashtbl.create 4 in
      let stored : (string, value) Hashtbl.t = Hashtbl.create 4 in
      let now = ref 0L in
      let ok = ref true in
      List.iter
        (fun op ->
          now := Int64.add !now 1L;
          match op with
          | `Sink (i, v) ->
              let param, tmp = if i = 0 then ("a", "ta") else ("b", "tb") in
              (* each table gets a private copy of the captured value, as
                 the interpreter's hook path provides *)
              let v_cow = copy_value v in
              Wcontext.sink w ~now:!now 0 [ (tmp, v_cow) ];
              Hashtbl.replace stored param v_cow;
              Hashtbl.replace eager param (copy_value v)
          | `Read -> (
              let expect =
                match
                  (Hashtbl.find_opt eager "a", Hashtbl.find_opt eager "b")
                with
                | Some a, Some b -> Some [ copy_value a; copy_value b ]
                | _ -> None
              in
              match (Wcontext.args w "u", expect) with
              | None, None -> ()
              | Some got, Some want ->
                  if not (List.for_all2 value_equal got want) then ok := false;
                  let stored_bytes =
                    Hashtbl.fold (fun _ v acc -> bytes_of_value acc v) stored []
                  in
                  List.iter
                    (fun g ->
                      List.iter
                        (fun gb ->
                          if List.memq gb stored_bytes then ok := false)
                        (bytes_of_value [] g))
                    got
              | None, Some _ | Some _, None -> ok := false))
        ops;
      !ok)

(* --- driver --- *)

let with_driver ?policy f =
  let s = Sched.create ~seed:2 () in
  let driver = Driver.create ?policy s in
  f s driver

let const_checker ?(period = Time.sec 1) ?(timeout = Time.sec 5) ~id outcome =
  Checker.make ~period ~timeout ~id (fun ~now:_ -> outcome ())

let test_driver_schedules_periodically () =
  with_driver (fun s driver ->
      let runs = ref 0 in
      Driver.add_checker driver
        (const_checker ~id:"ok" (fun () -> incr runs; Checker.Pass));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 10) s);
      check "about ten runs" true (!runs >= 9 && !runs <= 10);
      check_int "no reports" 0 (List.length (Driver.reports driver)))

let test_driver_reports_failures () =
  with_driver (fun s driver ->
      Driver.add_checker driver
        (const_checker ~id:"bad" (fun () ->
             Checker.Fail
               (Report.make ~at:(Sched.now s) ~checker_id:"bad"
                  ~fkind:(Report.Error_sig "oops") ())));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 3) s);
      (* dedup window suppresses repeats of the same finding *)
      check_int "one deduped report" 1 (List.length (Driver.reports driver)))

let test_driver_timeout_becomes_hang_report () =
  with_driver (fun s driver ->
      Driver.add_checker driver
        (Checker.make ~id:"hangs" ~period:(Time.sec 1) ~timeout:(Time.sec 2)
           ~locate:(fun () ->
             (Some (Wd_ir.Loc.make ~func:"stuck_op" ~path:[] ~uid:1), "op", []))
           (fun ~now:_ -> Sched.sleep (Time.sec 60); Checker.Pass));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 5) s);
      match Driver.reports driver with
      | r :: _ ->
          check "hang kind" true (r.Report.fkind = Report.Hang);
          check "located" true
            (match r.Report.loc with
            | Some l -> Wd_ir.Loc.func l = "stuck_op"
            | None -> false)
      | [] -> Alcotest.fail "expected a hang report")

let test_driver_survives_checker_crash () =
  with_driver (fun s driver ->
      let good_runs = ref 0 in
      Driver.add_checker driver
        (const_checker ~id:"crasher" (fun () -> failwith "bug in checker"));
      Driver.add_checker driver
        (const_checker ~id:"good" (fun () -> incr good_runs; Checker.Pass));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 5) s);
      check "good checker kept running" true (!good_runs >= 4);
      match Driver.reports driver with
      | r :: _ -> (
          match r.Report.fkind with
          | Report.Checker_crash _ -> ()
          | _ -> Alcotest.fail "crash signature expected")
      | [] -> Alcotest.fail "crash must be reported")

let test_driver_skip_not_a_failure () =
  with_driver (fun s driver ->
      Driver.add_checker driver
        (const_checker ~id:"skippy" (fun () -> Checker.Skip "not ready"));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 5) s);
      check_int "no reports" 0 (List.length (Driver.reports driver));
      match Driver.stats driver with
      | [ st ] -> check "skips counted" true (st.Driver.cs_skips >= 4)
      | _ -> Alcotest.fail "one checker")

let test_driver_confirmations_debounce () =
  let policy = Policy.make ~confirmations:3 () in
  with_driver ~policy (fun s driver ->
      let n = ref 0 in
      Driver.add_checker driver
        (const_checker ~id:"flaky" (fun () ->
             incr n;
             if !n = 1 then
               Checker.Fail
                 (Report.make ~at:(Sched.now s) ~checker_id:"flaky"
                    ~fkind:(Report.Error_sig "blip") ())
             else Checker.Pass));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 5) s);
      check_int "single blip suppressed" 0 (List.length (Driver.reports driver)))

let test_driver_adaptive_slow () =
  with_driver (fun s driver ->
      let n = ref 0 in
      Driver.add_checker driver
        (Checker.make ~id:"adaptive" ~period:(Time.sec 1) ~timeout:(Time.sec 20)
           (fun ~now:_ ->
             incr n;
             (* normal runs take 1ms; from run 10 they take 400ms *)
             Sched.sleep (if !n < 10 then Time.ms 1 else Time.ms 400);
             Checker.Pass));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 15) s);
      match Driver.reports driver with
      | r :: _ -> check "slow kind" true (r.Report.fkind = Report.Slow)
      | [] -> Alcotest.fail "expected a Slow report")

let test_driver_stop () =
  with_driver (fun s driver ->
      let runs = ref 0 in
      Driver.add_checker driver
        (const_checker ~id:"c" (fun () -> incr runs; Checker.Pass));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 3) s);
      Driver.stop driver;
      let before = !runs in
      ignore (Sched.run ~until:(Time.sec 10) s);
      check_int "no runs after stop" before !runs)

let test_policy_validation_suppression () =
  let validate _ = false in
  let policy = Policy.with_validation ~suppress:true validate Policy.default in
  with_driver ~policy (fun s driver ->
      Driver.add_checker driver
        (const_checker ~id:"mimic-ish" (fun () ->
             Checker.Fail
               (Report.make ~at:(Sched.now s) ~checker_id:"mimic-ish"
                  ~fkind:(Report.Error_sig "maybe") ())));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 3) s);
      check_int "suppressed" 0 (List.length (Driver.reports driver));
      check "kept aside" true (List.length (Driver.suppressed driver) >= 1))

let test_driver_slow_elapsed_override () =
  (* a checker that spends wall time waiting (e.g. on locks) but reports a
     tiny op time must not be flagged slow *)
  with_driver (fun s driver ->
      let n = ref 0 in
      Driver.add_checker driver
        (Checker.make ~id:"waity" ~period:(Time.sec 1) ~timeout:(Time.sec 30)
           ~slow_elapsed:(fun () -> Some (Time.us 100))
           (fun ~now:_ ->
             incr n;
             (* wall time balloons after warm-up, op time stays tiny *)
             Sched.sleep (if !n < 8 then Time.ms 1 else Time.ms 500);
             Checker.Pass));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 20) s);
      check_int "no slow reports" 0 (List.length (Driver.reports driver)))

let test_driver_first_report_where () =
  with_driver (fun s driver ->
      Driver.add_checker driver
        (const_checker ~id:"a" (fun () ->
             Checker.Fail
               (Report.make ~at:(Sched.now s) ~checker_id:"a"
                  ~fkind:(Report.Error_sig "x") ())));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 3) s);
      check "finds by predicate" true
        (Driver.first_report_where driver (fun r -> r.Report.checker_id = "a")
        <> None);
      check "misses absent" true
        (Driver.first_report_where driver (fun r -> r.Report.checker_id = "zz")
        = None))

let test_validation_marks_reports () =
  (* without suppression, validation annotates the report instead *)
  let policy = Policy.with_validation (fun _ -> true) Policy.default in
  with_driver ~policy (fun s driver ->
      Driver.add_checker driver
        (const_checker ~id:"m" (fun () ->
             Checker.Fail
               (Report.make ~at:(Sched.now s) ~checker_id:"m"
                  ~fkind:(Report.Error_sig "e") ())));
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 3) s);
      match Driver.reports driver with
      | r :: _ -> check "validated flag" true (r.Report.validated = Some true)
      | [] -> Alcotest.fail "expected a report")

let test_driver_add_checker_while_running () =
  with_driver (fun s driver ->
      Driver.start driver;
      ignore (Sched.run ~until:(Time.sec 1) s);
      let runs = ref 0 in
      Driver.add_checker driver
        (const_checker ~id:"late" (fun () -> incr runs; Checker.Pass));
      ignore (Sched.run ~until:(Time.sec 5) s);
      check "late checker runs" true (!runs >= 3))

(* --- wire codec --- *)

(* structural round-trip, plus byte stability: encoding the decode of an
   encoding must reproduce the same bytes (the digest layer relies on it) *)
let roundtrip r =
  let wire = Report.to_wire r in
  match Report.of_wire wire with
  | Error e -> Alcotest.fail ("of_wire failed: " ^ e)
  | Ok r' ->
      check "round-trips structurally" true (r = r');
      Alcotest.(check string) "byte-stable" wire (Report.to_wire r')

let test_wire_every_fkind () =
  List.iter
    (fun fkind ->
      roundtrip (Report.make ~at:(Time.sec 2) ~checker_id:"c" ~fkind ());
      (* and with a location + op_desc attached *)
      roundtrip
        (Report.make ~at:(Time.ms 1) ~checker_id:"ck:x" ~fkind
           ~loc:(Wd_ir.Loc.make ~func:"f" ~path:[ 0; 3; 1 ] ~uid:7)
           ~op_desc:"disk_write(d)" ()))
    [
      Report.Hang;
      Report.Slow;
      Report.Error_sig "io failure: disk";
      Report.Assert_fail "x <> y";
      Report.Checker_crash "Division_by_zero";
    ]

let test_wire_every_value_shape () =
  let shapes =
    [
      VUnit;
      VBool true;
      VBool false;
      VInt 42;
      VInt (-7);
      VStr "plain";
      VStr "with:delims;and|magic";
      VStr "";
      VBytes (Bytes.of_string "\x00\xffraw");
      VList [ VInt 1; VStr "two"; VList [ VUnit ] ];
      VPair (VInt 1, VPair (VStr "a", VBool false));
      VMap [ ("k", VInt 9); ("nested", VMap [ ("x", VList [] ) ]) ];
    ]
  in
  (* each shape alone, then all together in one payload *)
  List.iteri
    (fun i v ->
      roundtrip
        (Report.make ~at:(Int64.of_int i) ~checker_id:"shape" ~fkind:Report.Slow
           ~payload:[ ("v", v) ] ()))
    shapes;
  roundtrip
    (Report.make ~at:(Time.sec 9) ~checker_id:"all" ~fkind:Report.Hang
       ~payload:(List.mapi (fun i v -> (Fmt.str "p%d" i, v)) shapes)
       ())

let test_wire_validated_and_errors () =
  (* validated survives the trip in all three states *)
  List.iter
    (fun validated ->
      let r = Report.make ~at:1L ~checker_id:"v" ~fkind:Report.Hang () in
      r.Report.validated <- validated;
      let wire = Report.to_wire r in
      match Report.of_wire wire with
      | Ok r' -> check "validated survives" true (r'.Report.validated = validated)
      | Error e -> Alcotest.fail e)
    [ None; Some true; Some false ];
  (* malformed inputs are rejected, not exceptions *)
  let bad w =
    match Report.of_wire w with Ok _ -> false | Error _ -> true
  in
  check "empty rejected" true (bad "");
  check "bad magic rejected" true (bad "NOPE|rest");
  check "truncated rejected" true
    (bad
       (String.sub
          (Report.to_wire (Report.make ~at:1L ~checker_id:"t" ~fkind:Report.Slow ()))
          0 12));
  check "trailing bytes rejected" true
    (bad
       (Report.to_wire (Report.make ~at:1L ~checker_id:"t" ~fkind:Report.Slow ())
       ^ "x"))

(* --- wire codec properties: round-trip and mutation fuzz ---

   The fleet plane ships reports as bytes and corroborates them by digest,
   so the codec must be byte-stable (encode is a canonical form) and
   injective (no two distinct wires decode to equal reports). Random
   reports check the first; random byte mutations check that the decoder
   either rejects or decodes to a report whose re-encoding reproduces the
   mutated bytes exactly — never a silent mis-decode. *)

let gen_wire_str = QCheck.Gen.(string_size ~gen:char (int_bound 12))

let gen_wire_value =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return VUnit;
              map (fun b -> VBool b) bool;
              map (fun i -> VInt i) int;
              map (fun s -> VStr s) gen_wire_str;
              map (fun s -> VBytes (Bytes.of_string s)) gen_wire_str;
            ]
        in
        if n <= 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map
                  (fun vs -> VList vs)
                  (list_size (int_bound 3) (self (n / 2))) );
              (1, map2 (fun a b -> VPair (a, b)) (self (n / 2)) (self (n / 2)));
              ( 1,
                map
                  (fun kvs -> VMap kvs)
                  (list_size (int_bound 3) (pair gen_wire_str (self (n / 2))))
              );
            ]))

let gen_wire_fkind =
  QCheck.Gen.(
    oneof
      [
        return Report.Hang;
        return Report.Slow;
        map (fun s -> Report.Error_sig s) gen_wire_str;
        map (fun s -> Report.Assert_fail s) gen_wire_str;
        map (fun s -> Report.Checker_crash s) gen_wire_str;
      ])

let gen_wire_report =
  QCheck.Gen.(
    map
      (fun ((at, checker_id, fkind), (loc, op_desc, payload, validated)) ->
        let r =
          Report.make ~at:(Int64.of_int at) ~checker_id ~fkind
            ?loc:
              (Option.map
                 (fun (func, path, uid) -> Wd_ir.Loc.make ~func ~path ~uid)
                 loc)
            ~op_desc ~payload ()
        in
        r.Report.validated <- validated;
        r)
      (pair
         (triple int gen_wire_str gen_wire_fkind)
         (quad
            (opt (triple gen_wire_str (list_size (int_bound 4) int) int))
            gen_wire_str
            (list_size (int_bound 4) (pair gen_wire_str gen_wire_value))
            (oneofl [ None; Some true; Some false ]))))

let arb_wire_report = QCheck.make gen_wire_report

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"random reports round-trip byte-stably" ~count:500
    arb_wire_report (fun r ->
      let wire = Report.to_wire r in
      match Report.of_wire wire with
      | Error _ -> false
      | Ok r' -> r' = r && String.equal (Report.to_wire r') wire)

let prop_wire_mutation =
  QCheck.Test.make
    ~name:"byte mutations rejected or decode to exactly the mutated bytes"
    ~count:2000
    QCheck.(
      make
        Gen.(triple gen_wire_report (int_bound 4096) (map Char.chr (int_bound 255))))
    (fun (r, pos, byte) ->
      let wire = Bytes.of_string (Report.to_wire r) in
      Bytes.set wire (pos mod Bytes.length wire) byte;
      let mutated = Bytes.to_string wire in
      match Report.of_wire mutated with
      | Error _ -> true
      | Ok r' -> String.equal (Report.to_wire r') mutated)

let prop_wire_truncation =
  QCheck.Test.make ~name:"every proper prefix is rejected" ~count:200
    QCheck.(make Gen.(pair gen_wire_report (int_bound 4096)))
    (fun (r, n) ->
      let wire = Report.to_wire r in
      let n = n mod String.length wire in
      match Report.of_wire (String.sub wire 0 n) with
      | Error _ -> true
      | Ok _ -> false)

let test_wire_canonical_numbers () =
  (* the decoder accepts only the encoder's canonical decimal form: OCaml's
     permissive int parsing (hex, octal, '_' separators, leading '+'/'0')
     would make distinct wires decode to equal reports *)
  let r = Report.make ~at:16L ~checker_id:"n" ~fkind:Report.Hang () in
  let wire = Report.to_wire r in
  check "canonical form decodes" true
    (match Report.of_wire wire with Ok _ -> true | Error _ -> false);
  let reject variant =
    (* the encoded [at] is the first field after the magic: "WDR1|16;" *)
    let mutated =
      "WDR1|" ^ variant
      ^ String.sub wire 8 (String.length wire - 8)
    in
    check (variant ^ " rejected") true
      (match Report.of_wire mutated with Ok _ -> false | Error _ -> true)
  in
  List.iter reject [ "0x10;"; "0o20;"; "0b10000;"; "1_6;"; "+16;"; "016;" ]

let () =
  Alcotest.run "wd_watchdog"
    [
      ("report", [ Alcotest.test_case "pp and kinds" `Quick test_report_pp ]);
      ( "wire codec",
        [
          Alcotest.test_case "every fkind round-trips" `Quick
            test_wire_every_fkind;
          Alcotest.test_case "every value shape round-trips" `Quick
            test_wire_every_value_shape;
          Alcotest.test_case "validated + malformed input" `Quick
            test_wire_validated_and_errors;
          Alcotest.test_case "canonical decimals only" `Quick
            test_wire_canonical_numbers;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_wire_mutation;
          QCheck_alcotest.to_alcotest prop_wire_truncation;
        ] );
      ( "wcontext",
        [
          Alcotest.test_case "readiness" `Quick test_wcontext_readiness;
          Alcotest.test_case "no params = ready" `Quick
            test_wcontext_empty_params_always_ready;
          Alcotest.test_case "replication" `Quick test_wcontext_replication;
          Alcotest.test_case "staleness" `Quick test_wcontext_staleness;
          Alcotest.test_case "unknown hook" `Quick test_wcontext_unknown_hook_ignored;
          QCheck_alcotest.to_alcotest prop_wcontext_cow_matches_eager;
        ] );
      ( "driver",
        [
          Alcotest.test_case "periodic scheduling" `Quick
            test_driver_schedules_periodically;
          Alcotest.test_case "failure reports + dedup" `Quick
            test_driver_reports_failures;
          Alcotest.test_case "timeout -> hang report" `Quick
            test_driver_timeout_becomes_hang_report;
          Alcotest.test_case "survives checker crash" `Quick
            test_driver_survives_checker_crash;
          Alcotest.test_case "skip is not failure" `Quick test_driver_skip_not_a_failure;
          Alcotest.test_case "confirmation debounce" `Quick
            test_driver_confirmations_debounce;
          Alcotest.test_case "adaptive slow" `Quick test_driver_adaptive_slow;
          Alcotest.test_case "stop" `Quick test_driver_stop;
          Alcotest.test_case "policy validation suppression" `Quick
            test_policy_validation_suppression;
          Alcotest.test_case "add checker while running" `Quick
            test_driver_add_checker_while_running;
          Alcotest.test_case "slow_elapsed override" `Quick
            test_driver_slow_elapsed_override;
          Alcotest.test_case "first_report_where" `Quick
            test_driver_first_report_where;
          Alcotest.test_case "validation marks reports" `Quick
            test_validation_marks_reports;
        ] );
    ]
