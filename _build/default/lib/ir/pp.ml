(* Pretty-printer for IR programs, in a pseudo-Java style so that the
   reduction demo reads like the paper's Figure 2/3. *)

open Ast

let rec pp_expr ppf = function
  | Const v -> pp_value ppf v
  | Var x -> Fmt.string ppf x
  | Binop (op, a, b) ->
      let sym =
        match op with
        | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
        | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
        | And -> "&&" | Or -> "||" | Concat -> "^"
      in
      Fmt.pf ppf "(%a %s %a)" pp_expr a sym pp_expr b
  | Unop (Not, e) -> Fmt.pf ppf "!%a" pp_expr e
  | Unop (Neg, e) -> Fmt.pf ppf "-%a" pp_expr e
  | Unop (Len, e) -> Fmt.pf ppf "len(%a)" pp_expr e
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp_expr a pp_expr b
  | Fst e -> Fmt.pf ppf "fst(%a)" pp_expr e
  | Snd e -> Fmt.pf ppf "snd(%a)" pp_expr e
  | Prim (name, args) ->
      Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") pp_expr) args

let pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_expr) ppf args

let rec pp_stmt ~indent ppf st =
  let pad = String.make indent ' ' in
  let line fmt = Fmt.pf ppf "%s" pad; Fmt.pf ppf fmt in
  match st.node with
  | Let (x, e) -> line "var %s = %a;@." x pp_expr e
  | Assign (x, e) -> line "%s = %a;@." x pp_expr e
  | Op { kind; target; args; bind } -> (
      match bind with
      | Some x ->
          line "var %s = %s(%s%s%a);@." x (op_kind_name kind) target
            (if args = [] then "" else ", ")
            pp_args args
      | None ->
          line "%s(%s%s%a);@." (op_kind_name kind) target
            (if args = [] then "" else ", ")
            pp_args args)
  | Call { func; args; bind } -> (
      match bind with
      | Some x -> line "var %s = %s(%a);@." x func pp_args args
      | None -> line "%s(%a);@." func pp_args args)
  | If (c, t, []) ->
      line "if (%a) {@." pp_expr c;
      pp_block ~indent:(indent + 2) ppf t;
      line "}@."
  | If (c, t, e) ->
      line "if (%a) {@." pp_expr c;
      pp_block ~indent:(indent + 2) ppf t;
      line "} else {@.";
      pp_block ~indent:(indent + 2) ppf e;
      line "}@."
  | While (c, body) ->
      line "while (%a) {@." pp_expr c;
      pp_block ~indent:(indent + 2) ppf body;
      line "}@."
  | Foreach (x, e, body) ->
      line "for (%s : %a) {@." x pp_expr e;
      pp_block ~indent:(indent + 2) ppf body;
      line "}@."
  | Sync (lock, body) ->
      line "synchronized (%s) {@." lock;
      pp_block ~indent:(indent + 2) ppf body;
      line "}@."
  | Try (body, exn, handler) ->
      line "try {@.";
      pp_block ~indent:(indent + 2) ppf body;
      line "} catch (%s) {@." exn;
      pp_block ~indent:(indent + 2) ppf handler;
      line "}@."
  | Return (Const VUnit) -> line "return;@."
  | Return e -> line "return %a;@." pp_expr e
  | Assert (e, msg) -> line "assert %a : %S;@." pp_expr e msg
  | Compute { cost_ns; note } ->
      line "/* %s: %a of work */@." note Wd_sim.Time.pp cost_ns
  | Hook id -> line "WatchdogHooks.context_setter_%d(...);  // inserted hook@." id

and pp_block ~indent ppf block = List.iter (pp_stmt ~indent ppf) block

let pp_func ppf f =
  let annots =
    if f.annots = [] then ""
    else
      Fmt.str "@%s "
        (String.concat " @"
           (List.map
              (function
                | Long_running -> "long_running" | Vulnerable_annot -> "vulnerable")
              f.annots))
  in
  Fmt.pf ppf "%svoid %s(%s) {@.%a}@." annots f.fname
    (String.concat ", " f.params)
    (pp_block ~indent:2) f.body

let pp_program ppf p =
  Fmt.pf ppf "program %s {@." p.pname;
  List.iter
    (fun e ->
      Fmt.pf ppf "  entry %s -> %s(%a);@." e.entry_name e.entry_func
        Fmt.(list ~sep:(any ", ") pp_value)
        e.entry_args)
    p.entries;
  Fmt.pf ppf "@.";
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_func f) p.funcs;
  Fmt.pf ppf "}@."

let func_to_string f = Fmt.str "%a" pp_func f
let program_to_string p = Fmt.str "%a" pp_program p
