lib/autowatchdog/generate.mli: Config Format Wd_analysis Wd_ir Wd_sim Wd_watchdog
