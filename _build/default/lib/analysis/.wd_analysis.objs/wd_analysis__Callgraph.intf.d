lib/analysis/callgraph.mli: Hashtbl Wd_ir
