lib/watchdog/policy.ml: Report Wd_sim
