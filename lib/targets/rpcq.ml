(* Shared client-facing request/reply plumbing for IR targets.

   Clients enqueue request maps carrying a fresh reply id; the target's IR
   pushes replies (tagged with that id) onto a well-known replies queue; a
   dispatcher task routes each reply to the per-request queue the client
   blocks on. This models a request/response API surface — exactly the
   interface probe checkers exercise. *)

open Wd_ir

type t = {
  sched : Wd_sim.Sched.t;
  res : Runtime.resources;
  request_queue : string;
  replies_queue : string;
  mutable seq : int;
}

let create ~sched ~res ~request_queue ~replies_queue =
  { sched; res; request_queue; replies_queue; seq = 0 }

let spawn_dispatcher t =
  Wd_sim.Sched.spawn
    ~name:(t.replies_queue ^ "/dispatch")
    ~daemon:true t.sched
    (fun () ->
      let replies = Runtime.queue t.res t.replies_queue in
      while true do
        match Wd_sim.Channel.recv replies with
        | Ast.VMap kvs -> (
            match (List.assoc_opt "id" kvs, List.assoc_opt "data" kvs) with
            | Some (Ast.VStr id), Some data ->
                ignore (Wd_sim.Channel.try_send (Runtime.queue t.res id) data)
            | _, _ -> ())
        | _ -> ()
      done)

(* Issue one request and wait for its reply. Must be called from a task. *)
let request ?(timeout = Wd_sim.Time.sec 2) t fields =
  t.seq <- t.seq + 1;
  let reply_name = t.replies_queue ^ "/r" ^ string_of_int t.seq in
  let reply_q = Runtime.queue t.res reply_name in
  let req = Ast.VMap (("reply", Ast.VStr reply_name) :: fields) in
  let inq = Runtime.queue t.res t.request_queue in
  if not (Wd_sim.Channel.try_send inq req) then begin
    Runtime.drop_queue t.res reply_name;
    `Err "request queue full"
  end
  else
    let r =
      match Wd_sim.Channel.recv_timeout reply_q ~timeout with
      | Some v -> `Ok v
      | None -> `Timeout
    in
    (* One queue per request: reclaim it or load runs grow the resource
       table (and its channels) without bound. A reply that arrives after
       a timeout re-creates the queue through the dispatcher's
       [Runtime.queue] — a rare, bounded leak. *)
    Runtime.drop_queue t.res reply_name;
    r
