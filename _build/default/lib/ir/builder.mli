(** Combinator DSL for constructing IR programs.

    Target systems are written against this module; {!program} finalises
    the result by assigning unique, stable source locations to every
    statement. Expressions are pure; all effects go through the [Op]
    shortcuts so the vulnerability analysis sees them. *)

open Ast

(** {1 Expressions} *)

val i : int -> expr
val s : string -> expr
val bconst : bool -> expr
val unit_e : expr
val v : string -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr

val ( ^: ) : expr -> expr -> expr
(** String concatenation. *)

val not_ : expr -> expr
val neg : expr -> expr
val len : expr -> expr
val pair : expr -> expr -> expr
val fst_ : expr -> expr
val snd_ : expr -> expr

val prim : string -> expr list -> expr
(** A pure primitive from {!Prims}. *)

(** {1 Statements}

    Locations are dummies until {!program} assigns them. *)

val let_ : string -> expr -> stmt
val assign : string -> expr -> stmt
val op : ?bind:string -> op_kind -> target:string -> expr list -> stmt
val call : ?bind:string -> string -> expr list -> stmt
val if_ : expr -> block -> block -> stmt
val while_ : expr -> block -> stmt
val while_true : block -> stmt
val foreach : string -> expr -> block -> stmt
val sync : string -> block -> stmt
(** [sync lock body]: Java-style [synchronized (lock) { body }]. *)

val try_ : block -> exn:string -> handler:block -> stmt
(** Catches environment errors (I/O, network, memory, closed channels),
    binding the message to [exn]. *)

val return : expr -> stmt
val return_unit : stmt
val assert_ : expr -> string -> stmt
val compute : ?note:string -> int64 -> stmt
(** Pure CPU work of the given duration. *)

val compute_us : ?note:string -> int -> stmt

(** {1 Effect shortcuts} *)

val disk_write : disk:string -> path:expr -> data:expr -> stmt
val disk_append : disk:string -> path:expr -> data:expr -> stmt
val disk_read : ?bind:string -> disk:string -> path:expr -> unit -> stmt
val disk_sync : disk:string -> stmt
val disk_delete : disk:string -> path:expr -> stmt
val disk_exists : ?bind:string -> disk:string -> path:expr -> unit -> stmt
val disk_list : ?bind:string -> disk:string -> prefix:expr -> unit -> stmt

val net_send : net:string -> dst:expr -> payload:expr -> stmt

val net_recv : ?bind:string -> net:string -> timeout_ms:int -> unit -> stmt
(** Binds a map [{ok; src; payload; corrupted}] ([{ok=false}] on timeout). *)

val queue_put : queue:string -> data:expr -> stmt
val queue_get : ?bind:string -> queue:string -> timeout_ms:int -> unit -> stmt
(** Binds a map [{ok; payload}] ([{ok=false}] on timeout). *)

val mem_alloc : pool:string -> size:expr -> stmt
val mem_free : pool:string -> size:expr -> stmt

val state_get : bind:string -> global:string -> stmt
val state_set : global:string -> value:expr -> stmt

val sleep_ms : int -> stmt
val log : expr -> stmt

(** {1 Functions, entries, programs} *)

val func : ?annots:annot list -> string -> params:string list -> block -> func
val entry : ?args:value list -> string -> string -> entry
(** [entry name func]: spawn [func] as the daemon task [name] at boot. *)

val program : string -> funcs:func list -> entries:entry list -> program
(** Assemble and finalise: every statement receives a unique location. *)
