(** Shared campaign-wide CLI flags ([--jobs], [--seed], [--engine]) for
    both front ends: cmdliner terms for [bin/repro], a plain argv scan for
    [bench] (bechamel owns its argv). One module so the flags' names,
    parsing and application cannot drift apart. *)

(** {2 cmdliner terms} *)

val jobs_arg : int option Cmdliner.Term.t
(** [--jobs]/[-j]: domain-pool width. Tables are byte-identical at any
    width; the flag only changes wall-clock. *)

val seed_arg : int option Cmdliner.Term.t
(** [--seed]/[-s]: base seed for seed-fanned experiments (default 42). *)

val engine_arg : Wd_ir.Interp.engine option Cmdliner.Term.t
(** [--engine]: [compiled] (default) or [treewalk]; results are
    byte-identical on either engine. *)

val apply_jobs : int option -> unit
val apply_seed : int option -> unit
val apply_engine : Wd_ir.Interp.engine option -> unit
(** Apply a parsed flag (no-op on [None]) to the process-wide experiment
    knobs in {!Experiments}. *)

(** {2 plain argv scan} *)

type opts = {
  o_jobs : int option;
  o_seed : int option;
  o_engine : Wd_ir.Interp.engine option;
}

val no_opts : opts

val scan : string list -> (opts, string) result
(** Pick the shared flags out of an argv tail, ignoring everything else
    (e.g. bench's [--json]); errors only on a malformed value. *)

val apply_opts : opts -> unit

(** {2 environment configuration}

    Typed view of the WD_* environment variables ([WD_JOBS],
    [WD_MINOR_HEAP], [WD_ENGINE]). {!Wd_config.Env} is the single parse
    site — no caller reads [Sys.getenv] directly — and this alias
    re-exposes it on the harness CLI surface with the engine lifted to
    {!Wd_ir.Interp.engine}. *)

type config = {
  c_jobs : int option;  (** [WD_JOBS]: domain-pool width *)
  c_minor_heap_words : int option;
      (** [WD_MINOR_HEAP]: per-domain minor heap size, words *)
  c_engine : Wd_ir.Interp.engine option;  (** [WD_ENGINE] *)
}

val config : unit -> (config, string) result
(** Parse the environment. [Error msg] names the offending variable and
    value; unset variables are [None], not errors. *)
