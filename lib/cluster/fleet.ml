(* The fleet plane: one aggregator correlating every node's local watchdog
   report stream with the membership service's probe/gossip evidence, and
   turning N streams of local findings into one fleet-level verdict.

   It stays off the nodes' hot paths: reports arrive through the drivers'
   [on_report] subscription (an O(1) append on the reporting path — reports
   are rare by construction) and membership state is read, never written,
   once per correlation tick.

   Rule set, evaluated in priority order each tick:

   1. Global overload — signal checkers alarm on a majority of nodes while
      every mimic checker is quiet. Queue pressure without any failed or
      slow mimicked operation means legitimate load, not a fault: record
      [Overload], indict nobody (the paper's §4.2 false-alarm case).
      Evaluated first because overload also makes probes time out.

   2. Node-local gray failure — some node's mimic checkers alarm AND at
      least [quorum] distinct peers independently accuse it (their deep
      probes of it fail, or they suspect it for gossip silence). Indict the
      node and name the component from its mimic report's localisation.

   3. Fabric-level failure — no mimic alarms anywhere, yet probes fail on
      specific (a,b) pairs while every involved node still has a healthy
      link to some other peer. A node that answers one peer's deep probe
      but not another's is not sick — the link is. Indict the link pairs,
      never a node.

   A candidate verdict must survive [confirm] consecutive ticks before it
   is recorded (debounce), and each distinct verdict is recorded once. *)

module Report = Wd_watchdog.Report
module Checker = Wd_watchdog.Checker

type verdict =
  | Node_gray of { node : string; component : string option }
  | Link_fault of { links : (string * string) list }
  | Overload

type event = { ev_at : int64; ev_verdict : verdict }

type t = {
  sched : Wd_sim.Sched.t;
  nodes : Node.t list;
  agents : Membership.t list; (* index-aligned with nodes *)
  tick : int64;
  mimic_window : int64; (* mimic evidence is fresh within this *)
  signal_window : int64; (* signal evidence fades slower: the driver
                            dedups repeats for 30s, so persistent overload
                            re-reports at that cadence; the window must
                            outlast the gap or overload would "blink" and
                            let rules 2-3 misfire in between *)
  quorum : int;
  confirm : int;
  inboxes : (string, Report.t list ref) Hashtbl.t;
  mutable membership_events : Membership.event list; (* newest first *)
  mutable streaks : (string * int) list;
  recorded : (string, unit) Hashtbl.t;
  mutable events : event list; (* newest first *)
}

let create ?(tick = Wd_sim.Time.ms 500) ?(mimic_window = Wd_sim.Time.sec 10)
    ?(signal_window = Wd_sim.Time.sec 45) ?(quorum = 2) ?(confirm = 2) ~sched
    ~nodes ~agents () =
  let t =
    {
      sched;
      nodes;
      agents;
      tick;
      mimic_window;
      signal_window;
      quorum;
      confirm;
      inboxes = Hashtbl.create 8;
      membership_events = [];
      streaks = [];
      recorded = Hashtbl.create 8;
      events = [];
    }
  in
  List.iter
    (fun (n : Node.t) ->
      let inbox = ref [] in
      Hashtbl.replace t.inboxes n.Node.id inbox;
      Wd_watchdog.Driver.on_report n.Node.driver (fun r -> inbox := r :: !inbox))
    nodes;
  List.iter
    (fun a ->
      Membership.on_event a (fun e ->
          t.membership_events <- e :: t.membership_events))
    agents;
  t

let reports_of t node_id =
  match Hashtbl.find_opt t.inboxes node_id with Some r -> !r | None -> []

let fresh_reports t node_id ~now ~window ~kind =
  List.filter
    (fun (r : Report.t) ->
      Node.kind_of_checker_id r.Report.checker_id = kind
      && Int64.sub now r.Report.at <= window)
    (reports_of t node_id)

let agent_of t node_id =
  List.find (fun a -> Membership.me a = node_id) t.agents

(* peers currently accusing [node_id]: deep probe failing, or suspected for
   gossip silence *)
let accusers t node_id =
  List.filter
    (fun a ->
      Membership.me a <> node_id
      && (Membership.probe_failing a node_id
         || List.mem node_id (Membership.suspects a)))
    t.agents
  |> List.map Membership.me

let canonical_pair a b = if a <= b then (a, b) else (b, a)

(* one correlation tick: compute candidate verdicts *)
let candidates t ~now =
  let n = List.length t.nodes in
  let mimic_nodes =
    List.filter
      (fun (nd : Node.t) ->
        fresh_reports t nd.Node.id ~now ~window:t.mimic_window
          ~kind:Checker.Mimic
        <> [])
      t.nodes
  in
  let signal_count =
    List.length
      (List.filter
         (fun (nd : Node.t) ->
           fresh_reports t nd.Node.id ~now ~window:t.signal_window
             ~kind:Checker.Signal
           <> [])
         t.nodes)
  in
  (* rule 1: overload *)
  if 2 * signal_count > n && mimic_nodes = [] then [ ("overload", Overload) ]
  else
    (* rule 2: node-local gray failure *)
    let gray =
      List.filter_map
        (fun (nd : Node.t) ->
          let acc = accusers t nd.Node.id in
          if List.length acc >= t.quorum then
            let component =
              List.fold_left
                (fun best (r : Report.t) ->
                  match (best, r.Report.loc) with
                  | None, Some l -> Some l
                  | best, _ -> best)
                None
                (List.rev
                   (fresh_reports t nd.Node.id ~now ~window:t.mimic_window
                      ~kind:Checker.Mimic))
            in
            Some
              ( "node:" ^ nd.Node.id,
                Node_gray
                  {
                    node = nd.Node.id;
                    component = Option.map Wd_ir.Loc.func component;
                  } )
          else None)
        mimic_nodes
    in
    if gray <> [] then gray
    else if mimic_nodes <> [] then []
    else
      (* rule 3: fabric-level failure; only with every mimic quiet *)
      let ids = List.map (fun (nd : Node.t) -> nd.Node.id) t.nodes in
      let pairs =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                if a < b then
                  let ab = Membership.probe_failing (agent_of t a) b in
                  let ba = Membership.probe_failing (agent_of t b) a in
                  if ab || ba then Some (canonical_pair a b) else None
                else None)
              ids)
          ids
      in
      if pairs = [] then []
      else
        let involved =
          List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs)
        in
        let has_healthy_link x =
          List.exists
            (fun y ->
              y <> x
              && (not (Membership.probe_failing (agent_of t x) y))
              && not (Membership.probe_failing (agent_of t y) x))
            ids
        in
        if List.for_all has_healthy_link involved then
          let key =
            "links:"
            ^ String.concat ","
                (List.map (fun (a, b) -> a ^ "-" ^ b) pairs)
          in
          [ (key, Link_fault { links = pairs }) ]
        else []

let step t ~now =
  let cands = candidates t ~now in
  let streaks =
    List.map
      (fun (key, v) ->
        let prev =
          match List.assoc_opt key t.streaks with Some s -> s | None -> 0
        in
        (key, prev + 1, v))
      cands
  in
  t.streaks <- List.map (fun (k, s, _) -> (k, s)) streaks;
  List.iter
    (fun (key, streak, v) ->
      if streak >= t.confirm && not (Hashtbl.mem t.recorded key) then begin
        Hashtbl.replace t.recorded key ();
        t.events <- { ev_at = now; ev_verdict = v } :: t.events
      end)
    streaks

let start t =
  ignore
    (Wd_sim.Sched.spawn ~name:"fleet-plane" ~daemon:true t.sched (fun () ->
         while true do
           Wd_sim.Sched.sleep t.tick;
           step t ~now:(Wd_sim.Sched.now t.sched)
         done))

(* --- results ----------------------------------------------------------- *)

let events t = List.rev t.events (* chronological *)

let indicted_nodes t =
  List.filter_map
    (fun e ->
      match e.ev_verdict with Node_gray { node; _ } -> Some node | _ -> None)
    (events t)
  |> List.sort_uniq compare

let indicted_links t =
  List.concat_map
    (fun e ->
      match e.ev_verdict with Link_fault { links } -> links | _ -> [])
    (events t)
  |> List.sort_uniq compare

let overloaded t =
  List.exists (fun e -> e.ev_verdict = Overload) (events t)

let first_component t =
  List.find_map
    (fun e ->
      match e.ev_verdict with
      | Node_gray { component; _ } -> component
      | _ -> None)
    (events t)

let membership_event_count t = List.length t.membership_events

let pp_verdict ppf = function
  | Node_gray { node; component } ->
      Fmt.pf ppf "node-gray %s (component %s)" node
        (Option.value component ~default:"?")
  | Link_fault { links } ->
      Fmt.pf ppf "link-fault %s"
        (String.concat "," (List.map (fun (a, b) -> a ^ "-" ^ b) links))
  | Overload -> Fmt.pf ppf "overload (no indictment)"
