lib/detectors/heartbeat.mli: Wd_env Wd_ir Wd_sim
