lib/parallel/pool.mli:
