(** IR interpreter. One [t] is one *node*: a network identity plus an
    execution mode.

    {b Main} mode runs the target system: entries become daemon tasks, ops
    hit the environment directly, and [Hook] statements push deep-copied
    live state into the registered sink (one-way context synchronisation).

    {b Checker} mode implements the watchdog isolation rules: disk writes
    are redirected to a scratch namespace (keeping the original fault site —
    fate sharing), network sends deliver to shadow inboxes with the real
    site, lock acquisition becomes try-lock-with-timeout that releases
    immediately, allocations are returned, and global-state writes land in a
    private overlay.

    Two engines execute the same IR with bit-for-bit identical observable
    behaviour — same [stmts_executed] counts, charge quanta (virtual-time
    progression), probe records, hook firing order and [Violation] payloads:

    - [`Compiled] (the default): the one-time closure-compilation pass of
      {!Compile} — direct-threaded dispatch, slot-indexed pooled frames,
      call-site inline caches. Compiled forms are cached per-program digest
      in domain-local storage and shared across instances within a domain
      (they carry per-domain mutable state and never cross domains).
    - [`Treewalk]: the direct AST walker below, kept as the reference
      semantics ([WD_ENGINE=treewalk] forces it process-wide). *)

open Ast

exception Violation of { loc : Loc.t; vkind : string; msg : string }
(** Raised on assertion failures, type errors, and (in checker mode, with
    [vkind = "liveness"]) lock-acquisition timeouts. *)

exception Return_exn of value
(** Internal control flow; escapes only on a toplevel [Return]. *)

type mode = Main | Checker

type engine = [ `Compiled | `Treewalk ]

val engine_name : engine -> string
val engine_of_string : string -> engine option

val set_default_engine : engine -> unit
(** Process-wide default for interpreters created without [?engine] /
    [?compiled]. Initialised from [WD_ENGINE] ("compiled" / "treewalk");
    [`Compiled] otherwise. *)

val default_engine : unit -> engine

type compiled
(** A closure-compiled program (see {!Compile}), shareable across any number
    of interpreter instances — Main and Checker alike — within the domain
    that compiled it. Carries mutable frame pools and inline caches, so it
    must not cross domains; the domain-local {!precompile} cache already
    enforces this. *)

val precompile : program -> compiled
(** Fetch or build the compiled form of [prog]. Results are cached by
    program digest in domain-local storage: each campaign worker compiles a
    target at most once and every later lookup is lock-free. Persistent
    pool domains keep their caches warm across batches. *)

val compile_cache_stats : unit -> int * int
(** [(hits, misses)] of {!precompile} across all domains, since start or
    {!clear_compile_cache}. With W persistent workers a program can miss up
    to W times (once per domain) before every lookup hits. *)

val clear_compile_cache : unit -> unit

(** Per-interpreter probe record. Flat mutable fields so the per-op
    bracket allocates nothing: [Loc.dummy] stands for "no location yet"
    and virtual-ns quantities are native ints. Prefer the option-shaped
    accessors below; the raw fields are exposed for tests. *)
type probe_state = {
  mutable op_active : bool;  (** an operation is in flight *)
  mutable op_loc : Loc.t;
      (** its location (valid when [op_active]) — the pinpoint when a
          checker times out *)
  mutable op_desc : string;
  mutable op_started : int;  (** virtual ns *)
  mutable last_loc : Loc.t;  (** most recent op; [Loc.dummy] = none yet *)
  mutable slow_loc : Loc.t;
  mutable slow_ns : int;     (** -1 = no op observed yet *)
  mutable ops_executed : int;
  mutable op_ns : int;       (** cumulative operation time, virtual ns *)
  mutable lock_ns : int;     (** cumulative lock-wait time (excluded from
                                 slowness assessment) *)
}

val current_op : probe_state -> (Loc.t * string * int64) option
(** Operation in flight: location, description, start time. *)

val last_op : probe_state -> Loc.t option
val slowest_op : probe_state -> (Loc.t * int64) option
val probe_op_ns : probe_state -> int64
val probe_lock_ns : probe_state -> int64

type hook_spec = { hook_checker : string; hook_vars : string list }

type t

val create :
  ?engine:engine ->
  ?compiled:compiled ->
  ?mode:mode ->
  ?scratch_prefix:string ->
  ?lock_timeout:int64 ->
  ?stmt_cost:int64 ->
  ?cpu_quantum:int64 ->
  node:string ->
  res:Runtime.resources ->
  program ->
  t

val program : t -> program
val engine : t -> engine
val node : t -> string
val probe : t -> probe_state
val resources : t -> Runtime.resources
val stmts_executed : t -> int

val frame_pool_stats : t -> string -> (int * int) option
(** [(pooled_frames, pool_hits)] of a function in this interpreter's
    compiled form (see {!Compile.frame_pool_stats}); [None] on the
    tree-walker or for an unknown function. For tests and bench
    introspection. *)

val ic_refills : unit -> int
(** Process-wide inline-cache (re)fill counter (see
    {!Compile.ic_refill_count}): every call site's first execution plus one
    refill per site per {!clear_compile_cache} epoch bump. *)

val set_hook_sink : t -> (int -> (string * value) list -> unit) -> unit
(** Receives (hook id, captured deep-copied values) from Main-mode hooks. *)

val register_hook : t -> id:int -> hook_spec -> unit
val hook_spec : t -> id:int -> hook_spec option

val call : t -> string -> value list -> value
(** Run a function synchronously in the current task. Must be called from
    inside a running simulation. *)

val start : ?entries:string list -> t -> Wd_sim.Sched.t -> Wd_sim.Sched.task list
(** Spawn the program's entries (optionally a subset, by entry name) as
    daemon tasks, in program-entry order. *)
