lib/analysis/vulnerable.ml: Fmt Hashtbl List Option Wd_ir
