(** Deterministic discrete-event scheduler with cooperative tasks.

    Tasks are fibers implemented with OCaml 5 effect handlers. Time is
    virtual ({!Time.t} nanoseconds); it only advances when every runnable
    task has yielded, so hangs, slow operations and detection latencies are
    exact, reproducible quantities. *)

exception Cancelled
(** Raised inside a fiber that was {!kill}ed. *)

type exit_status = Exited | Failed of exn | Killed
type state = Ready | Running | Blocked | Finished
type task
type run_result = Quiescent | Time_limit | Deadlock of task list

type t

val create : ?seed:int -> unit -> t
val now : t -> int64
val rng : t -> Rng.t

val get : unit -> t
(** The scheduler currently running; raises outside {!run}. *)

val spawn : ?name:string -> ?daemon:bool -> t -> (unit -> unit) -> task
(** Queue a new task. Daemon tasks do not keep the simulation alive and do
    not count toward deadlock detection. *)

val self : t -> task
val task_name : task -> string
val task_id : task -> int
val task_state : task -> state
val task_status : task -> exit_status option
val task_blocked_on : task -> string
val task_blocked_since : task -> int64
val all_tasks : t -> task list

val suspend : reason:string -> register:((unit -> unit) -> unit) -> unit
(** Core blocking primitive. [register waker] must arrange for [waker] to be
    called when the task should resume; extra or late calls are ignored. *)

val sleep : int64 -> unit
(** Block the current task for a virtual duration. *)

val yield : unit -> unit

val at : t -> int64 -> (unit -> unit) -> unit
(** Run a closure at an absolute virtual time (clamped to now). *)

val after : t -> int64 -> (unit -> unit) -> unit

val kill : t -> task -> unit
(** Cancel a task: {!Cancelled} is raised at its suspension point. *)

val on_exit : task -> (exit_status -> unit) -> unit
(** Run a hook when the task finishes (immediately if it already has). *)

val join : task -> exit_status
(** Block until the task finishes. *)

val timeout_join :
  ?name:string ->
  t ->
  timeout:int64 ->
  (unit -> 'a) ->
  ('a, [ `Timeout | `Exn of exn | `Killed ]) result
(** Run [f] in a child task; kill it and return [Error `Timeout] if it does
    not finish within [timeout]. *)

type runner
(** A reusable deadline executor: one persistent daemon worker fiber serves
    a sequence of {!runner_run} calls, avoiding a task spawn per call. The
    virtual-time schedule (run-queue pushes, timer firings, timestamps) is
    identical to calling {!timeout_join} each time. *)

val runner : ?name:string -> t -> runner
(** Create a runner; the worker fiber is spawned lazily on first use and
    respawned after a timeout kill. [name] names the worker task and the
    caller's suspend reason, exactly as in {!timeout_join}. *)

val runner_run :
  runner ->
  timeout:int64 ->
  (unit -> 'a) ->
  ('a, [ `Timeout | `Exn of exn | `Killed ]) result
(** Run [f] on the runner's worker with a deadline. Must be called from a
    task; a runner serves one call at a time (callers are expected to be a
    single periodic task, e.g. a watchdog driver entry). *)

val runner_stop : runner -> unit
(** Kill the worker fiber if it is alive (e.g. on driver shutdown). The
    runner can be used again afterwards; the worker respawns lazily. *)

val run : ?until:int64 -> t -> run_result
(** Drive the simulation until quiescence, deadlock among non-daemon tasks,
    or the time limit. Can be called repeatedly with growing [until]. *)

val stats : t -> int * int * int
(** [(tasks spawned, context switches, events fired)]. *)

(** {2 Load-pressure probes}

    Deterministic reads of scheduler state, for adaptive checker
    scheduling: the runq contents and timer heap at any point of a run are
    a function of the seed alone, so sampling them from a task cannot
    break cross-run or cross-width reproducibility. *)

val runq_depth : t -> int
(** Tasks queued runnable right now (excluding the running one). *)

val timer_slack : t -> int64
(** Virtual time until the earliest armed timer fires; [0] when one is
    already due, [Int64.max_int] when none are armed. *)

val timer_count : t -> int
(** Armed timers. *)

val set_trace : t -> Trace.t -> unit
(** Start recording scheduler events (spawn/block/resume/finish) into the
    given ring buffer. *)

val trace : t -> Trace.t option

val trace_emit : t -> Trace.kind -> unit
(** Record an event attributed to the currently running task; no-op when
    tracing is off. The interpreter uses this to append operation-level
    events ({!Trace.Op_start} etc.) into the same timeline. *)

(** Interned op-event emitters: same timeline entries as {!trace_emit} with
    an [Op_*] kind, but taking pre-resolved {!Site.id}s so a traced hot
    path allocates nothing. No-ops when tracing is off. *)

val trace_op_start : t -> op:Site.id -> node:Site.id -> func:Site.id -> unit

val trace_op_end :
  t -> op:Site.id -> node:Site.id -> func:Site.id -> dur:int64 -> unit

val trace_op_fail :
  t -> op:Site.id -> node:Site.id -> func:Site.id -> err:string -> unit

val pp_task : Format.formatter -> task -> unit
