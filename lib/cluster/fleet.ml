(* The fleet correlation engine: turns N streams of local findings into one
   fleet-level verdict — decentralized edition.

   Every node carries one of these engines, but only the elected leader's
   runs ([Election] drives [step] leader-only). Nothing here reaches across
   node boundaries: evidence arrives as *messages* —

   - [ingest_wire]: a wire-encoded watchdog report shipped over the fabric
     ([Fabric.Report_ship]), decoded and filed into the origin node's inbox.
     Duplicates (re-sends after a leader change) dedupe on the wire bytes.
   - [note_gossip_evidence]: the accusation lists and report digests each
     node piggybacks on its heartbeat gossip. Accusations are kept per
     accuser and fade if the accuser's gossip stops; digests corroborate
     shipped reports (and stand in for them if a ship was lost).

   Because gossip reaches every node, every engine's accusation matrices and
   digest sets stay warm even while it is a follower — a freshly elected
   leader only needs the full reports re-shipped to resume correlating.

   Rule set, evaluated in priority order each tick (unchanged from the
   centralized plane):

   1. Global overload — signal evidence on a majority of nodes while every
      mimic checker is quiet. Queue pressure without any failed or slow
      mimicked operation means legitimate load, not a fault: record
      [Overload], indict nobody (the paper's §4.2 false-alarm case).

   2. Node-local gray failure — some node's mimic checkers alarm AND at
      least [quorum] distinct peers independently accuse it (deep probes
      failing, or suspected for gossip silence). Indict the node, name the
      component from its mimic report's localisation, and keep that
      report's wire bytes as the verdict's evidence — the leader sends them
      back in its [Recover] command, and they seed cross-node reproduction.

   3. Fabric-level failure — no mimic alarms anywhere, yet probes fail on
      specific (a,b) pairs while every involved node still has a healthy
      link to some other peer. Indict the link pairs, never a node.
      Probe accusations only: gossip-silence suspicion names no direction.

   A candidate verdict must survive [confirm] consecutive ticks before it
   is recorded (debounce), and each distinct verdict is recorded once. *)

module Report = Wd_watchdog.Report
module Checker = Wd_watchdog.Checker

type verdict =
  | Node_gray of { node : string; component : string option }
  | Link_fault of { links : (string * string) list }
  | Overload

type event = {
  ev_at : int64;
  ev_verdict : verdict;
  ev_evidence : string option;
      (* wire bytes of the report that localised a Node_gray verdict *)
}

(* the per-origin-node report inbox; [seen] dedupes re-shipped wires *)
type inbox = {
  mutable reps : (Report.t * string) list; (* newest first; report + wire *)
  seen : (string, unit) Hashtbl.t;
}

(* one accuser's latest piggybacked view; replaced on each of its gossips *)
type accusation = {
  acc_at : int64;
  acc_probe : string list; (* peers whose deep probes the accuser sees failing *)
  acc_suspect : string list; (* peers the accuser suspects for gossip silence *)
}

type t = {
  sched : Wd_sim.Sched.t;
  me : string;
  node_ids : string list;
  tick : int64;
  mimic_window : int64; (* mimic evidence is fresh within this *)
  signal_window : int64; (* signal evidence fades slower: the driver
                            dedups repeats for 30s, so persistent overload
                            re-reports at that cadence; the window must
                            outlast the gap or overload would "blink" and
                            let rules 2-3 misfire in between *)
  accuse_window : int64; (* an accuser's gossip view is live within this;
                            a dead accuser's stale accusations fade *)
  quorum : int;
  confirm : int;
  inboxes : (string, inbox) Hashtbl.t;
  digests : (string, (Fabric.digest, unit) Hashtbl.t) Hashtbl.t;
  accusations : (string, accusation) Hashtbl.t; (* keyed by accuser *)
  streaks : (string, int) Hashtbl.t; (* verdict key -> consecutive ticks *)
  recorded : (string, unit) Hashtbl.t;
  mutable events : event list; (* newest first *)
  mutable ingested : int; (* wires decoded and filed *)
  mutable rejected : int; (* wires that failed to decode *)
}

let create ?(tick = Wd_sim.Time.ms 500) ?(mimic_window = Wd_sim.Time.sec 10)
    ?(signal_window = Wd_sim.Time.sec 45) ?(accuse_window = Wd_sim.Time.sec 2)
    ?(quorum = 2) ?(confirm = 2) ~sched ~me ~node_ids () =
  let t =
    {
      sched;
      me;
      node_ids;
      tick;
      mimic_window;
      signal_window;
      accuse_window;
      quorum;
      confirm;
      inboxes = Hashtbl.create 8;
      digests = Hashtbl.create 8;
      accusations = Hashtbl.create 8;
      streaks = Hashtbl.create 8;
      recorded = Hashtbl.create 8;
      events = [];
      ingested = 0;
      rejected = 0;
    }
  in
  List.iter
    (fun id ->
      Hashtbl.replace t.inboxes id { reps = []; seen = Hashtbl.create 32 };
      Hashtbl.replace t.digests id (Hashtbl.create 32))
    node_ids;
  t

let tick_period t = t.tick

(* --- evidence intake ---------------------------------------------------- *)

let ingest_wire t ~from_ ~wire =
  match Hashtbl.find_opt t.inboxes from_ with
  | None -> ()
  | Some ib ->
      if not (Hashtbl.mem ib.seen wire) then begin
        match Report.of_wire wire with
        | Ok r ->
            Hashtbl.replace ib.seen wire ();
            ib.reps <- (r, wire) :: ib.reps;
            t.ingested <- t.ingested + 1
        | Error _ -> t.rejected <- t.rejected + 1
      end

let note_gossip_evidence t ~from_ ~accuse_probe ~accuse_suspect ~digests =
  Hashtbl.replace t.accusations from_
    {
      acc_at = Wd_sim.Sched.now t.sched;
      acc_probe = accuse_probe;
      acc_suspect = accuse_suspect;
    };
  match Hashtbl.find_opt t.digests from_ with
  | None -> ()
  | Some set -> List.iter (fun d -> Hashtbl.replace set d ()) digests

let ingested t = t.ingested
let rejected t = t.rejected

(* --- evidence views ----------------------------------------------------- *)

let fresh_reports t node_id ~now ~window ~kind =
  match Hashtbl.find_opt t.inboxes node_id with
  | None -> []
  | Some ib ->
      List.filter
        (fun ((r : Report.t), _) ->
          Node.kind_of_checker_id r.Report.checker_id = kind
          && Int64.sub now r.Report.at <= window)
        ib.reps

let has_fresh_digest t node_id ~now ~window ~kind =
  match Hashtbl.find_opt t.digests node_id with
  | None -> false
  | Some set ->
      Hashtbl.fold
        (fun (d : Fabric.digest) () acc ->
          acc
          || (Node.kind_of_checker_id d.Fabric.d_checker = kind
             && Int64.sub now d.Fabric.d_at <= window))
        set false

(* a node shows evidence of [kind] if a fresh full report reached us, or a
   fresh digest was corroborated over gossip *)
let has_evidence t node_id ~now ~window ~kind =
  fresh_reports t node_id ~now ~window ~kind <> []
  || has_fresh_digest t node_id ~now ~window ~kind

let live_accusation t accuser ~now =
  match Hashtbl.find_opt t.accusations accuser with
  | Some a when Int64.sub now a.acc_at <= t.accuse_window -> Some a
  | Some _ | None -> None

(* peers currently accusing [node_id]: deep probe failing, or suspected for
   gossip silence *)
let accusers t node_id ~now =
  List.filter
    (fun accuser ->
      accuser <> node_id
      &&
      match live_accusation t accuser ~now with
      | None -> false
      | Some a ->
          List.mem node_id a.acc_probe || List.mem node_id a.acc_suspect)
    t.node_ids

(* is [node_id] accused by a quorum of peers right now?  The election agent
   consults this about *itself*: a leader the fleet is about to indict must
   demote instead of stepping its own engine — a verdict computed by the
   gray node it condemns is not trustworthy, and the successor will reach
   the same one from the same gossip. *)
let quorum_accused t node_id ~now =
  List.length (accusers t node_id ~now) >= t.quorum

(* directed probe-failure view: does [a] (freshly) accuse [b]'s deep probes?
   Rule 3 uses this alone — suspicion names no direction. *)
let probe_accuses t a b ~now =
  match live_accusation t a ~now with
  | None -> false
  | Some acc -> List.mem b acc.acc_probe

let canonical_pair a b = if a <= b then (a, b) else (b, a)

let verdict_key = function
  | Overload -> "overload"
  | Node_gray { node; _ } -> "node:" ^ node
  | Link_fault { links } ->
      "links:" ^ String.concat "," (List.map (fun (a, b) -> a ^ "-" ^ b) links)

(* one correlation tick: compute candidate verdicts (with their evidence) *)
let candidates t ~now =
  let n = List.length t.node_ids in
  let mimic_nodes =
    List.filter
      (fun id -> has_evidence t id ~now ~window:t.mimic_window ~kind:Checker.Mimic)
      t.node_ids
  in
  let signal_count =
    List.length
      (List.filter
         (fun id ->
           has_evidence t id ~now ~window:t.signal_window ~kind:Checker.Signal)
         t.node_ids)
  in
  (* rule 1: overload *)
  if 2 * signal_count > n && mimic_nodes = [] then [ (Overload, None) ]
  else
    (* rule 2: node-local gray failure *)
    let gray =
      List.filter_map
        (fun id ->
          if List.length (accusers t id ~now) >= t.quorum then
            (* oldest loc'd fresh mimic report names the component; its wire
               bytes ride along as the verdict's evidence *)
            let located =
              List.find_opt
                (fun ((r : Report.t), _) -> r.Report.loc <> None)
                (List.rev
                   (fresh_reports t id ~now ~window:t.mimic_window
                      ~kind:Checker.Mimic))
            in
            let component =
              match located with
              | Some (r, _) -> Option.map Wd_ir.Loc.func r.Report.loc
              | None -> None
            in
            Some
              ( Node_gray { node = id; component },
                Option.map snd located )
          else None)
        mimic_nodes
    in
    if gray <> [] then gray
    else if mimic_nodes <> [] then []
    else
      (* rule 3: fabric-level failure; only with every mimic quiet *)
      let ids = t.node_ids in
      let pairs =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                if a < b then
                  if probe_accuses t a b ~now || probe_accuses t b a ~now then
                    Some (canonical_pair a b)
                  else None
                else None)
              ids)
          ids
      in
      if pairs = [] then []
      else
        let involved =
          List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs)
        in
        let has_healthy_link x =
          List.exists
            (fun y ->
              y <> x
              && (not (probe_accuses t x y ~now))
              && not (probe_accuses t y x ~now))
            ids
        in
        if List.for_all has_healthy_link involved then
          [ (Link_fault { links = pairs }, None) ]
        else []

(* one debounced correlation step; returns the events recorded *this* tick
   so the caller (the leader's election agent) can act on fresh verdicts *)
let step t ~now =
  let cands = candidates t ~now in
  let keys = List.map (fun (v, _) -> verdict_key v) cands in
  (* a candidate absent this tick resets its streak (debounce semantics) *)
  let stale =
    Hashtbl.fold
      (fun k _ acc -> if List.mem k keys then acc else k :: acc)
      t.streaks []
  in
  List.iter (Hashtbl.remove t.streaks) stale;
  List.filter_map
    (fun (v, evidence) ->
      let key = verdict_key v in
      let streak =
        (match Hashtbl.find_opt t.streaks key with Some s -> s | None -> 0) + 1
      in
      Hashtbl.replace t.streaks key streak;
      if streak >= t.confirm && not (Hashtbl.mem t.recorded key) then begin
        Hashtbl.replace t.recorded key ();
        let ev = { ev_at = now; ev_verdict = v; ev_evidence = evidence } in
        t.events <- ev :: t.events;
        Some ev
      end
      else None)
    cands

(* --- results ----------------------------------------------------------- *)

let events t = List.rev t.events (* chronological *)

let indicted_nodes t =
  List.filter_map
    (fun e ->
      match e.ev_verdict with Node_gray { node; _ } -> Some node | _ -> None)
    (events t)
  |> List.sort_uniq compare

let indicted_links t =
  List.concat_map
    (fun e ->
      match e.ev_verdict with Link_fault { links } -> links | _ -> [])
    (events t)
  |> List.sort_uniq compare

let overloaded t =
  List.exists (fun e -> e.ev_verdict = Overload) (events t)

let first_component t =
  List.find_map
    (fun e ->
      match e.ev_verdict with
      | Node_gray { component; _ } -> component
      | _ -> None)
    (events t)

let first_evidence t =
  List.find_map
    (fun e ->
      match e.ev_verdict with Node_gray _ -> e.ev_evidence | _ -> None)
    (events t)

let pp_verdict ppf = function
  | Node_gray { node; component } ->
      Fmt.pf ppf "node-gray %s (component %s)" node
        (Option.value component ~default:"?")
  | Link_fault { links } ->
      Fmt.pf ppf "link-fault %s"
        (String.concat "," (List.map (fun (a, b) -> a ^ "-" ^ b) links))
  | Overload -> Fmt.pf ppf "overload (no indictment)"
