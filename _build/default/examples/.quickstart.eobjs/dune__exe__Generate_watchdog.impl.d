examples/generate_watchdog.ml: Wd_harness
