(** Deterministic binary min-heap keyed by [(time, insertion sequence)].

    Entries with equal times pop in insertion order, which keeps
    discrete-event runs reproducible. *)

type 'a t

val create : dummy_payload:'a -> 'a t
(** [create ~dummy_payload] makes an empty heap. The dummy payload fills
    unused array slots and is never returned. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int64 -> 'a -> int
(** [push h ~time p] inserts [p] and returns its tie-break sequence number. *)

val peek_time : 'a t -> int64 option
(** Earliest key in the heap, if any. *)

val pop : 'a t -> (int64 * 'a) option
(** Remove and return the earliest entry. *)

val drain : 'a t -> (int64 * 'a) list
(** Pop everything, in key order. *)
