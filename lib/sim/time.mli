(** Virtual time: an [int64] count of nanoseconds since simulation start.

    The type is deliberately transparent — durations and instants are plain
    [int64]s so arithmetic, comparisons and pattern matches need no
    wrappers; this module only provides the constructors and formatting. *)

type t = int64

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_float_sec : float -> t
val to_float_sec : t -> float
val to_float_ms : t -> float

val add : t -> t -> t
val sub : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val zero : t

val never : t
(** [Int64.max_int]: an instant later than any reachable virtual time. *)

val pp : Format.formatter -> t -> unit
(** Human-scale rendering: seconds above 1s, milliseconds above 1ms, raw
    nanoseconds below. *)

val to_string : t -> string
