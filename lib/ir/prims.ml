(* Pure primitives callable from IR expressions via [Prim (name, args)].
   All of them are deterministic functions of their arguments; effectful
   behaviour is reserved for [Op] statements so that the vulnerability
   analysis sees every effect. *)

open Ast

exception Prim_error of string

let err fmt = Fmt.kstr (fun s -> raise (Prim_error s)) fmt

let as_int = function VInt i -> i | v -> err "expected int, got %a" pp_value v
let as_str = function VStr s -> s | v -> err "expected string, got %a" pp_value v
let as_bytes = function VBytes b -> b | v -> err "expected bytes, got %a" pp_value v
let as_list = function VList l -> l | v -> err "expected list, got %a" pp_value v
let as_map = function VMap m -> m | v -> err "expected map, got %a" pp_value v
let as_bool = function VBool b -> b | v -> err "expected bool, got %a" pp_value v

(* FNV-1a over the printed form: a stable, portable content hash. Hashes
   straight out of the domain's render buffer — no intermediate string. *)
let hash_value v =
  with_rendered v (fun buf ->
      let h = ref 0xcbf29ce484222325L in
      for i = 0 to Buffer.length buf - 1 do
        h := Int64.logxor !h (Int64.of_int (Char.code (Buffer.nth buf i)));
        h := Int64.mul !h 0x100000001b3L
      done;
      Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL))

let apply name args =
  match (name, args) with
  | "str_of_int", [ VInt i ] -> VStr (string_of_int i)
  | "int_of_str", [ VStr s ] -> (
      match int_of_string_opt s with
      | Some i -> VInt i
      | None -> err "int_of_str %S" s)
  | "bytes_of_str", [ VStr s ] -> VBytes (Bytes.of_string s)
  | "str_of_bytes", [ VBytes b ] -> VStr (Bytes.to_string b)
  | "bytes_make", [ VInt n; VStr fill ] ->
      let c = if String.length fill > 0 then fill.[0] else '\000' in
      if n < 0 then err "bytes_make %d" n else VBytes (Bytes.make n c)
  | "bytes_cat", [ VBytes a; VBytes b ] -> VBytes (Bytes.cat a b)
  | "checksum", [ VBytes b ] ->
      VInt (Int64.to_int (Int64.logand (Wd_env.Disk.checksum b) 0x3FFFFFFFFFFFFFFFL))
  | "hash", [ v ] -> VInt (hash_value v)
  | "concat", parts -> VStr (String.concat "" (List.map as_str parts))
  | "contains", [ VStr s; VStr sub ] ->
      let n = String.length sub in
      let found = ref false in
      if n = 0 then found := true
      else
        for i = 0 to String.length s - n do
          if String.sub s i n = sub then found := true
        done;
      VBool !found
  | "map_empty", [] -> VMap []
  | "map_put", [ VMap m; VStr k; v ] ->
      VMap ((k, v) :: List.remove_assoc k m)
  | "map_get", [ VMap m; VStr k ] -> (
      match List.assoc_opt k m with Some v -> v | None -> err "map_get %S" k)
  | "map_get_opt", [ VMap m; VStr k; default ] -> (
      match List.assoc_opt k m with Some v -> v | None -> default)
  | "map_mem", [ VMap m; VStr k ] -> VBool (List.mem_assoc k m)
  | "map_del", [ VMap m; VStr k ] -> VMap (List.remove_assoc k m)
  | "map_len", [ VMap m ] -> VInt (List.length m)
  | "map_keys", [ VMap m ] ->
      VList (List.map (fun (k, _) -> VStr k) (List.sort compare m))
  | "list_rev", [ VList l ] -> VList (List.rev l)
  | "list_append", [ VList a; VList b ] -> VList (a @ b)
  | "list_cons", [ v; VList l ] -> VList (v :: l)
  | "list_head", [ VList (v :: _) ] -> v
  | "list_head", [ VList [] ] -> err "list_head []"
  | "list_tail", [ VList (_ :: l) ] -> VList l
  | "list_tail", [ VList [] ] -> err "list_tail []"
  | "list_nth", [ VList l; VInt i ] -> (
      match List.nth_opt l i with Some v -> v | None -> err "list_nth %d" i)
  | "list_mem", [ v; VList l ] -> VBool (List.exists (value_equal v) l)
  | "range", [ VInt n ] -> VList (List.init (max 0 n) (fun i -> VInt i))
  | "min", [ VInt a; VInt b ] -> VInt (min a b)
  | "max", [ VInt a; VInt b ] -> VInt (max a b)
  | "is_sorted", [ VList l ] ->
      let rec check = function
        | VStr a :: (VStr b :: _ as rest) ->
            if String.compare a b <= 0 then check rest else false
        | VInt a :: (VInt b :: _ as rest) -> if a <= b then check rest else false
        | [ _ ] | [] -> true
        | _ -> err "is_sorted: heterogeneous list"
      in
      VBool (check l)
  | "not", [ VBool b ] -> VBool (not b)
  | "serialize", [ v ] -> VStr (value_to_string v)
  | "str_drop", [ VStr s; VInt n ] ->
      if n < 0 then err "str_drop %d" n
      else if n >= String.length s then VStr ""
      else VStr (String.sub s n (String.length s - n))
  | "str_take", [ VStr s; VInt n ] ->
      if n < 0 then err "str_take %d" n
      else VStr (String.sub s 0 (min n (String.length s)))
  | "dirname", [ VStr s ] -> (
      match String.rindex_opt s '/' with
      | Some i -> VStr (String.sub s 0 (i + 1))
      | None -> VStr "")
  | "pad_left", [ VStr s; VInt width; VStr fill ] ->
      let c = if String.length fill > 0 then fill.[0] else '0' in
      if String.length s >= width then VStr s
      else VStr (String.make (width - String.length s) c ^ s)
  | "ends_with", [ VBytes b; VBytes suffix ] ->
      let nb = Bytes.length b and ns = Bytes.length suffix in
      VBool (nb >= ns && Bytes.sub b (nb - ns) ns = suffix)
  | _ ->
      err "unknown primitive %s/%d" name (List.length args)

(* Names the validator accepts; kept in sync with [apply]. *)
let known =
  [
    "str_of_int"; "int_of_str"; "bytes_of_str"; "str_of_bytes"; "bytes_make";
    "bytes_cat"; "checksum"; "hash"; "concat"; "contains"; "map_empty";
    "map_put"; "map_get"; "map_get_opt"; "map_mem"; "map_del"; "map_len";
    "map_keys"; "list_rev"; "list_append"; "list_cons"; "list_head";
    "list_tail"; "list_nth"; "list_mem"; "range"; "min"; "max"; "is_sorted";
    "not"; "serialize"; "str_drop"; "str_take"; "dirname"; "ends_with"; "pad_left";
  ]

let is_known name = List.mem name known

let _ = as_bool
let _ = as_map
let _ = as_list
let _ = as_bytes
let _ = as_int
