lib/sim/cond.mli:
