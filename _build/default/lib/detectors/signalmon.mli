(** Signal checkers (Table 2, row 2): monitor health indicators like the
    Linux watchdog daemon — queue depth, memory utilisation, scheduling
    delay. Modest completeness, weak accuracy, resource-level localisation
    only. *)

val make :
  ?period:int64 ->
  ?timeout:int64 ->
  id:string ->
  (unit -> [ `Ok | `Fail of string ]) ->
  Wd_watchdog.Checker.t

val queue_depth :
  id:string ->
  res:Wd_ir.Runtime.resources ->
  queue:string ->
  max_depth:int ->
  Wd_watchdog.Checker.t

val mem_utilisation :
  id:string -> mem:Wd_env.Memory.t -> max_util:float -> Wd_watchdog.Checker.t

val sleep_overshoot :
  id:string ->
  mem:Wd_env.Memory.t ->
  expected:int64 ->
  tolerance:int64 ->
  Wd_watchdog.Checker.t
(** §3.3's example: sleep briefly through the shared allocator and measure
    the overshoot — long pauses expose GC-pressure-style stalls. *)
