(* Runtime trace consumer (stage 3a): the live counterpart of the miner.
   One monitor per booted world owns the scheduler's trace cursor and folds
   new op events into per-key state that the compiled inferred checkers
   query: in-flight operations (for envelope hangs), worst completed
   duration (for fail-slow, latched via max), last-start times (for gap
   liveness), failure signatures, first occurrences (for ordering) and
   same-target overlaps (for exclusion).

   Draining is cheap and idempotent between events; every checker calls
   [drain] before evaluating, so whichever runs first in a tick pays the
   fold. If events were overwritten between drains (ring overflow), the
   in-flight table is cleared rather than risk a stale entry surfacing as a
   phantom hang: monotone counters survive, liveness re-arms. *)

module Trace = Wd_sim.Trace

type key_state = {
  mutable st_started : int;
  mutable st_completed : int;
  mutable st_failed : int;
  mutable st_first_err : string;
  mutable st_last_start : int64;
  mutable st_worst : int64; (* max completed duration *)
  mutable st_worst_at : int64;
  mutable st_first_seen : int64;
  mutable st_inflight : (int * int64 * string) list;
      (* (task_id, started, func); short: concurrent ops per key are few *)
}

type t = {
  sched : Wd_sim.Sched.t;
  trace : Trace.t;
  mutable cursor : int;
  mutable dropped : int;
  keys : (string, key_state) Hashtbl.t;
  overlaps : (string * string, int64) Hashtbl.t; (* first overlap instant *)
}

let create ?(capacity = 1 lsl 16) sched =
  let trace = Trace.create ~capacity () in
  Wd_sim.Sched.set_trace sched trace;
  {
    sched;
    trace;
    cursor = 0;
    dropped = 0;
    keys = Hashtbl.create 64;
    overlaps = Hashtbl.create 16;
  }

let state t key =
  match Hashtbl.find_opt t.keys key with
  | Some st -> st
  | None ->
      let st =
        {
          st_started = 0;
          st_completed = 0;
          st_failed = 0;
          st_first_err = "";
          st_last_start = -1L;
          st_worst = 0L;
          st_worst_at = 0L;
          st_first_seen = -1L;
          st_inflight = [];
        }
      in
      Hashtbl.add t.keys key st;
      st

let drain t =
  let events, dropped, cursor = Trace.since t.trace t.cursor in
  t.cursor <- cursor;
  if dropped > 0 then begin
    t.dropped <- t.dropped + dropped;
    (* stale in-flight entries would read as phantom hangs; reset them *)
    Hashtbl.iter (fun _ st -> st.st_inflight <- []) t.keys
  end;
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Op_start { op; func; _ } ->
          let st = state t op in
          st.st_started <- st.st_started + 1;
          st.st_last_start <- e.Trace.at;
          if st.st_first_seen < 0L then st.st_first_seen <- e.Trace.at;
          (* same-target overlap with any other in-flight key *)
          let tgt = Mine.target_of_key op in
          Hashtbl.iter
            (fun other st' ->
              if
                (not (String.equal other op))
                && String.equal (Mine.target_of_key other) tgt
                && List.exists (fun (task, _, _) -> task <> e.Trace.task_id)
                     st'.st_inflight
              then
                let pair = if other < op then (other, op) else (op, other) in
                if not (Hashtbl.mem t.overlaps pair) then
                  Hashtbl.add t.overlaps pair e.Trace.at)
            t.keys;
          st.st_inflight <-
            (e.Trace.task_id, e.Trace.at, func) :: st.st_inflight
      | Trace.Op_end { op; dur; _ } ->
          let st = state t op in
          st.st_completed <- st.st_completed + 1;
          st.st_inflight <-
            List.filter (fun (task, _, _) -> task <> e.Trace.task_id)
              st.st_inflight;
          if dur > st.st_worst then begin
            st.st_worst <- dur;
            st.st_worst_at <- e.Trace.at
          end
      | Trace.Op_fail { op; err; _ } ->
          let st = state t op in
          st.st_failed <- st.st_failed + 1;
          if st.st_first_err = "" then st.st_first_err <- err;
          st.st_inflight <-
            List.filter (fun (task, _, _) -> task <> e.Trace.task_id)
              st.st_inflight
      | _ -> ())
    events

(* --- queries (after a drain) ------------------------------------------- *)

let view t key = Hashtbl.find_opt t.keys key
let seen t key =
  match view t key with Some st -> st.st_started > 0 | None -> false

let oldest_inflight t key =
  match view t key with
  | None | Some { st_inflight = []; _ } -> None
  | Some st ->
      Some
        (List.fold_left
           (fun ((_, best, _) as acc) ((_, started, _) as e) ->
             if started < best then e else acc)
           (List.hd st.st_inflight) (List.tl st.st_inflight))

let overlapped_at t a b =
  let pair = if a < b then (a, b) else (b, a) in
  Hashtbl.find_opt t.overlaps pair

let dropped t = t.dropped
let keys_tracked t = Hashtbl.length t.keys
