(** Static call graph of an IR program. *)

type t = {
  prog : Wd_ir.Ast.program;
  calls : (string, (string * Wd_ir.Loc.t) list) Hashtbl.t;
}

val callees_of_block :
  Wd_ir.Ast.block ->
  (string * Wd_ir.Loc.t) list ->
  (string * Wd_ir.Loc.t) list
(** Call sites in a block (prepended to the accumulator, reverse order). *)

val build : Wd_ir.Ast.program -> t

val callees : t -> string -> (string * Wd_ir.Loc.t) list
(** Direct callees with call sites, in call-site order. *)

val reachable : t -> string -> string list
(** Functions reachable from [root], including [root], in stable preorder. *)

val depths : t -> string -> (string, int) Hashtbl.t
(** Shortest call-chain length from [root] to each reachable function. *)

val is_recursive : t -> string -> bool
