lib/detectors/signalmon.mli: Wd_env Wd_ir Wd_watchdog
