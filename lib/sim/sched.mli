(** Deterministic discrete-event scheduler with cooperative tasks.

    Tasks are fibers implemented with OCaml 5 effect handlers. Time is
    virtual ({!Time.t} nanoseconds); it only advances when every runnable
    task has yielded, so hangs, slow operations and detection latencies are
    exact, reproducible quantities. *)

exception Cancelled
(** Raised inside a fiber that was {!kill}ed. *)

type exit_status = Exited | Failed of exn | Killed
type state = Ready | Running | Blocked | Finished
type task
type run_result = Quiescent | Time_limit | Deadlock of task list

type t

val create : ?seed:int -> unit -> t
val now : t -> int64
val rng : t -> Rng.t

val get : unit -> t
(** The scheduler currently running; raises outside {!run}. *)

val spawn : ?name:string -> ?daemon:bool -> t -> (unit -> unit) -> task
(** Queue a new task. Daemon tasks do not keep the simulation alive and do
    not count toward deadlock detection. *)

val self : t -> task
val task_name : task -> string
val task_id : task -> int
val task_state : task -> state
val task_status : task -> exit_status option
val task_blocked_on : task -> string
val task_blocked_since : task -> int64
val all_tasks : t -> task list

val suspend : reason:string -> register:((unit -> unit) -> unit) -> unit
(** Core blocking primitive. [register waker] must arrange for [waker] to be
    called when the task should resume; extra or late calls are ignored. *)

val sleep : int64 -> unit
(** Block the current task for a virtual duration. *)

val yield : unit -> unit

val at : t -> int64 -> (unit -> unit) -> unit
(** Run a closure at an absolute virtual time (clamped to now). *)

val after : t -> int64 -> (unit -> unit) -> unit

val kill : t -> task -> unit
(** Cancel a task: {!Cancelled} is raised at its suspension point. *)

val on_exit : task -> (exit_status -> unit) -> unit
(** Run a hook when the task finishes (immediately if it already has). *)

val join : task -> exit_status
(** Block until the task finishes. *)

val timeout_join :
  ?name:string ->
  t ->
  timeout:int64 ->
  (unit -> 'a) ->
  ('a, [ `Timeout | `Exn of exn | `Killed ]) result
(** Run [f] in a child task; kill it and return [Error `Timeout] if it does
    not finish within [timeout]. *)

val run : ?until:int64 -> t -> run_result
(** Drive the simulation until quiescence, deadlock among non-daemon tasks,
    or the time limit. Can be called repeatedly with growing [until]. *)

val stats : t -> int * int * int
(** [(tasks spawned, context switches, events fired)]. *)

val set_trace : t -> Trace.t -> unit
(** Start recording scheduler events (spawn/block/resume/finish) into the
    given ring buffer. *)

val trace : t -> Trace.t option

val trace_emit : t -> Trace.kind -> unit
(** Record an event attributed to the currently running task; no-op when
    tracing is off. The interpreter uses this to append operation-level
    events ({!Trace.Op_start} etc.) into the same timeline. *)

val pp_task : Format.formatter -> task -> unit
