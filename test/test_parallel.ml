(* Tests for the domain pool (Wd_parallel.Pool) and the parallel campaign
   engine: order preservation, exception propagation, pool lifecycle, and
   the headline guarantee — a campaign batch is byte-identical at any
   [jobs] width. *)

module Pool = Wd_parallel.Pool
module Campaign = Wd_harness.Campaign
module Systems = Wd_harness.Systems
module Catalog = Wd_faults.Catalog
module Generate = Wd_autowatchdog.Generate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Pool.map --- *)

let test_map_order () =
  let input = List.init 200 Fun.id in
  let expected = List.map (fun i -> i * i) input in
  Alcotest.(check (list int))
    "order preserved" expected
    (Pool.run_map ~jobs:4 (fun i -> i * i) input);
  (* deliberately uneven work so completion order differs from input order *)
  let lumpy i =
    if i mod 7 = 0 then
      ignore (Sys.opaque_identity (List.init 5000 Fun.id));
    i
  in
  Alcotest.(check (list int))
    "order preserved under uneven work" input
    (Pool.run_map ~jobs:4 lumpy input);
  Alcotest.(check (list int)) "empty input" [] (Pool.run_map ~jobs:4 lumpy []);
  Alcotest.(check (list int))
    "jobs=1 degenerates to List.map" expected
    (Pool.run_map ~jobs:1 (fun i -> i * i) input)

exception Boom of int

let test_exception_propagation () =
  (* several elements raise; the lowest input index must win *)
  let f i = if i mod 13 = 4 then raise (Boom i) else i in
  (match Pool.run_map ~jobs:4 f (List.init 64 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "lowest failing index re-raised" 4 i);
  (* a failing batch must not poison the pool for later batches *)
  Pool.with_pool ~jobs:3 (fun p ->
      (match Pool.map p f (List.init 64 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      Alcotest.(check (list int))
        "pool usable after a failing batch"
        [ 0; 1; 2; 3 ]
        (Pool.map p Fun.id [ 0; 1; 2; 3 ]))

let test_map_reduce () =
  let sum =
    Pool.with_pool ~jobs:3 (fun p ->
        Pool.map_reduce p
          ~map:(fun i -> i * i)
          ~reduce:(fun acc v -> acc + v)
          ~init:0 (List.init 100 Fun.id))
  in
  check_int "sum of squares" 328350 sum;
  (* reduction order is input order: string concat is order-sensitive *)
  let cat =
    Pool.run_map ~jobs:4 string_of_int (List.init 10 Fun.id)
    |> String.concat ""
  in
  Alcotest.(check string) "reduction in input order" "0123456789" cat

let test_lifecycle () =
  let p = Pool.create ~jobs:2 in
  check_int "width" 2 (Pool.jobs p);
  Alcotest.(check (list int)) "batch 1" [ 1; 2; 3 ] (Pool.map p succ [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "batch 2 reuses pool" [ 0; 1 ] (Pool.map p Fun.id [ 0; 1 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  (match Pool.map p Fun.id [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ());
  check_int "jobs clamped to >= 1" 1 (Pool.jobs (Pool.create ~jobs:0))

(* [Pool.global] clamps its width to the host's core count; tests must not
   assume a particular host. *)
let effective n = max 1 (min n (Domain.recommended_domain_count ()))

let test_large_batch_exception () =
  (* one failing cell buried deep in a large batch: the batch must finish
     settling (no hang on the remaining counter) and re-raise precisely
     that cell's exception *)
  Pool.with_pool ~jobs:4 (fun p ->
      (match
         Pool.map p
           (fun i -> if i = 1717 then raise (Boom i) else i * 2)
           (List.init 5000 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int "the one failing cell" 1717 i);
      (* and when several cells fail, the lowest index wins even at size *)
      match
        Pool.map p
          (fun i -> if i mod 997 = 0 && i > 0 then raise (Boom i) else i)
          (List.init 5000 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int "lowest failing index at size" 997 i)

let test_persistent_reuse () =
  (* many consecutive batches through the same persistent pool: no worker
     leaks, no stale cursor state carried across batches *)
  let p = Pool.global ~jobs:2 () in
  check_int "global pool width clamped to host" (effective 2) (Pool.jobs p);
  for round = 1 to 50 do
    let n = 1 + ((round * 37) mod 200) in
    let got = Pool.map p (fun i -> i + round) (List.init n Fun.id) in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d" round)
      (List.init n (fun i -> i + round))
      got
  done

let test_global_shutdown_revival () =
  let p = Pool.global ~jobs:2 () in
  Pool.shutdown p;
  (* a held reference to the shut-down pool refuses work... *)
  (match Pool.map p Fun.id [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected Invalid_argument on shut-down global pool"
  | exception Invalid_argument _ -> ());
  (* ...but the entry points revive the process-wide pool transparently *)
  Alcotest.(check (list int))
    "run_map revives the global pool" [ 2; 3; 4 ]
    (Pool.run_map ~jobs:2 succ [ 1; 2; 3 ]);
  let q = Pool.global ~jobs:2 () in
  check "revived pool is a fresh one" true (q != p);
  Alcotest.(check (list int)) "revived pool works" [ 0; 1 ] (Pool.map q Fun.id [ 0; 1 ])

(* --- parallel campaign determinism ---

   The acceptance bar of the parallel engine: running the whole scenario
   catalog through [Campaign.run_batch] at jobs=4 yields structurally
   identical [run] records to jobs=1, for a mix of modes and seeds. *)

let test_campaign_batch_deterministic () =
  let base = List.map (fun s -> Campaign.cell s.Catalog.sid) Catalog.all in
  let variants =
    [
      Campaign.cell
        ~cfg:{ Campaign.default_config with Campaign.seed = 7 }
        "zk-2201";
      Campaign.cell
        ~cfg:
          {
            Campaign.default_config with
            Campaign.mode = Systems.Wd_no_context;
          }
        "kvs-flush-hang";
      Campaign.cell
        ~cfg:{ Campaign.default_config with Campaign.mode = Systems.Wd_none }
        "cs-compaction-stuck";
    ]
  in
  let cells = base @ variants in
  (* cold cache on both sides; the jobs=4 run also exercises concurrent
     [analyze_cached] calls racing to fill the cache *)
  Generate.clear_cache ();
  let seq = Campaign.run_batch ~jobs:1 cells in
  Generate.clear_cache ();
  let par = Campaign.run_batch ~jobs:4 cells in
  check_int "same number of runs" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Campaign.run) (b : Campaign.run) ->
      Alcotest.(check string) "same scenario order" a.Campaign.r_sid b.Campaign.r_sid;
      check (a.Campaign.r_sid ^ ": identical run record") true (a = b))
    seq par

let () =
  Alcotest.run "wd_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "large batch exception" `Quick
            test_large_batch_exception;
          Alcotest.test_case "persistent pool reuse" `Quick
            test_persistent_reuse;
          Alcotest.test_case "global shutdown + revival" `Quick
            test_global_shutdown_revival;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 identical over catalog" `Slow
            test_campaign_batch_deterministic;
        ] );
    ]
