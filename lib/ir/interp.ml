(* IR interpreter. One [t] is one *node*: an identity on the network plus an
   execution mode.

   Main mode runs the target system: entries become daemon tasks, ops hit
   the environment directly, and [Hook] statements push live state into the
   watchdog's context table (one-way synchronisation, §3.1).

   Checker mode is how generated mimic checkers execute (§3.2 isolation):
   - disk writes are redirected to a scratch namespace but keep the original
     path for fault-site matching, so they share the main program's fate;
   - network sends keep their site but deliver to a shadow inbox;
   - lock acquisition becomes try-lock with a timeout, raising a liveness
     violation instead of deadlocking against the main program;
   - allocations are released immediately (no leak amplification);
   - global-state writes land in a private overlay, reads are deep-copied;
   - [Hook] statements are no-ops.

   The interpreter also maintains a probe record of the op currently in
   flight — when the watchdog driver times a checker out, that record is the
   pinpointed location and payload of the failure.

   Two engines execute the same IR with bit-for-bit identical observable
   behaviour: the closure compiler ([Compile], the default) and the
   tree-walker below, kept as the reference semantics. Everything effectful
   — charging, ops, sync protocols, hooks — funnels through the same
   [*_v] functions, so the engines can only diverge in *pure* evaluation. *)

open Ast

exception Violation = Compile.Violation
exception Return_exn = Compile.Return_exn

type mode = Main | Checker
type engine = [ `Compiled | `Treewalk ]

(* Flat probe record: every field is an immediate or a pointer store, so
   bracketing an op mutates in place — no option/tuple/boxed-int64 blocks
   per operation. [Loc.dummy] is the "none" sentinel for location fields
   (real program locs always carry a non-negative uid); virtual-ns
   quantities are native ints (they fit 62 bits). The option-shaped views
   live in the [current_op]/[last_op]/[slowest_op] accessors. *)
type probe_state = {
  mutable op_active : bool;    (* an operation is in flight *)
  mutable op_loc : Loc.t;      (* its location (valid when [op_active]) *)
  mutable op_desc : string;
  mutable op_started : int;    (* virtual ns *)
  mutable last_loc : Loc.t;    (* most recent op; [Loc.dummy] = none yet *)
  mutable slow_loc : Loc.t;
  mutable slow_ns : int;       (* -1 = no op observed yet *)
  mutable ops_executed : int;
  (* cumulative time spent in operations vs. waiting for locks; slowness
     assessment uses op time only, since benign lock contention is not a
     fail-slow signal (lock wedges have their own liveness budget) *)
  mutable op_ns : int;
  mutable lock_ns : int;
}

let current_op p =
  if p.op_active then Some (p.op_loc, p.op_desc, Int64.of_int p.op_started)
  else None

let last_op p = if p.last_loc == Loc.dummy then None else Some p.last_loc

let slowest_op p =
  if p.slow_ns < 0 then None else Some (p.slow_loc, Int64.of_int p.slow_ns)

let probe_op_ns p = Int64.of_int p.op_ns
let probe_lock_ns p = Int64.of_int p.lock_ns

type hook_spec = { hook_checker : string; hook_vars : string list }

type t = {
  prog : program;
  (* Call fast path: function lookup and arity check are on the per-call
     hot path; a scan of [prog.funcs] plus two [List.length]s per call is
     measurable on checker-heavy campaigns. Resolved once at creation. *)
  funcs_by_name : (string, func * int) Hashtbl.t;
  res : Runtime.resources;
  node : string;
  mode : mode;
  mutable hook_sink : (int -> (string * value) list -> unit) option;
  hooks : (int, hook_spec) Hashtbl.t;
  probe : probe_state;
  shadow_globals : (string, value) Hashtbl.t;
  scratch_prefix : string;
  lock_timeout : int64;
  (* CPU accounting and depth budget live in the [Compile.ctx] record the
     compiled engine threads through every closure; the tree-walker updates
     the same record, which keeps [stmts_executed] and quantum-flush timing
     engine-identical. *)
  ctx : Compile.ctx;
  (* Op/lock descriptions are part of probe records; memoised per (kind,
     target) so the non-error path never re-formats them. *)
  op_descs : (op_kind * string, string) Hashtbl.t;
  lock_descs : (string, string) Hashtbl.t;
  (* Interned trace keys, memoised per (opname, target, operand-prefix):
     a traced op looks up a tuple key instead of concatenating a fresh
     "kind:target:prefix" string. *)
  trace_keys : (string * string * string, Wd_sim.Site.id) Hashtbl.t;
  node_site : Wd_sim.Site.id;
  mutable impl : impl;
}

and impl = Treewalk_impl | Compiled_impl of t Compile.t

(* --- engine selection --- *)

let engine_name = function `Compiled -> "compiled" | `Treewalk -> "treewalk"

let engine_of_string s = Wd_config.Env.engine_of_string s

(* The typed env loader owns the WD_ENGINE read; a malformed value fails
   fast here at module initialisation, as the ad-hoc parse always did. *)
let default_engine_cell : engine Atomic.t =
  Atomic.make
    (match (Wd_config.Env.get ()).Wd_config.Env.engine with
    | Some e -> (e :> engine)
    | None -> `Compiled)

let set_default_engine e = Atomic.set default_engine_cell e
let default_engine () = Atomic.get default_engine_cell

(* --- accessors --- *)

let program t = t.prog
let node t = t.node
let probe t = t.probe
let resources t = t.res
let stmts_executed t = t.ctx.Compile.cx_stmts

let engine t =
  match t.impl with Treewalk_impl -> `Treewalk | Compiled_impl _ -> `Compiled

let set_hook_sink t sink = t.hook_sink <- Some sink
let register_hook t ~id spec = Hashtbl.replace t.hooks id spec
let hook_spec t ~id = Hashtbl.find_opt t.hooks id

(* CPU charging is implemented on [Compile.ctx] (inlined into compiled
   closures); the tree-walker routes through the same functions. *)

let charge_stmt t = Compile.charge_stmt t.ctx
let charge t cost = Compile.charge t.ctx cost

(* --- expression evaluation (pure; tree-walking reference engine) ---

   Violation payloads come from the raise helpers in [Compile] — the single
   source of truth shared with the compiled engine — and are formatted only
   after the raise decision. *)

let truthy loc = function VBool b -> b | v -> Compile.err_cond loc v

let rec eval t frame loc expr =
  match expr with
  | Const v -> v
  | Var x -> (
      match Hashtbl.find_opt frame x with
      | Some v -> v
      | None -> Compile.err_unbound loc x)
  | Binop (op, a, b) -> eval_binop t frame loc op a b
  | Unop (Not, e) -> (
      match eval t frame loc e with
      | VBool b -> VBool (not b)
      | v -> Compile.err_not loc v)
  | Unop (Neg, e) -> (
      match eval t frame loc e with
      | VInt i -> VInt (-i)
      | v -> Compile.err_neg loc v)
  | Unop (Len, e) -> (
      match eval t frame loc e with
      | VStr s -> VInt (String.length s)
      | VBytes b -> VInt (Bytes.length b)
      | VList l -> VInt (List.length l)
      | VMap m -> VInt (List.length m)
      | v -> Compile.err_len loc v)
  | Pair (a, b) ->
      let va = eval t frame loc a in
      let vb = eval t frame loc b in
      VPair (va, vb)
  | Fst e -> (
      match eval t frame loc e with
      | VPair (a, _) -> a
      | v -> Compile.err_fst loc v)
  | Snd e -> (
      match eval t frame loc e with
      | VPair (_, b) -> b
      | v -> Compile.err_snd loc v)
  | Prim (name, args) -> (
      let vargs = List.map (eval t frame loc) args in
      try Prims.apply name vargs
      with Prims.Prim_error m -> Compile.err_prim loc m)

and eval_binop t frame loc op a b =
  let va = eval t frame loc a in
  match op with
  (* Short-circuit boolean operators: a non-bool left side is a type
     violation before the right side is touched. *)
  | And -> (
      match va with
      | VBool false -> VBool false
      | VBool true -> eval t frame loc b
      | _ -> Compile.err_logic loc va)
  | Or -> (
      match va with
      | VBool true -> VBool true
      | VBool false -> eval t frame loc b
      | _ -> Compile.err_logic loc va)
  | Add -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y -> VInt (x + y)
      | _ -> Compile.err_int_op loc va vb)
  | Sub -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y -> VInt (x - y)
      | _ -> Compile.err_int_op loc va vb)
  | Mul -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y -> VInt (x * y)
      | _ -> Compile.err_int_op loc va vb)
  | Div -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y ->
          if y = 0 then Compile.verr loc "arith" "division by zero"
          else VInt (x / y)
      | _ -> Compile.err_int_op loc va vb)
  | Mod -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y ->
          if y = 0 then Compile.verr loc "arith" "mod by zero"
          else VInt (x mod y)
      | _ -> Compile.err_int_op loc va vb)
  | Eq ->
      let vb = eval t frame loc b in
      if value_equal va vb then VBool true else VBool false
  | Ne ->
      let vb = eval t frame loc b in
      if value_equal va vb then VBool false else VBool true
  | Lt -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y -> VBool (x < y)
      | VStr x, VStr y -> VBool (String.compare x y < 0)
      | _ -> Compile.err_cmp loc va vb)
  | Le -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y -> VBool (x <= y)
      | VStr x, VStr y -> VBool (String.compare x y <= 0)
      | _ -> Compile.err_cmp loc va vb)
  | Gt -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y -> VBool (x > y)
      | VStr x, VStr y -> VBool (String.compare x y > 0)
      | _ -> Compile.err_cmp loc va vb)
  | Ge -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VInt x, VInt y -> VBool (x >= y)
      | VStr x, VStr y -> VBool (String.compare x y >= 0)
      | _ -> Compile.err_cmp loc va vb)
  | Concat -> (
      let vb = eval t frame loc b in
      match (va, vb) with
      | VStr x, VStr y -> VStr (x ^ y)
      | _ -> Compile.err_concat loc va vb)

(* --- operations --- *)

let arg_str loc = function
  | VStr s -> s
  | v ->
      raise
        (Violation { loc; vkind = "type"; msg = Fmt.str "expected string: %a" pp_value v })

let arg_int loc = function
  | VInt i -> i
  | v ->
      raise
        (Violation { loc; vkind = "type"; msg = Fmt.str "expected int: %a" pp_value v })

let arg_bytes loc = function
  | VBytes b -> b
  | VStr s -> Bytes.of_string s
  | v ->
      raise
        (Violation { loc; vkind = "type"; msg = Fmt.str "expected bytes: %a" pp_value v })

let op_desc_memo t kind target =
  let key = (kind, target) in
  match Hashtbl.find_opt t.op_descs key with
  | Some d -> d
  | None ->
      let d = Compile.op_desc kind target in
      Hashtbl.add t.op_descs key d;
      d

let lock_desc_memo t lockname =
  match Hashtbl.find_opt t.lock_descs lockname with
  | Some d -> d
  | None ->
      let d = "lock(" ^ lockname ^ ")" in
      Hashtbl.add t.lock_descs lockname d;
      d

(* Runtime analogue of [Wd_analysis.Vulnerable]'s op key: the first string
   operand truncated after its first path segment, so mined trace keys line
   up with the statically derived "kind:target:operand-prefix" families.
   Only computed when the run is traced and the node executes in Main mode
   (checker-mode mimics must not pollute the passing-run observations).
   Returns an interned {!Wd_sim.Site.id}, or [no_tkey] when untraced — the
   key string is built once per distinct (opname, target, prefix) family. *)
let no_tkey = -1

let trace_key t ~opname ~target vargs =
  if t.mode <> Main then no_tkey
  else
    match Wd_sim.Sched.trace (Wd_sim.Sched.get ()) with
    | None -> no_tkey
    | Some _ -> (
        let prefix =
          match vargs with
          | VStr s :: _ -> (
              match String.index_opt s '/' with
              | Some i -> String.sub s 0 (i + 1)
              | None -> s)
          | _ -> ""
        in
        let key = (opname, target, prefix) in
        match Hashtbl.find_opt t.trace_keys key with
        | Some id -> id
        | None ->
            let id = Wd_sim.Site.intern (opname ^ ":" ^ target ^ ":" ^ prefix) in
            if Hashtbl.length t.trace_keys < 8192 then
              Hashtbl.add t.trace_keys key id;
            id)

let trace_err = function
  | Violation { vkind; _ } -> "violation:" ^ vkind
  | Wd_env.Disk.Io_error _ -> "io_error"
  | Wd_env.Net.Net_error _ -> "net_error"
  | Out_of_memory -> "out_of_memory"
  | e -> Printexc.to_string e

(* Record op start/end around an effectful action so the watchdog driver can
   pinpoint an in-flight hang and track slow operations. [is_lock] routes
   the elapsed time to the lock-wait counter (excluded from slowness
   assessment); the call site knows, so no description sniffing. [tkey],
   when not [no_tkey], additionally emits Op_start/Op_end/Op_fail trace
   events keyed by it — the raw material for trace-inferred checkers. The
   probe bracket is pure field stores: nothing is boxed per op. *)
let with_probe t loc ~is_lock ~tkey desc f =
  let s = Wd_sim.Sched.get () in
  let p = t.probe in
  (* [started] must be a local: the probe record is shared by every task of
     this interpreter, so a concurrent op overwrites [p.op_started] while
     this op blocks — elapsed-time accounting has to survive that. *)
  let started = Int64.to_int (Wd_sim.Sched.now s) in
  p.op_active <- true;
  p.op_loc <- loc;
  p.op_desc <- desc;
  p.op_started <- started;
  if tkey >= 0 then
    Wd_sim.Sched.trace_op_start s ~op:tkey ~node:t.node_site
      ~func:(Wd_sim.Site.intern (Loc.func loc));
  let finish () =
    let elapsed = Int64.to_int (Wd_sim.Sched.now s) - started in
    p.op_active <- false;
    p.last_loc <- loc;
    p.ops_executed <- p.ops_executed + 1;
    (if is_lock then p.lock_ns <- p.lock_ns + elapsed
     else p.op_ns <- p.op_ns + elapsed);
    if elapsed > p.slow_ns then begin
      p.slow_loc <- loc;
      p.slow_ns <- elapsed
    end;
    elapsed
  in
  match f () with
  | v ->
      let elapsed = finish () in
      if tkey >= 0 then
        Wd_sim.Sched.trace_op_end s ~op:tkey ~node:t.node_site
          ~func:(Wd_sim.Site.intern (Loc.func loc))
          ~dur:(Int64.of_int elapsed);
      v
  | exception e ->
      (* Leave the in-flight op set on failure: it is the pinpoint. *)
      p.last_loc <- loc;
      if tkey >= 0 then
        Wd_sim.Sched.trace_op_fail s ~op:tkey ~node:t.node_site
          ~func:(Wd_sim.Site.intern (Loc.func loc))
          ~err:(trace_err e);
      raise e

let scratch t path = t.scratch_prefix ^ path

(* Shared empty-mailbox marker: both engines return this exact structure on
   a timed-out poll; it contains no mutable leaf, so one shared constant is
   indistinguishable from a fresh allocation. *)
let vmap_miss = VMap [ ("ok", VBool false) ]

(* Effectful op over pre-evaluated arguments; shared by both engines. *)
let exec_op_v t loc ~desc ~kind ~target vargs =
  let tkey = trace_key t ~opname:(op_kind_name kind) ~target vargs in
  with_probe t loc ~is_lock:false ~tkey desc (fun () ->
      match (kind, vargs) with
      | Disk_write, [ p; data ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p and data = arg_bytes loc data in
          (match t.mode with
          | Main -> Wd_env.Disk.write d ~path data
          | Checker ->
              Wd_env.Disk.write ~as_path:path d ~path:(scratch t path) data);
          VUnit
      | Disk_append, [ p; data ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p and data = arg_bytes loc data in
          (match t.mode with
          | Main -> Wd_env.Disk.append d ~path data
          | Checker ->
              Wd_env.Disk.append ~as_path:path d ~path:(scratch t path) data);
          VUnit
      | Disk_read, [ p ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p in
          (match t.mode with
          | Main -> VBytes (Wd_env.Disk.read d ~path)
          | Checker ->
              (* Prefer the checker's own scratch copy; fall back to the
                 real file, which a read cannot damage. Either way the
                 fault site is the original path (fate sharing). *)
              let phys =
                if Wd_env.Disk.peek d ~path:(scratch t path) <> None then
                  scratch t path
                else path
              in
              VBytes (Wd_env.Disk.read ~as_path:path d ~path:phys))
      | Disk_sync, [] ->
          Wd_env.Disk.sync (Runtime.disk t.res target);
          VUnit
      | Disk_delete, [ p ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p in
          (match t.mode with
          | Main -> Wd_env.Disk.delete d ~path
          | Checker -> Wd_env.Disk.delete ~as_path:path d ~path:(scratch t path));
          VUnit
      | Disk_exists, [ p ] ->
          VBool (Wd_env.Disk.exists (Runtime.disk t.res target) ~path:(arg_str loc p))
      | Disk_list, [ p ] ->
          let files =
            Wd_env.Disk.list (Runtime.disk t.res target) ~prefix:(arg_str loc p)
          in
          VList (List.map (fun f -> VStr f) files)
      | Net_send, [ dst; payload ] ->
          let n = Runtime.net t.res target in
          let dst = arg_str loc dst in
          (match t.mode with
          | Main -> Wd_env.Net.send n ~src:t.node ~dst payload
          | Checker ->
              (* Same src/dst fault site (fate sharing) but delivery lands in
                 the destination's shadow inbox, invisible to the main
                 program. *)
              let shadow = "__wd:" ^ dst in
              Wd_env.Net.ensure_registered n shadow;
              Wd_env.Net.send ~site_dst:dst n ~src:t.node ~dst:shadow payload);
          VUnit
      | Net_recv, [ timeout ] -> (
          let n = Runtime.net t.res target in
          let timeout = Wd_sim.Time.ms (arg_int loc timeout) in
          match t.mode with
          | Main -> (
              match Wd_env.Net.recv_timeout n t.node ~timeout with
              | Some env ->
                  VMap
                    [
                      ("ok", VBool true);
                      ("src", VStr env.Wd_env.Net.src);
                      ("payload", env.Wd_env.Net.payload);
                      ("corrupted", VBool env.Wd_env.Net.corrupted);
                    ]
              | None -> vmap_miss)
          | Checker ->
              (* Receiving is not mimicked against live traffic; a checker
                 poll returns an empty mailbox marker. *)
              vmap_miss)
      | Queue_put, [ data ] ->
          let q =
            Runtime.queue t.res
              (match t.mode with Main -> target | Checker -> "__wd:" ^ target)
          in
          Wd_sim.Channel.send q data;
          VUnit
      | Queue_get, [ timeout ] -> (
          match t.mode with
          | Main -> (
              let q = Runtime.queue t.res target in
              let timeout = Wd_sim.Time.ms (arg_int loc timeout) in
              match Wd_sim.Channel.recv_timeout q ~timeout with
              | Some v -> VMap [ ("ok", VBool true); ("payload", v) ]
              | None -> vmap_miss)
          | Checker -> vmap_miss)
      | Mem_alloc, [ size ] ->
          let m = Runtime.mem t.res target in
          let size = arg_int loc size in
          Wd_env.Memory.alloc m size;
          (* A checker must experience allocation stalls without leaking. *)
          (match t.mode with Checker -> Wd_env.Memory.free m size | Main -> ());
          VUnit
      | Mem_free, [ size ] ->
          (match t.mode with
          | Main -> Wd_env.Memory.free (Runtime.mem t.res target) (arg_int loc size)
          | Checker -> ());
          VUnit
      | State_get, [] -> (
          match t.mode with
          | Main -> Runtime.global t.res target
          | Checker -> (
              match Hashtbl.find_opt t.shadow_globals target with
              | Some v -> v
              | None -> copy_value (Runtime.global t.res target)))
      | State_set, [ v ] ->
          (match t.mode with
          | Main -> Runtime.set_global t.res target v
          | Checker -> Hashtbl.replace t.shadow_globals target v);
          VUnit
      | Sleep_op, [ ms ] ->
          Wd_sim.Sched.sleep (Wd_sim.Time.ms (arg_int loc ms));
          VUnit
      | Log_op, [ msg ] ->
          Runtime.log t.res ~node:t.node (value_to_string msg);
          VUnit
      | _, _ ->
          raise
            (Violation
               {
                 loc;
                 vkind = "arity";
                 msg = Fmt.str "%s: bad arguments" (op_kind_name kind);
               }))

(* Mode-specific lock protocol around a body thunk; shared by both engines. *)
let exec_sync_v t loc ~lock:lockname ~desc body =
  let lock = Runtime.lock t.res lockname in
  match t.mode with
  | Main -> (
      let tkey = trace_key t ~opname:"sync" ~target:lockname [] in
      with_probe t loc ~is_lock:true ~tkey desc (fun () ->
          Wd_sim.Smutex.lock lock);
      let release () = Wd_sim.Smutex.unlock lock in
      match body () with
      | () -> release ()
      | exception e ->
          release ();
          raise e)
  | Checker ->
      (* Try-lock with timeout: hanging forever against a wedged main
         program would defeat the watchdog; timing out *is* the finding.
         Once acquired the lock is released immediately: the checker's body
         works on scratch files and shadow state, so it needs no mutual
         exclusion — and holding a real lock across a mimicked (possibly
         hanging) operation would let the watchdog wedge the main program,
         the §3.2 isolation failure. *)
      let acquired =
        with_probe t loc ~is_lock:true ~tkey:no_tkey desc (fun () ->
            let s = Wd_sim.Sched.get () in
            let deadline = Int64.add (Wd_sim.Sched.now s) t.lock_timeout in
            let rec attempt () =
              if Wd_sim.Smutex.try_lock lock then true
              else if Wd_sim.Sched.now s >= deadline then false
              else begin
                Wd_sim.Sched.sleep (Wd_sim.Time.ms 50);
                attempt ()
              end
            in
            attempt ())
      in
      if not acquired then
        raise
          (Violation
             {
               loc;
               vkind = "liveness";
               msg =
                 Fmt.str "lock %s not acquired within %a" lockname Wd_sim.Time.pp
                   t.lock_timeout;
             });
      Wd_sim.Smutex.unlock lock;
      body ()

(* Fire hook [id]; [lookup] reads a frame variable. Shared by both engines. *)
let exec_hook_v t id lookup =
  match t.mode with
  | Checker -> ()
  | Main -> (
      match (t.hook_sink, Hashtbl.find_opt t.hooks id) with
      | Some sink, Some spec ->
          let values =
            List.filter_map
              (fun x ->
                match lookup x with
                | Some v ->
                    (* Replication: never alias a mutable buffer. Values
                       with no VBytes anywhere are persistent, so sharing
                       them is indistinguishable from a deep copy. *)
                    Some (x, if value_immutable v then v else copy_value v)
                | None -> None)
              spec.hook_vars
          in
          sink id values
      | _, _ -> ())

(* --- statement execution (tree-walking reference engine) --- *)

let rec exec_block t frame depth block = List.iter (exec_stmt t frame depth) block

and exec_stmt t frame depth st =
  charge_stmt t;
  let loc = st.loc in
  match st.node with
  | Let (x, e) | Assign (x, e) -> Hashtbl.replace frame x (eval t frame loc e)
  | Op { kind; target; args; bind } -> (
      let vargs = List.map (eval t frame loc) args in
      let desc = op_desc_memo t kind target in
      let v = exec_op_v t loc ~desc ~kind ~target vargs in
      match bind with Some x -> Hashtbl.replace frame x v | None -> ())
  | Call { func; args; bind } -> (
      let vargs = List.map (eval t frame loc) args in
      let v = exec_call t depth func vargs in
      match bind with Some x -> Hashtbl.replace frame x v | None -> ())
  | If (c, th, el) ->
      if truthy loc (eval t frame loc c) then exec_block t frame depth th
      else exec_block t frame depth el
  | While (c, body) ->
      while truthy loc (eval t frame loc c) do
        exec_block t frame depth body
      done
  | Foreach (x, e, body) -> (
      match eval t frame loc e with
      | VList items ->
          List.iter
            (fun item ->
              Hashtbl.replace frame x item;
              exec_block t frame depth body)
            items
      | v -> Compile.err_foreach loc v)
  | Sync (lockname, body) ->
      let desc = lock_desc_memo t lockname in
      exec_sync_v t loc ~lock:lockname ~desc (fun () ->
          exec_block t frame depth body)
  | Try (body, exn, handler) -> (
      try exec_block t frame depth body with
      | Wd_env.Disk.Io_error m
      | Wd_env.Net.Net_error m
      | Wd_env.Memory.Out_of_memory m ->
          Hashtbl.replace frame exn (VStr m);
          exec_block t frame depth handler
      | Wd_sim.Channel.Closed m ->
          Hashtbl.replace frame exn (VStr ("channel closed: " ^ m));
          exec_block t frame depth handler)
  | Return e -> raise (Return_exn (eval t frame loc e))
  | Assert (e, msg) ->
      if not (truthy loc (eval t frame loc e)) then
        raise (Violation { loc; vkind = "assert"; msg })
  | Compute { cost_ns; note = _ } -> charge t cost_ns
  | Hook id -> exec_hook_v t id (fun x -> Hashtbl.find_opt frame x)

and exec_call t depth fname vargs =
  if depth > t.ctx.Compile.cx_max_depth then
    Compile.err_depth t.ctx.Compile.cx_max_depth;
  let f, arity =
    match Hashtbl.find_opt t.funcs_by_name fname with
    | Some fa -> fa
    | None ->
        (* unknown function: defer to [find_func] for the canonical error *)
        let f = find_func t.prog fname in
        (f, List.length f.params)
  in
  if List.compare_length_with vargs arity <> 0 then
    Compile.err_call_arity fname;
  let frame = Hashtbl.create 16 in
  List.iter2 (fun p v -> Hashtbl.replace frame p v) f.params vargs;
  match exec_block t frame (depth + 1) f.body with
  | () -> VUnit
  | exception Return_exn v -> v

(* --- compiled engine: runtime interface and program cache --- *)

let rt : t Compile.rt =
  { Compile.exec_op = exec_op_v; exec_sync = exec_sync_v; exec_hook = exec_hook_v }

type compiled = t Compile.t

(* One compiled form per (program, domain), held in domain-local storage —
   mirrors [Generate.analyze_cached]. Campaign workers are persistent (the
   pool outlives batches), so each domain compiles a target once and then
   hits its own table with no cross-domain contention: the hot-path lookup
   takes no lock at all. Invalidation is epoch-based — [clear_compile_cache]
   bumps the global [Compile] epoch and each domain resets its table lazily
   on its next lookup — because one domain cannot reach into another's
   storage. The same epoch invalidates every call-site inline cache inside
   compiled forms that stay live across the bump. *)
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

type cache_slot = {
  mutable cs_epoch : int;
  cs_tbl : (string, compiled) Hashtbl.t;
}

let cache_key : cache_slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cs_epoch = -1; cs_tbl = Hashtbl.create 64 })

let local_cache () =
  let slot = Domain.DLS.get cache_key in
  let now = Compile.current_epoch () in
  if slot.cs_epoch <> now then begin
    Hashtbl.reset slot.cs_tbl;
    slot.cs_epoch <- now
  end;
  slot.cs_tbl

let prog_digest (prog : program) =
  Digest.to_hex (Digest.string (Marshal.to_string prog []))

let precompile prog =
  let key = prog_digest prog in
  let tbl = local_cache () in
  match Hashtbl.find_opt tbl key with
  | Some cp ->
      Atomic.incr cache_hits;
      cp
  | None ->
      Atomic.incr cache_misses;
      let cp = Compile.compile ~rt prog in
      Hashtbl.add tbl key cp;
      cp

let compile_cache_stats () = (Atomic.get cache_hits, Atomic.get cache_misses)

let clear_compile_cache () =
  Compile.bump_epoch ();
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

(* --- construction and public API --- *)

let create ?engine ?compiled ?(mode = Main) ?(scratch_prefix = "__wd/")
    ?(lock_timeout = Wd_sim.Time.sec 5) ?(stmt_cost = 100L)
    ?(cpu_quantum = Wd_sim.Time.us 10) ~node ~res prog =
  let funcs_by_name = Hashtbl.create (2 * List.length prog.funcs) in
  List.iter
    (fun f ->
      (* keep the first binding, matching [Ast.find_func] *)
      if not (Hashtbl.mem funcs_by_name f.fname) then
        Hashtbl.add funcs_by_name f.fname (f, List.length f.params))
    prog.funcs;
  let t =
    {
      prog;
      funcs_by_name;
      res;
      node;
      mode;
      hook_sink = None;
      hooks = Hashtbl.create 16;
      probe =
        {
          op_active = false;
          op_loc = Loc.dummy;
          op_desc = "";
          op_started = 0;
          last_loc = Loc.dummy;
          slow_loc = Loc.dummy;
          slow_ns = -1;
          ops_executed = 0;
          op_ns = 0;
          lock_ns = 0;
        };
      shadow_globals = Hashtbl.create 16;
      scratch_prefix;
      lock_timeout;
      ctx =
        Compile.make_ctx
          ~stmt_cost:(Int64.to_int stmt_cost)
          ~quantum:(Int64.to_int cpu_quantum) ~max_depth:512;
      op_descs = Hashtbl.create 16;
      lock_descs = Hashtbl.create 8;
      trace_keys = Hashtbl.create 32;
      node_site = Wd_sim.Site.intern node;
      impl = Treewalk_impl;
    }
  in
  (match (compiled, engine) with
  | Some cp, _ ->
      let cprog = Compile.program cp in
      if not (cprog == prog || cprog = prog) then
        invalid_arg "Interp.create: compiled form is for a different program";
      t.impl <- Compiled_impl cp
  | None, Some `Treewalk -> ()
  | None, Some `Compiled -> t.impl <- Compiled_impl (precompile prog)
  | None, None -> (
      match default_engine () with
      | `Treewalk -> ()
      | `Compiled -> t.impl <- Compiled_impl (precompile prog)));
  t

let call t fname args =
  match t.impl with
  | Treewalk_impl -> exec_call t 0 fname args
  | Compiled_impl cp -> Compile.call cp t t.ctx fname args

let frame_pool_stats t fname =
  match t.impl with
  | Treewalk_impl -> None
  | Compiled_impl cp -> Compile.frame_pool_stats cp fname

let ic_refills = Compile.ic_refill_count

let start ?entries t sched =
  let wanted = entries in
  let selected =
    match wanted with
    | None -> t.prog.entries
    | Some names ->
        List.filter (fun e -> List.mem e.entry_name names) t.prog.entries
  in
  List.map
    (fun e ->
      Wd_sim.Sched.spawn ~name:(Fmt.str "%s/%s" t.node e.entry_name) ~daemon:true
        sched
        (fun () -> ignore (call t e.entry_func e.entry_args)))
    selected
