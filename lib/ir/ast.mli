(** Abstract syntax of the mini-IR that target systems are written in.

    The IR plays the role Java bytecode plays for the paper's AutoWatchdog
    prototype: rich enough to host real concurrent system software (I/O,
    locks, queues, shared state, daemon loops), simple enough for
    whole-program static analysis. Environment-touching effects are
    confined to [Op] statements, each tagged with an {!op_kind} — the
    vulnerable-operation classification of §4.1 is a predicate on these
    kinds.

    Every constructor is transparent: the analyses, interpreters, program
    generators and tests all pattern-match freely. This interface exists to
    pin the surface and document it, not to hide structure. *)

type value =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VBytes of Bytes.t
  | VList of value list
  | VPair of value * value
  | VMap of (string * value) list

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type unop = Not | Neg | Len

type expr =
  | Const of value
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Pair of expr * expr
  | Fst of expr
  | Snd of expr
  | Prim of string * expr list
      (** pure primitive from [Prims]: map_put, checksum, str_of_int, ... *)

(** The effectful instructions a program can issue against its
    environment; the vulnerable-operation analysis classifies these. *)
type op_kind =
  | Disk_write
  | Disk_append
  | Disk_read
  | Disk_sync
  | Disk_delete
  | Disk_exists
  | Disk_list
  | Net_send
  | Net_recv
  | Queue_put
  | Queue_get
  | Mem_alloc
  | Mem_free
  | State_get
  | State_set
  | Sleep_op
  | Log_op

type stmt_node =
  | Let of string * expr
  | Assign of string * expr
  | Op of {
      kind : op_kind;
      target : string;
          (** names the resource: a disk, net fabric, queue, memory pool or
              global variable *)
      args : expr list;
      bind : string option;
    }
  | Call of { func : string; args : expr list; bind : string option }
  | If of expr * block * block
  | While of expr * block
  | Foreach of string * expr * block
  | Sync of string * block  (** synchronized(lock) [{ ... }] *)
  | Try of block * string * block  (** try b catch (e) [{ handler }] *)
  | Return of expr
  | Assert of expr * string
  | Compute of { cost_ns : int64; note : string }  (** pure CPU work *)
  | Hook of int  (** instrumentation point; no-op until instrumented *)

and stmt = { node : stmt_node; loc : Loc.t }
and block = stmt list

type annot =
  | Long_running  (** function hosts a continuously-executing region *)
  | Vulnerable_annot
      (** developer-tagged as worth monitoring (§4.1) *)

type func = {
  fname : string;
  params : string list;
  body : block;
  annots : annot list;
}

type entry = {
  entry_name : string;
  entry_func : string;
  entry_args : value list;
}

type program = { pname : string; funcs : func list; entries : entry list }

exception Ir_error of string

val find_func : program -> string -> func
(** Raises {!Ir_error} when the function is absent. *)

val has_func : program -> string -> bool

val op_kind_name : op_kind -> string

val copy_value : value -> value
(** Deep copy. Values are persistent except [VBytes], whose buffer must
    never be shared between the main program and a watchdog context (§3.2
    isolation). *)

val value_immutable : value -> bool
(** No [VBytes] anywhere: sharing across the program/watchdog boundary is
    safe, and {!copy_value} would allocate a structurally-new but
    semantically-identical tree for nothing. *)

val value_equal : value -> value -> bool

val render_value : Buffer.t -> value -> unit
(** Canonical rendering into a caller-supplied buffer — the hot-path form
    used by serialisation, value hashing and log formatting. *)

val with_rendered : value -> (Buffer.t -> 'a) -> 'a
(** Render into the per-domain scratch buffer and apply the callback; the
    buffer is valid only for the duration of the call. The
    no-intermediate-string path for content hashing. *)

val value_to_string : value -> string
(** {!render_value} through a per-domain scratch buffer. *)

val pp_value : Format.formatter -> value -> unit
