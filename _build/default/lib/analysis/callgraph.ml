(* Static call graph of an IR program. *)

open Wd_ir.Ast

type t = {
  prog : program;
  calls : (string, (string * Wd_ir.Loc.t) list) Hashtbl.t;
      (* caller -> [(callee, call site)] *)
}

let rec callees_of_block block acc =
  List.fold_left
    (fun acc st ->
      match st.node with
      | Call { func; _ } -> (func, st.loc) :: acc
      | If (_, t, e) -> callees_of_block e (callees_of_block t acc)
      | While (_, b) | Foreach (_, _, b) | Sync (_, b) -> callees_of_block b acc
      | Try (b, _, h) -> callees_of_block h (callees_of_block b acc)
      | Let _ | Assign _ | Op _ | Return _ | Assert _ | Compute _ | Hook _ -> acc)
    acc block

let build prog =
  let calls = Hashtbl.create 32 in
  List.iter
    (fun f -> Hashtbl.replace calls f.fname (List.rev (callees_of_block f.body [])))
    prog.funcs;
  { prog; calls }

let callees t fname =
  match Hashtbl.find_opt t.calls fname with Some cs -> cs | None -> []

(* Functions reachable from [root], including [root] itself, in a stable
   (preorder, call-site order) sequence. *)
let reachable t root =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit fname =
    if not (Hashtbl.mem seen fname) then begin
      Hashtbl.replace seen fname ();
      order := fname :: !order;
      List.iter (fun (callee, _) -> visit callee) (callees t fname)
    end
  in
  visit root;
  List.rev !order

(* Depth (shortest call-chain length) of each reachable function from root. *)
let depths t root =
  let depths = Hashtbl.create 16 in
  let rec bfs frontier d =
    match frontier with
    | [] -> ()
    | _ ->
        let next =
          List.concat_map
            (fun fname ->
              List.filter_map
                (fun (callee, _) ->
                  if Hashtbl.mem depths callee then None
                  else begin
                    Hashtbl.replace depths callee (d + 1);
                    Some callee
                  end)
                (callees t fname))
            frontier
        in
        bfs next (d + 1)
  in
  Hashtbl.replace depths root 0;
  bfs [ root ] 0;
  depths

let is_recursive t fname =
  List.exists
    (fun (callee, _) -> List.mem fname (reachable t callee))
    (callees t fname)
