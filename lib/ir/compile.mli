(** Closure compiler for the IR: a one-time lowering pass that turns each
    function into a direct-threaded tree of pre-resolved OCaml closures.

    The lowering removes every per-statement interpretation cost that does
    not correspond to program behaviour:

    - dispatch is direct-threaded: each statement closure receives its
      continuation at compile time and tail-calls it, so a basic block runs
      as one chain of tail calls with no per-statement tag matching, block
      arrays or dispatch loop;
    - variables are resolved at compile time to integer slots in a per-call
      [value array] frame — no string hashing on the hot path;
    - call targets and arities are resolved to function handles up front
      (including forward references); each call site keeps a monomorphic
      inline cache of its callee's compiled body and parameter slots,
      validated against the {{!current_epoch} compile epoch} by a single
      integer comparison per call; the error paths of the tree-walker are
      compiled in where resolution fails;
    - frames are drawn from a small per-function free list and recycled on
      return, so steady-state calls allocate no frame;
    - CPU charging is inlined into every statement closure through the
      concrete {!ctx} record — no indirect call per statement;
    - binops, unops, comparisons and conditions are specialised per operand
      shape (notably Var/Const-int and Var/Var integer arithmetic), keeping
      the generic [Violation] path only as the fallback;
    - [Prim]/[Op]/[Call] argument evaluation is flattened for small arities
      to avoid per-step [List.map] closure allocation;
    - op descriptions ("disk_write(d0)", "lock(m)") are precomputed.

    The compiler is generic in the interpreter state ['i]: all effectful
    semantics (op execution, sync, hooks) are supplied through an {!rt}
    record, so [Compile] depends only on the AST and [Interp] stays the
    single owner of Main/Checker behaviour. Parity contract: compiled
    execution is observably bit-for-bit identical to the tree-walker —
    same [stmts_executed] counts, same charge quanta (virtual time), same
    probe records and hook firing order, same [Violation] payloads. *)

open Ast

exception Violation of { loc : Loc.t; vkind : string; msg : string }
(** The canonical runtime-check failure. Defined here (the layer both
    engines share) and re-exported by [Interp] unchanged. *)

exception Return_exn of value
(** Internal control flow; escapes only on a toplevel [Return]. *)

(** {1 Compile epoch}

    A global generation counter for compiled forms. Bumping it (via
    [Interp.clear_compile_cache]) invalidates both the domain-local program
    caches in [Interp]/[Generate] and every call-site inline cache: sites
    re-read their callee's compiled fields on next execution. *)

val current_epoch : unit -> int
val bump_epoch : unit -> unit

(** {1 Execution context}

    Per-interpreter-instance CPU accounting and depth budget, threaded
    through every compiled closure so statement charging is straight-line
    integer arithmetic. The tree-walker shares the same record (via
    {!charge_stmt}/{!charge}), which keeps [stmts_executed] and
    quantum-flush timing engine-identical. *)

type ctx = {
  cx_cost : int;  (** virtual ns charged per statement *)
  cx_quantum : int;  (** accumulated cost flushed to the clock at this *)
  mutable cx_acc : int;
  mutable cx_stmts : int;
  cx_max_depth : int;
  mutable cx_ret : value;
      (** compiled-engine return slot for exception-free tail returns;
          valid only between a body's normal completion and the call
          site's immediate read *)
}

val make_ctx : stmt_cost:int -> quantum:int -> max_depth:int -> ctx

val charge_stmt : ctx -> unit
(** Statement prologue: count it and charge its CPU cost, flushing
    accumulated cost to the virtual clock at quantum boundaries. *)

val charge : ctx -> int64 -> unit
(** Extra CPU work ([Compute]); handles degenerate huge costs with int64
    precision. *)

type 'i rt = {
  exec_op :
    'i ->
    Loc.t ->
    desc:string ->
    kind:op_kind ->
    target:string ->
    value list ->
    value;
      (** effectful op with pre-evaluated arguments (probe + env) *)
  exec_sync : 'i -> Loc.t -> lock:string -> desc:string -> (unit -> unit) -> unit;
      (** run the body thunk under the named lock's mode-specific protocol *)
  exec_hook : 'i -> int -> (string -> value option) -> unit;
      (** fire hook [id]; the callback reads a frame variable (None when
          unbound) *)
}
(** Everything mode- or state-dependent, supplied by the interpreter. *)

(** {1 Shared raise helpers}

    The single source of truth for violation payloads, used by both engines.
    Never inlined, so no error string is formatted before the raise
    decision. *)

val verr : Loc.t -> string -> string -> 'a
(** [verr loc vkind msg] raises {!Violation}. *)

val err_unbound : Loc.t -> string -> 'a
val err_cond : Loc.t -> value -> 'a
val err_logic : Loc.t -> value -> 'a
val err_int_op : Loc.t -> value -> value -> 'a
val err_cmp : Loc.t -> value -> value -> 'a
val err_concat : Loc.t -> value -> value -> 'a
val err_not : Loc.t -> value -> 'a
val err_neg : Loc.t -> value -> 'a
val err_len : Loc.t -> value -> 'a
val err_fst : Loc.t -> value -> 'a
val err_snd : Loc.t -> value -> 'a
val err_foreach : Loc.t -> value -> 'a
val err_prim : Loc.t -> string -> 'a
val err_depth : int -> 'a
val err_call_arity : string -> 'a

val op_desc : op_kind -> string -> string
(** ["kind(target)"], the probe description of an op site. *)

(** {1 Compiled programs} *)

type 'i t
(** A compiled program: closures over an ['i rt]. Carries mutable run-time
    state (per-function frame pools, call-site inline caches), so a
    compiled form belongs to the domain that compiled it — which is how
    the domain-local compile caches in [Interp] and [Generate] already
    hand them out. Within a domain it is freely shared across interpreter
    instances (Main and Checker alike); fibers interleave only at
    suspension points and a frame stays checked out for the whole
    activation, so pooled frames are never shared. *)

val compile : rt:'i rt -> program -> 'i t
(** One-shot lowering of every function. Duplicate function names keep the
    first binding, matching [Ast.find_func]. *)

val program : 'i t -> program
val nslots : 'i t -> string -> int option
(** Frame width of a compiled function, for introspection and tests. *)

val frame_pool_stats : 'i t -> string -> (int * int) option
(** [(pooled_frames, pool_hits)] for a compiled function: current free-list
    length and how many calls reused a pooled frame. For tests. *)

val ic_refill_count : unit -> int
(** Process-wide count of call-site inline-cache (re)fills — every site's
    first execution plus one refill per site per epoch bump. For tests. *)

val call : 'i t -> 'i -> ctx -> string -> value list -> value
(** Entry point equivalent to the tree-walker's toplevel call: arity checked
    at runtime, unknown functions raise the canonical [Ast.Ir_error] via
    [find_func], body runs at depth 1. *)
