lib/targets/rpcq.ml: Ast Fmt List Runtime Wd_ir Wd_sim
