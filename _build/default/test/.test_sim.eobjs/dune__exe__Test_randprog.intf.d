test/test_randprog.mli:
