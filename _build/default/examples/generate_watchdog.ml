(* Figures 2 and 3, live: run AutoWatchdog's program-logic reduction on
   zkmini's snapshot serialisation chain and print (a) the original code,
   (b) the instrumented code with the inserted context hook, and (c) the
   generated checker in the paper's Figure-3 shape.

     dune exec examples/generate_watchdog.exe *)

let () = print_string (Wd_harness.Experiments.e4_text ())
