(* cstore — a Cassandra-like store: commit log + memtable on the write
   path, memtable flush to SSTables, and a background SSTable compaction
   task. The paper's motivating intrinsic check — "is the SSTable compaction
   background task stuck?" — corresponds to the generated mimic checkers of
   [compact_once]: a disk hang inside compaction blocks only this task, so
   reads and writes keep succeeding and every extrinsic detector stays
   green. *)

open Wd_ir
module B = Builder

let ( =: ) = B.( =: )
let ( <>: ) = B.( <>: )
let ( +: ) = B.( +: )
let ( >=: ) = B.( >=: )
let ( >: ) = B.( >: )
let ( *: ) = B.( *: )

let node = "cs1"
let seed_node = "cs-seed"
let disk_name = "cs.disk"
let net_name = "cs.net"
let mem_name = "cs.mem"
let request_queue = "cs.requests"
let replies_queue = "cs.replies"
let memtable_flush_threshold = 8
let compaction_fanin = 3

let reply_msg data =
  B.prim "map_put"
    [
      B.prim "map_put" [ B.prim "map_empty" []; B.s "id"; B.v "reply" ];
      B.s "data";
      data;
    ]

let do_write =
  B.func "do_write" ~params:[ "key"; "value" ]
    [
      (* commit log first, then memtable *)
      B.let_ "entry"
        (B.prim "bytes_of_str"
           [ B.prim "concat" [ B.v "key"; B.s "="; B.v "value"; B.s "\n" ] ]);
      B.disk_append ~disk:disk_name ~path:(B.s "commitlog/log") ~data:(B.v "entry");
      B.sync "cs.memtable_lock"
        [
          B.state_get ~bind:"mt" ~global:"cs.memtable";
          B.state_set ~global:"cs.memtable"
            ~value:(B.prim "map_put" [ B.v "mt"; B.v "key"; B.v "value" ]);
        ];
      B.mem_alloc ~pool:mem_name ~size:(B.len (B.v "value") +: B.i 48);
      B.return_unit;
    ]

let do_read =
  B.func "do_read" ~params:[ "key" ]
    [
      B.sync "cs.memtable_lock" [ B.state_get ~bind:"mt" ~global:"cs.memtable" ];
      B.if_ (B.prim "map_mem" [ B.v "mt"; B.v "key" ])
        [ B.return (B.prim "map_get" [ B.v "mt"; B.v "key" ]) ]
        [];
      (* not in the memtable: consult the freshest SSTable index *)
      B.state_get ~bind:"sstidx" ~global:"cs.sstable_index";
      B.return (B.prim "map_get_opt" [ B.v "sstidx"; B.v "key"; B.s "" ]);
    ]

let write_loop =
  B.func "write_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:request_queue ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "req" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.let_ "op" (B.prim "map_get_opt" [ B.v "req"; B.s "op"; B.s "" ]);
              B.let_ "key" (B.prim "map_get_opt" [ B.v "req"; B.s "key"; B.s "" ]);
              B.let_ "reply" (B.prim "map_get_opt" [ B.v "req"; B.s "reply"; B.s "" ]);
              B.if_ (B.v "op" =: B.s "write")
                [
                  B.let_ "value" (B.prim "map_get_opt" [ B.v "req"; B.s "value"; B.s "" ]);
                  B.call "do_write" [ B.v "key"; B.v "value" ];
                  B.if_ (B.v "reply" <>: B.s "")
                    [ B.queue_put ~queue:replies_queue ~data:(reply_msg (B.s "ok")) ]
                    [];
                ]
                [
                  B.if_ (B.v "op" =: B.s "read")
                    [
                      B.call ~bind:"res" "do_read" [ B.v "key" ];
                      B.if_ (B.v "reply" <>: B.s "")
                        [
                          B.queue_put ~queue:replies_queue
                            ~data:(reply_msg (B.prim "concat" [ B.s "val:"; B.v "res" ]));
                        ]
                        [];
                    ]
                    [ B.log (B.s "unknown cs op") ];
                ];
            ]
            [];
        ];
    ]

let flush_memtable =
  B.func "flush_memtable" ~params:[]
    [
      B.sync "cs.memtable_lock"
        [
          B.state_get ~bind:"mt" ~global:"cs.memtable";
          B.let_ "n" (B.prim "map_len" [ B.v "mt" ]);
          B.if_ (B.v "n" >=: B.i memtable_flush_threshold)
            [
              B.state_get ~bind:"gen" ~global:"cs.sstable_gen";
              B.state_set ~global:"cs.sstable_gen" ~value:(B.v "gen" +: B.i 1);
              B.let_ "path"
                (B.prim "concat" [ B.s "sst/"; B.prim "str_of_int" [ B.v "gen" ] ]);
              B.let_ "data" (B.prim "bytes_of_str" [ B.prim "serialize" [ B.v "mt" ] ]);
              B.compute_us 6 ~note:"sort and encode sstable";
              B.disk_write ~disk:disk_name ~path:(B.v "path") ~data:(B.v "data");
              (* summary sidecar in the same sstable family: folded away by
                 the similar-operation dedup *)
              B.disk_write ~disk:disk_name
                ~path:(B.prim "concat" [ B.v "path"; B.s ".summary" ])
                ~data:(B.prim "bytes_of_str"
                         [ B.prim "str_of_int" [ B.prim "map_len" [ B.v "mt" ] ] ]);
              B.disk_sync ~disk:disk_name;
              (* publish to the read path, then clear the memtable *)
              B.state_get ~bind:"sstidx" ~global:"cs.sstable_index";
              B.foreach "k" (B.prim "map_keys" [ B.v "mt" ])
                [
                  B.assign "sstidx"
                    (B.prim "map_put"
                       [ B.v "sstidx"; B.v "k"; B.prim "map_get" [ B.v "mt"; B.v "k" ] ]);
                ];
              B.state_set ~global:"cs.sstable_index" ~value:(B.v "sstidx");
              B.state_set ~global:"cs.memtable" ~value:(B.prim "map_empty" []);
              B.mem_free ~pool:mem_name ~size:(B.v "n" *: B.i 48);
            ]
            [];
        ];
      B.return_unit;
    ]

let flush_loop =
  B.func "flush_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 300; B.call "flush_memtable" [] ] ]

(* The background compaction task: merge SSTables and drop the inputs.
   This is the paper's "silent failure in a compaction background task".
   The [spin_bug] variant loops forever on a condition it never changes —
   a pure infinite loop performing no vulnerable operations, so only the
   progress (context-staleness) checkers can see it. *)
let compact_once ~spin_bug =
  B.func "compact_once" ~params:[]
    [
      B.disk_list ~bind:"ssts" ~disk:disk_name ~prefix:(B.s "sst/") ();
      B.if_
        (B.len (B.v "ssts") >: B.i compaction_fanin)
        ((if spin_bug then
            (* latent bug: after a couple of healthy compactions, a stale
               loop condition spins forever *)
            [
              B.state_get ~bind:"done_so_far" ~global:"cs.compactions";
              B.if_
                (B.v "done_so_far" >=: B.i 2)
                [
                  B.while_
                    (B.len (B.v "ssts") >: B.i 0)
                    [ B.compute_us 20 ~note:"spinning on a stale condition" ];
                ]
                [];
            ]
          else [])
        @ [
          B.let_ "merged" (B.prim "bytes_of_str" [ B.s "" ]);
          B.foreach "sst" (B.v "ssts")
            [
              B.disk_read ~bind:"chunk" ~disk:disk_name ~path:(B.v "sst") ();
              B.assign "merged" (B.prim "bytes_cat" [ B.v "merged"; B.v "chunk" ]);
              B.compute_us 8 ~note:"merge rows";
            ];
          B.state_get ~bind:"gen" ~global:"cs.sstable_gen";
          B.state_set ~global:"cs.sstable_gen" ~value:(B.v "gen" +: B.i 1);
          B.let_ "cpath"
            (B.prim "concat" [ B.s "sst/"; B.prim "str_of_int" [ B.v "gen" ] ]);
          B.disk_write ~disk:disk_name ~path:(B.v "cpath") ~data:(B.v "merged");
          B.foreach "sst" (B.v "ssts")
            [ B.disk_delete ~disk:disk_name ~path:(B.v "sst") ];
          B.state_get ~bind:"cdone" ~global:"cs.compactions";
          B.state_set ~global:"cs.compactions" ~value:(B.v "cdone" +: B.i 1);
        ])
        [];
      B.return_unit;
    ]

let compaction_loop =
  B.func "compaction_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 1000; B.call "compact_once" [] ] ]

let gossip_loop =
  B.func "gossip_loop" ~params:[]
    [
      B.while_true
        [
          B.sleep_ms 1000;
          B.net_send ~net:net_name ~dst:(B.s seed_node) ~payload:(B.s "gossip:cs1:alive");
        ];
    ]

let entries = [ "writer"; "flusher"; "compactor"; "gossip" ]

let program ?(spin_bug = false) () =
  B.program "cstore"
    ~funcs:
      [
        write_loop;
        do_write;
        do_read;
        flush_loop;
        flush_memtable;
        compaction_loop;
        compact_once ~spin_bug;
        gossip_loop;
      ]
    ~entries:
      [
        B.entry "writer" "write_loop";
        B.entry "flusher" "flush_loop";
        B.entry "compactor" "compaction_loop";
        B.entry "gossip" "gossip_loop";
      ]

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Runtime.resources;
  prog : Ast.program;
  main : Interp.t;
  disk : Wd_env.Disk.t;
  net : Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
}

let boot ?engine ?(mem_capacity = 64 * 1024 * 1024) ~sched ~reg ~prog () =
  (* environment randomness derives from the scheduler's seed, so a run is
     a pure function of that one seed *)
  let rng = Wd_sim.Rng.split (Wd_sim.Sched.rng sched) in
  let res = Runtime.create ~reg ~rng in
  let disk = Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) disk_name in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) net_name in
  let mem = Wd_env.Memory.create ~reg ~capacity:mem_capacity mem_name in
  Runtime.add_disk res disk;
  Runtime.add_net res net;
  Runtime.add_mem res mem;
  List.iter (Wd_env.Net.register net) [ node; seed_node ];
  Runtime.set_global res "cs.memtable" (Ast.VMap []);
  Runtime.set_global res "cs.sstable_index" (Ast.VMap []);
  Runtime.set_global res "cs.sstable_gen" (Ast.VInt 0);
  Runtime.set_global res "cs.compactions" (Ast.VInt 0);
  let main = Interp.create ?engine ~node ~res prog in
  let rpc = Rpcq.create ~sched ~res ~request_queue ~replies_queue in
  { sched; reg; res; prog; main; disk; net; mem; rpc }

let start t =
  let tasks = Interp.start ~entries t.main t.sched in
  ignore (Rpcq.spawn_dispatcher t.rpc);
  tasks

let write ?timeout t ~key ~value =
  Rpcq.request ?timeout t.rpc
    [ ("op", Ast.VStr "write"); ("key", Ast.VStr key); ("value", Ast.VStr value) ]

let read ?timeout t ~key =
  Rpcq.request ?timeout t.rpc [ ("op", Ast.VStr "read"); ("key", Ast.VStr key) ]

let compactions t =
  match Runtime.global t.res "cs.compactions" with Ast.VInt n -> n | _ -> 0

let sstable_count t =
  List.length
    (List.filter
       (fun p -> String.length p >= 4 && String.sub p 0 4 = "sst/")
       (Wd_env.Disk.paths t.disk))
