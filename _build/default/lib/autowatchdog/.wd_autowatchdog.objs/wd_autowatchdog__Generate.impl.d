lib/autowatchdog/generate.ml: Atomic Buffer Config Digest Fmt Format Hashtbl Int64 List Marshal Mutex Recipes String Wd_analysis Wd_env Wd_ir Wd_sim Wd_watchdog
