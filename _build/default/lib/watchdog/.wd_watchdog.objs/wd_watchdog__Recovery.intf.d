lib/watchdog/recovery.mli: Format Report Wd_sim
