lib/autowatchdog/reproduce.mli: Format Generate Wd_env Wd_watchdog
