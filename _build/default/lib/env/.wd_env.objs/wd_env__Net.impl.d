lib/env/net.ml: Faultreg Fmt Hashtbl Int64 List Option Wd_sim
