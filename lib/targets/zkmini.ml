(* zkmini — a ZooKeeper-like coordination service, structured to reproduce:

   - Figure 2's snapshot serialisation call chain
     (serialize_snapshot -> serialize -> serialize_node, with the vulnerable
     write inside a synchronized block);
   - the ZOOKEEPER-2201 gray failure (§4.2): a network fault blocks the
     leader's remote sync *inside the commit critical section*, hanging all
     write processing, while the heartbeat protocol and the admin command
     keep answering — so extrinsic detectors see a healthy leader.

   Leader pipeline: listener -> prep (zxid assignment) -> sync (txn log +
   quorum replication + periodic snapshot) -> final (apply + reply).
   Followers apply replicated txns to their own log. *)

open Wd_ir
module B = Builder

let ( =: ) = B.( =: )
let ( <>: ) = B.( <>: )
let ( +: ) = B.( +: )
let ( %: ) = B.( %: )
let ( ^: ) = B.( ^: )

let leader_node = "zkL"
let follower1 = "zkF1"
let follower2 = "zkF2"
let monitor_node = "zkmon"
let disk_name = "zk.disk"
let follower_disk_name = "zk.fdisk"
let net_name = "zk.net"
let mem_name = "zk.mem"
let request_queue = "zk.requests"
let admin_queue = "zk.admin"
let replies_queue = "zk.replies"
let snap_count = 20 (* txns between snapshots, like ZooKeeper's snapCount *)

let reply_msg data =
  B.prim "map_put"
    [
      B.prim "map_put" [ B.prim "map_empty" []; B.s "id"; B.v "reply" ];
      B.s "data";
      data;
    ]

let listener_loop =
  B.func "listener_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:request_queue ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "req" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.compute_us 1 ~note:"session check";
              B.queue_put ~queue:"zk.prep_q" ~data:(B.v "req");
            ]
            [];
        ];
    ]

let prep_loop =
  B.func "prep_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:"zk.prep_q" ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "req" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.state_get ~bind:"zxid" ~global:"zk.zxid";
              B.state_set ~global:"zk.zxid" ~value:(B.v "zxid" +: B.i 1);
              B.let_ "txn"
                (B.prim "map_put"
                   [ B.v "req"; B.s "zxid"; B.prim "str_of_int" [ B.v "zxid" ] ]);
              B.compute_us 2 ~note:"build txn header";
              B.queue_put ~queue:"zk.sync_q" ~data:(B.v "txn");
            ]
            [];
        ];
    ]

(* The commit path: log locally and replicate to the quorum while holding
   the commit lock — the critical section at the heart of ZOOKEEPER-2201. *)
let commit_txn =
  B.func "commit_txn" ~params:[ "txn" ]
    [
      B.let_ "entry" (B.prim "bytes_of_str" [ B.prim "serialize" [ B.v "txn" ] ]);
      B.sync "zk.commit_lock"
        [
          B.disk_append ~disk:disk_name ~path:(B.s "txnlog/log") ~data:(B.v "entry");
          B.net_send ~net:net_name ~dst:(B.s follower1) ~payload:(B.v "txn");
          B.net_send ~net:net_name ~dst:(B.s follower2) ~payload:(B.v "txn");
        ];
      B.return_unit;
    ]

let sync_loop =
  B.func "sync_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:"zk.sync_q" ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "txn" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.call "commit_txn" [ B.v "txn" ];
              B.state_get ~bind:"tc" ~global:"zk.txncount";
              B.state_set ~global:"zk.txncount" ~value:(B.v "tc" +: B.i 1);
              B.if_
                ((B.v "tc" +: B.i 1) %: B.i snap_count =: B.i 0)
                [ B.call "serialize_snapshot" [] ]
                [];
              B.queue_put ~queue:"zk.final_q" ~data:(B.v "txn");
            ]
            [];
        ];
    ]

(* Figure 2's chain. serialize_node holds the node lock around the actual
   record write, as SyncRequestProcessor.serializeSnapshot does. *)
let serialize_snapshot =
  B.func "serialize_snapshot" ~params:[]
    [
      B.state_get ~bind:"zxid" ~global:"zk.zxid";
      B.let_ "snapname"
        (B.prim "concat" [ B.s "snapshot/snap."; B.prim "str_of_int" [ B.v "zxid" ] ]);
      B.call "serialize" [ B.v "snapname" ];
      B.return_unit;
    ]

let serialize =
  B.func "serialize" ~params:[ "path" ]
    [
      B.state_set ~global:"zk.scount" ~value:(B.i 0);
      B.call "serialize_node" [ B.v "path" ];
      B.return_unit;
    ]

let serialize_node =
  B.func "serialize_node" ~params:[ "path" ]
    [
      B.state_get ~bind:"tree" ~global:"zk.tree";
      B.let_ "data" (B.prim "bytes_of_str" [ B.prim "serialize" [ B.v "tree" ] ]);
      B.sync "zk.node_lock"
        [
          B.state_get ~bind:"sc" ~global:"zk.scount";
          B.state_set ~global:"zk.scount" ~value:(B.v "sc" +: B.i 1);
          B.disk_write ~disk:disk_name ~path:(B.v "path") ~data:(B.v "data");
          (* ACL record in the same snapshot family (similar op, deduped) *)
          B.disk_write ~disk:disk_name
            ~path:(B.prim "concat" [ B.v "path"; B.s ".acl" ])
            ~data:(B.prim "bytes_of_str" [ B.s "world:anyone" ]);
        ];
      B.compute_us 4 ~note:"serialize children";
      B.return_unit;
    ]

let final_loop =
  B.func "final_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:"zk.final_q" ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "txn" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.let_ "op" (B.prim "map_get_opt" [ B.v "txn"; B.s "op"; B.s "" ]);
              B.let_ "path" (B.prim "map_get_opt" [ B.v "txn"; B.s "path"; B.s "" ]);
              B.let_ "reply" (B.prim "map_get_opt" [ B.v "txn"; B.s "reply"; B.s "" ]);
              B.if_ (B.v "op" =: B.s "create")
                [
                  B.let_ "data" (B.prim "map_get_opt" [ B.v "txn"; B.s "data"; B.s "" ]);
                  B.state_get ~bind:"tree" ~global:"zk.tree";
                  B.state_set ~global:"zk.tree"
                    ~value:(B.prim "map_put" [ B.v "tree"; B.v "path"; B.v "data" ]);
                  B.mem_alloc ~pool:mem_name ~size:(B.len (B.v "data") +: B.i 32);
                  B.if_ (B.v "reply" <>: B.s "")
                    [ B.queue_put ~queue:replies_queue ~data:(reply_msg (B.s "ok")) ]
                    [];
                ]
                [
                  B.if_ (B.v "op" =: B.s "get")
                    [
                      B.state_get ~bind:"tree" ~global:"zk.tree";
                      B.let_ "res"
                        (B.prim "map_get_opt" [ B.v "tree"; B.v "path"; B.s "" ]);
                      B.if_ (B.v "reply" <>: B.s "")
                        [
                          B.queue_put ~queue:replies_queue
                            ~data:(reply_msg (B.s "val:" ^: B.v "res"));
                        ]
                        [];
                    ]
                    [ B.log (B.s "unknown zk op") ];
                ];
            ]
            [];
        ];
    ]

(* Read path served without touching the write pipeline: reads stay healthy
   during ZK-2201, making the failure gray. *)

let ping_loop =
  B.func "ping_loop" ~params:[]
    [
      B.while_true
        [
          B.sleep_ms 500;
          B.net_send ~net:net_name ~dst:(B.s monitor_node) ~payload:(B.s "ping:zkL");
        ];
    ]

(* The admin "ruok" command: served by its own thread, independent of the
   request pipeline — answers "imok" even while writes hang (§4.2). *)
let admin_loop =
  B.func "admin_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:admin_queue ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "req" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.let_ "reply" (B.prim "map_get_opt" [ B.v "req"; B.s "reply"; B.s "" ]);
              B.if_ (B.v "reply" <>: B.s "")
                [ B.queue_put ~queue:replies_queue ~data:(reply_msg (B.s "imok")) ]
                [];
            ]
            [];
        ];
    ]

let follower_loop =
  B.func "follower_loop" ~params:[ "tag" ]
    [
      B.while_true
        [
          B.net_recv ~bind:"m" ~net:net_name ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "m"; B.s "ok"; B.bconst false ])
            [
              B.let_ "txn" (B.prim "map_get" [ B.v "m"; B.s "payload" ]);
              B.let_ "entry" (B.prim "bytes_of_str" [ B.prim "serialize" [ B.v "txn" ] ]);
              B.let_ "logpath" (B.prim "concat" [ B.s "txnlog/"; B.v "tag" ]);
              B.disk_append ~disk:follower_disk_name ~path:(B.v "logpath")
                ~data:(B.v "entry");
              B.compute_us 2 ~note:"apply txn";
            ]
            [];
        ];
    ]

let leader_entries =
  [ "listener"; "prep"; "sync"; "final"; "ping"; "admin" ]

let program () =
  B.program "zkmini"
    ~funcs:
      [
        listener_loop;
        prep_loop;
        sync_loop;
        commit_txn;
        serialize_snapshot;
        serialize;
        serialize_node;
        final_loop;
        ping_loop;
        admin_loop;
        follower_loop;
      ]
    ~entries:
      [
        B.entry "listener" "listener_loop";
        B.entry "prep" "prep_loop";
        B.entry "sync" "sync_loop";
        B.entry "final" "final_loop";
        B.entry "ping" "ping_loop";
        B.entry "admin" "admin_loop";
        B.entry "follower1" "follower_loop" ~args:[ Ast.VStr "f1" ];
        B.entry "follower2" "follower_loop" ~args:[ Ast.VStr "f2" ];
      ]

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Runtime.resources;
  prog : Ast.program;
  leader : Interp.t;
  f1 : Interp.t;
  f2 : Interp.t;
  disk : Wd_env.Disk.t;
  fdisk : Wd_env.Disk.t;
  net : Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
  admin_rpc : Rpcq.t;
}

let boot ?engine ?(mem_capacity = 64 * 1024 * 1024) ~sched ~reg ~prog () =
  (* environment randomness derives from the scheduler's seed, so a run is
     a pure function of that one seed *)
  let rng = Wd_sim.Rng.split (Wd_sim.Sched.rng sched) in
  let res = Runtime.create ~reg ~rng in
  let disk = Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) disk_name in
  let fdisk =
    Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) follower_disk_name
  in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) net_name in
  let mem = Wd_env.Memory.create ~reg ~capacity:mem_capacity mem_name in
  Runtime.add_disk res disk;
  Runtime.add_disk res fdisk;
  Runtime.add_net res net;
  Runtime.add_mem res mem;
  List.iter (Wd_env.Net.register net)
    [ leader_node; follower1; follower2; monitor_node ];
  Runtime.set_global res "zk.zxid" (Ast.VInt 0);
  Runtime.set_global res "zk.txncount" (Ast.VInt 0);
  Runtime.set_global res "zk.scount" (Ast.VInt 0);
  Runtime.set_global res "zk.tree" (Ast.VMap []);
  let leader = Interp.create ?engine ~node:leader_node ~res prog in
  let f1 = Interp.create ?engine ~node:follower1 ~res prog in
  let f2 = Interp.create ?engine ~node:follower2 ~res prog in
  let rpc =
    Rpcq.create ~sched ~res ~request_queue ~replies_queue
  in
  let admin_rpc =
    Rpcq.create ~sched ~res ~request_queue:admin_queue ~replies_queue
  in
  { sched; reg; res; prog; leader; f1; f2; disk; fdisk; net; mem; rpc; admin_rpc }

let start t =
  let l = Interp.start ~entries:leader_entries t.leader t.sched in
  let a = Interp.start ~entries:[ "follower1" ] t.f1 t.sched in
  let b = Interp.start ~entries:[ "follower2" ] t.f2 t.sched in
  ignore (Rpcq.spawn_dispatcher t.rpc);
  l @ a @ b

let create ?timeout t ~path ~data =
  Rpcq.request ?timeout t.rpc
    [ ("op", Ast.VStr "create"); ("path", Ast.VStr path); ("data", Ast.VStr data) ]

let get ?timeout t ~path =
  Rpcq.request ?timeout t.rpc [ ("op", Ast.VStr "get"); ("path", Ast.VStr path) ]

(* The admin `ruok` four-letter command. *)
let ruok ?timeout t = Rpcq.request ?timeout t.admin_rpc [ ("op", Ast.VStr "ruok") ]

let zxid t =
  match Runtime.global t.res "zk.zxid" with Ast.VInt n -> n | _ -> 0

let txncount t =
  match Runtime.global t.res "zk.txncount" with Ast.VInt n -> n | _ -> 0
