(* Simulated disk: a flat path -> bytes store with a latency model and
   injectable partial faults (slow, hang, error, silent corruption). The
   latency model charges a fixed seek cost plus a per-byte cost, scaled by
   any active Slow_factor fault — that is how fail-slow devices and limplock
   are modelled. *)

exception Io_error of string

(* Files keep appended chunks unmaterialized so a hot append path is O(1)
   in the chunk, not O(file): `Bytes.cat` per append is quadratic over a
   log's lifetime and its large short-lived blocks dominate major-GC
   pacing under load (measured 83% of zkmini request wall time). Chunks
   are concatenated lazily on the first read. *)
type file = {
  mutable head : Bytes.t;
  mutable tail : Bytes.t list; (* newest first *)
}

let materialize f =
  (match f.tail with
  | [] -> ()
  | tail ->
      f.head <- Bytes.concat Bytes.empty (f.head :: List.rev tail);
      f.tail <- []);
  f.head

let file_of_bytes b = { head = b; tail = [] }

type t = {
  name : string;
  files : (string, file) Hashtbl.t;
  reg : Faultreg.t;
  rng : Wd_sim.Rng.t;
  seek_ns : int64;
  per_byte_ns : int64;
  (* op -> path -> interned fault-site id; only populated while faults are
     armed, so clean runs never pay for site strings at all. *)
  site_ids : (string, (string, Wd_sim.Site.id) Hashtbl.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable synced : int;
}

let create ?(seek_ns = Wd_sim.Time.us 100) ?(per_byte_ns = 2L) ~reg ~rng name =
  {
    name;
    files = Hashtbl.create 64;
    reg;
    rng;
    seek_ns;
    per_byte_ns;
    site_ids = Hashtbl.create 7;
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    synced = 0;
  }

let name d = d.name

let stats d =
  (d.reads, d.writes, d.bytes_read, d.bytes_written, d.synced)

(* Plain concatenation: this runs on every disk op and [Fmt.str] is ~4x
   the cost of [^] chains. *)
let site d ~op ~path = "disk:" ^ d.name ^ ":" ^ op ^ ":" ^ path

(* Interned site for (op, path): the string is built once per distinct pair
   and subsequent consults reuse the canonical copy. Only reached when the
   registry is armed; a run cap keeps pathological path diversity from
   growing the global intern table unboundedly. *)
let site_id d ~op ~path =
  let per_op =
    match Hashtbl.find_opt d.site_ids op with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 32 in
        Hashtbl.add d.site_ids op h;
        h
  in
  match Hashtbl.find_opt per_op path with
  | Some id -> id
  | None ->
      let id = Wd_sim.Site.intern (site d ~op ~path) in
      if Hashtbl.length per_op < 4096 then Hashtbl.add per_op path id;
      id

(* Model the cost of touching [len] bytes, then apply injected behaviours.
   Returns [corrupt] so the caller can damage the payload silently. *)
let perform d ~op ~path ~len =
  let s = Wd_sim.Sched.get () in
  let now = Wd_sim.Sched.now s in
  let behaviours =
    if Faultreg.armed d.reg then
      Faultreg.consult d.reg ~site:(Wd_sim.Site.str (site_id d ~op ~path)) ~now
    else []
  in
  let factor = Faultreg.slow_factor behaviours in
  let modelled =
    Int64.add d.seek_ns (Int64.mul d.per_byte_ns (Int64.of_int len))
  in
  let jitter =
    Wd_sim.Rng.exponential d.rng ~mean:(Int64.to_float d.seek_ns /. 4.0)
  in
  let cost =
    Int64.of_float ((Int64.to_float modelled +. jitter) *. factor)
  in
  Wd_sim.Sched.sleep cost;
  match
    Faultreg.apply_common behaviours ~now ~stop_of:(Faultreg.stop_of d.reg)
  with
  | Result.Error msg ->
      raise (Io_error (Fmt.str "%s %s %s: %s" d.name op path msg))
  | Result.Ok (corrupt, _drop) -> corrupt

let corrupt_bytes rng b =
  if Bytes.length b > 0 then begin
    let i = Wd_sim.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5f))
  end

let write ?as_path d ~path data =
  let site_path = Option.value as_path ~default:path in
  let corrupt = perform d ~op:"write" ~path:site_path ~len:(Bytes.length data) in
  let stored = Bytes.copy data in
  if corrupt then corrupt_bytes d.rng stored;
  Hashtbl.replace d.files path (file_of_bytes stored);
  d.writes <- d.writes + 1;
  d.bytes_written <- d.bytes_written + Bytes.length data

let append ?as_path d ~path data =
  let site_path = Option.value as_path ~default:path in
  let corrupt = perform d ~op:"append" ~path:site_path ~len:(Bytes.length data) in
  let extra = Bytes.copy data in
  if corrupt then corrupt_bytes d.rng extra;
  (match Hashtbl.find_opt d.files path with
  | Some f -> f.tail <- extra :: f.tail
  | None -> Hashtbl.replace d.files path (file_of_bytes extra));
  d.writes <- d.writes + 1;
  d.bytes_written <- d.bytes_written + Bytes.length data

let file_length f =
  Bytes.length f.head
  + List.fold_left (fun acc c -> acc + Bytes.length c) 0 f.tail

let read ?as_path d ~path =
  let site_path = Option.value as_path ~default:path in
  let len =
    match Hashtbl.find_opt d.files path with
    | Some f -> file_length f
    | None -> 0
  in
  let corrupt = perform d ~op:"read" ~path:site_path ~len in
  match Hashtbl.find_opt d.files path with
  | None -> raise (Io_error (Fmt.str "%s read %s: no such file" d.name path))
  | Some f ->
      let b = materialize f in
      d.reads <- d.reads + 1;
      d.bytes_read <- d.bytes_read + Bytes.length b;
      let out = Bytes.copy b in
      if corrupt then corrupt_bytes d.rng out;
      out

let exists d ~path =
  ignore (perform d ~op:"stat" ~path ~len:0);
  Hashtbl.mem d.files path

let delete ?as_path d ~path =
  let site_path = Option.value as_path ~default:path in
  ignore (perform d ~op:"delete" ~path:site_path ~len:0);
  Hashtbl.remove d.files path

let sync d =
  ignore (perform d ~op:"sync" ~path:"-" ~len:0);
  d.synced <- d.synced + 1

let list d ~prefix =
  ignore (perform d ~op:"list" ~path:prefix ~len:0);
  Hashtbl.fold
    (fun path _ acc ->
      if
        String.length path >= String.length prefix
        && String.sub path 0 (String.length prefix) = prefix
      then path :: acc
      else acc)
    d.files []
  |> List.sort String.compare

(* Direct (cost-free, fault-free) access for tests and ground-truth
   comparisons. *)
let peek d ~path = Option.map materialize (Hashtbl.find_opt d.files path)

let paths d =
  Hashtbl.fold (fun p _ acc -> p :: acc) d.files [] |> List.sort String.compare

let poke d ~path data =
  Hashtbl.replace d.files path (file_of_bytes (Bytes.copy data))
let file_count d = Hashtbl.length d.files

(* FNV-1a, used by checkers to validate stored payloads. *)
let checksum b =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    b;
  !h
