(* The one place process environment is read. Historically WD_JOBS,
   WD_MINOR_HEAP and WD_ENGINE were parsed ad hoc where they were consumed
   (pool, interpreter), each with its own silent-fallback rules; now every
   consumer goes through this typed loader and a malformed value is a
   diagnosable error instead of whatever the local parser happened to do.

   This library sits below everything (no deps), so both [Wd_parallel.Pool]
   and [Wd_ir.Interp] can consume it; [Wd_harness.Cli.config] re-exposes the
   same loader with the engine lifted to the interpreter's type. *)

type engine = [ `Compiled | `Treewalk ]

type t = {
  jobs : int option;  (* WD_JOBS: domain-pool width; must be positive *)
  minor_heap_words : int option;
      (* WD_MINOR_HEAP: per-domain minor heap, words. Values below the
         runtime's 16k-word floor are documented as ignored (None). *)
  engine : engine option;  (* WD_ENGINE: compiled | treewalk *)
}

let empty = { jobs = None; minor_heap_words = None; engine = None }

let minor_heap_floor = 16_384

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "compiled" -> Some `Compiled
  | "treewalk" | "tree-walk" | "treewalker" -> Some `Treewalk
  | _ -> None

let ( let* ) = Result.bind

let parse_jobs = function
  | None | Some "" -> Ok None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Ok (Some n)
      | Some _ | None ->
          Error ("WD_JOBS: expected a positive integer, got " ^ String.escaped s)
      )

let parse_minor_heap = function
  | None | Some "" -> Ok None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= minor_heap_floor -> Ok (Some n)
      | Some _ -> Ok None (* below the runtime floor: documented as ignored *)
      | None ->
          Error
            ("WD_MINOR_HEAP: expected an integer word count, got "
            ^ String.escaped s))

let parse_engine = function
  | None | Some "" -> Ok None
  | Some s -> (
      match engine_of_string s with
      | Some e -> Ok (Some e)
      | None ->
          Error ("WD_ENGINE: unknown engine " ^ s ^ " (compiled|treewalk)"))

let load () =
  let* jobs = parse_jobs (Sys.getenv_opt "WD_JOBS") in
  let* minor_heap_words = parse_minor_heap (Sys.getenv_opt "WD_MINOR_HEAP") in
  let* engine = parse_engine (Sys.getenv_opt "WD_ENGINE") in
  Ok { jobs; minor_heap_words; engine }

(* Memoised snapshot: the environment is immutable for the process's
   purposes, and consumers sit on hot-ish paths (pool sizing at creation,
   engine default at first interpreter construction). *)
let cache = ref None

let get () =
  match !cache with
  | Some c -> c
  | None -> (
      match load () with
      | Ok c ->
          cache := Some c;
          c
      | Error msg -> failwith msg)
