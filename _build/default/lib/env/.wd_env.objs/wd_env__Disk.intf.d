lib/env/disk.mli: Bytes Faultreg Wd_sim
