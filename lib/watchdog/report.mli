(** Failure reports produced by watchdog checkers: a verdict, the pinpointed
    code location, and the failure-inducing payload for diagnosis and
    reproduction. *)

type fkind =
  | Hang                    (** liveness: did not complete in time *)
  | Slow                    (** liveness: completed beyond its latency budget *)
  | Error_sig of string     (** safety: an operation raised an error *)
  | Assert_fail of string   (** safety: an embedded check failed *)
  | Checker_crash of string (** the checker itself died — still a signal *)

type t = {
  at : int64;
  checker_id : string;
  fkind : fkind;
  loc : Wd_ir.Loc.t option;
  op_desc : string;
  payload : (string * Wd_ir.Ast.value) list;
  mutable validated : bool option;  (** probe-after-mimic confirmation *)
}

val make :
  at:int64 ->
  checker_id:string ->
  fkind:fkind ->
  ?loc:Wd_ir.Loc.t ->
  ?op_desc:string ->
  ?payload:(string * Wd_ir.Ast.value) list ->
  unit ->
  t

val is_liveness : t -> bool
val fkind_name : fkind -> string

val to_wire : t -> string
(** Canonical wire encoding: every field, including the captured payload
    values, in a tagged length-prefixed form. Deterministic — the same
    report encodes to the same bytes on every run. *)

val of_wire : string -> (t, string) result
(** Decode {!to_wire} output. Round-trips structurally:
    [of_wire (to_wire r) = Ok r]. *)

val pp : Format.formatter -> t -> unit
