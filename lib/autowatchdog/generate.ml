(* AutoWatchdog end-to-end (§4): analyse a program, reduce it, package the
   generated checkers with a generic driver, and instrument the main program
   with context hooks.

     analyze  : program -> generated        (static; no simulation needed)
     attach   : wire a generated watchdog into a running node

   [attach] is the runtime half: it creates the context table, registers the
   hook specs and sink on the main-program interpreter, builds one
   checker-mode interpreter per unit, and registers the resulting mimic
   checkers with a watchdog driver. *)

open Wd_ir.Ast
module Reduction = Wd_analysis.Reduction
module Interp = Wd_ir.Interp
module Checker = Wd_watchdog.Checker
module Report = Wd_watchdog.Report
module Wcontext = Wd_watchdog.Wcontext

type generated = {
  config : Config.t;
  red : Reduction.result;
  units : Reduction.unit_ list; (* after recipe enhancement *)
  watchdog_prog : program;      (* all unit functions, one program *)
  watchdog_compiled : Interp.compiled option;
      (* closure-compiled form of [watchdog_prog], warmed at analysis time
         when the default engine is [`Compiled] so per-unit checker
         interpreters skip even the compile-cache digest. None under a
         treewalk default; [checker_of_unit] falls back to
         [Interp.precompile] if the engine changes afterwards. *)
  callgraph : Wd_analysis.Callgraph.t;
      (* of the original program, built once: region attachment, component
         registration and campaign localisation all need it, and it is
         read-only after construction (safe to share across domains) *)
}

let analyze ?(config = Config.default) prog =
  let red = Reduction.reduce ~opts:config.Config.opts ~cfg:config.Config.vuln prog in
  let units =
    if config.Config.enhance then List.map Recipes.enhance_unit red.Reduction.units
    else red.Reduction.units
  in
  let watchdog_prog =
    {
      pname = prog.pname ^ "__watchdog";
      funcs = List.map (fun (u : Reduction.unit_) -> u.Reduction.ufunc) units;
      entries = [];
    }
  in
  let watchdog_compiled =
    match Interp.default_engine () with
    | `Compiled -> Some (Interp.precompile watchdog_prog)
    | `Treewalk -> None
  in
  { config; red; units; watchdog_prog; watchdog_compiled;
    callgraph = Wd_analysis.Callgraph.build prog }

(* --- analysis cache ---

   A campaign re-boots the same target system for every (scenario, mode,
   seed) cell, and each boot used to re-run the whole reduction pipeline on
   a byte-identical program. The cache keys on a digest of the marshalled
   (config, program) pair — both are pure data — so N runs of one system
   pay for one analysis. The table is domain-local ([Domain.DLS]): each
   campaign worker analyses a system at most once and then hits its own
   table with no lock on the lookup path — the persistent pool keeps worker
   domains (and so these caches) alive across batches. Analysis is a pure
   function of (config, program), so per-domain copies are structurally
   identical and campaign results stay byte-identical at any width; within
   one domain, repeated boots still share the same [generated] physically.
   Invalidation is epoch-based — [clear_cache] bumps a global epoch and
   each domain lazily resets its table on its next lookup — because one
   domain cannot reach into another's storage. *)

let digest ~config prog = Digest.string (Marshal.to_string (config, prog) [])

let cache_epoch = Atomic.make 0
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

type cache_slot = {
  mutable cs_epoch : int;
  cs_tbl : (string, generated) Hashtbl.t;
}

let cache_key : cache_slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cs_epoch = -1; cs_tbl = Hashtbl.create 16 })

let local_cache () =
  let slot = Domain.DLS.get cache_key in
  let now = Atomic.get cache_epoch in
  if slot.cs_epoch <> now then begin
    Hashtbl.reset slot.cs_tbl;
    slot.cs_epoch <- now
  end;
  slot.cs_tbl

let cache_stats () = (Atomic.get cache_hits, Atomic.get cache_misses)

let clear_cache () =
  Atomic.incr cache_epoch;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

let analyze_cached ?(config = Config.default) prog =
  let key = digest ~config prog in
  let tbl = local_cache () in
  match Hashtbl.find_opt tbl key with
  | Some g ->
      Atomic.incr cache_hits;
      g
  | None ->
      Atomic.incr cache_misses;
      let g = analyze ~config prog in
      Hashtbl.add tbl key g;
      g

(* Build the runtime checker for one unit: a checker-mode interpreter over
   the watchdog program, fed by the unit's context. *)
let checker_of_unit ?engine g ~sched ~wctx ~res ~node (u : Reduction.unit_) =
  let cfg = g.config in
  let engine =
    match engine with Some e -> e | None -> Interp.default_engine ()
  in
  let ci =
    match engine with
    | `Treewalk ->
        Interp.create ~engine:`Treewalk ~mode:Interp.Checker
          ~lock_timeout:cfg.Config.lock_timeout ~node ~res g.watchdog_prog
    | `Compiled ->
        let compiled =
          match g.watchdog_compiled with
          | Some cp -> cp
          | None -> Interp.precompile g.watchdog_prog
        in
        Interp.create ~compiled ~mode:Interp.Checker
          ~lock_timeout:cfg.Config.lock_timeout ~node ~res g.watchdog_prog
  in
  let unit_id = u.Reduction.unit_id in
  let payload () = Wcontext.snapshot wctx unit_id in
  let locate () =
    let probe = Interp.probe ci in
    match Interp.current_op probe with
    | Some (loc, desc, _) -> (Some loc, desc, payload ())
    | None -> (
        match Interp.last_op probe with
        | Some loc -> (Some loc, "", payload ())
        | None -> (Some u.Reduction.anchor_loc, "", payload ()))
  in
  let last_op_time = ref None in
  let run ~now:_ =
    let now () = Wd_sim.Sched.now (Wd_sim.Sched.get ()) in
    match Wcontext.args wctx unit_id with
    | None -> Checker.Skip "checker context not ready"
    | Some args -> (
        let probe = Interp.probe ci in
        let op_ns_before = probe.Interp.op_ns in
        match Interp.call ci u.Reduction.ufunc.fname args with
        | _ ->
            last_op_time :=
              Some (Int64.of_int (probe.Interp.op_ns - op_ns_before));
            Checker.Pass
        | exception Interp.Violation { loc; vkind = "liveness"; msg } ->
            Checker.Fail
              (Report.make ~at:(now ()) ~checker_id:unit_id ~fkind:Report.Hang
                 ~loc ~op_desc:msg ~payload:(payload ()) ())
        | exception Interp.Violation { loc; vkind = _; msg } ->
            Checker.Fail
              (Report.make ~at:(now ()) ~checker_id:unit_id
                 ~fkind:(Report.Assert_fail msg) ~loc ~payload:(payload ()) ())
        | exception Wd_env.Disk.Io_error m ->
            let loc, desc, payload = locate () in
            Checker.Fail
              (Report.make ~at:(now ()) ~checker_id:unit_id
                 ~fkind:(Report.Error_sig m) ?loc ~op_desc:desc ~payload ())
        | exception Wd_env.Net.Net_error m ->
            let loc, desc, payload = locate () in
            Checker.Fail
              (Report.make ~at:(now ()) ~checker_id:unit_id
                 ~fkind:(Report.Error_sig m) ?loc ~op_desc:desc ~payload ())
        | exception Wd_env.Memory.Out_of_memory m ->
            let loc, desc, payload = locate () in
            Checker.Fail
              (Report.make ~at:(now ()) ~checker_id:unit_id
                 ~fkind:(Report.Error_sig m) ?loc ~op_desc:desc ~payload ()))
  in
  ignore sched;
  (* Mimic checks are deterministic in their context arguments, so an
     unchanged context version means an identical re-check: expose the
     version as the adaptive scheduler's dedup key. The progress checker
     below must NOT get one — a frozen version is exactly what it detects. *)
  Checker.make ~kind:Checker.Mimic ~period:cfg.Config.checker_period
    ~timeout:cfg.Config.checker_timeout ?slow_budget:cfg.Config.slow_budget
    ~locate
    ~slow_elapsed:(fun () -> !last_op_time)
    ~ctx_version:(fun () -> Wcontext.version wctx unit_id)
    ~id:unit_id run

(* Region ids whose root function is reachable from any of the given entry
   functions — used to attach a node only the checkers that watch its own
   daemons (a watchdog is intrinsic to one node, §3.1). *)
let regions_for_entry_funcs g ~entry_funcs =
  let prog = g.red.Reduction.original in
  let cg = g.callgraph in
  let reachable =
    List.sort_uniq String.compare
      (List.concat_map (fun f -> Wd_analysis.Callgraph.reachable cg f) entry_funcs)
  in
  List.filter_map
    (fun r ->
      if List.mem r.Wd_analysis.Regions.root_func reachable then
        Some r.Wd_analysis.Regions.region_id
      else None)
    (Wd_analysis.Regions.find prog)

(* Wire a generated watchdog into a running node. The main interpreter must
   have been created over [g.red.instrumented] (not the original program),
   otherwise no hooks fire and every context stays NOT_READY.

   [only_regions] restricts the attachment to checkers whose region belongs
   to this node (see [regions_for_entry_funcs]); by default every unit is
   attached — units whose hooks never fire on this node simply stay
   NOT_READY and skip.

   [progress] additionally arms one staleness checker per context-fed unit:
   once a hook has fired, the main program is expected to keep passing it;
   a context older than the threshold means the surrounding region stopped
   making progress *without* failing any mimicked operation — the
   infinite-loop/stall class that operation mimicry alone cannot see. *)
let attach ?engine ?only_regions ?progress g ~sched ~main ~driver =
  let res = Interp.resources main in
  let node = Interp.node main in
  let selected =
    match only_regions with
    | None -> g.units
    | Some regions ->
        List.filter
          (fun (u : Reduction.unit_) -> List.mem u.Reduction.region_id regions)
          g.units
  in
  let selected_ids =
    List.map (fun (u : Reduction.unit_) -> u.Reduction.unit_id) selected
  in
  let wctx = Wcontext.create () in
  List.iter
    (fun (u : Reduction.unit_) ->
      Wcontext.register_unit wctx ~unit_id:u.Reduction.unit_id
        ~params:(List.map fst u.Reduction.params))
    selected;
  List.iter
    (fun (h : Reduction.hook_insertion) ->
      if List.mem h.Reduction.hi_unit selected_ids then begin
        let captures =
          List.map (fun (p, tmp, _) -> (tmp, p)) h.Reduction.hi_captures
        in
        Wcontext.bind_hook wctx ~hook_id:h.Reduction.hi_hook_id
          ~unit_id:h.Reduction.hi_unit
          ~captures:(List.map (fun (tmp, p) -> (p, tmp)) captures);
        Interp.register_hook main ~id:h.Reduction.hi_hook_id
          {
            Interp.hook_checker = h.Reduction.hi_unit;
            hook_vars = List.map (fun (_, tmp, _) -> tmp) h.Reduction.hi_captures;
          }
      end)
    g.red.Reduction.hooks;
  Interp.set_hook_sink main (fun hook_id values ->
      Wcontext.sink wctx ~now:(Wd_sim.Sched.now sched) hook_id values);
  List.iter
    (fun u ->
      Wd_watchdog.Driver.add_checker driver
        (checker_of_unit ?engine g ~sched ~wctx ~res ~node u))
    selected;
  (match progress with
  | None -> ()
  | Some threshold ->
      List.iter
        (fun (u : Reduction.unit_) ->
          if u.Reduction.params <> [] then
            let unit_id = u.Reduction.unit_id in
            let id = "progress:" ^ unit_id in
            Wd_watchdog.Driver.add_checker driver
              (Checker.make ~kind:Checker.Mimic ~period:(Wd_sim.Time.sec 2)
                 ~timeout:(Wd_sim.Time.sec 2)
                 ~slow_budget:Wd_sim.Time.never (* liveness only *)
                 ~id
                 (fun ~now:_ ->
                   let now = Wd_sim.Sched.now sched in
                   match Wcontext.staleness wctx ~now unit_id with
                   | None -> Checker.Skip "context not ready"
                   | Some age when age > threshold ->
                       Checker.Fail
                         (Report.make ~at:now ~checker_id:id ~fkind:Report.Hang
                            ~loc:u.Reduction.anchor_loc
                            ~op_desc:
                              (Fmt.str "no progress past hook for %a"
                                 Wd_sim.Time.pp age)
                            ~payload:(Wcontext.snapshot wctx unit_id) ())
                   | Some _ -> Checker.Pass)))
        selected);
  wctx

(* Cheap-recovery wiring (§5.2): register each of the node's entry tasks as
   a microreboot component owning every function reachable from its entry
   point, so that a pinpointed report maps back to the daemon to reboot.
   Call after [Interp.start]; pass the tasks it returned, in order. *)
let register_components recovery ~sched ~main ~entries ~tasks =
  let prog = Interp.program main in
  let cg = Wd_analysis.Callgraph.build prog in
  List.iter2
    (fun entry_name task ->
      let entry =
        List.find
          (fun e -> e.Wd_ir.Ast.entry_name = entry_name)
          prog.Wd_ir.Ast.entries
      in
      let funcs = Wd_analysis.Callgraph.reachable cg entry.Wd_ir.Ast.entry_func in
      Wd_watchdog.Recovery.register recovery ~name:entry_name ~funcs
        ~respawn:(fun () ->
          match Interp.start ~entries:[ entry_name ] main sched with
          | [ task ] -> task
          | _ -> invalid_arg "register_components: entry did not respawn")
        ~task)
    entries tasks

(* Figure-3-style rendering of a generated checker, for demos and docs. *)
let render_checker_source (u : Reduction.unit_) =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "public class %s$Checker {@." u.Reduction.source_func;
  Fmt.pf ppf "  static Status %s(%s) {@." u.Reduction.unit_id
    (String.concat ", " u.Reduction.ufunc.params);
  Wd_ir.Pp.pp_block ~indent:4 ppf u.Reduction.ufunc.body;
  Fmt.pf ppf "  }@.";
  Fmt.pf ppf "  static Status %s_invoke() {@." u.Reduction.unit_id;
  Fmt.pf ppf "    Context ctx = ContextFactory.%s_context();@." u.Reduction.unit_id;
  Fmt.pf ppf "    if (ctx.status == READY)@.";
  Fmt.pf ppf "      return %s(%s);@." u.Reduction.unit_id
    (String.concat ", "
       (List.map (fun p -> "ctx.args_getter(\"" ^ p ^ "\")") u.Reduction.ufunc.params));
  Fmt.pf ppf "    else@.      LOG.debug(\"checker context not ready\");@.";
  Fmt.pf ppf "  }@.}@.";
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let pp_summary ppf g =
  Fmt.pf ppf "AutoWatchdog for %s: %a@.%d checkers generated:@."
    g.red.Reduction.original.pname Reduction.pp_stats g.red.Reduction.stats
    (List.length g.units);
  List.iter
    (fun (u : Reduction.unit_) ->
      Fmt.pf ppf "  %-40s region=%-24s anchors %a (%s)@." u.Reduction.unit_id
        u.Reduction.region_id Wd_ir.Loc.pp u.Reduction.anchor_loc
        (String.concat "," u.Reduction.keys))
    g.units
