(* Randomized fault-space sweep campaigns.

   The paper's pitch is *comprehensive* checking — coverage across the
   whole fault space — and the fixed scenario catalog (22 cells) is only a
   curated slice of it. A sweep samples that space at volume: a QCheck
   generator expands a base seed into thousands of *worlds* — catalog
   scenarios under varied watchdog modes, seeds and timing windows;
   fault-free accuracy probes; and whole fleets built through [Topology]'s
   validating constructors, injected with cluster-scoped scenarios — and
   the grid fans out over the persistent domain pool like any other
   campaign batch.

   Determinism: the grid is a pure function of (base seed, world count) —
   QCheck generators are driven by an explicit [Random.State], never the
   global RNG — and each world is a self-contained simulation, so the
   outcome list (and its digest) is byte-identical at any [--jobs] width.

   Grading: every world carries its own oracle. Scenario worlds compare
   mimic detection against the catalog's expectation and demand zero
   pre-injection reports; fault-free worlds demand zero reports of any
   class; fleet worlds reuse the fleet plane's own verdict grading
   ([Sim.result.cr_as_expected]). The summary aggregates these into the
   sweep row bench emits. *)

module Catalog = Wd_faults.Catalog
module Ccat = Wd_faults.Cluster_catalog
module Topology = Wd_cluster.Topology
module Csim = Wd_cluster.Sim
module Gen = QCheck.Gen

(* --- worlds --- *)

type world =
  | Scenario_world of {
      sw_sid : string;
      sw_mode : Systems.watchdog_mode;
      sw_seed : int;
      sw_warmup : int64;
      sw_observe : int64;
    }
  | Fault_free_world of {
      ff_system : string;
      ff_seed : int;
      ff_observe : int64;
    }
  | Fleet_world of {
      fl_csid : string;
      fl_topology : Topology.spec;
      fl_seed : int;
    }

let mode_name = function
  | Systems.Wd_generated -> "generated"
  | Systems.Wd_no_context -> "no-context"
  | Systems.Wd_none -> "none"

let sec_of t = Int64.to_int (Int64.div t 1_000_000_000L)

let world_id = function
  | Scenario_world w ->
      Fmt.str "scenario:%s:%s:seed=%d:w=%ds:o=%ds" w.sw_sid
        (mode_name w.sw_mode) w.sw_seed (sec_of w.sw_warmup)
        (sec_of w.sw_observe)
  | Fault_free_world w ->
      Fmt.str "fault-free:%s:seed=%d:o=%ds" w.ff_system w.ff_seed
        (sec_of w.ff_observe)
  | Fleet_world w ->
      Fmt.str "fleet:%s:%s:n=%d:seed=%d" w.fl_csid
        (Topology.describe w.fl_topology)
        (Topology.nodes w.fl_topology)
        w.fl_seed

(* --- generators ---

   Scenario worlds use shortened observation windows (the whole point of a
   sweep is volume), so scenarios whose mimic detection needs tens of
   simulated seconds to manifest are excluded rather than graded against a
   window they cannot meet: the slow-burn cells keep their full-window
   coverage in E2. Crash specials are excluded for the same reason E2
   excludes them — the watchdog dies with the process. *)

let slow_sids = [ "kvs-mem-leak"; "cs-compaction-spin" ]

let eligible_sids =
  lazy
    (List.filter_map
       (fun (s : Catalog.scenario) ->
         if s.Catalog.special = Some "crash" || List.mem s.Catalog.sid slow_sids
         then None
         else Some s.Catalog.sid)
       Catalog.all)

(* Fleet worlds ride the cluster catalog minus the failover cell
   (fleet-leader-limplock needs an election round trip on top of detection,
   which does not fit the sweep's shortened windows; E18 covers it). *)
let fleet_eligible ~nodes =
  List.filter_map
    (fun (s : Ccat.cscenario) ->
      if s.Ccat.csid = "fleet-leader-limplock" then None
      else if Ccat.max_node_index s < nodes then Some s.Ccat.csid
      else None)
    (Ccat.all @ Ccat.extras)

let fleet_warmup = Wd_sim.Time.sec 8
let fleet_observe = Wd_sim.Time.sec 12

let gen_mode : Systems.watchdog_mode Gen.t =
  Gen.frequencyl [ (9, Systems.Wd_generated); (1, Systems.Wd_none) ]

let gen_scenario_world st =
  let sid = Gen.oneofl (Lazy.force eligible_sids) st in
  let mode = gen_mode st in
  let seed = Gen.int_range 0 99_999 st in
  (* Warmup must cover baseline learning: the slow-burn scenarios
     (disk-slow, snap-slow) are flaky below 8 s of fault-free history, so
     the sweep varies the windows upward from the campaign default, not
     downward. *)
  let warmup = Wd_sim.Time.sec (Gen.oneofl [ 8; 10 ] st) in
  let observe = Wd_sim.Time.sec (Gen.oneofl [ 12; 15 ] st) in
  Scenario_world
    { sw_sid = sid; sw_mode = mode; sw_seed = seed; sw_warmup = warmup;
      sw_observe = observe }

let gen_fault_free_world st =
  let system = Gen.oneofl Systems.all_systems st in
  let seed = Gen.int_range 0 99_999 st in
  let observe = Wd_sim.Time.sec (Gen.oneofl [ 12; 15 ] st) in
  Fault_free_world { ff_system = system; ff_seed = seed; ff_observe = observe }

(* Every topology goes through the validating constructors — [uniform],
   [mixed], [with_link] — so a malformed spec is unrepresentable in a grid:
   a generator bug fails loudly at generation time, not mid-boot. Link
   overrides stay within the asymmetry ranges the verdict rules are
   calibrated for (hetero presets use 4 ms crossings and 256 KiB/s return
   pipes). *)
let gen_topology st =
  (* 4..6 nodes: correlation-based indictment wants a quorum of healthy
     observers, and at 3 nodes the victim's two peers are too thin a jury —
     limplock and gray-link cells flake there. (Measured: every oracle miss
     in a 400-world calibration grid was an n=3 fleet.) *)
  let nodes = Gen.int_range 4 6 st in
  let base =
    match Gen.int_range 0 2 st with
    | 0 -> Topology.uniform ~nodes Topology.Zkmini
    | 1 -> Topology.uniform ~nodes Topology.Cstore
    | _ ->
        Topology.mixed
          ~name:(Fmt.str "sweep-mix%d" nodes)
          (List.init nodes (fun _ ->
               Gen.oneofl [ Topology.Zkmini; Topology.Cstore ] st))
  in
  let n_overrides = Gen.int_range 0 2 st in
  let rec add_links spec k =
    if k = 0 then spec
    else
      let src = Gen.int_range 0 (nodes - 1) st in
      let dst = Gen.int_range 0 (nodes - 1) st in
      if src = dst then add_links spec k (* reroll; [with_link] rejects self *)
      else
        let latency = Wd_sim.Time.ms (Gen.oneofl [ 1; 2; 4 ] st) in
        let bytes_per_sec = Gen.oneofl [ 256 * 1024; 1024 * 1024 ] st in
        let spec =
          match Gen.int_range 0 2 st with
          | 0 -> Topology.with_link spec ~src ~dst ~latency ()
          | 1 -> Topology.with_link spec ~src ~dst ~bytes_per_sec ()
          | _ -> Topology.with_link spec ~src ~dst ~latency ~bytes_per_sec ()
        in
        add_links spec (k - 1)
  in
  add_links base n_overrides

let gen_fleet_world st =
  let topology = gen_topology st in
  let csid = Gen.oneofl (fleet_eligible ~nodes:(Topology.nodes topology)) st in
  let seed = Gen.int_range 0 9_999 st in
  Fleet_world { fl_csid = csid; fl_topology = topology; fl_seed = seed }

(* Grid shape: mostly single-node scenario worlds (cheap, broad), a slice
   of fault-free accuracy probes, and a thin band of whole-fleet worlds
   (each one boots N nodes and costs roughly N single-node worlds). *)
let gen_world : world Gen.t =
  Gen.frequency
    [
      (24, gen_scenario_world);
      (4, gen_fault_free_world);
      (1, gen_fleet_world);
    ]

let grid ?(seed = 42) ~worlds () =
  if worlds < 0 then invalid_arg "Sweep.grid: negative world count";
  let rand = Random.State.make [| 0x53EE9; seed |] in
  Gen.generate ~rand ~n:worlds gen_world

(* --- running and grading --- *)

type outcome = {
  o_world : string;
  o_kind : string;  (* "scenario" | "fault-free" | "fleet" *)
  o_expect_detect : bool;
  o_detected : bool;
  o_latency : int64 option;
  o_false_alarms : int;
  o_ok : bool;
}

let run_world w =
  match w with
  | Scenario_world sw ->
      let scenario = Catalog.find sw.sw_sid in
      let cfg =
        {
          Campaign.seed = sw.sw_seed;
          warmup = sw.sw_warmup;
          observe = sw.sw_observe;
          mode = sw.sw_mode;
          infer = None;
          schedule = Wd_watchdog.Schedule.fixed;
        }
      in
      let r = Campaign.run_scenario ~cfg sw.sw_sid in
      let mimic = List.assoc "mimic" r.Campaign.r_outcomes in
      let expect =
        sw.sw_mode = Systems.Wd_generated
        && scenario.Catalog.expected.Catalog.exp_mimic
      in
      let detected = mimic.Campaign.o_detected in
      let false_alarms = r.Campaign.r_pre_inject_reports in
      {
        o_world = world_id w;
        o_kind = "scenario";
        o_expect_detect = expect;
        o_detected = detected;
        o_latency = mimic.Campaign.o_latency;
        o_false_alarms = false_alarms;
        o_ok = detected = expect && false_alarms = 0;
      }
  | Fault_free_world ffw ->
      let cfg =
        {
          Campaign.default_config with
          Campaign.seed = ffw.ff_seed;
          observe = ffw.ff_observe;
        }
      in
      let ff = Campaign.run_fault_free ~cfg ffw.ff_system in
      let false_alarms =
        ff.Campaign.ff_mimic_fp + ff.Campaign.ff_probe_fp
        + ff.Campaign.ff_signal_fp + ff.Campaign.ff_heartbeat_fp
        + ff.Campaign.ff_observer_fp
      in
      {
        o_world = world_id w;
        o_kind = "fault-free";
        o_expect_detect = false;
        o_detected = false_alarms > 0;
        o_latency = None;
        o_false_alarms = false_alarms;
        o_ok = false_alarms = 0;
      }
  | Fleet_world fl ->
      let scenario = Ccat.find fl.fl_csid in
      let cfg =
        {
          Csim.seed = fl.fl_seed;
          topology = fl.fl_topology;
          warmup = fleet_warmup;
          observe = fleet_observe;
          engine = None;
        }
      in
      let r = Csim.run ~cfg fl.fl_csid in
      let expect = scenario.Ccat.cexpected <> Ccat.Expect_no_indictment in
      let indicted =
        r.Csim.cr_indicted_nodes <> [] || r.Csim.cr_indicted_links <> []
      in
      {
        o_world = world_id w;
        o_kind = "fleet";
        o_expect_detect = expect;
        o_detected = indicted;
        o_latency = r.Csim.cr_first_latency;
        o_false_alarms = (if (not expect) && indicted then 1 else 0);
        o_ok = r.Csim.cr_as_expected;
      }

type summary = {
  s_seed : int;
  s_worlds : int;
  s_scenario_worlds : int;
  s_fault_free_worlds : int;
  s_fleet_worlds : int;
  s_expect_detect : int;
  s_detected : int;  (* detections among worlds expecting one *)
  s_unexpected_detect : int;
  s_false_alarms : int;
  s_ok : int;
  s_digest : string;
}

let digest outcomes = Digest.to_hex (Digest.string (Marshal.to_string outcomes []))

let summarize ~seed outcomes =
  let count p = List.length (List.filter p outcomes) in
  {
    s_seed = seed;
    s_worlds = List.length outcomes;
    s_scenario_worlds = count (fun o -> o.o_kind = "scenario");
    s_fault_free_worlds = count (fun o -> o.o_kind = "fault-free");
    s_fleet_worlds = count (fun o -> o.o_kind = "fleet");
    s_expect_detect = count (fun o -> o.o_expect_detect);
    s_detected = count (fun o -> o.o_expect_detect && o.o_detected);
    s_unexpected_detect = count (fun o -> o.o_detected && not o.o_expect_detect);
    s_false_alarms =
      List.fold_left (fun acc o -> acc + o.o_false_alarms) 0 outcomes;
    s_ok = count (fun o -> o.o_ok);
    s_digest = digest outcomes;
  }

let run ?jobs ?(seed = 42) ~worlds () =
  let ws = grid ~seed ~worlds () in
  let outcomes = Wd_parallel.Pool.run_map ?jobs run_world ws in
  (summarize ~seed outcomes, outcomes)

let pp_summary ppf s =
  Fmt.pf ppf
    "%d worlds (%d scenario, %d fault-free, %d fleet), seed %d@.\
     oracle: %d/%d ok; detection %d/%d where expected, %d unexpected; %d \
     false alarms@.digest %s"
    s.s_worlds s.s_scenario_worlds s.s_fault_free_worlds s.s_fleet_worlds
    s.s_seed s.s_ok s.s_worlds s.s_detected s.s_expect_detect
    s.s_unexpected_detect s.s_false_alarms s.s_digest
