(* Probe checkers (Table 2, row 1): act like a special client and invoke the
   public API with pre-supplied input. Perfect accuracy — a failed probe is
   a real contract violation — but weak completeness (internal faults that
   do not surface on the probed API go unseen) and no localisation. *)

let make ?(period = Wd_sim.Time.sec 1) ?(timeout = Wd_sim.Time.sec 5) ~id probe =
  Wd_watchdog.Checker.make ~kind:Wd_watchdog.Checker.Probe ~period ~timeout ~id
    (fun ~now:_ ->
      match probe () with
      | `Ok -> Wd_watchdog.Checker.Pass
      | `Fail msg ->
          let at = Wd_sim.Sched.now (Wd_sim.Sched.get ()) in
          Wd_watchdog.Checker.Fail
            (Wd_watchdog.Report.make ~at ~checker_id:id
               ~fkind:(Wd_watchdog.Report.Error_sig msg) ~op_desc:"api probe" ()))

(* A standard set/get round-trip probe against a kvs-style API. *)
let roundtrip ~id ~set ~get ~expect =
  make ~id (fun () ->
      match set () with
      | `Err m -> `Fail ("probe set failed: " ^ m)
      | `Timeout -> `Fail "probe set timed out"
      | `Ok _ -> (
          match get () with
          | `Err m -> `Fail ("probe get failed: " ^ m)
          | `Timeout -> `Fail "probe get timed out"
          | `Ok v -> if expect v then `Ok else `Fail "probe read unexpected value"))
