(* Trace-inferred checkers: miner determinism, synthesizer behaviour on
   crafted observations, monitor/checker evaluation, and the end-to-end
   race — an inferred-only world detecting a catalog fault with zero
   fault-free false positives, including the E20 long-tail kvs-deadlock
   world the mimic generation honestly misses. *)

module Trace = Wd_sim.Trace
module Mine = Wd_infer.Mine
module Synth = Wd_infer.Synth
module Monitor = Wd_infer.Monitor
module Checkers = Wd_infer.Checkers
module Campaign = Wd_harness.Campaign
module Inference = Wd_harness.Inference

let ms = Wd_sim.Time.ms
let sec = Wd_sim.Time.sec

(* --- Trace.since cursor ------------------------------------------------ *)

let test_trace_since () =
  let t = Trace.create ~capacity:4 () in
  let ev i = Trace.record t ~at:(Int64.of_int i) ~task_id:i ~task_name:"t"
      Trace.Resumed in
  ev 1; ev 2;
  let es, dropped, cur = Trace.since t 0 in
  Alcotest.(check int) "two events" 2 (List.length es);
  Alcotest.(check int) "none dropped" 0 dropped;
  Alcotest.(check int) "cursor" 2 cur;
  ev 3; ev 4; ev 5; ev 6;
  (* ring holds 4: events 3..6; cursor 2 means event index 2 (3rd) onward *)
  let es, dropped, cur = Trace.since t cur in
  Alcotest.(check int) "ring window" 4 (List.length es);
  Alcotest.(check int) "still none dropped" 0 dropped;
  Alcotest.(check int) "cursor advanced" 6 cur;
  ev 7; ev 8; ev 9; ev 10; ev 11;
  let es, dropped, _ = Trace.since t cur in
  Alcotest.(check int) "only ring window" 4 (List.length es);
  Alcotest.(check int) "one overwritten" 1 dropped

(* --- interpreter emission ---------------------------------------------- *)

(* A mining run on a real system must observe disk/net/sync keys, and both
   engines must emit identical event streams. *)
let events_of_run engine =
  let ro =
    Inference.mine_run ~engine ~warmup:(sec 2) ~observe:(sec 4) ~seed:7 "zkmini"
  in
  List.map
    (fun (e : Trace.event) ->
      ( e.Trace.at,
        e.Trace.task_id,
        Trace.kind_name e.Trace.kind ))
    ro.Mine.ro_events

let test_emission () =
  let compiled = events_of_run `Compiled in
  Alcotest.(check bool) "events observed" true (List.length compiled > 100);
  let kinds = List.map (fun (_, _, k) -> k) compiled in
  let has prefix =
    List.exists
      (fun k ->
        String.length k >= String.length prefix
        && String.sub k 0 (String.length prefix) = prefix)
      kinds
  in
  Alcotest.(check bool) "disk ops traced" true (has "op-end disk_write:");
  Alcotest.(check bool) "sync traced" true (has "op-end sync:");
  let treewalk = events_of_run `Treewalk in
  Alcotest.(check bool) "engines emit identically" true (compiled = treewalk)

let test_mining_deterministic () =
  let one () =
    let ro =
      Inference.mine_run ~warmup:(sec 2) ~observe:(sec 4) ~seed:11 "cstore"
    in
    let obs = Mine.aggregate [ ro ] in
    let m =
      Synth.synthesize ~system:"cstore"
        ~locate:(Inference.locate_in (Inference.program_of "cstore"))
        obs
    in
    Synth.digest m
  in
  Alcotest.(check string) "same seed, same model" (one ()) (one ())

(* --- synthesizer thresholds on crafted observations -------------------- *)

let obs_event at task kind = { Trace.at; task_id = task; task_name = "w"; kind }

let start_ at task op = obs_event at task (Trace.Op_start { op; node = "n"; func = "f" })
let end_ at task op dur = obs_event at task (Trace.Op_end { op; node = "n"; func = "f"; dur })

let steady_run ~n ~period ~dur op seed =
  let events = ref [] in
  for i = 0 to n - 1 do
    let t = Int64.mul (Int64.of_int i) period in
    events := end_ (Int64.add t dur) 1 op dur :: start_ t 1 op :: !events
  done;
  { Mine.ro_id = Fmt.str "run%d" seed; ro_seed = seed; ro_span = Int64.mul (Int64.of_int n) period;
    ro_events = List.rev !events; ro_dropped = 0 }

let test_synth_thresholds () =
  let op = "disk_write:d:seg/" in
  let runs =
    List.map (steady_run ~n:40 ~period:(ms 200) ~dur:(ms 2) op) [ 1; 2; 3 ]
  in
  let m = Synth.synthesize ~system:"t" (Mine.aggregate runs) in
  let fams = Synth.family_counts m in
  Alcotest.(check (option int)) "envelope" (Some 1) (List.assoc_opt "envelope" fams);
  Alcotest.(check (option int)) "gap" (Some 1) (List.assoc_opt "gap" fams);
  Alcotest.(check (option int)) "never_fail" (Some 1) (List.assoc_opt "never_fail" fams);
  (* under-supported: 2 runs < min_runs *)
  let m2 =
    Synth.synthesize ~system:"t"
      (Mine.aggregate
         (List.map (steady_run ~n:40 ~period:(ms 200) ~dur:(ms 2) op) [ 1; 2 ]))
  in
  Alcotest.(check int) "2 runs synthesize nothing" 0 (List.length m2.Synth.m_invariants);
  (* rare key: no gap/envelope *)
  let m3 =
    Synth.synthesize ~system:"t"
      (Mine.aggregate (List.map (steady_run ~n:5 ~period:(sec 2) ~dur:(ms 2) op) [ 1; 2; 3 ]))
  in
  Alcotest.(check int) "5 samples is coincidence" 0 (List.length m3.Synth.m_invariants);
  (* an envelope deadline respects the safety factor *)
  List.iter
    (fun (i : Synth.invariant) ->
      match i.Synth.ibody with
      | Synth.Envelope { deadline; _ } ->
          Alcotest.(check bool) "deadline floor" true (deadline >= sec 2)
      | _ -> ())
    m.Synth.m_invariants

let test_synth_ordering () =
  let a = "disk_read:d:boot/" and b = "disk_write:d:log/" in
  let run seed =
    let events =
      [
        start_ 0L 1 a; end_ (ms 1) 1 a (ms 1);
        start_ (ms 10) 1 b; end_ (ms 11) 1 b (ms 1);
      ]
      @ List.concat
          (List.init 40 (fun i ->
               let t = Int64.add (ms 20) (Int64.mul (Int64.of_int i) (ms 100)) in
               [ start_ t 1 b; end_ (Int64.add t (ms 1)) 1 b (ms 1) ]))
      @ List.concat
          (List.init 30 (fun i ->
               let t = Int64.add (ms 25) (Int64.mul (Int64.of_int i) (ms 130)) in
               [ start_ t 2 a; end_ (Int64.add t (ms 1)) 2 a (ms 1) ]))
    in
    { Mine.ro_id = Fmt.str "r%d" seed; ro_seed = seed; ro_span = sec 5;
      ro_events = events; ro_dropped = 0 }
  in
  let m = Synth.synthesize ~system:"t" (Mine.aggregate [ run 1; run 2; run 3 ]) in
  let precedes =
    List.filter_map
      (fun (i : Synth.invariant) ->
        match i.Synth.ibody with
        | Synth.Precedes { first } -> Some (first, i.Synth.ikey)
        | _ -> None)
      m.Synth.m_invariants
  in
  Alcotest.(check (list (pair string string))) "a precedes b" [ (a, b) ] precedes

(* --- monitor + checker evaluation -------------------------------------- *)

let test_monitor_checkers () =
  let sched = Wd_sim.Sched.create ~seed:1 () in
  let monitor = Monitor.create sched in
  let trace = Option.get (Wd_sim.Sched.trace sched) in
  let op = "disk_write:d:seg/" in
  (* a completed op then one that hangs in flight *)
  Trace.record trace ~at:(ms 100) ~task_id:1 ~task_name:"w"
    (Trace.Op_start { op; node = "n"; func = "writer" });
  Trace.record trace ~at:(ms 102) ~task_id:1 ~task_name:"w"
    (Trace.Op_end { op; node = "n"; func = "writer"; dur = ms 2 });
  Trace.record trace ~at:(ms 200) ~task_id:1 ~task_name:"w"
    (Trace.Op_start { op; node = "n"; func = "writer" });
  Monitor.drain monitor;
  let inv deadline =
    {
      Synth.ikey = op;
      ibody = Synth.Envelope { p99 = ms 2; deadline };
      isupport = 100;
      iruns = 3;
      iloc = None;
    }
  in
  (* not yet overdue at t=1s with a 2s deadline *)
  Alcotest.(check bool) "within deadline" true
    (Checkers.eval monitor ~now:(sec 1) ~id:"inferred:envelope:t" (inv (sec 2))
     = None);
  (* overdue at t=3s *)
  (match Checkers.eval monitor ~now:(sec 3) ~id:"inferred:envelope:t" (inv (sec 2)) with
  | Some r ->
      Alcotest.(check bool) "hang fkind" true
        (r.Wd_watchdog.Report.fkind = Wd_watchdog.Report.Hang)
  | None -> Alcotest.fail "expected an overdue-hang report");
  (* gap: silence beyond budget *)
  let gap =
    { Synth.ikey = op; ibody = Synth.Gap { max_gap = ms 100; budget = sec 5 };
      isupport = 100; iruns = 3; iloc = None }
  in
  Alcotest.(check bool) "silent but within budget" true
    (Checkers.eval monitor ~now:(sec 5) ~id:"inferred:gap:t" gap = None);
  Alcotest.(check bool) "silence violation" true
    (Checkers.eval monitor ~now:(sec 6) ~id:"inferred:gap:t" gap <> None);
  (* never_fail *)
  Trace.record trace ~at:(sec 7) ~task_id:1 ~task_name:"w"
    (Trace.Op_fail { op; node = "n"; func = "writer"; err = "io_error" });
  Monitor.drain monitor;
  let nf =
    { Synth.ikey = op; ibody = Synth.Never_fail; isupport = 100; iruns = 3;
      iloc = None }
  in
  (match Checkers.eval monitor ~now:(sec 8) ~id:"inferred:never_fail:t" nf with
  | Some r ->
      Alcotest.(check bool) "error fkind" true
        (match r.Wd_watchdog.Report.fkind with
        | Wd_watchdog.Report.Error_sig _ -> true
        | _ -> false)
  | None -> Alcotest.fail "expected a never-fail report")

(* --- end-to-end: inferred-only race ------------------------------------ *)

let quick_mine system =
  let runs =
    List.map
      (fun seed ->
        ( system,
          Inference.mine_run ~warmup:(sec 4) ~observe:(sec 10) ~seed system ))
      [ 42; 1013; 2027 ]
  in
  let obs = Mine.aggregate (List.map snd runs) in
  Synth.synthesize ~system
    ~locate:(Inference.locate_in (Inference.program_of system))
    obs

let test_inferred_only_detects () =
  let model = quick_mine "zkmini" in
  Alcotest.(check bool) "invariants mined" true
    (List.length model.Synth.m_invariants > 0);
  let cfg =
    { Campaign.default_config with
      Campaign.mode = Wd_harness.Systems.Wd_none;
      observe = sec 20;
      infer = Some model }
  in
  let r = Campaign.run_scenario ~cfg "zk-2201" in
  let inferred = List.assoc "inferred" r.Campaign.r_outcomes in
  Alcotest.(check bool) "inferred-only detects zk-2201" true
    inferred.Campaign.o_detected;
  let mimic = List.assoc "mimic" r.Campaign.r_outcomes in
  Alcotest.(check bool) "no mimic family in Wd_none" false
    mimic.Campaign.o_detected

let test_inferred_fault_free_clean () =
  let model = quick_mine "zkmini" in
  (* a seed the miner never saw *)
  let cfg =
    { Campaign.default_config with
      Campaign.seed = 4242;
      observe = sec 20;
      infer = Some model }
  in
  let ff = Campaign.run_fault_free ~cfg "zkmini" in
  Alcotest.(check int) "0 inferred FPs on an unseen seed" 0
    ff.Campaign.ff_inferred_fp

(* The 1000-world E20 sweep's single honest miss, pinned: the kvs-deadlock
   world at seed 15233 under 8s/15s windows. Diagnosis: the AB/BA collision
   only wedges ~18s after the injection instant in that interleaving — 3s
   past the observe window — so no checker family can see it; the miss is a
   window long-tail, not a detector gap. Pinned as such: if a change makes
   the mimic generation detect within 15s, the diagnosis changed — re-run
   the sweep and update this pin. Widening the window to 30s flips the
   mimic outcome, and the inferred generation detects the same deadlock
   class on this world in an inferred-only (Wd_none) deployment. *)
let missed_world_cfg =
  { Campaign.default_config with
    Campaign.seed = 15233;
    warmup = sec 8;
    observe = sec 15 }

let test_e20_missed_world_inferred () =
  let r = Campaign.run_scenario ~cfg:missed_world_cfg "kvs-deadlock" in
  let mimic = List.assoc "mimic" r.Campaign.r_outcomes in
  Alcotest.(check bool) "mimic still misses the pinned world" false
    mimic.Campaign.o_detected;
  (* same world, 30s window: the wedge lands inside and the mimic catches
     it — evidence the pinned miss is a window artifact *)
  let wide = { missed_world_cfg with Campaign.observe = sec 30 } in
  let r = Campaign.run_scenario ~cfg:wide "kvs-deadlock" in
  let mimic = List.assoc "mimic" r.Campaign.r_outcomes in
  Alcotest.(check bool) "mimic catches it with a 30s window" true
    mimic.Campaign.o_detected;
  (* inferred-only deployment on the pinned seed: the liveness invariants
     (sync envelope / op gap) catch the wedge with no mimic help *)
  let model = quick_mine "kvs" in
  let cfg =
    { wide with
      Campaign.mode = Wd_harness.Systems.Wd_none;
      infer = Some model }
  in
  let r = Campaign.run_scenario ~cfg "kvs-deadlock" in
  let inferred = List.assoc "inferred" r.Campaign.r_outcomes in
  Alcotest.(check bool) "inferred-only catches the deadlock class" true
    inferred.Campaign.o_detected

let () =
  Alcotest.run "infer"
    [
      ( "trace",
        [
          Alcotest.test_case "since cursor" `Quick test_trace_since;
          Alcotest.test_case "interp emission" `Quick test_emission;
        ] );
      ( "mine+synth",
        [
          Alcotest.test_case "deterministic" `Quick test_mining_deterministic;
          Alcotest.test_case "support thresholds" `Quick test_synth_thresholds;
          Alcotest.test_case "ordering" `Quick test_synth_ordering;
        ] );
      ( "monitor",
        [ Alcotest.test_case "checker eval" `Quick test_monitor_checkers ] );
      ( "race",
        [
          Alcotest.test_case "inferred-only detects" `Quick
            test_inferred_only_detects;
          Alcotest.test_case "fault-free clean" `Quick
            test_inferred_fault_free_clean;
          Alcotest.test_case "e20 pinned miss raced" `Quick
            test_e20_missed_world_inferred;
        ] );
    ]
