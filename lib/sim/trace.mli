(** Execution tracing: a bounded ring buffer of scheduler events, opt-in
    via {!Sched.set_trace}. The recent window before a watchdog detection
    is a ready-made postmortem timeline.

    Besides scheduler events, Main-mode interpreters emit operation-level
    events ([Op_start]/[Op_end]/[Op_fail]) for every environment operation
    and lock acquisition, keyed ["kind:target:operand-prefix"]. These are
    the observations the trace miner ({!Wd_infer}) turns into timing
    envelopes and ordering invariants.

    Storage is columnar (struct-of-arrays) with interned op identifiers:
    the zero-allocation recorders below take {!Site.id}s and plain fields;
    the boxed {!event} view is materialised only on read, byte-identical
    to what the recorders were given. *)

type kind =
  | Spawned
  | Blocked of string  (** the suspend reason *)
  | Resumed
  | Finished of string
  | Op_start of { op : string; node : string; func : string }
      (** operation began; [op] is the runtime key
          ["kind:target:operand-prefix"], [func] the enclosing function *)
  | Op_end of { op : string; node : string; func : string; dur : int64 }
      (** operation completed after [dur] virtual ns *)
  | Op_fail of { op : string; node : string; func : string; err : string }
      (** operation raised; the enclosing task may still handle it *)

type event = { at : int64; task_id : int; task_name : string; kind : kind }

type t

val create : ?capacity:int -> unit -> t

val record : t -> at:int64 -> task_id:int -> task_name:string -> kind -> unit
(** Boxed-kind entry point (tests, synthetic traces); op identifier strings
    are interned on the way in. *)

(** {2 Zero-allocation recorders}

    Used by the scheduler and interpreter hot paths. String arguments are
    stored by pointer (no copy); [at]/[dur] must fit a native int. *)

val spawned : t -> at:int64 -> task_id:int -> task_name:string -> unit
val resumed : t -> at:int64 -> task_id:int -> task_name:string -> unit

val blocked :
  t -> at:int64 -> task_id:int -> task_name:string -> reason:string -> unit

val finished :
  t -> at:int64 -> task_id:int -> task_name:string -> how:string -> unit

val op_start :
  t ->
  at:int64 ->
  task_id:int ->
  task_name:string ->
  op:Site.id ->
  node:Site.id ->
  func:Site.id ->
  unit

val op_end :
  t ->
  at:int64 ->
  task_id:int ->
  task_name:string ->
  op:Site.id ->
  node:Site.id ->
  func:Site.id ->
  dur:int64 ->
  unit

val op_fail :
  t ->
  at:int64 ->
  task_id:int ->
  task_name:string ->
  op:Site.id ->
  node:Site.id ->
  func:Site.id ->
  err:string ->
  unit

val total : t -> int

val recent : t -> int -> event list
(** Most recent [n] events, oldest first. *)

val since : t -> int -> event list * int * int
(** [since t cursor] = events with global index >= [cursor] that are still
    in the ring (oldest first), how many were already overwritten, and the
    new cursor to pass next time (= {!total}). *)

val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit
val dump : ?n:int -> Format.formatter -> t -> unit
