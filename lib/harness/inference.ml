(* Mining harness: the bridge between Wd_infer's pure pipeline and real
   systems. Replays configurable fault-free runs per target under the
   virtual clock — fixed seeds plus fault-free worlds drawn from the E20
   sweep grid, so the observation set spans genuinely different workload
   interleavings and window lengths — records their op-level traces, and
   synthesizes one invariant model per system.

   Mining runs under the deployed configuration (Wd_generated: instrumented
   program, mimic checkers live) so the timing envelopes absorb the
   watchdog's own load; checker-mode interpreters never emit trace events,
   so the observations stay pure target behaviour. Runs fan out over the
   persistent domain pool; aggregation and synthesis are sequential and
   canonical, making the whole pipeline byte-deterministic at any width. *)

module Mine = Wd_infer.Mine
module Synth = Wd_infer.Synth

type mine_cfg = {
  mc_fixed_seeds : int list;
  mc_sweep_seed : int; (* grid the extra fault-free worlds come from *)
  mc_sweep_worlds : int; (* grid size to scan *)
  mc_per_system : int; (* sweep-derived runs per system *)
  mc_warmup : int64;
  mc_observe : int64;
  mc_synth : Synth.config;
}

let default_cfg =
  {
    mc_fixed_seeds = [ 42; 1013; 2027 ];
    mc_sweep_seed = 42;
    mc_sweep_worlds = 200;
    mc_per_system = 3;
    mc_warmup = Wd_sim.Time.sec 8;
    mc_observe = Wd_sim.Time.sec 20;
    mc_synth = Synth.default_config;
  }

(* One mining run: boot [system] fault-free with a recorder attached. *)
let mine_run ?engine ~warmup ~observe ~seed system =
  let sched = Wd_sim.Sched.create ~seed () in
  let reg = Wd_env.Faultreg.create () in
  let recorder = Mine.attach sched in
  let _booted =
    Systems.boot ?engine ~sched ~reg ~mode:Systems.Wd_generated system
  in
  (match Wd_sim.Sched.run ~until:(Int64.add warmup observe) sched with
  | Wd_sim.Sched.Time_limit | Wd_sim.Sched.Quiescent -> ()
  | Wd_sim.Sched.Deadlock tasks ->
      failwith
        (Fmt.str "deadlock during mining run of %s: %a" system
           Fmt.(list ~sep:(any ", ") Wd_sim.Sched.pp_task)
           tasks));
  Mine.finish recorder
    ~id:(Fmt.str "%s:seed=%d:o=%a" system seed Wd_sim.Time.pp observe)
    ~seed

(* Per-system schedule: fixed seeds at the configured windows, plus the
   first [mc_per_system] fault-free worlds of this system in the sweep
   grid (their seeds and observe windows vary by construction). *)
let schedule cfg =
  let grid = Sweep.grid ~seed:cfg.mc_sweep_seed ~worlds:cfg.mc_sweep_worlds () in
  List.concat_map
    (fun system ->
      let fixed =
        List.map (fun seed -> (system, seed, cfg.mc_observe)) cfg.mc_fixed_seeds
      in
      let from_sweep =
        List.filter_map
          (function
            | Sweep.Fault_free_world { ff_system; ff_seed; ff_observe }
              when String.equal ff_system system ->
                Some (system, ff_seed, ff_observe)
            | _ -> None)
          grid
      in
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      fixed @ take cfg.mc_per_system from_sweep)
    Systems.all_systems

let program_of = function
  | "kvs" -> Wd_targets.Kvs.program ()
  | "zkmini" -> Wd_targets.Zkmini.program ()
  | "dfsmini" -> Wd_targets.Dfsmini.program ()
  | "cstore" -> Wd_targets.Cstore.program ()
  | "mqbroker" -> Wd_targets.Mqbroker.program ()
  | s -> invalid_arg ("Inference.program_of: unknown system " ^ s)

(* Resolve a runtime op key to a static location via the analysis's
   vulnerable-operation keys. Exact vkey match first; otherwise fall back
   to the unique static op with the same "kind:target:" stem (runtime
   operand prefixes are dynamic, static ones are constant-propagated, so
   the stems meet more often than the full keys). *)
let locate_in prog =
  let vops =
    List.concat_map
      (Wd_analysis.Vulnerable.collect_in_func Wd_analysis.Vulnerable.default)
      prog.Wd_ir.Ast.funcs
  in
  let exact = Hashtbl.create 64 and stems = Hashtbl.create 64 in
  List.iter
    (fun (v : Wd_analysis.Vulnerable.vop) ->
      if not (Hashtbl.mem exact v.Wd_analysis.Vulnerable.vkey) then
        Hashtbl.add exact v.Wd_analysis.Vulnerable.vkey
          v.Wd_analysis.Vulnerable.vloc;
      let stem =
        match String.split_on_char ':' v.Wd_analysis.Vulnerable.vkey with
        | kind :: target :: _ -> kind ^ ":" ^ target
        | _ -> v.Wd_analysis.Vulnerable.vkey
      in
      Hashtbl.replace stems stem
        (match Hashtbl.find_opt stems stem with
        | None -> `Unique v.Wd_analysis.Vulnerable.vloc
        | Some _ -> `Ambiguous))
    vops;
  fun key ->
    match Hashtbl.find_opt exact key with
    | Some loc -> Some loc
    | None -> (
        let stem =
          match String.split_on_char ':' key with
          | kind :: target :: _ -> kind ^ ":" ^ target
          | _ -> key
        in
        match Hashtbl.find_opt stems stem with
        | Some (`Unique loc) -> Some loc
        | Some `Ambiguous | None -> None)

type mined = {
  md_models : (string * Synth.model) list; (* per system, sorted *)
  md_runs : int;
  md_events : int;
  md_digest : string; (* over every model's canonical form *)
}

let model_for mined system = List.assoc_opt system mined.md_models

let mine_and_synth ?(cfg = default_cfg) ?engine ?jobs () =
  let sched_list = schedule cfg in
  let obs_runs =
    Wd_parallel.Pool.run_map ?jobs
      (fun (system, seed, observe) ->
        (system, mine_run ?engine ~warmup:cfg.mc_warmup ~observe ~seed system))
      sched_list
  in
  let models =
    List.map
      (fun system ->
        let runs =
          List.filter_map
            (fun (sys, ro) -> if String.equal sys system then Some ro else None)
            obs_runs
        in
        let obs = Mine.aggregate runs in
        let locate = locate_in (program_of system) in
        (system, Synth.synthesize ~config:cfg.mc_synth ~locate ~system obs))
      (List.sort compare Systems.all_systems)
  in
  let events =
    List.fold_left (fun n (_, ro) -> n + List.length ro.Mine.ro_events) 0 obs_runs
  in
  {
    md_models = models;
    md_runs = List.length obs_runs;
    md_events = events;
    md_digest =
      Digest.to_hex
        (Digest.string
           (String.concat "\n"
              (List.map (fun (_, m) -> Synth.to_canonical m) models)));
  }

let pp_mined ppf m =
  Fmt.pf ppf "mined %d runs (%d op events) -> %d models, digest %s@."
    m.md_runs m.md_events (List.length m.md_models) m.md_digest;
  List.iter (fun (_, model) -> Fmt.pf ppf "  %a@." Synth.pp_model model)
    m.md_models
