(** The paper's tables, figures and preliminary results as runnable
    experiments (E1–E14; index in DESIGN.md, measured-vs-paper records in
    EXPERIMENTS.md). Each [eN_run] returns structured results; each
    [eN_text] runs the experiment and renders its table. *)

val set_jobs : int -> unit
(** Set the domain-pool width every experiment fans its simulations across
    (clamped to >= 1). Defaults to [WD_JOBS] or the host's recommended
    domain count. Tables are byte-identical at any width. *)

val jobs : unit -> int
(** The effective width. *)

val set_seed : int -> unit
(** Override the base seed experiments derive their seed lists from (the
    repro [--seed] flag). Defaults to 42. *)

val base_seed : unit -> int
(** The effective base seed. *)

val set_engine : Wd_ir.Interp.engine -> unit
(** Select the IR execution engine process-wide (the repro/bench [--engine]
    flag). Tables are byte-identical on either engine; only wall-clock
    changes. Defaults to [WD_ENGINE] or [`Compiled]. *)

(* E1 — Table 1 *)
type e1_row = {
  e1_scenario : string;
  e1_class : string;
  e1_crash_fd : bool;
  e1_error_handler : bool;
  e1_watchdog : bool;
}

val e1_run : unit -> e1_row list
val e1_text : unit -> string

(* E2 — Table 2 *)
type e2_agg = {
  e2_kind : string;
  e2_detected : int;
  e2_total : int;
  e2_false_alarms : int;
  e2_exact : int;
  e2_near : int;
  e2_detections_with_loc : int;
}

val e2_run : unit -> Campaign.run list * e2_agg list
val e2_matches_expectation : Campaign.run -> bool
val e2_text : unit -> string

(* E4 — Figures 2 & 3 *)
val e4_text : unit -> string

(* E5 — §4.2 ZOOKEEPER-2201 *)
type e5_result = {
  e5_mimic_latency : int64 option;
  e5_mimic_loc : string option;
  e5_heartbeat_detected : bool;
  e5_ruok_detected : bool;
  e5_rw_probe_latency : int64 option;
  e5_write_ok_before : bool;
  e5_write_ok_after : bool;
  e5_payload : (string * Wd_ir.Ast.value) list;
}

val e5_run : unit -> e5_result
val e5_text : unit -> string

(* E6 — generation statistics *)
val e6_run :
  unit -> (string * Wd_autowatchdog.Generate.generated * float) list
val e6_text : unit -> string

(* E7 — concurrent vs in-place overhead *)
type e7_row = {
  e7_mode : string;
  e7_ops : int;
  e7_ok_ratio : float;
  e7_mean_latency : int64;
  e7_p99_latency : int64;
}

val e7_run : unit -> e7_row list
val e7_text : unit -> string

(* E8 — context synchronisation ablation *)
type e8_row = { e8_mode : string; e8_false_alarms : int; e8_skips : int }

val e8_run : unit -> e8_row list
val e8_text : unit -> string

(* E9 — memory-pressure fate sharing *)
val e9_run : unit -> Campaign.run
val e9_text : unit -> string

(* E10 — isolation *)
type e10_result = {
  e10_scratch_disjoint : bool;
  e10_driver_survives : bool;
  e10_main_unperturbed : bool;
  e10_crashing_runs : int;
}

val e10_run : unit -> e10_result
val e10_text : unit -> string

(* E11 — cheap recovery *)
type e11_row = {
  e11_mode : string;
  e11_ok_during : int;
  e11_ok_after : int;
  e11_restored_after : int64 option;
  e11_reboots : int;
}

val e11_run : unit -> e11_row list
val e11_text : unit -> string

(* E12 — failure reproduction *)
type e12_result = {
  e12_report : string;
  e12_clean : Wd_autowatchdog.Reproduce.outcome;
  e12_with_fault : Wd_autowatchdog.Reproduce.outcome;
}

val e12_run : unit -> e12_result
val e12_text : unit -> string

(* E13 — accuracy under overload *)
type e13_result = {
  e13_mimic_alarms : int;
  e13_probe_alarms : int;
  e13_signal_alarms : int;
  e13_issued : int;
}

val e13_run : unit -> e13_result
val e13_text : unit -> string

(* E15 — detection-budget sweep *)
type e15_point = {
  e15_period : int64;
  e15_lock_timeout : int64;
  e15_latency : int64 option;
  e15_ff_false_alarms : int;
}

val e15_run : unit -> e15_point list
val e15_text : unit -> string

(* E20 — randomized fault-space sweep *)
val e20_default_worlds : int

val e20_run : ?worlds:int -> unit -> Sweep.summary * Sweep.outcome list
(** Generate and run a {!Sweep} grid of [worlds] worlds (default
    {!e20_default_worlds}) under the harness-wide jobs and seed overrides.
    The outcome list is byte-identical at any jobs width. *)

val e20_text : ?worlds:int -> unit -> string
(** Runs the sweep and renders the oracle aggregate, listing any worlds
    that missed their oracle. *)

(* E14 — reduction ablations *)
val e14_run :
  unit -> (string * (string * Wd_analysis.Reduction.stats) list) list
val e14_text : unit -> string

(* E16 — multi-seed robustness *)
val e16_run : unit -> (string * Metrics.latency_stats * int) list
val e16_text : unit -> string

(* E17 — fleet-level watchdogs over multi-node clusters (decentralized:
   leader-elected aggregation over the fabric) *)
val e17_run : unit -> Wd_cluster.Sim.result list
val e17_text : unit -> string

(* E18 — leader failover: successor election, verdict-driven recovery,
   cross-node reproduction from shipped evidence bytes *)
type e18_cell = {
  e18_system : string;
  e18_seed : int;
  e18_res : Wd_cluster.Sim.result;
  e18_successor : string option;
      (** which node's engine recorded the indictment *)
  e18_failover : int64 option;
      (** injection -> every node agrees on the successor *)
  e18_victim_recovered : bool;
      (** the old leader microrebooted on the fleet's Recover command *)
  e18_repro : Wd_autowatchdog.Reproduce.outcome option;
      (** shipped evidence bytes replayed under the re-injected fault *)
}

val e18_run : unit -> e18_cell list
val e18_text : unit -> string

(* E19 — heterogeneous 9/15-node fleets over an asymmetric link fabric,
   graded on verdict priority under correlated failures *)
val e19_run : unit -> Wd_cluster.Sim.result list
val e19_text : unit -> string

(* E21 — checker-generation race: mimic (static analysis) vs trace-inferred
   checkers across the full catalog, in mimic-only / inferred-only /
   combined deployments *)
type e21_family = {
  e21f_family : string;
  e21f_detected : int;
  e21f_total : int;
  e21f_latency : Metrics.latency_stats;
  e21f_fp : int;  (** false positives over the fault-free runs *)
}

type e21_deploy = {
  e21d_label : string;
  e21d_any : int;  (** scenarios where any family detected *)
  e21d_total : int;
  e21d_families : e21_family list;
  e21d_fp : int;
  e21d_checkers : int;
  e21d_sim_events : int;
  e21d_overhead_pct : float;
      (** fault-free sim-event surplus vs a bare (no mimic, no inferred)
          baseline on the same worlds — deterministic, host-independent *)
}

type e21_result = {
  e21_mined_runs : int;
  e21_mined_events : int;
  e21_model_digest : string;
  e21_invariants : (string * int) list;
  e21_deploys : e21_deploy list;
}

val e21_mine : unit -> Inference.mined
(** Mine and synthesize the inferred generation under the harness-wide
    jobs override (digest-deterministic at any width). *)

val e21_run : unit -> e21_result
val e21_text : unit -> string

(* E22 — watchdog overhead under heavy traffic: the load plane (Loadgen)
   drives each workload with 10^5..10^6+ requests per deployment and
   compares watchdog-on / watchdog-off / inferred-on on the same virtual
   world *)
type e22_row = {
  e22r_deploy : string;  (** "wd-off" | "wd-on" | "inferred-on" *)
  e22r_load : Loadgen.result;
  e22r_sim_events : int;
  e22r_overhead_pct : float;
      (** sim-event inflation vs the wd-off row of the same workload —
          the work the watchdog adds; deterministic, host-independent *)
  e22r_p50_x : float;  (** p50 latency ratio vs the wd-off row *)
  e22r_p99_x : float;
  e22r_detect : int64 option;
      (** detection latency of a mid-load catalog fault (separate injected
          run at the same offered load); [None] when nothing detects *)
}

type e22_workload = {
  e22w_label : string;
  e22w_gen : string;  (** "closed" | "open" | "fleet" *)
  e22w_requests : int;  (** completed requests, all rows + injected runs *)
  e22w_rows : e22_row list;
}

type e22_result = {
  e22_workloads : e22_workload list;
  e22_total_requests : int;
}

type e22_alloc_row = {
  e22a_deploy : string;  (** "wd-off" | "wd-on" *)
  e22a_requests : int;  (** completed requests actually driven *)
  e22a_words_per_req : float;  (** minor-heap words per completed request *)
  e22a_bytes_per_req : float;
}

val e22_alloc : ?requests:int -> unit -> e22_alloc_row list
(** Minor-heap allocation per completed request on the zkmini closed loop,
    one row per deployment (wd-off, wd-on; inferred-on is skipped — it
    needs a mining pass). Runs inline on the calling domain because
    [Gc.minor_words] is per-domain; deterministic for a fixed seed. *)

val e22_default_requests : int

val e22_run : ?requests:int -> ?fleet_requests:int -> unit -> e22_result
(** [requests] is the budget per deployment row of each single-node
    workload (detection runs use a quarter of it); [fleet_requests]
    (default [requests]) is the fleet row's budget. *)

val e22_text : ?requests:int -> ?fleet_requests:int -> unit -> string

type e23_row = {
  e23f_mode : string;  (** "fixed" | "adaptive" | "adaptive-relaxed" *)
  e23f_policy : string;  (** rendered policy parameters *)
  e23f_overhead_pct : float;
      (** mean wd-on sim-event inflation vs the shared wd-off baseline
          across the E22 load plane *)
  e23f_sched_events : int;
      (** checker-scheduling overhead: events above the hooks-only
          baseline (instrumented program, driver stopped at boot) summed
          over the load plane — context sync is per-request cost no
          schedule can touch, so the frontier gates on this component *)
  e23f_sched_cut_pct : float;
      (** scheduling-overhead reduction vs the fixed row (0 for fixed) *)
  e23f_p99_x : float;  (** worst p99 latency ratio vs wd-off *)
  e23f_load_detect : int64 option;
      (** worst detection latency of the mid-load catalog faults *)
  e23f_detected : int;
      (** full-catalog scenarios detected by an intrinsic checker class
          (mimic / probe / signal / inferred) *)
  e23f_catalog : int;
  e23f_worst_detect : int64 option;
      (** worst catalog detection latency, over the scenario set the fixed
          baseline detects (modes compared on one set) *)
  e23f_mean_detect : int64 option;
  e23f_runs : int;  (** checker executions across the load-plane runs *)
  e23f_dedup_skips : int;  (** runs skipped on unchanged context version *)
  e23f_shared_syncs : int;  (** co-scheduled runs sharing a snapshot *)
  e23f_throttle_peak : float;
}

type e23_result = {
  e23_rows : e23_row list;
  e23_scenarios : int;
  e23_requests : int;
}

val e23_run : ?requests:int -> unit -> e23_result
(** The E23 scheduling frontier: per scheduling mode, watchdog overhead on
    the E22 load plane against detection latency across the full fault
    catalog. [requests] is the load-plane budget per run (default
    {!e22_default_requests}). *)

val e23_text : ?requests:int -> unit -> string

val all_texts : unit -> (string * (unit -> string)) list
(** (experiment name, renderer) pairs, in presentation order. *)
