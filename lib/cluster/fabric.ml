(* Inter-node fabric: the message plane the membership service gossips and
   probes over, built on [Wd_env.Net] so the fault machinery applies
   unchanged. Sites are "net:fabric:send:<src>:<dst>", so
   "net:fabric:send:n3:*" cuts every link out of n3 and
   "net:fabric:send:n1:n3" cuts exactly one direction of one link — the
   asymmetric partial partition the fleet plane must localise.

   The fabric owns its own fault registry, separate from every node's
   private environment registry: a fabric fault degrades links without
   touching any node's disks or queues, and vice versa. *)

type msg =
  | Gossip of { from_ : string; seq : int }
      (* liveness heartbeat: "I am scheduling and my network path to you
         works" — deliberately cheap, touching no disk or queue, so a
         limping node keeps gossiping (the gray-failure signature) *)
  | Probe_req of { from_ : string; seq : int }
      (* end-to-end health probe: the receiver runs a bounded client
         operation against its local service before acking *)
  | Probe_ack of { from_ : string; seq : int; healthy : bool }

type t = {
  net : msg Wd_env.Net.t;
  reg : Wd_env.Faultreg.t;
  nodes : string list;
}

let fabric_name = "fabric"
let node_name i = Fmt.str "n%d" i

let create ~sched ~nodes () =
  let reg = Wd_env.Faultreg.create () in
  let rng = Wd_sim.Rng.split (Wd_sim.Sched.rng sched) in
  let net =
    Wd_env.Net.create ~base_latency:(Wd_sim.Time.ms 1) ~reg ~rng fabric_name
  in
  List.iter (Wd_env.Net.register net) nodes;
  { net; reg; nodes }

let peers t me = List.filter (fun n -> n <> me) t.nodes

(* [Net.send] can raise [Net_error] under an Error fault; fabric callers
   treat an unsendable message like a lost one. *)
let send t ~src ~dst m =
  try Wd_env.Net.send t.net ~src ~dst m with Wd_env.Net.Net_error _ -> ()

let recv_timeout t endpoint ~timeout =
  Wd_env.Net.recv_timeout t.net endpoint ~timeout

let stats t = Wd_env.Net.stats t.net
