(* SplitMix64: a small, fast, deterministic PRNG. Every random choice in the
   simulator flows through one of these so that a run is a pure function of
   its seed. [split] derives an independent stream, letting subsystems draw
   randomness without perturbing each other's sequences. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let int64_range t lo hi =
  if hi < lo then invalid_arg "Rng.int64_range: empty range";
  let span = Int64.sub hi lo in
  if span = 0L then lo
  else
    let r = Int64.logand (next_int64 t) Int64.max_int in
    Int64.add lo (Int64.rem r (Int64.add span 1L))

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

(* Exponentially distributed duration with the given mean, in the same unit
   as [mean]. Used by latency models. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
