(* Fixed-width ASCII table rendering for experiment output. *)

let render ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (if i = 0 then "| " else " | ");
        Buffer.add_string buf (pad cell widths.(i)))
      row;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+-" else "-+-");
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_string buf "-+\n"
  in
  rule ();
  line header;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)

let latency_cell = function
  | None -> "-"
  | Some ns -> Wd_sim.Time.to_string ns

let bool_cell b = if b then "yes" else "no"

let mark_cell b = if b then "Y" else "."
