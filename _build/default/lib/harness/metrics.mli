(** Aggregate statistics over repeated campaign runs: detection rates and
    latency distributions across seeds. The simulator is deterministic per
    seed, so a multi-seed sweep measures sensitivity to event interleavings,
    not flakiness. *)

type latency_stats = {
  ls_count : int;   (** runs in which detection happened *)
  ls_total : int;   (** runs overall *)
  ls_min : int64;
  ls_median : int64;
  ls_p90 : int64;
  ls_max : int64;
}

val latency_stats_of : int64 list -> total:int -> latency_stats
val pp_latency_stats : Format.formatter -> latency_stats -> unit

val scenario_across_seeds :
  ?cfg:Campaign.config ->
  seeds:int list ->
  detector:string ->
  string ->
  latency_stats * int
(** Run the scenario once per seed; returns the detector's latency stats and
    how many runs pinpointed exactly. *)
