(** dfsmini — an HDFS-DataNode-like block store: block receiver (writes
    block + checksum metadata), directory scanner (periodic verification
    with an in-place error handler), heartbeats and block reports to the
    namenode. The generated mimic checker for the write path is the moral
    equivalent of the enhanced HDFS disk checker (HADOOP-13738). *)

val node : string
val namenode : string
val disk_name : string
val net_name : string
val mem_name : string
val request_queue : string

val program : unit -> Wd_ir.Ast.program
val entries : string list

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Wd_ir.Runtime.resources;
  prog : Wd_ir.Ast.program;
  dn : Wd_ir.Interp.t;
  disk : Wd_env.Disk.t;
  net : Wd_ir.Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
}

val boot :
  ?engine:Wd_ir.Interp.engine ->
  ?mem_capacity:int ->
  sched:Wd_sim.Sched.t ->
  reg:Wd_env.Faultreg.t ->
  prog:Wd_ir.Ast.program ->
  unit ->
  t

val start : t -> Wd_sim.Sched.task list

val put_block :
  ?timeout:int64 -> t -> blkid:string -> data:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val read_block_req :
  ?timeout:int64 -> t -> blkid:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val corrupt_found : t -> int
(** Corrupt blocks the scanner has quarantined. *)

val scan_errors : t -> int
(** Read errors the scanner's error handler has absorbed. *)
