(* Extrinsic crash failure detector: watches a monitor endpoint for
   heartbeat messages from a node and suspects the node after a silence
   longer than [timeout]. This is the baseline the paper's Table 1 calls
   "Crash FD" — perfect for fail-stop, blind to gray failures where the
   heartbeat thread keeps running. *)

type t = {
  sched : Wd_sim.Sched.t;
  timeout : int64;
  match_prefix : string;
  mutable last_seen : int64;
  mutable beats : int;
  mutable suspected_at : int64 option;
  mutable task : Wd_sim.Sched.task option;
}

let payload_matches ~prefix payload =
  match payload with
  | Wd_ir.Ast.VStr s ->
      String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
  | _ -> false

let create ?(timeout = Wd_sim.Time.sec 3) ~sched ~net ~endpoint ~match_prefix ()
    =
  let t =
    {
      sched;
      timeout;
      match_prefix;
      last_seen = Wd_sim.Sched.now sched;
      beats = 0;
      suspected_at = None;
      task = None;
    }
  in
  let task =
    Wd_sim.Sched.spawn ~name:(Fmt.str "hbfd:%s" match_prefix) ~daemon:true sched
      (fun () ->
        while true do
          (match
             Wd_env.Net.recv_timeout net endpoint ~timeout:(Wd_sim.Time.ms 250)
           with
          | Some env ->
              if payload_matches ~prefix:match_prefix env.Wd_env.Net.payload then begin
                t.last_seen <- Wd_sim.Sched.now sched;
                t.beats <- t.beats + 1;
                (* A heartbeat rescinds the suspicion, as in φ-style FDs. *)
                t.suspected_at <- None
              end
          | None -> ());
          let now = Wd_sim.Sched.now sched in
          if Int64.sub now t.last_seen > t.timeout && t.suspected_at = None then
            t.suspected_at <- Some now
        done)
  in
  t.task <- Some task;
  t

let suspected t = t.suspected_at <> None
let suspected_at t = t.suspected_at
let beats t = t.beats
