test/test_env.ml: Alcotest Bytes Disk Faultreg Int64 List Memory Net Option QCheck QCheck_alcotest String Wd_env Wd_sim
