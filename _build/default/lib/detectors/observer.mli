(** Panorama-style observers: requesters of the monitored process report
    error evidence from their request paths; enough evidence in a sliding
    window flips the verdict. Catches client-visible gray failures but
    cannot say why or where — the limitation motivating intrinsic
    watchdogs. *)

type evidence = Success | Failure of string | Timeout

type t

val create :
  ?window:int64 -> ?threshold:float -> ?min_samples:int -> Wd_sim.Sched.t -> t

val observe : t -> evidence -> unit
val suspected : t -> bool
val suspected_at : t -> int64 option
val observations : t -> int

val of_result : [< `Ok of 'a | `Err of string | `Timeout ] -> evidence
