(** Source locations of IR statements.

    [uid] is unique across a finalised program; [path] is the index path
    through nested blocks, printing as ["func:2.1.0"]. Failure reports use
    locations for pinpointing; {!distance} is the localisation metric. *)

type t

val dummy : t
val make : func:string -> path:int list -> uid:int -> t
val func : t -> string
val path : t -> int list
val uid : t -> int
val equal : t -> t -> bool

val distance : t -> t -> int
(** 0 = same statement, 1 = same function, 2 = elsewhere. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
