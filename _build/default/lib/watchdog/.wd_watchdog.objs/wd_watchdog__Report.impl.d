lib/watchdog/report.ml: Fmt Wd_ir Wd_sim
