(** Mining harness: replay fault-free runs per target (fixed seeds plus
    E20 sweep-derived fault-free worlds), record op-level traces, and
    synthesize one {!Wd_infer.Synth.model} per system. Deterministic at
    any pool width. *)

type mine_cfg = {
  mc_fixed_seeds : int list;
  mc_sweep_seed : int;
  mc_sweep_worlds : int;
  mc_per_system : int;
  mc_warmup : int64;
  mc_observe : int64;
  mc_synth : Wd_infer.Synth.config;
}

val default_cfg : mine_cfg

val mine_run :
  ?engine:Wd_ir.Interp.engine ->
  warmup:int64 ->
  observe:int64 ->
  seed:int ->
  string ->
  Wd_infer.Mine.run_obs
(** One fault-free mining run of a system under the deployed (generated
    watchdog) configuration, traced from boot. *)

val program_of : string -> Wd_ir.Ast.program

val locate_in : Wd_ir.Ast.program -> string -> Wd_ir.Loc.t option
(** Resolve a runtime op key to a static location via the program's
    vulnerable-operation analysis keys. *)

type mined = {
  md_models : (string * Wd_infer.Synth.model) list;
  md_runs : int;
  md_events : int;
  md_digest : string;
}

val model_for : mined -> string -> Wd_infer.Synth.model option

val mine_and_synth :
  ?cfg:mine_cfg -> ?engine:Wd_ir.Interp.engine -> ?jobs:int -> unit -> mined

val pp_mined : Format.formatter -> mined -> unit
