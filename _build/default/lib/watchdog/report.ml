(* Failure reports produced by watchdog checkers. A report carries what the
   paper says an intrinsic detector should provide: a verdict, the
   pinpointed code location, and the failure-inducing payload (context
   values) for diagnosis and reproduction. *)

type fkind =
  | Hang            (* liveness: checker (or op) did not complete in time *)
  | Slow            (* liveness: completed but beyond its latency budget *)
  | Error_sig of string   (* safety: operation raised an error *)
  | Assert_fail of string (* safety: an embedded check failed *)
  | Checker_crash of string (* the checker itself died: still a signal *)

type t = {
  at : int64;
  checker_id : string;
  fkind : fkind;
  loc : Wd_ir.Loc.t option;   (* pinpointed failing statement *)
  op_desc : string;           (* e.g. "disk_write(data)" *)
  payload : (string * Wd_ir.Ast.value) list;  (* captured context *)
  mutable validated : bool option;  (* probe-after-mimic confirmation *)
}

let make ~at ~checker_id ~fkind ?loc ?(op_desc = "") ?(payload = []) () =
  { at; checker_id; fkind; loc; op_desc; payload; validated = None }

let is_liveness r = match r.fkind with Hang | Slow -> true | _ -> false

let fkind_name = function
  | Hang -> "hang"
  | Slow -> "slow"
  | Error_sig _ -> "error"
  | Assert_fail _ -> "assert"
  | Checker_crash _ -> "checker-crash"

let pp ppf r =
  let detail =
    match r.fkind with
    | Hang -> ""
    | Slow -> ""
    | Error_sig m | Assert_fail m | Checker_crash m -> ": " ^ m
  in
  Fmt.pf ppf "[%a] %s %s%s %a%s%s" Wd_sim.Time.pp r.at r.checker_id
    (fkind_name r.fkind) detail
    Fmt.(option ~none:(any "<no loc>") Wd_ir.Loc.pp)
    r.loc
    (if r.op_desc = "" then "" else " at " ^ r.op_desc)
    (match r.validated with
    | None -> ""
    | Some true -> " (validated)"
    | Some false -> " (not confirmed)")
