lib/targets/workload.mli: Wd_ir Wd_sim
