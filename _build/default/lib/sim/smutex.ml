(* Simulated mutexes. Non-reentrant, owner-tracked, and capable of real
   deadlock: a lock cycle leaves the tasks blocked forever, which the
   scheduler surfaces as [Deadlock] and watchdog checkers surface as hangs.
   Ownership hand-off goes through the wait queue (no barging), keeping runs
   deterministic. *)

type t = {
  name : string;
  mutable owner : Sched.task option;
  cond : Cond.t;
  mutable acquisitions : int;
  mutable contended : int;
}

let create name =
  {
    name;
    owner = None;
    cond = Cond.create (Fmt.str "mutex %s" name);
    acquisitions = 0;
    contended = 0;
  }

let name m = m.name
let owner m = m.owner
let locked m = m.owner <> None
let acquisitions m = m.acquisitions
let contended m = m.contended

let lock m =
  let s = Sched.get () in
  let me = Sched.self s in
  (match m.owner with
  | Some t when t == me ->
      failwith (Fmt.str "Smutex.lock %s: non-reentrant, already held" m.name)
  | Some _ | None -> ());
  if m.owner <> None then m.contended <- m.contended + 1;
  Cond.await m.cond (fun () -> m.owner = None);
  m.owner <- Some me;
  m.acquisitions <- m.acquisitions + 1

let try_lock m =
  let s = Sched.get () in
  if m.owner = None then begin
    m.owner <- Some (Sched.self s);
    m.acquisitions <- m.acquisitions + 1;
    true
  end
  else false

let unlock m =
  let s = Sched.get () in
  let me = Sched.self s in
  (match m.owner with
  | Some t when t == me -> ()
  | Some _ -> failwith (Fmt.str "Smutex.unlock %s: not the owner" m.name)
  | None -> failwith (Fmt.str "Smutex.unlock %s: not locked" m.name));
  m.owner <- None;
  Cond.signal m.cond

(* [with_lock m f] releases the lock whatever [f] does — including when the
   task is killed while running [f]. *)
let with_lock m f =
  lock m;
  match f () with
  | v ->
      unlock m;
      v
  | exception e ->
      (* The task may have been cancelled inside [f]; still release so other
         tasks are not wedged by a dead owner. *)
      unlock m;
      raise e
