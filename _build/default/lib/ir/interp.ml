(* IR interpreter. One [t] is one *node*: an identity on the network plus an
   execution mode.

   Main mode runs the target system: entries become daemon tasks, ops hit
   the environment directly, and [Hook] statements push live state into the
   watchdog's context table (one-way synchronisation, §3.1).

   Checker mode is how generated mimic checkers execute (§3.2 isolation):
   - disk writes are redirected to a scratch namespace but keep the original
     path for fault-site matching, so they share the main program's fate;
   - network sends keep their site but deliver to a shadow inbox;
   - lock acquisition becomes try-lock with a timeout, raising a liveness
     violation instead of deadlocking against the main program;
   - allocations are released immediately (no leak amplification);
   - global-state writes land in a private overlay, reads are deep-copied;
   - [Hook] statements are no-ops.

   The interpreter also maintains a probe record of the op currently in
   flight — when the watchdog driver times a checker out, that record is the
   pinpointed location and payload of the failure. *)

open Ast

exception Violation of { loc : Loc.t; vkind : string; msg : string }
exception Return_exn of value

type mode = Main | Checker

type probe_state = {
  mutable current_op : (Loc.t * string * int64) option;
  mutable last_op : Loc.t option;
  mutable slowest_op : (Loc.t * int64) option;
  mutable ops_executed : int;
  (* cumulative time spent in operations vs. waiting for locks; slowness
     assessment uses op time only, since benign lock contention is not a
     fail-slow signal (lock wedges have their own liveness budget) *)
  mutable op_ns : int64;
  mutable lock_ns : int64;
}

type hook_spec = { hook_checker : string; hook_vars : string list }

type t = {
  prog : program;
  (* Call fast path: function lookup and arity check are on the per-call
     hot path; a scan of [prog.funcs] plus two [List.length]s per call is
     measurable on checker-heavy campaigns. Resolved once at creation. *)
  funcs_by_name : (string, func * int) Hashtbl.t;
  res : Runtime.resources;
  node : string;
  mode : mode;
  mutable hook_sink : (int -> (string * value) list -> unit) option;
  hooks : (int, hook_spec) Hashtbl.t;
  probe : probe_state;
  shadow_globals : (string, value) Hashtbl.t;
  scratch_prefix : string;
  lock_timeout : int64;
  stmt_cost : int64;
  cpu_quantum : int64;
  mutable cpu_acc : int64;
  mutable stmts_executed : int;
  max_depth : int;
}

let create ?(mode = Main) ?(scratch_prefix = "__wd/")
    ?(lock_timeout = Wd_sim.Time.sec 5) ?(stmt_cost = 100L)
    ?(cpu_quantum = Wd_sim.Time.us 10) ~node ~res prog =
  let funcs_by_name = Hashtbl.create (2 * List.length prog.funcs) in
  List.iter
    (fun f ->
      (* keep the first binding, matching [Ast.find_func] *)
      if not (Hashtbl.mem funcs_by_name f.fname) then
        Hashtbl.add funcs_by_name f.fname (f, List.length f.params))
    prog.funcs;
  {
    prog;
    funcs_by_name;
    res;
    node;
    mode;
    hook_sink = None;
    hooks = Hashtbl.create 16;
    probe =
      {
        current_op = None;
        last_op = None;
        slowest_op = None;
        ops_executed = 0;
        op_ns = 0L;
        lock_ns = 0L;
      };
    shadow_globals = Hashtbl.create 16;
    scratch_prefix;
    lock_timeout;
    stmt_cost;
    cpu_quantum;
    cpu_acc = 0L;
    stmts_executed = 0;
    max_depth = 512;
  }

let program t = t.prog
let node t = t.node
let probe t = t.probe
let resources t = t.res
let stmts_executed t = t.stmts_executed
let set_hook_sink t sink = t.hook_sink <- Some sink
let register_hook t ~id spec = Hashtbl.replace t.hooks id spec
let hook_spec t ~id = Hashtbl.find_opt t.hooks id

(* Charge CPU time for interpreted statements, flushed in quanta so that a
   busy loop advances virtual time (an infinite loop must not freeze the
   simulation, and must be observable as non-progress). *)
let charge t cost =
  t.cpu_acc <- Int64.add t.cpu_acc cost;
  if t.cpu_acc >= t.cpu_quantum then begin
    let acc = t.cpu_acc in
    t.cpu_acc <- 0L;
    Wd_sim.Sched.sleep acc
  end

(* --- expression evaluation (pure) --- *)

let truthy loc = function
  | VBool b -> b
  | v ->
      raise
        (Violation
           { loc; vkind = "type"; msg = Fmt.str "condition not bool: %a" pp_value v })

let rec eval t frame loc expr =
  match expr with
  | Const v -> v
  | Var x -> (
      match Hashtbl.find_opt frame x with
      | Some v -> v
      | None ->
          raise
            (Violation { loc; vkind = "unbound"; msg = Fmt.str "unbound variable %s" x }))
  | Binop (op, a, b) -> eval_binop t frame loc op a b
  | Unop (Not, e) -> (
      match eval t frame loc e with
      | VBool b -> VBool (not b)
      | v ->
          raise
            (Violation { loc; vkind = "type"; msg = Fmt.str "not: %a" pp_value v }))
  | Unop (Neg, e) -> (
      match eval t frame loc e with
      | VInt i -> VInt (-i)
      | v ->
          raise
            (Violation { loc; vkind = "type"; msg = Fmt.str "neg: %a" pp_value v }))
  | Unop (Len, e) -> (
      match eval t frame loc e with
      | VStr s -> VInt (String.length s)
      | VBytes b -> VInt (Bytes.length b)
      | VList l -> VInt (List.length l)
      | VMap m -> VInt (List.length m)
      | v ->
          raise
            (Violation { loc; vkind = "type"; msg = Fmt.str "len: %a" pp_value v }))
  | Pair (a, b) -> VPair (eval t frame loc a, eval t frame loc b)
  | Fst e -> (
      match eval t frame loc e with
      | VPair (a, _) -> a
      | v ->
          raise
            (Violation { loc; vkind = "type"; msg = Fmt.str "fst: %a" pp_value v }))
  | Snd e -> (
      match eval t frame loc e with
      | VPair (_, b) -> b
      | v ->
          raise
            (Violation { loc; vkind = "type"; msg = Fmt.str "snd: %a" pp_value v }))
  | Prim (name, args) -> (
      let vargs = List.map (eval t frame loc) args in
      try Prims.apply name vargs
      with Prims.Prim_error m -> raise (Violation { loc; vkind = "prim"; msg = m }))

and eval_binop t frame loc op a b =
  let va = eval t frame loc a in
  (* Short-circuit boolean operators. *)
  match (op, va) with
  | And, VBool false -> VBool false
  | And, VBool true -> eval t frame loc b
  | Or, VBool true -> VBool true
  | Or, VBool false -> eval t frame loc b
  | _ -> (
      let vb = eval t frame loc b in
      let int_op f =
        match (va, vb) with
        | VInt x, VInt y -> VInt (f x y)
        | _ ->
            raise
              (Violation
                 {
                   loc;
                   vkind = "type";
                   msg = Fmt.str "int op on %a, %a" pp_value va pp_value vb;
                 })
      in
      let cmp_op f =
        match (va, vb) with
        | VInt x, VInt y -> VBool (f (compare x y) 0)
        | VStr x, VStr y -> VBool (f (String.compare x y) 0)
        | _ ->
            raise
              (Violation
                 {
                   loc;
                   vkind = "type";
                   msg = Fmt.str "comparison on %a, %a" pp_value va pp_value vb;
                 })
      in
      match op with
      | Add -> int_op ( + )
      | Sub -> int_op ( - )
      | Mul -> int_op ( * )
      | Div ->
          int_op (fun x y ->
              if y = 0 then
                raise (Violation { loc; vkind = "arith"; msg = "division by zero" })
              else x / y)
      | Mod ->
          int_op (fun x y ->
              if y = 0 then
                raise (Violation { loc; vkind = "arith"; msg = "mod by zero" })
              else x mod y)
      | Eq -> VBool (value_equal va vb)
      | Ne -> VBool (not (value_equal va vb))
      | Lt -> cmp_op ( < )
      | Le -> cmp_op ( <= )
      | Gt -> cmp_op ( > )
      | Ge -> cmp_op ( >= )
      | And | Or -> assert false
      | Concat -> (
          match (va, vb) with
          | VStr x, VStr y -> VStr (x ^ y)
          | _ ->
              raise
                (Violation
                   {
                     loc;
                     vkind = "type";
                     msg = Fmt.str "concat on %a, %a" pp_value va pp_value vb;
                   })))

(* --- operations --- *)

let arg_str loc = function
  | VStr s -> s
  | v ->
      raise
        (Violation { loc; vkind = "type"; msg = Fmt.str "expected string: %a" pp_value v })

let arg_int loc = function
  | VInt i -> i
  | v ->
      raise
        (Violation { loc; vkind = "type"; msg = Fmt.str "expected int: %a" pp_value v })

let arg_bytes loc = function
  | VBytes b -> b
  | VStr s -> Bytes.of_string s
  | v ->
      raise
        (Violation { loc; vkind = "type"; msg = Fmt.str "expected bytes: %a" pp_value v })

let op_desc kind target = Fmt.str "%s(%s)" (op_kind_name kind) target

(* Record op start/end around an effectful action so the watchdog driver can
   pinpoint an in-flight hang and track slow operations. [is_lock] routes
   the elapsed time to the lock-wait counter (excluded from slowness
   assessment); the call site knows, so no description sniffing. *)
let with_probe t loc ~is_lock desc f =
  let s = Wd_sim.Sched.get () in
  let started = Wd_sim.Sched.now s in
  t.probe.current_op <- Some (loc, desc, started);
  let finish () =
    let elapsed = Int64.sub (Wd_sim.Sched.now s) started in
    t.probe.current_op <- None;
    t.probe.last_op <- Some loc;
    t.probe.ops_executed <- t.probe.ops_executed + 1;
    (if is_lock then t.probe.lock_ns <- Int64.add t.probe.lock_ns elapsed
     else t.probe.op_ns <- Int64.add t.probe.op_ns elapsed);
    match t.probe.slowest_op with
    | Some (_, worst) when worst >= elapsed -> ()
    | Some _ | None -> t.probe.slowest_op <- Some (loc, elapsed)
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      (* Leave [current_op] set on failure: it is the pinpoint. *)
      t.probe.last_op <- Some loc;
      raise e

let scratch t path = t.scratch_prefix ^ path

let exec_op t frame loc ~kind ~target ~args =
  let vargs = List.map (eval t frame loc) args in
  let desc = op_desc kind target in
  with_probe t loc ~is_lock:false desc (fun () ->
      match (kind, vargs) with
      | Disk_write, [ p; data ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p and data = arg_bytes loc data in
          (match t.mode with
          | Main -> Wd_env.Disk.write d ~path data
          | Checker ->
              Wd_env.Disk.write ~as_path:path d ~path:(scratch t path) data);
          VUnit
      | Disk_append, [ p; data ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p and data = arg_bytes loc data in
          (match t.mode with
          | Main -> Wd_env.Disk.append d ~path data
          | Checker ->
              Wd_env.Disk.append ~as_path:path d ~path:(scratch t path) data);
          VUnit
      | Disk_read, [ p ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p in
          (match t.mode with
          | Main -> VBytes (Wd_env.Disk.read d ~path)
          | Checker ->
              (* Prefer the checker's own scratch copy; fall back to the
                 real file, which a read cannot damage. Either way the
                 fault site is the original path (fate sharing). *)
              let phys =
                if Wd_env.Disk.peek d ~path:(scratch t path) <> None then
                  scratch t path
                else path
              in
              VBytes (Wd_env.Disk.read ~as_path:path d ~path:phys))
      | Disk_sync, [] ->
          Wd_env.Disk.sync (Runtime.disk t.res target);
          VUnit
      | Disk_delete, [ p ] ->
          let d = Runtime.disk t.res target in
          let path = arg_str loc p in
          (match t.mode with
          | Main -> Wd_env.Disk.delete d ~path
          | Checker -> Wd_env.Disk.delete ~as_path:path d ~path:(scratch t path));
          VUnit
      | Disk_exists, [ p ] ->
          VBool (Wd_env.Disk.exists (Runtime.disk t.res target) ~path:(arg_str loc p))
      | Disk_list, [ p ] ->
          let files =
            Wd_env.Disk.list (Runtime.disk t.res target) ~prefix:(arg_str loc p)
          in
          VList (List.map (fun f -> VStr f) files)
      | Net_send, [ dst; payload ] ->
          let n = Runtime.net t.res target in
          let dst = arg_str loc dst in
          (match t.mode with
          | Main -> Wd_env.Net.send n ~src:t.node ~dst payload
          | Checker ->
              (* Same src/dst fault site (fate sharing) but delivery lands in
                 the destination's shadow inbox, invisible to the main
                 program. *)
              let shadow = "__wd:" ^ dst in
              Wd_env.Net.ensure_registered n shadow;
              Wd_env.Net.send ~site_dst:dst n ~src:t.node ~dst:shadow payload);
          VUnit
      | Net_recv, [ timeout ] -> (
          let n = Runtime.net t.res target in
          let timeout = Wd_sim.Time.ms (arg_int loc timeout) in
          match t.mode with
          | Main -> (
              match Wd_env.Net.recv_timeout n t.node ~timeout with
              | Some env ->
                  VMap
                    [
                      ("ok", VBool true);
                      ("src", VStr env.Wd_env.Net.src);
                      ("payload", env.Wd_env.Net.payload);
                      ("corrupted", VBool env.Wd_env.Net.corrupted);
                    ]
              | None -> VMap [ ("ok", VBool false) ])
          | Checker ->
              (* Receiving is not mimicked against live traffic; a checker
                 poll returns an empty mailbox marker. *)
              VMap [ ("ok", VBool false) ])
      | Queue_put, [ data ] ->
          let q =
            Runtime.queue t.res
              (match t.mode with Main -> target | Checker -> "__wd:" ^ target)
          in
          Wd_sim.Channel.send q data;
          VUnit
      | Queue_get, [ timeout ] -> (
          match t.mode with
          | Main -> (
              let q = Runtime.queue t.res target in
              let timeout = Wd_sim.Time.ms (arg_int loc timeout) in
              match Wd_sim.Channel.recv_timeout q ~timeout with
              | Some v -> VMap [ ("ok", VBool true); ("payload", v) ]
              | None -> VMap [ ("ok", VBool false) ])
          | Checker -> VMap [ ("ok", VBool false) ])
      | Mem_alloc, [ size ] ->
          let m = Runtime.mem t.res target in
          let size = arg_int loc size in
          Wd_env.Memory.alloc m size;
          (* A checker must experience allocation stalls without leaking. *)
          (match t.mode with Checker -> Wd_env.Memory.free m size | Main -> ());
          VUnit
      | Mem_free, [ size ] ->
          (match t.mode with
          | Main -> Wd_env.Memory.free (Runtime.mem t.res target) (arg_int loc size)
          | Checker -> ());
          VUnit
      | State_get, [] -> (
          match t.mode with
          | Main -> Runtime.global t.res target
          | Checker -> (
              match Hashtbl.find_opt t.shadow_globals target with
              | Some v -> v
              | None -> copy_value (Runtime.global t.res target)))
      | State_set, [ v ] ->
          (match t.mode with
          | Main -> Runtime.set_global t.res target v
          | Checker -> Hashtbl.replace t.shadow_globals target v);
          VUnit
      | Sleep_op, [ ms ] ->
          Wd_sim.Sched.sleep (Wd_sim.Time.ms (arg_int loc ms));
          VUnit
      | Log_op, [ msg ] ->
          Runtime.log t.res ~node:t.node (Fmt.str "%a" pp_value msg);
          VUnit
      | _, _ ->
          raise
            (Violation
               {
                 loc;
                 vkind = "arity";
                 msg = Fmt.str "%s: bad arguments" (op_kind_name kind);
               }))

(* --- statement execution --- *)

let rec exec_block t frame depth block = List.iter (exec_stmt t frame depth) block

and exec_stmt t frame depth st =
  t.stmts_executed <- t.stmts_executed + 1;
  charge t t.stmt_cost;
  let loc = st.loc in
  match st.node with
  | Let (x, e) | Assign (x, e) -> Hashtbl.replace frame x (eval t frame loc e)
  | Op { kind; target; args; bind } -> (
      let v = exec_op t frame loc ~kind ~target ~args in
      match bind with Some x -> Hashtbl.replace frame x v | None -> ())
  | Call { func; args; bind } -> (
      let vargs = List.map (eval t frame loc) args in
      let v = exec_call t depth func vargs in
      match bind with Some x -> Hashtbl.replace frame x v | None -> ())
  | If (c, th, el) ->
      if truthy loc (eval t frame loc c) then exec_block t frame depth th
      else exec_block t frame depth el
  | While (c, body) ->
      while truthy loc (eval t frame loc c) do
        exec_block t frame depth body
      done
  | Foreach (x, e, body) -> (
      match eval t frame loc e with
      | VList items ->
          List.iter
            (fun item ->
              Hashtbl.replace frame x item;
              exec_block t frame depth body)
            items
      | v ->
          raise
            (Violation
               { loc; vkind = "type"; msg = Fmt.str "foreach over %a" pp_value v }))
  | Sync (lockname, body) -> exec_sync t frame depth loc lockname body
  | Try (body, exn, handler) -> (
      try exec_block t frame depth body with
      | Wd_env.Disk.Io_error m
      | Wd_env.Net.Net_error m
      | Wd_env.Memory.Out_of_memory m ->
          Hashtbl.replace frame exn (VStr m);
          exec_block t frame depth handler
      | Wd_sim.Channel.Closed m ->
          Hashtbl.replace frame exn (VStr ("channel closed: " ^ m));
          exec_block t frame depth handler)
  | Return e -> raise (Return_exn (eval t frame loc e))
  | Assert (e, msg) ->
      if not (truthy loc (eval t frame loc e)) then
        raise (Violation { loc; vkind = "assert"; msg })
  | Compute { cost_ns; note = _ } -> charge t cost_ns
  | Hook id -> exec_hook t frame id

and exec_sync t frame depth loc lockname body =
  let lock = Runtime.lock t.res lockname in
  let desc = Fmt.str "lock(%s)" lockname in
  match t.mode with
  | Main ->
      with_probe t loc ~is_lock:true desc (fun () -> Wd_sim.Smutex.lock lock);
      let release () = Wd_sim.Smutex.unlock lock in
      (match exec_block t frame depth body with
      | () -> release ()
      | exception e ->
          release ();
          raise e)
  | Checker ->
      (* Try-lock with timeout: hanging forever against a wedged main
         program would defeat the watchdog; timing out *is* the finding.
         Once acquired the lock is released immediately: the checker's body
         works on scratch files and shadow state, so it needs no mutual
         exclusion — and holding a real lock across a mimicked (possibly
         hanging) operation would let the watchdog wedge the main program,
         the §3.2 isolation failure. *)
      let acquired =
        with_probe t loc ~is_lock:true desc (fun () ->
            let s = Wd_sim.Sched.get () in
            let deadline = Int64.add (Wd_sim.Sched.now s) t.lock_timeout in
            let rec attempt () =
              if Wd_sim.Smutex.try_lock lock then true
              else if Wd_sim.Sched.now s >= deadline then false
              else begin
                Wd_sim.Sched.sleep (Wd_sim.Time.ms 50);
                attempt ()
              end
            in
            attempt ())
      in
      if not acquired then
        raise
          (Violation
             {
               loc;
               vkind = "liveness";
               msg = Fmt.str "lock %s not acquired within %a" lockname Wd_sim.Time.pp t.lock_timeout;
             });
      Wd_sim.Smutex.unlock lock;
      exec_block t frame depth body

and exec_hook t frame id =
  match t.mode with
  | Checker -> ()
  | Main -> (
      match (t.hook_sink, Hashtbl.find_opt t.hooks id) with
      | Some sink, Some spec ->
          let values =
            List.filter_map
              (fun x ->
                match Hashtbl.find_opt frame x with
                | Some v -> Some (x, copy_value v) (* replication: never alias *)
                | None -> None)
              spec.hook_vars
          in
          sink id values
      | _, _ -> ())

and exec_call t depth fname vargs =
  if depth > t.max_depth then
    raise
      (Violation
         { loc = Loc.dummy; vkind = "depth"; msg = Fmt.str "call depth > %d" t.max_depth });
  let f, arity =
    match Hashtbl.find_opt t.funcs_by_name fname with
    | Some fa -> fa
    | None ->
        (* unknown function: defer to [find_func] for the canonical error *)
        let f = find_func t.prog fname in
        (f, List.length f.params)
  in
  if List.compare_length_with vargs arity <> 0 then
    raise
      (Violation
         { loc = Loc.dummy; vkind = "arity"; msg = Fmt.str "call %s arity" fname });
  let frame = Hashtbl.create 16 in
  List.iter2 (fun p v -> Hashtbl.replace frame p v) f.params vargs;
  match exec_block t frame (depth + 1) f.body with
  | () -> VUnit
  | exception Return_exn v -> v

(* --- public API --- *)

let call t fname args = exec_call t 0 fname args

let start ?entries t sched =
  let wanted = entries in
  let selected =
    match wanted with
    | None -> t.prog.entries
    | Some names ->
        List.filter (fun e -> List.mem e.entry_name names) t.prog.entries
  in
  List.map
    (fun e ->
      Wd_sim.Sched.spawn ~name:(Fmt.str "%s/%s" t.node e.entry_name) ~daemon:true
        sched
        (fun () -> ignore (call t e.entry_func e.entry_args)))
    selected
