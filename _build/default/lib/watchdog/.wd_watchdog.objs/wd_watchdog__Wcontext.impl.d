lib/watchdog/wcontext.ml: Hashtbl Int64 List Wd_ir
