lib/ir/prims.mli: Ast
