(** Watchdog context table (§3.1 state synchronisation).

    Hooks in the main program push live values in — one-way, the main
    program never reads the table — and the driver checks readiness and
    fetches arguments before running a checker. Context replication
    (checkers never alias mutable main-program memory) is implemented
    copy-on-write: persistent values are shared, bytes-containing values
    are copied on read with the copy cached against a per-slot version
    stamp. Observably identical to deep-copying on every fetch. *)

type t

val create : unit -> t

val register_unit : t -> unit_id:string -> params:string list -> unit
(** Declare a checker's context: its ordered parameter list. A unit with no
    parameters is always {!ready}. *)

val bind_hook :
  t -> hook_id:int -> unit_id:string -> captures:(string * string) list -> unit
(** [captures] maps (context param, temporary variable captured in main). *)

val sink : t -> now:int64 -> int -> (string * Wd_ir.Ast.value) list -> unit
(** The hook sink: deliver (tmp var, value) pairs for a hook id. Unknown
    hooks and variables are ignored. *)

val ready : t -> string -> bool
(** All parameters have been captured at least once. *)

val args : t -> string -> Wd_ir.Ast.value list option
(** Ordered argument list, observably a deep copy; [None] until ready. *)

val snapshot : t -> string -> (string * Wd_ir.Ast.value) list
(** Captured (param, value) pairs, for failure-report payloads. *)

val staleness : t -> now:int64 -> string -> int64 option
(** Age of the stalest slot: how long since the main program last passed
    the corresponding hook. *)

val updates : t -> string -> int
val total_updates : t -> int

val version : t -> string -> int
(** The unit's monotone context version (bumped once per hook delivery).
    An unchanged version means every slot holds exactly what a previous
    reader saw, so it is the dedup key an adaptive scheduler pairs with a
    checker id; the per-slot COW cache then makes co-scheduled readers of
    one version share one snapshot instead of re-copying. *)
