(* Cheap recovery (§5.2): the watchdog's pinpointed reports drive
   component-level microreboots. A transient WAL fault kills the kvs
   listener thread; the watchdog report maps the pinpointed function back
   to its owning component, which is rebooted — and a supervisor sweep
   retries on a backoff until the environment heals.

     dune exec examples/recovery_demo.exe *)

module Kvs = Wd_targets.Kvs
module Generate = Wd_autowatchdog.Generate
module Recovery = Wd_watchdog.Recovery

let () =
  let prog = Kvs.program () in
  let g = Generate.analyze prog in
  let sched = Wd_sim.Sched.create ~seed:77 () in
  let reg = Wd_env.Faultreg.create () in
  let kvs =
    Kvs.boot ~sched ~reg ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
  in
  let driver = Wd_watchdog.Driver.create sched in
  let _ = Generate.attach g ~sched ~main:kvs.Kvs.leader ~driver in

  (* start the leader's daemons and register each as a reboot component *)
  let leader_tasks =
    Wd_ir.Interp.start ~entries:Kvs.leader_entries kvs.Kvs.leader sched
  in
  ignore (Wd_ir.Interp.start ~entries:Kvs.replica_entries kvs.Kvs.replica sched);
  ignore (Kvs.spawn_reply_dispatcher kvs);
  let recovery = Recovery.create ~backoff:(Wd_sim.Time.sec 3) sched in
  Generate.register_components recovery ~sched ~main:kvs.Kvs.leader
    ~entries:Kvs.leader_entries ~tasks:leader_tasks;
  Wd_watchdog.Driver.on_report driver (fun r ->
      Fmt.pr "ALARM  %a@." Wd_watchdog.Report.pp r;
      Recovery.action recovery r);
  ignore (Recovery.supervise recovery);
  Wd_watchdog.Driver.start driver;

  let ok = ref 0 and failed = ref 0 in
  ignore
    (Wd_sim.Sched.spawn ~name:"client" ~daemon:true sched (fun () ->
         let i = ref 0 in
         while true do
           Wd_sim.Sched.sleep (Wd_sim.Time.ms 100);
           incr i;
           match
             Kvs.set ~timeout:(Wd_sim.Time.ms 800) kvs
               ~key:(Fmt.str "k%d" (!i mod 20)) ~value:"v"
           with
           | `Ok _ -> incr ok
           | `Timeout | `Err _ -> incr failed
         done));

  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 8) sched);
  Fmt.pr "t=8s   healthy: %d writes ok@." !ok;

  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "wal-eio";
      site_pattern = "disk:kvs.disk:append:wal/*";
      behaviour = Wd_env.Faultreg.Error "EIO";
      start_at = Wd_sim.Time.sec 8;
      stop_at = Wd_sim.Time.sec 18;
      once = false;
    };
  Fmt.pr "t=8s   FAULT: WAL appends fail with EIO for 10s (listener dies)@.";
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 40) sched);

  Fmt.pr "@.t=40s  %d writes ok, %d failed@." !ok !failed;
  Fmt.pr "microreboot log:@.";
  List.iter (fun e -> Fmt.pr "  %a@." Recovery.pp_event e) (Recovery.events recovery);
  Fmt.pr "listener restarts: %d; escalations: %d@."
    (Recovery.restarts recovery ~name:"listener")
    (List.length (Recovery.escalations recovery))
