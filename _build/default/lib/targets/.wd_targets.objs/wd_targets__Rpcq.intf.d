lib/targets/rpcq.mli: Wd_ir Wd_sim
