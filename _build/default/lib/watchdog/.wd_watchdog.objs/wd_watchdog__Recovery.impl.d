lib/watchdog/recovery.ml: Fmt Int64 List Printexc Report Wd_ir Wd_sim
