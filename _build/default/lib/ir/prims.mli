(** Pure primitives callable from IR expressions via [Prim (name, args)].

    All primitives are deterministic functions of their arguments. Effects
    live exclusively in [Op] statements so the vulnerability analysis sees
    every one of them. *)

exception Prim_error of string

val apply : string -> Ast.value list -> Ast.value
(** Evaluate primitive [name] on the given arguments.
    Raises {!Prim_error} on unknown names or ill-typed arguments. *)

val known : string list
(** Names accepted by {!apply}; the validator checks against this list. *)

val is_known : string -> bool
