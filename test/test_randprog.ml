(* Property tests over randomly generated IR programs: the analysis and the
   generated watchdog must uphold their invariants on arbitrary (well-formed,
   fault-free-safe) system programs, not just the four hand-written targets.

   The generator lives in test/support (Wd_testgen.Randgen) so the engine
   differential test drives the same program family. *)

module Rng = Wd_sim.Rng
module Sched = Wd_sim.Sched
module Time = Wd_sim.Time
module Reduction = Wd_analysis.Reduction
module Generate = Wd_autowatchdog.Generate
open Wd_ir.Ast

let gen_program = Wd_testgen.Randgen.gen_program

(* --- properties --- *)

let prop_valid =
  QCheck.Test.make ~name:"generated programs validate" ~count:60 QCheck.small_int
    (fun seed ->
      match Wd_ir.Validate.check (gen_program seed) with
      | Ok () -> true
      | Error _ -> false)

let all_vulnerable_keys prog =
  List.concat_map
    (fun f ->
      List.map
        (fun v -> v.Wd_analysis.Vulnerable.vkey)
        (Wd_analysis.Vulnerable.collect_in_func Wd_analysis.Vulnerable.default f))
    prog.funcs

let prop_reduction_sound =
  QCheck.Test.make ~name:"reduction only retains vulnerable operations"
    ~count:60 QCheck.small_int (fun seed ->
      let prog = gen_program seed in
      let r = Reduction.reduce prog in
      let vuln = all_vulnerable_keys prog in
      List.for_all
        (fun (u : Reduction.unit_) ->
          List.for_all (fun k -> List.mem k vuln) u.Reduction.keys)
        r.Reduction.units)

let prop_instrumented_valid =
  QCheck.Test.make ~name:"instrumented programs validate" ~count:60
    QCheck.small_int (fun seed ->
      let r = Reduction.reduce (gen_program seed) in
      match Wd_ir.Validate.check r.Reduction.instrumented with
      | Ok () -> true
      | Error _ -> false)

let prop_locs_preserved =
  QCheck.Test.make ~name:"instrumentation preserves original locations"
    ~count:40 QCheck.small_int (fun seed ->
      let prog = gen_program seed in
      let r = Reduction.reduce prog in
      let uids prog =
        let tbl = Hashtbl.create 64 in
        let rec go block =
          List.iter
            (fun st ->
              Hashtbl.replace tbl (Wd_ir.Loc.uid st.loc) ();
              match st.node with
              | If (_, t, e) -> go t; go e
              | While (_, b) | Foreach (_, _, b) | Sync (_, b) -> go b
              | Try (b, _, h) -> go b; go h
              | _ -> ())
            block
        in
        List.iter (fun f -> go f.body) prog.funcs;
        tbl
      in
      let orig = uids prog and inst = uids r.Reduction.instrumented in
      Hashtbl.fold (fun uid () acc -> acc && Hashtbl.mem inst uid) orig true)

(* Boot the instrumented program with its generated watchdog on a clean
   environment: nothing may crash and no checker may raise a false alarm. *)
let run_with_watchdog seed =
  let prog = gen_program seed in
  let g = Generate.analyze prog in
  let sched = Sched.create ~seed () in
  let reg = Wd_env.Faultreg.create () in
  let rng = Rng.create ~seed:(seed + 1) in
  let res = Wd_ir.Runtime.create ~reg ~rng in
  Wd_ir.Runtime.add_disk res (Wd_env.Disk.create ~reg ~rng:(Rng.split rng) "d0");
  let net = Wd_env.Net.create ~reg ~rng:(Rng.split rng) "net0" in
  Wd_env.Net.register net "n1";
  Wd_env.Net.register net "peer";
  Wd_ir.Runtime.add_net res net;
  Wd_ir.Runtime.add_mem res (Wd_env.Memory.create ~reg ~capacity:(1 lsl 24) "m0");
  let main =
    Wd_ir.Interp.create ~node:"n1" ~res g.Generate.red.Reduction.instrumented
  in
  let driver = Wd_watchdog.Driver.create sched in
  ignore (Generate.attach g ~sched ~main ~driver);
  let tasks = Wd_ir.Interp.start main sched in
  Wd_watchdog.Driver.start driver;
  ignore (Sched.run ~until:(Time.sec 12) sched);
  let entry_alive =
    List.for_all
      (fun t ->
        match Sched.task_status t with
        | None -> true
        | Some Sched.Exited | Some Sched.Killed | Some (Sched.Failed _) -> false)
      tasks
  in
  (entry_alive, Wd_watchdog.Driver.reports driver)

let prop_no_false_alarms =
  QCheck.Test.make
    ~name:"generated watchdog raises no false alarms on fault-free programs"
    ~count:25 QCheck.small_int (fun seed ->
      let entry_alive, reports = run_with_watchdog seed in
      entry_alive && reports = [])

(* Detection-completeness property: pick a vulnerable disk-write family of
   the generated program, wedge it with a Hang fault, and require that the
   watchdog either reports it within the budget or never armed the relevant
   checker (the op sits on an untaken branch, so its context stayed
   NOT_READY). *)
let hang_site_of_program prog =
  (* a disk-write key with a static path prefix makes a precise fault site *)
  List.concat_map
    (fun f ->
      List.filter_map
        (fun v ->
          match String.split_on_char ':' v.Wd_analysis.Vulnerable.vkey with
          | [ "disk_write"; target; prefix ] when prefix <> "" ->
              Some (Fmt.str "disk:%s:write:%s*" target prefix)
          | _ -> None)
        (Wd_analysis.Vulnerable.collect_in_func Wd_analysis.Vulnerable.default f))
    prog.Wd_ir.Ast.funcs

let prop_hang_detected_or_unarmed =
  QCheck.Test.make
    ~name:"injected hangs are detected wherever a checker armed" ~count:20
    QCheck.small_int
    (fun seed ->
      let prog = gen_program seed in
      let sites = hang_site_of_program prog in
      if sites = [] then true (* nothing to wedge in this program *)
      else begin
        let site = List.hd sites in
        let g = Generate.analyze prog in
        let sched = Sched.create ~seed () in
        let reg = Wd_env.Faultreg.create () in
        let rng = Rng.create ~seed:(seed + 1) in
        let res = Wd_ir.Runtime.create ~reg ~rng in
        Wd_ir.Runtime.add_disk res
          (Wd_env.Disk.create ~reg ~rng:(Rng.split rng) "d0");
        let net = Wd_env.Net.create ~reg ~rng:(Rng.split rng) "net0" in
        Wd_env.Net.register net "n1";
        Wd_env.Net.register net "peer";
        Wd_ir.Runtime.add_net res net;
        Wd_ir.Runtime.add_mem res
          (Wd_env.Memory.create ~reg ~capacity:(1 lsl 24) "m0");
        let main =
          Wd_ir.Interp.create ~node:"n1" ~res g.Generate.red.Reduction.instrumented
        in
        let driver = Wd_watchdog.Driver.create sched in
        let wctx = Generate.attach g ~sched ~main ~driver in
        ignore (Wd_ir.Interp.start main sched);
        Wd_watchdog.Driver.start driver;
        ignore (Sched.run ~until:(Time.sec 5) sched);
        Wd_env.Faultreg.inject reg
          {
            Wd_env.Faultreg.id = "hang";
            site_pattern = site;
            behaviour = Wd_env.Faultreg.Hang;
            start_at = Time.sec 5;
            stop_at = Time.never;
            once = false;
          };
        ignore (Sched.run ~until:(Time.sec 25) sched);
        let detected = Wd_watchdog.Driver.reports driver <> [] in
        let any_armed =
          List.exists
            (fun (u : Reduction.unit_) ->
              List.exists
                (fun k ->
                  match String.split_on_char ':' k with
                  | [ "disk_write"; _; p ] ->
                      p <> ""
                      && String.length site
                         >= String.length (Fmt.str "disk:d0:write:%s" p)
                      && Wd_env.Faultreg.site_matches ~pattern:site
                           ~site:(Fmt.str "disk:d0:write:%sXX" p)
                  | _ -> false)
                u.Reduction.keys
              && Wd_watchdog.Wcontext.ready wctx u.Reduction.unit_id)
            g.Generate.units
        in
        detected || not any_armed
      end)

let () =
  Alcotest.run "randprog"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_valid;
          QCheck_alcotest.to_alcotest prop_reduction_sound;
          QCheck_alcotest.to_alcotest prop_instrumented_valid;
          QCheck_alcotest.to_alcotest prop_locs_preserved;
          QCheck_alcotest.to_alcotest ~long:true prop_no_false_alarms;
          QCheck_alcotest.to_alcotest ~long:true prop_hang_detected_or_unarmed;
        ] );
    ]
