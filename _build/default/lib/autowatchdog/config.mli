(** Generation-time configuration: what counts as vulnerable (§4.1), which
    reduction steps run (ablations), and the runtime budgets for generated
    checkers. *)

type t = {
  vuln : Wd_analysis.Vulnerable.config;
  opts : Wd_analysis.Reduction.options;
  checker_period : int64;
  checker_timeout : int64;
  slow_budget : int64 option;  (** [None] = driver's adaptive baseline *)
  lock_timeout : int64;        (** checker-mode try-lock budget *)
  enhance : bool;              (** recipe safety checks (read-back, guards) *)
}

val default : t
