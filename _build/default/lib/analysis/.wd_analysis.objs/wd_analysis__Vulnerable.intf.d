lib/analysis/vulnerable.mli: Hashtbl Wd_ir
