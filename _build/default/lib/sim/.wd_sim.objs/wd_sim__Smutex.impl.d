lib/sim/smutex.ml: Cond Fmt Sched
