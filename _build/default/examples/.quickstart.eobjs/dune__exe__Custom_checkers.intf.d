examples/custom_checkers.mli:
