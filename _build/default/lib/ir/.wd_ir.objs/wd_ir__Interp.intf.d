lib/ir/interp.mli: Ast Loc Runtime Wd_sim
