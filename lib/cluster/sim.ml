(* Cluster campaign cell: boot an N-node fleet of one target system inside
   a single deterministic scheduler world, inject one cluster-scoped
   scenario, and grade the fleet plane's verdicts against the scenario's
   expectation. A cell is a pure function of (seed, system, scenario), so
   campaigns fan cells out over domains exactly like single-node ones. *)

type config = {
  seed : int;
  nodes : int;
  system : string; (* "zkmini" | "cstore" *)
  warmup : int64; (* let checkers learn latency baselines first *)
  observe : int64; (* post-injection observation window *)
  engine : Wd_ir.Interp.engine option;
      (* IR engine for every node's target + checkers; None follows the
         process default *)
}

let default_config =
  {
    seed = 42;
    nodes = 5;
    system = "zkmini";
    warmup = Wd_sim.Time.sec 8;
    observe = Wd_sim.Time.sec 15;
    engine = None;
  }

type result = {
  cr_csid : string;
  cr_system : string;
  cr_seed : int;
  cr_nodes : int;
  cr_events : Fleet.event list; (* chronological *)
  cr_first_latency : int64 option; (* first verdict - injection time *)
  cr_indicted_nodes : string list;
  cr_indicted_links : (string * string) list;
  cr_component : string option;
  cr_overloaded : bool;
  cr_as_expected : bool; (* verdicts match the scenario's expectation *)
  cr_component_ok : bool; (* named component is in the truth set *)
  cr_membership_events : int;
  cr_checker_count : int; (* per fleet, all nodes *)
  cr_workload_ok : float; (* min per-node success ratio *)
}

(* Grade the fleet's verdicts against the scenario's expectation. A node
   indictment is correct only if it names exactly the victim; a link
   verdict is correct only if it covers the cut pair and indicts no node;
   overload and fault-free demand zero indictments of either kind. *)
let grade (s : Wd_faults.Cluster_catalog.cscenario) ~system ~fleet =
  let inodes = Fleet.indicted_nodes fleet in
  let ilinks = Fleet.indicted_links fleet in
  let component = Fleet.first_component fleet in
  match s.Wd_faults.Cluster_catalog.cexpected with
  | Wd_faults.Cluster_catalog.Expect_node v ->
      let victim = Fabric.node_name v in
      let right_node = inodes = [ victim ] && ilinks = [] in
      let truth =
        Wd_faults.Cluster_catalog.truth_components s ~system
      in
      let component_ok =
        match component with
        | Some c -> truth = [] || List.mem c truth
        | None -> false
      in
      (right_node, right_node && component_ok)
  | Wd_faults.Cluster_catalog.Expect_links -> (
      match s.Wd_faults.Cluster_catalog.ckind with
      | Wd_faults.Cluster_catalog.Asym_partition { src; dst } ->
          let cut =
            let a = Fabric.node_name src and b = Fabric.node_name dst in
            if a <= b then (a, b) else (b, a)
          in
          (inodes = [] && List.mem cut ilinks, true)
      | _ -> (inodes = [] && ilinks <> [], true))
  | Wd_faults.Cluster_catalog.Expect_no_indictment ->
      (inodes = [] && ilinks = [], true)

let run ?(cfg = default_config) csid =
  let s = Wd_faults.Cluster_catalog.find csid in
  let sched = Wd_sim.Sched.create ~seed:cfg.seed () in
  let ids = List.init cfg.nodes Fabric.node_name in
  let fabric = Fabric.create ~sched ~nodes:ids () in
  let nodes =
    List.init cfg.nodes (fun i ->
        Node.boot ?engine:cfg.engine ~sched ~system:cfg.system ~index:i ())
  in
  let agents =
    List.map (fun n -> Membership.create ~sched ~fabric ~node:n ()) nodes
  in
  let fleet = Fleet.create ~sched ~nodes ~agents () in
  List.iter Membership.start agents;
  Fleet.start fleet;
  ignore (Wd_sim.Sched.run ~until:cfg.warmup sched);
  let inject_at = Wd_sim.Sched.now sched in
  Wd_faults.Cluster_catalog.inject
    ~node_reg:(fun i -> (List.nth nodes i).Node.reg)
    ~fabric_reg:fabric.Fabric.reg ~node_name:Fabric.node_name ~at:inject_at s;
  (match s.Wd_faults.Cluster_catalog.ckind with
  | Wd_faults.Cluster_catalog.Fleet_overload -> List.iter Node.start_burst nodes
  | _ -> ());
  ignore (Wd_sim.Sched.run ~until:(Int64.add inject_at cfg.observe) sched);
  let events = Fleet.events fleet in
  let first_latency =
    match events with
    | [] -> None
    | e :: _ -> Some (Int64.sub e.Fleet.ev_at inject_at)
  in
  let as_expected, component_ok = grade s ~system:cfg.system ~fleet in
  {
    cr_csid = csid;
    cr_system = cfg.system;
    cr_seed = cfg.seed;
    cr_nodes = cfg.nodes;
    cr_events = events;
    cr_first_latency = first_latency;
    cr_indicted_nodes = Fleet.indicted_nodes fleet;
    cr_indicted_links = Fleet.indicted_links fleet;
    cr_component = Fleet.first_component fleet;
    cr_overloaded = Fleet.overloaded fleet;
    cr_as_expected = as_expected;
    cr_component_ok = component_ok;
    cr_membership_events = Fleet.membership_event_count fleet;
    cr_checker_count =
      List.fold_left (fun acc n -> acc + Node.checker_count n) 0 nodes;
    cr_workload_ok =
      List.fold_left
        (fun acc (n : Node.t) ->
          min acc (Wd_targets.Workload.success_ratio n.Node.workload))
        1.0 nodes;
  }
