lib/harness/systems.ml: Fmt List String Wd_analysis Wd_autowatchdog Wd_detectors Wd_env Wd_ir Wd_sim Wd_targets Wd_watchdog
