examples/custom_checkers.ml: Fmt List Wd_analysis Wd_autowatchdog Wd_detectors Wd_env Wd_ir Wd_sim Wd_targets Wd_watchdog
