test/test_extensions.ml: Alcotest Bytes List Wd_analysis Wd_autowatchdog Wd_env Wd_ir Wd_sim Wd_watchdog
