(* Benchmark harness.

   Part 1 — bechamel micro-benchmarks of the infrastructure itself: one
   [Test.make] per table/figure-bearing component, measuring the host-time
   cost of the machinery that the experiments rely on (scheduler, IR
   interpreter, AutoWatchdog analysis, context synchronisation, checker
   execution).

   Part 2 — regeneration of every table and figure of the paper (E1-E10 as
   indexed in DESIGN.md), printed in full. Absolute numbers come from the
   deterministic simulator; the shapes are what reproduce the paper. *)

open Bechamel
open Toolkit

module Sched = Wd_sim.Sched
module Vtime = Wd_sim.Time
module B = Wd_ir.Builder
module Generate = Wd_autowatchdog.Generate

(* --- micro-benchmark subjects --- *)

let bench_sched_spawn_run =
  Test.make ~name:"sim/spawn+run 100 tasks"
    (Staged.stage (fun () ->
         let s = Sched.create ~seed:1 () in
         for i = 0 to 99 do
           ignore
             (Sched.spawn ~name:(string_of_int i) s (fun () ->
                  Sched.sleep (Vtime.us 10)))
         done;
         ignore (Sched.run s)))

let bench_sched_ping_pong =
  Test.make ~name:"sim/1000 context switches"
    (Staged.stage (fun () ->
         let s = Sched.create ~seed:1 () in
         ignore
           (Sched.spawn s (fun () ->
                for _ = 1 to 1000 do
                  Sched.yield ()
                done));
         ignore (Sched.run s)))

let interp_prog =
  B.program "bench"
    ~funcs:
      [
        B.func "sum_to" ~params:[ "n" ]
          [
            B.let_ "acc" (B.i 0);
            B.let_ "i" (B.i 1);
            B.while_
              B.(v "i" <=: v "n")
              [
                B.assign "acc" B.(v "acc" +: v "i");
                B.assign "i" B.(v "i" +: i 1);
              ];
            B.return (B.v "acc");
          ];
      ]
    ~entries:[]

let bench_interp_statements =
  Test.make ~name:"ir/interpret 3000-stmt loop"
    (Staged.stage (fun () ->
         let s = Sched.create ~seed:1 () in
         let reg = Wd_env.Faultreg.create () in
         let res = Wd_ir.Runtime.create ~reg ~rng:(Wd_sim.Rng.create ~seed:2) in
         let main = Wd_ir.Interp.create ~node:"n" ~res interp_prog in
         ignore
           (Sched.spawn s (fun () ->
                ignore (Wd_ir.Interp.call main "sum_to" [ Wd_ir.Ast.VInt 1000 ])));
         ignore (Sched.run s)))

let kvs_prog = Wd_targets.Kvs.program ()
let zk_prog = Wd_targets.Zkmini.program ()

let bench_generate_kvs =
  Test.make ~name:"autowatchdog/analyze kvs"
    (Staged.stage (fun () -> ignore (Generate.analyze kvs_prog)))

let bench_generate_zk =
  Test.make ~name:"autowatchdog/analyze zkmini"
    (Staged.stage (fun () -> ignore (Generate.analyze zk_prog)))

let bench_context_sync =
  Test.make ~name:"watchdog/hook capture + context sync"
    (Staged.stage
       (let w = Wd_watchdog.Wcontext.create () in
        Wd_watchdog.Wcontext.register_unit w ~unit_id:"u" ~params:[ "a"; "b" ];
        Wd_watchdog.Wcontext.bind_hook w ~hook_id:0 ~unit_id:"u"
          ~captures:[ ("a", "ta"); ("b", "tb") ];
        let payload = Wd_ir.Ast.VBytes (Bytes.create 256) in
        fun () ->
          Wd_watchdog.Wcontext.sink w ~now:1L 0
            [ ("ta", Wd_ir.Ast.copy_value payload); ("tb", Wd_ir.Ast.VInt 1) ];
          ignore (Wd_watchdog.Wcontext.args w "u")))

let bench_checker_execution =
  Test.make ~name:"watchdog/kvs+watchdog, 2 sim-seconds"
    (Staged.stage (fun () ->
         let g = Generate.analyze kvs_prog in
         let s = Sched.create ~seed:1 () in
         let reg = Wd_env.Faultreg.create () in
         let t =
           Wd_targets.Kvs.boot ~sched:s ~reg
             ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
         in
         let driver = Wd_watchdog.Driver.create s in
         ignore (Generate.attach g ~sched:s ~main:t.Wd_targets.Kvs.leader ~driver);
         ignore (Wd_targets.Kvs.start t);
         Wd_watchdog.Driver.start driver;
         ignore (Sched.run ~until:(Vtime.sec 2) s)))

let bench_cluster_fleet =
  Test.make ~name:"cluster/5-node zkmini fleet, 2 sim-seconds"
    (Staged.stage (fun () ->
         let topology =
           Wd_cluster.Topology.uniform ~nodes:5 Wd_cluster.Topology.Zkmini
         in
         let w = Wd_cluster.Sim.boot ~seed:1 ~topology () in
         ignore
           (Sched.run ~until:(Vtime.sec 2) (Wd_cluster.Sim.world_sched w))))

let microbenches =
  [
    bench_sched_spawn_run;
    bench_sched_ping_pong;
    bench_interp_statements;
    bench_generate_kvs;
    bench_generate_zk;
    bench_context_sync;
    bench_checker_execution;
    bench_cluster_fleet;
  ]

let run_microbenches () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  print_endline "== micro-benchmarks (host time per run) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name bench ->
          let est = Analyze.one ols Instance.monotonic_clock bench in
          match Analyze.OLS.estimates est with
          | Some (t :: _) -> Printf.printf "  %-45s %14.1f ns/run\n%!" name t
          | Some [] | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    microbenches;
  print_newline ()

(* --- Part 3: --json mode — the harness performance trajectory ---

   Emits BENCH_harness.json: a jobs-scaling curve (1/2/4) for a fixed
   campaign batch (the E2 scenario sweep) with a determinism cross-check
   across widths, domain-local cache hit rates over that batch, a
   1000-world randomized fault-space sweep (worlds/s at each width, with a
   byte-identity gate), fleet-plane latencies, analysis-cache cold/hit
   times, and interpreter micro-bench throughput. Every future perf PR
   reruns this file. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let interp_call_prog =
  B.program "bench_call"
    ~funcs:
      [
        B.func "leaf" ~params:[ "x" ] [ B.return (B.v "x") ];
        B.func "call_loop" ~params:[ "n" ]
          [
            B.let_ "i" (B.i 0);
            B.while_
              B.(v "i" <: v "n")
              [
                B.call ~bind:"r" "leaf" [ B.v "i" ];
                B.assign "i" B.(v "i" +: i 1);
              ];
            B.return (B.v "i");
          ];
      ]
    ~entries:[]

(* Host seconds to interpret [fname nv] in a fresh one-task simulation on
   the given engine; returns (statements executed, wall seconds). The
   compiled form is built at [create] time, outside the measured window —
   compile cost is a one-time charge already covered by the analysis-cache
   section. *)
let interp_bench ~engine prog fname nv =
  let s = Sched.create ~seed:1 () in
  let reg = Wd_env.Faultreg.create () in
  let res = Wd_ir.Runtime.create ~reg ~rng:(Wd_sim.Rng.create ~seed:2) in
  let main = Wd_ir.Interp.create ~engine ~node:"n" ~res prog in
  ignore
    (Sched.spawn s (fun () ->
         ignore (Wd_ir.Interp.call main fname [ Wd_ir.Ast.VInt nv ])));
  let (), secs = wall (fun () -> ignore (Sched.run s)) in
  (Wd_ir.Interp.stmts_executed main, secs)

(* (stmt_loop stmts, stmt secs, call_loop calls, call_loop stmts, call
   secs) for one engine. The call loop also reports statement throughput —
   each iteration is a handful of statements around the call, so its
   stmts/s is the "statements with call overhead in the mix" number. *)
let interp_bench_engine engine =
  let stmts, stmt_s = interp_bench ~engine interp_prog "sum_to" 100_000 in
  let calls = 30_000 in
  let call_stmts, call_s =
    interp_bench ~engine interp_call_prog "call_loop" calls
  in
  (stmts, stmt_s, calls, call_stmts, call_s)

let per_s n secs = float_of_int n /. Float.max 1e-9 secs

let run_json_bench ~jobs_n () =
  let module Campaign = Wd_harness.Campaign in
  let module Interp = Wd_ir.Interp in
  let scenarios =
    List.filter
      (fun s -> s.Wd_faults.Catalog.special <> Some "crash")
      Wd_faults.Catalog.all
  in
  let cells =
    List.map (fun s -> Campaign.cell s.Wd_faults.Catalog.sid) scenarios
  in
  (* Every batch starts from cold analysis + compile caches so each
     comparison isolates one variable: domain parallelism along the jobs
     curve, the execution engine between the last two. *)
  let cold_batch ~jobs () =
    Generate.clear_cache ();
    Interp.clear_compile_cache ();
    wall (fun () -> Campaign.run_batch ~jobs cells)
  in
  let recommended = Domain.recommended_domain_count () in
  let effective j = max 1 (min j recommended) in
  (* Jobs-scaling curve: requested widths 1/2/4 (plus --jobs if it differs).
     The persistent pool clamps to the host's core count — [effective] — so
     on a small host several points coincide; the JSON records both the
     requested and the effective width. *)
  let widths = List.sort_uniq compare [ 1; 2; 4; jobs_n ] in
  Interp.set_default_engine `Compiled;
  let curve =
    List.map
      (fun j ->
        let runs, secs = cold_batch ~jobs:j () in
        (* cache traffic of this batch: cleared at batch start, so the
           counters cover exactly these cells at this width *)
        let a_hits, a_misses = Generate.cache_stats () in
        let c_hits, c_misses = Interp.compile_cache_stats () in
        (j, runs, secs, (a_hits, a_misses), (c_hits, c_misses)))
      widths
  in
  let runs1, secs1, a_cache_n, c_cache_n =
    match (curve, List.rev curve) with
    | (_, r1, s1, _, _) :: _, (_, _, _, a_n, c_n) :: _ -> (r1, s1, a_n, c_n)
    | _ -> assert false
  in
  let secs_n =
    match List.find_opt (fun (j, _, _, _, _) -> j = jobs_n) curve with
    | Some (_, _, s, _, _) -> s
    | None -> secs1
  in
  Interp.set_default_engine `Treewalk;
  let runs_tw, secs_tw = cold_batch ~jobs:jobs_n () in
  Interp.set_default_engine `Compiled;
  let deterministic =
    List.for_all (fun (_, runs, _, _, _) -> runs = runs1) curve
  in
  let engines_identical = runs1 = runs_tw in
  (* randomized fault-space sweep (E20 grid) at each width, cold caches,
     byte-identity across widths checked on the full outcome lists *)
  let module Sweep = Wd_harness.Sweep in
  let sweep_worlds = 1000 in
  let sweep_seed = Wd_harness.Experiments.base_seed () in
  let sweep_runs =
    List.map
      (fun j ->
        Generate.clear_cache ();
        Interp.clear_compile_cache ();
        let (summary, outcomes), secs =
          wall (fun () -> Sweep.run ~jobs:j ~seed:sweep_seed ~worlds:sweep_worlds ())
        in
        (j, summary, outcomes, secs))
      widths
  in
  let sweep_summary, sweep_outcomes1, sweep_secs1 =
    match sweep_runs with
    | (_, s, o, secs) :: _ -> (s, o, secs)
    | [] -> assert false
  in
  let sweep_identical =
    List.for_all (fun (_, _, o, _) -> o = sweep_outcomes1) sweep_runs
  in
  (* checker-generation race (E21): mine the inferred generation, race it
     against the mimic generation across the catalog in three deployments,
     and gate on mining determinism (digest at width 1 = digest at width
     N) and inferred accuracy (zero fault-free false positives) *)
  let module Experiments = Wd_harness.Experiments in
  let module Inference = Wd_harness.Inference in
  let race = Experiments.e21_run () in
  let mined_w1 = Inference.mine_and_synth ~jobs:1 () in
  let mining_deterministic =
    String.equal race.Experiments.e21_model_digest
      mined_w1.Inference.md_digest
  in
  let race_family d fam =
    List.find
      (fun (f : Experiments.e21_family) -> f.Experiments.e21f_family = fam)
      d.Experiments.e21d_families
  in
  let inferred_only =
    List.find
      (fun (d : Experiments.e21_deploy) ->
        d.Experiments.e21d_label = "inferred-only")
      race.Experiments.e21_deploys
  in
  let inferred_alone = race_family inferred_only "inferred" in
  (* analysis cache: cold analysis vs memoised hit *)
  Generate.clear_cache ();
  let _, cold_s = wall (fun () -> ignore (Generate.analyze_cached zk_prog)) in
  let _, hit_s = wall (fun () -> ignore (Generate.analyze_cached zk_prog)) in
  (* interpreter micro-benches, one row per engine: straight-line
     statements and call-heavy *)
  let c_stmts, c_stmt_s, c_calls, c_cstmts, c_call_s =
    interp_bench_engine `Compiled
  in
  let t_stmts, t_stmt_s, t_calls, t_cstmts, t_call_s =
    interp_bench_engine `Treewalk
  in
  let stmt_speedup = per_s c_stmts c_stmt_s /. per_s t_stmts t_stmt_s in
  let call_speedup = per_s c_calls c_call_s /. per_s t_calls t_call_s in
  (* heavy-traffic load plane (E22): each workload at >= 10^6 completed
     requests across its deployment rows, sized so the zkmini/cstore
     totals clear the bar with the detection runs included *)
  let module Loadgen = Wd_harness.Loadgen in
  let load_requests = 350_000 in
  let load, load_s =
    wall (fun () -> Experiments.e22_run ~requests:load_requests ())
  in
  (* allocation discipline (v6): minor-heap words per completed request on
     the zkmini closed loop, wd-off vs wd-on. Must run inline on this
     domain — Gc.minor_words is per-domain — and is deterministic for the
     fixed seed, so the gate below cannot flap. *)
  let alloc_rows, alloc_s = wall (fun () -> Experiments.e22_alloc ()) in
  (* scheduling frontier (E23, v7): fixed vs adaptive checker scheduling
     across the fault catalog and the load plane. The gated component is
     [sched_events] — events above a hooks-only baseline — because context
     sync is per-request cost no schedule can touch. *)
  let frontier, frontier_s = wall (fun () -> Experiments.e23_run ()) in
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rate (hits, misses) =
    float_of_int hits /. Float.max 1. (float_of_int (hits + misses))
  in
  bpf "{\n";
  bpf "  \"schema\": \"wd-bench-harness/v7\",\n";
  let gc = Gc.get () in
  bpf
    "  \"host\": { \"recommended_domains\": %d, \"gc\": { \
     \"minor_heap_words\": %d, \"space_overhead\": %d, \"wd_minor_heap\": %s \
     } },\n"
    recommended gc.Gc.minor_heap_size gc.Gc.space_overhead
    (match Wd_parallel.Pool.minor_heap_words () with
    | Some w -> string_of_int w
    | None -> "null");
  bpf "  \"campaign_e2\": {\n";
  bpf "    \"scenarios\": %d,\n" (List.length cells);
  bpf "    \"jobs_curve\": [\n";
  List.iteri
    (fun i (j, _, secs, _, _) ->
      bpf
        "      { \"jobs\": %d, \"effective_jobs\": %d, \"wall_s\": %.3f, \
         \"speedup\": %.2f }%s\n"
        j (effective j) secs
        (secs1 /. Float.max 1e-9 secs)
        (if i = List.length curve - 1 then "" else ","))
    curve;
  bpf "    ],\n";
  bpf "    \"deterministic\": %b,\n" deterministic;
  bpf
    "    \"analysis_cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": \
     %.3f },\n"
    (fst a_cache_n) (snd a_cache_n) (rate a_cache_n);
  bpf
    "    \"compile_cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": \
     %.3f },\n"
    (fst c_cache_n) (snd c_cache_n) (rate c_cache_n);
  bpf "    \"treewalk_jobsN_wall_s\": %.3f,\n" secs_tw;
  bpf "    \"engine_speedup\": %.2f,\n" (secs_tw /. Float.max 1e-9 secs_n);
  bpf "    \"engines_identical\": %b\n" engines_identical;
  bpf "  },\n";
  bpf "  \"sweep\": {\n";
  bpf "    \"worlds\": %d,\n" sweep_worlds;
  bpf "    \"seed\": %d,\n" sweep_seed;
  bpf "    \"jobs_curve\": [\n";
  List.iteri
    (fun i (j, _, _, secs) ->
      bpf
        "      { \"jobs\": %d, \"effective_jobs\": %d, \"wall_s\": %.3f, \
         \"worlds_per_s\": %.1f, \"speedup\": %.2f }%s\n"
        j (effective j) secs
        (float_of_int sweep_worlds /. Float.max 1e-9 secs)
        (sweep_secs1 /. Float.max 1e-9 secs)
        (if i = List.length sweep_runs - 1 then "" else ","))
    sweep_runs;
  bpf "    ],\n";
  bpf "    \"byte_identical\": %b,\n" sweep_identical;
  bpf "    \"digest\": \"%s\",\n" sweep_summary.Wd_harness.Sweep.s_digest;
  bpf
    "    \"composition\": { \"scenario\": %d, \"fault_free\": %d, \"fleet\": \
     %d },\n"
    sweep_summary.Wd_harness.Sweep.s_scenario_worlds
    sweep_summary.Wd_harness.Sweep.s_fault_free_worlds
    sweep_summary.Wd_harness.Sweep.s_fleet_worlds;
  bpf
    "    \"oracle\": { \"ok\": %d, \"expect_detect\": %d, \"detected\": %d, \
     \"unexpected_detect\": %d, \"false_alarms\": %d }\n"
    sweep_summary.Wd_harness.Sweep.s_ok
    sweep_summary.Wd_harness.Sweep.s_expect_detect
    sweep_summary.Wd_harness.Sweep.s_detected
    sweep_summary.Wd_harness.Sweep.s_unexpected_detect
    sweep_summary.Wd_harness.Sweep.s_false_alarms;
  bpf "  },\n";
  (* fleet plane: one limplock cell, one leader-failover cell, and the two
     correlated cells on the asymmetric 9-node heterogeneous fabric; the
     latencies are sim-time (deterministic), the wall clocks are host *)
  let module Csim = Wd_cluster.Sim in
  let fleet_cell csid = wall (fun () -> Csim.run csid) in
  let hetero_cell csid =
    wall (fun () ->
        Csim.run
          ~cfg:
            {
              Csim.default_config with
              topology = Wd_cluster.Topology.hetero9 ();
            }
          csid)
  in
  let limp, limp_s = fleet_cell "fleet-limplock" in
  let fail, fail_s = fleet_cell "fleet-leader-limplock" in
  let alp, alp_s = hetero_cell "fleet-limplock-partition" in
  let asl, asl_s = hetero_cell "fleet-slow-link-gray" in
  let ms = function Some v -> Int64.to_float v /. 1e6 | None -> -1. in
  let converge (r : Csim.result) =
    match r.Csim.cr_converged_at with
    | Some at when at > r.Csim.cr_inject_at ->
        Some (Int64.sub at r.Csim.cr_inject_at)
    | Some _ | None -> None
  in
  let fleet_row label (r : Csim.result) wall_s comma =
    bpf
      "    \"%s\": { \"wall_s\": %.3f, \"detect_ms\": %.1f, \
       \"mttr_ms\": %.1f, \"ok\": %b }%s\n"
      label wall_s
      (ms r.Csim.cr_first_latency)
      (ms r.Csim.cr_first_recovery_latency)
      r.Csim.cr_as_expected comma
  in
  bpf "  \"fleet\": {\n";
  fleet_row "limplock" limp limp_s ",";
  bpf
    "    \"leader_failover\": { \"wall_s\": %.3f, \"detect_ms\": %.1f, \
     \"mttr_ms\": %.1f, \"election_converge_ms\": %.1f, \"elections\": %d },\n"
    fail_s
    (ms fail.Csim.cr_first_latency)
    (ms fail.Csim.cr_first_recovery_latency)
    (ms (converge fail)) fail.Csim.cr_elections;
  (* asymmetric-fabric detection latency and MTTR: the tentpole numbers a
     perf or fabric PR must not regress *)
  fleet_row "asym9_limplock_partition" alp alp_s ",";
  fleet_row "asym9_slow_link_gray" asl asl_s "";
  bpf "  },\n";
  (* E21 rows: per-deployment, per-family coverage / median latency /
     false positives, plus the deterministic sim-event overhead *)
  bpf "  \"race\": {\n";
  bpf "    \"mined_runs\": %d,\n" race.Experiments.e21_mined_runs;
  bpf "    \"mined_events\": %d,\n" race.Experiments.e21_mined_events;
  bpf "    \"model_digest\": \"%s\",\n" race.Experiments.e21_model_digest;
  bpf "    \"mining_deterministic\": %b,\n" mining_deterministic;
  bpf "    \"invariants\": { %s },\n"
    (String.concat ", "
       (List.map
          (fun (sys, n) -> Printf.sprintf "\"%s\": %d" sys n)
          race.Experiments.e21_invariants));
  bpf "    \"deploys\": [\n";
  List.iteri
    (fun i (d : Experiments.e21_deploy) ->
      bpf
        "      { \"label\": \"%s\", \"any_detected\": %d, \"total\": %d, \
         \"false_positives\": %d, \"checkers\": %d, \"sim_events\": %d, \
         \"overhead_pct\": %.1f,\n"
        d.Experiments.e21d_label d.Experiments.e21d_any
        d.Experiments.e21d_total d.Experiments.e21d_fp
        d.Experiments.e21d_checkers d.Experiments.e21d_sim_events
        d.Experiments.e21d_overhead_pct;
      bpf "        \"families\": { ";
      List.iteri
        (fun j (f : Experiments.e21_family) ->
          let median_ms =
            if f.Experiments.e21f_latency.Wd_harness.Metrics.ls_count = 0 then
              -1.
            else
              Int64.to_float f.Experiments.e21f_latency.Wd_harness.Metrics.ls_median
              /. 1e6
          in
          bpf
            "\"%s\": { \"detected\": %d, \"total\": %d, \"median_ms\": %.1f, \
             \"fp\": %d }%s"
            f.Experiments.e21f_family f.Experiments.e21f_detected
            f.Experiments.e21f_total median_ms f.Experiments.e21f_fp
            (if j = List.length d.Experiments.e21d_families - 1 then ""
             else ", "))
        d.Experiments.e21d_families;
      bpf " } }%s\n"
        (if i = List.length race.Experiments.e21_deploys - 1 then "" else ",")
      )
    race.Experiments.e21_deploys;
  bpf "    ]\n";
  bpf "  },\n";
  (* E22 rows: heavy-traffic load per workload and deployment; requests,
     accuracy, virtual-time throughput/percentiles (host-independent), the
     watchdog's sim-event overhead and latency inflation vs the wd-off row,
     and detection latency of a mid-load fault *)
  bpf "  \"load\": {\n";
  bpf "    \"requests_per_row\": %d,\n" load_requests;
  bpf "    \"total_requests\": %d,\n" load.Experiments.e22_total_requests;
  bpf "    \"wall_s\": %.1f,\n" load_s;
  bpf "    \"workloads\": [\n";
  List.iteri
    (fun i (w : Experiments.e22_workload) ->
      bpf "      { \"label\": \"%s\", \"gen\": \"%s\", \"requests\": %d,\n"
        w.Experiments.e22w_label w.Experiments.e22w_gen
        w.Experiments.e22w_requests;
      bpf "        \"rows\": [\n";
      List.iteri
        (fun j (row : Experiments.e22_row) ->
          let l = row.Experiments.e22r_load in
          bpf
            "          { \"deploy\": \"%s\", \"requests\": %d, \"ok_ratio\": \
             %.4f, \"shed\": %d, \"throughput_rps\": %.0f, \"p50_us\": %.1f, \
             \"p99_us\": %.1f, \"sim_events\": %d, \"overhead_pct\": %.2f, \
             \"p50_x\": %.3f, \"p99_x\": %.3f, \"detect_ms\": %.1f }%s\n"
            row.Experiments.e22r_deploy l.Loadgen.lr_requests
            (Loadgen.success_ratio l) l.Loadgen.lr_shed
            (Loadgen.throughput_rps l)
            (Int64.to_float l.Loadgen.lr_p50 /. 1e3)
            (Int64.to_float l.Loadgen.lr_p99 /. 1e3)
            row.Experiments.e22r_sim_events row.Experiments.e22r_overhead_pct
            row.Experiments.e22r_p50_x row.Experiments.e22r_p99_x
            (ms row.Experiments.e22r_detect)
            (if j = List.length w.Experiments.e22w_rows - 1 then "" else ","))
        w.Experiments.e22w_rows;
      bpf "        ] }%s\n"
        (if i = List.length load.Experiments.e22_workloads - 1 then ""
         else ","))
    load.Experiments.e22_workloads;
  bpf "    ]\n";
  bpf "  },\n";
  (* v6: minor-allocation per simulated request, the number the
     allocation-discipline refactor is accountable for *)
  bpf "  \"alloc\": {\n";
  bpf "    \"workload\": \"zkmini\",\n";
  bpf "    \"wall_s\": %.1f,\n" alloc_s;
  bpf "    \"budget_bytes_per_req\": 30000,\n";
  bpf "    \"rows\": [\n";
  List.iteri
    (fun i (r : Experiments.e22_alloc_row) ->
      bpf
        "      { \"deploy\": \"%s\", \"requests\": %d, \
         \"minor_words_per_req\": %.1f, \"bytes_per_req\": %.0f }%s\n"
        r.Experiments.e22a_deploy r.Experiments.e22a_requests
        r.Experiments.e22a_words_per_req r.Experiments.e22a_bytes_per_req
        (if i = List.length alloc_rows - 1 then "" else ","))
    alloc_rows;
  bpf "    ]\n";
  bpf "  },\n";
  (* v7: the E23 scheduling frontier — one row per scheduling mode, the
     overhead-vs-detection-latency trade the adaptive scheduler buys *)
  bpf "  \"frontier\": {\n";
  bpf "    \"requests_per_run\": %d,\n" frontier.Experiments.e23_requests;
  bpf "    \"scenarios\": %d,\n" frontier.Experiments.e23_scenarios;
  bpf "    \"wall_s\": %.1f,\n" frontier_s;
  bpf "    \"rows\": [\n";
  List.iteri
    (fun i (r : Experiments.e23_row) ->
      bpf
        "      { \"mode\": \"%s\", \"policy\": \"%s\", \"overhead_pct\": \
         %.3f, \"sched_events\": %d, \"sched_cut_pct\": %.1f, \"p99_x\": \
         %.3f, \"load_detect_ms\": %.1f, \"detected\": %d, \"catalog\": %d, \
         \"worst_detect_ms\": %.1f, \"mean_detect_ms\": %.1f, \"runs\": %d, \
         \"dedup_skips\": %d, \"shared_syncs\": %d, \"throttle_peak\": %.0f \
         }%s\n"
        r.Experiments.e23f_mode r.Experiments.e23f_policy
        r.Experiments.e23f_overhead_pct r.Experiments.e23f_sched_events
        r.Experiments.e23f_sched_cut_pct r.Experiments.e23f_p99_x
        (ms r.Experiments.e23f_load_detect)
        r.Experiments.e23f_detected r.Experiments.e23f_catalog
        (ms r.Experiments.e23f_worst_detect)
        (ms r.Experiments.e23f_mean_detect)
        r.Experiments.e23f_runs r.Experiments.e23f_dedup_skips
        r.Experiments.e23f_shared_syncs r.Experiments.e23f_throttle_peak
        (if i = List.length frontier.Experiments.e23_rows - 1 then ""
         else ","))
    frontier.Experiments.e23_rows;
  bpf "    ]\n";
  bpf "  },\n";
  bpf "  \"analysis_cache\": { \"cold_ms\": %.3f, \"hit_ms\": %.4f },\n"
    (1e3 *. cold_s) (1e3 *. hit_s);
  bpf "  \"interp\": {\n";
  let engine_rows label stmts stmt_s calls cstmts call_s comma =
    bpf "    \"%s\": {\n" label;
    bpf
      "      \"stmt_loop\": { \"stmts\": %d, \"wall_s\": %.3f, \
       \"stmts_per_s\": %.0f },\n"
      stmts stmt_s (per_s stmts stmt_s);
    bpf
      "      \"call_loop\": { \"calls\": %d, \"wall_s\": %.3f, \
       \"calls_per_s\": %.0f, \"stmts\": %d, \"stmts_per_s\": %.0f },\n"
      calls call_s (per_s calls call_s) cstmts (per_s cstmts call_s);
    let agg_stmts = stmts + cstmts and agg_s = stmt_s +. call_s in
    bpf
      "      \"aggregate\": { \"stmts\": %d, \"wall_s\": %.3f, \
       \"stmts_per_s\": %.0f, \"pct_of_1e8_target\": %.1f }\n"
      agg_stmts agg_s (per_s agg_stmts agg_s)
      (100. *. per_s agg_stmts agg_s /. 1e8);
    bpf "    }%s\n" comma
  in
  engine_rows "compiled" c_stmts c_stmt_s c_calls c_cstmts c_call_s ",";
  engine_rows "treewalk" t_stmts t_stmt_s t_calls t_cstmts t_call_s ",";
  bpf "    \"engine_speedup\": { \"stmt_loop\": %.2f, \"call_loop\": %.2f }\n"
    stmt_speedup call_speedup;
  bpf "  }\n";
  bpf "}\n";
  let json = Buffer.contents buf in
  let oc = open_out "BENCH_harness.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  Printf.printf "-> wrote BENCH_harness.json\n%!";
  if not deterministic then begin
    prerr_endline "ERROR: campaign results differ across jobs widths";
    exit 1
  end;
  if not engines_identical then begin
    prerr_endline "ERROR: compiled and treewalk campaign results differ";
    exit 1
  end;
  if not sweep_identical then begin
    prerr_endline "ERROR: sweep outcomes differ across jobs widths";
    exit 1
  end;
  if not mining_deterministic then begin
    prerr_endline "ERROR: inferred-model digest differs across jobs widths";
    exit 1
  end;
  if inferred_alone.Experiments.e21f_fp > 0 then begin
    prerr_endline "ERROR: inferred checkers false-alarmed on fault-free runs";
    exit 1
  end;
  if
    2 * inferred_alone.Experiments.e21f_detected
    < inferred_alone.Experiments.e21f_total
  then begin
    prerr_endline "ERROR: inferred-only coverage fell below half the catalog";
    exit 1
  end;
  (* jobs-scaling gate: any campaign point that actually got >= 2 domains
     must show real speedup over the width-1 run; on a single-core host
     every point is effective width 1 and the gate is vacuous *)
  List.iter
    (fun (j, _, secs, _, _) ->
      if effective j >= 2 && secs1 /. Float.max 1e-9 secs < 1.2 then begin
        Printf.eprintf
          "ERROR: campaign jobs curve at effective width %d speedup %.2f < \
           1.2\n"
          (effective j)
          (secs1 /. Float.max 1e-9 secs);
        exit 1
      end)
    curve;
  (* load-plane gates: the gated rows of the v5 schema. Single-node
     workloads must field all three deployments at >= 10^6 completed
     requests with a clean oracle (every request answered, nothing shed)
     and a measured detection latency under load; the fleet row must be
     present and clean. *)
  let load_fail msg =
    prerr_endline ("ERROR: load gate: " ^ msg);
    exit 1
  in
  let check_row ~wl ~need_detect (row : Experiments.e22_row) =
    let l = row.Experiments.e22r_load in
    if Loadgen.success_ratio l < 0.99 then
      load_fail
        (Printf.sprintf "%s/%s ok ratio %.4f < 0.99" wl
           row.Experiments.e22r_deploy (Loadgen.success_ratio l));
    if l.Loadgen.lr_shed > 0 then
      load_fail
        (Printf.sprintf "%s/%s shed %d requests" wl row.Experiments.e22r_deploy
           l.Loadgen.lr_shed);
    if need_detect && row.Experiments.e22r_detect = None then
      load_fail
        (Printf.sprintf "%s/%s did not detect the mid-load fault" wl
           row.Experiments.e22r_deploy)
  in
  List.iter
    (fun wl ->
      match
        List.find_opt
          (fun (w : Experiments.e22_workload) -> w.Experiments.e22w_label = wl)
          load.Experiments.e22_workloads
      with
      | None -> load_fail (wl ^ " workload row missing")
      | Some w ->
          if w.Experiments.e22w_requests < 1_000_000 then
            load_fail
              (Printf.sprintf "%s completed %d requests < 1e6" wl
                 w.Experiments.e22w_requests);
          List.iter
            (fun deploy ->
              match
                List.find_opt
                  (fun (r : Experiments.e22_row) ->
                    r.Experiments.e22r_deploy = deploy)
                  w.Experiments.e22w_rows
              with
              | None -> load_fail (wl ^ "/" ^ deploy ^ " row missing")
              | Some row ->
                  check_row ~wl ~need_detect:(deploy <> "wd-off") row)
            [ "wd-off"; "wd-on"; "inferred-on" ])
    [ "zkmini"; "cstore" ];
  (match
     List.find_opt
       (fun (w : Experiments.e22_workload) ->
         w.Experiments.e22w_gen = "fleet")
       load.Experiments.e22_workloads
   with
  | None -> load_fail "fleet workload row missing"
  | Some w ->
      List.iter (check_row ~wl:w.Experiments.e22w_label ~need_detect:false)
        w.Experiments.e22w_rows);
  (* latency-identity gate: the watchdog runs off the request path, so in
     virtual time its presence must not move client percentiles at all —
     wd-on p50/p99 bit-identical to the wd-off baseline *)
  List.iter
    (fun (w : Experiments.e22_workload) ->
      if w.Experiments.e22w_gen <> "fleet" then
        List.iter
          (fun (row : Experiments.e22_row) ->
            if
              row.Experiments.e22r_deploy = "wd-on"
              && (row.Experiments.e22r_p50_x <> 1.
                 || row.Experiments.e22r_p99_x <> 1.)
            then
              load_fail
                (Printf.sprintf
                   "%s/wd-on p50/p99 not bit-identical to wd-off (x%.6f/x%.6f)"
                   w.Experiments.e22w_label row.Experiments.e22r_p50_x
                   row.Experiments.e22r_p99_x))
          w.Experiments.e22w_rows)
    load.Experiments.e22_workloads;
  (* allocation gate (v6): the refactor's budget — wd-on minor allocation
     per simulated request stays within 30 KB (the seed spent ~55 KB) *)
  (match
     List.find_opt
       (fun (r : Experiments.e22_alloc_row) ->
         r.Experiments.e22a_deploy = "wd-on")
       alloc_rows
   with
  | None ->
      prerr_endline "ERROR: alloc gate: wd-on row missing";
      exit 1
  | Some r ->
      if r.Experiments.e22a_bytes_per_req > 30_000. then begin
        Printf.eprintf
          "ERROR: alloc gate: wd-on %.0f bytes/request exceeds the 30000 \
           budget\n"
          r.Experiments.e22a_bytes_per_req;
        exit 1
      end);
  (* frontier gates (v7): the adaptive scheduler must cut the
     checker-scheduling event component by >= 30% vs the fixed baseline
     while keeping full-catalog coverage and staying within 2x the fixed
     worst-case detection latency *)
  let frontier_fail msg =
    prerr_endline ("ERROR: frontier gate: " ^ msg);
    exit 1
  in
  let frontier_row mode =
    match
      List.find_opt
        (fun (r : Experiments.e23_row) -> r.Experiments.e23f_mode = mode)
        frontier.Experiments.e23_rows
    with
    | Some r -> r
    | None -> frontier_fail (mode ^ " row missing")
  in
  let fx = frontier_row "fixed" in
  let ad = frontier_row "adaptive" in
  if ad.Experiments.e23f_sched_cut_pct < 30. then
    frontier_fail
      (Printf.sprintf "adaptive scheduling-overhead cut %.1f%% < 30%%"
         ad.Experiments.e23f_sched_cut_pct);
  if ad.Experiments.e23f_detected < fx.Experiments.e23f_detected then
    frontier_fail
      (Printf.sprintf "adaptive catalog coverage %d/%d below fixed %d/%d"
         ad.Experiments.e23f_detected ad.Experiments.e23f_catalog
         fx.Experiments.e23f_detected fx.Experiments.e23f_catalog);
  match
    (fx.Experiments.e23f_worst_detect, ad.Experiments.e23f_worst_detect)
  with
  | Some f, Some a ->
      if a > Int64.mul 2L f then
        frontier_fail
          (Printf.sprintf
             "adaptive worst-case detection %.1f ms > 2x fixed %.1f ms"
             (Int64.to_float a /. 1e6)
             (Int64.to_float f /. 1e6))
  | _ -> frontier_fail "worst-case detection latency missing"

let () =
  let argv = Array.to_list Sys.argv in
  (* same --jobs/--seed/--engine flags as repro, via the shared scanner
     (bechamel owns argv, so no cmdliner here); --json stays bench-local *)
  let opts =
    match Wd_harness.Cli.scan argv with
    | Ok o -> o
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  Wd_harness.Cli.apply_opts opts;
  if List.mem "--json" argv then
    let jobs_n =
      match opts.Wd_harness.Cli.o_jobs with
      | Some n -> n
      | None -> Wd_parallel.Pool.default_jobs ()
    in
    run_json_bench ~jobs_n ()
  else begin
    run_microbenches ();
    (* Part 2: every table and figure of the paper. *)
    List.iter
      (fun (name, f) ->
        Printf.printf "\n================ %s ================\n\n%!" name;
        print_string (f ()))
      (Wd_harness.Experiments.all_texts ())
  end
