examples/generate_watchdog.mli:
