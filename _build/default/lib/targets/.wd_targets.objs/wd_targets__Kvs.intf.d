lib/targets/kvs.mli: Wd_env Wd_ir Wd_sim
