test/test_detectors.ml: Alcotest Hashtbl List String Wd_detectors Wd_env Wd_ir Wd_sim Wd_watchdog
