(** Gray-failure catalog: named, reproducible failure scenarios for each
    target system, with ground truth (failing function, failure class) and a
    paper-informed prediction of which detector classes catch them. *)

type fclass =
  | Crash
  | Partial_disk
  | Fail_slow
  | Limplock
  | Net_hang
  | Corruption
  | Resource_leak
  | Silent_stuck
  | Deadlock
  | Infinite_loop
  | Transient_error

val fclass_name : fclass -> string

type fspec = {
  site_pattern : string;
  behaviour : Wd_env.Faultreg.behaviour;
  offset : int64;    (** delay after the scenario's injection instant *)
  duration : int64;  (** [Time.never] for unbounded *)
  once : bool;
}

val fspec :
  ?offset:int64 ->
  ?duration:int64 ->
  ?once:bool ->
  string ->
  Wd_env.Faultreg.behaviour ->
  fspec

type expectation = {
  exp_mimic : bool;
  exp_probe : bool;
  exp_signal : bool;
  exp_heartbeat : bool;
  exp_observer : bool;
}

type scenario = {
  sid : string;
  description : string;
  system : string;
  fclass : fclass;
  faults : fspec list;
  special : string option;
      (** boot variant: "leak_bug", "in_memory", "burst", or "crash" *)
  truth_func : string option;
  expected : expectation;
}

val exp :
  ?mimic:bool ->
  ?probe:bool ->
  ?signal:bool ->
  ?heartbeat:bool ->
  ?observer:bool ->
  unit ->
  expectation

val all : scenario list
val find : string -> scenario
val for_system : string -> scenario list

val inject : Wd_env.Faultreg.t -> scenario -> at:int64 -> string list
(** Materialise the scenario's faults anchored at [at]; returns fault ids. *)

val pp_scenario : Format.formatter -> scenario -> unit
