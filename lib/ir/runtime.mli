(** Resource table binding IR resource names to simulated environment
    objects.

    Disks, networks and memory pools must be registered by the harness that
    boots a program; locks and queues auto-create on first use (like Java
    object monitors); globals hold shared mutable program state. *)

type resources = {
  reg : Wd_env.Faultreg.t;
  rng : Wd_sim.Rng.t;
  disks : (string, Wd_env.Disk.t) Hashtbl.t;
  nets : (string, Ast.value Wd_env.Net.t) Hashtbl.t;
  mems : (string, Wd_env.Memory.t) Hashtbl.t;
  locks : (string, Wd_sim.Smutex.t) Hashtbl.t;
  queues : (string, Ast.value Wd_sim.Channel.t) Hashtbl.t;
  globals : (string, Ast.value) Hashtbl.t;
  mutable log_lines : (int64 * string * string) list;
}

val create : reg:Wd_env.Faultreg.t -> rng:Wd_sim.Rng.t -> resources

val add_disk : resources -> Wd_env.Disk.t -> unit
val add_net : resources -> Ast.value Wd_env.Net.t -> unit
val add_mem : resources -> Wd_env.Memory.t -> unit

val disk : resources -> string -> Wd_env.Disk.t
(** Raises {!Ast.Ir_error} if not registered; same for {!net} and {!mem}. *)

val net : resources -> string -> Ast.value Wd_env.Net.t
val mem : resources -> string -> Wd_env.Memory.t

val lock : resources -> string -> Wd_sim.Smutex.t
(** Auto-creates on first use; same for {!queue}. *)

val queue : resources -> string -> Ast.value Wd_sim.Channel.t

val drop_queue : resources -> string -> unit
(** Forget a queue that will never be touched again (per-request reply
    queues under load). The next {!queue} on the name re-creates it. *)

val global : resources -> string -> Ast.value
(** [VUnit] when unset. *)

val set_global : resources -> string -> Ast.value -> unit

val log : resources -> node:string -> string -> unit
val log_lines : resources -> (int64 * string * string) list
