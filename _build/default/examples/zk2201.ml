(* ZOOKEEPER-2201 walkthrough (paper §4.2): a network issue blocks the
   leader's remote sync inside the commit critical section, wedging all
   write processing. The heartbeat protocol and the admin command both keep
   reporting a healthy leader; the generated mimic watchdog detects the
   hang within seconds and pinpoints the blocked critical section.

     dune exec examples/zk2201.exe *)

module Zk = Wd_targets.Zkmini
module Generate = Wd_autowatchdog.Generate

let step fmt = Fmt.pr ("@.== " ^^ fmt ^^ "@.")

let () =
  let prog = Zk.program () in
  let g = Generate.analyze prog in
  step "zkmini: %d checkers generated for the leader pipeline"
    (List.length g.Generate.units);

  let sched = Wd_sim.Sched.create ~seed:7 () in
  let reg = Wd_env.Faultreg.create () in
  let zk =
    Zk.boot ~sched ~reg ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
  in
  let driver = Wd_watchdog.Driver.create sched in
  let _ = Generate.attach g ~sched ~main:zk.Zk.leader ~driver in
  let heartbeat =
    Wd_detectors.Heartbeat.create ~sched ~net:zk.Zk.net ~endpoint:Zk.monitor_node
      ~match_prefix:"ping:zkL" ()
  in
  ignore (Zk.start zk);
  Wd_watchdog.Driver.start driver;

  (* steady write traffic *)
  let ok_writes = ref 0 and failed_writes = ref 0 in
  ignore
    (Wd_sim.Sched.spawn ~name:"client" ~daemon:true sched (fun () ->
         let i = ref 0 in
         while true do
           Wd_sim.Sched.sleep (Wd_sim.Time.ms 100);
           incr i;
           match Zk.create zk ~path:(Fmt.str "/job/%d" !i) ~data:"payload" with
           | `Ok _ -> incr ok_writes
           | `Timeout | `Err _ -> incr failed_writes
         done));

  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 10) sched);
  step "t=10s healthy: %d writes committed, zxid=%d, heartbeat ok=%b"
    !ok_writes (Zk.zxid zk)
    (not (Wd_detectors.Heartbeat.suspected heartbeat));

  (* the ZK-2201 fault: the leader->follower1 link blocks the sender *)
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "zk-2201";
      site_pattern = "net:zk.net:send:zkL:zkF1";
      behaviour = Wd_env.Faultreg.Hang;
      start_at = Wd_sim.Time.sec 10;
      stop_at = Wd_sim.Time.never;
      once = false;
    };
  step "t=10s FAULT: remote sync to follower 1 now blocks (ZK-2201)";

  (* query the admin command from inside the simulation just before the end *)
  let ruok_reply = ref "(not asked)" in
  Wd_sim.Sched.at sched (Wd_sim.Time.sec 38) (fun () ->
      ignore
        (Wd_sim.Sched.spawn ~name:"admin-client" ~daemon:true sched (fun () ->
             match Zk.ruok zk with
             | `Ok v -> ruok_reply := Fmt.str "%a (blind)" Wd_ir.Ast.pp_value v
             | `Timeout -> ruok_reply := "timeout"
             | `Err m -> ruok_reply := "error " ^ m)));
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 40) sched);

  let failed_after = !failed_writes in
  step "t=40s gray failure: %d writes ok, %d writes hung/timed out"
    !ok_writes failed_after;
  Fmt.pr "   heartbeat detector: %s@."
    (if Wd_detectors.Heartbeat.suspected heartbeat then "SUSPECTED"
     else "leader still looks healthy (blind)");
  Fmt.pr "   admin 'ruok' probe:  %s@." !ruok_reply;
  match Wd_watchdog.Driver.reports driver with
  | [] -> Fmt.pr "   watchdog: no report (unexpected)@."
  | r :: _ ->
      Fmt.pr "   watchdog: %a@." Wd_watchdog.Report.pp r;
      Fmt.pr "   -> detected %a after injection; the report names the blocked@."
        Wd_sim.Time.pp
        (Int64.sub r.Wd_watchdog.Report.at (Wd_sim.Time.sec 10));
      Fmt.pr "      critical section, where the paper's watchdog needed ~7s.@."
