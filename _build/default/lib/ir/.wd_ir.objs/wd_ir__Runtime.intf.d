lib/ir/runtime.mli: Ast Hashtbl Wd_env Wd_sim
