(* Differential tests between the two IR execution engines: the closure
   compiler (Wd_ir.Compile, the default) and the tree-walking reference
   interpreter. The engines must be observationally identical — statement
   counts, virtual-time progression, final global state and Violation
   payloads — on arbitrary programs and on every error path. *)

open Wd_ir
open Ast
module B = Builder
module Sched = Wd_sim.Sched
module Time = Wd_sim.Time
module Randgen = Wd_testgen.Randgen

(* --- random programs: identical traces over >= 50 seeds --- *)

type trace = {
  tr_stmts : int;
  tr_end : int64;  (* virtual time when the run went quiescent *)
  tr_globals : (string * value) list;
}

let run_trace ~engine seed =
  let prog = Randgen.gen_program seed in
  let sched = Sched.create ~seed () in
  let reg = Wd_env.Faultreg.create () in
  let res = Randgen.make_env ~reg ~seed in
  let main = Interp.create ~engine ~node:"n1" ~res prog in
  ignore (Interp.start main sched);
  ignore (Sched.run ~until:(Time.sec 12) sched);
  {
    tr_stmts = Interp.stmts_executed main;
    tr_end = Sched.now sched;
    tr_globals =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) res.Runtime.globals []
      |> List.sort compare;
  }

let n_seeds = 60

let test_randprog_traces () =
  for seed = 0 to n_seeds - 1 do
    let c = run_trace ~engine:`Compiled seed in
    let t = run_trace ~engine:`Treewalk seed in
    Alcotest.(check int) (Fmt.str "stmts_executed (seed %d)" seed) t.tr_stmts
      c.tr_stmts;
    Alcotest.(check int64) (Fmt.str "virtual end time (seed %d)" seed)
      t.tr_end c.tr_end;
    if c.tr_globals <> t.tr_globals then
      Alcotest.failf "final globals differ at seed %d:@.compiled %a@.treewalk %a"
        seed
        Fmt.(list ~sep:sp (pair string pp_value))
        c.tr_globals
        Fmt.(list ~sep:sp (pair string pp_value))
        t.tr_globals
  done

(* --- error paths: byte-identical Violation / Ir_error payloads --- *)

(* Run [fname] on a fresh node and render whatever it raises. *)
let outcome_of ~engine prog fname =
  let sched = Sched.create ~seed:7 () in
  let reg = Wd_env.Faultreg.create () in
  let res = Randgen.make_env ~reg ~seed:7 in
  let it = Interp.create ~engine ~node:"n1" ~res prog in
  let out = ref "no outcome" in
  ignore
    (Sched.spawn ~name:"diff" sched (fun () ->
         match Interp.call it fname [] with
         | v -> out := Fmt.str "value %a" pp_value v
         | exception Interp.Violation { loc; vkind; msg } ->
             out := Fmt.str "violation %a %s: %s" Loc.pp loc vkind msg
         | exception Ir_error m -> out := "ir_error: " ^ m));
  ignore (Sched.run ~until:(Time.sec 5) sched);
  !out

let ret e = [ B.return e ]
let prog_of body = B.program "bad" ~funcs:[ B.func "f" ~params:[] body ] ~entries:[]

let bad_cases =
  [
    ("unbound variable", prog_of (ret (B.v "nope")));
    ("int op on bool", prog_of (ret B.(bconst true +: i 1)));
    ("int op on str rhs", prog_of (ret B.(i 1 *: s "x")));
    ("comparison on mixed", prog_of (ret B.(s "a" <: i 1)));
    ("concat on non-str", prog_of (ret B.(i 1 ^: s "x")));
    ("division by zero", prog_of (ret B.(i 1 /: i 0)));
    ("mod by zero", prog_of (ret B.(i 7 %: i 0)));
    ("not on int", prog_of (ret (B.not_ (B.i 3))));
    ("neg on str", prog_of (ret (B.neg (B.s "x"))));
    ("len on int", prog_of (ret (B.len (B.i 3))));
    ("len on list ok", prog_of (ret (B.len (B.prim "range" [ B.i 4 ]))));
    ("len on map ok", prog_of (ret (B.len (B.prim "map_empty" []))));
    ("fst on non-pair", prog_of (ret (B.fst_ (B.i 1))));
    ("snd on non-pair", prog_of (ret (B.snd_ (B.s "p"))));
    ( "condition not bool",
      prog_of [ B.if_ (B.i 1) [ B.return_unit ] [ B.return_unit ] ] );
    ("logic op on non-bool lhs", prog_of (ret B.(i 1 &&: bconst true)));
    ("logic short-circuits bad rhs", prog_of (ret B.(bconst false &&: i 3)));
    ( "foreach over non-list",
      prog_of [ B.foreach "x" (B.i 3) [ B.return_unit ]; B.return_unit ] );
    ("unknown prim", prog_of [ B.let_ "x" (B.prim "no_such_prim" []); B.return_unit ]);
    ("prim arg error", prog_of (ret (B.prim "list_head" [ B.prim "list_empty" [] ])));
    ("assert failure", prog_of [ B.assert_ (B.bconst false) "boom" ]);
    ( "call arity",
      B.program "bad"
        ~funcs:
          [
            B.func "f" ~params:[] [ B.call "g" []; B.return_unit ];
            B.func "g" ~params:[ "a" ] [ B.return (B.v "a") ];
          ]
        ~entries:[] );
    ( "unknown function",
      prog_of [ B.call "missing" [ B.i 1 ]; B.return_unit ] );
    ( "call depth exceeded",
      B.program "bad"
        ~funcs:[ B.func "f" ~params:[] [ B.call "f" []; B.return_unit ] ]
        ~entries:[] );
  ]

let test_error_payloads () =
  List.iter
    (fun (name, prog) ->
      let c = outcome_of ~engine:`Compiled prog "f" in
      let t = outcome_of ~engine:`Treewalk prog "f" in
      Alcotest.(check string) name t c;
      Alcotest.(check bool)
        (name ^ " produced an outcome")
        false (c = "no outcome"))
    bad_cases

(* --- IC invalidation: redefinition-after-compile, trace-diffed ---

   Same random programs, but the compiled run has its compile cache cleared
   mid-run (epoch bump) while a *different* random program is compiled in
   between — the classic redefinition-after-compile pattern. Every call
   site's inline cache must refill against the new epoch and keep executing
   its own (unchanged) program: traces stay byte-identical to the
   tree-walker, and the refill counter moves. *)

let run_trace_with_redefinition seed =
  let prog = Randgen.gen_program seed in
  let sched = Sched.create ~seed () in
  let reg = Wd_env.Faultreg.create () in
  let res = Randgen.make_env ~reg ~seed in
  let main = Interp.create ~engine:`Compiled ~node:"n1" ~res prog in
  ignore (Interp.start main sched);
  (* mid-run: invalidate, then compile an unrelated program into the fresh
     epoch so the old sites cannot accidentally revalidate *)
  Sched.at sched (Time.sec 5) (fun () ->
      Interp.clear_compile_cache ();
      ignore (Interp.precompile (Randgen.gen_program (seed + 1000))));
  Sched.at sched (Time.sec 8) (fun () -> Interp.clear_compile_cache ());
  ignore (Sched.run ~until:(Time.sec 12) sched);
  {
    tr_stmts = Interp.stmts_executed main;
    tr_end = Sched.now sched;
    tr_globals =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) res.Runtime.globals []
      |> List.sort compare;
  }

let n_redef_seeds = 30

let test_ic_invalidation_traces () =
  let refills0 = Interp.ic_refills () in
  for seed = 0 to n_redef_seeds - 1 do
    let c = run_trace_with_redefinition seed in
    let t = run_trace ~engine:`Treewalk seed in
    Alcotest.(check int)
      (Fmt.str "stmts_executed under redefinition (seed %d)" seed)
      t.tr_stmts c.tr_stmts;
    Alcotest.(check int64)
      (Fmt.str "virtual end time under redefinition (seed %d)" seed)
      t.tr_end c.tr_end;
    if c.tr_globals <> t.tr_globals then
      Alcotest.failf "final globals differ at seed %d under redefinition" seed
  done;
  Alcotest.(check bool)
    "epoch bumps forced inline-cache refills" true
    (Interp.ic_refills () > refills0)

(* --- frame pools: reuse on iterated calls, correctness on deep recursion --- *)

let pool_prog =
  B.program "pool"
    ~funcs:
      [
        B.func "leaf" ~params:[ "x" ]
          [ B.let_ "y" B.(v "x" +: i 1); B.return (B.v "y") ];
        B.func "iterate" ~params:[ "n" ]
          [
            B.let_ "i" (B.i 0);
            B.while_
              B.(v "i" <: v "n")
              [ B.call ~bind:"r" "leaf" [ B.v "i" ];
                B.assign "i" B.(v "i" +: i 1) ];
            B.return (B.v "i");
          ];
        (* depth-bounded double recursion: rec(n) = rec(n-1) + rec(n-1) at
           the bottom two levels, so frames are drawn and returned on both
           the normal and the deep path *)
        B.func "rec" ~params:[ "n" ]
          [
            B.if_
              B.(v "n" <=: i 0)
              [ B.return (B.i 1) ]
              [
                B.call ~bind:"a" "rec" [ B.(v "n" -: i 1) ];
                B.return B.(v "a" +: i 1);
              ];
          ];
      ]
    ~entries:[]

let run_pool_fn ~engine fname arg =
  let sched = Sched.create ~seed:11 () in
  let reg = Wd_env.Faultreg.create () in
  let res = Randgen.make_env ~reg ~seed:11 in
  let it = Interp.create ~engine ~node:"n1" ~res pool_prog in
  let out = ref VUnit in
  ignore
    (Sched.spawn ~name:"pool" sched (fun () ->
         out := Interp.call it fname [ VInt arg ]));
  ignore (Sched.run sched);
  (it, !out, Interp.stmts_executed it)

let test_frame_pool_reuse () =
  let it, v, _ = run_pool_fn ~engine:`Compiled "iterate" 10_000 in
  Alcotest.(check bool) "iterate result" true (v = VInt 10_000);
  (match Interp.frame_pool_stats it "leaf" with
  | None -> Alcotest.fail "no frame pool stats for leaf on compiled engine"
  | Some (pooled, hits) ->
      (* first call misses (empty pool), every later one must hit *)
      Alcotest.(check bool)
        (Fmt.str "leaf pool hits %d >= 9999" hits)
        true (hits >= 9_999);
      Alcotest.(check bool)
        (Fmt.str "leaf pool retains %d frame(s)" pooled)
        true
        (pooled >= 1 && pooled <= 32));
  Alcotest.(check (option (pair int int)))
    "treewalk has no frame pools" None
    (let it_tw, _, _ = run_pool_fn ~engine:`Treewalk "iterate" 10 in
     Interp.frame_pool_stats it_tw "leaf")

let test_deep_recursion_parity () =
  (* depth 500 sits just under the 512 budget: 500 live frames at peak,
     far beyond the pool cap, so growth and drain paths both run *)
  let _, vc, sc = run_pool_fn ~engine:`Compiled "rec" 500 in
  let _, vt, st = run_pool_fn ~engine:`Treewalk "rec" 500 in
  Alcotest.(check bool) "deep recursion value parity" true (vc = vt);
  Alcotest.(check int) "deep recursion stmts parity" st sc;
  Alcotest.(check bool) "deep recursion computed" true (vc = VInt 501)

(* --- E17 fleet summaries: byte-identical across engines and widths --- *)

let test_e17_engine_identity () =
  let module E = Wd_harness.Experiments in
  let finish () = E.set_engine `Compiled in
  Fun.protect ~finally:finish (fun () ->
      E.set_jobs 4;
      E.set_engine `Compiled;
      let compiled = E.e17_text () in
      E.set_jobs 1;
      E.set_engine `Treewalk;
      let treewalk = E.e17_text () in
      Alcotest.(check string)
        "E17 fleet summary byte-identical across engines and --jobs widths"
        compiled treewalk)

let () =
  Alcotest.run "engine_diff"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Fmt.str "%d random programs trace-identical on both engines"
               n_seeds)
            `Slow test_randprog_traces;
          Alcotest.test_case "violation payloads byte-identical" `Quick
            test_error_payloads;
          Alcotest.test_case
            (Fmt.str
               "%d programs trace-identical under redefinition-after-compile"
               n_redef_seeds)
            `Slow test_ic_invalidation_traces;
          Alcotest.test_case "frame pool reused across iterated calls" `Quick
            test_frame_pool_reuse;
          Alcotest.test_case "deep recursion parity (500 frames)" `Quick
            test_deep_recursion_parity;
          Alcotest.test_case "E17 byte-identical across engines" `Slow
            test_e17_engine_identity;
        ] );
    ]
