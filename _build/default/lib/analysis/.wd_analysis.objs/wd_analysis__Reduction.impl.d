lib/analysis/reduction.ml: Callgraph Fmt Hashtbl List Option Regions Vulnerable Wd_ir
