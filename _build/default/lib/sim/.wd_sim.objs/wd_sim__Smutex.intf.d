lib/sim/smutex.mli: Sched
