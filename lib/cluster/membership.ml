(* Per-node membership agent: heartbeat gossip plus end-to-end probing of
   every peer, the fleet plane's two extrinsic evidence channels.

   Gossip is deliberately shallow — a periodic fabric broadcast touching no
   disk or queue — so it keeps flowing from a limping node (the gray-failure
   signature: "the heartbeat protocol keeps answering"). Probes are deep: the
   responder runs a bounded client operation through its local service
   before acking, so a node whose request pipeline has stalled acks
   [healthy = false] (or never acks at all once its responder tasks pile up
   behind the stall).

   The agent keeps per-peer state — last gossip heard, consecutive probe
   failures — that [Fleet] reads each correlation tick. State transitions
   also fire an [on_event] hook so the fleet can log membership churn. *)

type event =
  | Suspected of { who : string; by : string; at : int64 }
      (* gossip silence past the suspicion timeout *)
  | Probe_failing of { who : string; by : string; at : int64 }
  | Probe_recovered of { who : string; by : string; at : int64 }

type peer_state = {
  peer : string;
  mutable last_gossip : int64; (* last heartbeat heard from this peer *)
  mutable suspected : bool;
  mutable probe_fails : int; (* consecutive probe failures *)
  mutable probe_oks : int; (* lifetime acked-healthy count *)
  mutable outstanding : (int * int64) option; (* in-flight probe: seq, sent *)
}

type t = {
  node : Node.t;
  fabric : Fabric.t;
  sched : Wd_sim.Sched.t;
  gossip_period : int64;
  probe_period : int64;
  probe_timeout : int64; (* unacked past this = one failure *)
  suspicion_timeout : int64; (* gossip silence past this = suspected *)
  fail_threshold : int; (* consecutive failures before probe_failing *)
  digest_source : unit -> Fabric.digest list;
      (* recent local report digests, piggybacked on each heartbeat *)
  peers : (string, peer_state) Hashtbl.t;
  mutable gossip_seq : int;
  mutable probe_seq : int;
  mutable handlers : (event -> unit) list;
}

let create ?(gossip_period = Wd_sim.Time.ms 250)
    ?(probe_period = Wd_sim.Time.ms 500) ?(probe_timeout = Wd_sim.Time.ms 1500)
    ?(suspicion_timeout = Wd_sim.Time.sec 3) ?(fail_threshold = 2)
    ?(digest_source = fun () -> []) ~sched ~fabric ~node () =
  let peers = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace peers p
        {
          peer = p;
          last_gossip = Wd_sim.Sched.now sched;
          suspected = false;
          probe_fails = 0;
          probe_oks = 0;
          outstanding = None;
        })
    (Fabric.peers fabric (Node.id node));
  {
    node;
    fabric;
    sched;
    gossip_period;
    probe_period;
    probe_timeout;
    suspicion_timeout;
    fail_threshold;
    digest_source;
    peers;
    gossip_seq = 0;
    probe_seq = 0;
    handlers = [];
  }

let on_event t f = t.handlers <- f :: t.handlers
let emit t e = List.iter (fun f -> f e) t.handlers
let me t = Node.id t.node

let record_probe_fail t st =
  st.probe_fails <- st.probe_fails + 1;
  if st.probe_fails = t.fail_threshold then
    emit t
      (Probe_failing
         { who = st.peer; by = me t; at = Wd_sim.Sched.now t.sched })

let record_probe_ok t st ~healthy =
  if healthy then begin
    if st.probe_fails >= t.fail_threshold then
      emit t
        (Probe_recovered
           { who = st.peer; by = me t; at = Wd_sim.Sched.now t.sched });
    st.probe_fails <- 0;
    st.probe_oks <- st.probe_oks + 1
  end
  else record_probe_fail t st

(* --- accusation views: what this agent tells the fleet (piggybacked on
   gossip, and folded in directly when this agent's node is leader) ------ *)

let accused_probe t =
  Hashtbl.fold
    (fun p st acc -> if st.probe_fails >= t.fail_threshold then p :: acc else acc)
    t.peers []
  |> List.sort compare

let suspects t =
  Hashtbl.fold (fun p st acc -> if st.suspected then p :: acc else acc) t.peers []
  |> List.sort compare

(* --- inbox handlers ----------------------------------------------------

   The agent no longer owns the fabric inbox: one receiver per node (the
   election agent) drains every message class and dispatches membership
   traffic here, so gossip, probes, election and report shipping share a
   single ordered stream. *)

let note_gossip t ~from_ =
  match Hashtbl.find_opt t.peers from_ with
  | None -> ()
  | Some st ->
      st.last_gossip <- Wd_sim.Sched.now t.sched;
      st.suspected <- false

(* answer probes off-thread so a stalled local service never blocks the
   receiver loop *)
let handle_probe_req t ~from_ ~seq =
  let id = me t in
  ignore
    (Wd_sim.Sched.spawn ~name:(id ^ "-responder") ~daemon:true t.sched
       (fun () ->
         let healthy = Node.local_probe t.node in
         Fabric.send t.fabric ~src:id ~dst:from_
           (Fabric.Probe_ack { from_ = id; seq; healthy })))

let note_probe_ack t ~from_ ~seq ~healthy =
  match Hashtbl.find_opt t.peers from_ with
  | None -> ()
  | Some st -> (
      match st.outstanding with
      | Some (s, _) when s = seq ->
          st.outstanding <- None;
          record_probe_ok t st ~healthy
      | Some _ | None -> ())

let start t =
  let sched = t.sched and id = me t in
  (* heartbeat gossip broadcast, piggybacking accusations and digests *)
  ignore
    (Wd_sim.Sched.spawn ~name:(id ^ "-gossip") ~daemon:true sched (fun () ->
         while true do
           Wd_sim.Sched.sleep t.gossip_period;
           t.gossip_seq <- t.gossip_seq + 1;
           let accuse_probe = accused_probe t in
           let accuse_suspect = suspects t in
           let digests = t.digest_source () in
           List.iter
             (fun dst ->
               Fabric.send t.fabric ~src:id ~dst
                 (Fabric.Gossip
                    {
                      from_ = id;
                      seq = t.gossip_seq;
                      accuse_probe;
                      accuse_suspect;
                      digests;
                    }))
             (Fabric.peers t.fabric id)
         done));
  (* prober: time out the in-flight probe, then launch the next round *)
  ignore
    (Wd_sim.Sched.spawn ~name:(id ^ "-prober") ~daemon:true sched (fun () ->
         while true do
           Wd_sim.Sched.sleep t.probe_period;
           let now = Wd_sim.Sched.now sched in
           Hashtbl.iter
             (fun _ st ->
               (match st.outstanding with
               | Some (_, sent) when Int64.sub now sent > t.probe_timeout ->
                   st.outstanding <- None;
                   record_probe_fail t st
               | Some _ | None -> ());
               if st.outstanding = None then begin
                 t.probe_seq <- t.probe_seq + 1;
                 st.outstanding <- Some (t.probe_seq, now);
                 Fabric.send t.fabric ~src:id ~dst:st.peer
                   (Fabric.Probe_req { from_ = id; seq = t.probe_seq })
               end)
             t.peers
         done));
  (* suspicion sweep: gossip silence past the timeout *)
  ignore
    (Wd_sim.Sched.spawn ~name:(id ^ "-suspect") ~daemon:true sched (fun () ->
         while true do
           Wd_sim.Sched.sleep (Wd_sim.Time.ms 500);
           let now = Wd_sim.Sched.now sched in
           Hashtbl.iter
             (fun _ st ->
               if
                 (not st.suspected)
                 && Int64.sub now st.last_gossip > t.suspicion_timeout
               then begin
                 st.suspected <- true;
                 emit t (Suspected { who = st.peer; by = id; at = now })
               end)
             t.peers
         done))

(* --- fleet-facing views ----------------------------------------------- *)

let probe_failing t peer =
  match Hashtbl.find_opt t.peers peer with
  | Some st -> st.probe_fails >= t.fail_threshold
  | None -> false

let probe_ok_count t peer =
  match Hashtbl.find_opt t.peers peer with Some st -> st.probe_oks | None -> 0
