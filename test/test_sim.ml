(* Unit and property tests for the simulation kernel. *)

open Wd_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- heap --- *)

let test_heap_order () =
  let h = Heap.create ~dummy_payload:(-1) in
  ignore (Heap.push h ~time:30L 3);
  ignore (Heap.push h ~time:10L 1);
  ignore (Heap.push h ~time:20L 2);
  let order = List.map snd (Heap.drain h) in
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] order

let test_heap_ties_fifo () =
  let h = Heap.create ~dummy_payload:(-1) in
  List.iter (fun i -> ignore (Heap.push h ~time:5L i)) [ 1; 2; 3; 4; 5 ];
  let order = List.map snd (Heap.drain h) in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ] order

let test_heap_grow () =
  let h = Heap.create ~dummy_payload:0 in
  for i = 1 to 1000 do
    ignore (Heap.push h ~time:(Int64.of_int (1000 - i)) i)
  done;
  check_int "size" 1000 (Heap.size h);
  let times = List.map fst (Heap.drain h) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | [ _ ] | [] -> true
  in
  check "sorted" true (sorted times)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let h = Heap.create ~dummy_payload:0 in
      List.iteri (fun i t -> ignore (Heap.push h ~time:(Int64.of_int t) i)) times;
      let drained = Heap.drain h in
      List.length drained = List.length times
      && fst
           (List.fold_left
              (fun (ok, prev) (t, _) -> (ok && t >= prev, t))
              (true, Int64.min_int) drained))

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  let first_c = Rng.next_int64 c in
  let a2 = Rng.create ~seed:7 in
  let c2 = Rng.split a2 in
  ignore (Rng.next_int64 a2);
  Alcotest.(check int64) "child unaffected by parent advance" first_c
    (Rng.next_int64 c2)

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    check "in range" true (x >= 0 && x < 10)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check "float range" true (f >= 0.0 && f < 1.0)
  done

let prop_rng_exponential_positive =
  QCheck.Test.make ~name:"exponential durations are nonnegative" ~count:100
    QCheck.(pair small_int (float_bound_exclusive 1000.0))
    (fun (seed, mean) ->
      let r = Rng.create ~seed in
      Rng.exponential r ~mean:(mean +. 0.001) >= 0.0)

(* --- time --- *)

let test_time_units () =
  Alcotest.(check int64) "ms" 5_000_000L (Time.ms 5);
  Alcotest.(check int64) "sec" 2_000_000_000L (Time.sec 2);
  Alcotest.(check int64) "us" 3_000L (Time.us 3);
  check_str "pp seconds" "2.000s" (Time.to_string (Time.sec 2));
  check_str "pp millis" "5.000ms" (Time.to_string (Time.ms 5))

(* --- scheduler --- *)

let test_sched_runs_tasks_in_time_order () =
  let s = Sched.create () in
  let log = ref [] in
  let t name delay =
    ignore
      (Sched.spawn ~name s (fun () ->
           Sched.sleep delay;
           log := name :: !log))
  in
  t "c" (Time.ms 30);
  t "a" (Time.ms 10);
  t "b" (Time.ms 20);
  (match Sched.run s with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "expected quiescent");
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_sched_virtual_time () =
  let s = Sched.create () in
  ignore (Sched.spawn s (fun () -> Sched.sleep (Time.sec 3600)));
  ignore (Sched.run s);
  Alcotest.(check int64) "one simulated hour" (Time.sec 3600) (Sched.now s)

let test_sched_yield_interleaves () =
  let s = Sched.create () in
  let log = ref [] in
  let t name =
    ignore
      (Sched.spawn ~name s (fun () ->
           for i = 1 to 2 do
             log := Fmt.str "%s%d" name i :: !log;
             Sched.yield ()
           done))
  in
  t "a";
  t "b";
  ignore (Sched.run s);
  Alcotest.(check (list string)) "interleaved" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let test_sched_join () =
  let s = Sched.create () in
  let child_done = ref false in
  ignore
    (Sched.spawn s (fun () ->
         let child =
           Sched.spawn ~name:"child" s (fun () ->
               Sched.sleep (Time.ms 10);
               child_done := true)
         in
         match Sched.join child with
         | Sched.Exited -> Alcotest.(check bool) "done first" true !child_done
         | _ -> Alcotest.fail "child should exit"));
  ignore (Sched.run s)

let test_sched_kill () =
  let s = Sched.create () in
  let reached = ref false in
  let victim =
    Sched.spawn ~name:"victim" s (fun () ->
        Sched.sleep (Time.sec 100);
        reached := true)
  in
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep (Time.ms 1);
         Sched.kill s victim));
  ignore (Sched.run s);
  check "never resumed" false !reached;
  check "killed status" true (Sched.task_status victim = Some Sched.Killed)

let test_sched_failure_status () =
  let s = Sched.create () in
  let t = Sched.spawn ~name:"fails" s (fun () -> failwith "boom") in
  ignore (Sched.run s);
  match Sched.task_status t with
  | Some (Sched.Failed (Failure m)) -> check_str "msg" "boom" m
  | _ -> Alcotest.fail "expected failure status"

let test_sched_timeout_join_completes () =
  let s = Sched.create () in
  ignore
    (Sched.spawn s (fun () ->
         match Sched.timeout_join s ~timeout:(Time.sec 1) (fun () -> 41 + 1) with
         | Ok v -> check_int "value" 42 v
         | Error _ -> Alcotest.fail "should complete"));
  ignore (Sched.run s)

let test_sched_timeout_join_times_out () =
  let s = Sched.create () in
  let returned_at = ref (-1L) in
  ignore
    (Sched.spawn s (fun () ->
         match
           Sched.timeout_join s ~timeout:(Time.ms 10) (fun () ->
               Sched.sleep (Time.sec 5))
         with
         | Error `Timeout -> returned_at := Sched.now s
         | _ -> Alcotest.fail "should time out"));
  (match Sched.run s with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "child must be killed, leaving the sim quiescent");
  (* the killed child's stale sleep timer may advance the final clock, but
     the caller observed the timeout exactly at the deadline *)
  Alcotest.(check int64) "timed out at the deadline" (Time.ms 10) !returned_at

(* --- persistent runner: a reusable timeout_join --- *)

let test_runner_ok_timeout_exn () =
  let s = Sched.create () in
  ignore
    (Sched.spawn s (fun () ->
         let r = Sched.runner ~name:"rt" s in
         (match Sched.runner_run r ~timeout:(Time.sec 1) (fun () -> 40 + 2) with
         | Ok v -> check_int "ok value" 42 v
         | Error _ -> Alcotest.fail "should complete");
         (match
            Sched.runner_run r ~timeout:(Time.ms 10) (fun () ->
                Sched.sleep (Time.sec 5))
          with
         | Error `Timeout -> ()
         | _ -> Alcotest.fail "should time out");
         (* the worker was killed by the timeout; the runner respawns it *)
         (match
            Sched.runner_run r ~timeout:(Time.sec 1) (fun () ->
                failwith "boom")
          with
         | Error (`Exn (Failure m)) -> check_str "exn payload" "boom" m
         | _ -> Alcotest.fail "should surface the exception");
         (match Sched.runner_run r ~timeout:(Time.sec 1) (fun () -> 7) with
         | Ok v -> check_int "usable after exn" 7 v
         | Error _ -> Alcotest.fail "runner must stay usable");
         Sched.runner_stop r;
         match Sched.runner_run r ~timeout:(Time.sec 1) (fun () -> 9) with
         | Ok v -> check_int "usable after stop" 9 v
         | Error _ -> Alcotest.fail "runner must respawn after stop"));
  match Sched.run s with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "daemon worker must not keep the sim alive"

(* The refactor's scheduling-equivalence claim, tested directly: a periodic
   caller issuing a mix of completing / timing-out / raising bodies must
   observe the same outcomes at the same virtual times, with the same
   context-switch and event counts, whether each call spawns a fresh child
   (timeout_join) or reuses the persistent worker (runner). *)
let runner_equiv_workload use_runner =
  let s = Sched.create ~seed:7 () in
  let outcomes = ref [] in
  ignore
    (Sched.spawn ~name:"drv" s (fun () ->
         let call =
           if use_runner then
             let r = Sched.runner ~name:"wk" s in
             fun f -> Sched.runner_run r ~timeout:(Time.ms 10) f
           else fun f -> Sched.timeout_join ~name:"wk" s ~timeout:(Time.ms 10) f
         in
         for i = 1 to 30 do
           let body () =
             if i mod 7 = 0 then failwith "x";
             Sched.sleep (Time.ms (if i mod 3 = 0 then 50 else 1));
             i
           in
           let tag =
             match call body with
             | Ok v -> Printf.sprintf "ok:%d" v
             | Error `Timeout -> "timeout"
             | Error (`Exn _) -> "exn"
             | Error `Killed -> "killed"
           in
           outcomes := (tag, Sched.now s) :: !outcomes;
           Sched.sleep (Time.ms 5)
         done));
  ignore (Sched.run s);
  let _, switches, events = Sched.stats s in
  (List.rev !outcomes, Sched.now s, switches, events)

let test_runner_matches_timeout_join () =
  let o1, now1, sw1, ev1 = runner_equiv_workload false in
  let o2, now2, sw2, ev2 = runner_equiv_workload true in
  Alcotest.(check (list (pair string int64))) "same outcomes, same times" o1 o2;
  Alcotest.(check int64) "same final clock" now1 now2;
  check_int "same context switches" sw1 sw2;
  check_int "same events fired" ev1 ev2

(* --- Site intern table --- *)

let prop_site_intern_functional =
  QCheck.Test.make
    ~name:"site: equal strings get equal ids, distinct strings distinct ids"
    ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      let ia = Wd_sim.Site.intern a and ib = Wd_sim.Site.intern b in
      String.equal a b = (ia = ib))

let prop_site_roundtrip =
  QCheck.Test.make ~name:"site: str is a left inverse of intern" ~count:200
    QCheck.(small_list string)
    (fun ss ->
      List.for_all
        (fun x ->
          let id = Wd_sim.Site.intern x in
          id = Wd_sim.Site.intern x
          && String.equal (Wd_sim.Site.str id) x)
        ss)

let test_site_concurrent_interning () =
  let strs = List.init 200 (fun i -> "site/conc/" ^ string_of_int i) in
  let doms =
    List.init 3 (fun _ ->
        Domain.spawn (fun () -> List.map Wd_sim.Site.intern strs))
  in
  let per_domain = List.map Domain.join doms in
  (match per_domain with
  | first :: rest ->
      List.iter
        (fun ids ->
          Alcotest.(check (list int)) "all domains agree on ids" first ids)
        rest;
      List.iter2
        (fun s id -> check_str "round-trip" s (Wd_sim.Site.str id))
        strs first
  | [] -> Alcotest.fail "no domains");
  check "count is monotone and covers these"
    (Wd_sim.Site.count () >= List.length strs)
    true

let test_sched_deadlock_detection () =
  let s = Sched.create () in
  let c = Cond.create "never" in
  ignore (Sched.spawn ~name:"waiter" s (fun () -> Cond.wait c));
  match Sched.run s with
  | Sched.Deadlock [ t ] -> check_str "who" "waiter" (Sched.task_name t)
  | _ -> Alcotest.fail "expected deadlock"

let test_sched_daemon_does_not_block_exit () =
  let s = Sched.create () in
  ignore
    (Sched.spawn ~name:"daemon" ~daemon:true s (fun () ->
         while true do
           Sched.sleep (Time.sec 1)
         done));
  ignore (Sched.spawn s (fun () -> Sched.sleep (Time.ms 5)));
  match Sched.run ~until:(Time.sec 10) s with
  | Sched.Time_limit | Sched.Quiescent -> ()
  | Sched.Deadlock _ -> Alcotest.fail "daemons must not deadlock the sim"

let test_sched_run_until_resumable () =
  let s = Sched.create () in
  let hits = ref 0 in
  ignore
    (Sched.spawn ~daemon:true s (fun () ->
         while true do
           Sched.sleep (Time.sec 1);
           incr hits
         done));
  ignore (Sched.run ~until:(Time.sec 5) s);
  let five = !hits in
  ignore (Sched.run ~until:(Time.sec 10) s);
  check_int "first window" 5 five;
  check_int "second window" 10 !hits

let prop_sched_deterministic =
  QCheck.Test.make ~name:"same seed, same trace" ~count:20
    QCheck.(small_list (int_bound 50))
    (fun delays ->
      let trace seed =
        let s = Sched.create ~seed () in
        let log = ref [] in
        List.iteri
          (fun i d ->
            ignore
              (Sched.spawn ~name:(string_of_int i) s (fun () ->
                   Sched.sleep (Time.ms d);
                   log := (i, Sched.now s) :: !log)))
          delays;
        ignore (Sched.run s);
        !log
      in
      trace 5 = trace 5)

let test_sched_stats () =
  let s = Sched.create () in
  for _ = 1 to 5 do
    ignore (Sched.spawn s (fun () -> Sched.sleep (Time.ms 1)))
  done;
  ignore (Sched.run s);
  let spawned, switches, events = Sched.stats s in
  check_int "spawned" 5 spawned;
  check "switched at least once per task" true (switches >= 5);
  check "events fired" true (events >= 10)

let test_sched_kill_ready_task () =
  let s = Sched.create () in
  let ran = ref false in
  let victim = Sched.spawn ~name:"v" s (fun () -> ran := true) in
  (* killed before it ever runs: the queued start job must not execute *)
  Sched.kill s victim;
  ignore (Sched.run s);
  check "never ran" false !ran;
  check "killed" true (Sched.task_status victim = Some Sched.Killed)

let test_sched_self_identity () =
  let s = Sched.create () in
  ignore
    (Sched.spawn ~name:"me" s (fun () ->
         check_str "self name" "me" (Sched.task_name (Sched.self s))));
  ignore (Sched.run s)

let test_time_arithmetic () =
  Alcotest.(check int64) "add" (Time.ms 3) Time.(ms 1 + ms 2);
  Alcotest.(check int64) "sub" (Time.ms 1) Time.(ms 3 - ms 2);
  check "never dominates" true (Time.never > Time.sec 1_000_000);
  Alcotest.(check int64) "of_float roundtrip" (Time.sec 2)
    (Time.of_float_sec (Time.to_float_sec (Time.sec 2)))

let test_rng_choice_and_shuffle () =
  let r = Rng.create ~seed:9 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    check "choice member" true (Array.exists (( = ) (Rng.choice r arr)) arr)
  done;
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  Array.sort compare a;
  check "shuffle is a permutation" true (a = Array.init 20 Fun.id);
  for _ = 1 to 100 do
    let x = Rng.int64_range r 5L 9L in
    check "range inclusive" true (x >= 5L && x <= 9L)
  done

(* --- cond --- *)

let test_cond_signal_wakes_one () =
  let s = Sched.create () in
  let c = Cond.create "c" in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Sched.spawn ~daemon:true s (fun () ->
           Cond.wait c;
           incr woken))
  done;
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep (Time.ms 1);
         Cond.signal c));
  ignore (Sched.run ~until:(Time.ms 100) s);
  check_int "one woken" 1 !woken

let test_cond_broadcast_wakes_all () =
  let s = Sched.create () in
  let c = Cond.create "c" in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Sched.spawn ~daemon:true s (fun () ->
           Cond.wait c;
           incr woken))
  done;
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep (Time.ms 1);
         Cond.broadcast c));
  ignore (Sched.run ~until:(Time.ms 100) s);
  check_int "all woken" 3 !woken

let test_cond_await_timeout () =
  let s = Sched.create () in
  let c = Cond.create "c" in
  let result = ref None in
  ignore
    (Sched.spawn s (fun () ->
         result :=
           Some (Cond.await_timeout c (fun () -> false) ~timeout:(Time.ms 20))));
  ignore (Sched.run s);
  check "timed out" true (!result = Some false);
  Alcotest.(check int64) "waited the timeout" (Time.ms 20) (Sched.now s)

(* --- mutex --- *)

let test_mutex_mutual_exclusion () =
  let s = Sched.create () in
  let m = Smutex.create "m" in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Sched.spawn s (fun () ->
           Smutex.with_lock m (fun () ->
               incr inside;
               if !inside > !max_inside then max_inside := !inside;
               Sched.sleep (Time.ms 5);
               decr inside)))
  done;
  ignore (Sched.run s);
  check_int "never concurrent" 1 !max_inside;
  check_int "all acquired" 4 (Smutex.acquisitions m)

let test_mutex_released_on_exception () =
  let s = Sched.create () in
  let m = Smutex.create "m" in
  ignore
    (Sched.spawn s (fun () ->
         (try Smutex.with_lock m (fun () -> failwith "inner")
          with Failure _ -> ());
         check "released" false (Smutex.locked m)));
  ignore (Sched.run s)

let test_mutex_try_lock () =
  let s = Sched.create () in
  let m = Smutex.create "m" in
  ignore
    (Sched.spawn s (fun () ->
         check "first try" true (Smutex.try_lock m);
         check "second try fails" false (Smutex.try_lock m);
         Smutex.unlock m));
  ignore (Sched.run s)

let test_mutex_deadlock_cycle () =
  let s = Sched.create () in
  let a = Smutex.create "a" and b = Smutex.create "b" in
  ignore
    (Sched.spawn ~name:"t1" s (fun () ->
         Smutex.lock a;
         Sched.sleep (Time.ms 5);
         Smutex.lock b));
  ignore
    (Sched.spawn ~name:"t2" s (fun () ->
         Smutex.lock b;
         Sched.sleep (Time.ms 5);
         Smutex.lock a));
  match Sched.run s with
  | Sched.Deadlock tasks -> check_int "both stuck" 2 (List.length tasks)
  | _ -> Alcotest.fail "expected a lock cycle deadlock"

(* --- channel --- *)

let test_channel_fifo () =
  let s = Sched.create () in
  let ch = Channel.create "ch" in
  let got = ref [] in
  ignore
    (Sched.spawn s (fun () ->
         for i = 1 to 5 do
           Channel.send ch i
         done));
  ignore
    (Sched.spawn s (fun () ->
         for _ = 1 to 5 do
           got := Channel.recv ch :: !got
         done));
  ignore (Sched.run s);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_channel_capacity_blocks_sender () =
  let s = Sched.create () in
  let ch = Channel.create ~capacity:2 "ch" in
  let sent = ref 0 in
  ignore
    (Sched.spawn ~daemon:true s (fun () ->
         for i = 1 to 5 do
           Channel.send ch i;
           sent := i
         done));
  ignore (Sched.run ~until:(Time.ms 10) s);
  check_int "sender blocked at capacity" 2 !sent;
  ignore
    (Sched.spawn ~daemon:true s (fun () ->
         for _ = 1 to 5 do
           ignore (Channel.recv ch)
         done));
  ignore (Sched.run ~until:(Time.ms 20) s);
  check_int "drained" 5 !sent

let test_channel_recv_timeout () =
  let s = Sched.create () in
  let ch : int Channel.t = Channel.create "ch" in
  let got = ref (Some 0) in
  ignore
    (Sched.spawn s (fun () ->
         got := Channel.recv_timeout ch ~timeout:(Time.ms 15)));
  ignore (Sched.run s);
  check "timed out empty" true (!got = None)

let test_channel_try_ops_and_stats () =
  let s = Sched.create () in
  let ch = Channel.create ~capacity:1 "ch" in
  ignore
    (Sched.spawn s (fun () ->
         check "try_send ok" true (Channel.try_send ch 1);
         check "try_send full" false (Channel.try_send ch 2);
         check_int "length" 1 (Channel.length ch);
         check "try_recv" true (Channel.try_recv ch = Some 1);
         check "try_recv empty" true (Channel.try_recv ch = None);
         let sent, received = Channel.stats ch in
         check_int "sent" 1 sent;
         check_int "received" 1 received));
  ignore (Sched.run s)

let test_cond_waiter_count () =
  let s = Sched.create () in
  let c = Cond.create "c" in
  for _ = 1 to 3 do
    ignore (Sched.spawn ~daemon:true s (fun () -> Cond.wait c))
  done;
  ignore (Sched.run ~until:(Time.ms 5) s);
  check_int "three waiting" 3 (Cond.waiter_count c)

let test_channel_close () =
  let s = Sched.create () in
  let ch : int Channel.t = Channel.create "ch" in
  let outcome = ref "" in
  ignore
    (Sched.spawn s (fun () ->
         match Channel.recv ch with
         | _ -> outcome := "value"
         | exception Channel.Closed _ -> outcome := "closed"));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep (Time.ms 1);
         Channel.close ch));
  ignore (Sched.run s);
  check_str "closed" "closed" !outcome

(* --- trace --- *)

let test_trace_records_lifecycle () =
  let s = Sched.create () in
  let tr = Trace.create ~capacity:64 () in
  Sched.set_trace s tr;
  ignore
    (Sched.spawn ~name:"traced" s (fun () ->
         Sched.sleep (Time.ms 5);
         Sched.sleep (Time.ms 5)));
  ignore (Sched.run s);
  let events = Trace.recent tr 100 in
  let kinds =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.Trace.task_name = "traced" then Some e.Trace.kind else None)
      events
  in
  (match kinds with
  | Trace.Spawned
    :: Trace.Blocked _ :: Trace.Resumed
    :: Trace.Blocked _ :: Trace.Resumed
    :: [ Trace.Finished "exited" ] ->
      ()
  | _ -> Alcotest.failf "unexpected lifecycle (%d events)" (List.length kinds));
  check "chronological" true
    (let rec mono = function
       | (a : Trace.event) :: (b :: _ as rest) ->
           a.Trace.at <= b.Trace.at && mono rest
       | [ _ ] | [] -> true
     in
     mono events)

let test_trace_ring_bounds () =
  let s = Sched.create () in
  let tr = Trace.create ~capacity:8 () in
  Sched.set_trace s tr;
  for i = 1 to 20 do
    ignore (Sched.spawn ~name:(Fmt.str "t%d" i) s (fun () -> ()))
  done;
  ignore (Sched.run s);
  check "total counts everything" true (Trace.total tr >= 40);
  check_int "recent bounded by capacity" 8 (List.length (Trace.recent tr 100));
  (* the survivors are the newest events *)
  match List.rev (Trace.recent tr 100) with
  | (e : Trace.event) :: _ -> check_str "newest last spawn" "t20" e.Trace.task_name
  | [] -> Alcotest.fail "empty"

let () =
  Alcotest.run "wd_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "time order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_ties_fifo;
          Alcotest.test_case "growth" `Quick test_heap_grow;
          QCheck_alcotest.to_alcotest prop_heap_sorted;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "choice/shuffle/range" `Quick test_rng_choice_and_shuffle;
          QCheck_alcotest.to_alcotest prop_rng_exponential_positive;
        ] );
      ( "time",
        [
          Alcotest.test_case "units and pp" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
        ] );
      ( "sched",
        [
          Alcotest.test_case "time order" `Quick test_sched_runs_tasks_in_time_order;
          Alcotest.test_case "virtual time" `Quick test_sched_virtual_time;
          Alcotest.test_case "yield interleaves" `Quick test_sched_yield_interleaves;
          Alcotest.test_case "join" `Quick test_sched_join;
          Alcotest.test_case "kill" `Quick test_sched_kill;
          Alcotest.test_case "failure status" `Quick test_sched_failure_status;
          Alcotest.test_case "timeout_join ok" `Quick test_sched_timeout_join_completes;
          Alcotest.test_case "timeout_join timeout" `Quick
            test_sched_timeout_join_times_out;
          Alcotest.test_case "deadlock detection" `Quick test_sched_deadlock_detection;
          Alcotest.test_case "daemon exit" `Quick test_sched_daemon_does_not_block_exit;
          Alcotest.test_case "resumable run" `Quick test_sched_run_until_resumable;
          Alcotest.test_case "stats" `Quick test_sched_stats;
          Alcotest.test_case "kill ready task" `Quick test_sched_kill_ready_task;
          Alcotest.test_case "self identity" `Quick test_sched_self_identity;
          Alcotest.test_case "runner ok/timeout/exn/reuse" `Quick
            test_runner_ok_timeout_exn;
          Alcotest.test_case "runner matches timeout_join" `Quick
            test_runner_matches_timeout_join;
          QCheck_alcotest.to_alcotest prop_sched_deterministic;
        ] );
      ( "site",
        [
          Alcotest.test_case "concurrent interning" `Quick
            test_site_concurrent_interning;
          QCheck_alcotest.to_alcotest prop_site_intern_functional;
          QCheck_alcotest.to_alcotest prop_site_roundtrip;
        ] );
      ( "cond",
        [
          Alcotest.test_case "signal one" `Quick test_cond_signal_wakes_one;
          Alcotest.test_case "broadcast all" `Quick test_cond_broadcast_wakes_all;
          Alcotest.test_case "await timeout" `Quick test_cond_await_timeout;
          Alcotest.test_case "waiter count" `Quick test_cond_waiter_count;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "release on exception" `Quick
            test_mutex_released_on_exception;
          Alcotest.test_case "try_lock" `Quick test_mutex_try_lock;
          Alcotest.test_case "deadlock cycle" `Quick test_mutex_deadlock_cycle;
        ] );
      ( "trace",
        [
          Alcotest.test_case "lifecycle" `Quick test_trace_records_lifecycle;
          Alcotest.test_case "ring bounds" `Quick test_trace_ring_bounds;
        ] );
      ( "channel",
        [
          Alcotest.test_case "fifo" `Quick test_channel_fifo;
          Alcotest.test_case "capacity blocks" `Quick
            test_channel_capacity_blocks_sender;
          Alcotest.test_case "recv timeout" `Quick test_channel_recv_timeout;
          Alcotest.test_case "try ops and stats" `Quick test_channel_try_ops_and_stats;
          Alcotest.test_case "close" `Quick test_channel_close;
        ] );
    ]
