(* Cluster-scoped failure scenarios for the fleet aggregation plane
   (`wd_cluster`). Unlike [Catalog] scenarios, which are injected into one
   process's environment, these name a *victim inside a fleet*: a node
   index whose local environment degrades, a directed fabric link to cut,
   or a fleet-wide condition with no victim at all. The expected verdict is
   what the fleet plane should conclude from correlating the nodes' local
   watchdog streams — the cluster analogue of Catalog's [expectation]. *)

type ckind =
  | Node_limplock of { victim : int; factor : float }
      (* the victim's disks degrade by [factor] but never fail: its mimic
         checkers alarm, peers' probes of it stall, everyone else healthy *)
  | Asym_partition of { src : int; dst : int }
      (* drop fabric messages src->dst only; dst->src stays alive — the
         partial partition whose cut the probe matrix must localise *)
  | Fleet_overload
      (* every node is flooded by legitimate open-loop bursts: signal
         checkers alarm fleet-wide, mimics stay quiet — the paper's §4.2
         false-alarm case lifted to fleet scope *)
  | Fault_free
  | Link_flap of { src : int; dst : int; window : int64 }
      (* transient fabric fault: drop src->dst for a bounded window, then
         heal. Shorter than the suspicion timeout and the probe timeout's
         reach, so a correct plane accumulates at most one consecutive
         probe failure and indicts nothing *)
  | Slow_fabric_link of { src : int; dst : int; factor : float }
      (* degrade one fabric direction by [factor] without dropping anything:
         probes over it limp, every payload still arrives *)
  | Correlated of ckind list
      (* inject several kinds at once: the correlated failures that stress
         the verdict rules' priority order *)

(* What the fleet plane should conclude. *)
type expected_verdict =
  | Expect_node of int      (* indict exactly this node (by index) *)
  | Expect_links            (* indict links only; no node indicted *)
  | Expect_no_indictment    (* overload / fault-free: stay quiet *)

type cscenario = {
  csid : string;
  cdescription : string;
  ckind : ckind;
  cexpected : expected_verdict;
  (* acceptable localisation per system: any generated-checker report whose
     function is in this list counts as "right component" *)
  ctruth : (string * string list) list;
}

let all =
  [
    {
      csid = "fleet-limplock";
      cdescription =
        "one node's disks degrade 2000x but never fail; its heartbeat gossip \
         keeps flowing";
      ckind = Node_limplock { victim = 2; factor = 2000. };
      cexpected = Expect_node 2;
      ctruth =
        [
          ( "zkmini",
            [ "commit_txn"; "serialize_node"; "serialize_snapshot";
              "follower_loop" ] );
          ( "cstore",
            [ "do_write"; "flush_memtable"; "compact_once"; "do_read" ] );
        ];
    };
    {
      csid = "fleet-asym-partition";
      cdescription =
        "fabric cut n1->n3 only: probes across the cut fail both ways, \
         every node keeps healthy links elsewhere";
      ckind = Asym_partition { src = 1; dst = 3 };
      cexpected = Expect_links;
      ctruth = [];
    };
    {
      csid = "fleet-overload";
      cdescription =
        "legitimate burst traffic floods every node's request queue; no \
         fault anywhere";
      ckind = Fleet_overload;
      cexpected = Expect_no_indictment;
      ctruth = [];
    };
    {
      csid = "fleet-fault-free";
      cdescription = "no fault, no overload: any indictment is false";
      ckind = Fault_free;
      cexpected = Expect_no_indictment;
      ctruth = [];
    };
  ]

(* Scenarios beyond the original four-cell grid. Kept out of [all] so the
   long-standing 8/8-indict / 0/8-false oracle over [all] stays meaningful;
   campaign and experiment grids opt in explicitly. *)
let extras =
  [
    {
      csid = "fleet-link-flap";
      cdescription =
        "fabric link n1->n3 drops for 1.2s then heals: a transient flap the \
         plane must ride out without suspicion or indictment";
      ckind = Link_flap { src = 1; dst = 3; window = Wd_sim.Time.ms 1200 };
      cexpected = Expect_no_indictment;
      ctruth = [];
    };
    {
      csid = "fleet-leader-limplock";
      cdescription =
        "the elected leader's own disks degrade 2000x: the plane must fail \
         over to a successor, which indicts and recovers the old leader";
      ckind = Node_limplock { victim = 0; factor = 2000. };
      cexpected = Expect_node 0;
      ctruth =
        [
          ( "zkmini",
            [ "commit_txn"; "serialize_node"; "serialize_snapshot";
              "follower_loop" ] );
          ( "cstore",
            [ "do_write"; "flush_memtable"; "compact_once"; "do_read" ] );
        ];
    };
    {
      csid = "fleet-limplock-partition";
      cdescription =
        "one node limps while an unrelated fabric link is cut: the node \
         verdict must win the priority race, the cut must not shift blame";
      ckind =
        Correlated
          [
            Node_limplock { victim = 2; factor = 2000. };
            Asym_partition { src = 1; dst = 3 };
          ];
      cexpected = Expect_node 2;
      ctruth =
        [
          ( "zkmini",
            [ "commit_txn"; "serialize_node"; "serialize_snapshot";
              "follower_loop" ] );
          ( "cstore",
            [ "do_write"; "flush_memtable"; "compact_once"; "do_read" ] );
        ];
    };
    {
      csid = "fleet-slow-link-gray";
      cdescription =
        "a gray node behind a link that also limps: the slow link masks \
         nothing — mimic evidence must still pin the node, not the fabric";
      ckind =
        Correlated
          [
            Node_limplock { victim = 1; factor = 2000. };
            Slow_fabric_link { src = 1; dst = 0; factor = 200. };
          ];
      cexpected = Expect_node 1;
      ctruth =
        [
          ( "zkmini",
            [ "commit_txn"; "serialize_node"; "serialize_snapshot";
              "follower_loop" ] );
          ( "cstore",
            [ "do_write"; "flush_memtable"; "compact_once"; "do_read" ] );
        ];
    };
  ]

let find csid =
  match List.find_opt (fun s -> s.csid = csid) (all @ extras) with
  | Some s -> s
  | None ->
      invalid_arg (Fmt.str "Cluster_catalog.find: unknown scenario %s" csid)

(* Accepted localisations for [system], or [] when any/no component is
   acceptable (link and no-indictment scenarios). *)
let truth_components s ~system =
  match List.assoc_opt system s.ctruth with Some fs -> fs | None -> []

(* Highest node index the scenario touches (victims and link endpoints), or
   -1 for fleet-wide kinds. Lets a campaign config reject a topology too
   small for its scenario before any scheduler exists. *)
let rec max_index_of_kind = function
  | Node_limplock { victim; _ } -> victim
  | Asym_partition { src; dst }
  | Link_flap { src; dst; _ }
  | Slow_fabric_link { src; dst; _ } ->
      max src dst
  | Fleet_overload | Fault_free -> -1
  | Correlated ks -> List.fold_left (fun acc k -> max acc (max_index_of_kind k)) (-1) ks

let max_node_index s = max_index_of_kind s.ckind

(* Materialise the scenario into faults at [at].

   [node_reg i] is node i's private environment registry — a fault injected
   there degrades that node only, even though every node names its disk by
   the same site string. [fabric_reg] governs the shared inter-node fabric,
   where sites carry src/dst node ids ("net:fabric:send:n1:n3"). Overload
   and fault-free inject nothing; the overload burst is workload, not a
   fault, and is driven by the cluster boot. *)
let inject ~node_reg ~fabric_reg ~node_name ~at s =
  let rec go tag kind =
    match kind with
    | Node_limplock { victim; factor } ->
        Wd_env.Faultreg.inject (node_reg victim)
          {
            Wd_env.Faultreg.id = tag;
            site_pattern = "disk:*";
            behaviour = Wd_env.Faultreg.Slow_factor factor;
            start_at = at;
            stop_at = Wd_sim.Time.never;
            once = false;
          }
    | Asym_partition { src; dst } ->
        Wd_env.Faultreg.inject fabric_reg
          {
            Wd_env.Faultreg.id = tag;
            site_pattern =
              Fmt.str "net:fabric:send:%s:%s" (node_name src) (node_name dst);
            behaviour = Wd_env.Faultreg.Drop;
            start_at = at;
            stop_at = Wd_sim.Time.never;
            once = false;
          }
    | Link_flap { src; dst; window } ->
        Wd_env.Faultreg.inject fabric_reg
          {
            Wd_env.Faultreg.id = tag;
            site_pattern =
              Fmt.str "net:fabric:send:%s:%s" (node_name src) (node_name dst);
            behaviour = Wd_env.Faultreg.Drop;
            start_at = at;
            stop_at = Int64.add at window;
            once = false;
          }
    | Slow_fabric_link { src; dst; factor } ->
        Wd_env.Faultreg.inject fabric_reg
          {
            Wd_env.Faultreg.id = tag;
            site_pattern =
              Fmt.str "net:fabric:send:%s:%s" (node_name src) (node_name dst);
            behaviour = Wd_env.Faultreg.Slow_factor factor;
            start_at = at;
            stop_at = Wd_sim.Time.never;
            once = false;
          }
    | Fleet_overload | Fault_free -> ()
    | Correlated ks ->
        List.iteri (fun i k -> go (Fmt.str "%s#%d" tag i) k) ks
  in
  go s.csid s.ckind

let pp_cscenario ppf s =
  Fmt.pf ppf "%-20s %s" s.csid s.cdescription
