(** The watchdog driver (§3.1): schedules checkers, executes each run in a
    disposable child task with a deadline, catches failure signatures
    (error, crash, hang, slowness), debounces and validates them, and
    surfaces reports to registered actions.

    A hung or crashed checker never takes the driver down. *)

type t

val create : ?policy:Policy.t -> Wd_sim.Sched.t -> t

val add_checker : t -> Checker.t -> unit
(** Before {!start}: queued. After: scheduled immediately. *)

val start : t -> unit
(** Spawn one daemon scheduling task per checker. *)

val stop : t -> unit

val on_report : t -> (Report.t -> unit) -> unit
(** Actions run on every surfaced report (alerting, recovery, ...). *)

val reports : t -> Report.t list
(** Surfaced reports, oldest first. *)

val suppressed : t -> Report.t list
(** Reports held back by validation (policy [suppress_unvalidated]). *)

val first_report : t -> Report.t option
val first_report_where : t -> (Report.t -> bool) -> Report.t option

type checker_stats = {
  cs_id : string;
  cs_kind : Checker.kind;
  cs_executions : int;
  cs_failures : int;
  cs_skips : int;
  cs_timeouts : int;
}

val stats : t -> checker_stats list
val checker_count : t -> int
