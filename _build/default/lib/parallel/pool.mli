(** Fixed-size OCaml 5 domain pool with a work-queue [map]/[map_reduce]
    API, built for embarrassingly parallel simulation campaigns.

    Every simulation in this repository is a self-contained deterministic
    world (its own scheduler, fault registry and resources; the ambient
    scheduler is domain-local), so independent runs can execute on separate
    domains with no shared state. [map] preserves input order and re-raises
    the first (by input position) exception a task raised, which makes a
    parallel campaign observationally identical to its sequential
    counterpart — only faster. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] worker domains sharing one work queue.
    With [jobs <= 1] no domains are spawned and [map] degenerates to
    [List.map] in the calling domain. *)

val jobs : t -> int
(** Parallelism width the pool was created with (>= 1). *)

val shutdown : t -> unit
(** Drain and join the worker domains. Idempotent. Submitting work to a
    pool after shutdown raises [Invalid_argument]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, distributing the calls
    across the pool's domains. Results come back in input order. If any
    call raises, the exception of the lowest-indexed failing element is
    re-raised in the caller (with its backtrace) after all tasks settle. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** Parallel map, then a sequential left fold in the calling domain — the
    reduction order is the input order, keeping the result deterministic
    regardless of completion order. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** Run [f] with a transient pool, shutting it down on exit (also on
    exceptions). [jobs] defaults to {!default_jobs}. *)

val run_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ?jobs (fun p -> map p f xs)]. *)

val default_jobs : unit -> int
(** The [WD_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
