(** Adaptive checker scheduling: the typed policy a {!Driver} is created
    with, replacing the historical implicit fixed-cadence daemon loop.

    [Fixed cadence] reproduces the per-checker loops (cadence 1.0 is
    bit-for-bit the historical schedule). [Adaptive _] runs one central
    scheduling loop that samples load pressure (sim run-queue depth,
    virtual-time slack, the loadgen arrival stream via
    {!set_load_probe}), throttles checker cadence when the checkers' share
    of fired events exceeds [target_overhead] — never past
    [latency_bound] — batches co-scheduled checkers behind a single
    context-version sampling pass (one COW snapshot version per batch),
    and deduplicates runs whose context version is unchanged.

    All inputs are virtual-time or scheduler-local, so adaptive decisions
    are a deterministic function of the seed — byte-identical at any
    domain-pool width. *)

type policy =
  | Fixed of float  (** cadence scale on each checker's declared period *)
  | Adaptive of {
      target_overhead : float;
          (** budgeted checker share of fired sim events, e.g. [0.005] *)
      latency_bound : int64;
          (** hard cap on the gap between two executions of one checker
              (checkers whose period already exceeds it keep their period) *)
      sample_window : int64;  (** pressure/budget accounting window *)
    }

val fixed : policy
(** [Fixed 1.0] — the historical schedule, exactly. *)

val adaptive :
  ?target_overhead:float ->
  ?latency_bound:int64 ->
  ?sample_window:int64 ->
  unit ->
  policy
(** Defaults: 0.5% target overhead, 2s latency bound, 500ms window.
    Raises [Invalid_argument] on non-positive parameters. *)

val policy_name : policy -> string
val pp_policy : Format.formatter -> policy -> unit

type t
(** One scheduler instance, bound to a simulation. *)

type slot
(** Per-checker scheduling state. *)

val create : policy -> Wd_sim.Sched.t -> t
val policy : t -> policy

val set_load_probe : t -> (unit -> int) -> unit
(** Wire the arrival stream in: the probe returns queued/in-flight request
    count (e.g. {!Wd_harness.Loadgen.inflight}). Sampled at window
    boundaries; deterministic because loadgen state is virtual-time-only. *)

val register : t -> period:int64 -> ?version:(unit -> int) -> unit -> slot
(** Add a checker: [period] is its declared cadence, [version] its context
    version function ({!Checker.t.ctx_version}) when dedup applies. First
    due one period from now. *)

val scaled_period : t -> int64 -> int64
(** Fixed-mode effective period ([cadence * period]; identity at 1.0 and
    in adaptive mode). The driver's per-checker loops sleep this. *)

val quantum : t -> int64
(** Central-loop sleep: the fastest registered period, floored at 1ms,
    capped at the sample window. *)

val due : t -> slot -> bool

val begin_batch : t -> slot list -> unit
(** One version-sampling pass over the due slots: co-scheduled checkers
    observe a single snapshot version, and the context's COW cache shares
    the actual copies between them. *)

val decide : t -> slot -> [ `Run | `Skip_dedup ]
(** For a due slot after {!begin_batch}: [`Skip_dedup] when the context
    version is unchanged since the last execution and the latency bound
    has not expired (the slot is parked no later than the bound). *)

val note_run : t -> slot -> started:int64 -> events_cost:int -> unit
(** Account a completed run (its fired-event cost charges the current
    window) and reschedule one effective period after completion. *)

val tick : t -> unit
(** Close the sampling window if due: compare checker event share against
    [target_overhead], sample the pressure probes, move the throttle. *)

val throttle : t -> float
(** Current cadence stretch factor (1.0 = unthrottled). *)

type stats = {
  st_policy : string;
  st_batches : int;  (** dispatch rounds with at least one due checker *)
  st_runs : int;  (** checker executions dispatched *)
  st_dedup_skips : int;  (** runs skipped on unchanged context version *)
  st_shared_syncs : int;
      (** co-scheduled runs beyond the first of their batch — runs that
          reused the batch's context snapshot instead of forcing a fresh
          sampling pass *)
  st_windows : int;  (** sampling windows closed *)
  st_throttle_peak : float;
}

val stats : t -> stats
