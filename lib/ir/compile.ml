(* Closure compiler: lowers each IR function, once, into a tree of OCaml
   closures. See compile.mli for the lowering strategy and the parity
   contract with the tree-walking reference engine in [Interp].

   The compiler owns nothing effectful: charging, op execution, sync
   protocols and hooks are reached through the ['i rt] record supplied by
   the interpreter, so one compiled program serves Main and Checker
   instances alike and the semantics live in exactly one place. *)

open Ast

exception Violation of { loc : Loc.t; vkind : string; msg : string }
exception Return_exn of value

type 'i rt = {
  charge_stmt : 'i -> unit;
  charge : 'i -> int64 -> unit;
  exec_op :
    'i ->
    Loc.t ->
    desc:string ->
    kind:op_kind ->
    target:string ->
    value list ->
    value;
  exec_sync : 'i -> Loc.t -> lock:string -> desc:string -> (unit -> unit) -> unit;
  exec_hook : 'i -> int -> (string -> value option) -> unit;
  max_depth : 'i -> int;
}

(* Frame slots are always "bound" to something; reads of a name the program
   never assigned must still raise the tree-walker's unbound violation. A
   single private block, tested by physical equality, marks empty slots —
   program values can never be physically equal to it. It must never leak
   into program-visible state: [Var] reads and hook captures check it. *)
let unbound : value = VStr "\x00wd:unbound\x00"

let vtrue = VBool true
let vfalse = VBool false

(* Raise helpers shared by both engines: the single source of truth for
   violation payloads, and never inlined so no error string is formatted
   before the raise decision. *)
let[@inline never] verr loc vkind msg = raise (Violation { loc; vkind; msg })

let[@inline never] err_unbound loc x =
  verr loc "unbound" (Fmt.str "unbound variable %s" x)

let[@inline never] err_cond loc v =
  verr loc "type" (Fmt.str "condition not bool: %a" pp_value v)

let[@inline never] err_logic loc v =
  verr loc "type" (Fmt.str "logic op on %a" pp_value v)

let[@inline never] err_int_op loc va vb =
  verr loc "type" (Fmt.str "int op on %a, %a" pp_value va pp_value vb)

let[@inline never] err_cmp loc va vb =
  verr loc "type" (Fmt.str "comparison on %a, %a" pp_value va pp_value vb)

let[@inline never] err_concat loc va vb =
  verr loc "type" (Fmt.str "concat on %a, %a" pp_value va pp_value vb)

let[@inline never] err_not loc v = verr loc "type" (Fmt.str "not: %a" pp_value v)
let[@inline never] err_neg loc v = verr loc "type" (Fmt.str "neg: %a" pp_value v)
let[@inline never] err_len loc v = verr loc "type" (Fmt.str "len: %a" pp_value v)
let[@inline never] err_fst loc v = verr loc "type" (Fmt.str "fst: %a" pp_value v)
let[@inline never] err_snd loc v = verr loc "type" (Fmt.str "snd: %a" pp_value v)

let[@inline never] err_foreach loc v =
  verr loc "type" (Fmt.str "foreach over %a" pp_value v)

let[@inline never] err_prim loc m = verr loc "prim" m

let[@inline never] err_depth n =
  verr Loc.dummy "depth" (Fmt.str "call depth > %d" n)

let[@inline never] err_call_arity fname =
  verr Loc.dummy "arity" (Fmt.str "call %s arity" fname)

let op_desc kind target = op_kind_name kind ^ "(" ^ target ^ ")"

(* --- slot resolution --- *)

type fenv = { slots : (string, int) Hashtbl.t; mutable next : int }

let slot fenv x =
  match Hashtbl.find_opt fenv.slots x with
  | Some i -> i
  | None ->
      let i = fenv.next in
      fenv.next <- i + 1;
      Hashtbl.add fenv.slots x i;
      i

(* --- compiled form --- *)

type 'i cfunc = {
  cf_src : func; (* identity of the first binding; pass 2 compiles only it *)
  cf_arity : int;
  mutable cf_param_slots : int array;
  mutable cf_nslots : int;
  mutable cf_body : 'i -> value array -> int -> unit; (* raises Return_exn *)
}

type 'i t = { cp_prog : program; cp_funcs : (string, 'i cfunc) Hashtbl.t }

(* --- expression compilation (pure: closures take only the frame) --- *)

let rec cexpr fenv loc e : value array -> value =
  match e with
  | Const v -> fun _ -> v
  | Var x ->
      let i = slot fenv x in
      fun f ->
        let v = Array.unsafe_get f i in
        if v == unbound then err_unbound loc x else v
  | Binop (op, a, b) -> cbinop fenv loc op a b
  | Unop (Not, e1) -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VBool b -> VBool (not b) | v -> err_not loc v)
  | Unop (Neg, e1) -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VInt i -> VInt (-i) | v -> err_neg loc v)
  | Unop (Len, e1) -> (
      let c = cexpr fenv loc e1 in
      fun f ->
        match c f with
        | VStr s -> VInt (String.length s)
        | VBytes b -> VInt (Bytes.length b)
        | VList l -> VInt (List.length l)
        | VMap m -> VInt (List.length m)
        | v -> err_len loc v)
  | Pair (a, b) ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        VPair (va, vb)
  | Fst e1 -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VPair (a, _) -> a | v -> err_fst loc v)
  | Snd e1 -> (
      let c = cexpr fenv loc e1 in
      fun f -> match c f with VPair (_, b) -> b | v -> err_snd loc v)
  | Prim (name, args) ->
      let k = clist fenv loc args in
      fun f ->
        let vs = k f in
        (try Prims.apply name vs with Prims.Prim_error m -> err_prim loc m)

and cbinop fenv loc op a b : value array -> value =
  match op with
  | And ->
      (* Short-circuit; a non-bool left side is a type violation before the
         right side is touched, in both engines. The right side's raw value
         is the result, unchecked — exactly the tree-walker. *)
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cexpr fenv loc b in
      fun f -> if ca f then cb f else vfalse
  | Or ->
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cexpr fenv loc b in
      fun f -> if ca f then vtrue else cb f
  | Add ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> VInt (x + y)
        | _ -> err_int_op loc va vb)
  | Sub ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> VInt (x - y)
        | _ -> err_int_op loc va vb)
  | Mul ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> VInt (x * y)
        | _ -> err_int_op loc va vb)
  | Div ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y ->
            if y = 0 then verr loc "arith" "division by zero" else VInt (x / y)
        | _ -> err_int_op loc va vb)
  | Mod ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y ->
            if y = 0 then verr loc "arith" "mod by zero" else VInt (x mod y)
        | _ -> err_int_op loc va vb)
  | Eq ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        if value_equal va vb then vtrue else vfalse
  | Ne ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        if value_equal va vb then vfalse else vtrue
  | (Lt | Le | Gt | Ge) as op ->
      let c = ccmp fenv loc op a b in
      fun f -> if c f then vtrue else vfalse
  | Concat ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VStr x, VStr y -> VStr (x ^ y)
        | _ -> err_concat loc va vb)

and ccmp fenv loc op a b : value array -> bool =
  let ca = cexpr fenv loc a in
  let cb = cexpr fenv loc b in
  match op with
  | Lt ->
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> x < y
        | VStr x, VStr y -> String.compare x y < 0
        | _ -> err_cmp loc va vb)
  | Le ->
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> x <= y
        | VStr x, VStr y -> String.compare x y <= 0
        | _ -> err_cmp loc va vb)
  | Gt ->
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> x > y
        | VStr x, VStr y -> String.compare x y > 0
        | _ -> err_cmp loc va vb)
  | Ge ->
      fun f -> (
        let va = ca f in
        let vb = cb f in
        match (va, vb) with
        | VInt x, VInt y -> x >= y
        | VStr x, VStr y -> String.compare x y >= 0
        | _ -> err_cmp loc va vb)
  | Add | Sub | Mul | Div | Mod | Eq | Ne | And | Or | Concat -> assert false

(* Compile an expression used as a condition, producing a bare [bool].
   [bad] is the violation to raise when the expression's *value* turns out
   non-bool; it differs by context ("condition not bool" under
   If/While/Assert, "logic op" under And/Or), matching the tree-walker's
   [truthy]-vs-[eval_binop] split. Comparison/equality shapes skip the
   check entirely — they cannot produce non-bools. *)
and cbool fenv loc (bad : value -> bool) e : value array -> bool =
  match e with
  | Const (VBool true) -> fun _ -> true
  | Const (VBool false) -> fun _ -> false
  | Binop (Eq, a, b) ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        value_equal va vb
  | Binop (Ne, a, b) ->
      let ca = cexpr fenv loc a in
      let cb = cexpr fenv loc b in
      fun f ->
        let va = ca f in
        let vb = cb f in
        not (value_equal va vb)
  | Binop (((Lt | Le | Gt | Ge) as op), a, b) -> ccmp fenv loc op a b
  | Binop (And, a, b) ->
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cbool fenv loc bad b in
      fun f -> if ca f then cb f else false
  | Binop (Or, a, b) ->
      let ca = cbool fenv loc (fun v -> err_logic loc v) a in
      let cb = cbool fenv loc bad b in
      fun f -> if ca f then true else cb f
  | Unop (Not, e1) ->
      let c = cbool fenv loc (fun v -> err_not loc v) e1 in
      fun f -> not (c f)
  | e -> (
      let c = cexpr fenv loc e in
      fun f -> match c f with VBool b -> b | v -> bad v)

(* Flattened left-to-right argument evaluation: no [List.map] closure per
   execution for the common small arities. *)
and clist fenv loc args : value array -> value list =
  match List.map (cexpr fenv loc) args with
  | [] -> fun _ -> []
  | [ a ] -> fun f -> [ a f ]
  | [ a; b ] ->
      fun f ->
        let va = a f in
        let vb = b f in
        [ va; vb ]
  | [ a; b; c ] ->
      fun f ->
        let va = a f in
        let vb = b f in
        let vc = c f in
        [ va; vb; vc ]
  | [ a; b; c; d ] ->
      fun f ->
        let va = a f in
        let vb = b f in
        let vc = c f in
        let vd = d f in
        [ va; vb; vc; vd ]
  | cs -> fun f -> List.map (fun c -> c f) cs

(* --- statement and program compilation --- *)

let compile ~rt prog =
  let funcs = Hashtbl.create (2 * List.length prog.funcs) in
  (* Pass 1: one handle per name (first binding wins, like [find_func]), so
     call sites — including forward and mutual references — resolve to the
     handle now and read the body through it at run time. *)
  List.iter
    (fun f ->
      if not (Hashtbl.mem funcs f.fname) then
        Hashtbl.add funcs f.fname
          {
            cf_src = f;
            cf_arity = List.length f.params;
            cf_param_slots = [||];
            cf_nslots = 0;
            cf_body = (fun _ _ _ -> assert false);
          })
    prog.funcs;
  let rec cstmt fenv (st : stmt) =
    let loc = st.loc in
    match st.node with
    | Let (x, e) | Assign (x, e) ->
        let i = slot fenv x in
        let ce = cexpr fenv loc e in
        fun t f _d ->
          rt.charge_stmt t;
          Array.unsafe_set f i (ce f)
    | Op { kind; target; args; bind } -> (
        let k = clist fenv loc args in
        let desc = op_desc kind target in
        match bind with
        | None ->
            fun t f _d ->
              rt.charge_stmt t;
              let vs = k f in
              ignore (rt.exec_op t loc ~desc ~kind ~target vs : value)
        | Some x ->
            let i = slot fenv x in
            fun t f _d ->
              rt.charge_stmt t;
              let vs = k f in
              Array.unsafe_set f i (rt.exec_op t loc ~desc ~kind ~target vs))
    | Call { func; args; bind } -> ccall fenv loc func args bind
    | If (c, th, el) ->
        let cc = cbool fenv loc (fun v -> err_cond loc v) c in
        let cth = cblock fenv th in
        let cel = cblock fenv el in
        fun t f d ->
          rt.charge_stmt t;
          if cc f then cth t f d else cel t f d
    | While (c, body) ->
        let cc = cbool fenv loc (fun v -> err_cond loc v) c in
        let cb = cblock fenv body in
        fun t f d ->
          rt.charge_stmt t;
          while cc f do
            cb t f d
          done
    | Foreach (x, e, body) ->
        let ce = cexpr fenv loc e in
        let i = slot fenv x in
        let cb = cblock fenv body in
        fun t f d -> (
          rt.charge_stmt t;
          match ce f with
          | VList items ->
              List.iter
                (fun item ->
                  Array.unsafe_set f i item;
                  cb t f d)
                items
          | v -> err_foreach loc v)
    | Sync (lockname, body) ->
        let cb = cblock fenv body in
        let desc = "lock(" ^ lockname ^ ")" in
        fun t f d ->
          rt.charge_stmt t;
          rt.exec_sync t loc ~lock:lockname ~desc (fun () -> cb t f d)
    | Try (body, exn, handler) ->
        let cb = cblock fenv body in
        let i = slot fenv exn in
        let ch = cblock fenv handler in
        fun t f d ->
          rt.charge_stmt t;
          (try cb t f d with
          | Wd_env.Disk.Io_error m
          | Wd_env.Net.Net_error m
          | Wd_env.Memory.Out_of_memory m ->
              Array.unsafe_set f i (VStr m);
              ch t f d
          | Wd_sim.Channel.Closed m ->
              Array.unsafe_set f i (VStr ("channel closed: " ^ m));
              ch t f d)
    | Return e ->
        let ce = cexpr fenv loc e in
        fun t f _d ->
          rt.charge_stmt t;
          raise_notrace (Return_exn (ce f))
    | Assert (e, msg) ->
        let cc = cbool fenv loc (fun v -> err_cond loc v) e in
        fun t f _d ->
          rt.charge_stmt t;
          if not (cc f) then verr loc "assert" msg
    | Compute { cost_ns; note = _ } ->
        fun t _f _d ->
          rt.charge_stmt t;
          rt.charge t cost_ns
    | Hook id ->
        let slots = fenv.slots in
        fun t f _d ->
          rt.charge_stmt t;
          rt.exec_hook t id (fun name ->
              match Hashtbl.find_opt slots name with
              | Some i ->
                  let v = Array.unsafe_get f i in
                  if v == unbound then None else Some v
              | None -> None)
  and cblock fenv block =
    match Array.of_list (List.map (cstmt fenv) block) with
    | [||] -> fun _ _ _ -> ()
    | [| s1 |] -> s1
    | [| s1; s2 |] ->
        fun t f d ->
          s1 t f d;
          s2 t f d
    | [| s1; s2; s3 |] ->
        fun t f d ->
          s1 t f d;
          s2 t f d;
          s3 t f d
    | [| s1; s2; s3; s4 |] ->
        fun t f d ->
          s1 t f d;
          s2 t f d;
          s3 t f d;
          s4 t f d
    | arr ->
        fun t f d ->
          for i = 0 to Array.length arr - 1 do
            (Array.unsafe_get arr i) t f d
          done
  and ccall fenv loc func args bind =
    let store =
      match bind with
      | None -> fun _f (_v : value) -> ()
      | Some x ->
          let i = slot fenv x in
          fun f v -> Array.unsafe_set f i v
    in
    match Hashtbl.find_opt funcs func with
    | None ->
        (* Unknown target: compile the tree-walker's behaviour — arguments
           still evaluate, the depth guard still applies, then [find_func]
           raises the canonical [Ir_error]. *)
        let k = clist fenv loc args in
        fun t f d ->
          rt.charge_stmt t;
          ignore (k f : value list);
          if d > rt.max_depth t then err_depth (rt.max_depth t);
          ignore (find_func prog func : func);
          assert false
    | Some cf when List.compare_length_with args cf.cf_arity <> 0 ->
        let k = clist fenv loc args in
        fun t f d ->
          rt.charge_stmt t;
          ignore (k f : value list);
          if d > rt.max_depth t then err_depth (rt.max_depth t);
          err_call_arity func
    | Some cf -> (
        (* [cf_body]/[cf_nslots]/[cf_param_slots] are read at run time: the
           callee may not be compiled yet (forward reference). *)
        let invoke t nf d =
          match cf.cf_body t nf (d + 1) with
          | () -> VUnit
          | exception Return_exn v -> v
        in
        match List.map (cexpr fenv loc) args with
        | [] ->
            fun t f d ->
              rt.charge_stmt t;
              if d > rt.max_depth t then err_depth (rt.max_depth t);
              let nf = Array.make cf.cf_nslots unbound in
              store f (invoke t nf d)
        | [ a0 ] ->
            fun t f d ->
              rt.charge_stmt t;
              let v0 = a0 f in
              if d > rt.max_depth t then err_depth (rt.max_depth t);
              let nf = Array.make cf.cf_nslots unbound in
              let ps = cf.cf_param_slots in
              Array.unsafe_set nf (Array.unsafe_get ps 0) v0;
              store f (invoke t nf d)
        | [ a0; a1 ] ->
            fun t f d ->
              rt.charge_stmt t;
              let v0 = a0 f in
              let v1 = a1 f in
              if d > rt.max_depth t then err_depth (rt.max_depth t);
              let nf = Array.make cf.cf_nslots unbound in
              let ps = cf.cf_param_slots in
              Array.unsafe_set nf (Array.unsafe_get ps 0) v0;
              Array.unsafe_set nf (Array.unsafe_get ps 1) v1;
              store f (invoke t nf d)
        | [ a0; a1; a2 ] ->
            fun t f d ->
              rt.charge_stmt t;
              let v0 = a0 f in
              let v1 = a1 f in
              let v2 = a2 f in
              if d > rt.max_depth t then err_depth (rt.max_depth t);
              let nf = Array.make cf.cf_nslots unbound in
              let ps = cf.cf_param_slots in
              Array.unsafe_set nf (Array.unsafe_get ps 0) v0;
              Array.unsafe_set nf (Array.unsafe_get ps 1) v1;
              Array.unsafe_set nf (Array.unsafe_get ps 2) v2;
              store f (invoke t nf d)
        | cs ->
            let carr = Array.of_list cs in
            let n = Array.length carr in
            fun t f d ->
              rt.charge_stmt t;
              let vs = Array.make n VUnit in
              for k = 0 to n - 1 do
                Array.unsafe_set vs k ((Array.unsafe_get carr k) f)
              done;
              if d > rt.max_depth t then err_depth (rt.max_depth t);
              let nf = Array.make cf.cf_nslots unbound in
              let ps = cf.cf_param_slots in
              for k = 0 to n - 1 do
                Array.unsafe_set nf (Array.unsafe_get ps k)
                  (Array.unsafe_get vs k)
              done;
              store f (invoke t nf d))
  in
  (* Pass 2: compile bodies. Only the registered (first) binding of a name
     is compiled; later duplicates are unreachable, as in the tree-walker. *)
  List.iter
    (fun fdef ->
      let cf = Hashtbl.find funcs fdef.fname in
      if cf.cf_src == fdef then begin
        let fenv = { slots = Hashtbl.create 16; next = 0 } in
        let ps = Array.of_list (List.map (slot fenv) fdef.params) in
        let body = cblock fenv fdef.body in
        cf.cf_param_slots <- ps;
        cf.cf_nslots <- fenv.next;
        cf.cf_body <- body
      end)
    prog.funcs;
  { cp_prog = prog; cp_funcs = funcs }

let program cp = cp.cp_prog

let nslots cp fname =
  Option.map (fun cf -> cf.cf_nslots) (Hashtbl.find_opt cp.cp_funcs fname)

(* Toplevel entry: the tree-walker's [exec_call t 0] with the depth guard
   elided (0 can never exceed the depth budget). *)
let call cp t fname vargs =
  match Hashtbl.find_opt cp.cp_funcs fname with
  | None ->
      ignore (find_func cp.cp_prog fname : func);
      assert false
  | Some cf -> (
      if List.compare_length_with vargs cf.cf_arity <> 0 then
        err_call_arity fname;
      let nf = Array.make cf.cf_nslots unbound in
      let ps = cf.cf_param_slots in
      List.iteri (fun k v -> nf.(ps.(k)) <- v) vargs;
      match cf.cf_body t nf 1 with () -> VUnit | exception Return_exn v -> v)
