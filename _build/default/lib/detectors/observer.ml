(* Panorama-style observers: every requester of the monitored process is a
   logical observer; error evidence observed on request paths is aggregated
   into a per-process verdict. Catches gray failures *that clients hit*,
   but cannot say why or where — which is the limitation (§1) that
   motivates intrinsic watchdogs. *)

type evidence = Success | Failure of string | Timeout

type t = {
  sched : Wd_sim.Sched.t;
  window : int64;              (* evidence older than this is discarded *)
  threshold : float;           (* failure ratio that flips the verdict *)
  min_samples : int;
  mutable log : (int64 * evidence) list;
  mutable first_suspect_at : int64 option;
}

let create ?(window = Wd_sim.Time.sec 5) ?(threshold = 0.5) ?(min_samples = 3)
    sched =
  { sched; window; threshold; min_samples; log = []; first_suspect_at = None }

let observe t evidence =
  let now = Wd_sim.Sched.now t.sched in
  t.log <- (now, evidence) :: t.log;
  (* prune outside the window *)
  t.log <- List.filter (fun (at, _) -> Int64.sub now at <= t.window) t.log;
  let total = List.length t.log in
  let bad =
    List.length
      (List.filter
         (fun (_, e) -> match e with Success -> false | Failure _ | Timeout -> true)
         t.log)
  in
  if
    total >= t.min_samples
    && float_of_int bad /. float_of_int total >= t.threshold
    && t.first_suspect_at = None
  then t.first_suspect_at <- Some now

let suspected t = t.first_suspect_at <> None
let suspected_at t = t.first_suspect_at

let observations t = List.length t.log

(* Convenience: wrap a client-API result into evidence. *)
let of_result = function
  | `Ok _ -> Success
  | `Timeout -> Timeout
  | `Err m -> Failure m
