(* Checker compiler (stage 3b): lower a synthesized model into the
   existing Wd_watchdog.Checker interface, one signal-style checker per
   invariant family. Inferred checkers plug into the same driver as mimic,
   probe and signal checkers — same scheduling, debouncing, dedup and
   report plumbing — and are distinguished only by their "inferred:" id
   prefix, which the campaign layer classifies as its own family.

   Grouping per family (not per invariant) keeps the runtime overhead of
   the second generation honest: five monitor-fold checkers per world, not
   hundreds of daemons. A report cites the violated invariant's key and
   static location, so localisation is per-invariant regardless.

   Like Wd_detectors.Signalmon, each checker is a non-blocking sample
   function: it drains the shared monitor and evaluates its invariants in
   canonical order, returning the first violation. Hang/slow findings map
   to the Hang/Slow report kinds (liveness), never-fail to Error_sig, and
   ordering/exclusion to Assert_fail — the same vocabulary mimic checkers
   use, so fleet correlation and recovery treat them uniformly. *)

module Checker = Wd_watchdog.Checker
module Report = Wd_watchdog.Report

let id_prefix = "inferred:"

let report ~at ~id ~fkind ?loc ~key ~payload () =
  Report.make ~at ~checker_id:id ~fkind ?loc ~op_desc:key
    ~payload:(("key", Wd_ir.Ast.VStr key) :: payload)
    ()

(* Evaluate one invariant against the monitor; [None] = holds. *)
let eval monitor ~now ~id (i : Synth.invariant) =
  let open Synth in
  match i.ibody with
  | Envelope { deadline; p99 = _ } -> (
      match Monitor.oldest_inflight monitor i.ikey with
      | Some (_, started, func) when Int64.sub now started > deadline ->
          Some
            (report ~at:now ~id ~fkind:Report.Hang ?loc:i.iloc ~key:i.ikey
               ~payload:
                 [
                   ("func", Wd_ir.Ast.VStr func);
                   ("inflight_ns", Wd_ir.Ast.VInt (Int64.to_int (Int64.sub now started)));
                   ("deadline_ns", Wd_ir.Ast.VInt (Int64.to_int deadline));
                 ]
               ())
      | _ -> (
          match Monitor.view monitor i.ikey with
          | Some st when st.Monitor.st_worst > deadline ->
              Some
                (report ~at:now ~id ~fkind:Report.Slow ?loc:i.iloc ~key:i.ikey
                   ~payload:
                     [
                       ("worst_ns", Wd_ir.Ast.VInt (Int64.to_int st.Monitor.st_worst));
                       ("deadline_ns", Wd_ir.Ast.VInt (Int64.to_int deadline));
                     ]
                   ())
          | _ -> None))
  | Gap { budget; max_gap = _ } -> (
      match Monitor.view monitor i.ikey with
      | Some st
        when st.Monitor.st_started > 0
             && Int64.sub now st.Monitor.st_last_start > budget ->
          Some
            (report ~at:now ~id ~fkind:Report.Hang ?loc:i.iloc ~key:i.ikey
               ~payload:
                 [
                   ( "silence_ns",
                     Wd_ir.Ast.VInt
                       (Int64.to_int (Int64.sub now st.Monitor.st_last_start)) );
                   ("budget_ns", Wd_ir.Ast.VInt (Int64.to_int budget));
                 ]
               ())
      | _ -> None)
  | Never_fail -> (
      match Monitor.view monitor i.ikey with
      | Some st when st.Monitor.st_failed > 0 ->
          Some
            (report ~at:now ~id
               ~fkind:(Report.Error_sig st.Monitor.st_first_err)
               ?loc:i.iloc ~key:i.ikey
               ~payload:[ ("failures", Wd_ir.Ast.VInt st.Monitor.st_failed) ]
               ())
      | _ -> None)
  | Precedes { first } ->
      if Monitor.seen monitor i.ikey && not (Monitor.seen monitor first) then
        Some
          (report ~at:now ~id
             ~fkind:(Report.Assert_fail (first ^ " must precede " ^ i.ikey))
             ?loc:i.iloc ~key:i.ikey
             ~payload:[ ("missing", Wd_ir.Ast.VStr first) ]
             ())
      else None
  | Never_concurrent { other } -> (
      match Monitor.overlapped_at monitor i.ikey other with
      | Some at0 ->
          Some
            (report ~at:now ~id
               ~fkind:
                 (Report.Assert_fail (i.ikey ^ " overlapped " ^ other))
               ?loc:i.iloc ~key:i.ikey
               ~payload:
                 [
                   ("partner", Wd_ir.Ast.VStr other);
                   ("first_overlap_at", Wd_ir.Ast.VInt (Int64.to_int at0));
                 ]
               ())
      | None -> None)

let family_checker ~id ~period ~timeout monitor invariants =
  Checker.make ~kind:Checker.Signal ~period ~timeout
    ~locate:(fun () -> (None, "inferred monitor", []))
    ~id
    (fun ~now ->
      Monitor.drain monitor;
      let rec first = function
        | [] -> Checker.Pass
        | i :: rest -> (
            match eval monitor ~now ~id i with
            | Some r -> Checker.Fail r
            | None -> first rest)
      in
      first invariants)

let compile ?(period = Wd_sim.Time.ms 500) ?(timeout = Wd_sim.Time.sec 5)
    ~(model : Synth.model) ~monitor () =
  let by_family = Hashtbl.create 8 in
  List.iter
    (fun (i : Synth.invariant) ->
      let f = Synth.family_name i.Synth.ibody in
      Hashtbl.replace by_family f
        (i :: Option.value ~default:[] (Hashtbl.find_opt by_family f)))
    model.Synth.m_invariants;
  Hashtbl.fold
    (fun fam invs l ->
      let id = id_prefix ^ fam ^ ":" ^ model.Synth.m_system in
      family_checker ~id ~period ~timeout monitor (List.rev invs) :: l)
    by_family []
  |> List.sort (fun a b -> compare a.Checker.id b.Checker.id)

let checker_count model =
  List.length (Synth.family_counts model)
