lib/watchdog/checker.mli: Format Report Wd_ir
