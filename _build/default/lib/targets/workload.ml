(* Generic closed-loop client workload: one task issuing an operation every
   [period], collecting success/latency statistics. The operation callback
   receives the request index so callers can rotate ops and keys. *)

type stats = {
  mutable issued : int;
  mutable ok : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable total_latency : int64;
  mutable max_latency : int64;
  mutable latencies : int64 list; (* newest first *)
}

let create_stats () =
  {
    issued = 0;
    ok = 0;
    errors = 0;
    timeouts = 0;
    total_latency = 0L;
    max_latency = 0L;
    latencies = [];
  }

let record stats ~latency result =
  stats.issued <- stats.issued + 1;
  stats.total_latency <- Int64.add stats.total_latency latency;
  if latency > stats.max_latency then stats.max_latency <- latency;
  stats.latencies <- latency :: stats.latencies;
  match result with
  | `Ok _ -> stats.ok <- stats.ok + 1
  | `Err _ -> stats.errors <- stats.errors + 1
  | `Timeout -> stats.timeouts <- stats.timeouts + 1

let mean_latency stats =
  if stats.issued = 0 then 0L
  else Int64.div stats.total_latency (Int64.of_int stats.issued)

let percentile stats p =
  match stats.latencies with
  | [] -> 0L
  | ls ->
      let arr = Array.of_list ls in
      Array.sort compare arr;
      let n = Array.length arr in
      let idx = min (n - 1) (int_of_float (p *. float_of_int n)) in
      arr.(idx)

let success_ratio stats =
  if stats.issued = 0 then 1.0 else float_of_int stats.ok /. float_of_int stats.issued

(* Spawn the client loop. [op] must block (it is called inside a task).
   [on_result] lets observers tap every outcome. *)
let spawn ?(name = "workload") ?(on_result = fun _ -> ()) ~sched ~period ~op
    stats =
  Wd_sim.Sched.spawn ~name ~daemon:true sched (fun () ->
      let i = ref 0 in
      while true do
        Wd_sim.Sched.sleep period;
        let t0 = Wd_sim.Sched.now sched in
        let result = op !i in
        let latency = Int64.sub (Wd_sim.Sched.now sched) t0 in
        record stats ~latency result;
        on_result result;
        incr i
      done)
