(** Per-target adapters: boot a system with its generated watchdog, the
    baseline detectors (probe / signal / heartbeat / observer) and a client
    workload, exposing the uniform surface the campaign runner drives. *)

type watchdog_mode =
  | Wd_generated   (** full AutoWatchdog: mimic checkers + context sync *)
  | Wd_no_context  (** ablation: naive mimic checkers, no state sync *)
  | Wd_none        (** no intrinsic watchdog *)

type booted = {
  b_system : string;
  b_sched : Wd_sim.Sched.t;
  b_reg : Wd_env.Faultreg.t;
  b_generated : Wd_autowatchdog.Generate.generated option;
  b_driver : Wd_watchdog.Driver.t;
  b_heartbeat : Wd_detectors.Heartbeat.t;
  b_observer : Wd_detectors.Observer.t;
  b_workload : Wd_targets.Workload.stats;
  b_tasks : Wd_sim.Sched.task list;
  b_crash : unit -> unit;  (** simulate a whole-process crash *)
  b_mem : Wd_env.Memory.t;
  b_res : Wd_ir.Runtime.resources;
  b_client : int -> [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ];
      (** issue one client request by index — the entry point load
          generators drive; must be called from inside a task. Uses a wider
          keyspace than the background workload and no per-call formatting
          on the request path. *)
}

val boot :
  ?engine:Wd_ir.Interp.engine ->
  ?schedule:Wd_watchdog.Schedule.policy ->
  sched:Wd_sim.Sched.t ->
  reg:Wd_env.Faultreg.t ->
  mode:watchdog_mode ->
  ?special:string ->
  string ->
  booted
(** Boot "kvs", "zkmini", "dfsmini" or "cstore". [special] selects boot
    variants: "leak_bug", "in_memory", "burst" (kvs only). [engine] selects
    the IR execution engine for the target and its checkers (default:
    {!Wd_ir.Interp.default_engine}); [schedule] the checker scheduling
    policy (default {!Wd_watchdog.Schedule.fixed}). *)

val all_systems : string list
