(** Simulated memory accountant with GC-pause behaviour under pressure.

    Above [pause_threshold] utilisation, allocations stall (quadratically up
    to [max_pause]); a leaking component therefore degrades every task that
    allocates — the gray failure a sleep-overshoot signal checker detects. *)

exception Out_of_memory of string

type t

val create :
  ?pause_threshold:float ->
  ?max_pause:int64 ->
  reg:Faultreg.t ->
  capacity:int ->
  string ->
  t

val name : t -> string
val used : t -> int
val capacity : t -> int
val utilisation : t -> float

val alloc : t -> int -> unit
(** May stall the calling task; raises {!Out_of_memory} when exhausted. *)

val free : t -> int -> unit

val stats : t -> int * int * int * int * int64
(** [(allocs, frees, peak, pauses, total_pause_ns)]. *)
