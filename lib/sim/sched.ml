(* Deterministic discrete-event scheduler built on OCaml 5 effect handlers.

   Tasks are cooperative fibers. A fiber gives up control by performing
   [Suspend], which hands the scheduler a [register] function; [register]
   receives a waker that, when invoked, re-queues the fiber. Wakers are
   guarded by a per-task generation counter so a stale waker (e.g. a timer
   that fires after the condition it was racing already woke the task) is a
   no-op. This one mechanism implements sleeps, condition waits, joins,
   mutexes, channels and timeouts.

   All state lives in a single domain; combined with the tie-broken event
   heap and FIFO run queue, a run is a deterministic function of the seed. *)

exception Cancelled
(* Raised inside a fiber that another task killed. *)

type exit_status = Exited | Failed of exn | Killed

type state = Ready | Running | Blocked | Finished

type task = {
  id : int;
  name : string;
  mutable state : state;
  mutable status : exit_status option;
  mutable blocked_on : string;
  mutable blocked_since : int64;
  mutable gen : int;
  mutable kont : (unit, unit) Effect.Deep.continuation option;
  mutable exit_hooks : (exit_status -> unit) list;
  mutable cancel_requested : bool;
  daemon : bool;
  (* "join <name>", built on the first join so repeat joiners of a hot task
     do not re-format the suspend reason *)
  mutable join_reason : string;
}

type run_result = Quiescent | Time_limit | Deadlock of task list

type t = {
  mutable now : int64;
  timers : (unit -> unit) Heap.t;
  runq : (unit -> unit) Queue.t;
  mutable current : task option;
  mutable next_id : int;
  mutable live : int; (* unfinished non-daemon tasks *)
  mutable tasks : task list;
  rng : Rng.t;
  mutable switches : int;
  mutable spawned : int;
  mutable events_fired : int;
  mutable trace : Trace.t option;
}

type _ Effect.t +=
  | Suspend : { reason : string; register : (unit -> unit) -> unit } -> unit Effect.t

(* Domain-local, so independent simulations can run on separate domains
   (one self-contained world per domain) without observing each other. *)
let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get () =
  match Domain.DLS.get ambient with
  | Some s -> s
  | None -> failwith "Sched: no simulation is running"

let create ?(seed = 42) () =
  {
    now = 0L;
    timers = Heap.create ~dummy_payload:(fun () -> ());
    runq = Queue.create ();
    current = None;
    next_id = 0;
    live = 0;
    tasks = [];
    rng = Rng.create ~seed;
    switches = 0;
    spawned = 0;
    events_fired = 0;
    trace = None;
  }

let now s = s.now
let rng s = s.rng

let self s =
  match s.current with
  | Some t -> t
  | None -> failwith "Sched.self: called outside a task"

let task_name t = t.name
let task_id t = t.id
let task_state t = t.state
let task_status t = t.status
let task_blocked_on t = t.blocked_on
let task_blocked_since t = t.blocked_since
let all_tasks s = s.tasks

let stats s = (s.spawned, s.switches, s.events_fired)

(* Load-pressure probes for adaptive checker scheduling. Both are pure
   reads of scheduler state at the instant of the call, so a sampling task
   sees a deterministic value: the runq contents and timer heap at any
   point of a run are a function of the seed alone. *)
let runq_depth s = Queue.length s.runq

let timer_slack s =
  match Heap.peek_time s.timers with
  | None -> Int64.max_int
  | Some t -> if t <= s.now then 0L else Int64.sub t s.now

let timer_count s = Heap.size s.timers

let set_trace s trace = s.trace <- Some trace
let trace s = s.trace

(* Dedicated per-kind emitters: with tracing off (the common case) nothing
   is evaluated or allocated — the old [emit s t (Trace.Blocked reason)]
   shape built a variant block per suspend even with no trace attached. *)
let emit_spawned s t =
  match s.trace with
  | None -> ()
  | Some tr -> Trace.spawned tr ~at:s.now ~task_id:t.id ~task_name:t.name

let emit_resumed s t =
  match s.trace with
  | None -> ()
  | Some tr -> Trace.resumed tr ~at:s.now ~task_id:t.id ~task_name:t.name

let emit_blocked s t reason =
  match s.trace with
  | None -> ()
  | Some tr ->
      Trace.blocked tr ~at:s.now ~task_id:t.id ~task_name:t.name ~reason

let emit_finished s t how =
  match s.trace with
  | None -> ()
  | Some tr -> Trace.finished tr ~at:s.now ~task_id:t.id ~task_name:t.name ~how

(* Record an event attributed to the current task (the interpreter uses this
   for operation-level events). No-op when tracing is off. *)
let trace_emit s kind =
  match s.trace with
  | None -> ()
  | Some tr ->
      let task_id, task_name =
        match s.current with Some t -> (t.id, t.name) | None -> (0, "<sched>")
      in
      Trace.record tr ~at:s.now ~task_id ~task_name kind

(* Interned op-event emitters for the interpreter's traced fast path: the
   caller resolves Site ids once per op site, and nothing here allocates. *)
let current_ident s =
  match s.current with Some t -> (t.id, t.name) | None -> (0, "<sched>")

let trace_op_start s ~op ~node ~func =
  match s.trace with
  | None -> ()
  | Some tr ->
      let task_id, task_name = current_ident s in
      Trace.op_start tr ~at:s.now ~task_id ~task_name ~op ~node ~func

let trace_op_end s ~op ~node ~func ~dur =
  match s.trace with
  | None -> ()
  | Some tr ->
      let task_id, task_name = current_ident s in
      Trace.op_end tr ~at:s.now ~task_id ~task_name ~op ~node ~func ~dur

let trace_op_fail s ~op ~node ~func ~err =
  match s.trace with
  | None -> ()
  | Some tr ->
      let task_id, task_name = current_ident s in
      Trace.op_fail tr ~at:s.now ~task_id ~task_name ~op ~node ~func ~err

let finish s t status =
  (match s.trace with
  | None -> ()
  | Some _ ->
      emit_finished s t
        (match status with
        | Exited -> "exited"
        | Failed e -> "failed: " ^ Printexc.to_string e
        | Killed -> "killed"));
  t.state <- Finished;
  t.status <- Some status;
  t.kont <- None;
  if not t.daemon then s.live <- s.live - 1;
  let hooks = t.exit_hooks in
  t.exit_hooks <- [];
  List.iter (fun h -> h status) hooks;
  s.current <- None;
  match status with
  | Failed e when not t.daemon ->
      Logs.debug (fun m ->
          m "task %s failed: %s" t.name (Printexc.to_string e))
  | Exited | Failed _ | Killed -> ()

(* Re-queue a blocked task. [gen] guards against stale wakers. *)
let wake s t gen =
  if t.gen = gen && t.state = Blocked then begin
    match t.kont with
    | None -> assert false
    | Some k ->
        t.kont <- None;
        t.state <- Ready;
        Queue.push
          (fun () ->
            t.state <- Running;
            s.current <- Some t;
            s.switches <- s.switches + 1;
            emit_resumed s t;
            if t.cancel_requested then
              Effect.Deep.discontinue k Cancelled
            else Effect.Deep.continue k ())
          s.runq
  end

let handler s t =
  {
    Effect.Deep.retc = (fun () -> finish s t Exited);
    exnc =
      (fun e ->
        match e with
        | Cancelled -> finish s t Killed
        | e -> finish s t (Failed e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend { reason; register } ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                emit_blocked s t reason;
                t.state <- Blocked;
                t.blocked_on <- reason;
                t.blocked_since <- s.now;
                t.gen <- t.gen + 1;
                t.kont <- Some k;
                let gen = t.gen in
                register (fun () -> wake s t gen);
                s.current <- None)
        | _ -> None);
  }

let spawn ?(name = "task") ?(daemon = false) s f =
  let t =
    {
      id = s.next_id;
      name;
      state = Ready;
      status = None;
      blocked_on = "";
      blocked_since = s.now;
      gen = 0;
      kont = None;
      exit_hooks = [];
      cancel_requested = false;
      daemon;
      join_reason = "";
    }
  in
  s.next_id <- s.next_id + 1;
  s.spawned <- s.spawned + 1;
  if not daemon then s.live <- s.live + 1;
  s.tasks <- t :: s.tasks;
  emit_spawned s t;
  Queue.push
    (fun () ->
      if t.cancel_requested then finish s t Killed
      else begin
        t.state <- Running;
        s.current <- Some t;
        s.switches <- s.switches + 1;
        Effect.Deep.match_with f () (handler s t)
      end)
    s.runq;
  t

let suspend ~reason ~register =
  Effect.perform (Suspend { reason; register })

let at s time f =
  let time = if time < s.now then s.now else time in
  ignore (Heap.push s.timers ~time f)

let after s delay f = at s (Int64.add s.now delay) f

(* Constant reason: sleep is the hottest suspend (every CPU-quantum flush
   goes through it) and a formatted per-call reason string is measurable
   there. The duration is recoverable from the trace timestamps. *)
let sleep delay =
  let s = get () in
  suspend ~reason:"sleep" ~register:(fun waker -> after s delay waker)

let yield () =
  let s = get () in
  suspend ~reason:"yield" ~register:(fun waker -> Queue.push waker s.runq)

let kill s t =
  match t.state with
  | Finished -> ()
  | Running ->
      if s.current == Some t then raise Cancelled
      else
        (* A running task other than the current one is impossible in a
           single-domain scheduler. *)
        assert false
  | Ready -> t.cancel_requested <- true
  | Blocked -> (
      t.cancel_requested <- true;
      match t.kont with
      | None -> ()
      | Some k ->
          t.kont <- None;
          t.gen <- t.gen + 1;
          Queue.push
            (fun () ->
              t.state <- Running;
              s.current <- Some t;
              Effect.Deep.discontinue k Cancelled)
            s.runq)

let on_exit t hook =
  match t.status with
  | Some st -> hook st
  | None -> t.exit_hooks <- hook :: t.exit_hooks

let join_reason t =
  if String.length t.join_reason = 0 then t.join_reason <- "join " ^ t.name;
  t.join_reason

let join t =
  (match t.status with
  | Some _ -> ()
  | None ->
      suspend ~reason:(join_reason t)
        ~register:(fun waker -> on_exit t (fun _ -> waker ())));
  match t.status with Some st -> st | None -> assert false

(* Run [f] in a child task with a deadline. If the deadline passes first the
   child is killed and [Error `Timeout] is returned. *)
let timeout_join ?(name = "timed") s ~timeout f =
  let result = ref None in
  let child = spawn ~name s (fun () -> result := Some (f ())) in
  let fired = ref false in
  suspend
    ~reason:(Fmt.str "timeout_join %s" name)
    ~register:(fun waker ->
      on_exit child (fun _ -> waker ());
      after s timeout (fun () ->
          fired := true;
          waker ()));
  match child.status with
  | Some Exited -> (
      match !result with Some v -> Ok v | None -> assert false)
  | Some (Failed e) -> Error (`Exn e)
  | Some Killed -> Error (`Killed)
  | None ->
      assert !fired;
      kill s child;
      Error `Timeout

(* --- persistent timeout runner ---

   [timeout_join] spawns a fresh child fiber per call; on a periodic path
   (the watchdog driver runs every checker through it, forever) that is a
   task record, closures and trace bookkeeping per run. A [runner] keeps
   one daemon worker fiber alive across runs: each run hands the worker a
   thunk and wakes it, so steady state costs a wake instead of a spawn.

   Scheduling equivalence with [timeout_join] (load-bearing — E20 sweep
   digests marshal virtual-time latencies): each run performs exactly one
   run-queue push to start the work (worker wake vs child spawn), one push
   to resume the caller, and registers the same deadline timer (which fires
   at the deadline in both designs, woken or not). Virtual timestamps,
   [events_fired] and [switches] are therefore identical; only [spawned]
   and the sched-level trace shape differ, and neither reaches a digest.
   On timeout the worker is killed exactly like the old child and is
   respawned lazily by the next run. *)

type runner = {
  r_sched : t;
  r_name : string;
  r_reason : string; (* "timeout_join <name>", same bytes as [timeout_join] *)
  r_idle : string;
  mutable r_worker : task option;
  mutable r_job : (unit -> unit) option;
  mutable r_wake : (unit -> unit) option; (* wakes the idle worker *)
  mutable r_notify : (unit -> unit) option; (* wakes the waiting caller *)
  mutable r_done : bool;
  mutable r_exn : exn option;
}

let runner ?(name = "timed") s =
  {
    r_sched = s;
    r_name = name;
    r_reason = "timeout_join " ^ name;
    r_idle = "runner idle " ^ name;
    r_worker = None;
    r_job = None;
    r_wake = None;
    r_notify = None;
    r_done = false;
    r_exn = None;
  }

let runner_notify r =
  match r.r_notify with
  | Some w ->
      r.r_notify <- None;
      w ()
  | None -> ()

let rec runner_loop r () =
  match r.r_job with
  | Some job ->
      r.r_job <- None;
      (try job () with
      | Cancelled as e -> raise e
      | e -> r.r_exn <- Some e);
      r.r_done <- true;
      runner_notify r;
      runner_loop r ()
  | None ->
      suspend ~reason:r.r_idle ~register:(fun waker -> r.r_wake <- Some waker);
      runner_loop r ()

let runner_ensure_worker r =
  match r.r_worker with
  | Some _ -> ()
  | None ->
      let w = spawn ~name:r.r_name ~daemon:true r.r_sched (runner_loop r) in
      (* Guarded by identity: a worker killed on timeout may only die after
         its replacement was spawned; its exit must not clobber the new
         worker or spuriously wake a later run's caller. *)
      on_exit w (fun _ ->
          match r.r_worker with
          | Some w' when w' == w ->
              r.r_worker <- None;
              runner_notify r
          | Some _ | None -> ());
      r.r_worker <- Some w

let runner_run r ~timeout f =
  let s = r.r_sched in
  let result = ref None in
  r.r_done <- false;
  r.r_exn <- None;
  r.r_job <- Some (fun () -> result := Some (f ()));
  runner_ensure_worker r;
  (match r.r_wake with
  | Some w ->
      r.r_wake <- None;
      w ()
  | None -> ());
  let fired = ref false in
  suspend ~reason:r.r_reason
    ~register:(fun waker ->
      r.r_notify <- Some waker;
      after s timeout (fun () ->
          fired := true;
          waker ()));
  r.r_notify <- None;
  if r.r_done then
    match r.r_exn with
    | Some e -> Error (`Exn e)
    | None -> (
        match !result with Some v -> Ok v | None -> Error `Killed)
  else if r.r_worker = None then begin
    r.r_job <- None;
    Error `Killed
  end
  else begin
    assert !fired;
    (match r.r_worker with
    | Some w ->
        r.r_worker <- None;
        kill s w
    | None -> ());
    r.r_job <- None;
    Error `Timeout
  end

let runner_stop r =
  match r.r_worker with
  | Some w ->
      r.r_worker <- None;
      kill r.r_sched w
  | None -> ()

let blocked_tasks s =
  List.filter (fun t -> t.state = Blocked && not t.daemon) s.tasks

let run ?(until = Time.never) s =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some s);
  let restore () = Domain.DLS.set ambient saved in
  let rec loop () =
    if not (Queue.is_empty s.runq) then begin
      let job = Queue.pop s.runq in
      s.events_fired <- s.events_fired + 1;
      job ();
      s.current <- None;
      loop ()
    end
    else
      match Heap.peek_time s.timers with
      | Some t when t <= until -> (
          match Heap.pop s.timers with
          | Some (time, fn) ->
              if time > s.now then s.now <- time;
              s.events_fired <- s.events_fired + 1;
              fn ();
              s.current <- None;
              loop ()
          | None -> assert false)
      | Some _ ->
          s.now <- until;
          Time_limit
      | None ->
          if s.live > 0 then Deadlock (blocked_tasks s) else Quiescent
  in
  match loop () with
  | result ->
      restore ();
      result
  | exception e ->
      restore ();
      raise e

let pp_task ppf t =
  let state =
    match t.state with
    | Ready -> "ready"
    | Running -> "running"
    | Blocked -> Fmt.str "blocked on %s" t.blocked_on
    | Finished -> (
        match t.status with
        | Some Exited -> "exited"
        | Some (Failed e) -> Fmt.str "failed (%s)" (Printexc.to_string e)
        | Some Killed -> "killed"
        | None -> "finished")
  in
  Fmt.pf ppf "#%d %s [%s]" t.id t.name state
