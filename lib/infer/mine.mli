(** Trace miner (stage 1 of the inferred-checker pipeline): record
    operation-level trace events from passing runs and aggregate them into
    per-key timing/failure statistics, first-occurrence orderings and
    same-target concurrency observations. *)

type run_obs = {
  ro_id : string;
  ro_seed : int;
  ro_span : int64;
  ro_events : Wd_sim.Trace.event list; (** op events only, in order *)
  ro_dropped : int;
}

type recorder

val attach :
  ?capacity:int -> ?drain_every:int64 -> Wd_sim.Sched.t -> recorder
(** Install a trace on the scheduler (via {!Wd_sim.Sched.set_trace}) and a
    daemon that drains it into an unbounded accumulator. Call before
    booting the system under observation. *)

val finish : recorder -> id:string -> seed:int -> run_obs
(** Final drain; call after the run's last {!Wd_sim.Sched.run}. *)

type key_stats = {
  ks_key : string;      (** runtime op key "kind:target:operand-prefix" *)
  ks_target : string;
  ks_runs : int;        (** runs in which the key completed at least once *)
  ks_count : int;       (** completions across all runs *)
  ks_fails : int;
  ks_durs : int64 array;  (** completed durations, sorted ascending *)
  ks_max_gap : int64;
      (** worst start-to-start silence across runs, including each run's
          tail — the liveness bound passing runs exhibited *)
  ks_func : string;     (** enclosing function of the first observation *)
  ks_locks : string list;
      (** lockset evidence: sync keys in flight in the same task at every
          observed start of this op (sorted). A common element between two
          keys proves mutual exclusion, rather than inferring it from an
          absence of observed overlap. *)
}

type observations = {
  obs_runs : int;
  obs_keys : key_stats list;            (** sorted by key *)
  obs_orders : string list list;        (** per run, first-start order *)
  obs_overlaps : (string * string) list;
      (** sorted same-target key pairs observed concurrently in flight *)
  obs_events : int;
  obs_dropped : int;
}

val aggregate : run_obs list -> observations
(** Pure and deterministic: same runs (in the same order) give structurally
    identical observations. *)

val target_of_key : string -> string
val pp_stats : Format.formatter -> key_stats -> unit
