(** Per-node election + dispatch agent: the piece that decentralizes the
    fleet plane.

    Each node runs one of these. It owns the node's single fabric inbox
    and dispatches every message class — membership traffic to
    [Membership], evidence to the local [Fleet] engine, election traffic
    here, [Recover] commands to the node's recovery plane. It also owns
    the node's view of who leads the fleet, maintained with a bully
    election (lower node index = higher priority); restricting challenges
    to *locally healthy* superiors is what dethrones a gray leader that
    still answers gossip.

    Aggregation is leader-only: each fleet tick, the agent (if leader)
    folds its own membership view into its fleet engine as self-gossip,
    steps the correlation, and turns fresh [Node_gray] verdicts into
    [Recover] commands carrying the localising report's wire bytes.

    The election state machine (rounds, deadlines, the retained-wire
    buffer re-shipped on failover) is private. *)

type t

val create :
  ?check_period:int64 ->
  ?answer_timeout:int64 ->
  ?coord_timeout:int64 ->
  sched:Wd_sim.Sched.t ->
  fabric:Fabric.t ->
  node:Node.t ->
  membership:Membership.t ->
  fleet:Fleet.t ->
  unit ->
  t
(** [answer_timeout] bounds the [Elect] → [Elect_ok] wait (no answer means
    crown self); [coord_timeout] the [Elect_ok] → [Coordinator] wait (a
    superior answered but never took over means re-run). *)

val start : t -> unit
(** Spawn the receiver, leadership-watchdog and fleet-tick tasks, and hook
    the node's report stream: every locally-surfaced report leaves the
    node as wire bytes, shipped to the current leader (self-delivery on
    the leader also goes through the codec). *)

val me : t -> string

val leader : t -> string
(** Who this node currently believes leads the fleet. *)

val leader_history : t -> (int64 * string) list
(** Chronological [(adopted_at, leader)] transitions, starting with the
    initial (priority-order) leader at time 0. *)

val elections_started : t -> int
val coordinator_broadcasts : t -> int

val recover_sent : t -> int
(** [Recover] commands issued while leading. *)

val fleet : t -> Fleet.t
(** This node's correlation engine — the fleet-level report of record when
    this node led at verdict time. *)
