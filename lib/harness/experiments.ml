(* The paper's tables, figures and preliminary results as runnable
   experiments. Each [eN_*] function runs the necessary simulations and
   returns rendered text (plus structured data where tests need it). The
   experiment index lives in DESIGN.md; measured-vs-paper records go to
   EXPERIMENTS.md. *)

module Catalog = Wd_faults.Catalog
module Generate = Wd_autowatchdog.Generate
module Driver = Wd_watchdog.Driver
module Report = Wd_watchdog.Report
module Reduction = Wd_analysis.Reduction

let fp = Format.asprintf

(* --- parallel campaign engine knob ---

   Every experiment below runs a list of independent simulations; each one
   is its own deterministic world, so the lists fan out across a domain
   pool. [set_jobs] (the repro/bench [--jobs] flag) overrides the width;
   the default comes from [WD_JOBS] or the host's recommended domain
   count. [par_map] preserves input order, so rendered tables are
   byte-identical to a sequential run at any width. *)

let jobs_override = ref None
let set_jobs n = jobs_override := Some (max 1 n)

let jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> Wd_parallel.Pool.default_jobs ()

let par_map f xs = Wd_parallel.Pool.run_map ~jobs:(jobs ()) f xs

(* Base-seed override (the repro [--seed] flag). Experiments that fan out
   over seeds derive their seed list from this, so one flag reruns a whole
   campaign under a different family of interleavings — results remain a
   pure function of (seed, --jobs-independent). *)
let seed_override = ref None
let set_seed n = seed_override := Some n
let base_seed () = match !seed_override with Some s -> s | None -> 42

(* IR-engine override (the repro/bench [--engine] flag): process-wide, so
   every target interpreter, generated checker and cluster node of a run
   uses the selected engine. Results are byte-identical on either engine;
   only wall-clock changes. *)
let set_engine e = Wd_ir.Interp.set_default_engine e

let pinpoint_cell = function
  | None -> "-"
  | Some Campaign.Exact -> "exact"
  | Some (Campaign.Near f) -> "near (" ^ f ^ ")"
  | Some (Campaign.Wrong f) -> "wrong (" ^ f ^ ")"
  | Some Campaign.No_loc -> "no loc"

let outcome_cells (o : Campaign.outcome) =
  if o.Campaign.o_detected then Tables.latency_cell o.Campaign.o_latency else "."

(* ------------------------------------------------------------------ *)
(* E1 — Table 1: crash FD vs error handler vs watchdog, empirically.   *)
(* ------------------------------------------------------------------ *)

type e1_row = {
  e1_scenario : string;
  e1_class : string;
  e1_crash_fd : bool;
  e1_error_handler : bool;
  e1_watchdog : bool;
}

let handler_counter booted =
  (* Error-handler activity: counters bumped inside IR catch blocks. *)
  match Wd_ir.Runtime.global booted.Systems.b_res "dfs.scan_errors" with
  | Wd_ir.Ast.VInt n -> n
  | _ -> 0

let e1_scenarios =
  [ "kvs-crash"; "zk-2201"; "cs-compaction-stuck"; "dfs-scan-transient";
    "dfs-limplock"; "kvs-seg-corrupt"; "kvs-deadlock" ]

let e1_run () =
  par_map
    (fun sid ->
      let scenario = Catalog.find sid in
      let cfg = Campaign.default_config in
      let booted, inject_at =
        Campaign.run_raw cfg ~system:scenario.Catalog.system
          ~scenario:(Some scenario) ()
      in
      let reports = Driver.reports booted.Systems.b_driver in
      let mimic_detected =
        List.exists
          (fun (r : Report.t) ->
            Campaign.classify_checker r.Report.checker_id = `Mimic
            && r.Report.at >= inject_at)
          reports
      in
      {
        e1_scenario = sid;
        e1_class = Catalog.fclass_name scenario.Catalog.fclass;
        e1_crash_fd = Wd_detectors.Heartbeat.suspected booted.Systems.b_heartbeat;
        e1_error_handler = handler_counter booted > 0;
        e1_watchdog = mimic_detected;
      })
    e1_scenarios

let e1_text () =
  let rows = e1_run () in
  "E1 / Table 1 — which abstraction detects which failure (empirical)\n"
  ^ Tables.render
      ~header:[ "scenario"; "failure class"; "crash FD"; "error handler"; "watchdog" ]
      (List.map
         (fun r ->
           [
             r.e1_scenario;
             r.e1_class;
             Tables.mark_cell r.e1_crash_fd;
             Tables.mark_cell r.e1_error_handler;
             Tables.mark_cell r.e1_watchdog;
           ])
         rows)
  ^ "\nCrash FD: heartbeat silence only (fail-stop). Error handler: in-place\n\
     catch blocks (known, localized errors). Watchdog: generated mimic\n\
     checkers (gray failures, with localization). The watchdog dies with the\n\
     process on a crash — Table 1's isolation trade-off.\n"

(* ------------------------------------------------------------------ *)
(* E2 — Table 2: probe / signal / mimic quality across the catalog.    *)
(* ------------------------------------------------------------------ *)

type e2_agg = {
  e2_kind : string;
  e2_detected : int;
  e2_total : int;
  e2_false_alarms : int;
  e2_exact : int;
  e2_near : int;
  e2_detections_with_loc : int;
}

let e2_scenarios () =
  List.filter (fun s -> s.Catalog.special <> Some "crash") Catalog.all

let e2_run () =
  let runs =
    Campaign.run_batch ~jobs:(jobs ())
      (List.map (fun s -> Campaign.cell s.Catalog.sid) (e2_scenarios ()))
  in
  let ffs = par_map (fun sys -> Campaign.run_fault_free sys) Systems.all_systems in
  let agg kind fp_of =
    let outcomes =
      List.map (fun (r : Campaign.run) -> List.assoc kind r.Campaign.r_outcomes) runs
    in
    let detected = List.filter (fun o -> o.Campaign.o_detected) outcomes in
    let exact =
      List.length
        (List.filter (fun o -> o.Campaign.o_pinpoint = Some Campaign.Exact) detected)
    in
    let near =
      List.length
        (List.filter
           (fun o ->
             match o.Campaign.o_pinpoint with Some (Campaign.Near _) -> true | _ -> false)
           detected)
    in
    let with_loc =
      List.length (List.filter (fun o -> o.Campaign.o_loc <> None) detected)
    in
    {
      e2_kind = kind;
      e2_detected = List.length detected;
      e2_total = List.length outcomes;
      e2_false_alarms = List.fold_left (fun n ff -> n + fp_of ff) 0 ffs;
      e2_exact = exact;
      e2_near = near;
      e2_detections_with_loc = with_loc;
    }
  in
  let aggs =
    [
      agg "probe" (fun ff -> ff.Campaign.ff_probe_fp);
      agg "signal" (fun ff -> ff.Campaign.ff_signal_fp);
      agg "mimic" (fun ff -> ff.Campaign.ff_mimic_fp);
    ]
  in
  (runs, aggs)

(* Compare a run against the catalog's paper-informed prediction. The
   prediction is a lower bound on mimic/heartbeat and exact on the others:
   extra detections by a *more* capable class are genuine findings. *)
let e2_matches_expectation (r : Campaign.run) =
  let s = Catalog.find r.Campaign.r_sid in
  let e = s.Catalog.expected in
  let got k = (List.assoc k r.Campaign.r_outcomes).Campaign.o_detected in
  got "mimic" = e.Catalog.exp_mimic
  && got "probe" = e.Catalog.exp_probe
  && got "heartbeat" = e.Catalog.exp_heartbeat
  && got "observer" = e.Catalog.exp_observer

let e2_text () =
  let runs, aggs = e2_run () in
  let detail =
    Tables.render
      ~header:
        [ "scenario"; "system"; "mimic"; "probe"; "signal"; "heartbeat";
          "observer"; "mimic pinpoint"; "as predicted" ]
      (List.map
         (fun (r : Campaign.run) ->
           let o k = List.assoc k r.Campaign.r_outcomes in
           [
             r.Campaign.r_sid;
             r.Campaign.r_system;
             outcome_cells (o "mimic");
             outcome_cells (o "probe");
             outcome_cells (o "signal");
             outcome_cells (o "heartbeat");
             outcome_cells (o "observer");
             pinpoint_cell (o "mimic").Campaign.o_pinpoint;
             Tables.bool_cell (e2_matches_expectation r);
           ])
         runs)
  in
  let summary =
    Tables.render
      ~header:
        [ "checker type"; "completeness"; "accuracy (false alarms)"; "pinpoint" ]
      (List.map
         (fun a ->
           [
             a.e2_kind;
             fp "%d/%d detected" a.e2_detected a.e2_total;
             fp "%d false alarms (fault-free)" a.e2_false_alarms;
             (if a.e2_detections_with_loc = 0 then "none"
              else
                fp "%d exact, %d near of %d" a.e2_exact a.e2_near a.e2_detected);
           ])
         aggs)
  in
  "E2 / Table 2 — checker types across the failure catalog\n"
  ^ "(cells show detection latency after injection; '.' = not detected)\n\n"
  ^ detail ^ "\n" ^ summary
  ^ "\nPaper's qualitative claims: probe = weak completeness / perfect\n\
     accuracy / no pinpointing; signal = modest completeness / weak\n\
     accuracy; mimic = strong completeness and accuracy, pinpoints.\n"

(* ------------------------------------------------------------------ *)
(* E4 — Figures 2 & 3: the reduction of zkmini's serializeSnapshot.    *)
(* ------------------------------------------------------------------ *)

let e4_text () =
  let prog = Wd_targets.Zkmini.program () in
  let g = Generate.analyze prog in
  let red = g.Generate.red in
  let original_chain =
    List.filter
      (fun f ->
        List.mem f.Wd_ir.Ast.fname
          [ "serialize_snapshot"; "serialize"; "serialize_node" ])
      prog.Wd_ir.Ast.funcs
  in
  let instrumented_chain =
    List.filter
      (fun f -> f.Wd_ir.Ast.fname = "serialize_node")
      red.Reduction.instrumented.Wd_ir.Ast.funcs
  in
  let units =
    List.filter
      (fun (u : Reduction.unit_) -> u.Reduction.source_func = "serialize_node")
      g.Generate.units
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "E4 / Figures 2-3 — program logic reduction of the snapshot chain\n\n";
  Buffer.add_string buf "--- original (paper Figure 2, before reduction) ---\n";
  List.iter
    (fun f -> Buffer.add_string buf (Wd_ir.Pp.func_to_string f))
    original_chain;
  Buffer.add_string buf
    "\n--- instrumented serialize_node (context hooks inserted) ---\n";
  List.iter
    (fun f -> Buffer.add_string buf (Wd_ir.Pp.func_to_string f))
    instrumented_chain;
  Buffer.add_string buf "\n--- generated checker (paper Figure 3) ---\n";
  List.iter
    (fun u -> Buffer.add_string buf (Generate.render_checker_source u))
    units;
  Buffer.add_string buf (fp "\nreduction stats: %a\n" Reduction.pp_stats red.Reduction.stats);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E5 — §4.2: the ZOOKEEPER-2201 reproduction.                         *)
(* ------------------------------------------------------------------ *)

type e5_result = {
  e5_mimic_latency : int64 option;
  e5_mimic_loc : string option;
  e5_heartbeat_detected : bool;
  e5_ruok_detected : bool;
  e5_rw_probe_latency : int64 option;
  e5_write_ok_before : bool;
  e5_write_ok_after : bool;
  e5_payload : (string * Wd_ir.Ast.value) list;
}

let e5_run () =
  let scenario = Catalog.find "zk-2201" in
  let cfg = Campaign.default_config in
  let booted, inject_at =
    Campaign.run_raw cfg ~system:"zkmini" ~scenario:(Some scenario) ()
  in
  let reports = Driver.reports booted.Systems.b_driver in
  let post = List.filter (fun (r : Report.t) -> r.Report.at >= inject_at) reports in
  let first_matching pred = List.find_opt pred post in
  let mimic =
    first_matching (fun r -> Campaign.classify_checker r.Report.checker_id = `Mimic)
  in
  let ruok = first_matching (fun r -> r.Report.checker_id = "probe:zk-ruok") in
  let rw = first_matching (fun r -> r.Report.checker_id = "probe:zk-rw") in
  let lat (r : Report.t) = Int64.sub r.Report.at inject_at in
  {
    e5_mimic_latency = Option.map lat mimic;
    e5_mimic_loc =
      Option.bind mimic (fun r -> Option.map Wd_ir.Loc.to_string r.Report.loc);
    e5_heartbeat_detected =
      Wd_detectors.Heartbeat.suspected booted.Systems.b_heartbeat;
    e5_ruok_detected = ruok <> None;
    e5_rw_probe_latency = Option.map lat rw;
    e5_write_ok_before = booted.Systems.b_workload.Wd_targets.Workload.ok > 0;
    e5_write_ok_after =
      (* did any write succeed in the last 10 simulated seconds? crude: the
         workload is mostly writes, so a high overall ratio implies yes *)
      Wd_targets.Workload.success_ratio booted.Systems.b_workload > 0.95;
    e5_payload =
      (match mimic with Some r -> r.Report.payload | None -> []);
  }

let e5_text () =
  let r = e5_run () in
  "E5 / §4.2 — ZOOKEEPER-2201 reproduction (network fault blocks remote\n\
   sync inside the commit critical section)\n\n"
  ^ Tables.render ~header:[ "detector"; "verdict"; "detail" ]
      [
        [
          "heartbeat protocol";
          (if r.e5_heartbeat_detected then "SUSPECTED" else "healthy (blind)");
          "leader keeps answering pings";
        ];
        [
          "admin command (ruok)";
          (if r.e5_ruok_detected then "DETECTED" else "imok (blind)");
          "admin thread untouched by the wedged pipeline";
        ];
        [
          "client write probe";
          (match r.e5_rw_probe_latency with
          | Some l -> "failed after " ^ Wd_sim.Time.to_string l
          | None -> "ok");
          "end-to-end writes hang (the gray failure is client-visible)";
        ];
        [
          "generated mimic watchdog";
          (match r.e5_mimic_latency with
          | Some l -> "DETECTED in " ^ Wd_sim.Time.to_string l
          | None -> "missed");
          (match r.e5_mimic_loc with
          | Some l -> "pinpointed blocked critical section at " ^ l
          | None -> "-");
        ];
      ]
  ^ fp
      "\npaper: watchdog detected in ~7 s and pinpointed the blocked function\n\
       call with a concrete context; heartbeats and the admin command showed\n\
       the leader healthy throughout. measured mimic latency here: %s.\n"
      (match r.e5_mimic_latency with
      | Some l -> Wd_sim.Time.to_string l
      | None -> "n/a")

(* ------------------------------------------------------------------ *)
(* E6 — §4.2: generation statistics ("tens of checkers").              *)
(* ------------------------------------------------------------------ *)

let target_programs () =
  [
    ("kvs", Wd_targets.Kvs.program ());
    ("zkmini", Wd_targets.Zkmini.program ());
    ("dfsmini", Wd_targets.Dfsmini.program ());
    ("cstore", Wd_targets.Cstore.program ());
    ("mqbroker", Wd_targets.Mqbroker.program ());
  ]

let e6_run () =
  par_map
    (fun (name, prog) ->
      let t0 = Unix.gettimeofday () in
      let g = Generate.analyze prog in
      let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      (name, g, elapsed_ms))
    (target_programs ())

let e6_text () =
  let rows = e6_run () in
  "E6 / §4.2 — AutoWatchdog generation statistics per target\n"
  ^ Tables.render
      ~header:
        [ "system"; "funcs"; "stmts"; "vulnerable ops"; "retained";
          "checkers"; "reduced stmts"; "reduction"; "analysis time" ]
      (List.map
         (fun (name, (g : Generate.generated), ms) ->
           let s = g.Generate.red.Reduction.stats in
           [
             name;
             string_of_int s.Reduction.total_funcs;
             string_of_int s.Reduction.total_stmts;
             string_of_int s.Reduction.vulnerable_ops;
             string_of_int s.Reduction.retained_ops;
             string_of_int s.Reduction.unit_count;
             string_of_int s.Reduction.reduced_stmts;
             fp "%.1f%%"
               (100.
               *. float_of_int s.Reduction.reduced_stmts
               /. float_of_int (max 1 s.Reduction.total_stmts));
             fp "%.1fms" ms;
           ])
         rows)
  ^ "\npaper: \"tens of checkers\" generated for each of ZooKeeper, Cassandra\n\
     and HDFS; W retains a small fraction of P.\n"

(* ------------------------------------------------------------------ *)
(* E7 — §3.1: concurrent watchdog vs in-place checking overhead.       *)
(* ------------------------------------------------------------------ *)

type e7_row = {
  e7_mode : string;
  e7_ops : int;
  e7_ok_ratio : float;
  e7_mean_latency : int64;
  e7_p99_latency : int64;
}

(* In-place emulation: the hook sink synchronously executes the unit body in
   the main task before the operation proceeds — checking as part of the
   main execution flow (what §3.1 argues against). *)
let attach_inplace g ~main =
  let module I = Wd_ir.Interp in
  let res = I.resources main in
  let node = I.node main in
  let ci =
    I.create ~mode:I.Checker ~node ~res g.Generate.watchdog_prog
  in
  let by_hook = Hashtbl.create 16 in
  List.iter
    (fun (h : Reduction.hook_insertion) ->
      Hashtbl.replace by_hook h.Reduction.hi_hook_id h;
      I.register_hook main ~id:h.Reduction.hi_hook_id
        {
          I.hook_checker = h.Reduction.hi_unit;
          hook_vars = List.map (fun (_, tmp, _) -> tmp) h.Reduction.hi_captures;
        })
    g.Generate.red.Reduction.hooks;
  I.set_hook_sink main (fun hook_id values ->
      match Hashtbl.find_opt by_hook hook_id with
      | None -> ()
      | Some h -> (
          match
            List.find_opt
              (fun (u : Reduction.unit_) ->
                u.Reduction.unit_id = h.Reduction.hi_unit)
              g.Generate.units
          with
          | None -> ()
          | Some u ->
              let args =
                List.filter_map
                  (fun p ->
                    List.find_map
                      (fun (pp, tmp, _) ->
                        if pp = p then List.assoc_opt tmp values else None)
                      h.Reduction.hi_captures)
                  u.Reduction.ufunc.Wd_ir.Ast.params
              in
              if List.length args = List.length u.Reduction.ufunc.Wd_ir.Ast.params
              then
                try ignore (I.call ci u.Reduction.ufunc.Wd_ir.Ast.fname args)
                with _ -> ()))

let e7_run_one mode_name () =
  let sched = Wd_sim.Sched.create ~seed:11 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Kvs.program () in
  let g = Generate.analyze prog in
  let run_prog =
    if mode_name = "no checking" then prog
    else g.Generate.red.Reduction.instrumented
  in
  let t = Wd_targets.Kvs.boot ~sched ~reg ~prog:run_prog () in
  let driver = Driver.create sched in
  (if mode_name = "concurrent watchdog" then
     ignore (Generate.attach g ~sched ~main:t.Wd_targets.Kvs.leader ~driver)
   else if mode_name = "in-place checks" then
     attach_inplace g ~main:t.Wd_targets.Kvs.leader);
  let wstats = Wd_targets.Workload.create_stats () in
  ignore
    (Wd_targets.Workload.spawn ~name:"bench-client" ~sched
       ~period:(Wd_sim.Time.ms 10)
       ~op:(fun i ->
         let key = Fmt.str "k%03d" (i mod 100) in
         if i mod 3 = 1 then Wd_targets.Kvs.get t ~key
         else Wd_targets.Kvs.set t ~key ~value:(Fmt.str "value-%d" i))
       wstats);
  ignore (Wd_targets.Kvs.start t);
  Driver.start driver;
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 30) sched);
  {
    e7_mode = mode_name;
    e7_ops = wstats.Wd_targets.Workload.issued;
    e7_ok_ratio = Wd_targets.Workload.success_ratio wstats;
    e7_mean_latency = Wd_targets.Workload.mean_latency wstats;
    e7_p99_latency = Wd_targets.Workload.percentile wstats 0.99;
  }

let e7_run () =
  par_map
    (fun m -> e7_run_one m ())
    [ "no checking"; "concurrent watchdog"; "in-place checks" ]

let e7_text () =
  let rows = e7_run () in
  "E7 / §3.1 — checking overhead on the fault-free main program (kvs,\n\
   30 simulated seconds, closed-loop client)\n"
  ^ Tables.render
      ~header:[ "mode"; "client ops"; "ok ratio"; "mean latency"; "p99 latency" ]
      (List.map
         (fun r ->
           [
             r.e7_mode;
             string_of_int r.e7_ops;
             fp "%.3f" r.e7_ok_ratio;
             Wd_sim.Time.to_string r.e7_mean_latency;
             Wd_sim.Time.to_string r.e7_p99_latency;
           ])
         rows)
  ^ "\nConcurrent checkers decouple checking from the request path; in-place\n\
     checking re-executes the reduced operations inside the serving thread\n\
     and inflates client latency — the motivation for concurrent execution.\n"

(* ------------------------------------------------------------------ *)
(* E8 — §3.1: context synchronisation prevents spurious alarms.        *)
(* ------------------------------------------------------------------ *)

type e8_row = { e8_mode : string; e8_false_alarms : int; e8_skips : int }

let e8_run () =
  par_map
    (fun (label, mode) ->
      let cfg =
        { Campaign.default_config with Campaign.mode }
      in
      let ff = Campaign.run_fault_free ~cfg ~special:"in_memory" "kvs" in
      (* skips: count via a fresh raw run's driver stats *)
      let booted, _ =
        Campaign.run_raw cfg ~system:"kvs"
          ~scenario:
            (Some
               {
                 Catalog.sid = "none";
                 description = "";
                 system = "kvs";
                 fclass = Catalog.Transient_error;
                 faults = [];
                 special = Some "in_memory";
                 truth_func = None;
                 expected = Catalog.exp ();
               })
          ()
      in
      let skips =
        List.fold_left
          (fun n (s : Driver.checker_stats) -> n + s.Driver.cs_skips)
          0
          (Driver.stats booted.Systems.b_driver)
      in
      { e8_mode = label; e8_false_alarms = ff.Campaign.ff_mimic_fp; e8_skips = skips })
    [
      ("context-synchronised (generated)", Systems.Wd_generated);
      ("no context sync (naive mimic)", Systems.Wd_no_context);
    ]

let e8_text () =
  let rows = e8_run () in
  "E8 / §3.1 — state synchronisation, kvs configured in-memory (no disk\n\
   activity from the main program; fault-free)\n"
  ^ Tables.render
      ~header:[ "watchdog construction"; "false alarms"; "not-ready skips" ]
      (List.map
         (fun r ->
           [ r.e8_mode; string_of_int r.e8_false_alarms; string_of_int r.e8_skips ])
         rows)
  ^ "\nWith one-way context sync, checkers whose code paths the main program\n\
     never exercises stay NOT_READY and are skipped (Figure 3's\n\
     \"checker context not ready\"); a naive mimic checker with pre-supplied\n\
     paths raises spurious disk errors, the paper's in-memory kvs example.\n"

(* ------------------------------------------------------------------ *)
(* E9 — §3.3: memory-pressure detection via fate-sharing signals.      *)
(* ------------------------------------------------------------------ *)

let e9_run () = Campaign.run_scenario "kvs-mem-leak"

let e9_text () =
  let r = e9_run () in
  let o k = List.assoc k r.Campaign.r_outcomes in
  "E9 / §3.3 — leaking kvs: sleep-overshoot signal checker and mimic\n\
   allocation checker share the allocator's fate\n"
  ^ Tables.render ~header:[ "detector"; "detected"; "latency" ]
      (List.map
         (fun k ->
           [
             k;
             Tables.bool_cell (o k).Campaign.o_detected;
             Tables.latency_cell (o k).Campaign.o_latency;
           ])
         [ "mimic"; "signal"; "probe"; "heartbeat" ])
  ^ "\nThe leak slows allocations gradually: the GC-pause-style overshoot\n\
     signal and the mimicked allocation notice; heartbeats never do.\n"

(* ------------------------------------------------------------------ *)
(* E10 — §3.2/§5: isolation of the watchdog from the main program.     *)
(* ------------------------------------------------------------------ *)

type e10_result = {
  e10_scratch_disjoint : bool;   (* checker writes stayed in __wd/ *)
  e10_driver_survives : bool;    (* a crashing checker doesn't kill others *)
  e10_main_unperturbed : bool;   (* client success unaffected by watchdog *)
  e10_crashing_runs : int;
}

let e10_run () =
  let sched = Wd_sim.Sched.create ~seed:5 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Kvs.program () in
  let g = Generate.analyze prog in
  let t =
    Wd_targets.Kvs.boot ~sched ~reg
      ~prog:g.Generate.red.Reduction.instrumented ()
  in
  let driver = Driver.create sched in
  ignore (Generate.attach g ~sched ~main:t.Wd_targets.Kvs.leader ~driver);
  (* A deliberately buggy checker: crashes on every execution. *)
  let crashes = ref 0 in
  Driver.add_checker driver
    (Wd_watchdog.Checker.make ~id:"buggy-checker" ~period:(Wd_sim.Time.ms 500)
       (fun ~now:_ ->
         incr crashes;
         failwith "checker bug: wild failure"));
  let wstats = Wd_targets.Workload.create_stats () in
  ignore
    (Wd_targets.Workload.spawn ~name:"client" ~sched ~period:(Wd_sim.Time.ms 30)
       ~op:(fun i ->
         Wd_targets.Kvs.set t ~key:(Fmt.str "k%d" (i mod 20)) ~value:"v")
       wstats);
  ignore (Wd_targets.Kvs.start t);
  Driver.start driver;
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 20) sched);
  let paths = Wd_env.Disk.paths t.Wd_targets.Kvs.disk in
  let main_paths, scratch_paths =
    List.partition
      (fun p -> not (String.length p >= 5 && String.sub p 0 5 = "__wd/"))
      paths
  in
  (* every main path must be reproducible from main-program activity: no
     checker-produced garbage outside the scratch namespace *)
  let scratch_disjoint =
    List.for_all
      (fun p ->
        List.exists
          (fun prefix ->
            String.length p >= String.length prefix
            && String.sub p 0 (String.length prefix) = prefix)
          [ "wal/"; "seg/"; "compact/"; "snapshot/" ])
      main_paths
    && scratch_paths <> []
  in
  let mimic_execs =
    List.fold_left
      (fun n (s : Driver.checker_stats) ->
        if s.Driver.cs_id <> "buggy-checker" then n + s.Driver.cs_executions else n)
      0 (Driver.stats driver)
  in
  {
    e10_scratch_disjoint = scratch_disjoint;
    e10_driver_survives = !crashes > 10 && mimic_execs > 0;
    e10_main_unperturbed = Wd_targets.Workload.success_ratio wstats > 0.99;
    e10_crashing_runs = !crashes;
  }

let e10_text () =
  let r = e10_run () in
  "E10 / §3.2 — isolation properties\n"
  ^ Tables.render ~header:[ "property"; "holds" ]
      [
        [ "checker I/O confined to scratch namespace (__wd/)";
          Tables.bool_cell r.e10_scratch_disjoint ];
        [ fp "driver survives a checker crashing %d times" r.e10_crashing_runs;
          Tables.bool_cell r.e10_driver_survives ];
        [ "client success ratio unaffected by watchdog";
          Tables.bool_cell r.e10_main_unperturbed ];
      ]
  ^ "\nContext replication + I/O redirection (write scratch, shadow inboxes,\n\
     try-lock-and-release) keep checking side-effect free; the driver\n\
     confines each checker run to a disposable task.\n"

(* ------------------------------------------------------------------ *)
(* E11 — §5.2: cheap recovery by microreboot.                          *)
(* ------------------------------------------------------------------ *)

type e11_row = {
  e11_mode : string;
  e11_ok_during : int;
  e11_ok_after : int;
  e11_restored_after : int64 option; (* first success after the fault lifts *)
  e11_reboots : int;
}

let e11_run_one ~with_recovery =
  let sched = Wd_sim.Sched.create ~seed:31 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Kvs.program () in
  let g = Generate.analyze prog in
  let t =
    Wd_targets.Kvs.boot ~sched ~reg
      ~prog:g.Generate.red.Reduction.instrumented ()
  in
  let driver = Driver.create sched in
  ignore (Generate.attach g ~sched ~main:t.Wd_targets.Kvs.leader ~driver);
  let leader_tasks =
    Wd_ir.Interp.start ~entries:Wd_targets.Kvs.leader_entries
      t.Wd_targets.Kvs.leader sched
  in
  ignore
    (Wd_ir.Interp.start ~entries:Wd_targets.Kvs.replica_entries
       t.Wd_targets.Kvs.replica sched);
  ignore (Wd_targets.Kvs.spawn_reply_dispatcher t);
  let recovery =
    Wd_watchdog.Recovery.create ~backoff:(Wd_sim.Time.sec 3) sched
  in
  if with_recovery then begin
    Generate.register_components recovery ~sched ~main:t.Wd_targets.Kvs.leader
      ~entries:Wd_targets.Kvs.leader_entries ~tasks:leader_tasks;
    Driver.on_report driver (Wd_watchdog.Recovery.action recovery);
    ignore (Wd_watchdog.Recovery.supervise recovery)
  end;
  Driver.start driver;
  let fault_start = Wd_sim.Time.sec 8 and fault_stop = Wd_sim.Time.sec 18 in
  let ok_log = ref [] in
  ignore
    (Wd_sim.Sched.spawn ~name:"client" ~daemon:true sched (fun () ->
         let i = ref 0 in
         while true do
           Wd_sim.Sched.sleep (Wd_sim.Time.ms 100);
           incr i;
           match
             Wd_targets.Kvs.set ~timeout:(Wd_sim.Time.ms 800) t
               ~key:(Fmt.str "k%d" (!i mod 20)) ~value:"v"
           with
           | `Ok _ -> ok_log := Wd_sim.Sched.now sched :: !ok_log
           | `Timeout | `Err _ -> ()
         done));
  ignore (Wd_sim.Sched.run ~until:fault_start sched);
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "wal-eio";
      site_pattern = "disk:kvs.disk:append:wal/*";
      behaviour = Wd_env.Faultreg.Error "EIO";
      start_at = fault_start;
      stop_at = fault_stop;
      once = false;
    };
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 40) sched);
  let oks = List.rev !ok_log in
  let count_in lo hi = List.length (List.filter (fun at -> at >= lo && at < hi) oks) in
  let restored =
    List.find_opt (fun at -> at >= fault_stop) oks
    |> Option.map (fun at -> Int64.sub at fault_stop)
  in
  {
    e11_mode = (if with_recovery then "watchdog + microreboot" else "no recovery");
    e11_ok_during = count_in fault_start fault_stop;
    e11_ok_after = count_in fault_stop (Wd_sim.Time.sec 40);
    e11_restored_after = restored;
    e11_reboots = List.length (Wd_watchdog.Recovery.events recovery);
  }

let e11_run () =
  par_map (fun with_recovery -> e11_run_one ~with_recovery) [ false; true ]

let e11_text () =
  let rows = e11_run () in
  "E11 / §5.2 — cheap recovery: a transient WAL fault (10 s of EIO) kills
   the kvs listener thread; microreboot driven by watchdog localisation
   restores service once the fault lifts
"
  ^ Tables.render
      ~header:
        [ "mode"; "writes ok during fault"; "writes ok after fault";
          "service restored"; "microreboots" ]
      (List.map
         (fun r ->
           [
             r.e11_mode;
             string_of_int r.e11_ok_during;
             string_of_int r.e11_ok_after;
             (match r.e11_restored_after with
             | Some d -> Wd_sim.Time.to_string d ^ " after fault end"
             | None -> "never");
             string_of_int r.e11_reboots;
           ])
         rows)
  ^ "
Without recovery the dead listener leaves the store unavailable
     forever; with localised microreboots the service returns seconds after
     the environment heals.
"

(* ------------------------------------------------------------------ *)
(* E12 — §5.2: failure reproduction from the captured context.         *)
(* ------------------------------------------------------------------ *)

type e12_result = {
  e12_report : string;
  e12_clean : Wd_autowatchdog.Reproduce.outcome;
  e12_with_fault : Wd_autowatchdog.Reproduce.outcome;
}

let e12_run () =
  let scenario = Catalog.find "kvs-seg-corrupt" in
  let cfg = Campaign.default_config in
  let booted, inject_at =
    Campaign.run_raw cfg ~system:"kvs" ~scenario:(Some scenario) ()
  in
  let g = Option.get booted.Systems.b_generated in
  let report =
    List.find
      (fun (r : Report.t) ->
        r.Report.at >= inject_at
        && Campaign.classify_checker r.Report.checker_id = `Mimic
        && r.Report.payload <> [])
      (Driver.reports booted.Systems.b_driver)
  in
  let fault =
    {
      Wd_env.Faultreg.id = "repro-corrupt";
      site_pattern = "disk:kvs.disk:write:*";
      behaviour = Wd_env.Faultreg.Corrupt;
      start_at = 0L;
      stop_at = Wd_sim.Time.never;
      once = false;
    }
  in
  {
    e12_report = Fmt.str "%a" Report.pp report;
    e12_clean = Wd_autowatchdog.Reproduce.run g ~report;
    e12_with_fault = Wd_autowatchdog.Reproduce.run ~fault g ~report;
  }

let e12_text () =
  let r = e12_run () in
  let o = Fmt.str "%a" Wd_autowatchdog.Reproduce.pp_outcome in
  "E12 / §5.2 — failure reproduction: replay the checker and its captured
   payload in a fresh, sealed simulation

"
  ^ "production report:
  " ^ r.e12_report ^ "

"
  ^ Tables.render ~header:[ "replay environment"; "outcome" ]
      [
        [ "clean (no fault)"; o r.e12_clean ];
        [ "with the disk-corruption fault re-injected"; o r.e12_with_fault ];
      ]
  ^ "
The clean replay passing isolates the cause to the environment; the
     faulty replay reproducing the exact signature confirms the diagnosis —
     postmortem analysis without touching production.
"

(* ------------------------------------------------------------------ *)
(* E13 — Table 2's accuracy column, stressed: overload without fault.  *)
(* ------------------------------------------------------------------ *)

type e13_result = {
  e13_mimic_alarms : int;
  e13_probe_alarms : int;
  e13_signal_alarms : int;
  e13_issued : int;
}

let e13_run () =
  let ff =
    Campaign.run_fault_free
      ~cfg:{ Campaign.default_config with Campaign.observe = Wd_sim.Time.sec 30 }
      ~special:"burst" "kvs"
  in
  {
    e13_mimic_alarms = ff.Campaign.ff_mimic_fp;
    e13_probe_alarms = ff.Campaign.ff_probe_fp;
    e13_signal_alarms = ff.Campaign.ff_signal_fp;
    e13_issued = 0;
  }

let e13_text () =
  let r = e13_run () in
  "E13 / Table 2 accuracy under stress — kvs saturated by a legitimate
   burst workload, no fault injected; every alarm is a false positive
"
  ^ Tables.render ~header:[ "checker type"; "false alarms under overload" ]
      [
        [ "mimic"; string_of_int r.e13_mimic_alarms ];
        [ "probe"; string_of_int r.e13_probe_alarms ];
        [ "signal"; string_of_int r.e13_signal_alarms ];
      ]
  ^ "\nThe paper's example: when the checker finds kvs's request queue full,\n\
     kvs might in fact be processing a continuous stream of requests\n\
     without error — signal checkers bark at load, mimic checkers measure\n\
     the operations themselves and stay quiet.\n"

(* ------------------------------------------------------------------ *)
(* E14 — §4.1 ablations: similar-op dedup and global reduction.        *)
(* ------------------------------------------------------------------ *)

let e14_options =
  [
    ("full reduction", Wd_analysis.Reduction.default_options);
    ( "no similar-op dedup",
      { Wd_analysis.Reduction.default_options with
        Wd_analysis.Reduction.dedup_similar = false } );
    ( "no global reduction",
      { Wd_analysis.Reduction.default_options with
        Wd_analysis.Reduction.global_reduction = false } );
    ( "neither",
      { Wd_analysis.Reduction.dedup_similar = false; global_reduction = false } );
  ]

let e14_run () =
  par_map
    (fun (label, opts) ->
      let per_target =
        List.map
          (fun (name, prog) ->
            let config =
              { Wd_autowatchdog.Config.default with Wd_autowatchdog.Config.opts }
            in
            let g = Generate.analyze ~config prog in
            (name, g.Generate.red.Reduction.stats))
          (target_programs ())
      in
      (label, per_target))
    e14_options

let e14_text () =
  let rows = e14_run () in
  "E14 / §4.1 — reduction-step ablations across all five targets\n\
   (every retained op is executed by a checker once per period: retained\n\
   ops are runtime checking load, for the same operation-family coverage)\n"
  ^ Tables.render
      ~header:
        [ "reduction variant"; "checkers"; "retained ops"; "reduced stmts" ]
      (* totals over all five targets *)
      (List.map
         (fun (label, per_target) ->
           let sum f = List.fold_left (fun n (_, s) -> n + f s) 0 per_target in
           [
             label;
             string_of_int (sum (fun s -> s.Reduction.unit_count));
             string_of_int (sum (fun s -> s.Reduction.retained_ops));
             string_of_int (sum (fun s -> s.Reduction.reduced_stmts));
           ])
         rows)
  ^ "\nRemoving similar vulnerable operations and reducing along call chains\n\
     are what keep W small; disabling them multiplies checkers (and their\n\
     execution cost) without adding coverage of new operation families.\n"

(* ------------------------------------------------------------------ *)
(* E15 — parameter sweep: checker period and lock budget vs detection   *)
(* latency on the ZK-2201 hang.                                        *)
(* ------------------------------------------------------------------ *)

type e15_point = {
  e15_period : int64;
  e15_lock_timeout : int64;
  e15_latency : int64 option;
  e15_ff_false_alarms : int;
}

let e15_run_point ~period ~lock_timeout =
  let config =
    {
      Wd_autowatchdog.Config.default with
      Wd_autowatchdog.Config.checker_period = period;
      lock_timeout;
      (* the checker timeout must dominate the lock budget *)
      checker_timeout = Int64.add lock_timeout (Wd_sim.Time.sec 2);
    }
  in
  let run_one ~with_fault =
    let sched = Wd_sim.Sched.create ~seed:71 () in
    let reg = Wd_env.Faultreg.create () in
    let prog = Wd_targets.Zkmini.program () in
    let g = Generate.analyze ~config prog in
    let t =
      Wd_targets.Zkmini.boot ~sched ~reg
        ~prog:g.Generate.red.Reduction.instrumented ()
    in
    let driver = Driver.create sched in
    ignore (Generate.attach g ~sched ~main:t.Wd_targets.Zkmini.leader ~driver);
    let wstats = Wd_targets.Workload.create_stats () in
    ignore
      (Wd_targets.Workload.spawn ~name:"client" ~sched ~period:(Wd_sim.Time.ms 80)
         ~op:(fun i ->
           Wd_targets.Zkmini.create t ~path:(Fmt.str "/n%d" (i mod 30)) ~data:"d")
         wstats);
    ignore (Wd_targets.Zkmini.start t);
    Driver.start driver;
    ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 8) sched);
    let inject_at = Wd_sim.Sched.now sched in
    if with_fault then
      Wd_env.Faultreg.inject reg
        {
          Wd_env.Faultreg.id = "zk2201";
          site_pattern = "net:zk.net:send:zkL:zkF1";
          behaviour = Wd_env.Faultreg.Hang;
          start_at = inject_at;
          stop_at = Wd_sim.Time.never;
          once = false;
        };
    ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 40) sched);
    let reports = Driver.reports driver in
    if with_fault then
      List.find_opt
        (fun (r : Report.t) ->
          Campaign.classify_checker r.Report.checker_id = `Mimic
          && r.Report.at >= inject_at)
        reports
      |> Option.map (fun (r : Report.t) -> Int64.sub r.Report.at inject_at)
      |> fun latency -> (latency, 0)
    else (None, List.length reports)
  in
  let latency, _ = run_one ~with_fault:true in
  let _, false_alarms = run_one ~with_fault:false in
  { e15_period = period; e15_lock_timeout = lock_timeout; e15_latency = latency;
    e15_ff_false_alarms = false_alarms }

let e15_run () =
  let grid =
    List.concat_map
      (fun period ->
        List.map
          (fun lock_timeout -> (period, lock_timeout))
          [ Wd_sim.Time.sec 1; Wd_sim.Time.sec 2; Wd_sim.Time.sec 4 ])
      [ Wd_sim.Time.ms 500; Wd_sim.Time.sec 1; Wd_sim.Time.sec 2; Wd_sim.Time.sec 5 ]
  in
  par_map (fun (period, lock_timeout) -> e15_run_point ~period ~lock_timeout) grid

let e15_text () =
  let rows = e15_run () in
  "E15 — detection-budget sweep on the ZK-2201 hang: mimic detection\n\
   latency as a function of checker period and lock-acquisition budget\n\
   (fault-free false alarms verify that tighter budgets stay accurate)\n"
  ^ Tables.render
      ~header:
        [ "checker period"; "lock budget"; "detection latency";
          "fault-free false alarms" ]
      (List.map
         (fun p ->
           [
             Wd_sim.Time.to_string p.e15_period;
             Wd_sim.Time.to_string p.e15_lock_timeout;
             Tables.latency_cell p.e15_latency;
             string_of_int p.e15_ff_false_alarms;
           ])
         rows)
  ^ "\nDetection latency is dominated by the lock budget (plus the driver's\n\
     confinement timeout): a checker run is already in flight when the\n\
     fault lands, so the polling period is subdominant whenever it is\n\
     shorter than the budget. Even the tightest setting raises no\n\
     fault-free alarms, because a try-lock failure only counts after the\n\
     full budget elapses.\n"

(* ------------------------------------------------------------------ *)
(* E16 — multi-seed robustness: detection across event interleavings.  *)
(* ------------------------------------------------------------------ *)

let e16_seeds = [ 42; 1001; 7777 ]

let e16_scenarios =
  [ "zk-2201"; "cs-compaction-stuck"; "kvs-flush-hang"; "mq-cleaner-stuck";
    "dfs-block-corrupt"; "kvs-deadlock" ]

let e16_run () =
  par_map
    (fun sid ->
      let stats, exact =
        Metrics.scenario_across_seeds ~seeds:e16_seeds ~detector:"mimic" sid
      in
      (sid, stats, exact))
    e16_scenarios

let e16_text () =
  let rows = e16_run () in
  fp
    "E16 — multi-seed robustness: mimic detection across %d independent\n\
     event interleavings per scenario (the simulator is deterministic per\n\
     seed, so spread measures workload-phase sensitivity, not flakiness)\n"
    (List.length e16_seeds)
  ^ Tables.render
      ~header:[ "scenario"; "mimic detection across seeds"; "exact pinpoints" ]
      (List.map
         (fun (sid, stats, exact) ->
           [
             sid;
             fp "%a" Metrics.pp_latency_stats stats;
             fp "%d/%d" exact stats.Metrics.ls_total;
           ])
         rows)
  ^ "\nDetection and localisation hold across interleavings; latency spread\n\
     stays within one checker period plus the relevant budget.\n"

(* ------------------------------------------------------------------ *)
(* E17 — fleet plane: multi-node clusters with cross-node correlation. *)
(* ------------------------------------------------------------------ *)

let e17_systems = [ Wd_cluster.Topology.Zkmini; Wd_cluster.Topology.Cstore ]
let e17_seeds () = [ base_seed (); base_seed () + 101 ]

(* the original four-scenario oracle grid plus the transient link flap —
   the flap is a quiet cell: suspicion must not indict across one bounded
   drop window (leader-limplock failover is E18's, not a grid cell here) *)
let e17_scenarios () =
  Wd_faults.Cluster_catalog.all
  @ [ Wd_faults.Cluster_catalog.find "fleet-link-flap" ]

let e17_cells () =
  List.concat_map
    (fun sys ->
      List.concat_map
        (fun (s : Wd_faults.Cluster_catalog.cscenario) ->
          List.map
            (fun seed -> (sys, s.Wd_faults.Cluster_catalog.csid, seed))
            (e17_seeds ()))
        (e17_scenarios ()))
    e17_systems

let e17_run () =
  par_map
    (fun (sys, csid, seed) ->
      Wd_cluster.Sim.run
        ~cfg:
          {
            Wd_cluster.Sim.default_config with
            seed;
            topology = Wd_cluster.Topology.uniform ~nodes:5 sys;
          }
        csid)
    (e17_cells ())

let e17_verdict_cell (r : Wd_cluster.Sim.result) =
  match r.Wd_cluster.Sim.cr_events with
  | [] -> "-"
  | (_, e) :: _ -> (
      match e.Wd_cluster.Fleet.ev_verdict with
      | Wd_cluster.Fleet.Node_gray { node; component } ->
          fp "node %s (%s)" node (Option.value component ~default:"?")
      | Wd_cluster.Fleet.Link_fault { links } ->
          fp "links %s"
            (String.concat "," (List.map (fun (a, b) -> a ^ "-" ^ b) links))
      | Wd_cluster.Fleet.Overload -> "overload")

(* which node's engine recorded the first verdict — with a healthy leader
   always n0; under failover the successor *)
let e17_leader_cell (r : Wd_cluster.Sim.result) =
  match r.Wd_cluster.Sim.cr_events with [] -> "-" | (owner, _) :: _ -> owner

let e17_text () =
  let rows = e17_run () in
  let s = Metrics.fleet_summary rows in
  fp
    "E17 — fleet-level watchdogs, decentralized: %d-node clusters, each\n\
     node running its own generated watchdog plus a leader-elected fleet\n\
     engine; reports travel as wire-encoded fabric messages, accusations\n\
     and report digests piggyback on heartbeat gossip, and correlation\n\
     runs only on the elected leader (seeds %s; identical tables at any\n\
     --jobs width)\n"
    (Wd_cluster.Topology.nodes
       Wd_cluster.Sim.default_config.Wd_cluster.Sim.topology)
    (String.concat "," (List.map string_of_int (e17_seeds ())))
  ^ Tables.render
      ~header:
        [ "system"; "scenario"; "seed"; "fleet verdict"; "by"; "latency"; "ok" ]
      (List.map
         (fun (r : Wd_cluster.Sim.result) ->
           [
             r.Wd_cluster.Sim.cr_system;
             r.Wd_cluster.Sim.cr_csid;
             string_of_int r.Wd_cluster.Sim.cr_seed;
             e17_verdict_cell r;
             e17_leader_cell r;
             Tables.latency_cell r.Wd_cluster.Sim.cr_first_latency;
             Tables.mark_cell r.Wd_cluster.Sim.cr_as_expected;
           ])
         rows)
  ^ fp
      "\n\
       indictment accuracy:  %d/%d faulty cells indict the right target\n\
       component accuracy:   %d/%d node indictments name a true component\n\
       false indictments:    %d/%d quiet cells (overload, fault-free, flap)\n\
       detection latency:    %a\n\
       fleet MTTR:           %a\n\
       evidence by family:   %a\n"
      s.Metrics.fs_right s.Metrics.fs_faulty s.Metrics.fs_component_right
      s.Metrics.fs_node_cells s.Metrics.fs_false_indict s.Metrics.fs_quiet
      Metrics.pp_latency_stats s.Metrics.fs_latency Metrics.pp_latency_stats
      s.Metrics.fs_mttr Metrics.pp_family_stats s.Metrics.fs_families
  ^ "\n\
     Limplock indicts the limping node and its component, and the leader's\n\
     Recover command microreboots it (MTTR above); the asymmetric cut\n\
     indicts the link with no node falsely accused; fleet-wide overload,\n\
     fault-free runs and a bounded link flap indict nothing.\n"

(* ------------------------------------------------------------------ *)
(* E18 — leader failover: the verdict plane survives its own aggregator \
   going gray, and the verdict drives recovery plus cross-node repro.  *)
(* ------------------------------------------------------------------ *)

type e18_cell = {
  e18_system : string;
  e18_seed : int;
  e18_res : Wd_cluster.Sim.result;
  e18_successor : string option; (* which engine recorded the indictment *)
  e18_failover : int64 option; (* injection -> fleet agrees on successor *)
  e18_victim_recovered : bool; (* microreboot landed on the old leader *)
  e18_repro : Wd_autowatchdog.Reproduce.outcome option;
      (* shipped evidence bytes replayed under the re-injected fault *)
}

let e18_victim = Wd_cluster.Fabric.node_name 0

(* replay environment for the shipped evidence: the same slow-disk fault
   the scenario injected, against a tight latency budget, so the captured
   mimic payload reproduces the liveness violation *)
let e18_repro_fault =
  {
    Wd_env.Faultreg.id = "repro-limplock";
    site_pattern = "disk:*";
    behaviour = Wd_env.Faultreg.Slow_factor 2000.;
    start_at = 0L;
    stop_at = Wd_sim.Time.never;
    once = false;
  }

(* the replay's latency budget: a slow-class violation reproduces as a
   liveness failure when the degraded op (100-500ms under the 2000x fault)
   blows a budget the clean op (<1ms) meets comfortably *)
let e18_repro_timeout = Wd_sim.Time.ms 100

let e18_repro ~system wire =
  let prog =
    match system with
    | "zkmini" -> Wd_targets.Zkmini.program ()
    | _ -> Wd_targets.Cstore.program ()
  in
  let g = Generate.analyze_cached prog in
  Wd_autowatchdog.Reproduce.run_wire ~fault:e18_repro_fault
    ~timeout:e18_repro_timeout g ~wire

let e18_run () =
  let cells =
    List.concat_map
      (fun sys -> List.map (fun seed -> (sys, seed)) (e17_seeds ()))
      e17_systems
  in
  par_map
    (fun (sys, seed) ->
      let r =
        Wd_cluster.Sim.run
          ~cfg:
            {
              Wd_cluster.Sim.default_config with
              seed;
              topology = Wd_cluster.Topology.uniform ~nodes:5 sys;
            }
          "fleet-leader-limplock"
      in
      let successor =
        List.find_map
          (fun (owner, (e : Wd_cluster.Fleet.event)) ->
            match e.Wd_cluster.Fleet.ev_verdict with
            | Wd_cluster.Fleet.Node_gray _ -> Some owner
            | _ -> None)
          r.Wd_cluster.Sim.cr_events
      in
      let failover =
        match r.Wd_cluster.Sim.cr_converged_at with
        | Some at when at > r.Wd_cluster.Sim.cr_inject_at ->
            Some (Int64.sub at r.Wd_cluster.Sim.cr_inject_at)
        | Some _ | None -> None
      in
      (* the victim is node 0: replay its shipped evidence against *its*
         system's program, read off the per-node system list *)
      let victim_system =
        match r.Wd_cluster.Sim.cr_node_systems with s :: _ -> s | [] -> "?"
      in
      {
        e18_system = Wd_cluster.Topology.system_name sys;
        e18_seed = seed;
        e18_res = r;
        e18_successor = successor;
        e18_failover = failover;
        e18_victim_recovered =
          List.exists
            (fun (node, _) -> node = e18_victim)
            r.Wd_cluster.Sim.cr_recoveries;
        e18_repro =
          Option.map
            (e18_repro ~system:victim_system)
            r.Wd_cluster.Sim.cr_evidence_wire;
      })
    cells

let e18_text () =
  let rows = e18_run () in
  let opt_lat = Tables.latency_cell in
  fp
    "E18 — leader failover: the elected leader (n0) itself goes gray\n\
     (disks 2000x slower, gossip still flowing). Peers' deep probes\n\
     disqualify it, a successor wins the bully election, rebuilds its\n\
     inboxes from re-shipped wire reports, indicts the old leader, and\n\
     sends a Recover command whose evidence bytes seed a cross-node repro\n\
     (seeds %s; deterministic per seed)\n"
    (String.concat "," (List.map string_of_int (e17_seeds ())))
  ^ Tables.render
      ~header:
        [
          "system"; "seed"; "successor"; "failover"; "indicted"; "detect";
          "MTTR"; "repro";
        ]
      (List.map
         (fun c ->
           let r = c.e18_res in
           [
             c.e18_system;
             string_of_int c.e18_seed;
             Option.value c.e18_successor ~default:"-";
             opt_lat c.e18_failover;
             String.concat "," r.Wd_cluster.Sim.cr_indicted_nodes;
             opt_lat r.Wd_cluster.Sim.cr_first_latency;
             opt_lat r.Wd_cluster.Sim.cr_first_recovery_latency;
             (match c.e18_repro with
             | Some o -> fp "%a" Wd_autowatchdog.Reproduce.pp_outcome o
             | None -> "-");
           ])
         rows)
  ^ "\n\
     The verdict survives the death of the component that computes it: a\n\
     successor (never n0) records the same indictment the centralized\n\
     plane would have, the victim microreboots on command, and the shipped\n\
     mimic context replays to the same violation on a node that never saw\n\
     the failure.\n"

(* ------------------------------------------------------------------ *)
(* E19 — heterogeneous fleets over an asymmetric fabric: correlated    \
   failures must respect the verdict rules' priority order.            *)
(* ------------------------------------------------------------------ *)

(* Two racks, mixed zkmini/cstore slots, asymmetric links (slow crossing
   towards the remote rack, bandwidth-bounded return path). The correlated
   scenarios each super-impose a fabric fault on a limplocked node; a
   correct plane still pins the node — the mimic evidence outranks every
   link signal — and fault-free stays quiet even though the asymmetric
   links alone make probes limp. *)
let e19_topologies () =
  [ Wd_cluster.Topology.hetero9 (); Wd_cluster.Topology.hetero15 () ]

let e19_scenarios =
  [ "fleet-limplock-partition"; "fleet-slow-link-gray"; "fleet-fault-free" ]

let e19_cells () =
  List.concat_map
    (fun topology -> List.map (fun csid -> (topology, csid)) e19_scenarios)
    (e19_topologies ())

let e19_run () =
  par_map
    (fun (topology, csid) ->
      Wd_cluster.Sim.run
        ~cfg:
          {
            Wd_cluster.Sim.default_config with
            seed = base_seed ();
            topology;
          }
        csid)
    (e19_cells ())

let e19_victim_cell (r : Wd_cluster.Sim.result) =
  match r.Wd_cluster.Sim.cr_indicted_nodes with
  | [] -> "-"
  | ns ->
      String.concat ","
        (List.map
           (fun n ->
             (* name the indicted node's system so mixed-fleet rows show
                which target the verdict localised into *)
             let idx =
               int_of_string
                 (String.sub n 1 (String.length n - 1))
             in
             match List.nth_opt r.Wd_cluster.Sim.cr_node_systems idx with
             | Some sys -> fp "%s(%s)" n sys
             | None -> n)
           ns)

let e19_text () =
  let rows = e19_run () in
  let s = Metrics.fleet_summary rows in
  fp
    "E19 — heterogeneous fleets over an asymmetric fabric: 9- and 15-node\n\
     mixed zkmini/cstore topologies, remote rack behind 4 ms crossings and\n\
     a 256 KiB/s return pipe. Correlated scenarios super-impose fabric\n\
     faults on a limplocked node; verdict priority must still pin the node\n\
     (seed %d; identical tables at any --jobs width)\n"
    (base_seed ())
  ^ Tables.render
      ~header:
        [
          "topology"; "nodes"; "scenario"; "fleet verdict"; "indicted"; "by";
          "latency"; "MTTR"; "ok";
        ]
      (List.map
         (fun (r : Wd_cluster.Sim.result) ->
           [
             r.Wd_cluster.Sim.cr_system;
             string_of_int r.Wd_cluster.Sim.cr_nodes;
             r.Wd_cluster.Sim.cr_csid;
             e17_verdict_cell r;
             e19_victim_cell r;
             e17_leader_cell r;
             Tables.latency_cell r.Wd_cluster.Sim.cr_first_latency;
             Tables.latency_cell r.Wd_cluster.Sim.cr_first_recovery_latency;
             Tables.mark_cell r.Wd_cluster.Sim.cr_as_expected;
           ])
         rows)
  ^ fp
      "\n\
       indictment accuracy:  %d/%d correlated cells indict the limping node\n\
       component accuracy:   %d/%d indictments name a true component\n\
       false indictments:    %d/%d quiet cells on the asymmetric fabric\n\
       detection latency:    %a\n\
       fleet MTTR:           %a\n\
       evidence by family:   %a\n"
      s.Metrics.fs_right s.Metrics.fs_faulty s.Metrics.fs_component_right
      s.Metrics.fs_node_cells s.Metrics.fs_false_indict s.Metrics.fs_quiet
      Metrics.pp_latency_stats s.Metrics.fs_latency Metrics.pp_latency_stats
      s.Metrics.fs_mttr Metrics.pp_family_stats s.Metrics.fs_families
  ^ "\n\
     A partial partition or a limping link never shifts blame off the gray\n\
     node: mimic evidence outranks link signals in the rule order, and the\n\
     victim's own system (zkmini or cstore, depending on the slot) names\n\
     the component. The asymmetric fabric alone indicts nothing.\n"

(* ------------------------------------------------------------------ *)
(* E20 — randomized fault-space sweep: thousands of generated worlds
   (scenario x mode x seed x windows, fault-free probes, generated fleet
   topologies) graded against per-world oracles. The heavy lifting lives in
   [Sweep]; this wrapper threads the harness-wide jobs/seed overrides and
   renders the aggregate. *)

let e20_default_worlds = 1000

let e20_run ?(worlds = e20_default_worlds) () =
  Sweep.run ~jobs:(jobs ()) ~seed:(base_seed ()) ~worlds ()

let e20_text ?(worlds = e20_default_worlds) () =
  let summary, outcomes = e20_run ~worlds () in
  let misses =
    List.filter (fun (o : Sweep.outcome) -> not o.Sweep.o_ok) outcomes
  in
  let b = Buffer.create 1024 in
  let fp fmt = Fmt.kstr (Buffer.add_string b) fmt in
  fp "E20: randomized fault-space sweep (%d worlds)\n\n" summary.Sweep.s_worlds;
  fp "%a\n" Sweep.pp_summary summary;
  if misses <> [] then begin
    fp "\nworlds missing their oracle (%d):\n" (List.length misses);
    List.iteri
      (fun i (o : Sweep.outcome) ->
        if i < 12 then
          fp "  %s  (expect_detect=%b detected=%b false_alarms=%d)\n"
            o.Sweep.o_world o.Sweep.o_expect_detect o.Sweep.o_detected
            o.Sweep.o_false_alarms)
      misses;
    if List.length misses > 12 then
      fp "  ... and %d more\n" (List.length misses - 12)
  end;
  fp "\nEvery world is generated from the base seed alone and graded\n";
  fp "against its own oracle; rerun with --jobs N to confirm the digest\n";
  fp "is width-independent, or --seed S to sample a different slice of\n";
  fp "the fault space.\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* E21 — checker-generation race: the static-analysis (mimic) watchdog
   generation vs the trace-inferred generation, raced across the full
   failure catalog in three deployments — mimic-only, inferred-only,
   combined. Graded per checker family on coverage, median detection
   latency and fault-free false positives; runtime overhead is the
   deterministic sim-event surplus of each deployment over a bare
   (Wd_none, no inferred) baseline on the same fault-free worlds. *)

type e21_family = {
  e21f_family : string;
  e21f_detected : int;
  e21f_total : int;
  e21f_latency : Metrics.latency_stats;
  e21f_fp : int;
}

type e21_deploy = {
  e21d_label : string;
  e21d_any : int;  (** scenarios where any family detected *)
  e21d_total : int;
  e21d_families : e21_family list;
  e21d_fp : int;  (** all families, all fault-free runs *)
  e21d_checkers : int;  (** checker count summed over fault-free runs *)
  e21d_sim_events : int;  (** fault-free sim events, summed over systems *)
  e21d_overhead_pct : float;  (** vs the bare baseline on the same worlds *)
}

type e21_result = {
  e21_mined_runs : int;
  e21_mined_events : int;
  e21_model_digest : string;
  e21_invariants : (string * int) list;  (** per system *)
  e21_deploys : e21_deploy list;
}

let e21_families =
  [ "mimic"; "probe"; "signal"; "inferred"; "heartbeat"; "observer" ]

let e21_family_fp fam (ff : Campaign.fault_free) =
  match fam with
  | "mimic" -> ff.Campaign.ff_mimic_fp
  | "probe" -> ff.Campaign.ff_probe_fp
  | "signal" -> ff.Campaign.ff_signal_fp
  | "inferred" -> ff.Campaign.ff_inferred_fp
  | "heartbeat" -> ff.Campaign.ff_heartbeat_fp
  | "observer" -> ff.Campaign.ff_observer_fp
  | _ -> 0

let e21_mine () = Inference.mine_and_synth ~jobs:(jobs ()) ()

(* label, watchdog mode, attach the inferred generation *)
let e21_deploy_specs =
  [
    ("mimic-only", Systems.Wd_generated, false);
    ("inferred-only", Systems.Wd_none, true);
    ("combined", Systems.Wd_generated, true);
  ]

let e21_run () =
  let mined = e21_mine () in
  let cfg_for mode with_infer system =
    {
      Campaign.default_config with
      Campaign.mode;
      infer =
        (if with_infer then Inference.model_for mined system else None);
    }
  in
  (* bare baseline: no mimic generation, no inferred generation — just the
     extrinsic families every boot carries. Its fault-free sim-event count
     anchors the overhead column. *)
  let base_events =
    List.fold_left
      (fun n (ff : Campaign.fault_free) -> n + ff.Campaign.ff_sim_events)
      0
      (par_map
         (fun sys ->
           Campaign.run_fault_free
             ~cfg:{ Campaign.default_config with Campaign.mode = Systems.Wd_none }
             sys)
         Systems.all_systems)
  in
  let deploys =
    List.map
      (fun (label, mode, with_infer) ->
        let runs =
          Campaign.run_batch ~jobs:(jobs ())
            (List.map
               (fun (s : Catalog.scenario) ->
                 Campaign.cell
                   ~cfg:(cfg_for mode with_infer s.Catalog.system)
                   s.Catalog.sid)
               Catalog.all)
        in
        let ffs =
          par_map
            (fun sys ->
              Campaign.run_fault_free ~cfg:(cfg_for mode with_infer sys) sys)
            Systems.all_systems
        in
        let families =
          List.map
            (fun fam ->
              let outs =
                List.map
                  (fun (r : Campaign.run) ->
                    List.assoc fam r.Campaign.r_outcomes)
                  runs
              in
              let lats =
                List.filter_map
                  (fun (o : Campaign.outcome) ->
                    if o.Campaign.o_detected then o.Campaign.o_latency
                    else None)
                  outs
              in
              {
                e21f_family = fam;
                e21f_detected =
                  List.length
                    (List.filter (fun o -> o.Campaign.o_detected) outs);
                e21f_total = List.length outs;
                e21f_latency =
                  Metrics.latency_stats_of lats ~total:(List.length outs);
                e21f_fp =
                  List.fold_left (fun n ff -> n + e21_family_fp fam ff) 0 ffs;
              })
            e21_families
        in
        let any =
          List.length
            (List.filter
               (fun (r : Campaign.run) ->
                 List.exists
                   (fun (_, o) -> o.Campaign.o_detected)
                   r.Campaign.r_outcomes)
               runs)
        in
        let sim_events =
          List.fold_left
            (fun n (ff : Campaign.fault_free) -> n + ff.Campaign.ff_sim_events)
            0 ffs
        in
        {
          e21d_label = label;
          e21d_any = any;
          e21d_total = List.length runs;
          e21d_families = families;
          e21d_fp =
            List.fold_left
              (fun n fam -> n + fam.e21f_fp)
              0 families;
          e21d_checkers =
            List.fold_left
              (fun n (ff : Campaign.fault_free) ->
                n + ff.Campaign.ff_checker_count)
              0 ffs;
          e21d_sim_events = sim_events;
          e21d_overhead_pct =
            100.
            *. float_of_int (sim_events - base_events)
            /. float_of_int (max 1 base_events);
        })
      e21_deploy_specs
  in
  {
    e21_mined_runs = mined.Inference.md_runs;
    e21_mined_events = mined.Inference.md_events;
    e21_model_digest = mined.Inference.md_digest;
    e21_invariants =
      List.map
        (fun (sys, m) ->
          (sys, List.length m.Wd_infer.Synth.m_invariants))
        mined.Inference.md_models;
    e21_deploys = deploys;
  }

let e21_family_of d fam =
  List.find (fun f -> f.e21f_family = fam) d.e21d_families

let e21_text () =
  let r = e21_run () in
  let cov f = fp "%d/%d" f.e21f_detected f.e21f_total in
  let med (f : e21_family) =
    if f.e21f_latency.Metrics.ls_count = 0 then "-"
    else Wd_sim.Time.to_string f.e21f_latency.Metrics.ls_median
  in
  let race =
    Tables.render
      ~header:
        [
          "deployment"; "mimic"; "inferred"; "any"; "median (mimic)";
          "median (inferred)"; "false alarms"; "checkers"; "overhead";
        ]
      (List.map
         (fun d ->
           let m = e21_family_of d "mimic" and i = e21_family_of d "inferred" in
           [
             d.e21d_label;
             cov m;
             cov i;
             fp "%d/%d" d.e21d_any d.e21d_total;
             med m;
             med i;
             string_of_int d.e21d_fp;
             string_of_int d.e21d_checkers;
             fp "%+.1f%%" d.e21d_overhead_pct;
           ])
         r.e21_deploys)
  in
  let combined =
    List.find (fun d -> d.e21d_label = "combined") r.e21_deploys
  in
  let per_family =
    Tables.render
      ~header:[ "family"; "coverage"; "median latency"; "false alarms" ]
      (List.map
         (fun f -> [ f.e21f_family; cov f; med f; string_of_int f.e21f_fp ])
         combined.e21d_families)
  in
  fp
    "E21 — checker-generation race: mimic (static analysis) vs inferred\n\
     (trace mining) across the full %d-scenario catalog\n\n\
     mined %d fault-free runs (%d op events) -> models %s\n\
     invariants per system: %s\n\n"
    (List.length Catalog.all) r.e21_mined_runs r.e21_mined_events
    r.e21_model_digest
    (String.concat ", "
       (List.map (fun (s, n) -> fp "%s=%d" s n) r.e21_invariants))
  ^ race
  ^ "\nper-family breakdown in the combined deployment:\n"
  ^ per_family
  ^ "\nThe inferred generation is synthesized from nothing but passing-run\n\
     traces — no source analysis — yet alone it covers a majority of the\n\
     catalog with zero fault-free false alarms (liveness invariants catch\n\
     hangs/deadlocks; never-fail invariants catch error signals). The\n\
     mimic generation keeps its pinpointing edge; combined, the two are\n\
     complementary at a few percent extra sim events.\n"

(* ------------------------------------------------------------------ *)
(* E22 — watchdog overhead under heavy traffic. The load plane drives  *)
(* each workload at 10^5..10^6+ requests per deployment and compares   *)
(* watchdog-on / watchdog-off / inferred-on on the same virtual world: *)
(* overhead is sim-event inflation (work the watchdog adds), latency   *)
(* impact is the p50/p99 ratio against the bare run, and detection     *)
(* latency is measured by injecting a catalog fault mid-load.          *)
(* ------------------------------------------------------------------ *)

type e22_row = {
  e22r_deploy : string;  (** "wd-off" | "wd-on" | "inferred-on" *)
  e22r_load : Loadgen.result;
  e22r_sim_events : int;
  e22r_overhead_pct : float;  (** sim-event inflation vs the wd-off row *)
  e22r_p50_x : float;  (** p50 latency ratio vs the wd-off row *)
  e22r_p99_x : float;
  e22r_detect : int64 option;
      (** detection latency under load (separate injected run); [None] for
          deployments with nothing to detect with, or when undetected *)
}

type e22_workload = {
  e22w_label : string;
  e22w_gen : string;  (** generator kind: "closed" | "open" | "fleet" *)
  e22w_requests : int;  (** completed requests, all rows + injected runs *)
  e22w_rows : e22_row list;
}

type e22_result = {
  e22_workloads : e22_workload list;
  e22_total_requests : int;
}

type e22_alloc_row = {
  e22a_deploy : string;
  e22a_requests : int;  (** completed requests actually driven *)
  e22a_words_per_req : float;  (** minor-heap words per completed request *)
  e22a_bytes_per_req : float;
}

(* deployment label, watchdog mode, attach the inferred generation *)
let e22_deploy_specs =
  [
    ("wd-off", Systems.Wd_none, false);
    ("wd-on", Systems.Wd_generated, false);
    ("inferred-on", Systems.Wd_none, true);
  ]

let e22_boot ?schedule ~sched ~mode ~infer system =
  let reg = Wd_env.Faultreg.create () in
  (* monitor before boot: startup ops are part of its ordering state,
     exactly as during mining (same rule as Campaign.run_raw) *)
  let monitor = Option.map (fun _ -> Wd_infer.Monitor.create sched) infer in
  let booted = Systems.boot ?schedule ~sched ~reg ~mode system in
  (match (infer, monitor) with
  | Some model, Some monitor ->
      List.iter
        (Driver.add_checker booted.Systems.b_driver)
        (Wd_infer.Checkers.compile ~model ~monitor ())
  | _ -> ());
  (booted, reg)

(* One clean load run: boot, offer [requests], account every arrival. The
   loadgen's in-flight count is wired into the driver's scheduler as its
   arrival-stream pressure probe (a no-op under the default fixed policy).
   [hooks_only] stops the driver right after boot: the instrumented program
   keeps feeding contexts but no checker ever runs — the baseline that
   splits watchdog overhead into context-sync vs checker-scheduling. *)
let e22_perf ?schedule ?(hooks_only = false) ~requests ~gen ~mode ~infer
    system =
  let sched = Wd_sim.Sched.create ~seed:(base_seed ()) () in
  let booted, _reg = e22_boot ?schedule ~sched ~mode ~infer system in
  if hooks_only then Driver.stop booted.Systems.b_driver;
  let g =
    match gen with
    | `Closed ->
        Loadgen.spawn_closed ~label:system ~sched ~clients:32
          ~think:(Wd_sim.Time.us 50) ~requests
          ~op:booted.Systems.b_client ()
    | `Open rate ->
        Loadgen.spawn_open ~label:system ~sched ~rate_rps:rate
          ~max_inflight:512 ~requests ~op:booted.Systems.b_client ()
  in
  Wd_watchdog.Schedule.set_load_probe
    (Driver.schedule booted.Systems.b_driver)
    (fun () -> Loadgen.inflight g);
  let r = Loadgen.drive g in
  let _, _, events = Wd_sim.Sched.stats sched in
  (r, events, Wd_watchdog.Schedule.stats (Driver.schedule booted.Systems.b_driver))

(* Detection latency under load: same boot, same generator, but a catalog
   fault lands after a 2s ramp while clients keep hammering; latency is the
   first driver report at or after the injection instant. *)
let e22_detect ?schedule ~requests ~gen ~mode ~infer ~sid system =
  let scenario = Catalog.find sid in
  let sched = Wd_sim.Sched.create ~seed:(base_seed ()) () in
  let booted, reg = e22_boot ?schedule ~sched ~mode ~infer system in
  let g =
    match gen with
    | `Closed ->
        Loadgen.spawn_closed ~label:(system ^ "+fault") ~sched ~clients:32
          ~think:(Wd_sim.Time.us 50) ~requests
          ~op:booted.Systems.b_client ()
    | `Open rate ->
        Loadgen.spawn_open ~label:(system ^ "+fault") ~sched ~rate_rps:rate
          ~max_inflight:512 ~requests ~op:booted.Systems.b_client ()
  in
  Wd_watchdog.Schedule.set_load_probe
    (Driver.schedule booted.Systems.b_driver)
    (fun () -> Loadgen.inflight g);
  let step u =
    match Wd_sim.Sched.run ~until:u sched with
    | Wd_sim.Sched.Time_limit | Wd_sim.Sched.Quiescent
    | Wd_sim.Sched.Deadlock _ ->
        ()
  in
  step (Wd_sim.Time.sec 2);
  let inject_at = Wd_sim.Sched.now sched in
  ignore (Catalog.inject reg scenario ~at:inject_at);
  if scenario.Catalog.special = Some "crash" then
    Wd_sim.Sched.at sched inject_at booted.Systems.b_crash;
  let detected = ref None in
  let deadline = Int64.add inject_at (Wd_sim.Time.sec 30) in
  let t = ref inject_at in
  while !detected = None && !t < deadline do
    t := Int64.add !t (Wd_sim.Time.ms 100);
    step !t;
    detected :=
      List.find_opt
        (fun (r : Report.t) -> r.Report.at >= inject_at)
        (List.rev (Driver.reports booted.Systems.b_driver))
  done;
  let latency =
    Option.map
      (fun (r : Report.t) -> Int64.sub r.Report.at inject_at)
      !detected
  in
  (latency, Loadgen.completed g)

(* per-workload detection scenarios: a hang for zkmini (the ZK-2201
   reproduction), a stuck compaction for cstore *)
let e22_sid_of = function
  | "zkmini" -> "zk-2201"
  | "cstore" -> "cs-compaction-stuck"
  | s -> invalid_arg ("e22: no detection scenario for " ^ s)

let e22_single ~requests ~mined (label, gen) =
  let infer_of with_infer =
    if with_infer then Inference.model_for mined label else None
  in
  let perfs =
    par_map
      (fun (_, mode, with_infer) ->
        e22_perf ~requests ~gen ~mode ~infer:(infer_of with_infer) label)
      e22_deploy_specs
  in
  let detect_requests = max 1 (requests / 4) in
  let detects =
    par_map
      (fun (_, mode, with_infer) ->
        e22_detect ~requests:detect_requests ~gen ~mode
          ~infer:(infer_of with_infer) ~sid:(e22_sid_of label) label)
      (List.filter (fun (d, _, _) -> d <> "wd-off") e22_deploy_specs)
  in
  let base_load, base_events, _ =
    List.nth perfs 0 (* spec order: wd-off first *)
  in
  let detect_of d =
    match d with
    | "wd-on" -> fst (List.nth detects 0)
    | "inferred-on" -> fst (List.nth detects 1)
    | _ -> None
  in
  let ratio num den =
    Int64.to_float num /. Float.max 1. (Int64.to_float den)
  in
  let rows =
    List.map2
      (fun (d, _, _) (load, events, _) ->
        {
          e22r_deploy = d;
          e22r_load = load;
          e22r_sim_events = events;
          e22r_overhead_pct =
            100.
            *. float_of_int (events - base_events)
            /. float_of_int (max 1 base_events);
          e22r_p50_x = ratio load.Loadgen.lr_p50 base_load.Loadgen.lr_p50;
          e22r_p99_x = ratio load.Loadgen.lr_p99 base_load.Loadgen.lr_p99;
          e22r_detect = detect_of d;
        })
      (List.map (fun (d, _, _) -> (d, (), ())) e22_deploy_specs)
      perfs
  in
  {
    e22w_label = label;
    e22w_gen = (match gen with `Closed -> "closed" | `Open _ -> "open");
    e22w_requests =
      List.fold_left (fun n (l, _, _) -> n + l.Loadgen.lr_requests) 0 perfs
      + List.fold_left (fun n (_, c) -> n + c) 0 detects;
    e22w_rows = rows;
  }

(* Fleet workload: closed-loop clients against every node of a small
   uniform fleet, through each node's bounded end-to-end client op. Fleet
   nodes always carry their full generated watchdog, so this is a single
   wd-on scale row, not an on/off comparison. *)
let e22_fleet ~requests =
  let topology = Wd_cluster.Topology.uniform ~nodes:3 Wd_cluster.Topology.Zkmini in
  let world =
    Wd_cluster.Sim.boot ~seed:(base_seed ()) ~topology ()
  in
  let sched = Wd_cluster.Sim.world_sched world in
  (* settle membership and elections before offering load *)
  (match Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 2) sched with
  | Wd_sim.Sched.Time_limit | Wd_sim.Sched.Quiescent
  | Wd_sim.Sched.Deadlock _ ->
      ());
  let g =
    Loadgen.spawn_fleet ~label:"fleet" ~world ~clients_per_node:8
      ~think:(Wd_sim.Time.us 200) ~requests ()
  in
  let r = Loadgen.drive g in
  let _, _, events = Wd_sim.Sched.stats sched in
  {
    e22w_label = "fleet-zkmini-3";
    e22w_gen = "fleet";
    e22w_requests = r.Loadgen.lr_requests;
    e22w_rows =
      [
        {
          e22r_deploy = "wd-on";
          e22r_load = r;
          e22r_sim_events = events;
          e22r_overhead_pct = 0.;
          e22r_p50_x = 1.;
          e22r_p99_x = 1.;
          e22r_detect = None;
        };
      ];
  }

(* Allocation discipline, the E22 companion measurement: minor-heap words
   allocated per completed request on the single-node zkmini closed loop,
   wd-off vs wd-on. [Gc.minor_words] is a per-domain counter, so both runs
   execute inline on the calling domain — never under par_map. The schedule
   is deterministic for a fixed seed, so the figure is reproducible enough
   to gate in CI. The inferred-on deployment is skipped: it needs a mining
   pass whose own allocation would dwarf the load plane's. *)
let e22_alloc ?(requests = 20_000) () =
  List.filter_map
    (fun (deploy, mode, with_infer) ->
      if with_infer then None
      else
        let sched = Wd_sim.Sched.create ~seed:(base_seed ()) () in
        let booted, _reg = e22_boot ~sched ~mode ~infer:None "zkmini" in
        let g =
          Loadgen.spawn_closed ~label:"zkmini" ~sched ~clients:32
            ~think:(Wd_sim.Time.us 50) ~requests
            ~op:booted.Systems.b_client ()
        in
        let w0 = Gc.minor_words () in
        let r = Loadgen.drive g in
        let dw = Gc.minor_words () -. w0 in
        let per_req = dw /. float_of_int (max 1 r.Loadgen.lr_requests) in
        Some
          {
            e22a_deploy = deploy;
            e22a_requests = r.Loadgen.lr_requests;
            e22a_words_per_req = per_req;
            e22a_bytes_per_req = per_req *. float_of_int (Sys.word_size / 8);
          })
    e22_deploy_specs

let e22_default_requests = 60_000

let e22_run ?(requests = e22_default_requests) ?fleet_requests () =
  let fleet_requests =
    match fleet_requests with Some n -> n | None -> requests
  in
  let mined = e21_mine () in
  let singles =
    List.map
      (e22_single ~requests ~mined)
      [ ("zkmini", `Closed); ("cstore", `Open 8_000) ]
  in
  let fleet = e22_fleet ~requests:fleet_requests in
  let workloads = singles @ [ fleet ] in
  {
    e22_workloads = workloads;
    e22_total_requests =
      List.fold_left (fun n w -> n + w.e22w_requests) 0 workloads;
  }

let e22_text ?requests ?fleet_requests () =
  let r = e22_run ?requests ?fleet_requests () in
  let tbl =
    Tables.render
      ~header:
        [
          "workload"; "gen"; "deploy"; "requests"; "ok"; "throughput";
          "p50"; "p99"; "overhead"; "p50 x"; "p99 x"; "detect";
        ]
      (List.concat_map
         (fun w ->
           List.map
             (fun row ->
               let l = row.e22r_load in
               [
                 w.e22w_label;
                 w.e22w_gen;
                 row.e22r_deploy;
                 string_of_int l.Loadgen.lr_requests;
                 fp "%.3f" (Loadgen.success_ratio l);
                 fp "%.0f/s" (Loadgen.throughput_rps l);
                 Wd_sim.Time.to_string l.Loadgen.lr_p50;
                 Wd_sim.Time.to_string l.Loadgen.lr_p99;
                 (if row.e22r_deploy = "wd-off" then "base"
                  else fp "%+.1f%%" row.e22r_overhead_pct);
                 fp "%.2fx" row.e22r_p50_x;
                 fp "%.2fx" row.e22r_p99_x;
                 (match row.e22r_detect with
                 | Some d -> Wd_sim.Time.to_string d
                 | None -> "-");
               ])
             w.e22w_rows)
         r.e22_workloads)
  in
  fp
    "E22 — watchdog overhead under heavy traffic (%d requests total)\n\
     closed loop: 32 clients, 50us think; open loop: fixed arrival rate,\n\
     512 in-flight cap; fleet: 8 clients/node through the end-to-end\n\
     client op. overhead = sim-event inflation vs the wd-off run of the\n\
     same workload; p50x/p99x = latency vs the same baseline; detect =\n\
     first report after a mid-load catalog fault (zk-2201 /\n\
     cs-compaction-stuck).\n\n"
    r.e22_total_requests
  ^ tbl
  ^ "\nThe watchdog's cost under saturation is extra simulated work, not\n\
     client-visible latency: checker activity inflates sim events by a few\n\
     percent while p50/p99 track the bare run, and a fault landing under\n\
     full load is still reported within the detection budget.\n"

(* --- E23: the overhead-vs-detection-latency frontier ---

   The adaptive scheduler trades checker cadence for load headroom inside a
   hard latency bound; this experiment measures where each scheduling mode
   lands on that trade-off. Per mode:

   - overhead on the E22 load plane (zkmini closed loop, cstore open loop):
     wd-on sim-event inflation against a shared wd-off baseline, with the
     loadgen in-flight count wired in as the scheduler's pressure probe.
     Watchdog overhead has two components with different owners: context
     sync (hooks on the request path — per-request cost the scheduler
     cannot touch) and checker scheduling (periodic checker executions).
     A hooks-only run (instrumented program, driver stopped at boot)
     splits them; the frontier metric is the scheduling component, events
     above the hooks-only baseline;
   - loaded detection: the E22 mid-load faults (zk-2201,
     cs-compaction-stuck), worst of the two;
   - catalog detection: a full campaign over every catalog scenario, where
     a scenario's latency is the first intrinsic-watchdog report (mimic,
     probe, signal or inferred — heartbeat/observer are extrinsic and
     unaffected by checker scheduling).

   Worst/mean catalog latency is computed over the scenarios the fixed
   baseline detects, so modes are compared on one set; [e23f_detected]
   carries each mode's own coverage (the no-regression gate).

   The adaptive modes run a deliberately tight overhead target (0.01% of
   fired events): on this load plane the checkers' share is small in
   absolute terms, and the tight budget is what makes the throttle engage
   so the frontier exposes the cadence-vs-latency trade — cadence
   stretches until the latency bound stops it, so the two adaptive points
   differ exactly in their bound. *)

module Schedule = Wd_watchdog.Schedule

type e23_row = {
  e23f_mode : string;
  e23f_policy : string;  (* rendered policy parameters *)
  e23f_overhead_pct : float;  (* mean wd-on event inflation, load plane *)
  e23f_sched_events : int;  (* events above the hooks-only baseline *)
  e23f_sched_cut_pct : float;  (* scheduling-overhead cut vs fixed *)
  e23f_p99_x : float;  (* worst p99 ratio vs wd-off across the load plane *)
  e23f_load_detect : int64 option;  (* worst mid-load detection latency *)
  e23f_detected : int;  (* catalog scenarios seen by an intrinsic class *)
  e23f_catalog : int;  (* catalog size *)
  e23f_worst_detect : int64 option;  (* over the fixed-detected set *)
  e23f_mean_detect : int64 option;
  e23f_runs : int;  (* checker executions across the load-plane runs *)
  e23f_dedup_skips : int;
  e23f_shared_syncs : int;
  e23f_throttle_peak : float;
}

type e23_result = {
  e23_rows : e23_row list;
  e23_scenarios : int;
  e23_requests : int;
}

let e23_modes () =
  [
    ("fixed", Schedule.fixed);
    ("adaptive", Schedule.adaptive ~target_overhead:0.0001 ());
    ( "adaptive-relaxed",
      Schedule.adaptive ~target_overhead:0.0001
        ~latency_bound:(Wd_sim.Time.sec 6) () );
  ]

let e23_workloads = [ ("zkmini", `Closed); ("cstore", `Open 8_000) ]

(* Catalog detection latency: first intrinsic-class report after
   injection. *)
let e23_intrinsic_latency (r : Campaign.run) =
  List.fold_left
    (fun acc cls ->
      match (List.assoc cls r.Campaign.r_outcomes).Campaign.o_latency with
      | None -> acc
      | Some l -> (
          match acc with
          | Some best when best <= l -> acc
          | Some _ | None -> Some l))
    None
    [ "mimic"; "probe"; "signal"; "inferred" ]

let e23_run ?(requests = e22_default_requests) () =
  let modes = e23_modes () in
  (* Shared baselines, one pair per workload: wd-off (no watchdog at all)
     and hooks-only (context sync running, checkers never scheduled). *)
  let bases =
    par_map
      (fun (system, gen) ->
        e22_perf ~requests ~gen ~mode:Systems.Wd_none ~infer:None system)
      e23_workloads
  in
  let hooks =
    par_map
      (fun (system, gen) ->
        e22_perf ~hooks_only:true ~requests ~gen ~mode:Systems.Wd_generated
          ~infer:None system)
      e23_workloads
  in
  (* Catalog campaigns: every (mode, scenario) cell is an independent
     world, so the whole cross product fans out as one batch. *)
  let sids = List.map (fun s -> s.Catalog.sid) Catalog.all in
  let cells =
    List.concat_map
      (fun (_, policy) ->
        List.map
          (fun sid ->
            Campaign.cell
              ~cfg:
                {
                  Campaign.default_config with
                  Campaign.seed = base_seed ();
                  schedule = policy;
                }
              sid)
          sids)
      modes
  in
  let campaign_runs = Campaign.run_batch ~jobs:(jobs ()) cells in
  let latencies_of_mode i =
    List.filteri
      (fun j _ -> j / List.length sids = i)
      campaign_runs
    |> List.map (fun r -> (r.Campaign.r_sid, e23_intrinsic_latency r))
  in
  let fixed_lats = latencies_of_mode 0 in
  let fixed_detected =
    List.filter_map (fun (sid, l) -> Option.map (fun _ -> sid) l) fixed_lats
  in
  let measures =
    List.map
      (fun (name, policy) ->
        let perfs =
          par_map
            (fun (system, gen) ->
              e22_perf ~schedule:policy ~requests ~gen
                ~mode:Systems.Wd_generated ~infer:None system)
            e23_workloads
        in
        let detects =
          par_map
            (fun (system, gen) ->
              e22_detect ~schedule:policy ~requests:(max 1 (requests / 4))
                ~gen ~mode:Systems.Wd_generated ~infer:None
                ~sid:(e22_sid_of system) system)
            e23_workloads
        in
        (name, policy, perfs, detects))
      modes
  in
  let sched_events_of perfs =
    List.fold_left2
      (fun acc (_, hooks_events, _) (_, events, _) ->
        acc + (events - hooks_events))
      0 hooks perfs
  in
  let fixed_sched =
    match measures with
    | (_, _, perfs, _) :: _ -> sched_events_of perfs
    | [] -> 0
  in
  let rows =
    List.mapi
      (fun i (name, policy, perfs, detects) ->
        let overheads =
          List.map2
            (fun (_, base_events, _) (_, events, _) ->
              100.
              *. float_of_int (events - base_events)
              /. float_of_int (max 1 base_events))
            bases perfs
        in
        let p99_x =
          List.fold_left2
            (fun acc (base_load, _, _) (load, _, _) ->
              Float.max acc
                (Int64.to_float load.Loadgen.lr_p99
                /. Float.max 1. (Int64.to_float base_load.Loadgen.lr_p99)))
            0. bases perfs
        in
        let overhead_pct =
          List.fold_left ( +. ) 0. overheads
          /. float_of_int (List.length overheads)
        in
        let load_detect =
          List.fold_left
            (fun acc (lat, _) ->
              match (acc, lat) with
              | None, l | l, None -> l
              | Some a, Some b -> Some (Int64.max a b))
            None detects
        in
        let sstats =
          List.fold_left
            (fun (runs, dedups, shared, peak) (_, _, st) ->
              ( runs + st.Schedule.st_runs,
                dedups + st.Schedule.st_dedup_skips,
                shared + st.Schedule.st_shared_syncs,
                Float.max peak st.Schedule.st_throttle_peak ))
            (0, 0, 0, 1.) perfs
        in
        let runs, dedups, shared, peak = sstats in
        let lats = latencies_of_mode i in
        let detected =
          List.length (List.filter (fun (_, l) -> l <> None) lats)
        in
        let common =
          List.filter_map
            (fun (sid, l) -> if List.mem sid fixed_detected then l else None)
            lats
        in
        let worst =
          List.fold_left
            (fun acc l ->
              match acc with Some a when a >= l -> acc | _ -> Some l)
            None common
        in
        let mean =
          match common with
          | [] -> None
          | _ ->
              Some
                (Int64.div
                   (List.fold_left Int64.add 0L common)
                   (Int64.of_int (List.length common)))
        in
        let sched_events = sched_events_of perfs in
        {
          e23f_mode = name;
          e23f_policy = fp "%a" Schedule.pp_policy policy;
          e23f_overhead_pct = overhead_pct;
          e23f_sched_events = sched_events;
          e23f_sched_cut_pct =
            100.
            *. float_of_int (fixed_sched - sched_events)
            /. float_of_int (max 1 fixed_sched);
          e23f_p99_x = p99_x;
          e23f_load_detect = load_detect;
          e23f_detected = detected;
          e23f_catalog = List.length sids;
          e23f_worst_detect = worst;
          e23f_mean_detect = mean;
          e23f_runs = runs;
          e23f_dedup_skips = dedups;
          e23f_shared_syncs = shared;
          e23f_throttle_peak = peak;
        })
      measures
  in
  {
    e23_rows = rows;
    e23_scenarios = List.length sids;
    e23_requests = requests;
  }

let e23_text ?requests () =
  let r = e23_run ?requests () in
  let time_opt = function
    | Some t -> Wd_sim.Time.to_string t
    | None -> "-"
  in
  let tbl =
    Tables.render
      ~header:
        [
          "mode"; "overhead"; "sched ev"; "sched cut"; "p99 x";
          "load detect"; "catalog"; "worst"; "mean"; "runs"; "dedup";
          "shared"; "throttle";
        ]
      (List.map
         (fun row ->
           [
             row.e23f_mode;
             fp "%+.1f%%" row.e23f_overhead_pct;
             string_of_int row.e23f_sched_events;
             (if row.e23f_mode = "fixed" then "base"
              else fp "%.0f%%" row.e23f_sched_cut_pct);
             fp "%.2fx" row.e23f_p99_x;
             time_opt row.e23f_load_detect;
             fp "%d/%d" row.e23f_detected row.e23f_catalog;
             time_opt row.e23f_worst_detect;
             time_opt row.e23f_mean_detect;
             string_of_int row.e23f_runs;
             string_of_int row.e23f_dedup_skips;
             string_of_int row.e23f_shared_syncs;
             fp "%.0fx" row.e23f_throttle_peak;
           ])
         r.e23_rows)
  in
  fp
    "E23 — scheduling frontier: overhead vs detection latency\n\
     modes: %s.\n\
     overhead = mean wd-on sim-event inflation vs the shared wd-off\n\
     baseline on the E22 load plane (zkmini closed, cstore open); sched\n\
     ev = events above the hooks-only baseline (the checker-scheduling\n\
     component — context sync is per-request cost no schedule can touch);\n\
     sched cut = that component's reduction vs fixed; load detect =\n\
     worst mid-load catalog-fault latency; catalog = scenarios detected\n\
     by an intrinsic class over the full catalog; worst/mean = detection\n\
     latency over the fixed-detected scenario set; dedup/shared = runs\n\
     skipped on unchanged context version / co-scheduled runs sharing\n\
     one context snapshot.\n\n"
    (String.concat ", "
       (List.map (fun row -> row.e23f_mode ^ " = " ^ row.e23f_policy) r.e23_rows))
  ^ tbl
  ^ "\nThe adaptive points sit below the fixed point on scheduling\n\
     overhead at a bounded detection-latency cost: throttling and\n\
     version-dedup shed checker work under pressure while the latency\n\
     bound forces a real run before the detection budget is spent — the\n\
     two adaptive rows differ exactly in that bound.\n"

let all_texts () =
  [
    ("table1", e1_text);
    ("table2", e2_text);
    ("reduce", e4_text);
    ("zk2201", e5_text);
    ("genstats", e6_text);
    ("overhead", e7_text);
    ("context", e8_text);
    ("memsignal", e9_text);
    ("isolation", e10_text);
    ("recovery", e11_text);
    ("reproduce", e12_text);
    ("overload", e13_text);
    ("ablation", e14_text);
    ("sweep", e15_text);
    ("multiseed", e16_text);
    ("cluster", e17_text);
    ("failover", e18_text);
    ("hetero", e19_text);
    ("faultspace", fun () -> e20_text ());
    ("infer", e21_text);
    ("load", fun () -> e22_text ());
    ("frontier", fun () -> e23_text ());
  ]
