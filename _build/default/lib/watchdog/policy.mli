(** Alarm policy: how raw checker failures become reports.

    [confirmations] debounces blips; [dedup_window] suppresses repeats of
    the same finding; [validate] is the §5 false-alarm mitigation (probe the
    impact when a mimic checker fails); the [slow_*] fields drive the
    driver's adaptive fail-slow detection. *)

type t = {
  confirmations : int;
  dedup_window : int64;
  validate : (Report.t -> bool) option;
  suppress_unvalidated : bool;
  slow_floor : int64;
  slow_mult : float;
  slow_min_samples : int;
}

val default : t

val with_validation : ?suppress:bool -> (Report.t -> bool) -> t -> t
