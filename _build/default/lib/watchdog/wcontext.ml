(* Watchdog context table (§3.1 State Synchronization).

   Hooks in the main program push live values in (one-way: the main program
   never reads the table); the driver checks readiness and fetches arguments
   before running a checker. Values are deep-copied on the way in (by the
   interpreter's hook capture) *and* on the way out, so a checker can never
   alias main-program memory — the paper's context-replication isolation. *)

open Wd_ir.Ast

type slot = { mutable value : value option; mutable updated_at : int64 }

type unit_ctx = {
  unit_id : string;
  params : string list; (* ordered: the reduced function's parameter list *)
  slots : (string, slot) Hashtbl.t;
  mutable updates : int;
}

type hook_binding = { hb_unit : string; hb_map : (string * string) list }
(* hb_map: (tmp variable captured in main program, context parameter) *)

type t = {
  units : (string, unit_ctx) Hashtbl.t;
  hook_bindings : (int, hook_binding) Hashtbl.t;
  mutable total_updates : int;
}

let create () =
  { units = Hashtbl.create 32; hook_bindings = Hashtbl.create 32; total_updates = 0 }

let register_unit t ~unit_id ~params =
  let slots = Hashtbl.create (max 1 (List.length params)) in
  List.iter
    (fun p -> Hashtbl.replace slots p { value = None; updated_at = 0L })
    params;
  Hashtbl.replace t.units unit_id { unit_id; params; slots; updates = 0 }

let bind_hook t ~hook_id ~unit_id ~captures =
  Hashtbl.replace t.hook_bindings hook_id { hb_unit = unit_id; hb_map = captures }

let find_unit t unit_id = Hashtbl.find_opt t.units unit_id

(* The sink the main-program interpreter calls when a Hook fires. *)
let sink t ~now hook_id values =
  match Hashtbl.find_opt t.hook_bindings hook_id with
  | None -> ()
  | Some { hb_unit; hb_map } -> (
      match Hashtbl.find_opt t.units hb_unit with
      | None -> ()
      | Some ctx ->
          List.iter
            (fun (tmp, v) ->
              match List.assoc_opt tmp (List.map (fun (a, b) -> (b, a)) hb_map) with
              | None -> ()
              | Some param -> (
                  match Hashtbl.find_opt ctx.slots param with
                  | None -> ()
                  | Some slot ->
                      slot.value <- Some v;
                      slot.updated_at <- now))
            values;
          ctx.updates <- ctx.updates + 1;
          t.total_updates <- t.total_updates + 1)

let ready t unit_id =
  match find_unit t unit_id with
  | None -> false
  | Some ctx ->
      List.for_all
        (fun p ->
          match Hashtbl.find_opt ctx.slots p with
          | Some { value = Some _; _ } -> true
          | Some { value = None; _ } | None -> false)
        ctx.params

(* Ordered argument list for the reduced function, deep-copied. *)
let args t unit_id =
  match find_unit t unit_id with
  | None -> None
  | Some ctx ->
      let rec gather = function
        | [] -> Some []
        | p :: rest -> (
            match Hashtbl.find_opt ctx.slots p with
            | Some { value = Some v; _ } -> (
                match gather rest with
                | Some vs -> Some (copy_value v :: vs)
                | None -> None)
            | Some { value = None; _ } | None -> None)
      in
      gather ctx.params

(* Captured (param, value) pairs for failure reports. *)
let snapshot t unit_id =
  match find_unit t unit_id with
  | None -> []
  | Some ctx ->
      List.filter_map
        (fun p ->
          match Hashtbl.find_opt ctx.slots p with
          | Some { value = Some v; _ } -> Some (p, copy_value v)
          | Some { value = None; _ } | None -> None)
        ctx.params

(* Age of the stalest slot: how long since the main program last passed this
   point. *)
let staleness t ~now unit_id =
  match find_unit t unit_id with
  | None -> None
  | Some ctx ->
      if ctx.params = [] then None
      else
        List.fold_left
          (fun acc p ->
            match Hashtbl.find_opt ctx.slots p with
            | Some { value = Some _; updated_at } -> (
                let age = Int64.sub now updated_at in
                match acc with
                | Some worst when worst >= age -> acc
                | Some _ | None -> Some age)
            | Some { value = None; _ } | None -> acc)
          None ctx.params

let updates t unit_id =
  match find_unit t unit_id with Some ctx -> ctx.updates | None -> 0

let total_updates t = t.total_updates
