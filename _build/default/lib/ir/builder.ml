(* Combinator DSL for constructing IR programs. Target systems are written
   against this module; [program] finalises the result by assigning unique,
   stable source locations to every statement. *)

open Ast

(* --- expressions --- *)

let i n = Const (VInt n)
let s str = Const (VStr str)
let bconst x = Const (VBool x)
let unit_e = Const VUnit
let v name = Var name

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)
let ( ^: ) a b = Binop (Concat, a, b)
let not_ e = Unop (Not, e)
let neg e = Unop (Neg, e)
let len e = Unop (Len, e)
let pair a b = Pair (a, b)
let fst_ e = Fst e
let snd_ e = Snd e
let prim name args = Prim (name, args)

(* --- statements (locations filled in by [program]) --- *)

let mk node = { node; loc = Loc.dummy }

let let_ x e = mk (Let (x, e))
let assign x e = mk (Assign (x, e))
let op ?bind kind ~target args = mk (Op { kind; target; args; bind })
let call ?bind func args = mk (Call { func; args; bind })
let if_ c t e = mk (If (c, t, e))
let while_ c body = mk (While (c, body))
let while_true body = mk (While (Const (VBool true), body))
let foreach x e body = mk (Foreach (x, e, body))
let sync lock body = mk (Sync (lock, body))
let try_ body ~exn ~handler = mk (Try (body, exn, handler))
let return e = mk (Return e)
let return_unit = mk (Return (Const VUnit))
let assert_ e msg = mk (Assert (e, msg))
let compute ?(note = "compute") ns = mk (Compute { cost_ns = ns; note })
let compute_us ?(note = "compute") n = compute ~note (Wd_sim.Time.us n)

(* --- effect shortcuts --- *)

let disk_write ~disk ~path ~data = op Disk_write ~target:disk [ path; data ]
let disk_append ~disk ~path ~data = op Disk_append ~target:disk [ path; data ]
let disk_read ?bind ~disk ~path () = op ?bind Disk_read ~target:disk [ path ]
let disk_sync ~disk = op Disk_sync ~target:disk []
let disk_delete ~disk ~path = op Disk_delete ~target:disk [ path ]
let disk_exists ?bind ~disk ~path () = op ?bind Disk_exists ~target:disk [ path ]
let disk_list ?bind ~disk ~prefix () = op ?bind Disk_list ~target:disk [ prefix ]

let net_send ~net ~dst ~payload = op Net_send ~target:net [ dst; payload ]

let net_recv ?bind ~net ~timeout_ms () =
  op ?bind Net_recv ~target:net [ i timeout_ms ]

let queue_put ~queue ~data = op Queue_put ~target:queue [ data ]
let queue_get ?bind ~queue ~timeout_ms () =
  op ?bind Queue_get ~target:queue [ i timeout_ms ]

let mem_alloc ~pool ~size = op Mem_alloc ~target:pool [ size ]
let mem_free ~pool ~size = op Mem_free ~target:pool [ size ]

let state_get ~bind ~global = op ~bind State_get ~target:global []
let state_set ~global ~value = op State_set ~target:global [ value ]

let sleep_ms n = op Sleep_op ~target:"clock" [ i n ]
let log msg = op Log_op ~target:"log" [ msg ]

(* --- functions, entries, programs --- *)

let func ?(annots = []) fname ~params body = { fname; params; body; annots }

let entry ?(args = []) entry_name entry_func =
  { entry_name; entry_func; entry_args = args }

(* Assign unique locations to every statement of every function. *)
let finalize_locs funcs =
  let uid = ref 0 in
  let next () =
    let u = !uid in
    incr uid;
    u
  in
  let rec fix_block fname path block =
    List.mapi
      (fun idx st ->
        let p = path @ [ idx ] in
        let loc = Loc.make ~func:fname ~path:p ~uid:(next ()) in
        let node =
          match st.node with
          | If (c, t, e) -> If (c, fix_block fname (p @ [ 0 ]) t, fix_block fname (p @ [ 1 ]) e)
          | While (c, body) -> While (c, fix_block fname (p @ [ 0 ]) body)
          | Foreach (x, e, body) -> Foreach (x, e, fix_block fname (p @ [ 0 ]) body)
          | Sync (l, body) -> Sync (l, fix_block fname (p @ [ 0 ]) body)
          | Try (body, exn, handler) ->
              Try (fix_block fname (p @ [ 0 ]) body, exn, fix_block fname (p @ [ 1 ]) handler)
          | (Let _ | Assign _ | Op _ | Call _ | Return _ | Assert _ | Compute _ | Hook _)
            as node ->
              node
        in
        { node; loc })
      block
  in
  List.map (fun f -> { f with body = fix_block f.fname [] f.body }) funcs

let program pname ~funcs ~entries =
  { pname; funcs = finalize_locs funcs; entries }
