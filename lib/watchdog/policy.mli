(** Alarm policy: how raw checker failures become reports.

    [confirmations] debounces blips; [dedup_window] suppresses repeats of
    the same finding; [validate] is the §5 false-alarm mitigation (probe the
    impact when a mimic checker fails); the [slow_*] fields drive the
    driver's adaptive fail-slow detection.

    Readers may match on the record freely, but construction goes through
    {!make} / {!default} and the [with_*] builders, so adding a policy
    field never breaks a call site. *)

type t = {
  confirmations : int;
  dedup_window : int64;
  validate : (Report.t -> bool) option;
  suppress_unvalidated : bool;
  slow_floor : int64;
  slow_mult : float;
  slow_min_samples : int;
}

val make :
  ?confirmations:int ->
  ?dedup_window:int64 ->
  ?validate:(Report.t -> bool) ->
  ?suppress_unvalidated:bool ->
  ?slow_floor:int64 ->
  ?slow_mult:float ->
  ?slow_min_samples:int ->
  unit ->
  t
(** Every omitted field takes its {!default} value. *)

val default : t
(** [make ()]: 1 confirmation, 30s dedup window, no validation, 5ms slow
    floor, 20x slow multiplier after 5 samples. Stable across releases. *)

val with_confirmations : int -> t -> t
val with_dedup_window : int64 -> t -> t

val with_slowness : ?floor:int64 -> ?mult:float -> ?min_samples:int -> t -> t
(** Adjust the adaptive-slowness thresholds; omitted parameters keep the
    policy's current values. *)

val with_validation : ?suppress:bool -> (Report.t -> bool) -> t -> t
