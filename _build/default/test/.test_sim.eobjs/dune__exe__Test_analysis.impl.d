test/test_analysis.ml: Alcotest Ast Builder Callgraph Hashtbl List Loc Reduction Regions String Validate Vulnerable Wd_analysis Wd_ir Wd_targets
