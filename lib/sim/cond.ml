(* Condition variables for the cooperative scheduler. Wakers popped by
   [signal] may belong to tasks already woken by something else (a timeout,
   a kill); the scheduler's generation guard makes those calls no-ops, so a
   spurious pop is harmless — waiters must re-check their predicate, exactly
   as with POSIX condition variables. *)

type t = {
  name : string;
  reason : string; (* precomputed: built per-wait this is a measurable cost *)
  reason_timed : string;
  waiters : (unit -> unit) Queue.t;
}

let create name =
  {
    name;
    reason = "cond " ^ name;
    reason_timed = "cond " ^ name ^ " (timed)";
    waiters = Queue.create ();
  }

let name c = c.name
let waiter_count c = Queue.length c.waiters

let wait c =
  Sched.suspend ~reason:c.reason
    ~register:(fun waker -> Queue.push waker c.waiters)

let signal c = if not (Queue.is_empty c.waiters) then (Queue.pop c.waiters) ()

let broadcast c =
  let wakers = Queue.to_seq c.waiters |> List.of_seq in
  Queue.clear c.waiters;
  List.iter (fun w -> w ()) wakers

(* Wait until [pred ()] holds, re-checking after every wake-up. *)
let rec await c pred = if not (pred ()) then begin wait c; await c pred end

(* Wait for the predicate with a deadline; [false] means timed out. *)
let await_timeout c pred ~timeout =
  let s = Sched.get () in
  let deadline = Int64.add (Sched.now s) timeout in
  let rec loop () =
    if pred () then true
    else if Sched.now s >= deadline then false
    else begin
      Sched.suspend ~reason:c.reason_timed
        ~register:(fun waker ->
          Queue.push waker c.waiters;
          Sched.at s deadline waker);
      loop ()
    end
  in
  loop ()
