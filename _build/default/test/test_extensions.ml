(* Tests for the §5.2 extensions: cheap recovery (microreboot) and failure
   reproduction from captured contexts. *)

module Sched = Wd_sim.Sched
module Time = Wd_sim.Time
module Recovery = Wd_watchdog.Recovery
module Report = Wd_watchdog.Report
module Generate = Wd_autowatchdog.Generate
module Reproduce = Wd_autowatchdog.Reproduce
module B = Wd_ir.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- recovery --- *)

let mk_component sched ~name ?(funcs = [ name ]) body =
  let spawn () = Sched.spawn ~name ~daemon:true sched body in
  let task = spawn () in
  (task, fun recovery -> Recovery.register recovery ~name ~funcs ~respawn:spawn ~task)

let test_recovery_reboots_on_report () =
  let sched = Sched.create ~seed:1 () in
  let recovery = Recovery.create ~backoff:(Time.ms 100) sched in
  let spawns = ref 0 in
  let task, register =
    mk_component sched ~name:"worker" ~funcs:[ "worker_fn" ] (fun () ->
        incr spawns;
        Sched.sleep (Time.sec 100))
  in
  ignore task;
  register recovery;
  ignore
    (Sched.spawn sched (fun () ->
         Sched.sleep (Time.ms 10);
         Recovery.action recovery
           (Report.make ~at:(Sched.now sched) ~checker_id:"c"
              ~fkind:Report.Hang
              ~loc:(Wd_ir.Loc.make ~func:"worker_fn" ~path:[] ~uid:1)
              ())));
  ignore (Sched.run ~until:(Time.sec 1) sched);
  check_int "respawned once" 2 !spawns;
  check_int "event logged" 1 (List.length (Recovery.events recovery));
  check_int "restart counted" 1 (Recovery.restarts recovery ~name:"worker")

let test_recovery_unmapped_report_ignored () =
  let sched = Sched.create ~seed:1 () in
  let recovery = Recovery.create sched in
  let _, register = mk_component sched ~name:"w" (fun () -> Sched.sleep (Time.sec 9)) in
  register recovery;
  Recovery.action recovery
    (Report.make ~at:0L ~checker_id:"c" ~fkind:Report.Hang
       ~loc:(Wd_ir.Loc.make ~func:"elsewhere" ~path:[] ~uid:2) ());
  Recovery.action recovery
    (Report.make ~at:0L ~checker_id:"c" ~fkind:Report.Hang ());
  check_int "nothing rebooted" 0 (List.length (Recovery.events recovery))

let test_recovery_backoff () =
  let sched = Sched.create ~seed:1 () in
  let recovery = Recovery.create ~backoff:(Time.sec 5) sched in
  let _, register = mk_component sched ~name:"w" (fun () -> Sched.sleep (Time.sec 99)) in
  register recovery;
  let report at =
    Report.make ~at ~checker_id:"c" ~fkind:Report.Hang
      ~loc:(Wd_ir.Loc.make ~func:"w" ~path:[] ~uid:3) ()
  in
  ignore
    (Sched.spawn sched (fun () ->
         Recovery.action recovery (report 0L);
         Sched.sleep (Time.sec 1);
         (* within backoff: suppressed *)
         Recovery.action recovery (report (Sched.now sched));
         Sched.sleep (Time.sec 5);
         Recovery.action recovery (report (Sched.now sched))));
  ignore (Sched.run ~until:(Time.sec 10) sched);
  check_int "two reboots, one suppressed" 2 (List.length (Recovery.events recovery))

let test_recovery_escalation () =
  let sched = Sched.create ~seed:1 () in
  let recovery = Recovery.create ~backoff:(Time.ms 1) ~max_restarts:3 sched in
  let _, register = mk_component sched ~name:"w" (fun () -> Sched.sleep (Time.sec 99)) in
  register recovery;
  ignore
    (Sched.spawn sched (fun () ->
         for _ = 1 to 6 do
           Sched.sleep (Time.ms 10);
           Recovery.action recovery
             (Report.make ~at:(Sched.now sched) ~checker_id:"c" ~fkind:Report.Hang
                ~loc:(Wd_ir.Loc.make ~func:"w" ~path:[] ~uid:4) ())
         done));
  ignore (Sched.run ~until:(Time.sec 2) sched);
  check_int "capped at max_restarts" 3 (List.length (Recovery.events recovery));
  check "escalated" true (Recovery.escalations recovery = [ "w" ])

let test_recovery_supervisor_restarts_dead_task () =
  let sched = Sched.create ~seed:1 () in
  let recovery = Recovery.create ~backoff:(Time.ms 100) sched in
  let lives = ref 0 in
  let _, register =
    mk_component sched ~name:"fragile" (fun () ->
        incr lives;
        Sched.sleep (Time.ms 50);
        if !lives <= 2 then failwith "dies twice, then lives")
  in
  register recovery;
  ignore (Recovery.supervise ~period:(Time.ms 200) recovery);
  ignore (Sched.run ~until:(Time.sec 5) sched);
  check_int "respawned until stable" 3 !lives;
  check_int "two supervisor reboots" 2 (List.length (Recovery.events recovery))

(* --- reproduce --- *)

let tiny =
  B.program "tiny"
    ~funcs:
      [
        B.func "loop" ~params:[]
          [
            B.while_true
              [
                B.sleep_ms 100;
                B.let_ "p" (B.s "data/f");
                B.let_ "d" (B.prim "bytes_of_str" [ B.s "payload" ]);
                B.call "save" [ B.v "p"; B.v "d" ];
              ];
          ];
        B.func "save" ~params:[ "p"; "d" ]
          [ B.disk_write ~disk:"d0" ~path:(B.v "p") ~data:(B.v "d"); B.return_unit ];
      ]
    ~entries:[ B.entry "loop" "loop" ]

let fake_report g payload =
  let u = List.hd g.Generate.units in
  Report.make ~at:0L ~checker_id:u.Wd_analysis.Reduction.unit_id
    ~fkind:(Report.Assert_fail "read-back checksum mismatch on d0") ~payload ()

let payload =
  [ ("arg0", Wd_ir.Ast.VStr "data/f");
    ("arg1", Wd_ir.Ast.VBytes (Bytes.of_string "payload")) ]

let test_reproduce_clean_passes () =
  let g = Generate.analyze tiny in
  match Reproduce.run g ~report:(fake_report g payload) with
  | Reproduce.Not_reproduced -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Reproduce.pp_outcome o

let test_reproduce_with_fault () =
  let g = Generate.analyze tiny in
  let fault =
    {
      Wd_env.Faultreg.id = "corrupt";
      site_pattern = "disk:d0:write:*";
      behaviour = Wd_env.Faultreg.Corrupt;
      start_at = 0L;
      stop_at = Time.never;
      once = false;
    }
  in
  match Reproduce.run ~fault g ~report:(fake_report g payload) with
  | Reproduce.Reproduced (Report.Assert_fail _) -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Reproduce.pp_outcome o

let test_reproduce_hang_fault () =
  let g = Generate.analyze tiny in
  let fault =
    {
      Wd_env.Faultreg.id = "hang";
      site_pattern = "disk:d0:write:*";
      behaviour = Wd_env.Faultreg.Hang;
      start_at = 0L;
      stop_at = Time.never;
      once = false;
    }
  in
  match Reproduce.run ~fault ~timeout:(Time.sec 2) g ~report:(fake_report g payload) with
  | Reproduce.Reproduced Report.Hang -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Reproduce.pp_outcome o

let test_reproduce_unknown_checker () =
  let g = Generate.analyze tiny in
  let report =
    Report.make ~at:0L ~checker_id:"nonexistent__u9" ~fkind:Report.Hang ~payload ()
  in
  check "unknown" true (Reproduce.run g ~report = Reproduce.Unknown_checker)

let test_reproduce_incomplete_context () =
  let g = Generate.analyze tiny in
  let report = fake_report g [ ("arg0", Wd_ir.Ast.VStr "data/f") ] in
  check "incomplete" true (Reproduce.run g ~report = Reproduce.Context_incomplete)

let () =
  Alcotest.run "wd_extensions"
    [
      ( "recovery",
        [
          Alcotest.test_case "reboot on report" `Quick test_recovery_reboots_on_report;
          Alcotest.test_case "unmapped reports ignored" `Quick
            test_recovery_unmapped_report_ignored;
          Alcotest.test_case "backoff" `Quick test_recovery_backoff;
          Alcotest.test_case "escalation" `Quick test_recovery_escalation;
          Alcotest.test_case "supervisor" `Quick
            test_recovery_supervisor_restarts_dead_task;
        ] );
      ( "reproduce",
        [
          Alcotest.test_case "clean replay passes" `Quick test_reproduce_clean_passes;
          Alcotest.test_case "fault replay reproduces" `Quick test_reproduce_with_fault;
          Alcotest.test_case "hang replay reproduces" `Quick test_reproduce_hang_fault;
          Alcotest.test_case "unknown checker" `Quick test_reproduce_unknown_checker;
          Alcotest.test_case "incomplete context" `Quick
            test_reproduce_incomplete_context;
        ] );
    ]
