(* Execution tracing: a bounded ring buffer of scheduler events (spawns,
   blocks with reasons, wakes, exits) and — when the interpreter runs with
   tracing enabled — operation-level events (start/end/fail of environment
   operations, keyed "kind:target:operand-prefix"). Opt-in via
   [Sched.set_trace]; the last events before a detection are the postmortem
   timeline a report invites you to read, and the op events are the raw
   material the trace miner turns into inferred checkers. *)

type kind =
  | Spawned
  | Blocked of string  (* the suspend reason *)
  | Resumed
  | Finished of string (* "exited" / "failed: ..." / "killed" *)
  | Op_start of { op : string; node : string; func : string }
  | Op_end of { op : string; node : string; func : string; dur : int64 }
  | Op_fail of { op : string; node : string; func : string; err : string }

type event = { at : int64; task_id : int; task_name : string; kind : kind }

type t = {
  capacity : int;
  buf : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; next = 0; total = 0 }

let record t ~at ~task_id ~task_name kind =
  t.buf.(t.next) <- Some { at; task_id; task_name; kind };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let total t = t.total

(* The most recent [n] events, oldest first. *)
let recent t n =
  let n = min n (min t.total t.capacity) in
  let start = (t.next - n + t.capacity * 2) mod t.capacity in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

(* Events with global index >= [cursor], oldest first, and the new cursor
   (= total). Events that already fell off the ring are lost — the second
   component counts them so an incremental consumer can tell. *)
let since t cursor =
  let cursor = max 0 cursor in
  let available = min t.total t.capacity in
  let oldest_kept = t.total - available in
  let dropped = max 0 (oldest_kept - cursor) in
  let n = max 0 (t.total - max cursor oldest_kept) in
  (recent t n, dropped, t.total)

let kind_name = function
  | Spawned -> "spawned"
  | Blocked reason -> "blocked: " ^ reason
  | Resumed -> "resumed"
  | Finished how -> "finished: " ^ how
  | Op_start { op; node; _ } -> Printf.sprintf "op-start %s @%s" op node
  | Op_end { op; node; dur; _ } ->
      Printf.sprintf "op-end %s @%s (%Ldns)" op node dur
  | Op_fail { op; node; err; _ } ->
      Printf.sprintf "op-fail %s @%s: %s" op node err

let pp_event ppf e =
  Fmt.pf ppf "[%a] #%d %-24s %s" Time.pp e.at e.task_id e.task_name
    (kind_name e.kind)

let dump ?(n = 50) ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (recent t n)
