lib/sim/trace.ml: Array Fmt List Time
