(* Tests for the static-analysis library: call graph, regions, vulnerable
   operations, and program logic reduction. *)

open Wd_analysis
open Wd_ir
open Ast
module B = Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small system with a daemon loop, a call chain with a vulnerable op at
   the bottom, and an initialisation function that must be excluded. *)
let sample =
  B.program "sample"
    ~funcs:
      [
        B.func "init" ~params:[]
          [
            B.disk_write ~disk:"d" ~path:(B.s "boot/marker")
              ~data:(B.prim "bytes_of_str" [ B.s "up" ]);
            B.return_unit;
          ];
        B.func "daemon" ~params:[]
          [
            B.call "init" [];
            B.while_true
              [ B.sleep_ms 100; B.call "work" [ B.s "item" ] ];
          ];
        B.func "work" ~params:[ "x" ]
          [
            B.compute_us 2;
            B.call "store" [ B.v "x" ];
            B.return_unit;
          ];
        B.func "store" ~params:[ "x" ]
          [
            B.let_ "data" (B.prim "bytes_of_str" [ B.v "x" ]);
            B.sync "store_lock"
              [ B.disk_write ~disk:"d" ~path:(B.s "data/x") ~data:(B.v "data") ];
            B.return_unit;
          ];
        B.func "unreachable" ~params:[]
          [ B.disk_sync ~disk:"d"; B.return_unit ];
      ]
    ~entries:[ B.entry "daemon" "daemon" ]

let () = Validate.check_exn sample

(* --- callgraph --- *)

let test_callgraph_callees () =
  let cg = Callgraph.build sample in
  Alcotest.(check (list string)) "daemon calls" [ "init"; "work" ]
    (List.map fst (Callgraph.callees cg "daemon"));
  Alcotest.(check (list string)) "store calls nothing" []
    (List.map fst (Callgraph.callees cg "store"))

let test_callgraph_reachable () =
  let cg = Callgraph.build sample in
  Alcotest.(check (list string)) "reachable from daemon"
    [ "daemon"; "init"; "work"; "store" ]
    (Callgraph.reachable cg "daemon")

let test_callgraph_depths () =
  let cg = Callgraph.build sample in
  let d = Callgraph.depths cg "daemon" in
  check_int "daemon" 0 (Hashtbl.find d "daemon");
  check_int "work" 1 (Hashtbl.find d "work");
  check_int "store" 2 (Hashtbl.find d "store")

let test_callgraph_recursion () =
  let rec_prog =
    B.program "r"
      ~funcs:
        [
          B.func "a" ~params:[] [ B.call "b" [] ];
          B.func "b" ~params:[] [ B.call "a" [] ];
          B.func "c" ~params:[] [ B.return_unit ];
        ]
      ~entries:[]
  in
  let cg = Callgraph.build rec_prog in
  check "a recursive" true (Callgraph.is_recursive cg "a");
  check "c not" false (Callgraph.is_recursive cg "c")

(* --- regions --- *)

let test_regions_found () =
  let regions = Regions.find sample in
  check_int "one loop region" 1 (List.length regions);
  let r = List.hd regions in
  Alcotest.(check string) "rooted in daemon" "daemon" r.Regions.root_func;
  check "reaches store" true (List.mem "store" r.Regions.reachable);
  check "init excluded from region body" true
    (not (List.mem "init" (List.map fst (Callgraph.callees_of_block r.Regions.body []))))

let test_regions_annotated () =
  let prog =
    B.program "a"
      ~funcs:
        [
          B.func ~annots:[ Long_running ] "svc" ~params:[]
            [ B.disk_sync ~disk:"d"; B.return_unit ];
        ]
      ~entries:[]
  in
  check_int "annotated body region" 1 (List.length (Regions.find prog))

(* --- vulnerable ops --- *)

let test_vulnerable_classification () =
  let cfg = Vulnerable.default in
  check "disk write" true (Vulnerable.kind_vulnerable cfg Disk_write);
  check "net send" true (Vulnerable.kind_vulnerable cfg Net_send);
  check "mem alloc" true (Vulnerable.kind_vulnerable cfg Mem_alloc);
  check "net recv not" false (Vulnerable.kind_vulnerable cfg Net_recv);
  check "state get not" false (Vulnerable.kind_vulnerable cfg State_get);
  check "log not" false (Vulnerable.kind_vulnerable cfg Log_op)

let test_vulnerable_collect () =
  let store = find_func sample "store" in
  let vops = Vulnerable.collect_in_func Vulnerable.default store in
  (* the sync acquisition and the disk write *)
  check_int "two vulnerable ops" 2 (List.length vops);
  check "sync key" true
    (List.exists (fun v -> v.Vulnerable.vkey = "sync:store_lock:") vops);
  check "write key carries path prefix" true
    (List.exists (fun v -> v.Vulnerable.vkey = "disk_write:d:data/x") vops)

let test_vulnerable_prefix_distinguishes () =
  let f =
    B.func "w2" ~params:[ "id" ]
      [
        B.let_ "p1" (B.prim "concat" [ B.s "blk/"; B.v "id" ]);
        B.let_ "p2" (B.prim "concat" [ B.s "meta/"; B.v "id" ]);
        B.disk_write ~disk:"d" ~path:(B.v "p1") ~data:(B.prim "bytes_of_str" [ B.s "x" ]);
        B.disk_write ~disk:"d" ~path:(B.v "p2") ~data:(B.prim "bytes_of_str" [ B.s "y" ]);
        B.return_unit;
      ]
  in
  let prog = B.program "p" ~funcs:[ f ] ~entries:[] in
  let vops = Vulnerable.collect_in_func Vulnerable.default (find_func prog "w2") in
  let keys = List.map (fun v -> v.Vulnerable.vkey) vops in
  check "distinct families" true
    (List.mem "disk_write:d:blk/" keys && List.mem "disk_write:d:meta/" keys)

(* --- reduction --- *)

let test_reduction_units () =
  let r = Reduction.reduce sample in
  (* store's sync+write becomes one unit; init and unreachable contribute
     nothing (not in a long-running region) *)
  check_int "one unit" 1 (List.length r.Reduction.units);
  let u = List.hd r.Reduction.units in
  Alcotest.(check string) "from store" "store" u.Reduction.source_func;
  check "keeps the lock" true (List.mem "sync:store_lock:" u.Reduction.keys);
  check "keeps the write" true (List.mem "disk_write:d:data/x" u.Reduction.keys)

let test_reduction_excludes_init () =
  let r = Reduction.reduce sample in
  check "no unit anchored in init" true
    (List.for_all (fun u -> u.Reduction.source_func <> "init") r.Reduction.units);
  check "no unit from unreachable code" true
    (List.for_all (fun u -> u.Reduction.source_func <> "unreachable") r.Reduction.units)

let test_reduction_loops_flattened () =
  (* a loop of N writes reduces to a single mimicked write *)
  let prog =
    B.program "p"
      ~funcs:
        [
          B.func "loopy" ~params:[]
            [
              B.while_true
                [
                  B.sleep_ms 10;
                  B.foreach "i" (B.prim "range" [ B.i 100 ])
                    [
                      B.disk_write ~disk:"d"
                        ~path:(B.prim "concat" [ B.s "f/"; B.prim "str_of_int" [ B.v "i" ] ])
                        ~data:(B.prim "bytes_of_str" [ B.s "x" ]);
                    ];
                ];
            ];
        ]
      ~entries:[ B.entry "loopy" "loopy" ]
  in
  let r = Reduction.reduce prog in
  check_int "single unit despite the loop" 1 (List.length r.Reduction.units);
  let u = List.hd r.Reduction.units in
  (* the unit body is the write alone: no While/Foreach wrapper *)
  check "flat body" true
    (List.for_all
       (fun st ->
         match st.node with While _ | Foreach _ -> false | _ -> true)
       u.Reduction.ufunc.body)

let test_reduction_dedup_similar () =
  let prog =
    B.program "p"
      ~funcs:
        [
          B.func "f" ~params:[]
            [
              B.while_true
                [
                  B.sleep_ms 10;
                  B.disk_append ~disk:"d" ~path:(B.s "log/a")
                    ~data:(B.prim "bytes_of_str" [ B.s "1" ]);
                  B.disk_append ~disk:"d" ~path:(B.s "log/b")
                    ~data:(B.prim "bytes_of_str" [ B.s "2" ]);
                  B.disk_append ~disk:"d" ~path:(B.s "log/a")
                    ~data:(B.prim "bytes_of_str" [ B.s "3" ]);
                ];
            ];
        ]
      ~entries:[ B.entry "f" "f" ]
  in
  let with_dedup = Reduction.reduce prog in
  (* log/a and log/b are distinct prefixes; the second log/a write is similar
     and removed *)
  check_int "dedup keeps two" 2 (List.length with_dedup.Reduction.units);
  let no_dedup =
    Reduction.reduce
      ~opts:{ Reduction.default_options with Reduction.dedup_similar = false }
      prog
  in
  check_int "ablation keeps three" 3 (List.length no_dedup.Reduction.units)

let test_reduction_global_along_chain () =
  (* caller and callee touch the same operation family: global reduction
     keeps only the callee's *)
  let prog =
    B.program "p"
      ~funcs:
        [
          B.func "top" ~params:[]
            [
              B.while_true
                [
                  B.sleep_ms 10;
                  B.disk_sync ~disk:"d";
                  B.call "bottom" [];
                ];
            ];
          B.func "bottom" ~params:[] [ B.disk_sync ~disk:"d"; B.return_unit ];
        ]
      ~entries:[ B.entry "top" "top" ]
  in
  let r = Reduction.reduce prog in
  let sources = List.map (fun u -> u.Reduction.source_func) r.Reduction.units in
  check "only the callee retains it" true (sources = [ "bottom" ]);
  let ablated =
    Reduction.reduce
      ~opts:{ Reduction.default_options with Reduction.global_reduction = false }
      prog
  in
  check_int "ablation keeps both" 2 (List.length ablated.Reduction.units)

let test_reduction_instrumented_valid () =
  let r = Reduction.reduce sample in
  Validate.check_exn r.Reduction.instrumented;
  (* hooks and captures were inserted *)
  let rec count_hooks block =
    List.fold_left
      (fun n st ->
        n
        +
        match st.node with
        | Hook _ -> 1
        | If (_, t, e) -> count_hooks t + count_hooks e
        | While (_, b) | Foreach (_, _, b) | Sync (_, b) -> count_hooks b
        | Try (b, _, h) -> count_hooks b + count_hooks h
        | _ -> 0)
      0 block
  in
  let hooks =
    List.fold_left (fun n f -> n + count_hooks f.body) 0 r.Reduction.instrumented.funcs
  in
  check_int "hook per capture site" (List.length r.Reduction.hooks) hooks

let test_reduction_preserves_original_locs () =
  let r = Reduction.reduce sample in
  (* every uid present in the original program is still present (identical
     func/path) in the instrumented program *)
  let index prog =
    let tbl = Hashtbl.create 64 in
    let rec go block =
      List.iter
        (fun st ->
          Hashtbl.replace tbl (Loc.uid st.loc) (Loc.to_string st.loc);
          match st.node with
          | If (_, t, e) -> go t; go e
          | While (_, b) | Foreach (_, _, b) | Sync (_, b) -> go b
          | Try (b, _, h) -> go b; go h
          | _ -> ())
        block
    in
    List.iter (fun f -> go f.body) prog.funcs;
    tbl
  in
  let orig = index sample and inst = index r.Reduction.instrumented in
  Hashtbl.iter
    (fun uid loc ->
      match Hashtbl.find_opt inst uid with
      | Some loc' -> check "loc preserved" true (String.equal loc loc')
      | None -> Alcotest.failf "uid %d lost by instrumentation" uid)
    orig

let test_reduction_params_match_hooks () =
  let r = Reduction.reduce sample in
  List.iter
    (fun (u : Reduction.unit_) ->
      let hook_params =
        List.concat_map
          (fun h ->
            if h.Reduction.hi_unit = u.Reduction.unit_id then
              List.map (fun (p, _, _) -> p) h.Reduction.hi_captures
            else [])
          r.Reduction.hooks
      in
      List.iter
        (fun (p, _) -> check "param fed by a hook" true (List.mem p hook_params))
        u.Reduction.params)
    r.Reduction.units

(* Property: every reduced unit key corresponds to a vulnerable op key of the
   original program (reduction never invents checks). *)
let unit_keys_sound prog =
  let r = Reduction.reduce prog in
  let all_vulnerable =
    List.concat_map
      (fun f ->
        List.map (fun v -> v.Vulnerable.vkey)
          (Vulnerable.collect_in_func Vulnerable.default f))
      prog.funcs
  in
  List.for_all
    (fun (u : Reduction.unit_) ->
      List.for_all (fun k -> List.mem k all_vulnerable) u.Reduction.keys)
    r.Reduction.units

let test_reduction_sound_on_targets () =
  check "kvs" true (unit_keys_sound (Wd_targets.Kvs.program ()));
  check "zkmini" true (unit_keys_sound (Wd_targets.Zkmini.program ()));
  check "dfsmini" true (unit_keys_sound (Wd_targets.Dfsmini.program ()));
  check "cstore" true (unit_keys_sound (Wd_targets.Cstore.program ()));
  check "mqbroker" true (unit_keys_sound (Wd_targets.Mqbroker.program ()))

(* §4.1: developers can tag custom vulnerable functions — every effectful
   operation inside becomes checkable, here a state write that the default
   classification ignores. *)
let test_reduction_annotated_function () =
  let mk annots =
    B.program "a"
      ~funcs:
        [
          B.func "loop" ~params:[]
            [ B.while_true [ B.sleep_ms 50; B.call "update" [] ] ];
          B.func ~annots "update" ~params:[]
            [ B.state_set ~global:"watermark" ~value:(B.i 1); B.return_unit ];
        ]
      ~entries:[ B.entry "loop" "loop" ]
  in
  let plain = Reduction.reduce (mk []) in
  let tagged = Reduction.reduce (mk [ Vulnerable_annot ]) in
  check "state op ignored by default" true
    (List.for_all
       (fun (u : Reduction.unit_) -> u.Reduction.source_func <> "update")
       plain.Reduction.units);
  check "state op retained when annotated" true
    (List.exists
       (fun (u : Reduction.unit_) ->
         u.Reduction.source_func = "update"
         && List.mem "state_set:watermark:" u.Reduction.keys)
       tagged.Reduction.units)

let test_reduction_stats_shape () =
  let r = Reduction.reduce (Wd_targets.Kvs.program ()) in
  let s = r.Reduction.stats in
  check "reduction shrinks" true (s.Reduction.reduced_stmts < s.Reduction.total_stmts);
  check "tens of checkers" true (s.Reduction.unit_count >= 10);
  check "retained bounded by vulnerable" true
    (s.Reduction.retained_ops <= s.Reduction.vulnerable_ops)

let () =
  Alcotest.run "wd_analysis"
    [
      ( "callgraph",
        [
          Alcotest.test_case "callees" `Quick test_callgraph_callees;
          Alcotest.test_case "reachable" `Quick test_callgraph_reachable;
          Alcotest.test_case "depths" `Quick test_callgraph_depths;
          Alcotest.test_case "recursion" `Quick test_callgraph_recursion;
        ] );
      ( "regions",
        [
          Alcotest.test_case "loop regions" `Quick test_regions_found;
          Alcotest.test_case "annotated regions" `Quick test_regions_annotated;
        ] );
      ( "vulnerable",
        [
          Alcotest.test_case "classification" `Quick test_vulnerable_classification;
          Alcotest.test_case "collection" `Quick test_vulnerable_collect;
          Alcotest.test_case "prefix keys" `Quick test_vulnerable_prefix_distinguishes;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "units" `Quick test_reduction_units;
          Alcotest.test_case "excludes init" `Quick test_reduction_excludes_init;
          Alcotest.test_case "loops flattened" `Quick test_reduction_loops_flattened;
          Alcotest.test_case "dedup similar (+ablation)" `Quick
            test_reduction_dedup_similar;
          Alcotest.test_case "global reduction (+ablation)" `Quick
            test_reduction_global_along_chain;
          Alcotest.test_case "instrumented program valid" `Quick
            test_reduction_instrumented_valid;
          Alcotest.test_case "original locs preserved" `Quick
            test_reduction_preserves_original_locs;
          Alcotest.test_case "params fed by hooks" `Quick
            test_reduction_params_match_hooks;
          Alcotest.test_case "sound on all targets" `Quick
            test_reduction_sound_on_targets;
          Alcotest.test_case "annotated functions (§4.1)" `Quick
            test_reduction_annotated_function;
          Alcotest.test_case "stats shape on kvs" `Quick test_reduction_stats_shape;
        ] );
    ]
