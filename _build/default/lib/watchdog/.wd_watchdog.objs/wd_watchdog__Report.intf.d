lib/watchdog/report.mli: Format Wd_ir
