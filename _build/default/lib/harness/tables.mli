(** Fixed-width ASCII table rendering for experiment output. *)

val render : header:string list -> string list list -> string
val print : header:string list -> string list list -> unit
val latency_cell : int64 option -> string
val bool_cell : bool -> string
val mark_cell : bool -> string
