(* End-to-end experiment tests: the campaign machinery reproduces the
   paper's qualitative claims. These run whole-system simulations with
   shortened windows to keep `dune runtest` snappy. *)

open Wd_harness
module Time = Wd_sim.Time

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let quick_cfg =
  { Campaign.default_config with Campaign.warmup = Time.sec 6; observe = Time.sec 20 }

let outcome r name = List.assoc name r.Campaign.r_outcomes

let test_zk2201_story () =
  let r = Campaign.run_scenario ~cfg:quick_cfg "zk-2201" in
  let mimic = outcome r "mimic" in
  check "mimic detects" true mimic.Campaign.o_detected;
  check "mimic pinpoints the commit path" true
    (mimic.Campaign.o_pinpoint = Some Campaign.Exact);
  check "within ten seconds" true
    (match mimic.Campaign.o_latency with
    | Some l -> l < Time.sec 10
    | None -> false);
  check "heartbeat blind" false (outcome r "heartbeat").Campaign.o_detected;
  check "no false alarms before injection" true (r.Campaign.r_pre_inject_reports = 0)

let test_silent_stuck_only_mimic () =
  let r = Campaign.run_scenario ~cfg:quick_cfg "cs-compaction-stuck" in
  check "mimic detects" true (outcome r "mimic").Campaign.o_detected;
  check "probe blind" false (outcome r "probe").Campaign.o_detected;
  check "heartbeat blind" false (outcome r "heartbeat").Campaign.o_detected;
  check "observer blind (clients unaffected)" false
    (outcome r "observer").Campaign.o_detected;
  (* the gray failure leaves the workload healthy *)
  check "clients fine" true (r.Campaign.r_workload_ok_ratio > 0.99)

let test_crash_favors_extrinsic () =
  let r = Campaign.run_scenario ~cfg:quick_cfg "kvs-crash" in
  check "heartbeat detects crash" true (outcome r "heartbeat").Campaign.o_detected;
  check "watchdog died with the process" false (outcome r "mimic").Campaign.o_detected

let test_corruption_needs_mimic () =
  let r = Campaign.run_scenario ~cfg:quick_cfg "kvs-seg-corrupt" in
  check "mimic detects" true (outcome r "mimic").Campaign.o_detected;
  check "exact pinpoint" true
    ((outcome r "mimic").Campaign.o_pinpoint = Some Campaign.Exact);
  check "signal blind" false (outcome r "signal").Campaign.o_detected

let test_fault_free_accuracy () =
  List.iter
    (fun sys ->
      (* full default window: long enough for progress-checker staleness
         thresholds, which a shortened window would never exercise *)
      let ff = Campaign.run_fault_free sys in
      check_int (sys ^ " mimic clean") 0 ff.Campaign.ff_mimic_fp;
      check_int (sys ^ " probe clean") 0 ff.Campaign.ff_probe_fp;
      check_int (sys ^ " hb clean") 0 ff.Campaign.ff_heartbeat_fp;
      check (sys ^ " workload healthy") true (ff.Campaign.ff_workload_ok_ratio > 0.95))
    Systems.all_systems

let test_context_ablation () =
  let rows = Experiments.e8_run () in
  match rows with
  | [ generated; naive ] ->
      check_int "context sync: no false alarms" 0 generated.Experiments.e8_false_alarms;
      check "context sync: not-ready checkers skip" true
        (generated.Experiments.e8_skips > 0);
      check "naive checkers raise spurious alarms" true
        (naive.Experiments.e8_false_alarms > 0)
  | _ -> Alcotest.fail "two rows"

let test_isolation_properties () =
  let r = Experiments.e10_run () in
  check "scratch namespace disjoint" true r.Experiments.e10_scratch_disjoint;
  check "driver survives crashing checker" true r.Experiments.e10_driver_survives;
  check "main program unperturbed" true r.Experiments.e10_main_unperturbed

let test_generation_stats () =
  let rows = Experiments.e6_run () in
  check_int "five targets" 5 (List.length rows);
  List.iter
    (fun (name, (g : Wd_autowatchdog.Generate.generated), _ms) ->
      let s = g.Wd_autowatchdog.Generate.red.Wd_analysis.Reduction.stats in
      check (name ^ " checkers generated") true (s.Wd_analysis.Reduction.unit_count > 0);
      check
        (name ^ " reduction shrinks the program")
        true
        (s.Wd_analysis.Reduction.reduced_stmts < s.Wd_analysis.Reduction.total_stmts))
    rows

let test_classify_checker () =
  check "probe" true (Campaign.classify_checker "probe:x" = `Probe);
  check "signal" true (Campaign.classify_checker "signal:y" = `Signal);
  check "mimic unit" true (Campaign.classify_checker "save__u0" = `Mimic);
  check "naive counts as mimic" true (Campaign.classify_checker "naive:u" = `Mimic)

let test_scenario_catalog_consistent () =
  List.iter
    (fun s ->
      check
        (s.Wd_faults.Catalog.sid ^ " system known")
        true
        (List.mem s.Wd_faults.Catalog.system Systems.all_systems);
      (* ground-truth functions must exist in the target program *)
      match s.Wd_faults.Catalog.truth_func with
      | None -> ()
      | Some f ->
          let prog =
            match s.Wd_faults.Catalog.system with
            | "kvs" -> Wd_targets.Kvs.program ()
            | "zkmini" -> Wd_targets.Zkmini.program ()
            | "dfsmini" -> Wd_targets.Dfsmini.program ()
            | "cstore" -> Wd_targets.Cstore.program ()
            | "mqbroker" -> Wd_targets.Mqbroker.program ()
            | _ -> assert false
          in
          check (s.Wd_faults.Catalog.sid ^ " truth exists") true
            (Wd_ir.Ast.has_func prog f))
    Wd_faults.Catalog.all

(* Full-catalog conformance: every scenario's measured detections match its
   paper-informed prediction (the "as predicted" column of E2). *)
let test_catalog_conformance () =
  List.iter
    (fun s ->
      if s.Wd_faults.Catalog.special <> Some "crash" then begin
        (* slow-building faults (the leak) need the full observation
           window, so this one uses the default campaign config *)
        let r = Campaign.run_scenario s.Wd_faults.Catalog.sid in
        check
          (s.Wd_faults.Catalog.sid ^ " as predicted")
          true
          (Experiments.e2_matches_expectation r)
      end)
    Wd_faults.Catalog.all

(* Load plane: a closed-loop run is a pure function of (seed, workload) —
   every counter and percentile bit-identical across repeats — and an
   open-loop run offered more than the system can absorb sheds the excess
   instead of queueing without bound. *)
let load_run gen =
  let sched = Wd_sim.Sched.create ~seed:9 () in
  let reg = Wd_env.Faultreg.create () in
  let booted =
    Systems.boot ~sched ~reg ~mode:Systems.Wd_generated "kvs"
  in
  Loadgen.drive (gen sched booted)

let test_loadgen_deterministic () =
  let closed sched (b : Systems.booted) =
    Loadgen.spawn_closed ~sched ~clients:8 ~think:(Wd_sim.Time.us 100)
      ~requests:3_000 ~op:b.Systems.b_client ()
  in
  let r1 = load_run closed and r2 = load_run closed in
  (* lr_wall_s is host time — everything else must be bit-identical *)
  check "deterministic across repeats" true
    ({ r1 with Loadgen.lr_wall_s = 0. } = { r2 with Loadgen.lr_wall_s = 0. });
  check "all requests completed" true (r1.Loadgen.lr_requests = 3_000);
  check "all ok" true (r1.Loadgen.lr_ok = 3_000);
  check "p50 <= p99" true (r1.Loadgen.lr_p50 <= r1.Loadgen.lr_p99);
  check "p99 <= max" true (r1.Loadgen.lr_p99 <= r1.Loadgen.lr_max);
  check "positive throughput" true (Loadgen.throughput_rps r1 > 0.)

let test_loadgen_open_sheds () =
  let open_ sched (b : Systems.booted) =
    (* far above any single node's capacity, tiny in-flight window *)
    Loadgen.spawn_open ~sched ~rate_rps:500_000 ~max_inflight:4
      ~requests:5_000 ~op:b.Systems.b_client ()
  in
  let r = load_run open_ in
  check "accounted every arrival" true
    (r.Loadgen.lr_requests + r.Loadgen.lr_shed = 5_000);
  check "overload sheds" true (r.Loadgen.lr_shed > 0)

let test_tables_render () =
  let text =
    Tables.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  check "renders" true (String.length text > 0);
  check "has rules" true (String.contains text '+')

let () =
  Alcotest.run "wd_harness"
    [
      ( "campaign",
        [
          Alcotest.test_case "zk-2201 story" `Slow test_zk2201_story;
          Alcotest.test_case "silent stuck: only mimic" `Slow
            test_silent_stuck_only_mimic;
          Alcotest.test_case "crash favours extrinsic" `Slow
            test_crash_favors_extrinsic;
          Alcotest.test_case "corruption needs mimic" `Slow
            test_corruption_needs_mimic;
          Alcotest.test_case "fault-free accuracy" `Slow test_fault_free_accuracy;
          Alcotest.test_case "full-catalog conformance" `Slow
            test_catalog_conformance;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "context-sync ablation (E8)" `Slow test_context_ablation;
          Alcotest.test_case "isolation (E10)" `Slow test_isolation_properties;
          Alcotest.test_case "generation stats (E6)" `Quick test_generation_stats;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "checker classification" `Quick test_classify_checker;
          Alcotest.test_case "catalog consistency" `Quick
            test_scenario_catalog_consistent;
          Alcotest.test_case "table rendering" `Quick test_tables_render;
          Alcotest.test_case "loadgen deterministic" `Quick
            test_loadgen_deterministic;
          Alcotest.test_case "loadgen open-loop sheds overload" `Quick
            test_loadgen_open_sheds;
        ] );
    ]
