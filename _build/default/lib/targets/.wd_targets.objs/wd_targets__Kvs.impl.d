lib/targets/kvs.ml: Ast Builder Fmt Interp List Runtime Wd_env Wd_ir Wd_sim
