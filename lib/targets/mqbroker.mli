(** mqbroker — a Kafka-like single-partition message broker: producers
    append records to segment files under the log lock; a delivery loop
    reads segments back and pushes them to the consumer endpoint; a
    retention cleaner deletes old segments; a stats loop gossips to a
    monitor.

    Its gray failures complement the other targets: a silently stuck
    retention cleaner, a consumer delivery link that blocks the sender
    while producers stay healthy, and silent append corruption. *)

val node : string
val consumer_node : string
val monitor_node : string
val disk_name : string
val net_name : string
val mem_name : string
val request_queue : string
val records_per_segment : int
val retention_segments : int

val program : unit -> Wd_ir.Ast.program
val broker_entries : string list
val consumer_entries : string list

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Wd_ir.Runtime.resources;
  prog : Wd_ir.Ast.program;
  broker : Wd_ir.Interp.t;
  consumer : Wd_ir.Interp.t;
  disk : Wd_env.Disk.t;
  net : Wd_ir.Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
}

val boot :
  ?engine:Wd_ir.Interp.engine ->
  ?mem_capacity:int ->
  sched:Wd_sim.Sched.t ->
  reg:Wd_env.Faultreg.t ->
  prog:Wd_ir.Ast.program ->
  unit ->
  t

val start : t -> Wd_sim.Sched.task list

val produce :
  ?timeout:int64 -> t -> data:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val next_offset : t -> int
val delivered_offset : t -> int
val batches_received : t -> int
val retention_runs : t -> int
val segment_count : t -> int
