(** Probe checkers (Table 2, row 1): act like a special client, invoking the
    public API with pre-supplied input. Perfect accuracy, weak completeness,
    no localisation. *)

val make :
  ?period:int64 ->
  ?timeout:int64 ->
  id:string ->
  (unit -> [ `Ok | `Fail of string ]) ->
  Wd_watchdog.Checker.t

val roundtrip :
  id:string ->
  set:(unit -> [ `Ok of 'a | `Err of string | `Timeout ]) ->
  get:(unit -> [ `Ok of 'b | `Err of string | `Timeout ]) ->
  expect:('b -> bool) ->
  Wd_watchdog.Checker.t
(** SET-then-GET round trip through a kvs-style API, verifying the value. *)
