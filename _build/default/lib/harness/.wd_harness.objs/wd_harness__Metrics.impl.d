lib/harness/metrics.ml: Array Campaign Fmt List Wd_sim
