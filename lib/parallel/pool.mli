(** Persistent work-sharing OCaml 5 domain pool with a [map]/[map_reduce]
    API, built for embarrassingly parallel simulation campaigns.

    Every simulation in this repository is a self-contained deterministic
    world (its own scheduler, fault registry and resources; the ambient
    scheduler is domain-local), so independent runs can execute on separate
    domains with no shared state. [map] preserves input order and re-raises
    the first (by input position) exception a task raised, which makes a
    parallel campaign observationally identical to its sequential
    counterpart — only faster.

    A width-W pool is W-1 worker domains plus the submitting domain: during
    [map] the caller drains the batch alongside the workers instead of
    blocking, so the pool never oversubscribes the host. Batch cells are
    handed out by an atomic cursor — one fetch-and-add per cell, no lock on
    the hot path — and submission costs one queue entry per worker, not one
    per cell. Idle pools cost nothing but parked domains, so the intended
    shape is the process-wide {!global} pool, created once and reused by
    every batch; worker domains then keep their domain-local analysis and
    compile caches warm across batches. *)

type t

val create : jobs:int -> t
(** Build a pool of width [max 1 jobs]: [width - 1] worker domains sharing
    one work queue, the caller being the remaining lane during [map]. With
    [jobs <= 1] no domains are spawned and [map] degenerates to [List.map]
    in the calling domain. *)

val jobs : t -> int
(** Parallelism width the pool was created with (>= 1). *)

val shutdown : t -> unit
(** Drain and join the worker domains. Idempotent. Submitting work to a
    pool after shutdown raises [Invalid_argument]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, distributing the calls
    across the pool's worker domains and the calling domain itself.
    Results come back in input order. If any call raises, the exception of
    the lowest-indexed failing element is re-raised in the caller (with its
    backtrace) after all tasks settle. Not re-entrant: [f] must not itself
    call [map] on the same pool. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** Parallel map, then a sequential left fold in the calling domain — the
    reduction order is the input order, keeping the result deterministic
    regardless of completion order. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** Run [f] with a transient pool, shutting it down on exit (also on
    exceptions). [jobs] defaults to {!default_jobs}. Prefer {!global} /
    {!run_map} for campaign workloads — a transient pool pays domain spawn
    and join on every call and starts with cold domain-local caches. *)

val global : ?jobs:int -> unit -> t
(** The process-wide persistent pool, created on first use and reused by
    every subsequent call (and by {!run_map}). [jobs] defaults to
    {!default_jobs} and is clamped to [Domain.recommended_domain_count ()]:
    running more domains than cores is a measured net loss (OCaml 5 minor
    GCs are stop-the-world across domains), and results are identical at
    any width, so the clamp only changes wall-clock. Asking for a different
    effective width than the live pool's shuts the old one down and spawns
    a replacement, so repro/bench flag handling stays cheap and the steady
    state is zero spawns per batch. Shut down automatically at process
    exit; calling {!shutdown} on it earlier is safe — the next [global]
    call revives it. *)

val run_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over the {!global} persistent pool. *)

val default_jobs : unit -> int
(** The [WD_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. Counts the submitting
    domain: width N means N-1 spawned workers. *)

val minor_heap_words : unit -> int option
(** The [WD_MINOR_HEAP] environment variable (per-domain minor heap size in
    words) if set to an integer at or above the runtime's 16384-word floor.
    Applied to every pool lane: worker domains at spawn, the submitting
    domain at pool creation. Purely a wall-clock/memory trade — results are
    identical at any size. *)
