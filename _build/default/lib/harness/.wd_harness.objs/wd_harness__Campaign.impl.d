lib/harness/campaign.ml: Fmt Int64 List Option String Systems Wd_analysis Wd_autowatchdog Wd_detectors Wd_env Wd_faults Wd_ir Wd_parallel Wd_sim Wd_targets Wd_watchdog
