lib/harness/tables.ml: Array Buffer List String Wd_sim
