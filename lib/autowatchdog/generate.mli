(** AutoWatchdog end-to-end (§4): analyse a program, reduce it, package the
    generated checkers with the generic driver, and instrument the main
    program with context hooks. *)

type generated = {
  config : Config.t;
  red : Wd_analysis.Reduction.result;
  units : Wd_analysis.Reduction.unit_ list;  (** after recipe enhancement *)
  watchdog_prog : Wd_ir.Ast.program;         (** all unit functions *)
  watchdog_compiled : Wd_ir.Interp.compiled option;
      (** closure-compiled [watchdog_prog], warmed at analysis time when the
          default engine is [`Compiled] (None under a treewalk default) *)
  callgraph : Wd_analysis.Callgraph.t;
      (** of the original program, built once at analysis time *)
}

val analyze : ?config:Config.t -> Wd_ir.Ast.program -> generated
(** Static half; no simulation needed. *)

val analyze_cached : ?config:Config.t -> Wd_ir.Ast.program -> generated
(** Like {!analyze}, but memoised on a digest of the marshalled
    (config, program) pair: within one domain, repeated boots of one system
    share a single [generated] (physically equal). The cache is
    domain-local, so the lookup path is lock-free under a parallel
    campaign; analysis is a pure function of (config, program), so the
    per-domain copies are structurally identical and campaign results stay
    byte-identical at any [--jobs] width. Use {!analyze} to bypass the
    cache — both produce equal reductions. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of {!analyze_cached} across all domains, since start
    or {!clear_cache}. With W persistent pool workers a system can miss up
    to W times (once per domain) before every lookup hits. *)

val clear_cache : unit -> unit
(** Invalidate every domain's cache (epoch bump, applied lazily on each
    domain's next lookup) and reset the stats. *)

val regions_for_entry_funcs :
  generated -> entry_funcs:string list -> string list
(** Region ids rooted in functions reachable from the given entry functions;
    a node passes its own entries to attach only its own checkers. *)

val attach :
  ?engine:Wd_ir.Interp.engine ->
  ?only_regions:string list ->
  ?progress:int64 ->
  generated ->
  sched:Wd_sim.Sched.t ->
  main:Wd_ir.Interp.t ->
  driver:Wd_watchdog.Driver.t ->
  Wd_watchdog.Wcontext.t
(** Runtime half: create the context table, register hook specs and the
    sink on [main], build one checker-mode interpreter per unit, and add
    the resulting mimic checkers to [driver].

    [main] must have been created over [generated.red.instrumented]; on the
    original program no hooks fire and every context stays NOT_READY.
    [only_regions] restricts attachment to this node's own regions (see
    {!regions_for_entry_funcs}); unfiltered, foreign units stay NOT_READY
    and skip harmlessly. [progress] arms one staleness checker per
    context-fed unit: a context older than the threshold means the region
    stopped making progress without failing any mimicked operation — the
    infinite-loop/stall class operation mimicry cannot see. *)

val register_components :
  Wd_watchdog.Recovery.t ->
  sched:Wd_sim.Sched.t ->
  main:Wd_ir.Interp.t ->
  entries:string list ->
  tasks:Wd_sim.Sched.task list ->
  unit
(** §5.2 wiring: register each entry task as a microreboot component owning
    every function reachable from its entry point. [entries] and [tasks]
    must correspond pairwise (program-entry order, as {!Wd_ir.Interp.start}
    returns them). *)

val checker_of_unit :
  ?engine:Wd_ir.Interp.engine ->
  generated ->
  sched:Wd_sim.Sched.t ->
  wctx:Wd_watchdog.Wcontext.t ->
  res:Wd_ir.Runtime.resources ->
  node:string ->
  Wd_analysis.Reduction.unit_ ->
  Wd_watchdog.Checker.t

val render_checker_source : Wd_analysis.Reduction.unit_ -> string
(** Figure-3-style pseudo-Java rendering of a generated checker. *)

val pp_summary : Format.formatter -> generated -> unit
