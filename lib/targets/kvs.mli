(** kvs — the paper's running example (Figure 1): a key-value store with a
    simple interface (GET, SET, APPEND, DEL) and complex internals: request
    listener, indexer, disk flusher (WAL + segments), replication engine,
    compaction manager, snapshot writer.

    The system is an IR program, so AutoWatchdog can analyse it. Two nodes
    run it: ["kvs1"] (leader) and ["kvs2"] (replica apply loop). *)

(* resource and queue names (fault-site building blocks) *)
val request_queue : string
val leader_node : string
val replica_node : string
val monitor_node : string
val disk_name : string
val replica_disk_name : string
val net_name : string
val mem_name : string

val program : ?leak_bug:bool -> ?deadlock_bug:bool -> unit -> Wd_ir.Ast.program
(** The kvs IR program. [leak_bug] selects the variant whose request
    buffers are never released (the E9 resource-leak scenario);
    [deadlock_bug] the variant whose listener and flusher acquire the
    index/flush locks in opposite orders (an AB/BA deadlock). *)

val leader_entries : string list
val replica_entries : string list

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Wd_ir.Runtime.resources;
  prog : Wd_ir.Ast.program;
  leader : Wd_ir.Interp.t;
  replica : Wd_ir.Interp.t;
  disk : Wd_env.Disk.t;
  replica_disk : Wd_env.Disk.t;
  net : Wd_ir.Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  mutable reply_seq : int;
}

val boot :
  ?engine:Wd_ir.Interp.engine ->
  ?in_memory:bool ->
  ?mem_capacity:int ->
  sched:Wd_sim.Sched.t ->
  reg:Wd_env.Faultreg.t ->
  prog:Wd_ir.Ast.program ->
  unit ->
  t
(** Create resources and both node interpreters over [prog] (pass the
    instrumented program when attaching a watchdog). [in_memory] sets the
    paper's in-memory configuration: no disk activity from the main
    program. *)

val spawn_reply_dispatcher : t -> Wd_sim.Sched.task

val start : t -> Wd_sim.Sched.task list
(** Start leader + replica entries and the reply dispatcher. *)

(* Client API — each call blocks the calling task until reply or timeout. *)

val set :
  ?timeout:int64 -> t -> key:string -> value:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val get :
  ?timeout:int64 -> t -> key:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val append :
  ?timeout:int64 -> t -> key:string -> value:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val del :
  ?timeout:int64 -> t -> key:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val stats_sets : t -> int
val stats_gets : t -> int
