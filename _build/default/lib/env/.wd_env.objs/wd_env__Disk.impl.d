lib/env/disk.ml: Bytes Char Faultreg Fmt Hashtbl Int64 List Option Result String Wd_sim
