(** Closure compiler for the IR: a one-time lowering pass that turns each
    function into a tree of pre-resolved OCaml closures.

    The lowering removes every per-statement interpretation cost that does
    not correspond to program behaviour:

    - variables are resolved at compile time to integer slots in a per-call
      [value array] frame — no string hashing on the hot path;
    - call targets and arities are resolved to function handles up front
      (including forward references), with the error paths of the
      tree-walker compiled in where resolution fails;
    - binops, unops and conditions are specialised per shape, keeping the
      generic [Violation] path only as the fallback;
    - [Prim]/[Op]/[Call] argument evaluation is flattened for small arities
      to avoid per-step [List.map] closure allocation;
    - op descriptions ("disk_write(d0)", "lock(m)") are precomputed.

    The compiler is generic in the interpreter state ['i]: all effectful
    semantics (charging, op execution, sync, hooks) are supplied through an
    {!rt} record, so [Compile] depends only on the AST and [Interp] stays
    the single owner of Main/Checker behaviour. Parity contract: compiled
    execution is observably bit-for-bit identical to the tree-walker —
    same [stmts_executed] counts, same charge quanta (virtual time), same
    probe records and hook firing order, same [Violation] payloads. *)

open Ast

exception Violation of { loc : Loc.t; vkind : string; msg : string }
(** The canonical runtime-check failure. Defined here (the layer both
    engines share) and re-exported by [Interp] unchanged. *)

exception Return_exn of value
(** Internal control flow; escapes only on a toplevel [Return]. *)

type 'i rt = {
  charge_stmt : 'i -> unit;
      (** statement prologue: count it and charge its CPU cost *)
  charge : 'i -> int64 -> unit;  (** extra CPU work ([Compute]) *)
  exec_op :
    'i ->
    Loc.t ->
    desc:string ->
    kind:op_kind ->
    target:string ->
    value list ->
    value;
      (** effectful op with pre-evaluated arguments (probe + env) *)
  exec_sync : 'i -> Loc.t -> lock:string -> desc:string -> (unit -> unit) -> unit;
      (** run the body thunk under the named lock's mode-specific protocol *)
  exec_hook : 'i -> int -> (string -> value option) -> unit;
      (** fire hook [id]; the callback reads a frame variable (None when
          unbound) *)
  max_depth : 'i -> int;
}
(** Everything mode- or state-dependent, supplied by the interpreter. *)

(** {1 Shared raise helpers}

    The single source of truth for violation payloads, used by both engines.
    Never inlined, so no error string is formatted before the raise
    decision. *)

val verr : Loc.t -> string -> string -> 'a
(** [verr loc vkind msg] raises {!Violation}. *)

val err_unbound : Loc.t -> string -> 'a
val err_cond : Loc.t -> value -> 'a
val err_logic : Loc.t -> value -> 'a
val err_int_op : Loc.t -> value -> value -> 'a
val err_cmp : Loc.t -> value -> value -> 'a
val err_concat : Loc.t -> value -> value -> 'a
val err_not : Loc.t -> value -> 'a
val err_neg : Loc.t -> value -> 'a
val err_len : Loc.t -> value -> 'a
val err_fst : Loc.t -> value -> 'a
val err_snd : Loc.t -> value -> 'a
val err_foreach : Loc.t -> value -> 'a
val err_prim : Loc.t -> string -> 'a
val err_depth : int -> 'a
val err_call_arity : string -> 'a

val op_desc : op_kind -> string -> string
(** ["kind(target)"], the probe description of an op site. *)

(** {1 Compiled programs} *)

type 'i t
(** A compiled program: closures over an ['i rt]. Immutable after
    {!compile} returns; safe to share across domains and across many
    interpreter instances (Main and Checker alike). *)

val compile : rt:'i rt -> program -> 'i t
(** One-shot lowering of every function. Duplicate function names keep the
    first binding, matching [Ast.find_func]. *)

val program : 'i t -> program
val nslots : 'i t -> string -> int option
(** Frame width of a compiled function, for introspection and tests. *)

val call : 'i t -> 'i -> string -> value list -> value
(** Entry point equivalent to the tree-walker's toplevel call: arity checked
    at runtime, unknown functions raise the canonical [Ast.Ir_error] via
    [find_func], body runs at depth 1. *)
