lib/watchdog/wcontext.mli: Wd_ir
