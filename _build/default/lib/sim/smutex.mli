(** Simulated non-reentrant mutex with owner tracking.

    A lock cycle produces a genuine deadlock that the scheduler reports,
    which is one of the liveness faults watchdogs must catch. *)

type t

val create : string -> t
val name : t -> string
val owner : t -> Sched.task option
val locked : t -> bool

val lock : t -> unit
(** Blocks until available. Raises if the caller already holds it. *)

val try_lock : t -> bool
val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Run [f] holding the lock; always releases, even on exception/cancel. *)

val acquisitions : t -> int
(** Total successful acquisitions (diagnostics). *)

val contended : t -> int
(** Number of lock attempts that had to wait (diagnostics). *)
