(* Integration tests: each target system boots on the simulator and serves
   its workload correctly, with the internal behaviours (flush, compaction,
   replication, snapshots, scanning) observable in its state. *)

module Sched = Wd_sim.Sched
module Time = Wd_sim.Time
open Wd_ir.Ast

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let vstr = function VStr s -> s | v -> Alcotest.failf "not a string: %a" pp_value v

(* --- kvs --- *)

let boot_kvs ?(in_memory = false) ?(leak_bug = false) () =
  let sched = Sched.create ~seed:21 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Kvs.program ~leak_bug () in
  Wd_ir.Validate.check_exn prog;
  let t = Wd_targets.Kvs.boot ~in_memory ~sched ~reg ~prog () in
  ignore (Wd_targets.Kvs.start t);
  (sched, reg, t)

let client sched f =
  let failed = ref None in
  ignore
    (Sched.spawn ~name:"client" ~daemon:true sched (fun () ->
         try f () with e -> failed := Some e));
  ignore (Sched.run ~until:(Time.sec 30) sched);
  match !failed with Some e -> raise e | None -> ()

let test_kvs_set_get () =
  let sched, _reg, t = boot_kvs () in
  client sched (fun () ->
      (match Wd_targets.Kvs.set t ~key:"alpha" ~value:"1" with
      | `Ok (VStr "ok") -> ()
      | _ -> Alcotest.fail "set");
      match Wd_targets.Kvs.get t ~key:"alpha" with
      | `Ok v -> check_str "get" "val:1" (vstr v)
      | _ -> Alcotest.fail "get")

let test_kvs_append_del () =
  let sched, _reg, t = boot_kvs () in
  client sched (fun () ->
      ignore (Wd_targets.Kvs.set t ~key:"k" ~value:"a");
      ignore (Wd_targets.Kvs.append t ~key:"k" ~value:"b");
      (match Wd_targets.Kvs.get t ~key:"k" with
      | `Ok v -> check_str "appended" "val:ab" (vstr v)
      | _ -> Alcotest.fail "get");
      ignore (Wd_targets.Kvs.del t ~key:"k");
      match Wd_targets.Kvs.get t ~key:"k" with
      | `Ok v -> check_str "deleted reads empty" "val:" (vstr v)
      | _ -> Alcotest.fail "get after del")

let test_kvs_missing_key_empty () =
  let sched, _reg, t = boot_kvs () in
  client sched (fun () ->
      match Wd_targets.Kvs.get t ~key:"never-set" with
      | `Ok v -> check_str "empty" "val:" (vstr v)
      | _ -> Alcotest.fail "get")

let test_kvs_persistence_pipeline () =
  let sched, _reg, t = boot_kvs () in
  client sched (fun () ->
      for i = 1 to 30 do
        ignore (Wd_targets.Kvs.set t ~key:(Fmt.str "k%02d" i) ~value:"v");
        Sched.sleep (Time.ms 50)
      done;
      Sched.sleep (Time.sec 5));
  let paths = Wd_env.Disk.paths t.Wd_targets.Kvs.disk in
  let has_prefix p pre =
    String.length p >= String.length pre && String.sub p 0 (String.length pre) = pre
  in
  check "wal written" true (List.exists (fun p -> has_prefix p "wal/") paths);
  check "segments or compacted data" true
    (List.exists (fun p -> has_prefix p "seg/" || has_prefix p "compact/") paths);
  check "snapshot written" true
    (List.exists (fun p -> has_prefix p "snapshot/") paths);
  (* replication reached the follower's disk *)
  check "replica wal" true
    (List.exists
       (fun p -> has_prefix p "replica/")
       (Wd_env.Disk.paths t.Wd_targets.Kvs.replica_disk))

let test_kvs_in_memory_no_disk () =
  let sched, _reg, t = boot_kvs ~in_memory:true () in
  client sched (fun () ->
      for i = 1 to 10 do
        ignore (Wd_targets.Kvs.set t ~key:(Fmt.str "k%d" i) ~value:"v");
        Sched.sleep (Time.ms 100)
      done;
      (* reads still work from the in-memory index *)
      match Wd_targets.Kvs.get t ~key:"k3" with
      | `Ok v -> check_str "served from memory" "val:v" (vstr v)
      | _ -> Alcotest.fail "get");
  check_int "no files written" 0 (List.length (Wd_env.Disk.paths t.Wd_targets.Kvs.disk))

let test_kvs_leak_bug_grows_memory () =
  let used_after variant =
    let sched, _reg, t = boot_kvs ~leak_bug:variant () in
    client sched (fun () ->
        for i = 1 to 100 do
          ignore (Wd_targets.Kvs.set t ~key:(Fmt.str "k%d" (i mod 10)) ~value:"v");
          Sched.sleep (Time.ms 20)
        done);
    Wd_env.Memory.used t.Wd_targets.Kvs.mem
  in
  check "leaky variant retains more" true (used_after true > used_after false)

(* --- zkmini --- *)

let boot_zk () =
  let sched = Sched.create ~seed:22 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Zkmini.program () in
  Wd_ir.Validate.check_exn prog;
  let t = Wd_targets.Zkmini.boot ~sched ~reg ~prog () in
  ignore (Wd_targets.Zkmini.start t);
  (sched, reg, t)

let test_zk_create_get () =
  let sched, _reg, t = boot_zk () in
  client sched (fun () ->
      (match Wd_targets.Zkmini.create t ~path:"/cfg" ~data:"blue" with
      | `Ok (VStr "ok") -> ()
      | _ -> Alcotest.fail "create");
      match Wd_targets.Zkmini.get t ~path:"/cfg" with
      | `Ok v -> check_str "get" "val:blue" (vstr v)
      | _ -> Alcotest.fail "get")

let test_zk_zxid_monotonic () =
  let sched, _reg, t = boot_zk () in
  client sched (fun () ->
      for i = 1 to 10 do
        ignore (Wd_targets.Zkmini.create t ~path:(Fmt.str "/n%d" i) ~data:"d")
      done);
  check_int "ten txns" 10 (Wd_targets.Zkmini.zxid t);
  check_int "all committed" 10 (Wd_targets.Zkmini.txncount t)

let test_zk_ruok () =
  let sched, _reg, t = boot_zk () in
  client sched (fun () ->
      match Wd_targets.Zkmini.ruok t with
      | `Ok v -> check_str "imok" "imok" (vstr v)
      | _ -> Alcotest.fail "ruok")

let test_zk_snapshot_after_snapcount () =
  let sched, _reg, t = boot_zk () in
  client sched (fun () ->
      for i = 1 to 25 do
        ignore (Wd_targets.Zkmini.create t ~path:(Fmt.str "/n%d" i) ~data:"d")
      done;
      Sched.sleep (Time.sec 2));
  let snaps =
    List.filter
      (fun p -> String.length p >= 9 && String.sub p 0 9 = "snapshot/")
      (Wd_env.Disk.paths t.Wd_targets.Zkmini.disk)
  in
  check "snapshot taken after snapCount txns" true (snaps <> [])

let test_zk_followers_replicate () =
  let sched, _reg, t = boot_zk () in
  client sched (fun () ->
      for i = 1 to 5 do
        ignore (Wd_targets.Zkmini.create t ~path:(Fmt.str "/n%d" i) ~data:"d")
      done;
      Sched.sleep (Time.sec 2));
  let fpaths = Wd_env.Disk.paths t.Wd_targets.Zkmini.fdisk in
  check "follower 1 log" true (List.mem "txnlog/f1" fpaths);
  check "follower 2 log" true (List.mem "txnlog/f2" fpaths)

(* --- dfsmini --- *)

let boot_dfs () =
  let sched = Sched.create ~seed:23 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Dfsmini.program () in
  Wd_ir.Validate.check_exn prog;
  let t = Wd_targets.Dfsmini.boot ~sched ~reg ~prog () in
  ignore (Wd_targets.Dfsmini.start t);
  (sched, reg, t)

let test_dfs_put_read () =
  let sched, _reg, t = boot_dfs () in
  client sched (fun () ->
      (match Wd_targets.Dfsmini.put_block t ~blkid:"b1" ~data:"block-data" with
      | `Ok (VStr "ok") -> ()
      | _ -> Alcotest.fail "put");
      match Wd_targets.Dfsmini.read_block_req t ~blkid:"b1" with
      | `Ok v -> check_str "read back" "block-data" (vstr v)
      | _ -> Alcotest.fail "read")

let test_dfs_read_missing_is_error_reply () =
  let sched, _reg, t = boot_dfs () in
  client sched (fun () ->
      match Wd_targets.Dfsmini.read_block_req t ~blkid:"ghost" with
      | `Ok v ->
          let s = vstr v in
          check "error reply" true (String.length s >= 4 && String.sub s 0 4 = "err:")
      | _ -> Alcotest.fail "expected an error reply, not a timeout")

let test_dfs_scanner_counts_corruption () =
  let sched, reg, t = boot_dfs () in
  client sched (fun () ->
      ignore (Wd_targets.Dfsmini.put_block t ~blkid:"clean" ~data:"okdata");
      (* corrupt a stored block behind the system's back *)
      Wd_env.Disk.poke t.Wd_targets.Dfsmini.disk ~path:"blk/clean"
        (Bytes.of_string "rotten");
      Sched.sleep (Time.sec 6));
  ignore reg;
  check "scanner found it" true (Wd_targets.Dfsmini.corrupt_found t >= 1)

let test_dfs_scanner_error_handler () =
  let sched, reg, t = boot_dfs () in
  client sched (fun () ->
      ignore (Wd_targets.Dfsmini.put_block t ~blkid:"b" ~data:"x");
      Wd_env.Faultreg.inject reg
        {
          Wd_env.Faultreg.id = "scan-eio";
          site_pattern = "disk:dfs.disk:read:blk/*";
          behaviour = Wd_env.Faultreg.Error "EIO";
          start_at = Sched.now sched;
          stop_at = Int64.add (Sched.now sched) (Time.sec 5);
          once = false;
        };
      Sched.sleep (Time.sec 8));
  check "handler absorbed the errors" true (Wd_targets.Dfsmini.scan_errors t >= 1)

(* --- cstore --- *)

let boot_cs () =
  let sched = Sched.create ~seed:24 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Cstore.program () in
  Wd_ir.Validate.check_exn prog;
  let t = Wd_targets.Cstore.boot ~sched ~reg ~prog () in
  ignore (Wd_targets.Cstore.start t);
  (sched, reg, t)

let test_cs_write_read () =
  let sched, _reg, t = boot_cs () in
  client sched (fun () ->
      (match Wd_targets.Cstore.write t ~key:"row1" ~value:"cell" with
      | `Ok (VStr "ok") -> ()
      | _ -> Alcotest.fail "write");
      match Wd_targets.Cstore.read t ~key:"row1" with
      | `Ok v -> check_str "read" "val:cell" (vstr v)
      | _ -> Alcotest.fail "read")

let test_cs_flush_and_read_from_sstable () =
  let sched, _reg, t = boot_cs () in
  client sched (fun () ->
      for i = 1 to 20 do
        ignore (Wd_targets.Cstore.write t ~key:(Fmt.str "r%02d" i) ~value:"v");
        Sched.sleep (Time.ms 50)
      done;
      Sched.sleep (Time.sec 2);
      (* by now the memtable flushed; early keys are only in sstables *)
      match Wd_targets.Cstore.read t ~key:"r01" with
      | `Ok v -> check_str "served after flush" "val:v" (vstr v)
      | _ -> Alcotest.fail "read");
  check "sstables exist" true (Wd_targets.Cstore.sstable_count t >= 1);
  (* commit log always appended *)
  check "commitlog" true
    (List.mem "commitlog/log" (Wd_env.Disk.paths t.Wd_targets.Cstore.disk))

let test_cs_compaction_runs () =
  let sched, _reg, t = boot_cs () in
  client sched (fun () ->
      for i = 1 to 120 do
        ignore (Wd_targets.Cstore.write t ~key:(Fmt.str "r%03d" i) ~value:"v");
        Sched.sleep (Time.ms 30)
      done;
      Sched.sleep (Time.sec 5));
  check "compactions happened" true (Wd_targets.Cstore.compactions t >= 1);
  check "fan-in bounded sstable count" true (Wd_targets.Cstore.sstable_count t < 12)

(* --- mqbroker --- *)

let boot_mq () =
  let sched = Sched.create ~seed:25 () in
  let reg = Wd_env.Faultreg.create () in
  let prog = Wd_targets.Mqbroker.program () in
  Wd_ir.Validate.check_exn prog;
  let t = Wd_targets.Mqbroker.boot ~sched ~reg ~prog () in
  ignore (Wd_targets.Mqbroker.start t);
  (sched, reg, t)

let test_mq_produce_deliver () =
  let sched, _reg, t = boot_mq () in
  client sched (fun () ->
      for i = 1 to 120 do
        (match Wd_targets.Mqbroker.produce t ~data:(Fmt.str "m%d" i) with
        | `Ok (VStr "ok") -> ()
        | _ -> Alcotest.fail "produce");
        Sched.sleep (Time.ms 20)
      done;
      Sched.sleep (Time.sec 3));
  check_int "all records accepted" 120 (Wd_targets.Mqbroker.next_offset t);
  check "delivery caught up" true (Wd_targets.Mqbroker.delivered_offset t >= 100);
  check "consumer received batches" true (Wd_targets.Mqbroker.batches_received t >= 2)

let test_mq_retention_bounds_segments () =
  let sched, _reg, t = boot_mq () in
  client sched (fun () ->
      for i = 1 to 500 do
        ignore (Wd_targets.Mqbroker.produce t ~data:(Fmt.str "m%d" i));
        Sched.sleep (Time.ms 10)
      done;
      Sched.sleep (Time.sec 5));
  check "retention ran" true (Wd_targets.Mqbroker.retention_runs t >= 1);
  check "segments bounded" true (Wd_targets.Mqbroker.segment_count t <= 8)

let test_mq_cleaner_stuck_is_silent () =
  let sched, reg, t = boot_mq () in
  client sched (fun () ->
      Wd_env.Faultreg.inject reg
        {
          Wd_env.Faultreg.id = "cleaner-hang";
          site_pattern = "disk:mq.disk:delete:part0/*";
          behaviour = Wd_env.Faultreg.Hang;
          start_at = 0L;
          stop_at = Time.never;
          once = false;
        };
      for i = 1 to 700 do
        (match Wd_targets.Mqbroker.produce t ~data:(Fmt.str "m%d" i) with
        | `Ok _ -> ()
        | _ -> Alcotest.fail "producers must stay healthy")
        ;
        Sched.sleep (Time.ms 10)
      done);
  (* the gray failure: service healthy, partition growing unbounded *)
  check "segments grew past retention" true
    (Wd_targets.Mqbroker.segment_count t
     > Wd_targets.Mqbroker.retention_segments + 2)

let () =
  Alcotest.run "wd_targets"
    [
      ( "kvs",
        [
          Alcotest.test_case "set/get" `Quick test_kvs_set_get;
          Alcotest.test_case "append/del" `Quick test_kvs_append_del;
          Alcotest.test_case "missing key" `Quick test_kvs_missing_key_empty;
          Alcotest.test_case "persistence pipeline" `Quick test_kvs_persistence_pipeline;
          Alcotest.test_case "in-memory mode" `Quick test_kvs_in_memory_no_disk;
          Alcotest.test_case "leak bug variant" `Quick test_kvs_leak_bug_grows_memory;
        ] );
      ( "zkmini",
        [
          Alcotest.test_case "create/get" `Quick test_zk_create_get;
          Alcotest.test_case "zxid monotonic" `Quick test_zk_zxid_monotonic;
          Alcotest.test_case "ruok" `Quick test_zk_ruok;
          Alcotest.test_case "snapshots" `Quick test_zk_snapshot_after_snapcount;
          Alcotest.test_case "followers replicate" `Quick test_zk_followers_replicate;
        ] );
      ( "dfsmini",
        [
          Alcotest.test_case "put/read" `Quick test_dfs_put_read;
          Alcotest.test_case "missing block" `Quick test_dfs_read_missing_is_error_reply;
          Alcotest.test_case "scanner finds corruption" `Quick
            test_dfs_scanner_counts_corruption;
          Alcotest.test_case "scanner error handler" `Quick
            test_dfs_scanner_error_handler;
        ] );
      ( "cstore",
        [
          Alcotest.test_case "write/read" `Quick test_cs_write_read;
          Alcotest.test_case "flush to sstable" `Quick test_cs_flush_and_read_from_sstable;
          Alcotest.test_case "compaction" `Quick test_cs_compaction_runs;
        ] );
      ( "mqbroker",
        [
          Alcotest.test_case "produce/deliver" `Quick test_mq_produce_deliver;
          Alcotest.test_case "retention bounds segments" `Quick
            test_mq_retention_bounds_segments;
          Alcotest.test_case "stuck cleaner is silent" `Quick
            test_mq_cleaner_stuck_is_silent;
        ] );
    ]
