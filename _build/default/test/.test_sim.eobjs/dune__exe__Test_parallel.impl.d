test/test_parallel.ml: Alcotest Fun List String Sys Wd_autowatchdog Wd_faults Wd_harness Wd_parallel
