(* Resource table binding IR resource names to simulated environment
   objects. Disks, networks and memory pools are registered explicitly by
   the harness that boots a program; locks and queues are auto-created on
   first use (like Java object monitors); globals hold shared program
   state. *)

open Ast

type resources = {
  reg : Wd_env.Faultreg.t;
  rng : Wd_sim.Rng.t;
  disks : (string, Wd_env.Disk.t) Hashtbl.t;
  nets : (string, value Wd_env.Net.t) Hashtbl.t;
  mems : (string, Wd_env.Memory.t) Hashtbl.t;
  locks : (string, Wd_sim.Smutex.t) Hashtbl.t;
  queues : (string, value Wd_sim.Channel.t) Hashtbl.t;
  globals : (string, value) Hashtbl.t;
  mutable log_lines : (int64 * string * string) list; (* time, node, msg *)
}

let create ~reg ~rng =
  {
    reg;
    rng;
    disks = Hashtbl.create 8;
    nets = Hashtbl.create 4;
    mems = Hashtbl.create 4;
    locks = Hashtbl.create 16;
    queues = Hashtbl.create 16;
    globals = Hashtbl.create 32;
    log_lines = [];
  }

let add_disk r d = Hashtbl.replace r.disks (Wd_env.Disk.name d) d
let add_net r n = Hashtbl.replace r.nets (Wd_env.Net.name n) n
let add_mem r m = Hashtbl.replace r.mems (Wd_env.Memory.name m) m

let disk r name =
  match Hashtbl.find_opt r.disks name with
  | Some d -> d
  | None -> raise (Ir_error (Fmt.str "no disk %s registered" name))

let net r name =
  match Hashtbl.find_opt r.nets name with
  | Some n -> n
  | None -> raise (Ir_error (Fmt.str "no net %s registered" name))

let mem r name =
  match Hashtbl.find_opt r.mems name with
  | Some m -> m
  | None -> raise (Ir_error (Fmt.str "no memory pool %s registered" name))

let lock r name =
  match Hashtbl.find_opt r.locks name with
  | Some l -> l
  | None ->
      let l = Wd_sim.Smutex.create name in
      Hashtbl.replace r.locks name l;
      l

let queue r name =
  match Hashtbl.find_opt r.queues name with
  | Some q -> q
  | None ->
      let q = Wd_sim.Channel.create name in
      Hashtbl.replace r.queues name q;
      q

(* Reclaim a queue that will never be used again (e.g. a per-request reply
   queue): load runs mint millions of them and the table must not grow
   without bound. A later [queue] call on the same name just re-creates it. *)
let drop_queue r name = Hashtbl.remove r.queues name

let global r name =
  match Hashtbl.find_opt r.globals name with Some v -> v | None -> VUnit

let set_global r name v = Hashtbl.replace r.globals name v

let log r ~node msg =
  let now = try Wd_sim.Sched.now (Wd_sim.Sched.get ()) with _ -> 0L in
  r.log_lines <- (now, node, msg) :: r.log_lines

let log_lines r = List.rev r.log_lines
