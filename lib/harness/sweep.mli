(** Randomized fault-space sweep campaigns.

    The fixed catalog (E2) covers 22 curated cells; a sweep samples the
    *space around them* at volume. A QCheck generator expands a base seed
    into thousands of worlds — catalog scenarios under randomized watchdog
    modes, seeds and timing windows; fault-free accuracy probes; and whole
    fleets whose topologies are built through {!Wd_cluster.Topology}'s
    validating constructors, injected with cluster-scoped scenarios. Every
    world is a self-contained deterministic simulation graded against its
    own oracle, and the grid fans out over the persistent domain pool, so
    the outcome list is byte-identical at any [--jobs] width. *)

type world =
  | Scenario_world of {
      sw_sid : string;
      sw_mode : Systems.watchdog_mode;
      sw_seed : int;
      sw_warmup : int64;
      sw_observe : int64;
    }  (** One catalog scenario under a randomized configuration. *)
  | Fault_free_world of {
      ff_system : string;
      ff_seed : int;
      ff_observe : int64;
    }  (** Accuracy probe: no fault; any report is a false alarm. *)
  | Fleet_world of {
      fl_csid : string;
      fl_topology : Wd_cluster.Topology.spec;
      fl_seed : int;
    }  (** A generated fleet under a cluster-catalog scenario. *)

val world_id : world -> string
(** Stable human-readable identity, e.g.
    ["scenario:kvs-deadlock:generated:seed=713:w=8s:o=15s"]. *)

val grid : ?seed:int -> worlds:int -> unit -> world list
(** Generate a sweep grid of [worlds] worlds. Pure function of
    [(seed, worlds)]: the QCheck generators are driven by an explicit
    [Random.State] derived from [seed] (default 42). Raises
    [Invalid_argument] on a negative count.

    Composition is roughly 83% scenario worlds, 14% fault-free worlds and
    3% fleet worlds (a fleet world boots [n] nodes and costs accordingly).
    Crash specials and slow-burn scenarios whose detection cannot fit the
    sweep's shortened observation windows are excluded — they keep their
    full-window coverage in E2. *)

type outcome = {
  o_world : string;  (** {!world_id} of the world this grades *)
  o_kind : string;  (** ["scenario"], ["fault-free"] or ["fleet"] *)
  o_expect_detect : bool;  (** the world's oracle expects a detection *)
  o_detected : bool;
  o_latency : int64 option;  (** detection latency when detected *)
  o_false_alarms : int;
  o_ok : bool;  (** world matched its oracle *)
}

val run_world : world -> outcome
(** Run one world to completion and grade it. Scenario worlds compare
    mimic-checker detection against the catalog expectation (and demand
    zero pre-injection reports); fault-free worlds demand zero reports of
    any detector class; fleet worlds reuse the fleet verdict grading
    ({!Wd_cluster.Sim.result.cr_as_expected}). *)

type summary = {
  s_seed : int;
  s_worlds : int;
  s_scenario_worlds : int;
  s_fault_free_worlds : int;
  s_fleet_worlds : int;
  s_expect_detect : int;  (** worlds whose oracle expects a detection *)
  s_detected : int;  (** of those, how many actually detected *)
  s_unexpected_detect : int;
  s_false_alarms : int;
  s_ok : int;  (** worlds matching their oracle *)
  s_digest : string;  (** digest of the full outcome list, for
                          cross-width byte-identity checks *)
}

val digest : outcome list -> string
val summarize : seed:int -> outcome list -> summary

val run :
  ?jobs:int -> ?seed:int -> worlds:int -> unit -> summary * outcome list
(** Generate the grid and run it over the persistent domain pool
    ({!Wd_parallel.Pool.run_map}). The outcome list is in grid order and
    byte-identical at any [jobs] width. *)

val pp_summary : summary Fmt.t
