lib/harness/metrics.mli: Campaign Format
