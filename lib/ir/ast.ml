(* Abstract syntax of the mini-IR that target systems are written in.

   The IR plays the role Java bytecode plays for the paper's AutoWatchdog
   prototype: a representation rich enough to host real concurrent system
   software (I/O, locks, queues, shared state, daemon loops) and simple
   enough for whole-program static analysis. Environment-touching effects
   are confined to [Op] statements, each tagged with an [op_kind] — the
   vulnerability classification of §4.1 is a predicate on these kinds. *)

type value =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VBytes of Bytes.t
  | VList of value list
  | VPair of value * value
  | VMap of (string * value) list

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type unop = Not | Neg | Len

type expr =
  | Const of value
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Pair of expr * expr
  | Fst of expr
  | Snd of expr
  | Prim of string * expr list
      (* pure primitive from [Prims]: map_put, checksum, str_of_int, ... *)

(* Operation kinds: the effectful instructions the program can issue against
   its environment. The vulnerable-operation analysis classifies these. *)
type op_kind =
  | Disk_write
  | Disk_append
  | Disk_read
  | Disk_sync
  | Disk_delete
  | Disk_exists
  | Disk_list
  | Net_send
  | Net_recv
  | Queue_put
  | Queue_get
  | Mem_alloc
  | Mem_free
  | State_get
  | State_set
  | Sleep_op
  | Log_op

type stmt_node =
  | Let of string * expr
  | Assign of string * expr
  | Op of { kind : op_kind; target : string; args : expr list; bind : string option }
      (* [target] names the resource: a disk, net fabric, queue, memory pool
         or global variable. *)
  | Call of { func : string; args : expr list; bind : string option }
  | If of expr * block * block
  | While of expr * block
  | Foreach of string * expr * block
  | Sync of string * block  (* synchronized(lock) { ... } *)
  | Try of block * string * block  (* try b catch (e) { handler } *)
  | Return of expr
  | Assert of expr * string
  | Compute of { cost_ns : int64; note : string }  (* pure CPU work *)
  | Hook of int  (* instrumentation point; no-op until instrumented *)

and stmt = { node : stmt_node; loc : Loc.t }
and block = stmt list

type annot =
  | Long_running   (* function hosts a continuously-executing region *)
  | Vulnerable_annot  (* developer-tagged as worth monitoring (§4.1) *)

type func = {
  fname : string;
  params : string list;
  body : block;
  annots : annot list;
}

type entry = { entry_name : string; entry_func : string; entry_args : value list }

type program = { pname : string; funcs : func list; entries : entry list }

exception Ir_error of string

let find_func p name =
  match List.find_opt (fun f -> f.fname = name) p.funcs with
  | Some f -> f
  | None -> raise (Ir_error (Fmt.str "program %s: no function %s" p.pname name))

let has_func p name = List.exists (fun f -> f.fname = name) p.funcs

let op_kind_name = function
  | Disk_write -> "disk_write"
  | Disk_append -> "disk_append"
  | Disk_read -> "disk_read"
  | Disk_sync -> "disk_sync"
  | Disk_delete -> "disk_delete"
  | Disk_exists -> "disk_exists"
  | Disk_list -> "disk_list"
  | Net_send -> "net_send"
  | Net_recv -> "net_recv"
  | Queue_put -> "queue_put"
  | Queue_get -> "queue_get"
  | Mem_alloc -> "mem_alloc"
  | Mem_free -> "mem_free"
  | State_get -> "state_get"
  | State_set -> "state_set"
  | Sleep_op -> "sleep"
  | Log_op -> "log"

(* Deep copy: values are persistent except VBytes, whose buffer must not be
   shared between the main program and a watchdog context (§3.2 isolation). *)
let rec copy_value = function
  | (VUnit | VBool _ | VInt _ | VStr _) as v -> v
  | VBytes b -> VBytes (Bytes.copy b)
  | VList vs -> VList (List.map copy_value vs)
  | VPair (a, b) -> VPair (copy_value a, copy_value b)
  | VMap kvs -> VMap (List.map (fun (k, v) -> (k, copy_value v)) kvs)

(* A value with no VBytes anywhere is persistent: sharing it across the
   program/watchdog boundary is safe and [copy_value] would return a
   structurally-new but semantically-identical tree for nothing. *)
let rec value_immutable = function
  | VUnit | VBool _ | VInt _ | VStr _ -> true
  | VBytes _ -> false
  | VList vs -> List.for_all value_immutable vs
  | VPair (a, b) -> value_immutable a && value_immutable b
  | VMap kvs -> List.for_all (fun (_, v) -> value_immutable v) kvs

let rec value_equal a b =
  match (a, b) with
  | VUnit, VUnit -> true
  | VBool x, VBool y -> x = y
  | VInt x, VInt y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VBytes x, VBytes y -> Bytes.equal x y
  | VList xs, VList ys ->
      List.length xs = List.length ys && List.for_all2 value_equal xs ys
  | VPair (a1, a2), VPair (b1, b2) -> value_equal a1 b1 && value_equal a2 b2
  | VMap xs, VMap ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && value_equal v1 v2)
           xs ys
  | (VUnit | VBool _ | VInt _ | VStr _ | VBytes _ | VList _ | VPair _ | VMap _), _
    ->
      false

(* Canonical rendering, byte-identical to the historical Fmt-based printer
   (which emitted no break hints, so flat Buffer output matches). This is
   the hot-path form: [serialize], [hash_value] and log formatting all
   funnel through one Buffer instead of a Format machine per value. [%S]
   is by definition ["\"" ^ String.escaped s ^ "\""], and [String.escaped]
   returns its argument unchanged (no copy) when nothing needs escaping. *)
let rec render_value buf = function
  | VUnit -> Buffer.add_string buf "()"
  | VBool true -> Buffer.add_string buf "true"
  | VBool false -> Buffer.add_string buf "false"
  | VInt i -> Buffer.add_string buf (string_of_int i)
  | VStr s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (String.escaped s);
      Buffer.add_char buf '"'
  | VBytes b ->
      if Bytes.length b <= 16 then begin
        Buffer.add_string buf "bytes\"";
        Buffer.add_string buf (String.escaped (Bytes.to_string b));
        Buffer.add_char buf '"'
      end
      else begin
        Buffer.add_string buf "bytes<";
        Buffer.add_string buf (string_of_int (Bytes.length b));
        Buffer.add_char buf '>'
      end
  | VList vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf "; ";
          render_value buf v)
        vs;
      Buffer.add_char buf ']'
  | VPair (a, b) ->
      Buffer.add_char buf '(';
      render_value buf a;
      Buffer.add_string buf ", ";
      render_value buf b;
      Buffer.add_char buf ')'
  | VMap kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          render_value buf v)
        kvs;
      Buffer.add_char buf '}'

(* Per-domain scratch buffer: rendering never re-enters itself (the
   renderer calls no user code), so one buffer per domain suffices. *)
let render_buf_key = Domain.DLS.new_key (fun () -> Buffer.create 256)

(* Render into the domain scratch buffer and hand it to [f] — the
   no-intermediate-string path content hashing uses. The buffer is only
   valid inside [f]. *)
let with_rendered v f =
  let buf = Domain.DLS.get render_buf_key in
  Buffer.clear buf;
  render_value buf v;
  f buf

let value_to_string v =
  let buf = Domain.DLS.get render_buf_key in
  Buffer.clear buf;
  render_value buf v;
  let s = Buffer.contents buf in
  (* Don't let one huge value pin a large backing array for the domain. *)
  if Buffer.length buf > 65536 then Buffer.reset buf;
  s

let pp_value ppf v = Format.pp_print_string ppf (value_to_string v)
