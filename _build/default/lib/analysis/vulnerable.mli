(** Vulnerable-operation classification (§4.1 step 2).

    Selects the operations worth monitoring at runtime: those that can fail
    in production due to environment issues or bugs — I/O, synchronisation,
    resource and communication invocations — plus developer-annotated
    functions. Dedup keys carry a statically-propagated operand prefix so
    writes to different path families on one device stay distinct. *)

open Wd_ir.Ast

type config = {
  io_vulnerable : bool;
  comm_vulnerable : bool;
  sync_vulnerable : bool;
  resource_vulnerable : bool;
  queue_vulnerable : bool;
  extra_kinds : op_kind list;
  annotated_funcs : string list;
}

val default : config

val kind_vulnerable : config -> op_kind -> bool

type vop = {
  vloc : Wd_ir.Loc.t;
  vdesc : string;
  vkey : string;  (** dedup key: ["kind:target:operand-prefix"] *)
  vnode : stmt_node;
  enclosing_sync : string option;
}

val prefix_of_expr : (string, string) Hashtbl.t -> expr -> string option
(** Statically-known prefix of an operand under the given binding
    environment (one level of constant propagation through [Let]s). *)

val track_binding : (string, string) Hashtbl.t -> string -> expr -> unit
val op_key :
  (string, string) Hashtbl.t -> kind:op_kind -> target:string -> args:expr list -> string
val sync_key : string -> string

val collect_in_func : config -> func -> vop list
val count_in_program : config -> program -> int
