(* mqbroker — a Kafka-like single-partition message broker.

   Producers append records to segment files through the broker's log lock;
   a delivery loop reads records back from the segments and pushes them to
   the consumer endpoint; a retention cleaner deletes old segments once the
   partition grows past its budget; a stats loop gossips to a monitor.

   Its gray failures complement the other targets:
   - a silently stuck retention cleaner (only the disk fills — producers and
     consumers keep succeeding);
   - a consumer delivery link that blocks the sender (producers unaffected,
     consumers starve — invisible to producer-side observers);
   - silent append corruption, caught by the append read-back recipe. *)

open Wd_ir
module B = Builder

let ( <>: ) = B.( <>: )
let ( +: ) = B.( +: )
let ( /: ) = B.( /: )
let ( >: ) = B.( >: )
let ( <: ) = B.( <: )
let ( *: ) = B.( *: )

let node = "mq1"
let consumer_node = "consumer1"
let monitor_node = "mqmon"
let disk_name = "mq.disk"
let net_name = "mq.net"
let mem_name = "mq.mem"
let request_queue = "mq.produce"
let replies_queue = "mq.replies"
let records_per_segment = 50
let retention_segments = 6

let reply_msg data =
  B.prim "map_put"
    [
      B.prim "map_put" [ B.prim "map_empty" []; B.s "id"; B.v "reply" ];
      B.s "data";
      data;
    ]

(* Offset -> segment path, shared by the producer and delivery paths.
   Segment numbers are zero-padded so that lexicographic directory order is
   numeric age order — the retention cleaner deletes the oldest segment by
   taking the listing's head. (The unpadded version was a real bug this
   repo's own progress checkers caught: "seg.14" sorts before "seg.2", so
   the cleaner deleted the segment still being delivered.) *)
let segment_path =
  B.func "segment_path" ~params:[ "offset" ]
    [
      B.return
        (B.prim "concat"
           [
             B.s "part0/seg.";
             B.prim "pad_left"
               [
                 B.prim "str_of_int" [ B.v "offset" /: B.i records_per_segment ];
                 B.i 8;
                 B.s "0";
               ];
           ]);
    ]

let handle_produce =
  B.func "handle_produce" ~params:[ "payload" ]
    [
      B.sync "mq.log_lock"
        [
          B.state_get ~bind:"off" ~global:"mq.next_offset";
          B.state_set ~global:"mq.next_offset" ~value:(B.v "off" +: B.i 1);
          B.call ~bind:"seg" "segment_path" [ B.v "off" ];
          B.let_ "record"
            (B.prim "bytes_of_str"
               [
                 B.prim "concat"
                   [ B.prim "str_of_int" [ B.v "off" ]; B.s ":"; B.v "payload"; B.s "|" ];
               ]);
          B.disk_append ~disk:disk_name ~path:(B.v "seg") ~data:(B.v "record");
        ];
      B.mem_alloc ~pool:mem_name ~size:(B.len (B.v "payload") +: B.i 32);
      B.mem_free ~pool:mem_name ~size:(B.len (B.v "payload") +: B.i 32);
      B.return_unit;
    ]

let produce_loop =
  B.func "produce_loop" ~params:[]
    [
      B.while_true
        [
          B.queue_get ~bind:"r" ~queue:request_queue ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "r"; B.s "ok"; B.bconst false ])
            [
              B.let_ "req" (B.prim "map_get" [ B.v "r"; B.s "payload" ]);
              B.let_ "payload" (B.prim "map_get_opt" [ B.v "req"; B.s "data"; B.s "" ]);
              B.let_ "reply" (B.prim "map_get_opt" [ B.v "req"; B.s "reply"; B.s "" ]);
              B.call "handle_produce" [ B.v "payload" ];
              B.if_ (B.v "reply" <>: B.s "")
                [ B.queue_put ~queue:replies_queue ~data:(reply_msg (B.s "ok")) ]
                [];
            ]
            [];
        ];
    ]

(* Push undelivered records to the consumer, one segment-read per batch. *)
let deliver_once =
  B.func "deliver_once" ~params:[]
    [
      B.state_get ~bind:"sent" ~global:"mq.delivered_offset";
      B.state_get ~bind:"next" ~global:"mq.next_offset";
      B.if_ (B.v "sent" <: B.v "next")
        [
          B.call ~bind:"seg" "segment_path" [ B.v "sent" ];
          B.disk_exists ~bind:"have" ~disk:disk_name ~path:(B.v "seg") ();
          B.if_ (B.v "have")
            [
              B.disk_read ~bind:"batch" ~disk:disk_name ~path:(B.v "seg") ();
              B.net_send ~net:net_name ~dst:(B.s consumer_node)
                ~payload:(B.prim "str_of_bytes" [ B.v "batch" ]);
              (* advance to the end of the delivered segment *)
              B.state_set ~global:"mq.delivered_offset"
                ~value:
                  (B.prim "min"
                     [
                       B.v "next";
                       (B.v "sent" /: B.i records_per_segment +: B.i 1)
                       *: B.i records_per_segment;
                     ]);
            ]
            [];
        ]
        [];
      B.return_unit;
    ]

let deliver_loop =
  B.func "deliver_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 100; B.call "deliver_once" [] ] ]

(* Retention: drop the oldest segments once the partition outgrows its
   budget — the background task that can wedge silently. *)
let clean_once =
  B.func "clean_once" ~params:[]
    [
      B.disk_list ~bind:"segs" ~disk:disk_name ~prefix:(B.s "part0/") ();
      B.if_
        (B.len (B.v "segs") >: B.i retention_segments)
        [
          B.let_ "victim" (B.prim "list_head" [ B.v "segs" ]);
          B.disk_delete ~disk:disk_name ~path:(B.v "victim");
          B.state_get ~bind:"rc" ~global:"mq.retention_runs";
          B.state_set ~global:"mq.retention_runs" ~value:(B.v "rc" +: B.i 1);
        ]
        [];
      B.return_unit;
    ]

let cleaner_loop =
  B.func "cleaner_loop" ~params:[]
    [ B.while_true [ B.sleep_ms 1000; B.call "clean_once" [] ] ]

let stats_loop =
  B.func "stats_loop" ~params:[]
    [
      B.while_true
        [
          B.sleep_ms 500;
          B.state_get ~bind:"next" ~global:"mq.next_offset";
          B.net_send ~net:net_name ~dst:(B.s monitor_node)
            ~payload:
              (B.prim "concat"
                 [ B.s "mqstats:mq1:"; B.prim "str_of_int" [ B.v "next" ] ]);
        ];
    ]

(* Consumer node: count delivered batches. *)
let consumer_loop =
  B.func "consumer_loop" ~params:[]
    [
      B.while_true
        [
          B.net_recv ~bind:"m" ~net:net_name ~timeout_ms:500 ();
          B.if_
            (B.prim "map_get_opt" [ B.v "m"; B.s "ok"; B.bconst false ])
            [
              B.state_get ~bind:"got" ~global:"mq.batches_received";
              B.state_set ~global:"mq.batches_received" ~value:(B.v "got" +: B.i 1);
              B.compute_us 3 ~note:"process batch";
            ]
            [];
        ];
    ]

let broker_entries = [ "producer"; "deliverer"; "cleaner"; "stats" ]
let consumer_entries = [ "consumer" ]

let program () =
  B.program "mqbroker"
    ~funcs:
      [
        produce_loop;
        handle_produce;
        segment_path;
        deliver_loop;
        deliver_once;
        cleaner_loop;
        clean_once;
        stats_loop;
        consumer_loop;
      ]
    ~entries:
      [
        B.entry "producer" "produce_loop";
        B.entry "deliverer" "deliver_loop";
        B.entry "cleaner" "cleaner_loop";
        B.entry "stats" "stats_loop";
        B.entry "consumer" "consumer_loop";
      ]

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Runtime.resources;
  prog : Ast.program;
  broker : Interp.t;
  consumer : Interp.t;
  disk : Wd_env.Disk.t;
  net : Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
}

let boot ?engine ?(mem_capacity = 64 * 1024 * 1024) ~sched ~reg ~prog () =
  (* environment randomness derives from the scheduler's seed, so a run is
     a pure function of that one seed *)
  let rng = Wd_sim.Rng.split (Wd_sim.Sched.rng sched) in
  let res = Runtime.create ~reg ~rng in
  let disk = Wd_env.Disk.create ~reg ~rng:(Wd_sim.Rng.split rng) disk_name in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.split rng) net_name in
  let mem = Wd_env.Memory.create ~reg ~capacity:mem_capacity mem_name in
  Runtime.add_disk res disk;
  Runtime.add_net res net;
  Runtime.add_mem res mem;
  List.iter (Wd_env.Net.register net) [ node; consumer_node; monitor_node ];
  Runtime.set_global res "mq.next_offset" (Ast.VInt 0);
  Runtime.set_global res "mq.delivered_offset" (Ast.VInt 0);
  Runtime.set_global res "mq.retention_runs" (Ast.VInt 0);
  Runtime.set_global res "mq.batches_received" (Ast.VInt 0);
  let broker = Interp.create ?engine ~node ~res prog in
  let consumer = Interp.create ?engine ~node:consumer_node ~res prog in
  let rpc = Rpcq.create ~sched ~res ~request_queue ~replies_queue in
  { sched; reg; res; prog; broker; consumer; disk; net; mem; rpc }

let start t =
  let b = Interp.start ~entries:broker_entries t.broker t.sched in
  let c = Interp.start ~entries:consumer_entries t.consumer t.sched in
  ignore (Rpcq.spawn_dispatcher t.rpc);
  b @ c

let produce ?timeout t ~data =
  Rpcq.request ?timeout t.rpc [ ("op", Ast.VStr "produce"); ("data", Ast.VStr data) ]

let next_offset t =
  match Runtime.global t.res "mq.next_offset" with Ast.VInt n -> n | _ -> 0

let delivered_offset t =
  match Runtime.global t.res "mq.delivered_offset" with Ast.VInt n -> n | _ -> 0

let batches_received t =
  match Runtime.global t.res "mq.batches_received" with Ast.VInt n -> n | _ -> 0

let retention_runs t =
  match Runtime.global t.res "mq.retention_runs" with Ast.VInt n -> n | _ -> 0

let segment_count t =
  List.length
    (List.filter
       (fun p -> String.length p >= 6 && String.sub p 0 6 = "part0/")
       (Wd_env.Disk.paths t.disk))
