(* Program logic reduction (§4.1): derive from program P a reduced W that
   retains just enough code to expose gray failures.

   For every function reachable from a long-running region we:
   1. keep only vulnerable operations (loops flattened — invoking write()
      once suffices to check it; initialisation and pure logic dropped);
   2. remove *similar* vulnerable operations — same (kind, target) — within
      the function;
   3. perform a global reduction along call chains: an op whose key is
      already retained in a callee is dropped at the caller;
   4. preserve critical-section structure: a Sync block and its retained
      body become one unit, so lock acquisition is mimicked too;
   5. infer the execution context: every non-constant operand becomes a
      context parameter, captured by a hook inserted immediately before the
      original operation (Figure 2's ContextFactory setter).

   The output is a set of *units* — each a tiny IR function runnable by a
   checker-mode interpreter — plus the instrumented program. *)

open Wd_ir.Ast
module Loc = Wd_ir.Loc

type options = {
  dedup_similar : bool;      (* step 2; ablation switch *)
  global_reduction : bool;   (* step 3; ablation switch *)
}

let default_options = { dedup_similar = true; global_reduction = true }

type unit_ = {
  unit_id : string;
  region_id : string;
  source_func : string;
  anchor_loc : Loc.t;
  ufunc : func;
  params : (string * expr) list;  (* param name -> original operand *)
  keys : string list;  (* retained "kind:target:prefix" keys *)
  hook_ids : int list;
}

type hook_insertion = {
  hi_hook_id : int;
  hi_anchor_uid : int;  (* insert captures+hook before this statement *)
  hi_captures : (string * string * expr) list;  (* (param, tmp var, operand) *)
  hi_unit : string;
}

type stats = {
  total_funcs : int;
  region_funcs : int;
  total_stmts : int;
  vulnerable_ops : int;
  retained_ops : int;
  unit_count : int;
  reduced_stmts : int;
}

type result = {
  original : program;
  instrumented : program;
  units : unit_ list;
  hooks : hook_insertion list;
  stats : stats;
}

let rec count_stmts block =
  List.fold_left
    (fun n st ->
      n
      + 1
      +
      match st.node with
      | If (_, t, e) -> count_stmts t + count_stmts e
      | While (_, b) | Foreach (_, _, b) | Sync (_, b) -> count_stmts b
      | Try (b, _, h) -> count_stmts b + count_stmts h
      | Let _ | Assign _ | Op _ | Call _ | Return _ | Assert _ | Compute _
      | Hook _ ->
          0)
    0 block


(* Keys retained in the reduction of [fname] or anything it calls;
   memoised, cycle-safe (an in-progress callee contributes nothing). *)
let retained_keys_deep cfg cg =
  let memo : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let in_progress = Hashtbl.create 8 in
  let rec keys_of fname =
    match Hashtbl.find_opt memo fname with
    | Some ks -> ks
    | None ->
        if Hashtbl.mem in_progress fname then []
        else begin
          Hashtbl.replace in_progress fname ();
          let f = find_func cg.Callgraph.prog fname in
          let own =
            List.map (fun v -> v.Vulnerable.vkey) (Vulnerable.collect_in_func cfg f)
          in
          let from_callees =
            List.concat_map (fun (callee, _) -> keys_of callee)
              (Callgraph.callees cg fname)
          in
          Hashtbl.remove in_progress fname;
          let all = List.sort_uniq compare (own @ from_callees) in
          Hashtbl.replace memo fname all;
          all
        end
  in
  keys_of

(* Keys retained by all callees of [fname] (for the global reduction). *)
let callee_keys cfg cg fname =
  List.concat_map
    (fun (callee, _) -> retained_keys_deep cfg cg callee)
    (Callgraph.callees cg fname)
  |> List.sort_uniq compare

type builder_state = {
  mutable next_hook : int;
  mutable next_unit : int;
  mutable all_units : unit_ list;
  mutable all_hooks : hook_insertion list;
  mutable anchored_uids : (int, unit) Hashtbl.t;  (* global anchor dedup *)
}

(* Split an op's operands into inline constants and context parameters. *)
let split_args ~park args =
  List.map
    (fun e ->
      match e with
      | Const _ -> (e, None)
      | _ ->
          let param = park e in
          (Var param, Some param))
    args

(* Reduce one function's body into units. [region_id] names the first region
   that reaches this function. Developer-annotated functions (§4.1) treat
   every effectful operation as vulnerable. *)
let reduce_func st cfg ~opts ~region_id ~callee_retained f =
  let seen_keys : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let env = Hashtbl.create 16 in
  let in_annotated =
    List.mem f.fname cfg.Vulnerable.annotated_funcs
    || List.mem Vulnerable_annot f.annots
  in
  let op_vulnerable kind =
    Vulnerable.kind_vulnerable cfg kind
    || (in_annotated && kind <> Log_op)
  in
  let keep key =
    let dup = Hashtbl.mem seen_keys key in
    let in_callee = List.mem key callee_retained in
    if (opts.dedup_similar && dup) || (opts.global_reduction && in_callee) then
      false
    else begin
      Hashtbl.replace seen_keys key ();
      true
    end
  in
  let fresh_unit () =
    let id = st.next_unit in
    st.next_unit <- id + 1;
    Fmt.str "%s__u%d" f.fname id
  in
  let fresh_hook () =
    let id = st.next_hook in
    st.next_hook <- id + 1;
    id
  in
  (* Build a unit from retained ops. [pieces] are (anchor stmt, reduced
     node builder given the parameter table). *)
  let emit_unit ~anchor_loc ~body ~params ~keys ~hooks =
    let unit_id = fresh_unit () in
    let ufunc =
      {
        fname = unit_id;
        params = List.map fst params;
        body;
        annots = [];
      }
    in
    st.all_units <-
      {
        unit_id;
        region_id;
        source_func = f.fname;
        anchor_loc;
        ufunc;
        params;
        keys;
        hook_ids = List.map (fun h -> h.hi_hook_id) hooks;
      }
      :: st.all_units;
    st.all_hooks <- hooks @ st.all_hooks;
    List.iter (fun h -> Hashtbl.replace st.anchored_uids h.hi_anchor_uid ()) hooks
  in
  (* Reduce a single vulnerable Op statement into (reduced stmt, params,
     hook). Parameter names are fresh per unit. *)
  let reduce_op ~param_base st_node loc =
    match st_node with
    | Op { kind; target; args; bind } ->
        let counter = ref 0 in
        let params = ref [] in
        let park e =
          let name = Fmt.str "%s%d" param_base !counter in
          incr counter;
          params := (name, e) :: !params;
          name
        in
        let newargs = List.map fst (split_args ~park args) in
        let params = List.rev !params in
        let reduced =
          { node = Op { kind; target; args = newargs; bind }; loc }
        in
        (reduced, params, Vulnerable.op_key env ~kind ~target ~args)
    | _ -> invalid_arg "reduce_op: not an op"
  in
  let hook_for ~unit_placeholder ~anchor_uid params =
    if params = [] then None
    else
      let hid = fresh_hook () in
      Some
        {
          hi_hook_id = hid;
          hi_anchor_uid = anchor_uid;
          hi_captures =
            List.map
              (fun (p, e) -> (p, Fmt.str "__wd%d_%s" hid p, e))
              params;
          hi_unit = unit_placeholder;
        }
  in
  (* Walk a block, creating standalone units for vulnerable ops and one
     combined unit per Sync block. *)
  let rec walk block =
    List.iter
      (fun stmt ->
        match stmt.node with
        | Let (x, e) | Assign (x, e) -> Vulnerable.track_binding env x e
        | Op { kind; target; args; _ }
          when op_vulnerable kind
               && not (Hashtbl.mem st.anchored_uids (Loc.uid stmt.loc)) ->
            if keep (Vulnerable.op_key env ~kind ~target ~args) then begin
              let reduced, params, key = reduce_op ~param_base:"arg" stmt.node stmt.loc in
              let unit_id_preview = Fmt.str "%s__u%d" f.fname st.next_unit in
              let hook =
                hook_for ~unit_placeholder:unit_id_preview
                  ~anchor_uid:(Loc.uid stmt.loc) params
              in
              emit_unit ~anchor_loc:stmt.loc ~body:[ reduced ] ~params ~keys:[ key ]
                ~hooks:(Option.to_list hook)
            end
        | Op _ -> ()
        | Sync (lock, body) when cfg.Vulnerable.sync_vulnerable ->
            if
              keep (Vulnerable.sync_key lock)
              && not (Hashtbl.mem st.anchored_uids (Loc.uid stmt.loc))
            then begin
              (* Retain inner vulnerable ops under the (try-)lock. *)
              let inner = ref [] in
              let params = ref [] in
              let keys = ref [ Vulnerable.sync_key lock ] in
              let hooks = ref [] in
              let unit_id_preview = Fmt.str "%s__u%d" f.fname st.next_unit in
              let rec gather b =
                List.iter
                  (fun s ->
                    match s.node with
                    | Let (x, e) | Assign (x, e) -> Vulnerable.track_binding env x e
                    | Op { kind; target; args; _ } when op_vulnerable kind ->
                        if keep (Vulnerable.op_key env ~kind ~target ~args) then begin
                          let reduced, ps, key =
                            reduce_op
                              ~param_base:(Fmt.str "arg%d_" (List.length !inner))
                              s.node s.loc
                          in
                          inner := reduced :: !inner;
                          params := !params @ ps;
                          keys := key :: !keys;
                          match
                            hook_for ~unit_placeholder:unit_id_preview
                              ~anchor_uid:(Loc.uid s.loc) ps
                          with
                          | Some h -> hooks := h :: !hooks
                          | None -> ()
                        end
                    | If (_, t, e) ->
                        gather t;
                        gather e
                    | While (_, b) | Foreach (_, _, b) -> gather b
                    | Try (b, _, h) ->
                        gather b;
                        gather h
                    | Sync (_, b) -> gather b (* nested sync folded in *)
                    | Op _ | Call _ | Return _ | Assert _ | Compute _ | Hook _
                      ->
                        ())
                  b
              in
              gather body;
              let sync_stmt =
                { node = Sync (lock, List.rev !inner); loc = stmt.loc }
              in
              emit_unit ~anchor_loc:stmt.loc ~body:[ sync_stmt ] ~params:!params
                ~keys:(List.rev !keys) ~hooks:(List.rev !hooks)
            end
            else walk body
        | Sync (_, body) -> walk body
        | If (_, t, e) ->
            walk t;
            walk e
        | While (_, b) | Foreach (_, _, b) -> walk b
        | Try (b, _, h) ->
            walk b;
            walk h
        | Call _ | Return _ | Assert _ | Compute _ | Hook _ -> ())
      block
  in
  walk f.body

(* Insert context-capture statements and hooks before anchored statements.
   Original statements keep their locations; inserted ones get fresh uids. *)
let instrument prog hooks =
  let next_uid = ref 0 in
  let bump loc = if Loc.uid loc >= !next_uid then next_uid := Loc.uid loc + 1 in
  let rec scan block =
    List.iter
      (fun st ->
        bump st.loc;
        match st.node with
        | If (_, t, e) ->
            scan t;
            scan e
        | While (_, b) | Foreach (_, _, b) | Sync (_, b) -> scan b
        | Try (b, _, h) ->
            scan b;
            scan h
        | Let _ | Assign _ | Op _ | Call _ | Return _ | Assert _ | Compute _
        | Hook _ ->
            ())
      block
  in
  List.iter (fun f -> scan f.body) prog.funcs;
  let fresh_loc func =
    let uid = !next_uid in
    incr next_uid;
    Loc.make ~func ~path:[] ~uid
  in
  let by_anchor = Hashtbl.create 16 in
  List.iter (fun h -> Hashtbl.replace by_anchor h.hi_anchor_uid h) hooks;
  let rec rewrite fname block =
    List.concat_map
      (fun st ->
        let st =
          let node =
            match st.node with
            | If (c, t, e) -> If (c, rewrite fname t, rewrite fname e)
            | While (c, b) -> While (c, rewrite fname b)
            | Foreach (x, e, b) -> Foreach (x, e, rewrite fname b)
            | Sync (l, b) -> Sync (l, rewrite fname b)
            | Try (b, x, h) -> Try (rewrite fname b, x, rewrite fname h)
            | ( Let _ | Assign _ | Op _ | Call _ | Return _ | Assert _
              | Compute _ | Hook _ ) as n ->
                n
          in
          { st with node }
        in
        match Hashtbl.find_opt by_anchor (Loc.uid st.loc) with
        | None -> [ st ]
        | Some h ->
            let captures =
              List.map
                (fun (_, tmp, e) -> { node = Let (tmp, e); loc = fresh_loc fname })
                h.hi_captures
            in
            captures
            @ [ { node = Hook h.hi_hook_id; loc = fresh_loc fname }; st ])
      block
  in
  {
    prog with
    funcs = List.map (fun f -> { f with body = rewrite f.fname f.body }) prog.funcs;
  }

let reduce ?(opts = default_options) ?(cfg = Vulnerable.default) prog =
  let cg = Callgraph.build prog in
  let regions = Regions.find prog in
  let st =
    {
      next_hook = 0;
      next_unit = 0;
      all_units = [];
      all_hooks = [];
      anchored_uids = Hashtbl.create 32;
    }
  in
  (* Map each function to the first region that reaches it; the region's
     root loop body itself is reduced as part of the root function. *)
  let func_region : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun fname ->
          if not (Hashtbl.mem func_region fname) then
            Hashtbl.replace func_region fname r.Regions.region_id)
        (r.Regions.root_func :: r.Regions.reachable))
    regions;
  (* Reduce region root functions first (they anchor the loops), then
     callees, in a stable order. *)
  let ordered_funcs =
    List.filter (fun f -> Hashtbl.mem func_region f.fname) prog.funcs
  in
  List.iter
    (fun f ->
      let region_id = Hashtbl.find func_region f.fname in
      let callee_retained =
        if opts.global_reduction then callee_keys cfg cg f.fname else []
      in
      reduce_func st cfg ~opts ~region_id ~callee_retained f)
    ordered_funcs;
  let units = List.rev st.all_units in
  let hooks = List.rev st.all_hooks in
  let instrumented = instrument prog hooks in
  let total_stmts =
    List.fold_left (fun n f -> n + count_stmts f.body) 0 prog.funcs
  in
  let reduced_stmts =
    List.fold_left (fun n u -> n + count_stmts u.ufunc.body) 0 units
  in
  let stats =
    {
      total_funcs = List.length prog.funcs;
      region_funcs = List.length ordered_funcs;
      total_stmts;
      vulnerable_ops = Vulnerable.count_in_program cfg prog;
      retained_ops = List.fold_left (fun n u -> n + List.length u.keys) 0 units;
      unit_count = List.length units;
      reduced_stmts;
    }
  in
  { original = prog; instrumented; units; hooks; stats }

let pp_stats ppf s =
  Fmt.pf ppf
    "funcs=%d region_funcs=%d stmts=%d vulnerable=%d retained=%d units=%d reduced_stmts=%d (%.1f%% of original)"
    s.total_funcs s.region_funcs s.total_stmts s.vulnerable_ops s.retained_ops
    s.unit_count s.reduced_stmts
    (100.0 *. float_of_int s.reduced_stmts /. float_of_int (max 1 s.total_stmts))
