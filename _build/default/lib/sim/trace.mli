(** Execution tracing: a bounded ring buffer of scheduler events, opt-in
    via {!Sched.set_trace}. The recent window before a watchdog detection
    is a ready-made postmortem timeline. *)

type kind =
  | Spawned
  | Blocked of string  (** the suspend reason *)
  | Resumed
  | Finished of string

type event = { at : int64; task_id : int; task_name : string; kind : kind }

type t

val create : ?capacity:int -> unit -> t
val record : t -> at:int64 -> task_id:int -> task_name:string -> kind -> unit
val total : t -> int

val recent : t -> int -> event list
(** Most recent [n] events, oldest first. *)

val pp_event : Format.formatter -> event -> unit
val dump : ?n:int -> Format.formatter -> t -> unit
