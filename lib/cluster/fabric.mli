(** Inter-node fabric: the message plane membership gossip, probing,
    election and report shipping run over, built on [Wd_env.Net] so the
    fault machinery applies unchanged.

    Fault sites are ["net:fabric:send:<src>:<dst>"]: a pattern like
    ["net:fabric:send:n3:*"] cuts every link out of n3, and
    ["net:fabric:send:n1:n3"] exactly one direction of one link — the
    asymmetric partial partition the fleet plane must localise. The fabric
    owns its own fault registry, separate from every node's private
    environment registry. *)

(** Compact summary of a locally-surfaced report, piggybacked on heartbeat
    gossip so peers can corroborate leader evidence without a second
    channel. *)
type digest = { d_checker : string; d_fkind : string; d_at : int64 }

type msg =
  | Gossip of {
      from_ : string;
      seq : int;
      accuse_probe : string list;
      accuse_suspect : string list;
      digests : digest list;
    }  (** liveness heartbeat carrying accusations and report digests *)
  | Probe_req of { from_ : string; seq : int }
  | Probe_ack of { from_ : string; seq : int; healthy : bool }
  | Report_ship of { from_ : string; wire : string }
      (** a wire-encoded watchdog report bound for the current leader *)
  | Elect of { from_ : string; round : int }
  | Elect_ok of { from_ : string; round : int }
  | Coordinator of { from_ : string; round : int }
  | Recover of { from_ : string; func : string; wire : string }
      (** leader -> indicted node: microreboot the component owning [func] *)

type t

val node_name : int -> string
(** Fabric endpoint of node [i]: ["n<i>"]. *)

val create :
  ?links:(string * string * Wd_env.Net.link_profile) list ->
  sched:Wd_sim.Sched.t -> nodes:string list -> unit -> t
(** Fabric over the given endpoints. [links] profiles individual directed
    links (latency override, bandwidth bound) — see
    [Topology.link_profiles]; unlisted links keep the symmetric 1 ms base. *)

val peers : t -> string -> string list
val node_ids : t -> string list

val reg : t -> Wd_env.Faultreg.t
(** The fabric's own fault registry: scenario injection cuts or degrades
    links here without touching any node's private environment. *)

val msg_size : msg -> int
(** Approximate wire size in bytes, the serialisation cost on
    bandwidth-bounded links. *)

val send : t -> src:string -> dst:string -> msg -> unit
(** Fire-and-forget: a send failing under an [Error] fault is treated as a
    lost message. *)

val recv_timeout :
  t -> string -> timeout:int64 -> msg Wd_env.Net.envelope option

val stats : t -> int * int * int
(** [(sent, delivered, dropped)]. *)
