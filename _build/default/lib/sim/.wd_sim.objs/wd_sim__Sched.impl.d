lib/sim/sched.ml: Domain Effect Fmt Heap Int64 List Logs Printexc Queue Rng Time Trace
