(* Tests for the AutoWatchdog analysis cache: physical reuse across
   repeated boots of one system, equality with the uncached path, config
   keying, and invalidation. *)

module Generate = Wd_autowatchdog.Generate
module Config = Wd_autowatchdog.Config
module Reduction = Wd_analysis.Reduction
module Campaign = Wd_harness.Campaign
module Systems = Wd_harness.Systems
module Sched = Wd_sim.Sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_physical_reuse () =
  Generate.clear_cache ();
  (* two structurally equal but physically distinct programs: the digest,
     not physical identity, must key the cache *)
  let g1 = Generate.analyze_cached (Wd_targets.Zkmini.program ()) in
  let g2 = Generate.analyze_cached (Wd_targets.Zkmini.program ()) in
  check "same generated value reused" true (g1 == g2);
  let hits, misses = Generate.cache_stats () in
  check_int "one miss" 1 misses;
  check_int "one hit" 1 hits

let test_bypass_equals_cached () =
  Generate.clear_cache ();
  let prog = Wd_targets.Kvs.program () in
  let gc = Generate.analyze_cached prog in
  let gu = Generate.analyze prog (* cache bypass *) in
  check "bypass allocates fresh" true (not (gc == gu));
  check "equal reduction stats" true
    (gc.Generate.red.Reduction.stats = gu.Generate.red.Reduction.stats);
  Alcotest.(check (list string))
    "equal unit ids"
    (List.map (fun u -> u.Reduction.unit_id) gc.Generate.units)
    (List.map (fun u -> u.Reduction.unit_id) gu.Generate.units);
  Alcotest.(check (list string))
    "equal rendered checker sources"
    (List.map Generate.render_checker_source gc.Generate.units)
    (List.map Generate.render_checker_source gu.Generate.units);
  check "equal instrumented program" true
    (gc.Generate.red.Reduction.instrumented
    = gu.Generate.red.Reduction.instrumented);
  let _, misses = Generate.cache_stats () in
  check_int "bypass did not touch the cache" 1 misses

let test_config_keys_cache () =
  Generate.clear_cache ();
  let prog = Wd_targets.Zkmini.program () in
  let g1 = Generate.analyze_cached prog in
  let g2 =
    Generate.analyze_cached
      ~config:{ Config.default with Config.enhance = false }
      prog
  in
  check "different config, different entry" true (not (g1 == g2));
  let g3 = Generate.analyze_cached prog in
  check "default config hits its own entry" true (g1 == g3);
  let hits, misses = Generate.cache_stats () in
  check_int "two misses" 2 misses;
  check_int "one hit" 1 hits

let test_clear_invalidates () =
  Generate.clear_cache ();
  let prog = Wd_targets.Kvs.program () in
  let g1 = Generate.analyze_cached prog in
  Generate.clear_cache ();
  let g2 = Generate.analyze_cached prog in
  check "fresh analysis after clear" true (not (g1 == g2));
  let hits, misses = Generate.cache_stats () in
  check_int "stats reset by clear" 1 misses;
  check_int "no hits after clear" 0 hits

let test_boot_shares_generated () =
  Generate.clear_cache ();
  let boot () =
    let sched = Sched.create ~seed:1 () in
    let reg = Wd_env.Faultreg.create () in
    Systems.boot ~sched ~reg ~mode:Systems.Wd_generated "kvs"
  in
  let b1 = boot () in
  let b2 = boot () in
  match (b1.Systems.b_generated, b2.Systems.b_generated) with
  | Some g1, Some g2 ->
      check "boots of one system share the analysis" true (g1 == g2)
  | _ -> Alcotest.fail "expected generated watchdogs in Wd_generated mode"

let test_repeated_runs_reuse () =
  Generate.clear_cache ();
  ignore (Campaign.run_scenario "kvs-flush-hang");
  let hits0, misses0 = Generate.cache_stats () in
  ignore (Campaign.run_scenario "kvs-flush-hang");
  let hits1, misses1 = Generate.cache_stats () in
  check_int "second run re-analyses nothing" misses0 misses1;
  check "second run hits the cache" true (hits1 > hits0)

let () =
  Alcotest.run "wd_cache"
    [
      ( "analysis cache",
        [
          Alcotest.test_case "physical reuse" `Quick test_physical_reuse;
          Alcotest.test_case "bypass equals cached" `Quick
            test_bypass_equals_cached;
          Alcotest.test_case "config keys cache" `Quick test_config_keys_cache;
          Alcotest.test_case "clear invalidates" `Quick test_clear_invalidates;
          Alcotest.test_case "boot shares generated" `Quick
            test_boot_shares_generated;
          Alcotest.test_case "repeated runs reuse" `Quick
            test_repeated_runs_reuse;
        ] );
    ]
