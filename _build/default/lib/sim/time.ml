(* Virtual time is an int64 count of nanoseconds since simulation start. *)

type t = int64

let ns n = Int64.of_int n
let us n = Int64.of_int (n * 1_000)
let ms n = Int64.of_int (n * 1_000_000)
let sec n = Int64.of_int (n * 1_000_000_000)

let of_float_sec f = Int64.of_float (f *. 1e9)
let to_float_sec t = Int64.to_float t /. 1e9
let to_float_ms t = Int64.to_float t /. 1e6

let add = Int64.add
let sub = Int64.sub
let ( + ) = Int64.add
let ( - ) = Int64.sub

let zero = 0L
let never = Int64.max_int

let pp ppf t =
  let f = to_float_sec t in
  if f >= 1.0 then Fmt.pf ppf "%.3fs" f
  else if f >= 0.001 then Fmt.pf ppf "%.3fms" (f *. 1e3)
  else Fmt.pf ppf "%Ldns" t

let to_string t = Fmt.str "%a" pp t
