lib/sim/sched.ml: Effect Fmt Heap Int64 List Logs Printexc Queue Rng Time Trace
