examples/zk2201.mli:
