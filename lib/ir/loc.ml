(* Source locations for IR statements. [uid] is unique across a finalised
   program; [path] is the index path through nested blocks, giving a stable
   printable coordinate like "serialize_node:2.1.0". Localisation quality of
   a failure report is measured with [distance]. *)

type t = { func : string; path : int list; uid : int }

let dummy = { func = "?"; path = []; uid = -1 }

let make ~func ~path ~uid = { func; path; uid }

let func t = t.func
let path t = t.path
let uid t = t.uid

let pp ppf t =
  Fmt.pf ppf "%s:%s" t.func
    (String.concat "." (List.map string_of_int t.path))

let to_string t = Fmt.str "%a" pp t

let equal a b = a.uid = b.uid

(* Localisation distance between a reported location and the ground-truth
   fault location: 0 = exact statement, 1 = same function, 2 = elsewhere.
   This is the "pinpoint" metric of Table 2. *)
let distance a b =
  if a.uid = b.uid && a.uid >= 0 then 0
  else if a.func = b.func && a.func <> "?" then 1
  else 2
