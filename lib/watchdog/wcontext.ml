(* Watchdog context table (§3.1 State Synchronization).

   Hooks in the main program push live values in (one-way: the main program
   never reads the table); the driver checks readiness and fetches arguments
   before running a checker. Isolation is the paper's context replication —
   a checker can never alias mutable main-program memory — implemented
   copy-on-write instead of eagerly:

   - values with no VBytes anywhere are persistent, so handing out the
     stored value *is* a deep copy, observably;
   - bytes-containing values are copied on read, with the copy cached
     against the slot's version stamp: re-reading an unchanged slot reuses
     the cached copy (checker execution never mutates argument buffers in
     place — the IR has no in-place bytes primitive — so a cached copy
     stays byte-identical to a fresh one). *)

open Wd_ir.Ast

type slot = {
  mutable value : value option;
  mutable updated_at : int64;
  mutable version : int;       (* bumped on every hook write *)
  mutable copy_version : int;  (* version [copy] reflects; -1 = no copy yet *)
  mutable copy : value;        (* valid iff [copy_version = version] *)
}

type unit_ctx = {
  unit_id : string;
  params : string list; (* ordered: the reduced function's parameter list *)
  slots : (string, slot) Hashtbl.t;
  mutable updates : int;
}

type hook_binding = { hb_unit : string; hb_rev : (string * string) list }
(* hb_rev: (tmp variable captured in main program, context parameter) —
   the reverse of the registered captures, precomputed at bind time so the
   per-hook-fire sink does no list rebuilding. *)

type t = {
  units : (string, unit_ctx) Hashtbl.t;
  hook_bindings : (int, hook_binding) Hashtbl.t;
  mutable total_updates : int;
}

let create () =
  { units = Hashtbl.create 32; hook_bindings = Hashtbl.create 32; total_updates = 0 }

let register_unit t ~unit_id ~params =
  let slots = Hashtbl.create (max 1 (List.length params)) in
  List.iter
    (fun p ->
      Hashtbl.replace slots p
        {
          value = None;
          updated_at = 0L;
          version = 0;
          copy_version = -1;
          copy = VUnit;
        })
    params;
  Hashtbl.replace t.units unit_id { unit_id; params; slots; updates = 0 }

let bind_hook t ~hook_id ~unit_id ~captures =
  Hashtbl.replace t.hook_bindings hook_id
    {
      hb_unit = unit_id;
      hb_rev = List.map (fun (param, tmp) -> (tmp, param)) captures;
    }

let find_unit t unit_id = Hashtbl.find_opt t.units unit_id

(* The sink the main-program interpreter calls when a Hook fires. *)
let sink t ~now hook_id values =
  match Hashtbl.find_opt t.hook_bindings hook_id with
  | None -> ()
  | Some { hb_unit; hb_rev } -> (
      match Hashtbl.find_opt t.units hb_unit with
      | None -> ()
      | Some ctx ->
          List.iter
            (fun (tmp, v) ->
              match List.assoc_opt tmp hb_rev with
              | None -> ()
              | Some param -> (
                  match Hashtbl.find_opt ctx.slots param with
                  | None -> ()
                  | Some slot ->
                      slot.value <- Some v;
                      slot.updated_at <- now;
                      slot.version <- slot.version + 1))
            values;
          ctx.updates <- ctx.updates + 1;
          t.total_updates <- t.total_updates + 1)

let ready t unit_id =
  match find_unit t unit_id with
  | None -> false
  | Some ctx ->
      List.for_all
        (fun p ->
          match Hashtbl.find_opt ctx.slots p with
          | Some { value = Some _; _ } -> true
          | Some { value = None; _ } | None -> false)
        ctx.params

(* Copy-on-write read of one slot: share persistent values outright; copy
   bytes-containing values once per version and reuse the cached copy until
   the next hook write replaces it (the cache swaps the pointer, never
   mutates the handed-out copy, so earlier readers keep a valid value). *)
let slot_read slot v =
  if value_immutable v then v
  else if slot.copy_version = slot.version then slot.copy
  else begin
    let c = copy_value v in
    slot.copy <- c;
    slot.copy_version <- slot.version;
    c
  end

(* Ordered argument list for the reduced function; observably a deep copy. *)
let args t unit_id =
  match find_unit t unit_id with
  | None -> None
  | Some ctx ->
      let rec gather = function
        | [] -> Some []
        | p :: rest -> (
            match Hashtbl.find_opt ctx.slots p with
            | Some ({ value = Some v; _ } as slot) -> (
                match gather rest with
                | Some vs -> Some (slot_read slot v :: vs)
                | None -> None)
            | Some { value = None; _ } | None -> None)
      in
      gather ctx.params

(* Captured (param, value) pairs for failure reports. *)
let snapshot t unit_id =
  match find_unit t unit_id with
  | None -> []
  | Some ctx ->
      List.filter_map
        (fun p ->
          match Hashtbl.find_opt ctx.slots p with
          | Some ({ value = Some v; _ } as slot) -> Some (p, slot_read slot v)
          | Some { value = None; _ } | None -> None)
        ctx.params

(* Age of the stalest slot: how long since the main program last passed this
   point. *)
let staleness t ~now unit_id =
  match find_unit t unit_id with
  | None -> None
  | Some ctx ->
      if ctx.params = [] then None
      else
        List.fold_left
          (fun acc p ->
            match Hashtbl.find_opt ctx.slots p with
            | Some { value = Some _; updated_at; _ } -> (
                let age = Int64.sub now updated_at in
                match acc with
                | Some worst when worst >= age -> acc
                | Some _ | None -> Some age)
            | Some { value = None; _ } | None -> acc)
          None ctx.params

let updates t unit_id =
  match find_unit t unit_id with Some ctx -> ctx.updates | None -> 0

(* The unit's monotone context version: bumped once per hook delivery, so
   an unchanged version means every slot holds exactly the bytes a previous
   reader saw (writes only happen in [sink]). This is the dedup key the
   adaptive scheduler pairs with a checker id, and — because [slot_read]
   caches copies against slot versions — co-scheduled checkers reading the
   same unit at one version share one COW snapshot rather than re-copying. *)
let version = updates

let total_updates t = t.total_updates
