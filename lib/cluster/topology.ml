(* Declarative fleet topology: how many nodes, which target system each one
   runs, and what the link fabric between them looks like. A [spec] is pure
   data consumed by [Sim.boot], so a campaign cell stays a pure function of
   (seed, topology, scenario) and topologies can be validated when the
   config is built, long before any scheduler exists.

   Target systems are typed handles resolved through [registry]: an unknown
   system name fails in [system_of_string] at config-build time instead of
   mid-boot, and a new fleet-capable target extends the variant, making
   every dispatch site exhaustive by construction. *)

type system = Zkmini | Cstore

let system_name = function Zkmini -> "zkmini" | Cstore -> "cstore"
let registry = [ ("zkmini", Zkmini); ("cstore", Cstore) ]
let registered_systems = List.map fst registry

let system_of_string name =
  match List.assoc_opt name registry with
  | Some s -> Ok s
  | None ->
      Error
        (Fmt.str "unknown fleet system %S (registered: %s)" name
           (String.concat ", " registered_systems))

let system_of_string_exn name =
  match system_of_string name with
  | Ok s -> s
  | Error m -> invalid_arg ("Topology.system_of_string_exn: " ^ m)

(* One directed link override. Unlisted links keep the fabric defaults
   (symmetric base latency, unbounded bandwidth). *)
type link = {
  l_src : int;
  l_dst : int;
  l_latency : int64 option;
  l_bytes_per_sec : int option;
}

type spec = {
  t_name : string;
  t_systems : system list; (* node i runs [List.nth t_systems i] *)
  t_links : link list;
}

let nodes t = List.length t.t_systems

let system_at t i =
  match List.nth_opt t.t_systems i with
  | Some s -> s
  | None ->
      invalid_arg
        (Fmt.str "Topology.system_at: node %d out of range (%s has %d nodes)" i
           t.t_name (nodes t))

let node_systems t = List.map system_name t.t_systems

let validate t =
  if t.t_systems = [] then
    invalid_arg (Fmt.str "Topology %s: no nodes" t.t_name);
  let n = nodes t in
  List.iter
    (fun l ->
      if l.l_src < 0 || l.l_src >= n || l.l_dst < 0 || l.l_dst >= n then
        invalid_arg
          (Fmt.str "Topology %s: link %d->%d out of range (%d nodes)" t.t_name
             l.l_src l.l_dst n);
      if l.l_src = l.l_dst then
        invalid_arg
          (Fmt.str "Topology %s: self-link on node %d" t.t_name l.l_src);
      match l.l_bytes_per_sec with
      | Some r when r <= 0 ->
          invalid_arg
            (Fmt.str "Topology %s: link %d->%d has non-positive bandwidth"
               t.t_name l.l_src l.l_dst)
      | Some _ | None -> ())
    t.t_links;
  t

let uniform ?name ~nodes:n system =
  if n <= 0 then invalid_arg "Topology.uniform: need at least one node";
  let name =
    match name with Some x -> x | None -> system_name system
  in
  { t_name = name; t_systems = List.init n (fun _ -> system); t_links = [] }

let mixed ?(name = "mixed") systems =
  validate { t_name = name; t_systems = systems; t_links = [] }

let with_link t ~src ~dst ?latency ?bytes_per_sec () =
  validate
    {
      t with
      t_links =
        { l_src = src; l_dst = dst; l_latency = latency;
          l_bytes_per_sec = bytes_per_sec }
        :: t.t_links;
    }

(* Uniform topologies read as just the system name, so single-system tables
   keep their familiar "zkmini" / "cstore" cells; anything else reads as
   the topology's own name. *)
let describe t =
  match t.t_systems with
  | s :: rest when List.for_all (( = ) s) rest && t.t_links = [] ->
      system_name s
  | _ -> t.t_name

(* --- presets: heterogeneous fleets over an asymmetric fabric -----------

   Both presets model two racks: a local rack holding the leader-priority
   nodes and a remote rack behind asymmetric links — crossing towards the
   remote rack costs 4x the base propagation latency, while the return
   path keeps base latency but squeezes through a bandwidth-bounded pipe
   (so big wire-encoded report ships serialise; heartbeat gossip barely
   notices). zkmini instances sit at fixed slots so scenario victims land
   on known systems; the rest run cstore. *)

let cross_rack t ~remote_from ~cross_latency ~return_bps =
  let n = nodes t in
  let rec add t i j =
    if i >= remote_from then t
    else if j >= n then add t (i + 1) remote_from
    else
      let t = with_link t ~src:i ~dst:j ~latency:cross_latency () in
      let t = with_link t ~src:j ~dst:i ~bytes_per_sec:return_bps () in
      add t i (j + 1)
  in
  add t 0 remote_from

let hetero9 () =
  let systems =
    List.init 9 (fun i -> match i with 1 | 6 -> Zkmini | _ -> Cstore)
  in
  cross_rack
    (mixed ~name:"hetero9" systems)
    ~remote_from:6
    ~cross_latency:(Wd_sim.Time.ms 4)
    ~return_bps:262_144

let hetero15 () =
  let systems =
    List.init 15 (fun i -> match i with 1 | 7 | 13 -> Zkmini | _ -> Cstore)
  in
  cross_rack
    (mixed ~name:"hetero15" systems)
    ~remote_from:10
    ~cross_latency:(Wd_sim.Time.ms 4)
    ~return_bps:262_144

(* Materialise the link overrides for a fabric whose endpoints are
   [node_name i]. *)
let link_profiles t ~node_name =
  List.rev_map
    (fun l ->
      ( node_name l.l_src,
        node_name l.l_dst,
        {
          Wd_env.Net.lp_latency = l.l_latency;
          lp_bytes_per_sec = l.l_bytes_per_sec;
        } ))
    t.t_links

let pp ppf t =
  Fmt.pf ppf "%s: %d nodes [%s], %d link overrides" t.t_name (nodes t)
    (String.concat "," (node_systems t))
    (List.length t.t_links)
