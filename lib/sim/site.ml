(* Global string intern table for hot-path identifiers (trace op keys,
   fault sites, op descriptors). Interning turns repeated per-op string
   construction into an integer id; the canonical string is materialised
   only at render/diff time, so the id never appears in wire bytes or
   digests and the mapping may differ between runs without affecting any
   observable byte.

   Domain-safe and append-only: writers serialise on a mutex; readers go
   through an atomically published id -> string array, so [str] is a plain
   array load with no lock. Per-domain lookup caches keep the common
   intern-of-already-known-string path lock-free too. *)

type id = int

type table = {
  mutable strings : string array; (* index = id; valid below [count] *)
  mutable count : int;
  by_string : (string, int) Hashtbl.t;
}

let mutex = Mutex.create ()

let table =
  { strings = Array.make 256 ""; count = 0; by_string = Hashtbl.create 256 }

(* Readers snapshot this; it is republished after every append so a reader
   holding an id handed out by any domain can always resolve it. *)
let published : string array Atomic.t = Atomic.make table.strings

let count () = table.count

let intern_slow s =
  Mutex.lock mutex;
  let id =
    match Hashtbl.find_opt table.by_string s with
    | Some id -> id
    | None ->
        let id = table.count in
        if id = Array.length table.strings then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit table.strings 0 bigger 0 id;
          table.strings <- bigger
        end;
        table.strings.(id) <- s;
        table.count <- id + 1;
        (* Publish after the slot write: Atomic.set is a release, so any
           domain that observes the new array sees the string in it. *)
        Atomic.set published table.strings;
        Hashtbl.replace table.by_string s id;
        id
  in
  Mutex.unlock mutex;
  id

(* Per-domain cache: maps strings this domain has already interned. Bounded
   by the number of distinct interned strings, which is bounded by the
   static shape of the programs under test (never per-request data). *)
let cache_key : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let intern s =
  let cache = Domain.DLS.get cache_key in
  match Hashtbl.find_opt cache s with
  | Some id -> id
  | None ->
      let id = intern_slow s in
      Hashtbl.replace cache s id;
      id

let str id =
  let arr = Atomic.get published in
  if id < 0 || id >= Array.length arr then
    invalid_arg "Site.str: unknown site id"
  else arr.(id)
