test/test_ir.ml: Alcotest Ast Builder Bytes Int64 Interp List Loc Option Pp Prims QCheck QCheck_alcotest Runtime String Validate Wd_env Wd_ir Wd_sim
