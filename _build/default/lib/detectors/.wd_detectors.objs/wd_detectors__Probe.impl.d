lib/detectors/probe.ml: Wd_sim Wd_watchdog
