(** Checker compiler: lower a synthesized model into
    {!Wd_watchdog.Checker.t} values — one grouped signal-style checker per
    invariant family, all carrying the ["inferred:"] id prefix the harness
    classifies as the inferred checker family. They attach to the standard
    {!Wd_watchdog.Driver} unchanged. *)

val id_prefix : string

val compile :
  ?period:int64 ->
  ?timeout:int64 ->
  model:Synth.model ->
  monitor:Monitor.t ->
  unit ->
  Wd_watchdog.Checker.t list
(** Checkers returned in a canonical (id-sorted) order. Each run drains
    [monitor] and evaluates its family's invariants in model order,
    reporting the first violation: envelope breaches as Hang/Slow,
    never-fail breaches as Error_sig, ordering/exclusion as Assert_fail. *)

val eval :
  Monitor.t ->
  now:int64 ->
  id:string ->
  Synth.invariant ->
  Wd_watchdog.Report.t option
(** Exposed for tests: evaluate a single invariant. *)

val checker_count : Synth.model -> int
