lib/analysis/reduction.mli: Format Vulnerable Wd_ir
