(* Shared campaign-wide CLI flags. Both front ends take the same three
   knobs — [--jobs] (domain-pool width), [--seed] (base seed) and
   [--engine] (IR execution engine) — and must apply them identically:
   `bin/repro` through cmdliner terms, `bench` through a hand-rolled argv
   scan (bechamel owns its argv, so bench cannot run a cmdliner parser).
   Keeping both faces in one module keeps the flags' names, parsing and
   application from drifting apart. *)

open Cmdliner

(* --- cmdliner terms (repro) ------------------------------------------- *)

(* Domain-pool width for the parallel campaign engine. Tables are
   byte-identical at any width; the flag only changes wall-clock. *)
let jobs_arg =
  let doc =
    "Fan simulations out over $(docv) domains (default: \\$WD_JOBS or the \
     host's recommended domain count). Results are identical at any width."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs = function Some n -> Experiments.set_jobs n | None -> ()

(* Base seed for experiments that fan out over seed lists (default 42).
   Results are a pure function of the seed, independent of --jobs. *)
let seed_arg =
  let doc = "Base seed for seed-fanned experiments (default 42)." in
  Arg.(value & opt (some int) None & info [ "seed"; "s" ] ~docv:"S" ~doc)

let apply_seed = function Some s -> Experiments.set_seed s | None -> ()

(* IR execution engine: the closure compiler (default) or the tree-walking
   reference interpreter. Results are byte-identical on either engine. *)
let engine_conv =
  let parse s =
    match Wd_ir.Interp.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg ("unknown engine " ^ s ^ " (compiled|treewalk)"))
  in
  Arg.conv (parse, fun ppf e -> Fmt.string ppf (Wd_ir.Interp.engine_name e))

let engine_arg =
  let doc =
    "IR execution engine: $(b,compiled) (closure-compiled, default) or \
     $(b,treewalk) (reference tree-walker). Results are byte-identical on \
     either engine; only wall-clock changes."
  in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let apply_engine = function Some e -> Experiments.set_engine e | None -> ()

(* --- plain argv scan (bench) ------------------------------------------- *)

type opts = {
  o_jobs : int option;
  o_seed : int option;
  o_engine : Wd_ir.Interp.engine option;
}

let no_opts = { o_jobs = None; o_seed = None; o_engine = None }

(* Pick the shared flags out of an argv tail, leaving everything else
   (e.g. bench's [--json]) alone; only a malformed value is an error. *)
let scan argv =
  let rec go acc = function
    | [] -> Ok acc
    | "--jobs" :: v :: rest | "-j" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> go { acc with o_jobs = Some n } rest
        | Some _ | None -> Error (Fmt.str "bad --jobs value %S" v))
    | "--seed" :: v :: rest | "-s" :: v :: rest -> (
        match int_of_string_opt v with
        | Some s -> go { acc with o_seed = Some s } rest
        | None -> Error (Fmt.str "bad --seed value %S" v))
    | "--engine" :: v :: rest -> (
        match Wd_ir.Interp.engine_of_string v with
        | Some e -> go { acc with o_engine = Some e } rest
        | None -> Error (Fmt.str "unknown engine %S (compiled|treewalk)" v))
    | _ :: rest -> go acc rest
  in
  go no_opts argv

let apply_opts o =
  apply_jobs o.o_jobs;
  apply_seed o.o_seed;
  apply_engine o.o_engine

(* --- environment configuration ----------------------------------------- *)

(* The typed face of the WD_* environment variables. [Wd_config.Env] is the
   single parse site (the process-wide knobs in [Wd_parallel.Pool] and
   [Wd_ir.Interp] read the same memoised record); this alias re-exposes it
   where front ends already look for flag handling, with the engine lifted
   to the interpreter's type. *)

type config = {
  c_jobs : int option;
  c_minor_heap_words : int option;
  c_engine : Wd_ir.Interp.engine option;
}

let config () =
  Result.map
    (fun (e : Wd_config.Env.t) ->
      {
        c_jobs = e.Wd_config.Env.jobs;
        c_minor_heap_words = e.Wd_config.Env.minor_heap_words;
        c_engine =
          Option.map
            (fun g -> (g :> Wd_ir.Interp.engine))
            e.Wd_config.Env.engine;
      })
    (Wd_config.Env.load ())
