(** The watchdog driver (§3.1): schedules checkers, executes each run in a
    confined worker fiber with a deadline, catches failure signatures
    (error, crash, hang, slowness), debounces and validates them, and
    surfaces reports to registered actions.

    How checkers are scheduled is a typed {!Schedule.policy} chosen at
    {!create}: {!Schedule.fixed} reproduces the historical per-checker
    daemon loops exactly, while [Schedule.adaptive ()] runs one central
    loop that throttles cadence under load pressure (within a hard
    detection-latency bound), batches co-scheduled context syncs, and
    deduplicates runs whose context version is unchanged.

    A hung or crashed checker never takes the driver down. *)

type t

val create : ?policy:Policy.t -> ?schedule:Schedule.policy -> Wd_sim.Sched.t -> t
(** [schedule] defaults to {!Schedule.fixed} — the historical behaviour,
    bit-for-bit. *)

val schedule : t -> Schedule.t
(** The driver's scheduler instance: wire load probes in
    ({!Schedule.set_load_probe}) and read {!Schedule.stats} out. *)

val add_checker : t -> Checker.t -> unit
(** Before {!start}: queued. After: scheduled immediately. *)

val start : t -> unit
(** Put every queued checker on the schedule: one daemon loop per checker
    under a fixed policy, one shared central loop under an adaptive one. *)

val stop : t -> unit

val on_report : t -> (Report.t -> unit) -> unit
(** Actions run on every surfaced report (alerting, recovery, ...). *)

val reports : t -> Report.t list
(** Surfaced reports, oldest first. *)

val suppressed : t -> Report.t list
(** Reports held back by validation (policy [suppress_unvalidated]). *)

val first_report : t -> Report.t option
val first_report_where : t -> (Report.t -> bool) -> Report.t option

type checker_stats = {
  cs_id : string;
  cs_kind : Checker.kind;
  cs_executions : int;
  cs_failures : int;
  cs_skips : int;
  cs_timeouts : int;
  cs_dedups : int;
      (** adaptive-schedule runs skipped on unchanged context version *)
}

val stats : t -> checker_stats list
val checker_count : t -> int
