lib/harness/tables.mli:
