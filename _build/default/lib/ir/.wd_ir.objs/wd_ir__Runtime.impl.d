lib/ir/runtime.ml: Ast Fmt Hashtbl List Wd_env Wd_sim
