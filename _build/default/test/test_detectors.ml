(* Tests for the baseline detectors: heartbeat crash FD, probe checkers,
   signal checkers, Panorama-style observers. *)

module Sched = Wd_sim.Sched
module Time = Wd_sim.Time

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_net f =
  let s = Sched.create ~seed:8 () in
  let reg = Wd_env.Faultreg.create () in
  let net = Wd_env.Net.create ~reg ~rng:(Wd_sim.Rng.create ~seed:9) "n" in
  Wd_env.Net.register net "node";
  Wd_env.Net.register net "mon";
  f s reg net

(* --- heartbeat --- *)

let spawn_beater ?(stop_at = Time.never) s net =
  ignore
    (Sched.spawn ~name:"beater" ~daemon:true s (fun () ->
         while Sched.now s < stop_at do
           Wd_env.Net.send net ~src:"node" ~dst:"mon" (Wd_ir.Ast.VStr "hb:node");
           Sched.sleep (Time.ms 500)
         done))

let test_heartbeat_healthy () =
  with_net (fun s _reg net ->
      let hb =
        Wd_detectors.Heartbeat.create ~timeout:(Time.sec 2) ~sched:s ~net
          ~endpoint:"mon" ~match_prefix:"hb:node" ()
      in
      spawn_beater s net;
      ignore (Sched.run ~until:(Time.sec 10) s);
      check "no suspicion" false (Wd_detectors.Heartbeat.suspected hb);
      check "beats counted" true (Wd_detectors.Heartbeat.beats hb >= 15))

let test_heartbeat_detects_silence () =
  with_net (fun s _reg net ->
      let hb =
        Wd_detectors.Heartbeat.create ~timeout:(Time.sec 2) ~sched:s ~net
          ~endpoint:"mon" ~match_prefix:"hb:node" ()
      in
      spawn_beater ~stop_at:(Time.sec 5) s net;
      ignore (Sched.run ~until:(Time.sec 15) s);
      check "suspected" true (Wd_detectors.Heartbeat.suspected hb);
      match Wd_detectors.Heartbeat.suspected_at hb with
      | Some at ->
          (* silence from ~5s, timeout 2s: suspicion in the 6.5..9s range *)
          check "timely" true (at > Time.sec 6 && at < Time.sec 9)
      | None -> Alcotest.fail "no timestamp")

let test_heartbeat_ignores_other_prefixes () =
  with_net (fun s _reg net ->
      let hb =
        Wd_detectors.Heartbeat.create ~timeout:(Time.sec 2) ~sched:s ~net
          ~endpoint:"mon" ~match_prefix:"hb:other" ()
      in
      spawn_beater s net;
      ignore (Sched.run ~until:(Time.sec 10) s);
      (* beats from "node" do not match "other": the FD suspects *)
      check "suspected the absent node" true (Wd_detectors.Heartbeat.suspected hb))

(* --- probe --- *)

let run_checker_once s c =
  let result = ref Wd_watchdog.Checker.Pass in
  ignore
    (Sched.spawn s (fun () -> result := c.Wd_watchdog.Checker.run ~now:(Sched.now s)));
  ignore (Sched.run ~until:(Time.sec 30) s);
  !result

let test_probe_roundtrip_pass_and_fail () =
  let s = Sched.create ~seed:8 () in
  let store = Hashtbl.create 4 in
  let healthy = ref true in
  let c =
    Wd_detectors.Probe.roundtrip ~id:"probe:x"
      ~set:(fun () ->
        if !healthy then begin
          Hashtbl.replace store "k" "v";
          `Ok ()
        end
        else `Timeout)
      ~get:(fun () ->
        match Hashtbl.find_opt store "k" with
        | Some v -> `Ok v
        | None -> `Err "missing")
      ~expect:(fun v -> v = "v")
  in
  (match run_checker_once s c with
  | Wd_watchdog.Checker.Pass -> ()
  | _ -> Alcotest.fail "healthy probe must pass");
  healthy := false;
  let s2 = Sched.create ~seed:8 () in
  match run_checker_once s2 c with
  | Wd_watchdog.Checker.Fail r ->
      check "probe kind" true (c.Wd_watchdog.Checker.kind = Wd_watchdog.Checker.Probe);
      check "no localisation" true (r.Wd_watchdog.Report.loc = None)
  | _ -> Alcotest.fail "unhealthy probe must fail"

(* --- signal --- *)

let test_signal_queue_depth () =
  let s = Sched.create ~seed:8 () in
  let reg = Wd_env.Faultreg.create () in
  let res = Wd_ir.Runtime.create ~reg ~rng:(Wd_sim.Rng.create ~seed:1) in
  let q = Wd_ir.Runtime.queue res "q" in
  let c =
    Wd_detectors.Signalmon.queue_depth ~id:"signal:q" ~res ~queue:"q" ~max_depth:3
  in
  (match run_checker_once s c with
  | Wd_watchdog.Checker.Pass -> ()
  | _ -> Alcotest.fail "empty queue is fine");
  for i = 1 to 10 do
    ignore (Wd_sim.Channel.try_send q (Wd_ir.Ast.VInt i))
  done;
  let s2 = Sched.create ~seed:8 () in
  match run_checker_once s2 c with
  | Wd_watchdog.Checker.Fail _ -> ()
  | _ -> Alcotest.fail "deep queue must alarm"

let test_signal_mem_utilisation () =
  let s = Sched.create ~seed:8 () in
  let reg = Wd_env.Faultreg.create () in
  let mem = Wd_env.Memory.create ~reg ~capacity:1000 "m" in
  let c =
    Wd_detectors.Signalmon.mem_utilisation ~id:"signal:m" ~mem ~max_util:0.5
  in
  (match run_checker_once s c with
  | Wd_watchdog.Checker.Pass -> ()
  | _ -> Alcotest.fail "empty pool is fine");
  ignore
    (Sched.spawn (Sched.create ()) (fun () -> ()));
  let s2 = Sched.create ~seed:8 () in
  ignore
    (Sched.spawn s2 (fun () -> Wd_env.Memory.alloc mem 700));
  ignore (Sched.run s2);
  let s3 = Sched.create ~seed:8 () in
  match run_checker_once s3 c with
  | Wd_watchdog.Checker.Fail _ -> ()
  | _ -> Alcotest.fail "high utilisation must alarm"

let test_signal_sleep_overshoot () =
  (* §3.3: the checker sleeps briefly; allocation pressure stretches the
     elapsed time, exposing GC-pause-like stalls *)
  let s = Sched.create ~seed:8 () in
  let reg = Wd_env.Faultreg.create () in
  let mem = Wd_env.Memory.create ~reg ~capacity:10_000 ~pause_threshold:0.05 ~max_pause:(Time.sec 1) "m" in
  let c =
    Wd_detectors.Signalmon.sleep_overshoot ~id:"signal:pause" ~mem
      ~expected:(Time.ms 50) ~tolerance:(Time.ms 100)
  in
  (match run_checker_once s c with
  | Wd_watchdog.Checker.Pass -> ()
  | _ -> Alcotest.fail "no pressure, no alarm");
  (* fill the pool so allocations stall *)
  let s2 = Sched.create ~seed:8 () in
  ignore (Sched.spawn s2 (fun () -> Wd_env.Memory.alloc mem 8_000));
  ignore (Sched.run s2);
  let s3 = Sched.create ~seed:8 () in
  match run_checker_once s3 c with
  | Wd_watchdog.Checker.Fail r ->
      check "names the pause" true
        (match r.Wd_watchdog.Report.fkind with
        | Wd_watchdog.Report.Error_sig m -> String.length m > 0
        | _ -> false)
  | _ -> Alcotest.fail "pressure must alarm"

(* --- observer --- *)

let test_observer_threshold () =
  let s = Sched.create ~seed:8 () in
  let o = Wd_detectors.Observer.create ~threshold:0.5 ~min_samples:4 s in
  List.iter
    (fun e -> Wd_detectors.Observer.observe o e)
    [ Wd_detectors.Observer.Success; Wd_detectors.Observer.Success ];
  check "healthy" false (Wd_detectors.Observer.suspected o);
  List.iter
    (fun e -> Wd_detectors.Observer.observe o e)
    [ Wd_detectors.Observer.Timeout; Wd_detectors.Observer.Failure "e" ];
  check "half bad over min samples" true (Wd_detectors.Observer.suspected o)

let test_observer_window_prunes () =
  let s = Sched.create ~seed:8 () in
  let o = Wd_detectors.Observer.create ~window:(Time.sec 1) ~min_samples:2 s in
  ignore
    (Sched.spawn s (fun () ->
         Wd_detectors.Observer.observe o (Wd_detectors.Observer.Failure "old");
         Sched.sleep (Time.sec 5);
         (* the old failure fell out of the window *)
         Wd_detectors.Observer.observe o Wd_detectors.Observer.Success;
         check_int "only fresh evidence" 1 (Wd_detectors.Observer.observations o)));
  ignore (Sched.run s);
  check "never suspected" false (Wd_detectors.Observer.suspected o)

let test_observer_of_result () =
  check "ok" true (Wd_detectors.Observer.of_result (`Ok 1) = Wd_detectors.Observer.Success);
  check "timeout" true
    (Wd_detectors.Observer.of_result `Timeout = Wd_detectors.Observer.Timeout);
  check "err" true
    (Wd_detectors.Observer.of_result (`Err "x") = Wd_detectors.Observer.Failure "x")

let () =
  Alcotest.run "wd_detectors"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "healthy" `Quick test_heartbeat_healthy;
          Alcotest.test_case "detects silence" `Quick test_heartbeat_detects_silence;
          Alcotest.test_case "prefix filter" `Quick test_heartbeat_ignores_other_prefixes;
        ] );
      ( "probe",
        [ Alcotest.test_case "roundtrip pass/fail" `Quick test_probe_roundtrip_pass_and_fail ]
      );
      ( "signal",
        [
          Alcotest.test_case "queue depth" `Quick test_signal_queue_depth;
          Alcotest.test_case "mem utilisation" `Quick test_signal_mem_utilisation;
          Alcotest.test_case "sleep overshoot (GC pause)" `Quick
            test_signal_sleep_overshoot;
        ] );
      ( "observer",
        [
          Alcotest.test_case "threshold" `Quick test_observer_threshold;
          Alcotest.test_case "window prunes" `Quick test_observer_window_prunes;
          Alcotest.test_case "of_result" `Quick test_observer_of_result;
        ] );
    ]
