lib/autowatchdog/reproduce.ml: Fmt Generate List Option Printexc Wd_analysis Wd_env Wd_ir Wd_sim Wd_watchdog
