(* Execution tracing: a bounded ring buffer of scheduler events (spawns,
   blocks with reasons, wakes, exits) and — when the interpreter runs with
   tracing enabled — operation-level events (start/end/fail of environment
   operations, keyed "kind:target:operand-prefix"). Opt-in via
   [Sched.set_trace]; the last events before a detection are the postmortem
   timeline a report invites you to read, and the op events are the raw
   material the trace miner turns into inferred checkers.

   Storage is struct-of-arrays: one int/string column per field, indexed by
   ring position. Recording an event is a handful of array stores — no
   record or variant block is allocated on the hot path. Op identifiers are
   interned ({!Site}) and timestamps are stored as native ints (virtual ns
   fits in 62 bits); the boxed [event] view is materialised only when a
   consumer reads the ring ([recent]/[since]), so readers see exactly the
   same values as before the columnar rewrite. *)

type kind =
  | Spawned
  | Blocked of string  (* the suspend reason *)
  | Resumed
  | Finished of string (* "exited" / "failed: ..." / "killed" *)
  | Op_start of { op : string; node : string; func : string }
  | Op_end of { op : string; node : string; func : string; dur : int64 }
  | Op_fail of { op : string; node : string; func : string; err : string }

type event = { at : int64; task_id : int; task_name : string; kind : kind }

(* column tags *)
let tag_spawned = 0
let tag_blocked = 1
let tag_resumed = 2
let tag_finished = 3
let tag_op_start = 4
let tag_op_end = 5
let tag_op_fail = 6

type t = {
  capacity : int;
  c_tag : int array;
  c_at : int array; (* virtual ns as native int *)
  c_task_id : int array;
  c_task_name : string array;
  c_op : int array; (* Site.id, op events only *)
  c_node : int array; (* Site.id *)
  c_func : int array; (* Site.id *)
  c_dur : int array; (* Op_end duration, ns *)
  c_note : string array; (* Blocked reason / Finished how / Op_fail err *)
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    c_tag = Array.make capacity 0;
    c_at = Array.make capacity 0;
    c_task_id = Array.make capacity 0;
    c_task_name = Array.make capacity "";
    c_op = Array.make capacity 0;
    c_node = Array.make capacity 0;
    c_func = Array.make capacity 0;
    c_dur = Array.make capacity 0;
    c_note = Array.make capacity "";
    next = 0;
    total = 0;
  }

(* Claim the next ring slot and stamp the shared columns. *)
let push t ~at ~task_id ~task_name =
  let i = t.next in
  t.next <- (i + 1) mod t.capacity;
  t.total <- t.total + 1;
  t.c_at.(i) <- Int64.to_int at;
  t.c_task_id.(i) <- task_id;
  t.c_task_name.(i) <- task_name;
  i

let spawned t ~at ~task_id ~task_name =
  let i = push t ~at ~task_id ~task_name in
  t.c_tag.(i) <- tag_spawned

let resumed t ~at ~task_id ~task_name =
  let i = push t ~at ~task_id ~task_name in
  t.c_tag.(i) <- tag_resumed

let blocked t ~at ~task_id ~task_name ~reason =
  let i = push t ~at ~task_id ~task_name in
  t.c_tag.(i) <- tag_blocked;
  t.c_note.(i) <- reason

let finished t ~at ~task_id ~task_name ~how =
  let i = push t ~at ~task_id ~task_name in
  t.c_tag.(i) <- tag_finished;
  t.c_note.(i) <- how

let op_start t ~at ~task_id ~task_name ~op ~node ~func =
  let i = push t ~at ~task_id ~task_name in
  t.c_tag.(i) <- tag_op_start;
  t.c_op.(i) <- op;
  t.c_node.(i) <- node;
  t.c_func.(i) <- func

let op_end t ~at ~task_id ~task_name ~op ~node ~func ~dur =
  let i = push t ~at ~task_id ~task_name in
  t.c_tag.(i) <- tag_op_end;
  t.c_op.(i) <- op;
  t.c_node.(i) <- node;
  t.c_func.(i) <- func;
  t.c_dur.(i) <- Int64.to_int dur

let op_fail t ~at ~task_id ~task_name ~op ~node ~func ~err =
  let i = push t ~at ~task_id ~task_name in
  t.c_tag.(i) <- tag_op_fail;
  t.c_op.(i) <- op;
  t.c_node.(i) <- node;
  t.c_func.(i) <- func;
  t.c_note.(i) <- err

(* Boxed-kind compatibility entry point (tests, synthetic traces). *)
let record t ~at ~task_id ~task_name kind =
  match kind with
  | Spawned -> spawned t ~at ~task_id ~task_name
  | Resumed -> resumed t ~at ~task_id ~task_name
  | Blocked reason -> blocked t ~at ~task_id ~task_name ~reason
  | Finished how -> finished t ~at ~task_id ~task_name ~how
  | Op_start { op; node; func } ->
      op_start t ~at ~task_id ~task_name ~op:(Site.intern op)
        ~node:(Site.intern node) ~func:(Site.intern func)
  | Op_end { op; node; func; dur } ->
      op_end t ~at ~task_id ~task_name ~op:(Site.intern op)
        ~node:(Site.intern node) ~func:(Site.intern func) ~dur
  | Op_fail { op; node; func; err } ->
      op_fail t ~at ~task_id ~task_name ~op:(Site.intern op)
        ~node:(Site.intern node) ~func:(Site.intern func) ~err

let total t = t.total

(* Materialise the boxed view of ring slot [i]. *)
let event_of_slot t i =
  let kind =
    match t.c_tag.(i) with
    | 0 -> Spawned
    | 1 -> Blocked t.c_note.(i)
    | 2 -> Resumed
    | 3 -> Finished t.c_note.(i)
    | 4 ->
        Op_start
          {
            op = Site.str t.c_op.(i);
            node = Site.str t.c_node.(i);
            func = Site.str t.c_func.(i);
          }
    | 5 ->
        Op_end
          {
            op = Site.str t.c_op.(i);
            node = Site.str t.c_node.(i);
            func = Site.str t.c_func.(i);
            dur = Int64.of_int t.c_dur.(i);
          }
    | _ ->
        Op_fail
          {
            op = Site.str t.c_op.(i);
            node = Site.str t.c_node.(i);
            func = Site.str t.c_func.(i);
            err = t.c_note.(i);
          }
  in
  {
    at = Int64.of_int t.c_at.(i);
    task_id = t.c_task_id.(i);
    task_name = t.c_task_name.(i);
    kind;
  }

(* The most recent [n] events, oldest first. *)
let recent t n =
  let n = min n (min t.total t.capacity) in
  let start = (t.next - n + (t.capacity * 2)) mod t.capacity in
  List.init n (fun i -> event_of_slot t ((start + i) mod t.capacity))

(* Events with global index >= [cursor], oldest first, and the new cursor
   (= total). Events that already fell off the ring are lost — the second
   component counts them so an incremental consumer can tell. *)
let since t cursor =
  let cursor = max 0 cursor in
  let available = min t.total t.capacity in
  let oldest_kept = t.total - available in
  let dropped = max 0 (oldest_kept - cursor) in
  let n = max 0 (t.total - max cursor oldest_kept) in
  (recent t n, dropped, t.total)

let kind_name = function
  | Spawned -> "spawned"
  | Blocked reason -> "blocked: " ^ reason
  | Resumed -> "resumed"
  | Finished how -> "finished: " ^ how
  | Op_start { op; node; _ } -> Printf.sprintf "op-start %s @%s" op node
  | Op_end { op; node; dur; _ } ->
      Printf.sprintf "op-end %s @%s (%Ldns)" op node dur
  | Op_fail { op; node; err; _ } ->
      Printf.sprintf "op-fail %s @%s: %s" op node err

let pp_event ppf e =
  Fmt.pf ppf "[%a] #%d %-24s %s" Time.pp e.at e.task_id e.task_name
    (kind_name e.kind)

let dump ?(n = 50) ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (recent t n)
