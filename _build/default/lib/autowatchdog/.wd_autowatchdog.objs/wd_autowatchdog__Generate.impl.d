lib/autowatchdog/generate.ml: Buffer Config Fmt Format Int64 List Recipes String Wd_analysis Wd_env Wd_ir Wd_sim Wd_watchdog
