test/test_sim.ml: Alcotest Array Channel Cond Fmt Fun Heap Int64 List QCheck QCheck_alcotest Rng Sched Smutex Time Trace Wd_sim
