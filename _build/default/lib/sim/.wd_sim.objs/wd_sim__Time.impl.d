lib/sim/time.ml: Fmt Int64
