lib/autowatchdog/config.mli: Wd_analysis
