lib/sim/channel.ml: Cond Fmt Queue
