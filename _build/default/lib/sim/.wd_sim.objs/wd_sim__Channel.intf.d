lib/sim/channel.mli:
