lib/ir/prims.ml: Ast Bytes Char Fmt Int64 List String Wd_env
