(* Checker recipes (§4.1 step "enhance C with runtime checks"): per-op-kind
   safety checks appended to reduced units. Liveness checks (timeouts,
   try-lock budgets) are enforced by the driver and checker-mode
   interpreter; recipes add the *safety* side:

   - after a mimicked full write: read back and verify the checksum (the
     checker writes to its scratch namespace, so the verification is
     side-effect free while still exercising the real device — HDFS
     disk-checker style);
   - before a mimicked read of a context-supplied path: an existence guard.
     The main program may legitimately have deleted the file since the hook
     captured it (e.g. compaction consumed a segment); reading a vanished
     file is not a fault, but a wedged or corrupting device still is.

   Inserted statements reuse the anchor operation's location so that any
   failure they raise pinpoints the original program statement. *)

open Wd_ir.Ast

(* Read-back + suffix assertion after a mimicked append: the checker's
   scratch copy of the file must end with the bytes just appended. *)
let enhance_disk_append ~loc ~target ~path_arg ~data_arg tail =
  let rb = "__rb" in
  { node = Op { kind = Disk_read; target; args = [ path_arg ]; bind = Some rb };
    loc }
  :: {
       node =
         Assert
           ( Prim ("ends_with", [ Var rb; data_arg ]),
             Fmt.str "appended bytes not found at tail on %s" target );
       loc;
     }
  :: tail

(* Read-back + checksum assertion after a mimicked full write. *)
let enhance_disk_write ~loc ~target ~path_arg ~data_arg tail =
  let rb = "__rb" in
  { node = Op { kind = Disk_read; target; args = [ path_arg ]; bind = Some rb };
    loc }
  :: {
       node =
         Assert
           ( Binop
               ( Eq,
                 Prim ("checksum", [ Var rb ]),
                 Prim ("checksum", [ data_arg ]) ),
             Fmt.str "read-back checksum mismatch on %s" target );
       loc;
     }
  :: tail

(* A mimicked read of a context-supplied path must tolerate staleness: the
   main program may have legitimately consumed the file since the hook fired
   (compaction inputs, rotated segments). If the captured path is gone, read
   a live file from the same directory instead — same device, same region,
   same fault domain (the HDFS disk-checker tactic). Only "no such file" is
   benign; any other error is a finding, and a hang is caught by the driver
   timeout with this statement's location in flight. *)
let guard_disk_read ~loc ~target ~path_arg read_stmt =
  let ex = "__ex" and alts = "__alts" and e = "__e" in
  let read_alt =
    match read_stmt.node with
    | Op { kind; target = t; bind; _ } ->
        {
          node =
            Op { kind; target = t; args = [ Prim ("list_head", [ Var alts ]) ]; bind };
          loc;
        }
    | _ -> read_stmt
  in
  let body =
    [
      { node = Op { kind = Disk_exists; target; args = [ path_arg ]; bind = Some ex };
        loc };
      {
        node =
          If
            ( Var ex,
              [ read_stmt ],
              [
                {
                  node =
                    Op
                      {
                        kind = Disk_list;
                        target;
                        args = [ Prim ("dirname", [ path_arg ]) ];
                        bind = Some alts;
                      };
                  loc;
                };
                {
                  node =
                    If
                      ( Binop (Gt, Unop (Len, Var alts), Const (VInt 0)),
                        [ read_alt ],
                        [] );
                  loc;
                };
              ] );
        loc;
      };
    ]
  in
  let handler =
    [
      {
        node =
          Assert
            ( Prim ("contains", [ Var e; Const (VStr "no such file") ]),
              "unexpected read error" );
        loc;
      };
    ]
  in
  [ { node = Try (body, e, handler); loc } ]

let rec enhance_block block =
  List.concat_map
    (fun st ->
      match st.node with
      | Op { kind = Disk_write; target; args = [ p; d ]; _ } ->
          st :: enhance_disk_write ~loc:st.loc ~target ~path_arg:p ~data_arg:d []
      | Op { kind = Disk_append; target; args = [ p; d ]; _ } ->
          st :: enhance_disk_append ~loc:st.loc ~target ~path_arg:p ~data_arg:d []
      | Op { kind = Disk_read; target; args = [ p ]; _ } ->
          guard_disk_read ~loc:st.loc ~target ~path_arg:p st
      | Sync (lock, body) -> [ { st with node = Sync (lock, enhance_block body) } ]
      | If (c, t, e) ->
          [ { st with node = If (c, enhance_block t, enhance_block e) } ]
      | While _ | Foreach _ | Try _ | Let _ | Assign _ | Op _ | Call _
      | Return _ | Assert _ | Compute _ | Hook _ ->
          [ st ])
    block

let enhance_unit (u : Wd_analysis.Reduction.unit_) =
  let ufunc = u.ufunc in
  { u with Wd_analysis.Reduction.ufunc = { ufunc with body = enhance_block ufunc.body } }
