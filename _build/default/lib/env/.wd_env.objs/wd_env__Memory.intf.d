lib/env/memory.mli: Faultreg
