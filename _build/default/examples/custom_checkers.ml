(* Hand-written probe and signal checkers alongside a generated mimic
   watchdog (§3.3: "a system can design all three types of watchdogs in
   combination"), plus the probe-after-mimic validation policy from §5:
   when a mimic checker barks, a probe checker assesses client impact
   before the alarm is surfaced.

     dune exec examples/custom_checkers.exe *)

module Kvs = Wd_targets.Kvs
module Generate = Wd_autowatchdog.Generate

let () =
  let prog = Kvs.program () in
  let g = Generate.analyze prog in
  let sched = Wd_sim.Sched.create ~seed:99 () in
  let reg = Wd_env.Faultreg.create () in
  let kvs =
    Kvs.boot ~sched ~reg ~prog:g.Generate.red.Wd_analysis.Reduction.instrumented ()
  in

  (* §5: validate mimic alarms through the public API before surfacing. *)
  let validate _report =
    match Kvs.set kvs ~key:"__validate" ~value:"x" with
    | `Ok _ -> (
        match Kvs.get kvs ~key:"__validate" with `Ok _ -> false | _ -> true)
    | `Timeout | `Err _ -> true
  in
  let policy = Wd_watchdog.Policy.(with_validation validate default) in
  let driver = Wd_watchdog.Driver.create ~policy sched in

  (* generated mimic checkers *)
  let _ = Generate.attach g ~sched ~main:kvs.Kvs.leader ~driver in

  (* a hand-written probe checker: SET/GET round trip through the API *)
  Wd_watchdog.Driver.add_checker driver
    (Wd_detectors.Probe.roundtrip ~id:"probe:roundtrip"
       ~set:(fun () -> Kvs.set kvs ~key:"__probe" ~value:"canary")
       ~get:(fun () -> Kvs.get kvs ~key:"__probe")
       ~expect:(fun v -> v = Wd_ir.Ast.VStr "val:canary"));

  (* hand-written signal checkers: queue backlog + §3.3's sleep overshoot *)
  Wd_watchdog.Driver.add_checker driver
    (Wd_detectors.Signalmon.queue_depth ~id:"signal:backlog" ~res:kvs.Kvs.res
       ~queue:Kvs.request_queue ~max_depth:32);
  Wd_watchdog.Driver.add_checker driver
    (Wd_detectors.Signalmon.sleep_overshoot ~id:"signal:gc-pause"
       ~mem:kvs.Kvs.mem ~expected:(Wd_sim.Time.ms 50)
       ~tolerance:(Wd_sim.Time.ms 150));

  Wd_watchdog.Driver.on_report driver (fun r ->
      Fmt.pr "ALARM %a@." Wd_watchdog.Report.pp r);
  ignore (Kvs.start kvs);
  Wd_watchdog.Driver.start driver;

  ignore
    (Wd_sim.Sched.spawn ~name:"client" ~daemon:true sched (fun () ->
         let i = ref 0 in
         while true do
           Wd_sim.Sched.sleep (Wd_sim.Time.ms 60);
           incr i;
           ignore (Kvs.set kvs ~key:(Fmt.str "k%d" (!i mod 30)) ~value:"v")
         done));

  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 8) sched);
  Fmt.pr "t=8s   %d checkers running (mimic + probe + signal), all quiet@."
    (Wd_watchdog.Driver.checker_count driver);

  (* inject a WAL error: mimic pinpoints, probe validates impact *)
  Wd_env.Faultreg.inject reg
    {
      Wd_env.Faultreg.id = "demo-wal-eio";
      site_pattern = "disk:kvs.disk:append:wal/*";
      behaviour = Wd_env.Faultreg.Error "EIO";
      start_at = Wd_sim.Time.sec 8;
      stop_at = Wd_sim.Time.never;
      once = false;
    };
  Fmt.pr "t=8s   injected: WAL appends fail with EIO@.";
  ignore (Wd_sim.Sched.run ~until:(Wd_sim.Time.sec 20) sched);

  let reports = Wd_watchdog.Driver.reports driver in
  Fmt.pr "@.%d alarm(s); validated flags show the probe-after-mimic check:@."
    (List.length reports);
  List.iter (fun r -> Fmt.pr "  %a@." Wd_watchdog.Report.pp r) reports
