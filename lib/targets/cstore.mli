(** cstore — a Cassandra-like store: commit log + memtable on the write
    path, memtable flushes to SSTables, and a background SSTable compaction
    task — the paper's "is the compaction background task stuck?" example:
    a disk hang inside compaction blocks only that task, so clients stay
    healthy and every extrinsic detector stays green. *)

val node : string
val seed_node : string
val disk_name : string
val net_name : string
val mem_name : string
val request_queue : string
val memtable_flush_threshold : int
val compaction_fanin : int

val program : ?spin_bug:bool -> unit -> Wd_ir.Ast.program
(** [spin_bug] selects the variant whose compaction spins forever on a
    stale condition — detectable only by progress checkers. *)

val entries : string list

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Wd_ir.Runtime.resources;
  prog : Wd_ir.Ast.program;
  main : Wd_ir.Interp.t;
  disk : Wd_env.Disk.t;
  net : Wd_ir.Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
}

val boot :
  ?engine:Wd_ir.Interp.engine ->
  ?mem_capacity:int ->
  sched:Wd_sim.Sched.t ->
  reg:Wd_env.Faultreg.t ->
  prog:Wd_ir.Ast.program ->
  unit ->
  t

val start : t -> Wd_sim.Sched.task list

val write :
  ?timeout:int64 -> t -> key:string -> value:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val read :
  ?timeout:int64 -> t -> key:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val compactions : t -> int
val sstable_count : t -> int
