(** zkmini — a ZooKeeper-like coordination service structured to reproduce
    Figure 2's snapshot-serialisation chain and the ZOOKEEPER-2201 gray
    failure: a network fault blocks the leader's remote sync inside the
    commit critical section, hanging all writes while heartbeats and the
    admin command keep answering. *)

val leader_node : string
val follower1 : string
val follower2 : string
val monitor_node : string
val disk_name : string
val follower_disk_name : string
val net_name : string
val mem_name : string
val request_queue : string
val admin_queue : string
val snap_count : int

val program : unit -> Wd_ir.Ast.program
val leader_entries : string list

type t = {
  sched : Wd_sim.Sched.t;
  reg : Wd_env.Faultreg.t;
  res : Wd_ir.Runtime.resources;
  prog : Wd_ir.Ast.program;
  leader : Wd_ir.Interp.t;
  f1 : Wd_ir.Interp.t;
  f2 : Wd_ir.Interp.t;
  disk : Wd_env.Disk.t;
  fdisk : Wd_env.Disk.t;
  net : Wd_ir.Ast.value Wd_env.Net.t;
  mem : Wd_env.Memory.t;
  rpc : Rpcq.t;
  admin_rpc : Rpcq.t;
}

val boot :
  ?engine:Wd_ir.Interp.engine ->
  ?mem_capacity:int ->
  sched:Wd_sim.Sched.t ->
  reg:Wd_env.Faultreg.t ->
  prog:Wd_ir.Ast.program ->
  unit ->
  t

val start : t -> Wd_sim.Sched.task list

val create :
  ?timeout:int64 -> t -> path:string -> data:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]
(** Create a znode through the full write pipeline. *)

val get :
  ?timeout:int64 -> t -> path:string ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]

val ruok :
  ?timeout:int64 -> t ->
  [ `Ok of Wd_ir.Ast.value | `Err of string | `Timeout ]
(** The admin four-letter command; served off the write pipeline, so it
    answers ["imok"] even while writes hang (§4.2). *)

val zxid : t -> int
val txncount : t -> int
