(* Whole-program static validation, run once after construction and again
   after instrumentation. Catches the classes of mistakes the builder DSL
   cannot prevent: dangling calls, bad arity, unknown primitives, use of
   unbound variables, duplicate function names, misplaced returns. *)

open Ast

type problem = { where : string; what : string }

let pp_problem ppf p = Fmt.pf ppf "%s: %s" p.where p.what

let check_expr ~scope ~problems ~where expr =
  let prob what = problems := { where; what } :: !problems in
  let rec go = function
    | Const _ -> ()
    | Var x -> if not (List.mem x !scope) then prob (Fmt.str "unbound variable %s" x)
    | Binop (_, a, b) ->
        go a;
        go b
    | Unop (_, e) -> go e
    | Pair (a, b) ->
        go a;
        go b
    | Fst e | Snd e -> go e
    | Prim (name, args) ->
        if not (Prims.is_known name) then prob (Fmt.str "unknown primitive %s" name);
        List.iter go args
  in
  go expr

let rec check_block p ~scope ~problems ~fname block =
  List.iter
    (fun st ->
      let where = Fmt.str "%s at %a" fname Loc.pp st.loc in
      let prob what = problems := { where; what } :: !problems in
      let expr e = check_expr ~scope ~problems ~where e in
      match st.node with
      | Let (x, e) ->
          expr e;
          scope := x :: !scope
      | Assign (x, e) ->
          if not (List.mem x !scope) then prob (Fmt.str "assign to unbound %s" x);
          expr e
      | Op { args; bind; kind; target } ->
          List.iter expr args;
          if target = "" then prob (Fmt.str "%s: empty target" (op_kind_name kind));
          (match bind with Some x -> scope := x :: !scope | None -> ())
      | Call { func; args; bind } ->
          (match List.find_opt (fun f -> f.fname = func) p.funcs with
          | None -> prob (Fmt.str "call to undefined function %s" func)
          | Some f ->
              if List.length f.params <> List.length args then
                prob
                  (Fmt.str "call %s: %d args, %d params" func (List.length args)
                     (List.length f.params)));
          List.iter expr args;
          (match bind with Some x -> scope := x :: !scope | None -> ())
      (* Scoping matches the interpreter: one flat frame per function call,
         so bindings made inside nested blocks persist afterwards. *)
      | If (c, t, e) ->
          expr c;
          check_block p ~scope ~problems ~fname t;
          check_block p ~scope ~problems ~fname e
      | While (c, body) ->
          expr c;
          check_block p ~scope ~problems ~fname body
      | Foreach (x, e, body) ->
          expr e;
          scope := x :: !scope;
          check_block p ~scope ~problems ~fname body
      | Sync (lock, body) ->
          if lock = "" then prob "sync: empty lock name";
          check_block p ~scope ~problems ~fname body
      | Try (body, exn, handler) ->
          check_block p ~scope ~problems ~fname body;
          scope := exn :: !scope;
          check_block p ~scope ~problems ~fname handler
      | Return e -> expr e
      | Assert (e, _) -> expr e
      | Compute _ -> ()
      | Hook _ -> ())
    block

let check p =
  let problems = ref [] in
  (* duplicate function names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then
        problems := { where = f.fname; what = "duplicate function name" } :: !problems;
      Hashtbl.replace seen f.fname ())
    p.funcs;
  (* entries reference real functions with matching arity *)
  List.iter
    (fun e ->
      match List.find_opt (fun f -> f.fname = e.entry_func) p.funcs with
      | None ->
          problems :=
            { where = e.entry_name; what = Fmt.str "entry function %s undefined" e.entry_func }
            :: !problems
      | Some f ->
          if List.length f.params <> List.length e.entry_args then
            problems :=
              {
                where = e.entry_name;
                what = Fmt.str "entry %s: arity mismatch" e.entry_func;
              }
              :: !problems)
    p.entries;
  (* per-function body checks *)
  List.iter
    (fun f -> check_block p ~scope:(ref f.params) ~problems ~fname:f.fname f.body)
    p.funcs;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error ps ->
      raise
        (Ir_error
           (Fmt.str "program %s invalid:@.%a" p.pname
              Fmt.(list ~sep:(any "@.") pp_problem)
              ps))
