(* The checker abstraction (§3.1, Table 2). A checker is a scheduled piece
   of checking logic; the three construction styles — probe, signal, mimic —
   differ only in what [run] does and what localisation they can offer, so
   they share this one type and one driver. *)

type kind = Probe | Signal | Mimic

type outcome =
  | Pass
  | Skip of string (* e.g. context not ready — logged, not a failure *)
  | Fail of Report.t

type t = {
  id : string;
  kind : kind;
  period : int64;           (* scheduling interval *)
  timeout : int64;          (* driver kills the run past this deadline *)
  slow_budget : int64 option;  (* completed-but-slow threshold *)
  run : now:int64 -> outcome;
  locate : unit -> (Wd_ir.Loc.t option * string * (string * Wd_ir.Ast.value) list);
      (* best-effort pinpoint consulted after a timeout/crash:
         (location, op description, captured payload) *)
  slow_elapsed : unit -> int64 option;
      (* duration the driver should assess for slowness after a Pass;
         [None] means use the whole run's wall time. Mimic checkers report
         operation time excluding benign lock-contention waits. *)
  ctx_version : (unit -> int) option;
      (* monotone version of the state this checker's verdict depends on
         (the watchdog context's update counter for mimic checkers). An
         adaptive scheduler may skip a run whose version is unchanged since
         the last execution, within its latency bound. [None] = never
         dedupable: signal/probe checkers, and progress checkers whose very
         point is noticing that the version is NOT advancing. *)
}

let kind_name = function Probe -> "probe" | Signal -> "signal" | Mimic -> "mimic"

let make ?(kind = Mimic) ?(period = Wd_sim.Time.sec 1)
    ?(timeout = Wd_sim.Time.sec 10) ?slow_budget
    ?(locate = fun () -> (None, "", []))
    ?(slow_elapsed = fun () -> None) ?ctx_version ~id run =
  { id; kind; period; timeout; slow_budget; run; locate; slow_elapsed;
    ctx_version }

let pp ppf c =
  Fmt.pf ppf "%s[%s] period=%a timeout=%a" c.id (kind_name c.kind)
    Wd_sim.Time.pp c.period Wd_sim.Time.pp c.timeout
