(* Gray-failure catalog: named, reproducible failure scenarios for each
   target system, with ground truth (failing function, failure class) and
   the paper's prediction of which detector classes should catch them.

   Classes follow the failures the paper cites: partial disk faults (IRON),
   fail-slow hardware, limplock, state corruption, crash, resource leaks,
   silently stuck background tasks, and transient errors. *)

type fclass =
  | Crash
  | Partial_disk
  | Fail_slow
  | Limplock
  | Net_hang
  | Corruption
  | Resource_leak
  | Silent_stuck
  | Deadlock
  | Infinite_loop
  | Transient_error

let fclass_name = function
  | Crash -> "crash"
  | Partial_disk -> "partial-disk"
  | Fail_slow -> "fail-slow"
  | Limplock -> "limplock"
  | Net_hang -> "net-hang"
  | Corruption -> "corruption"
  | Resource_leak -> "resource-leak"
  | Silent_stuck -> "silent-stuck"
  | Deadlock -> "deadlock"
  | Infinite_loop -> "infinite-loop"
  | Transient_error -> "transient-error"

(* A fault spec relative to the injection instant. *)
type fspec = {
  site_pattern : string;
  behaviour : Wd_env.Faultreg.behaviour;
  offset : int64;       (* delay after the scenario's injection time *)
  duration : int64;     (* Time.never for unbounded *)
  once : bool;
}

let fspec ?(offset = 0L) ?(duration = Wd_sim.Time.never) ?(once = false)
    site_pattern behaviour =
  { site_pattern; behaviour; offset; duration; once }

(* Expected detection per detector class — the qualitative claims of
   Tables 1 and 2 that experiment E1/E2 test empirically. *)
type expectation = {
  exp_mimic : bool;
  exp_probe : bool;
  exp_signal : bool;
  exp_heartbeat : bool;
  exp_observer : bool;
}

type scenario = {
  sid : string;
  description : string;
  system : string;   (* kvs | zkmini | dfsmini | cstore *)
  fclass : fclass;
  faults : fspec list;
  special : string option;  (* "leak_bug" boot variant, "crash" kill, ... *)
  truth_func : string option; (* function containing the failing operation *)
  expected : expectation;
}

let exp ?(mimic = false) ?(probe = false) ?(signal = false) ?(heartbeat = false)
    ?(observer = false) () =
  {
    exp_mimic = mimic;
    exp_probe = probe;
    exp_signal = signal;
    exp_heartbeat = heartbeat;
    exp_observer = observer;
  }

let kvs_scenarios =
  [
    {
      sid = "kvs-flush-hang";
      description = "segment flush blocks on a wedged disk region";
      system = "kvs";
      fclass = Partial_disk;
      faults = [ fspec "disk:kvs.disk:write:seg/*" Wd_env.Faultreg.Hang ];
      special = None;
      truth_func = Some "flush_segment";
      (* Client path (wal, index) untouched: only the intrinsic watchdog
         sees it. *)
      expected = exp ~mimic:true ();
    };
    {
      sid = "kvs-disk-slow";
      description = "fail-slow disk: every I/O 80x slower";
      system = "kvs";
      fclass = Fail_slow;
      faults = [ fspec "disk:kvs.disk:*" (Wd_env.Faultreg.Slow_factor 80.) ];
      special = None;
      truth_func = None;
      (* clients still succeed (slowly), so the observer stays quiet; the
         adaptive mimic baseline and the probe's latency shift both fire *)
      expected = exp ~mimic:true ~probe:true ();
    };
    {
      sid = "kvs-wal-error";
      description = "WAL device returns errors; listener thread dies";
      system = "kvs";
      fclass = Partial_disk;
      faults =
        [ fspec "disk:kvs.disk:append:wal/*" (Wd_env.Faultreg.Error "EIO") ];
      special = None;
      truth_func = Some "handle_set";
      expected = exp ~mimic:true ~probe:true ~observer:true ();
    };
    {
      sid = "kvs-replication-hang";
      description = "replication link to follower blocks the sender";
      system = "kvs";
      fclass = Net_hang;
      faults = [ fspec "net:kvs.net:send:kvs1:kvs2" Wd_env.Faultreg.Hang ];
      special = None;
      truth_func = Some "replicate";
      expected = exp ~mimic:true ~probe:true ~observer:true ();
    };
    {
      sid = "kvs-seg-corrupt";
      description = "silent bit corruption on segment writes";
      system = "kvs";
      fclass = Corruption;
      faults = [ fspec "disk:kvs.disk:write:seg/*" Wd_env.Faultreg.Corrupt ];
      special = None;
      truth_func = Some "flush_segment";
      expected = exp ~mimic:true ();
    };
    {
      sid = "kvs-mem-leak";
      description = "request buffers leak; allocation pauses grow";
      system = "kvs";
      fclass = Resource_leak;
      faults = [];
      special = Some "leak_bug";
      truth_func = Some "handle_set";
      expected = exp ~mimic:true ~probe:true ~signal:true ();
    };
    {
      sid = "kvs-deadlock";
      description =
        "AB/BA lock cycle between the listener and the flusher wedges both; \
         heartbeats keep flowing";
      system = "kvs";
      fclass = Deadlock;
      faults = [];
      special = Some "deadlock_bug";
      (* either side of the cycle is a correct localisation; the flusher's
         critical section is the one the try-lock checkers reach first *)
      truth_func = Some "flush_once";
      (* client writes hang: probes and observers see it, heartbeats never
         do, and the try-lock mimic checkers pinpoint the cycle *)
      expected = exp ~mimic:true ~probe:true ~observer:true ();
    };
    {
      sid = "kvs-crash";
      description = "whole-process crash (fail-stop)";
      system = "kvs";
      fclass = Crash;
      faults = [];
      special = Some "crash";
      truth_func = None;
      (* The intrinsic watchdog — and the probe/signal checkers co-located in
         its driver — die with the process; only the extrinsic heartbeat FD
         and the client-side observers survive: Table 1's isolation
         argument. *)
      expected = exp ~heartbeat:true ~observer:true ();
    };
  ]

let zk_scenarios =
  [
    {
      sid = "zk-2201";
      description =
        "ZOOKEEPER-2201: remote sync blocks in commit critical section; \
         heartbeats and admin command still answer";
      system = "zkmini";
      fclass = Net_hang;
      faults = [ fspec "net:zk.net:send:zkL:zkF1" Wd_env.Faultreg.Hang ];
      special = None;
      truth_func = Some "commit_txn";
      (* heartbeats and the admin ruok probe stay blind (the paper's point);
         a client *write* probe and the observers do see the stall *)
      expected = exp ~mimic:true ~probe:true ~observer:true ();
    };
    {
      sid = "zk-snap-slow";
      description = "snapshot device is fail-slow";
      system = "zkmini";
      fclass = Fail_slow;
      faults =
        [ fspec "disk:zk.disk:write:snapshot/*" (Wd_env.Faultreg.Slow_factor 400.) ];
      special = None;
      truth_func = Some "serialize_node";
      (* snapshots run inside the sync pipeline, so write probes stall too *)
      expected = exp ~mimic:true ~probe:true ();
    };
    {
      sid = "zk-txnlog-error";
      description = "txn log returns EIO; sync thread dies";
      system = "zkmini";
      fclass = Partial_disk;
      faults =
        [ fspec "disk:zk.disk:append:txnlog/*" (Wd_env.Faultreg.Error "EIO") ];
      special = None;
      truth_func = Some "commit_txn";
      expected = exp ~mimic:true ~probe:true ~observer:true ();
    };
  ]

let dfs_scenarios =
  [
    {
      sid = "dfs-block-corrupt";
      description = "silent corruption on block writes";
      system = "dfsmini";
      fclass = Corruption;
      faults = [ fspec "disk:dfs.disk:write:blk/*" Wd_env.Faultreg.Corrupt ];
      special = None;
      truth_func = Some "write_block";
      expected = exp ~mimic:true ~probe:true ();
    };
    {
      sid = "dfs-meta-hang";
      description = "metadata directory wedges; receiver blocks mid-write";
      system = "dfsmini";
      fclass = Partial_disk;
      faults = [ fspec "disk:dfs.disk:write:meta/*" Wd_env.Faultreg.Hang ];
      special = None;
      truth_func = Some "write_block";
      expected = exp ~mimic:true ~probe:true ~observer:true ();
    };
    {
      sid = "dfs-scan-transient";
      description =
        "transient block-read errors during the directory scan, absorbed by \
         the scanner's error handler";
      system = "dfsmini";
      fclass = Transient_error;
      faults =
        [
          fspec ~duration:(Wd_sim.Time.sec 6) "disk:dfs.disk:read:blk/*"
            (Wd_env.Faultreg.Error "EIO (transient)");
        ];
      special = None;
      truth_func = Some "scan_once";
      (* the probe's block read trips over the same transient errors *)
      expected = exp ~mimic:true ~probe:true ();
    };
    {
      sid = "dfs-limplock";
      description = "limplock: disk degrades 200x but never fails";
      system = "dfsmini";
      fclass = Limplock;
      faults = [ fspec "disk:dfs.disk:*" (Wd_env.Faultreg.Slow_factor 200.) ];
      special = None;
      truth_func = None;
      (* requests still complete within client timeouts: observers quiet *)
      expected = exp ~mimic:true ~probe:true ();
    };
  ]

let cs_scenarios =
  [
    {
      sid = "cs-compaction-stuck";
      description =
        "SSTable compaction silently stuck on a read hang; reads and writes \
         keep succeeding";
      system = "cstore";
      fclass = Silent_stuck;
      faults = [ fspec "disk:cs.disk:read:sst/*" Wd_env.Faultreg.Hang ];
      special = None;
      truth_func = Some "compact_once";
      expected = exp ~mimic:true ();
    };
    {
      sid = "cs-compaction-spin";
      description =
        "compaction spins forever on a stale condition: no operation fails, \
         no lock is held — only the progress (context-staleness) checkers \
         notice the region stopped advancing";
      system = "cstore";
      fclass = Infinite_loop;
      faults = [];
      special = Some "spin_bug";
      truth_func = Some "compact_once";
      expected = exp ~mimic:true ();
    };
    {
      sid = "cs-commitlog-error";
      description = "commit log append fails; write thread dies";
      system = "cstore";
      fclass = Partial_disk;
      faults =
        [ fspec "disk:cs.disk:append:commitlog/*" (Wd_env.Faultreg.Error "EIO") ];
      special = None;
      truth_func = Some "do_write";
      expected = exp ~mimic:true ~probe:true ~observer:true ();
    };
    {
      sid = "cs-sst-transient";
      description = "transient read errors during compaction (handled ones)";
      system = "cstore";
      fclass = Transient_error;
      faults =
        [
          fspec ~duration:(Wd_sim.Time.sec 4) "disk:cs.disk:read:sst/*"
            (Wd_env.Faultreg.Error "EAGAIN");
        ];
      special = None;
      truth_func = Some "compact_once";
      expected = exp ~mimic:true ();
    };
  ]

let mq_scenarios =
  [
    {
      sid = "mq-cleaner-stuck";
      description =
        "retention cleaner wedges on segment deletion; producers and \
         consumers keep succeeding while the partition grows unbounded";
      system = "mqbroker";
      fclass = Silent_stuck;
      faults = [ fspec "disk:mq.disk:delete:part0/*" Wd_env.Faultreg.Hang ];
      special = None;
      truth_func = Some "clean_once";
      expected = exp ~mimic:true ();
    };
    {
      sid = "mq-consumer-link-hang";
      description =
        "the consumer delivery link blocks the sender; producers are \
         unaffected, consumers silently starve";
      system = "mqbroker";
      fclass = Net_hang;
      faults = [ fspec "net:mq.net:send:mq1:consumer1" Wd_env.Faultreg.Hang ];
      special = None;
      truth_func = Some "deliver_once";
      expected = exp ~mimic:true ();
    };
    {
      sid = "mq-log-corrupt";
      description = "silent corruption on partition-log appends";
      system = "mqbroker";
      fclass = Corruption;
      faults = [ fspec "disk:mq.disk:append:part0/*" Wd_env.Faultreg.Corrupt ];
      special = None;
      truth_func = Some "handle_produce";
      expected = exp ~mimic:true ();
    };
    {
      sid = "mq-disk-slow";
      description = "fail-slow partition disk (100x); client latencies stay \
                     within timeouts";
      system = "mqbroker";
      fclass = Fail_slow;
      faults = [ fspec "disk:mq.disk:*" (Wd_env.Faultreg.Slow_factor 100.) ];
      special = None;
      truth_func = None;
      (* the probe's learned latency baseline also shifts *)
      expected = exp ~mimic:true ~probe:true ();
    };
  ]

let all =
  kvs_scenarios @ zk_scenarios @ dfs_scenarios @ cs_scenarios @ mq_scenarios

let find sid =
  match List.find_opt (fun s -> s.sid = sid) all with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Catalog.find: unknown scenario %s" sid)

let for_system system = List.filter (fun s -> s.system = system) all

(* Materialise the scenario's fault specs into registry faults anchored at
   [at]. Returns the injected fault ids. *)
let inject reg scenario ~at =
  List.mapi
    (fun i f ->
      let id = Fmt.str "%s#%d" scenario.sid i in
      Wd_env.Faultreg.inject reg
        {
          Wd_env.Faultreg.id;
          site_pattern = f.site_pattern;
          behaviour = f.behaviour;
          start_at = Int64.add at f.offset;
          stop_at =
            (if f.duration = Wd_sim.Time.never then Wd_sim.Time.never
             else Int64.add (Int64.add at f.offset) f.duration);
          once = f.once;
        };
      id)
    scenario.faults

let pp_scenario ppf s =
  Fmt.pf ppf "%-22s %-9s %-12s %s" s.sid s.system (fclass_name s.fclass)
    s.description
