(** Deterministic SplitMix64 pseudo-random number generator.

    All randomness in the simulator flows through explicit [t] values, so a
    whole run is a pure function of its seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream; advancing either stream afterwards does not
    affect the other. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t b] is uniform in [\[0, b)]. Raises on [b <= 0]. *)

val int64_range : t -> int64 -> int64 -> int64
(** Inclusive range. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
val choice : t -> 'a array -> 'a
val exponential : t -> mean:float -> float
val shuffle : t -> 'a array -> unit
