lib/targets/cstore.mli: Rpcq Wd_env Wd_ir Wd_sim
