lib/sim/cond.ml: Fmt Int64 List Queue Sched
